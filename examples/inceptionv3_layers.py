#!/usr/bin/env python
"""Reproduce the paper's Figure 7 evaluation on InceptionV3 layers.

For every InceptionV3 MaxPool configuration the paper evaluates
(Table I, bold), this example runs:

* forward, standard vs Im2col                 (Figure 7a),
* forward with the Argmax mask, both variants (Figure 7b),
* backward, vadd merge vs Col2im              (Figure 7c),

verifies each result against the NumPy reference, and prints the cycle
counts with speedups -- the same rows the paper's graphs plot.

Usage::

    python examples/inceptionv3_layers.py [--quick]

``--quick`` restricts the run to the smallest configuration.
"""

import sys

import numpy as np

from repro import PoolSpec, maxpool, maxpool_backward
from repro.ops.reference import (
    maxpool_argmax_ref,
    maxpool_backward_ref,
    maxpool_forward_ref,
)
from repro.workloads import INCEPTION_V3_EVAL, make_gradient, make_input


def run_layer(layer) -> None:
    print(f"=== {layer.label} ===")
    x = make_input(layer.h, layer.w, layer.c, seed=7)
    spec: PoolSpec = layer.spec
    fwd_ref = maxpool_forward_ref(x, spec)
    mask_ref = maxpool_argmax_ref(x, spec)

    cycles = {}
    for impl in ("standard", "im2col"):
        r = maxpool(x, spec, impl=impl)
        assert np.array_equal(r.output, fwd_ref)
        cycles[f"fwd/{impl}"] = r.cycles
    for impl in ("standard", "im2col"):
        r = maxpool(x, spec, impl=impl, with_mask=True)
        assert np.array_equal(r.output, fwd_ref)
        assert np.array_equal(r.mask, mask_ref)
        cycles[f"fwd+mask/{impl}"] = r.cycles

    oh, ow = layer.out_hw()
    grad = make_gradient(x.shape[1], oh, ow, seed=8)
    bwd_ref = maxpool_backward_ref(mask_ref, grad, spec, layer.h, layer.w)
    for impl in ("standard", "col2im"):
        r = maxpool_backward(mask_ref, grad, spec, layer.h, layer.w, impl=impl)
        # Multi-tile accumulation may reorder fp16 sums at tile seams.
        np.testing.assert_allclose(
            r.output.astype(np.float32),
            bwd_ref.astype(np.float32),
            rtol=1e-2, atol=1e-2,
        )
        cycles[f"bwd/{impl}"] = r.cycles

    for phase, slow, fast in (
        ("forward         ", "fwd/standard", "fwd/im2col"),
        ("forward + mask  ", "fwd+mask/standard", "fwd+mask/im2col"),
        ("backward        ", "bwd/standard", "bwd/col2im"),
    ):
        s, f = cycles[slow], cycles[fast]
        print(f"  {phase} standard {s:7d} cy   accelerated {f:7d} cy   "
              f"speedup {s / f:4.2f}x")
    print()


def main() -> None:
    layers = INCEPTION_V3_EVAL
    if "--quick" in sys.argv:
        layers = layers[-1:]
    for layer in layers:
        run_layer(layer)
    print("paper (Section VI-A, largest input): 3.2x / 5x / 5.8x")


if __name__ == "__main__":
    main()
