#!/usr/bin/env python
"""The Figure 8 stride experiment on a single AI Core.

Sweeps square input sizes (in steps of two, up to the tiling threshold,
exactly as Section VI-B describes) for strides (1,1), (2,2) and (3,3)
with kernel (3,3), comparing the MaxPool implementations:

* stride (1,1): patches are contiguous, the standard lowering saturates
  the vector mask by itself, and the Im2col transform only adds 9x data
  duplication -- the direct implementation wins (Figure 8a);
* strides (2,2)/(3,3): the strided access pins the standard lowering to
  16 of 128 lanes and the Im2col-based implementation wins, with the
  expansion and X-Y split variants in between (Figures 8b, 8c).

Usage::

    python examples/stride_sweep.py [--full]

By default a handful of sizes per stride keeps the run short; ``--full``
sweeps every size the paper does.
"""

import sys

from repro.bench import fig8, fig8_sizes, render_figure


def main() -> None:
    full = "--full" in sys.argv
    for stride in (1, 2, 3):
        sizes = fig8_sizes(stride)
        if not full:
            sizes = sorted({sizes[0], sizes[len(sizes) // 2], sizes[-1]})
        fig = fig8(stride, sizes=sizes)
        print(render_figure(fig))
        print()
    print("expected shape: stride (1,1) -> direct Maxpool fastest at the")
    print("threshold; strides (2,2)/(3,3) -> Im2col < expansion < X-Y")
    print("split < standard (cycles), advantage growing with input size.")


if __name__ == "__main__":
    main()
