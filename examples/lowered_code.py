#!/usr/bin/env python
"""Show the lowered "CCE C" of the two MaxPool implementations.

The paper makes its argument by showing lowered code ("Lowered CCE C
code is used to highlight the above-mentioned factors in each
implementation", Section V).  This example builds the standard and
Im2col tile kernels for a 17x17 input and prints their instruction
streams in CCE-intrinsic style -- the 16/128-lane vmax torrent of
Listing 1's lowering vs the nine saturated instructions of Listing 2's.

Usage::

    python examples/lowered_code.py
"""

from repro.config import ASCEND910_SINGLE_CORE
from repro.dtypes import FLOAT16
from repro.isa.operand import MemRef
from repro.isa.render import render_program, summarize_program
from repro.ops import PoolSpec, forward_impl
from repro.ops.base import TileContext
from repro.plan import TileGeom
from repro.tik import KernelBuilder


def build_kernel(impl_name: str) -> object:
    spec = PoolSpec.square(3, 2)
    params = spec.with_image(17, 17)
    oh, ow = params.out_hw()
    c0 = FLOAT16.c0
    b = KernelBuilder(ASCEND910_SINGLE_CORE, FLOAT16, name=impl_name)
    ctx = TileContext(
        builder=b,
        geom=TileGeom(oh0=0, oh1=oh, ih0=0, ih1=17, params=params),
        spec=spec,
        dtype=FLOAT16,
        gm_in=MemRef("x", 0, 17 * 17 * c0, FLOAT16),
        gm_out=MemRef("out", 0, oh * ow * c0, FLOAT16),
    )
    forward_impl(impl_name, "max").build_tile(ctx)
    return b.program


def main() -> None:
    for name in ("standard", "im2col"):
        prog = build_kernel(name)
        print(f"================ {name} maxpool, 17x17x16 tile ================")
        print(summarize_program(prog))
        print()
        print("first instructions in full:")
        print(render_program(prog, limit=6))
        print()


if __name__ == "__main__":
    main()
