#!/usr/bin/env python
"""Profile a small CNN's pooling cost with and without the acceleration.

Builds a three-block CNN (conv -> maxpool, repeated) with the layer
API, runs a full forward+backward pass twice -- once with the standard
pooling kernels, once with the Im2col/Col2im ones -- and prints
per-layer cycle tables plus an instruction-level breakdown of the
pooling layers, showing exactly where the cycles went (the paper's
Section V analysis, read off a live run).

Usage::

    python examples/network_profile.py
"""

import numpy as np

from repro import PoolSpec
from repro.bench import compare_breakdowns
from repro.config import ASCEND910
from repro.nn import Conv2d, MaxPool2d, Sequential
from repro.ops import maxpool
from repro.workloads import make_input


def build_net(pool_impl: str, bwd_impl: str) -> Sequential:
    rng = np.random.default_rng(0)

    def conv(cin, cout):
        w = (rng.standard_normal((cout, cin, 3, 3)) * 0.1).astype(np.float16)
        return Conv2d(w, PoolSpec.square(3, 1))

    pool = lambda: MaxPool2d(
        PoolSpec.square(3, 2), impl=pool_impl, backward_impl=bwd_impl
    )
    return Sequential(conv(16, 16), pool(), conv(16, 16), pool())


def main() -> None:
    x = make_input(38, 38, 16, seed=1)

    for label, fwd, bwd in (
        ("standard pooling", "standard", "standard"),
        ("Im2col/Col2im pooling", "im2col", "col2im"),
    ):
        net = build_net(fwd, bwd)
        y = net.forward(x)
        net.backward(np.ones_like(y))
        pool_cycles = sum(
            l.total_cycles for l in net.layers if isinstance(l, MaxPool2d)
        )
        print(f"=== {label} ===")
        print(net.cycle_report())
        print(f"pooling share: {pool_cycles / net.total_cycles:5.1%} "
              f"of {net.total_cycles} total cycles")
        print()

    # Instruction-level view of one pooling layer, both ways.
    print("=== where the pooling cycles go (38x38x16 layer) ===")
    runs = []
    for impl in ("standard", "im2col"):
        res = maxpool(x, PoolSpec.square(3, 2), impl=impl, config=ASCEND910)
        runs.append((f"maxpool/{impl}", res.chip))
    print(compare_breakdowns(runs))


if __name__ == "__main__":
    main()
