#!/usr/bin/env python
"""Pooling with zero padding: the Table I CNNs Figure 7 leaves out.

The paper evaluates the unpadded InceptionV3 configurations but notes
"it is also possible to add padding during the Im2Col load, as the
other CNNs would require" (Section VI-A).  This example runs a MaxPool
layer of each remaining Table I CNN -- Xception and Resnet50 with
same-padding, VGG16 with its (2,2)/(2,2) non-overlapping pooling --
through both the standard and Im2col implementations, padding handled
on the fly by the ``Im2Col`` instruction, and checks them against the
reference.

Usage::

    python examples/padded_cnns.py
"""

import numpy as np

from repro import maxpool
from repro.ops.reference import maxpool_forward_ref
from repro.workloads import layers_of, make_input


def main() -> None:
    # One representative (smaller) layer per CNN keeps the run short.
    picks = [
        layers_of("Xception")[2],   # 37x37x728, pad bottom/right
        layers_of("Resnet50")[0],   # 112x112x64, pad bottom/right
        layers_of("VGG16")[3],      # 28x28x512, kernel=stride=(2,2)
    ]
    for layer in picks:
        x = make_input(layer.h, layer.w, layer.c, seed=11)
        ref = maxpool_forward_ref(x, layer.spec)
        line = [f"{layer.label:<38s} pad={layer.spec.has_padding!s:5s}"]
        cycles = {}
        for impl in ("standard", "im2col"):
            res = maxpool(x, layer.spec, impl=impl)
            assert np.array_equal(res.output, ref), (layer.label, impl)
            cycles[impl] = res.cycles
            line.append(f"{impl} {res.cycles:6d}cy")
        line.append(f"speedup {cycles['standard'] / cycles['im2col']:.2f}x")
        print("  ".join(line))
    print()
    print("note: VGG16's stride equals its kernel (no patch overlap), so")
    print("the Im2col layout duplicates no data -- the speedup is pure")
    print("mask-saturation gain, as in Figure 8c.")


if __name__ == "__main__":
    main()
