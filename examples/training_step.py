#!/usr/bin/env python
"""A full forward+backward step through a small CNN block.

Demonstrates the complete instruction repertoire on one simulated chip:

* convolution on the Cube Unit fed by ``Im2Col`` in repeat mode 0
  (the instructions' primary purpose, Sections II-A / III-C),
* MaxPool forward with the Argmax mask (Im2col-based, Figure 7b),
* MaxPool backward through the mask with the ``Col2Im`` merge
  (Figure 7c),
* convolution input-gradient with the Cube + ``Col2Im``
  (Section II-B's original Col2im role).

Every stage is checked against its NumPy reference.

Usage::

    python examples/training_step.py
"""

import numpy as np

from repro import PoolSpec, maxpool, maxpool_backward
from repro.ops.conv2d import (
    conv2d,
    conv2d_input_grad,
    conv2d_input_grad_ref,
    conv2d_ref,
)
from repro.ops.reference import maxpool_backward_ref, maxpool_forward_ref
from repro.workloads import make_input


def main() -> None:
    rng = np.random.default_rng(3)
    # Block: 24x24x32 activations -> conv 3x3/s1 (32 -> 32 channels)
    #        -> maxpool 3x3/s2 -> gradients flowing back to the input.
    x = make_input(24, 24, 32, seed=3)
    weights = (rng.standard_normal((32, 32, 3, 3)) * 0.1).astype(np.float16)
    conv_spec = PoolSpec.square(kernel=3, stride=1)
    pool_spec = PoolSpec.square(kernel=3, stride=2)

    total_cycles = 0

    # --- forward: convolution on the Cube Unit ---
    conv = conv2d(x, weights, conv_spec)
    ref = conv2d_ref(x, weights, conv_spec)
    # The Cube accumulates float32 per fractal chain; the reference uses
    # one BLAS matmul -- summation order differs by <= 1 fp16 ulp.
    np.testing.assert_allclose(
        conv.output.astype(np.float32), ref.astype(np.float32),
        rtol=2e-3, atol=2e-3,
    )
    total_cycles += conv.cycles
    print(f"conv2d forward        {conv.cycles:7d} cycles   "
          f"out {conv.output.shape}")

    # --- forward: MaxPool with the Argmax mask ---
    pool = maxpool(conv.output, pool_spec, impl="im2col", with_mask=True)
    assert np.array_equal(
        pool.output, maxpool_forward_ref(conv.output, pool_spec)
    )
    total_cycles += pool.cycles
    print(f"maxpool fwd (+mask)   {pool.cycles:7d} cycles   "
          f"out {pool.output.shape}")

    # --- backward: gradient of a sum loss is all-ones ---
    grad = np.ones_like(pool.output)
    ph, pw = conv.output.shape[2], conv.output.shape[3]
    pool_bwd = maxpool_backward(
        pool.mask, grad, pool_spec, ph, pw, impl="col2im"
    )
    bwd_ref = maxpool_backward_ref(pool.mask, grad, pool_spec, ph, pw)
    np.testing.assert_allclose(
        pool_bwd.output.astype(np.float32),
        bwd_ref.astype(np.float32),
        rtol=1e-2, atol=1e-2,
    )
    total_cycles += pool_bwd.cycles
    print(f"maxpool bwd (Col2im)  {pool_bwd.cycles:7d} cycles   "
          f"dconv {pool_bwd.output.shape}")

    # --- backward: convolution input gradient via Cube + Col2Im ---
    dconv = conv2d_input_grad(pool_bwd.output, weights, conv_spec, 24, 24)
    dref = conv2d_input_grad_ref(pool_bwd.output, weights, conv_spec, 24, 24)
    np.testing.assert_allclose(
        dconv.output.astype(np.float32),
        dref.astype(np.float32),
        rtol=2e-2, atol=2e-2,
    )
    total_cycles += dconv.cycles
    print(f"conv2d input grad     {dconv.cycles:7d} cycles   "
          f"dx {dconv.output.shape}")

    print()
    ms = total_cycles / 100e6 * 1e3  # 100 MHz counter domain
    print(f"total: {total_cycles} cycles ({ms:.2f} ms at 100 MHz) -- "
          f"all stages match their references")


if __name__ == "__main__":
    main()
