#!/usr/bin/env python
"""Quickstart: MaxPool on the simulated DaVinci chip.

Runs the paper's headline comparison on one InceptionV3 layer: the
standard TVM-style MaxPool versus the Im2col-based implementation, both
producing bit-identical results, with the cycle counters explaining
where the speedup comes from (vector-lane utilization and instruction
issue counts, Section V of the paper).

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import PoolSpec, maxpool
from repro.fractal import nhwc_to_nc1hwc0
from repro.ops.reference import maxpool_forward_ref

def main() -> None:
    # An InceptionV3 pooling layer: 71x71 activations, 192 channels,
    # kernel (3,3), stride (2,2), no padding (Table I, input 2).
    rng = np.random.default_rng(2021)
    nhwc = rng.standard_normal((1, 71, 71, 192)).astype(np.float16)
    x = nhwc_to_nc1hwc0(nhwc)  # -> (N, C1, H, W, C0) fractal layout
    spec = PoolSpec.square(kernel=3, stride=2)

    print("input (NHWC):", nhwc.shape, "-> fractal NC1HWC0:", x.shape)
    print()

    results = {}
    for impl in ("standard", "im2col"):
        res = maxpool(x, spec, impl=impl)
        results[impl] = res
        util = res.chip.vector_lane_utilization
        issues = sum(
            (t.trace.issue_counts() for t in res.chip.per_tile),
            start=__import__("collections").Counter(),
        )
        print(f"{impl:>9s}: {res.cycles:6d} cycles on the chip "
              f"({res.chip.tiles} tiles on {res.chip.cores_used} cores)")
        print(f"           vector lane utilization {util:5.1%}, "
              f"vmax issues {issues['vmax']}, "
              f"im2col issues {issues.get('im2col', 0)}")

    ref = maxpool_forward_ref(x, spec)
    for impl, res in results.items():
        assert np.array_equal(res.output, ref), f"{impl} result mismatch!"
    print()
    speedup = results["standard"].cycles / results["im2col"].cycles
    print(f"both implementations match the NumPy reference bit-for-bit")
    print(f"Im2col speedup: {speedup:.2f}x  (paper's Figure 7a: ~3.2x)")


if __name__ == "__main__":
    main()
