"""Acceptance tests: the paper's experimental claims, as reproduced.

These tests assert the *shape* of the results -- who wins, in which
regime, by roughly what factor -- rather than exact cycle counts, which
depend on the calibrated cost constants (EXPERIMENTS.md records the
point values).
"""

import numpy as np
import pytest

from repro.config import ASCEND910, ASCEND910_SINGLE_CORE
from repro.ops import (
    PoolSpec,
    avgpool,
    avgpool_backward,
    maxpool,
    maxpool_backward,
)
from repro.ops.reference import maxpool_argmax_ref
from repro.workloads import evaluated_layers, make_gradient, make_input


def fwd_cycles(layer, impl, with_mask=False):
    x = make_input(layer.h, layer.w, layer.c, seed=0)
    return maxpool(x, layer.spec, impl=impl, with_mask=with_mask,
                   collect_trace=False).cycles


def bwd_cycles(layer, impl):
    x = make_input(layer.h, layer.w, layer.c, seed=0)
    mask = maxpool_argmax_ref(x, layer.spec)
    oh, ow = layer.out_hw()
    grad = make_gradient(x.shape[1], oh, ow, seed=1)
    return maxpool_backward(mask, grad, layer.spec, layer.h, layer.w,
                            impl=impl, collect_trace=False).cycles


class TestFigure7Shape:
    """Figure 7 on the smallest evaluated layer (35,35,288): the
    accelerated implementation wins every panel."""

    LAYER = evaluated_layers()[2]

    def test_forward_speedup_band(self):
        s = fwd_cycles(self.LAYER, "standard") / fwd_cycles(self.LAYER, "im2col")
        assert 2.0 <= s <= 4.5, s  # paper: ~3x at the small sizes

    def test_forward_with_mask_speedup_band(self):
        s = (fwd_cycles(self.LAYER, "standard", True)
             / fwd_cycles(self.LAYER, "im2col", True))
        assert 2.5 <= s <= 6.0, s

    def test_backward_speedup_band(self):
        s = bwd_cycles(self.LAYER, "standard") / bwd_cycles(self.LAYER, "col2im")
        assert 3.5 <= s <= 7.5, s


class TestHeadlineSpeedups:
    """Section VI-A: "In the largest input, the accelerated
    implementations achieve speedups of 3.2x, 5x, and 5.8x".  We accept
    a +/-30% band around each headline."""

    LAYER = evaluated_layers()[0]  # (147, 147, 64)

    @pytest.fixture(scope="class")
    def speedups(self):
        return {
            "fwd": (fwd_cycles(self.LAYER, "standard")
                    / fwd_cycles(self.LAYER, "im2col")),
            "mask": (fwd_cycles(self.LAYER, "standard", True)
                     / fwd_cycles(self.LAYER, "im2col", True)),
            "bwd": (bwd_cycles(self.LAYER, "standard")
                    / bwd_cycles(self.LAYER, "col2im")),
        }

    def test_forward_near_3_2(self, speedups):
        assert 3.2 * 0.7 <= speedups["fwd"] <= 3.2 * 1.3, speedups

    def test_mask_near_5(self, speedups):
        assert 5.0 * 0.7 <= speedups["mask"] <= 5.0 * 1.3, speedups

    def test_backward_near_5_8(self, speedups):
        assert 5.8 * 0.7 <= speedups["bwd"] <= 5.8 * 1.3, speedups

    def test_ordering_backward_gt_mask_gt_forward(self, speedups):
        # "The best improvement is on Maxpool backward."
        assert speedups["bwd"] > speedups["mask"] > speedups["fwd"]


class TestFigure8Shape:
    """Figure 8: implementation ordering per stride, single core."""

    def cycles(self, impl, size, stride):
        x = make_input(size, size, 16, seed=0)
        spec = PoolSpec.square(3, stride)
        return maxpool(x, spec, impl=impl,
                       config=ASCEND910_SINGLE_CORE,
                       collect_trace=False).cycles

    def test_stride2_ordering(self):
        # Figure 8b at a mid-range size: im2col < expansion < xy < std.
        c = {i: self.cycles(i, 35, 2)
             for i in ("standard", "im2col", "expansion", "xysplit")}
        assert c["im2col"] < c["expansion"] < c["xysplit"] < c["standard"], c

    def test_stride3_ordering(self):
        # Figure 8c: no patch overlap; accelerated variants still win.
        c = {i: self.cycles(i, 36, 3)
             for i in ("standard", "im2col", "expansion")}
        assert c["im2col"] < c["expansion"] < c["standard"], c

    def test_stride1_standard_fastest_at_threshold(self):
        # Figure 8a: "the direct Maxpool implementation is the fastest".
        from repro.bench import fig8_sizes

        size = fig8_sizes(1)[-1]
        c = {i: self.cycles(i, size, 1)
             for i in ("standard", "im2col", "expansion")}
        assert c["standard"] < c["im2col"], c
        assert c["standard"] < c["expansion"], c

    def test_im2col_advantage_grows_with_size(self):
        # Figures 7/8: the gap widens as the input grows.
        small = self.cycles("standard", 19, 2) / self.cycles("im2col", 19, 2)
        large = self.cycles("standard", 49, 2) / self.cycles("im2col", 49, 2)
        assert large > small


class TestMechanism:
    """Section V's explanation, asserted on the traces."""

    def test_vmax_issue_counts(self):
        # standard: Oh*Ow*Kh vmax issues; im2col: Kh*Kw.
        x = make_input(35, 35, 16, seed=0)
        spec = PoolSpec.square(3, 2)
        std = maxpool(x, spec, impl="standard",
                      config=ASCEND910_SINGLE_CORE)
        i2c = maxpool(x, spec, impl="im2col",
                      config=ASCEND910_SINGLE_CORE)
        oh, ow = spec.out_hw(35, 35)
        std_vmax = sum(t.trace.issues("vmax") for t in std.chip.per_tile)
        i2c_vmax = sum(t.trace.issues("vmax") for t in i2c.chip.per_tile)
        assert std_vmax == oh * ow * 3
        # per tile: Kh*Kw (plus repeat chunking on large planes)
        assert i2c_vmax <= 2 * 9 * len(i2c.tiles)

    def test_lane_utilization_explains_speedup(self):
        # "The speedups follow from ... better utilization of the
        # vector processing unit" (abstract).
        x = make_input(35, 35, 16, seed=0)
        spec = PoolSpec.square(3, 2)
        std = maxpool(x, spec, impl="standard", config=ASCEND910_SINGLE_CORE)
        i2c = maxpool(x, spec, impl="im2col", config=ASCEND910_SINGLE_CORE)
        assert std.chip.vector_lane_utilization < 0.2
        assert i2c.chip.vector_lane_utilization > 0.9

    def test_im2col_memory_blowup_only_in_target_buffer(self):
        # Section III-C: the duplication exists only in the UB; global
        # memory holds the original image either way.
        x = make_input(17, 17, 16, seed=0)
        spec = PoolSpec.square(3, 2)
        res = maxpool(x, spec, impl="im2col", config=ASCEND910_SINGLE_CORE)
        oh, ow = spec.out_hw(17, 17)
        planes_bytes = 9 * -(-oh * ow // 16) * 16 * 16 * 2
        # the planes region really is ~kh*kw times the output tile
        assert planes_bytes > 5 * (oh * ow * 16 * 2)


class TestAvgpoolClaims:
    """Section V-C: AvgPool benefits the same way."""

    def test_avg_forward_accelerated(self):
        x = make_input(35, 35, 16, seed=0)
        spec = PoolSpec.square(3, 2)
        std = avgpool(x, spec, impl="standard",
                      config=ASCEND910_SINGLE_CORE, collect_trace=False)
        i2c = avgpool(x, spec, impl="im2col",
                      config=ASCEND910_SINGLE_CORE, collect_trace=False)
        assert std.cycles / i2c.cycles > 2.0

    def test_avg_backward_accelerated(self):
        spec = PoolSpec.square(3, 2)
        grad = make_gradient(1, 17, 17, seed=2)
        std = avgpool_backward(grad, spec, 35, 35, impl="standard",
                               config=ASCEND910_SINGLE_CORE,
                               collect_trace=False)
        c2i = avgpool_backward(grad, spec, 35, 35, impl="col2im",
                               config=ASCEND910_SINGLE_CORE,
                               collect_trace=False)
        assert std.cycles / c2i.cycles > 3.0
