"""Repeat-limit chunking in the TIK intrinsics, verified functionally
with an artificially tiny repeat limit."""

import dataclasses

import numpy as np
import pytest

from repro.config import ASCEND910
from repro.dtypes import FLOAT16
from repro.fractal import col2im_nc1hwc0, im2col_nc1hwc0
from repro.isa import Im2ColParams
from repro.sim import AICore, GlobalMemory
from repro.tik import KernelBuilder

C0 = FLOAT16.c0
#: A chip whose repeat field holds only 2: every multi-fractal plane
#: must be split across instructions.
TINY_REPEAT = dataclasses.replace(ASCEND910, max_repeat=2)


class TestIm2colChunking:
    def test_split_instructions_produce_identical_planes(self, rng):
        p = Im2ColParams(ih=19, iw=19, kh=3, kw=3, sh=2, sw=2)  # 81 patches
        assert p.fractals_per_plane == 6  # forces ceil(6/2)=3 chunks/plane
        img = rng.standard_normal((19, 19, C0)).astype(np.float16)

        outputs = {}
        for config in (ASCEND910, TINY_REPEAT):
            b = KernelBuilder(config, FLOAT16)
            core = AICore(config)
            gm = GlobalMemory()
            src = b.alloc("L1", img.size)
            core.view("L1")[src.offset:src.end] = img.reshape(-1)
            dst = b.alloc("UB", p.kh * p.kw * p.plane_rows() * C0)
            b.im2col_planes(src, dst, p)
            core.run(b.program, gm)
            outputs[config.max_repeat] = (
                core.view("UB")[dst.offset:dst.end].copy(),
                len(b.program),
            )
        full, full_n = outputs[255]
        tiny, tiny_n = outputs[2]
        assert np.array_equal(full, tiny)
        assert tiny_n == 3 * full_n  # 3 chunks per plane
        oh, ow = p.out_hw()
        ref = im2col_nc1hwc0(img[None, None], 3, 3, 2, 2)[0, 0]
        got = full.reshape(3, 3, p.plane_rows(), C0)[:, :, : oh * ow]
        assert np.array_equal(got.reshape(3, 3, oh, ow, C0), ref)

    def test_all_instructions_respect_limit(self):
        p = Im2ColParams(ih=19, iw=19, kh=3, kw=3, sh=2, sw=2)
        b = KernelBuilder(TINY_REPEAT, FLOAT16)
        src = b.alloc("L1", 19 * 19 * C0)
        dst = b.alloc("UB", p.kh * p.kw * p.plane_rows() * C0)
        b.im2col_planes(src, dst, p)
        assert all(i.repeat <= 2 for i in b.program)


class TestCol2imChunking:
    def test_split_merge_matches_golden(self, rng):
        p = Im2ColParams(ih=19, iw=19, kh=3, kw=3, sh=2, sw=2)
        oh, ow = p.out_hw()
        plane = p.plane_rows() * C0
        cols = rng.integers(-3, 4, (3, 3, oh * ow, C0)).astype(np.float16)

        b = KernelBuilder(TINY_REPEAT, FLOAT16)
        core = AICore(TINY_REPEAT)
        gm = GlobalMemory()
        src = b.alloc("UB", 9 * plane)
        buf = core.view("UB")
        for i in range(3):
            for j in range(3):
                start = src.offset + (i * 3 + j) * plane
                buf[start:start + oh * ow * C0] = cols[i, j].reshape(-1)
        dst = b.alloc("UB", 19 * 19 * C0)
        b.dup(dst, 0.0)
        b.col2im_merge(src, dst, p)
        assert all(i.repeat <= 2 for i in b.program)
        core.run(b.program, gm)
        got = buf[dst.offset:dst.end].reshape(19, 19, C0)
        ref = col2im_nc1hwc0(
            cols.reshape(1, 1, 3, 3, oh, ow, C0), 19, 19, 2, 2
        )[0, 0]
        assert np.array_equal(got, ref)
