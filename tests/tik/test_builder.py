"""Tests for the TIK-style kernel builder and its custom intrinsics."""

import numpy as np
import pytest

from repro.config import ASCEND910
from repro.dtypes import FLOAT16, FRACTAL_ROWS
from repro.errors import CapacityError, IsaError
from repro.fractal import col2im_nc1hwc0, im2col_nc1hwc0
from repro.isa import Im2ColParams, MemRef
from repro.sim import AICore, GlobalMemory
from repro.tik import KernelBuilder

C0 = FLOAT16.c0


def fresh():
    return KernelBuilder(ASCEND910, FLOAT16), AICore(ASCEND910), GlobalMemory()


class TestAllocation:
    def test_alloc_tracks_capacity(self):
        b, _, _ = fresh()
        b.alloc("UB", 1000)
        assert b.ub_high_water() >= 2000

    def test_overflow_raises(self):
        b, _, _ = fresh()
        with pytest.raises(CapacityError):
            b.alloc("UB", ASCEND910.ub_bytes)  # elements > capacity


class TestDup:
    @pytest.mark.parametrize("n", [16, 128, 130, 255 * 128, 255 * 128 + 48])
    def test_fill_any_size(self, n):
        b, core, gm = fresh()
        ref = b.alloc("UB", n)
        b.dup(ref, 2.5)
        core.run(b.program, gm)
        assert np.all(core.view("UB")[ref.offset:ref.end] == np.float16(2.5))

    def test_chunking_respects_max_repeat(self):
        b, _, _ = fresh()
        ref = b.alloc("UB", (255 + 10) * 128)
        b.dup(ref, 0.0)
        for instr in b.program:
            assert instr.repeat <= 255


class TestDmaRows:
    def test_strided_row_copy(self, rng):
        b, core, gm = fresh()
        rows, src_w, dst_w = 4, 32, 48
        src = b.alloc("UB", rows * src_w)
        dst = b.alloc("UB", rows * dst_w)
        data = rng.standard_normal(rows * src_w).astype(np.float16)
        core.view("UB")[src.offset:src.end] = data
        b.dma_rows(src, dst, rows, src_w, dst_w, src_w, channel="local")
        core.run(b.program, gm)
        out = core.view("UB")[dst.offset:dst.end].reshape(rows, dst_w)
        assert np.array_equal(out[:, :src_w], data.reshape(rows, src_w))

    def test_copy_longer_than_row_rejected(self):
        b, _, _ = fresh()
        src = b.alloc("UB", 64)
        dst = b.alloc("UB", 64)
        with pytest.raises(IsaError):
            b.dma_rows(src, dst, 2, 32, 32, 40)


class TestIm2colIntrinsic:
    def test_planes_match_golden(self, rng):
        b, core, gm = fresh()
        p = Im2ColParams(ih=10, iw=10, kh=3, kw=3, sh=2, sw=2)
        img = rng.standard_normal((10, 10, C0)).astype(np.float16)
        src = b.alloc("L1", img.size)
        core.view("L1")[src.offset:src.end] = img.reshape(-1)
        dst = b.alloc("UB", p.kh * p.kw * p.plane_rows() * C0)
        plane = b.im2col_planes(src, dst, p)
        core.run(b.program, gm)
        got = core.view("UB")[dst.offset:dst.end].reshape(
            p.kh, p.kw, p.plane_rows(), C0
        )
        oh, ow = p.out_hw()
        ref = im2col_nc1hwc0(img[None, None], 3, 3, 2, 2)[0, 0]
        assert plane == p.plane_rows() * C0
        assert np.array_equal(
            got[:, :, : oh * ow].reshape(3, 3, oh, ow, C0), ref
        )

    def test_issue_count_is_kh_kw(self, rng):
        # one Im2Col per kernel offset (repeat mode 1 covers the grid)
        b, core, gm = fresh()
        p = Im2ColParams(ih=10, iw=10, kh=3, kw=3, sh=2, sw=2)
        src = b.alloc("L1", 10 * 10 * C0)
        dst = b.alloc("UB", p.kh * p.kw * p.plane_rows() * C0)
        b.im2col_planes(src, dst, p)
        assert b.program.issue_counts()["im2col"] == 9

    def test_chunking_when_many_fractals(self, rng):
        b, core, gm = fresh()
        # 100x100 grid at stride 1 -> 9604 patches -> 601 fractals/plane
        p = Im2ColParams(ih=100, iw=100, kh=2, kw=2, sh=1, sw=1)
        src = b.alloc("L1", 100 * 100 * C0)
        # planes don't fit the UB; just validate instruction splitting
        with pytest.raises(CapacityError):
            b.alloc("UB", p.kh * p.kw * p.plane_rows() * C0)

    def test_destination_too_small(self):
        b, _, _ = fresh()
        p = Im2ColParams(ih=10, iw=10, kh=2, kw=2, sh=2, sw=2)
        src = b.alloc("L1", 10 * 10 * C0)
        dst = b.alloc("UB", 16)
        with pytest.raises(IsaError):
            b.im2col_planes(src, dst, p)


class TestCol2imIntrinsic:
    def test_merge_matches_golden(self, rng):
        b, core, gm = fresh()
        p = Im2ColParams(ih=9, iw=9, kh=3, kw=3, sh=2, sw=2)
        oh, ow = p.out_hw()
        plane = p.plane_rows() * C0
        src = b.alloc("UB", p.kh * p.kw * plane)
        cols = rng.integers(-3, 4, (p.kh, p.kw, oh * ow, C0)).astype(
            np.float16
        )
        buf = core.view("UB")
        for i in range(p.kh):
            for j in range(p.kw):
                start = src.offset + (i * p.kw + j) * plane
                buf[start:start + oh * ow * C0] = cols[i, j].reshape(-1)
        dst = b.alloc("UB", 9 * 9 * C0)
        b.dup(dst, 0.0)
        b.col2im_merge(src, dst, p)
        core.run(b.program, gm)
        got = buf[dst.offset:dst.end].reshape(9, 9, C0)
        ref = col2im_nc1hwc0(
            cols.reshape(1, 1, p.kh, p.kw, oh, ow, C0), 9, 9, 2, 2
        )[0, 0]
        assert np.array_equal(got, ref)

    def test_issue_count_is_kh_kw(self):
        # Section V-B: "A Col2Im instruction needs to be issued Kh*Kw
        # times to complete the merge step of a tile."
        b, _, _ = fresh()
        p = Im2ColParams(ih=9, iw=9, kh=3, kw=3, sh=2, sw=2)
        src = b.alloc("UB", p.kh * p.kw * p.plane_rows() * C0)
        dst = b.alloc("UB", 9 * 9 * C0)
        b.col2im_merge(src, dst, p)
        assert b.program.issue_counts()["col2im"] == 9
