"""Tests for the Table I workload registry and input generators."""

import numpy as np
import pytest

from repro.errors import LayoutError, ReproError
from repro.workloads import (
    CNN_MAXPOOL_LAYERS,
    INCEPTION_V3_EVAL,
    evaluated_layers,
    layers_of,
    make_gradient,
    make_input,
)


class TestTable1:
    def test_cnns_present(self):
        assert set(CNN_MAXPOOL_LAYERS) == {
            "InceptionV3", "Xception", "Resnet50", "VGG16"
        }

    def test_inceptionv3_shapes(self):
        shapes = [l.hwc for l in CNN_MAXPOOL_LAYERS["InceptionV3"]]
        assert shapes == [
            (147, 147, 64), (71, 71, 192), (35, 35, 288), (17, 17, 768)
        ]

    def test_xception_shapes(self):
        shapes = [l.hwc for l in CNN_MAXPOOL_LAYERS["Xception"]]
        assert shapes == [
            (147, 147, 128), (74, 74, 256), (37, 37, 728), (19, 19, 1024)
        ]

    def test_resnet_single_layer(self):
        layers = CNN_MAXPOOL_LAYERS["Resnet50"]
        assert len(layers) == 1
        assert layers[0].hwc == (112, 112, 64)

    def test_vgg16_uses_2x2(self):
        for l in CNN_MAXPOOL_LAYERS["VGG16"]:
            assert (l.spec.kh, l.spec.sh) == (2, 2)

    def test_non_vgg_use_3x3_s2(self):
        for cnn in ("InceptionV3", "Xception", "Resnet50"):
            for l in CNN_MAXPOOL_LAYERS[cnn]:
                assert (l.spec.kh, l.spec.kw) == (3, 3)
                assert (l.spec.sh, l.spec.sw) == (2, 2)

    def test_evaluated_are_the_three_bold(self):
        assert [l.hwc for l in evaluated_layers()] == [
            (147, 147, 64), (71, 71, 192), (35, 35, 288)
        ]
        assert evaluated_layers() == INCEPTION_V3_EVAL

    def test_evaluated_have_no_padding(self):
        # "No padding is used in them" (Section VI-A).
        for l in evaluated_layers():
            assert not l.spec.has_padding

    def test_out_hw(self):
        l = CNN_MAXPOOL_LAYERS["InceptionV3"][1]
        assert l.out_hw() == (35, 35)

    def test_unknown_cnn(self):
        with pytest.raises(ReproError):
            layers_of("AlexNet")


class TestGenerators:
    def test_make_input_shape(self):
        x = make_input(9, 11, 40)
        assert x.shape == (1, 3, 9, 11, 16)  # C1 = ceil(40/16)
        assert x.dtype == np.float16

    def test_make_input_deterministic(self):
        assert np.array_equal(make_input(5, 5, 16, seed=3),
                              make_input(5, 5, 16, seed=3))
        assert not np.array_equal(make_input(5, 5, 16, seed=3),
                                  make_input(5, 5, 16, seed=4))

    def test_make_input_validates(self):
        with pytest.raises(LayoutError):
            make_input(0, 5, 16)

    def test_make_gradient_shape(self):
        g = make_gradient(3, 4, 5)
        assert g.shape == (1, 3, 4, 5, 16)

    def test_make_gradient_validates(self):
        with pytest.raises(LayoutError):
            make_gradient(0, 4, 5)
