"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AlignmentError,
    CapacityError,
    IsaError,
    LayoutError,
    LoweringError,
    MaskError,
    RepeatError,
    ReproError,
    ScheduleError,
    SimulationError,
    TilingError,
)

ALL = [
    LayoutError, AlignmentError, CapacityError, IsaError, MaskError,
    RepeatError, ScheduleError, LoweringError, TilingError, SimulationError,
]


@pytest.mark.parametrize("exc", ALL)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_alignment_is_layout_error():
    assert issubclass(AlignmentError, LayoutError)


def test_mask_and_repeat_are_isa_errors():
    assert issubclass(MaskError, IsaError)
    assert issubclass(RepeatError, IsaError)


def test_library_raises_only_repro_errors_for_bad_usage():
    """A downstream user can wrap any call in `except ReproError`."""
    import numpy as np

    from repro import PoolSpec, maxpool

    with pytest.raises(ReproError):
        maxpool(np.zeros((2, 2), np.float16), PoolSpec.square(2, 2))
    with pytest.raises(ReproError):
        PoolSpec(kh=0, kw=1, sh=1, sw=1)
