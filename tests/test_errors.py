"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AdmissionError,
    AlignmentError,
    CapacityError,
    CoreFailure,
    DeadlineExceeded,
    FaultInjectionError,
    IsaError,
    LayoutError,
    LoweringError,
    MaskError,
    QuotaExceededError,
    RepeatError,
    ReproError,
    ScheduleError,
    ServeError,
    SimulationError,
    TilingError,
    WorkerFailure,
)

ALL = [
    LayoutError, AlignmentError, CapacityError, IsaError, MaskError,
    RepeatError, ScheduleError, LoweringError, TilingError, SimulationError,
    CoreFailure, DeadlineExceeded, FaultInjectionError,
    ServeError, AdmissionError, QuotaExceededError, WorkerFailure,
]


@pytest.mark.parametrize("exc", ALL)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_alignment_is_layout_error():
    assert issubclass(AlignmentError, LayoutError)


def test_mask_and_repeat_are_isa_errors():
    assert issubclass(MaskError, IsaError)
    assert issubclass(RepeatError, IsaError)


def test_serve_errors_form_a_hierarchy():
    assert issubclass(AdmissionError, ServeError)
    assert issubclass(QuotaExceededError, ServeError)
    assert issubclass(WorkerFailure, ServeError)
    assert issubclass(ServeError, ReproError)


def test_fault_errors_are_simulation_errors():
    assert issubclass(CoreFailure, SimulationError)
    assert issubclass(DeadlineExceeded, SimulationError)
    assert issubclass(FaultInjectionError, SimulationError)


def test_summary_mismatch_message_names_both_sides():
    """The mismatch diagnostic carries the canonical program name and
    the instruction counts of both the summary and the program."""
    from repro.config import ASCEND910
    from repro.isa import Mask, MemRef, Program, VectorDup, VectorOperand
    from repro.dtypes import FLOAT16
    from repro.sim import AICore
    from repro.sim.aicore import summarize

    def prog(name, repeat):
        p = Program(name)
        d = MemRef("UB", 0, 128 * repeat, FLOAT16)
        p.emit(VectorDup(VectorOperand(d), 1.0, Mask.full(), repeat))
        return p

    target = prog("pool-s0-t0", 1)
    # count mismatch: message names the program and both counts
    two = prog("pool-s0-t0", 1)
    two.emit(VectorDup(
        VectorOperand(MemRef("UB", 0, 128, FLOAT16)), 2.0, Mask.full(), 1
    ))
    with pytest.raises(SimulationError) as exc:
        AICore._check_summary(target, summarize(two, ASCEND910))
    msg = str(exc.value)
    assert "pool-s0-t0" in msg and "2 instructions" in msg and "1" in msg

    # name mismatch: both canonical names and counts appear
    other = prog("other-s3-t0", 1)
    with pytest.raises(SimulationError) as exc:
        AICore._check_summary(target, summarize(other, ASCEND910))
    msg = str(exc.value)
    assert "other-s*-t0" in msg and "pool-s*-t0" in msg
    assert "1 instructions" in msg


def test_library_raises_only_repro_errors_for_bad_usage():
    """A downstream user can wrap any call in `except ReproError`."""
    import numpy as np

    from repro import PoolSpec, maxpool

    with pytest.raises(ReproError):
        maxpool(np.zeros((2, 2), np.float16), PoolSpec.square(2, 2))
    with pytest.raises(ReproError):
        PoolSpec(kh=0, kw=1, sh=1, sw=1)
