"""Tests for the golden Im2col / Col2im models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.fractal import (
    col2im_nc1hwc0,
    im2col_nc1hwc0,
    overlap_multiplicity,
)
from repro.fractal.im2col import output_hw


class TestOutputHw:
    def test_equation1_basic(self):
        # Figure 5's example: 8x8 image, k=(2,2), s=(2,2) -> (4,4).
        assert output_hw(8, 8, 2, 2, 2, 2) == (4, 4)

    def test_equation1_inceptionv3(self):
        # 71x71, k=3, s=2, no pad -> 35x35.
        assert output_hw(71, 71, 3, 3, 2, 2) == (35, 35)

    def test_equation1_with_padding(self):
        # Ih + Pt + Pb = 7, k=3, s=2 -> floor(4/2)+1 = 3.
        assert output_hw(5, 5, 3, 3, 2, 2, pt=1, pb=1, pl=1, pr=1) == (3, 3)

    def test_kernel_too_large(self):
        with pytest.raises(LayoutError):
            output_hw(2, 2, 3, 3, 1, 1)

    def test_nonpositive_stride(self):
        with pytest.raises(LayoutError):
            output_hw(4, 4, 2, 2, 0, 1)


def brute_force_im2col(x, kh, kw, sh, sw, pt=0, pb=0, pl=0, pr=0, pad=0.0):
    """Direct nested-loop definition of the transformation."""
    n, c1, ih, iw, c0 = x.shape
    oh, ow = output_hw(ih, iw, kh, kw, sh, sw, pt, pb, pl, pr)
    out = np.full((n, c1, kh, kw, oh, ow, c0), pad, dtype=x.dtype)
    for xi in range(kh):
        for yi in range(kw):
            for a in range(oh):
                for b in range(ow):
                    h = a * sh + xi - pt
                    w = b * sw + yi - pl
                    if 0 <= h < ih and 0 <= w < iw:
                        out[:, :, xi, yi, a, b] = x[:, :, h, w]
    return out


class TestIm2colGolden:
    def test_matches_brute_force_no_pad(self, rng):
        x = rng.standard_normal((1, 2, 7, 9, 16)).astype(np.float16)
        got = im2col_nc1hwc0(x, 3, 2, 2, 3)
        want = brute_force_im2col(x, 3, 2, 2, 3)
        assert np.array_equal(got, want)

    def test_matches_brute_force_padded(self, rng):
        x = rng.standard_normal((1, 1, 6, 6, 16)).astype(np.float16)
        got = im2col_nc1hwc0(x, 3, 3, 2, 2, pt=1, pb=1, pl=1, pr=1,
                             pad_value=-5.0)
        want = brute_force_im2col(x, 3, 3, 2, 2, 1, 1, 1, 1, pad=-5.0)
        assert np.array_equal(got, want)

    def test_paper_figure2_overlap(self):
        # Figure 2: 1-channel 5x5-ish example -- overlapping elements
        # appear in multiple output rows.  Use a 3x5 strip, k=(3,3),
        # s=(1,2): patches share a column.
        x = np.arange(1, 16, dtype=np.float16).reshape(1, 1, 3, 5, 1)
        cols = im2col_nc1hwc0(x, 3, 3, 1, 2)
        assert cols.shape == (1, 1, 3, 3, 1, 2, 1)
        # element at (h=0, w=2) value 3 belongs to both patches
        flat = cols.reshape(-1)
        assert np.count_nonzero(flat == 3) == 2

    def test_rejects_wrong_rank(self):
        with pytest.raises(LayoutError):
            im2col_nc1hwc0(np.zeros((2, 2, 2, 2), np.float16), 1, 1, 1, 1)

    def test_no_overlap_is_pure_reshape(self, rng):
        # stride == kernel: every input element appears exactly once.
        x = rng.standard_normal((1, 1, 6, 6, 16)).astype(np.float16)
        cols = im2col_nc1hwc0(x, 2, 2, 2, 2)
        assert np.sort(cols.reshape(-1)).tolist() == \
            np.sort(x.reshape(-1)).tolist()


class TestCol2imGolden:
    def test_inverse_when_no_overlap(self, rng):
        x = rng.standard_normal((1, 1, 8, 8, 16)).astype(np.float16)
        cols = im2col_nc1hwc0(x, 2, 2, 2, 2)
        back = col2im_nc1hwc0(cols, 8, 8, 2, 2)
        # Figure 1: "If there is no overlap ... Col2im simply returns
        # the matrix to its original shape."
        assert np.array_equal(back, x)

    def test_overlap_sums(self):
        # Figure 2's property: overlapping positions accumulate.
        cols = np.ones((1, 1, 3, 3, 3, 3, 1), dtype=np.float16)
        back = col2im_nc1hwc0(cols, 7, 7, 2, 2)
        mult = overlap_multiplicity(7, 7, 3, 3, 2, 2)
        assert np.array_equal(back[0, 0, :, :, 0].astype(np.int64), mult)

    def test_padding_contributions_dropped(self, rng):
        cols = np.ones((1, 1, 3, 3, 3, 3, 16), dtype=np.float16)
        back = col2im_nc1hwc0(cols, 5, 5, 2, 2, pt=1, pb=1, pl=1, pr=1)
        assert back.shape == (1, 1, 5, 5, 16)
        # the total mass kept is the mass that landed inside the image
        mult = overlap_multiplicity(5, 5, 3, 3, 2, 2, 1, 1, 1, 1)
        assert back.astype(np.int64).sum() == mult.sum() * 16

    def test_shape_validation(self):
        cols = np.zeros((1, 1, 2, 2, 2, 2, 16), np.float16)
        with pytest.raises(LayoutError):
            col2im_nc1hwc0(cols, 10, 10, 2, 2)  # wrong grid

    def test_rank_validation(self):
        with pytest.raises(LayoutError):
            col2im_nc1hwc0(np.zeros((2, 2), np.float16), 2, 2, 1, 1)


class TestDuality:
    """col2im(im2col(x)) == multiplicity * x -- the central identity."""

    @given(
        ih=st.integers(3, 10),
        iw=st.integers(3, 10),
        kh=st.integers(1, 3),
        kw=st.integers(1, 3),
        sh=st.integers(1, 3),
        sw=st.integers(1, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_duality_property(self, ih, iw, kh, kw, sh, sw):
        if kh > ih or kw > iw:
            return
        rng = np.random.default_rng(ih * 7919 + iw * 31 + kh * 7 + kw)
        # integers keep fp16 accumulation exact
        x = rng.integers(-4, 5, (1, 1, ih, iw, 16)).astype(np.float16)
        cols = im2col_nc1hwc0(x, kh, kw, sh, sw)
        back = col2im_nc1hwc0(cols, ih, iw, sh, sw)
        mult = overlap_multiplicity(ih, iw, kh, kw, sh, sw)
        want = x * mult[None, None, :, :, None].astype(np.float16)
        assert np.array_equal(back, want)

    @given(
        ih=st.integers(4, 9),
        k=st.integers(2, 3),
        s=st.integers(1, 3),
        p=st.integers(0, 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_duality_with_padding(self, ih, k, s, p):
        if p >= k:
            return
        rng = np.random.default_rng(ih * 100 + k * 10 + s)
        x = rng.integers(-3, 4, (1, 1, ih, ih, 16)).astype(np.float16)
        cols = im2col_nc1hwc0(x, k, k, s, s, p, p, p, p)
        back = col2im_nc1hwc0(cols, ih, ih, s, s, p, p, p, p)
        mult = overlap_multiplicity(ih, ih, k, k, s, s, p, p, p, p)
        want = x * mult[None, None, :, :, None].astype(np.float16)
        assert np.array_equal(back, want)


class TestMultiplicity:
    def test_no_overlap_all_ones(self):
        assert np.all(overlap_multiplicity(8, 8, 2, 2, 2, 2) == 1)

    def test_stride1_center(self):
        # k=3, s=1: interior positions are covered by 9 patches.
        m = overlap_multiplicity(10, 10, 3, 3, 1, 1)
        assert m[5, 5] == 9
        assert m[0, 0] == 1  # corner: single patch

    def test_uncovered_tail_rows(self):
        # 7x7, k=2, s=3: last row/col not covered by any patch.
        m = overlap_multiplicity(7, 7, 2, 3, 2, 3)
        assert m[-1, -1] == 0
