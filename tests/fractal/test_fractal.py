"""Tests for the data-fractal abstraction."""

import numpy as np
import pytest

from repro.dtypes import FRACTAL_ROWS
from repro.errors import LayoutError
from repro.fractal import Fractal, join_fractals, split_into_fractals


def make(rng, rows=FRACTAL_ROWS, cols=16):
    return rng.standard_normal((rows, cols)).astype(np.float16)


class TestFractal:
    def test_valid_shape(self, rng):
        f = Fractal(make(rng))
        assert f.data.shape == (16, 16)
        assert f.nbytes == 512  # 4096 bits

    def test_wrong_shape_rejected(self, rng):
        with pytest.raises(LayoutError):
            Fractal(make(rng, rows=8))
        with pytest.raises(LayoutError):
            Fractal(make(rng, cols=8))

    def test_immutable(self, rng):
        f = Fractal(make(rng))
        with pytest.raises(ValueError):
            f.data[0, 0] = 1.0

    def test_addition(self, rng):
        a, b = make(rng), make(rng)
        s = Fractal(a) + Fractal(b)
        assert np.array_equal(s.data, a + b)

    def test_matmul_accumulates_fp32(self, rng):
        a, b = make(rng), make(rng)
        got = Fractal(a).matmul(Fractal(b))
        assert got.dtype == np.float32
        want = a.astype(np.float32) @ b.astype(np.float32)
        assert np.allclose(got, want)

    def test_dtype_descriptor(self, rng):
        assert Fractal(make(rng)).dtype.name == "float16"


class TestSplitJoin:
    def test_split_counts(self, rng):
        m = make(rng, rows=48)
        fr = split_into_fractals(m)
        assert len(fr) == 3
        assert all(f.data.shape == (16, 16) for f in fr)

    def test_round_trip(self, rng):
        m = make(rng, rows=64)
        assert np.array_equal(join_fractals(split_into_fractals(m)), m)

    def test_split_rejects_ragged_rows(self, rng):
        with pytest.raises(LayoutError):
            split_into_fractals(make(rng, rows=20))

    def test_split_rejects_wrong_cols(self, rng):
        with pytest.raises(LayoutError):
            split_into_fractals(make(rng, rows=16, cols=8))

    def test_join_empty(self):
        with pytest.raises(LayoutError):
            join_fractals([])
