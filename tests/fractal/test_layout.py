"""Tests for NCHW <-> NC1HWC0 layout conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes import FLOAT16, UINT8
from repro.errors import LayoutError
from repro.fractal import (
    c1_of,
    nc1hwc0_to_nchw,
    nc1hwc0_to_nhwc,
    nchw_to_nc1hwc0,
    nhwc_to_nc1hwc0,
    zero_pad_hw,
)


class TestC1Of:
    @pytest.mark.parametrize(
        "c,c0,expect",
        [(16, 16, 1), (17, 16, 2), (32, 16, 2), (1, 16, 1),
         (64, 32, 2), (768, 16, 48)],
    )
    def test_values(self, c, c0, expect):
        assert c1_of(c, c0) == expect

    @pytest.mark.parametrize("c", [0, -1])
    def test_invalid_channels(self, c):
        with pytest.raises(LayoutError):
            c1_of(c, 16)

    def test_invalid_c0(self):
        with pytest.raises(LayoutError):
            c1_of(16, 0)


class TestNchwRoundTrip:
    def test_shape(self, rng):
        x = rng.standard_normal((2, 20, 5, 7)).astype(np.float16)
        f = nchw_to_nc1hwc0(x)
        assert f.shape == (2, 2, 5, 7, 16)

    def test_round_trip_exact(self, rng):
        x = rng.standard_normal((1, 33, 6, 6)).astype(np.float16)
        assert np.array_equal(nc1hwc0_to_nchw(nchw_to_nc1hwc0(x), 33), x)

    def test_channel_padding_is_zero(self, rng):
        x = rng.standard_normal((1, 17, 4, 4)).astype(np.float16)
        f = nchw_to_nc1hwc0(x)
        # channels 17..31 of the second C1 group must be zero.
        assert np.all(f[:, 1, :, :, 1:] == 0)

    def test_exact_multiple_no_padding(self, rng):
        x = rng.standard_normal((1, 32, 3, 3)).astype(np.float16)
        f = nchw_to_nc1hwc0(x)
        # every element of x appears exactly once
        assert np.sort(f.reshape(-1)).tolist() == np.sort(x.reshape(-1)).tolist()

    def test_element_placement(self, rng):
        x = rng.standard_normal((1, 32, 4, 4)).astype(np.float16)
        f = nchw_to_nc1hwc0(x)
        # x[n, c, h, w] == f[n, c // 16, h, w, c % 16]
        assert f[0, 1, 2, 3, 5] == x[0, 21, 2, 3]

    def test_uint8_uses_c0_32(self, rng):
        x = (rng.integers(0, 255, (1, 40, 3, 3))).astype(np.uint8)
        f = nchw_to_nc1hwc0(x, UINT8)
        assert f.shape == (1, 2, 3, 3, 32)
        assert np.array_equal(nc1hwc0_to_nchw(f, 40), x)

    def test_rejects_wrong_rank(self):
        with pytest.raises(LayoutError):
            nchw_to_nc1hwc0(np.zeros((3, 3), np.float16))

    def test_to_nchw_rejects_bad_channels(self, rng):
        f = nchw_to_nc1hwc0(
            rng.standard_normal((1, 16, 2, 2)).astype(np.float16)
        )
        with pytest.raises(LayoutError):
            nc1hwc0_to_nchw(f, 17)
        with pytest.raises(LayoutError):
            nc1hwc0_to_nchw(f, 0)

    def test_output_contiguous(self, rng):
        x = rng.standard_normal((1, 16, 4, 4)).astype(np.float16)
        assert nchw_to_nc1hwc0(x).flags["C_CONTIGUOUS"]


class TestNhwc:
    def test_round_trip(self, rng):
        x = rng.standard_normal((1, 5, 6, 40)).astype(np.float16)
        f = nhwc_to_nc1hwc0(x)
        assert f.shape == (1, 3, 5, 6, 16)
        assert np.array_equal(nc1hwc0_to_nhwc(f, 40), x)

    def test_agrees_with_nchw_path(self, rng):
        x = rng.standard_normal((1, 4, 4, 24)).astype(np.float16)
        via_nchw = nchw_to_nc1hwc0(
            np.ascontiguousarray(x.transpose(0, 3, 1, 2))
        )
        assert np.array_equal(nhwc_to_nc1hwc0(x), via_nchw)


class TestZeroPad:
    def test_pads_shape(self, rng):
        f = rng.standard_normal((1, 1, 4, 5, 16)).astype(np.float16)
        p = zero_pad_hw(f, 1, 2, 3, 0)
        assert p.shape == (1, 1, 7, 8, 16)

    def test_interior_preserved(self, rng):
        f = rng.standard_normal((1, 1, 4, 4, 16)).astype(np.float16)
        p = zero_pad_hw(f, 1, 1, 1, 1)
        assert np.array_equal(p[:, :, 1:5, 1:5], f)

    def test_halo_value(self, rng):
        f = rng.standard_normal((1, 1, 2, 2, 16)).astype(np.float16)
        p = zero_pad_hw(f, 1, 0, 0, 0, value=-7.0)
        assert np.all(p[:, :, 0] == np.float16(-7.0))

    def test_negative_pad_rejected(self):
        with pytest.raises(LayoutError):
            zero_pad_hw(np.zeros((1, 1, 2, 2, 16), np.float16), -1, 0, 0, 0)

    def test_wrong_rank_rejected(self):
        with pytest.raises(LayoutError):
            zero_pad_hw(np.zeros((2, 2), np.float16), 1, 1, 1, 1)


class TestLayoutProperties:
    @given(
        n=st.integers(1, 2),
        c=st.integers(1, 40),
        h=st.integers(1, 6),
        w=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, n, c, h, w):
        rng = np.random.default_rng(n * 1000 + c * 100 + h * 10 + w)
        x = rng.standard_normal((n, c, h, w)).astype(np.float16)
        f = nchw_to_nc1hwc0(x)
        assert f.shape[1] == c1_of(c, FLOAT16.c0)
        assert np.array_equal(nc1hwc0_to_nchw(f, c), x)

    @given(c=st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_total_mass_preserved(self, c):
        rng = np.random.default_rng(c)
        x = rng.standard_normal((1, c, 3, 3)).astype(np.float16)
        f = nchw_to_nc1hwc0(x)
        # zero padding adds no mass
        assert np.isclose(
            f.astype(np.float64).sum(), x.astype(np.float64).sum()
        )
