"""Tests for the CCE-C-style program renderer."""

import pytest

from repro.config import ASCEND910
from repro.dtypes import FLOAT16
from repro.isa import (
    Col2ImStore,
    DataMove,
    Im2ColLoad,
    Im2ColParams,
    Mask,
    MemRef,
    Mmad,
    Program,
    VADD,
    VADDS,
    VectorDup,
    VectorOperand,
)
from repro.isa.render import (
    render_instruction,
    render_program,
    summarize_program,
)


def ops(n=128):
    d = MemRef("UB", 0, n, FLOAT16)
    s = MemRef("UB", n, n, FLOAT16)
    return VectorOperand(d), VectorOperand(s)


class TestRenderInstruction:
    def test_vector_binary(self):
        d, s = ops()
        text = render_instruction(VADD(d, d, s, Mask.first(16), 3))
        assert "vadd" in text
        assert "mask=16/128" in text
        assert "repeat=3" in text
        assert "UB[0:128]" in text

    def test_vector_scalar(self):
        d, s = ops()
        text = render_instruction(VADDS(d, s, 2.5, Mask.full(), 1))
        assert "vadds" in text and "imm=2.5" in text

    def test_dup(self):
        d, _ = ops()
        text = render_instruction(VectorDup(d, -65504.0, Mask.full(), 2))
        assert "vector_dup" in text and "imm=-65504" in text

    def test_strides_annotated(self):
        d, s = ops(512)
        from repro.isa import VectorOperand as VO

        text = render_instruction(
            VADD(VO(d.ref, rep_stride=0), VO(d.ref, rep_stride=0),
                 VO(s.ref, blk_stride=2, rep_stride=1), Mask.first(16), 2)
        )
        assert "rep=0" in text and "blk=2" in text

    def test_im2col(self):
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        src = MemRef("L1", 0, 8 * 8 * 16, FLOAT16)
        dst = MemRef("UB", 0, 256, FLOAT16)
        text = render_instruction(
            Im2ColLoad(src=src, dst=dst, params=p, c1=0, xk=1, yk=0)
        )
        assert "img2col" in text and "xk=1" in text and "mode=1" in text

    def test_col2im(self):
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        src = MemRef("UB", 0, 256, FLOAT16)
        dst = MemRef("UB", 256, 8 * 8 * 16, FLOAT16)
        text = render_instruction(
            Col2ImStore(src=src, dst=dst, params=p, c1=0, xk=0, yk=1)
        )
        assert "col2img" in text and "yk=1" in text

    def test_data_move_accumulate(self):
        a = MemRef("UB", 0, 64, FLOAT16)
        b = MemRef("dx", 0, 64, FLOAT16)
        assert "+=" in render_instruction(DataMove(a, b, accumulate=True))
        assert "+=" not in render_instruction(DataMove(a, b))

    def test_mmad(self):
        a = MemRef("L0A", 0, 256, FLOAT16)
        b = MemRef("L0B", 0, 256, FLOAT16)
        c = MemRef("L0C", 0, 256, FLOAT16)
        text = render_instruction(Mmad(a=a, b=b, c=c, repeat=1, init=True))
        assert "mmad" in text and "init=1" in text


class TestRenderProgram:
    def make(self, n=5):
        d, s = ops()
        p = Program("k")
        for _ in range(n):
            p.emit(VADD(d, d, s, Mask.first(16), 1))
        return p

    def test_full_render(self):
        text = render_program(self.make())
        assert text.count("vadd") == 5
        assert "// kernel k: 5 instructions" in text

    def test_limit(self):
        text = render_program(self.make(), limit=2)
        assert text.count("vadd(") == 2
        assert "3 more" in text

    def test_summary_collapses_runs(self):
        p = self.make(100)
        text = summarize_program(p)
        assert "x100 issues" in text
        assert text.count("vadd") == 1

    def test_summary_separates_different_shapes(self):
        d, s = ops()
        p = Program("k")
        p.emit(VADD(d, d, s, Mask.first(16), 1))
        p.emit(VADD(d, d, s, Mask.full(), 1))  # different mask
        text = summarize_program(p)
        assert text.count("vadd") == 2

    def test_summary_shows_loop_trips(self):
        p = self.make(3)
        p.scalar_loop_trips = 7
        assert "scalar loop trips: 7" in summarize_program(p)
