"""Tests for the 128-bit vector mask register."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes import FLOAT16, FLOAT32
from repro.errors import MaskError
from repro.isa import Mask


class TestConstruction:
    def test_full_mask(self):
        m = Mask.full()
        assert m.popcount == 128
        assert m.bits == (1 << 128) - 1

    def test_first_n(self):
        m = Mask.first(16)
        assert m.popcount == 16
        assert m.bits == 0xFFFF

    def test_first_bounds(self):
        with pytest.raises(MaskError):
            Mask.first(0)
        with pytest.raises(MaskError):
            Mask.first(129)

    def test_zero_mask_rejected(self):
        with pytest.raises(MaskError):
            Mask(0)

    def test_too_wide_rejected(self):
        with pytest.raises(MaskError):
            Mask(1 << 128)

    def test_non_int_rejected(self):
        with pytest.raises(MaskError):
            Mask("ff")  # type: ignore[arg-type]


class TestForElements:
    def test_fp16_lanes(self):
        m = Mask.for_elements(16, FLOAT16)
        assert np.array_equal(m.lanes(FLOAT16), np.arange(16))

    def test_fp16_full(self):
        m = Mask.for_elements(128, FLOAT16)
        assert m.popcount == 128

    def test_fp32_scaled_bits(self):
        # fp32: 64 lanes per repeat; lane i occupies bit 2*i.
        m = Mask.for_elements(3, FLOAT32)
        assert np.array_equal(m.lanes(FLOAT32), np.arange(3))

    def test_count_bounds(self):
        with pytest.raises(MaskError):
            Mask.for_elements(0, FLOAT16)
        with pytest.raises(MaskError):
            Mask.for_elements(129, FLOAT16)

    @given(n=st.integers(1, 128))
    @settings(max_examples=50, deadline=None)
    def test_lane_count_matches(self, n):
        m = Mask.for_elements(n, FLOAT16)
        lanes = m.lanes(FLOAT16)
        assert len(lanes) == n
        assert np.array_equal(lanes, np.arange(n))


class TestUtilization:
    def test_c0_only_is_one_eighth(self):
        # The paper's standard pooling: "only 16 of 128 elements of the
        # vector mask are set".
        assert Mask.first(16).utilization(FLOAT16) == pytest.approx(0.125)

    def test_full_is_one(self):
        assert Mask.full().utilization(FLOAT16) == 1.0

    def test_sparse_pattern(self):
        m = Mask(0b1010101)  # 4 lanes
        assert m.popcount == 4
        assert m.utilization(FLOAT16) == pytest.approx(4 / 128)

    def test_lanes_of_sparse_pattern(self):
        m = Mask(0b1001)
        assert m.lanes(FLOAT16).tolist() == [0, 3]
