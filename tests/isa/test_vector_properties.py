"""Property-based tests: vector instructions vs a NumPy oracle over
randomized masks, strides and repeats."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ASCEND910
from repro.isa import Mask, Program, VectorBinary, VectorOperand
from repro.sim import AICore, GlobalMemory

OPS = {
    "vmax": np.maximum,
    "vmin": np.minimum,
    "vadd": np.add,
    "vsub": np.subtract,
    "vmul": np.multiply,
}


def oracle(op, a, b, d, d_op, a_op, b_op, mask_bits, repeat):
    """Reference semantics: sequential repeats, per-lane mask."""
    lanes = [i for i in range(128) if mask_bits >> i & 1]
    out = d.copy()
    for r in range(repeat):
        for lane in lanes:
            blk, off = lane // 16, lane % 16

            def idx(o):
                return (r * o.rep_stride + blk * o.blk_stride) * 16 + off

            out[idx(d_op)] = OPS[op](
                out[idx(a_op)] if a_op is d_op else a[idx(a_op)],
                b[idx(b_op)],
            )
    return out


@given(
    op=st.sampled_from(sorted(OPS)),
    mask_bits=st.integers(1, (1 << 128) - 1),
    repeat=st.integers(1, 6),
    d_rep=st.integers(0, 10),
    b_rep=st.integers(0, 10),
    b_blk=st.integers(1, 3),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_binary_matches_oracle(op, mask_bits, repeat, d_rep, b_rep, b_blk, seed):
    rng = np.random.default_rng(seed)
    n = 4096
    core = AICore(ASCEND910)
    gm = GlobalMemory()
    d_ref = core.alloc("UB", n)
    b_ref = core.alloc("UB", n)
    d0 = rng.integers(-8, 9, n).astype(np.float16)
    b0 = rng.integers(-8, 9, n).astype(np.float16)
    core.view("UB")[d_ref.offset:d_ref.end] = d0
    core.view("UB")[b_ref.offset:b_ref.end] = b0

    d_op = VectorOperand(d_ref, blk_stride=1, rep_stride=d_rep)
    b_op = VectorOperand(b_ref, blk_stride=b_blk, rep_stride=b_rep)
    prog = Program("prop")
    prog.emit(VectorBinary(op, d_op, d_op, b_op, Mask(mask_bits), repeat))
    core.run(prog, gm)
    got = core.view("UB")[d_ref.offset:d_ref.end].copy()
    want = oracle(op, d0, b0, d0, d_op, d_op, b_op, mask_bits, repeat)
    assert np.array_equal(got, want)


@given(
    repeat=st.integers(1, 8),
    rep_stride=st.integers(0, 9),
    value=st.floats(-100, 100, width=16),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_dup_matches_oracle(repeat, rep_stride, value, seed):
    from repro.isa import VectorDup

    rng = np.random.default_rng(seed)
    n = 4096
    core = AICore(ASCEND910)
    gm = GlobalMemory()
    ref = core.alloc("UB", n)
    before = rng.standard_normal(n).astype(np.float16)
    core.view("UB")[ref.offset:ref.end] = before
    op = VectorOperand(ref, rep_stride=rep_stride)
    prog = Program("dup")
    prog.emit(VectorDup(op, value, Mask.full(), repeat))
    core.run(prog, gm)
    got = core.view("UB")[ref.offset:ref.end]
    want = before.copy()
    for r in range(repeat):
        for lane in range(128):
            want[(r * rep_stride + lane // 16) * 16 + lane % 16] = np.float16(value)
    assert np.array_equal(got, want)
