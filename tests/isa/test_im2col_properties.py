"""Property-based fuzzing of the Im2Col instruction against the golden
model, across geometry, repeat modes, padding and channel groups."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ASCEND910
from repro.dtypes import FLOAT16, FRACTAL_ROWS
from repro.fractal import im2col_nc1hwc0
from repro.isa import Im2ColLoad, Im2ColParams, Program
from repro.sim import AICore, GlobalMemory

C0 = FLOAT16.c0


GEOMETRY = st.tuples(
    st.integers(4, 14),   # ih
    st.integers(4, 14),   # iw
    st.integers(1, 3),    # kh
    st.integers(1, 3),    # kw
    st.integers(1, 3),    # sh
    st.integers(1, 3),    # sw
    st.integers(0, 1),    # pad
    st.integers(1, 3),    # c1 extent
)


def _legal(ih, iw, kh, kw, sh, sw, pad):
    if pad >= kh or pad >= kw:
        return False
    return ih + 2 * pad >= kh and iw + 2 * pad >= kw


@given(geom=GEOMETRY, seed=st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_mode1_planes_match_golden(geom, seed):
    """Repeat-mode-1 plane loads equal the golden im2col for any legal
    geometry, including padding halos and partial final fractals."""
    ih, iw, kh, kw, sh, sw, pad, c1e = geom
    if not _legal(ih, iw, kh, kw, sh, sw, pad):
        return
    rng = np.random.default_rng(seed)
    params = Im2ColParams(ih=ih, iw=iw, kh=kh, kw=kw, sh=sh, sw=sw,
                          pt=pad, pb=pad, pl=pad, pr=pad)
    img = rng.integers(-8, 9, (c1e, ih, iw, C0)).astype(np.float16)
    core = AICore(ASCEND910)
    gm = GlobalMemory()
    src = core.alloc("L1", img.size)
    core.view("L1")[src.offset:src.end] = img.reshape(-1)
    c1 = seed % c1e
    plane = params.plane_rows() * C0
    dst = core.alloc("UB", kh * kw * plane)
    prog = Program("fuzz")
    for xk in range(kh):
        for yk in range(kw):
            prog.emit(Im2ColLoad(
                src=src, dst=dst.slice((xk * kw + yk) * plane, plane),
                params=params, c1=c1, xk=xk, yk=yk,
                repeat=params.fractals_per_plane, pad_value=-6.0,
            ))
    core.run(prog, gm)
    oh, ow = params.out_hw()
    got = core.view("UB")[dst.offset:dst.end].reshape(
        kh, kw, params.plane_rows(), C0
    )
    ref = im2col_nc1hwc0(
        img[None], kh, kw, sh, sw, pad, pad, pad, pad, pad_value=-6.0
    )[0, c1]
    assert np.array_equal(
        got[:, :, : oh * ow].reshape(kh, kw, oh, ow, C0), ref
    )
    # pad rows of a partial final fractal carry the pad value
    assert np.all(got[:, :, oh * ow:] == np.float16(-6.0))


@given(geom=GEOMETRY, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_mode0_stream_matches_golden(geom, seed):
    """A single mode-0 instruction streams the [c1, (xk, yk)] fractal
    chain of one patch window, in exactly that order."""
    ih, iw, kh, kw, sh, sw, pad, c1e = geom
    if not _legal(ih, iw, kh, kw, sh, sw, pad):
        return
    params = Im2ColParams(ih=ih, iw=iw, kh=kh, kw=kw, sh=sh, sw=sw,
                          pt=pad, pb=pad, pl=pad, pr=pad)
    k_depth = c1e * kh * kw
    if k_depth > 255:
        return
    rng = np.random.default_rng(seed)
    img = rng.integers(-8, 9, (c1e, ih, iw, C0)).astype(np.float16)
    core = AICore(ASCEND910)
    gm = GlobalMemory()
    src = core.alloc("L1", img.size)
    core.view("L1")[src.offset:src.end] = img.reshape(-1)
    dst = core.alloc("UB", k_depth * FRACTAL_ROWS * C0)
    prog = Program("mode0")
    prog.emit(Im2ColLoad(
        src=src, dst=dst, params=params, c1=0, xk=0, yk=0,
        first_patch=0, repeat=k_depth, repeat_mode=0, pad_value=0.0,
    ))
    core.run(prog, gm)
    got = core.view("UB")[dst.offset:dst.end].reshape(
        c1e, kh, kw, FRACTAL_ROWS, C0
    )
    ref = im2col_nc1hwc0(
        img[None], kh, kw, sh, sw, pad, pad, pad, pad, pad_value=0.0
    )[0]  # (c1, kh, kw, oh, ow, C0)
    oh, ow = params.out_hw()
    rows = min(FRACTAL_ROWS, oh * ow)
    flat_ref = ref.reshape(c1e, kh, kw, oh * ow, C0)[:, :, :, :rows]
    assert np.array_equal(got[:, :, :, :rows], flat_ref)
