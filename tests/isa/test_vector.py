"""Tests for Vector Unit instruction semantics."""

import numpy as np
import pytest

from repro.config import ASCEND910
from repro.dtypes import FLOAT16
from repro.errors import IsaError, RepeatError
from repro.isa import (
    Mask,
    MemRef,
    Program,
    VADD,
    VADDS,
    VCMP_EQ,
    VDIV,
    VMAX,
    VMIN,
    VMUL,
    VMULS,
    VSUB,
    VectorBinary,
    VectorCopy,
    VectorDup,
    VectorOperand,
)
from repro.sim import AICore, GlobalMemory

COST = ASCEND910.cost


def setup_core(rng, n=512):
    core = AICore(ASCEND910)
    gm = GlobalMemory()
    src0 = core.alloc("UB", n)
    src1 = core.alloc("UB", n)
    dst = core.alloc("UB", n)
    a = rng.standard_normal(n).astype(np.float16)
    b = rng.standard_normal(n).astype(np.float16)
    core.view("UB")[src0.offset:src0.end] = a
    core.view("UB")[src1.offset:src1.end] = b
    return core, gm, src0, src1, dst, a, b


def run_one(core, gm, instr):
    prog = Program("t")
    prog.emit(instr)
    return core.run(prog, gm)


OPS = [
    (VMAX, np.maximum),
    (VMIN, np.minimum),
    (VADD, np.add),
    (VSUB, np.subtract),
    (VMUL, np.multiply),
]


class TestBinaryOps:
    @pytest.mark.parametrize("ctor,npop", OPS)
    def test_full_mask_semantics(self, rng, ctor, npop):
        core, gm, s0, s1, d, a, b = setup_core(rng)
        instr = ctor(
            VectorOperand(d), VectorOperand(s0), VectorOperand(s1),
            Mask.full(), repeat=4,
        )
        run_one(core, gm, instr)
        got = core.view("UB")[d.offset:d.end]
        assert np.array_equal(got, npop(a, b))

    def test_vdiv(self, rng):
        core, gm, s0, s1, d, a, b = setup_core(rng)
        run_one(core, gm, VDIV(
            VectorOperand(d), VectorOperand(s0), VectorOperand(s1),
            Mask.full(), repeat=4,
        ))
        got = core.view("UB")[d.offset:d.end]
        with np.errstate(divide="ignore", invalid="ignore"):
            want = a / b
        assert np.array_equal(got, want)

    def test_partial_mask_leaves_lanes_untouched(self, rng):
        core, gm, s0, s1, d, a, b = setup_core(rng, n=128)
        run_one(core, gm, VADD(
            VectorOperand(d), VectorOperand(s0), VectorOperand(s1),
            Mask.first(16), repeat=1,
        ))
        got = core.view("UB")[d.offset:d.end]
        assert np.array_equal(got[:16], (a + b)[:16])
        assert np.all(got[16:] == 0)  # untouched (buffer zero-init)

    def test_sparse_mask(self, rng):
        core, gm, s0, s1, d, a, b = setup_core(rng, n=128)
        run_one(core, gm, VMUL(
            VectorOperand(d), VectorOperand(s0), VectorOperand(s1),
            Mask(0b101), repeat=1,
        ))
        got = core.view("UB")[d.offset:d.end]
        assert got[0] == a[0] * b[0]
        assert got[1] == 0
        assert got[2] == a[2] * b[2]

    def test_accumulating_reduction_with_zero_rep_stride(self, rng):
        # The Section V-A pattern: dst fixed, src advancing -> a single
        # vmax reduces across the repeats sequentially.
        core, gm, s0, s1, d, a, b = setup_core(rng, n=256)
        core.view("UB")[d.offset:d.offset + 16] = np.float16(
            FLOAT16.min_value
        )
        run_one(core, gm, VMAX(
            VectorOperand(d, rep_stride=0),
            VectorOperand(d, rep_stride=0),
            VectorOperand(s1, rep_stride=1),
            Mask.first(16), repeat=8,
        ))
        got = core.view("UB")[d.offset:d.offset + 16]
        want = b[: 8 * 16].reshape(8, 16).max(axis=0)
        assert np.array_equal(got, want)

    def test_strided_source_blocks(self, rng):
        # blk_stride=2 on the source gathers every other block.
        core, gm, s0, s1, d, a, b = setup_core(rng, n=512)
        run_one(core, gm, VADD(
            VectorOperand(d),
            VectorOperand(s0),
            VectorOperand(s1, blk_stride=2),
            Mask.first(32), repeat=1,
        ))
        got = core.view("UB")[d.offset:d.offset + 32]
        gathered = np.concatenate([b[0:16], b[32:48]])
        assert np.array_equal(got, a[:32] + gathered)

    def test_out_of_bounds_rejected(self, rng):
        core, gm, s0, s1, d, a, b = setup_core(rng)
        bad = MemRef("UB", ASCEND910.ub_bytes // 2 - 8, 128, FLOAT16)
        with pytest.raises(IsaError):
            run_one(core, gm, VADD(
                VectorOperand(bad), VectorOperand(s0), VectorOperand(s1),
                Mask.full(), repeat=1,
            ))

    def test_repeat_range_validation(self, rng):
        core, gm, s0, s1, d, _, _ = setup_core(rng)
        with pytest.raises(RepeatError):
            VADD(VectorOperand(d), VectorOperand(s0), VectorOperand(s1),
                 Mask.full(), repeat=0)
        with pytest.raises(RepeatError):
            VADD(VectorOperand(d), VectorOperand(s0), VectorOperand(s1),
                 Mask.full(), repeat=256)

    def test_unknown_op_rejected(self, rng):
        _, _, s0, s1, d, _, _ = setup_core(rng)
        with pytest.raises(IsaError):
            VectorBinary("vxor", VectorOperand(d), VectorOperand(s0),
                         VectorOperand(s1), Mask.full(), 1)

    def test_cycle_cost(self, rng):
        _, _, s0, s1, d, _, _ = setup_core(rng)
        i = VADD(VectorOperand(d), VectorOperand(s0), VectorOperand(s1),
                 Mask.full(), repeat=7)
        assert i.cycles(COST) == COST.issue_cycles + 7 * COST.vector_repeat_cycles

    def test_cost_independent_of_mask(self, rng):
        # The central premise: disabled lanes are wasted, not saved.
        _, _, s0, s1, d, _, _ = setup_core(rng)
        full = VADD(VectorOperand(d), VectorOperand(s0),
                    VectorOperand(s1), Mask.full(), repeat=3)
        narrow = VADD(VectorOperand(d), VectorOperand(s0),
                      VectorOperand(s1), Mask.first(16), repeat=3)
        assert full.cycles(COST) == narrow.cycles(COST)

    def test_lane_utilization(self, rng):
        _, _, s0, s1, d, _, _ = setup_core(rng)
        i = VADD(VectorOperand(d), VectorOperand(s0), VectorOperand(s1),
                 Mask.first(16), repeat=1)
        assert i.lane_utilization() == pytest.approx(0.125)


class TestCompare:
    def test_vcmp_eq_writes_ones_and_zeros(self, rng):
        core, gm, s0, s1, d, a, b = setup_core(rng, n=128)
        core.view("UB")[s1.offset:s1.offset + 64] = a[:64]  # force equality
        run_one(core, gm, VCMP_EQ(
            VectorOperand(d), VectorOperand(s0), VectorOperand(s1),
            Mask.full(), repeat=1,
        ))
        got = core.view("UB")[d.offset:d.end]
        assert np.all(got[:64] == 1.0)
        assert set(np.unique(got[64:])) <= {0.0, 1.0}

    def test_vcmp_cannot_repeat(self, rng):
        # CMPMASK is a single register: compare+select pairs cannot use
        # the repeat parameter.
        _, _, s0, s1, d, _, _ = setup_core(rng)
        with pytest.raises(IsaError):
            VCMP_EQ(VectorOperand(d), VectorOperand(s0),
                    VectorOperand(s1), Mask.full(), repeat=2)


class TestScalarOps:
    def test_vadds(self, rng):
        core, gm, s0, _, d, a, _ = setup_core(rng, n=128)
        run_one(core, gm, VADDS(
            VectorOperand(d), VectorOperand(s0), 2.5, Mask.full(), 1
        ))
        got = core.view("UB")[d.offset:d.end]
        assert np.array_equal(got, a + np.float16(2.5))

    def test_vmuls(self, rng):
        core, gm, s0, _, d, a, _ = setup_core(rng, n=128)
        run_one(core, gm, VMULS(
            VectorOperand(d), VectorOperand(s0), 1.0 / 9.0, Mask.full(), 1
        ))
        got = core.view("UB")[d.offset:d.end]
        assert np.array_equal(got, a * np.float16(1.0 / 9.0))

    def test_vector_copy_is_vadds_zero(self, rng):
        core, gm, s0, _, d, a, _ = setup_core(rng, n=256)
        instr = VectorCopy(VectorOperand(d), VectorOperand(s0),
                           Mask.full(), repeat=2)
        assert instr.opcode == "vadds"
        run_one(core, gm, instr)
        got = core.view("UB")[d.offset:d.end]
        assert np.array_equal(got, a)


class TestVectorDup:
    def test_fills_masked_lanes(self, rng):
        core, gm, _, _, d, _, _ = setup_core(rng, n=256)
        run_one(core, gm, VectorDup(
            VectorOperand(d), -3.0, Mask.full(), repeat=2
        ))
        got = core.view("UB")[d.offset:d.end]
        assert np.all(got[:256] == np.float16(-3.0))

    def test_min_value_seed(self, rng):
        core, gm, _, _, d, _, _ = setup_core(rng, n=128)
        run_one(core, gm, VectorDup(
            VectorOperand(d), FLOAT16.min_value, Mask.full(), 1
        ))
        got = core.view("UB")[d.offset:d.end]
        assert np.all(got == np.float16(FLOAT16.min_value))

    def test_cost(self):
        d = MemRef("UB", 0, 128, FLOAT16)
        i = VectorDup(VectorOperand(d), 0.0, Mask.full(), repeat=5)
        assert i.cycles(COST) == COST.issue_cycles + 5


class TestDtypeChecks:
    def test_mixed_dtypes_rejected(self):
        from repro.dtypes import FLOAT32

        d16 = MemRef("UB", 0, 128, FLOAT16)
        d32 = MemRef("UB", 0, 128, FLOAT32)
        with pytest.raises(IsaError):
            VADD(VectorOperand(d16), VectorOperand(d32),
                 VectorOperand(d16), Mask.full(), 1)
