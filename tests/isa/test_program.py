"""Tests for instruction streams and their static analysis."""

import pytest

from repro.config import ASCEND910
from repro.dtypes import FLOAT16
from repro.isa import (
    DataMove,
    Mask,
    MemRef,
    Program,
    VADD,
    VectorDup,
    VectorOperand,
)

COST = ASCEND910.cost


def ops(n=128):
    d = MemRef("UB", 0, n, FLOAT16)
    s = MemRef("UB", n, n, FLOAT16)
    return VectorOperand(d), VectorOperand(s)


class TestProgram:
    def test_emit_and_len(self):
        p = Program("k")
        d, s = ops()
        p.emit(VectorDup(d, 0.0, Mask.full(), 1))
        p.emit(VADD(d, d, s, Mask.full(), 2))
        assert len(p) == 2

    def test_issue_counts(self):
        p = Program("k")
        d, s = ops()
        for _ in range(5):
            p.emit(VADD(d, d, s, Mask.full(), 1))
        p.emit(VectorDup(d, 0.0, Mask.full(), 1))
        counts = p.issue_counts()
        assert counts["vadd"] == 5
        assert counts["vector_dup"] == 1

    def test_static_cycles_matches_sum(self):
        p = Program("k")
        d, s = ops()
        i1 = VectorDup(d, 0.0, Mask.full(), 3)
        i2 = VADD(d, d, s, Mask.full(), 2)
        p.emit(i1)
        p.emit(i2)
        assert p.static_cycles(COST) == i1.cycles(COST) + i2.cycles(COST)

    def test_scalar_loop_trips_charged(self):
        p = Program("k")
        d, s = ops()
        p.emit(VADD(d, d, s, Mask.full(), 1))
        p.scalar_loop_trips = 10
        base = VADD(d, d, s, Mask.full(), 1).cycles(COST)
        assert p.static_cycles(COST) == base + 10 * COST.loop_cycles

    def test_unit_cycles_split(self):
        p = Program("k")
        d, s = ops()
        p.emit(VADD(d, d, s, Mask.full(), 1))
        p.emit(DataMove(MemRef("x", 0, 64, FLOAT16),
                        MemRef("UB", 0, 64, FLOAT16)))
        u = p.unit_cycles(COST)
        assert set(u) == {"vector", "mte"}
        assert u["vector"] == COST.issue_cycles + 1

    def test_mean_lane_utilization_weighted_by_repeats(self):
        p = Program("k")
        d, s = ops(512)
        # 1 repeat at 100% + 3 repeats at 12.5%
        p.emit(VADD(d, d, s, Mask.full(), 1))
        p.emit(VADD(d, d, s, Mask.first(16), 3))
        want = (1.0 * 1 + 0.125 * 3) / 4
        assert p.mean_lane_utilization() == pytest.approx(want)

    def test_mean_lane_utilization_none_without_vector(self):
        p = Program("k")
        p.emit(DataMove(MemRef("x", 0, 64, FLOAT16),
                        MemRef("UB", 0, 64, FLOAT16)))
        assert p.mean_lane_utilization() is None

    def test_concat(self):
        a, b = Program("a"), Program("b")
        d, s = ops()
        a.emit(VADD(d, d, s, Mask.full(), 1))
        a.scalar_loop_trips = 2
        b.emit(VectorDup(d, 0.0, Mask.full(), 1))
        b.scalar_loop_trips = 3
        c = a.concat(b)
        assert len(c) == 2
        assert c.scalar_loop_trips == 5
        assert len(a) == 1  # originals untouched

    def test_concat_is_merge_alias(self):
        assert Program.concat is Program.merge


def gm_move(buffer, offset, n=64):
    """A global-memory load instruction touching ``buffer``."""
    return DataMove(MemRef(buffer, offset, n, FLOAT16),
                    MemRef("UB", 0, n, FLOAT16))


class TestMergeRelocateInterplay:
    """Merged programs must relocate correctly: indices shift by
    ``len(self)``, so the merge may not inherit either parent's
    relocation-plan memo."""

    def _parents(self):
        a, b = Program("a"), Program("b")
        d, s = ops()
        a.emit(gm_move("x", 0))
        a.emit(VADD(d, d, s, Mask.full(), 1))
        a.scalar_loop_trips = 2
        b.emit(VADD(d, d, s, Mask.full(), 1))
        b.emit(gm_move("x", 64))
        b.emit(gm_move("out", 0))
        b.scalar_loop_trips = 3
        return a, b

    def test_merge_preserves_scalar_loop_trips_through_relocate(self):
        a, b = self._parents()
        merged = a.merge(b)
        clone = merged.relocate({"x": 1000, "out": 500})
        assert merged.scalar_loop_trips == 5
        assert clone.scalar_loop_trips == 5

    def test_merge_starts_with_empty_reloc_plan(self):
        a, b = self._parents()
        # Warm both parents' memos so inheriting either would be wrong.
        a.relocate({"x": 10})
        b.relocate({"x": 10})
        b.relocate({"out": 10})
        assert a._reloc_plan and b._reloc_plan
        merged = a.merge(b)
        assert merged._reloc_plan == {}

    def test_merged_relocation_hits_the_shifted_indices(self):
        a, b = self._parents()
        a.relocate({"x": 10})  # parent memo maps "x" -> [0]
        merged = a.merge(b)
        clone = merged.relocate({"x": 7})
        # Instructions 0 (from a) and 3 (from b, shifted by len(a)=2)
        # touch "x"; both must be rebased.
        assert clone.instructions[0].src.offset == 7
        assert clone.instructions[3].src.offset == 64 + 7
        # Untouched instructions are shared by identity.
        assert clone.instructions[1] is merged.instructions[1]
        assert clone.instructions[4] is merged.instructions[4]
        # The memo now exists on the merged program and is reused.
        assert merged._reloc_plan[frozenset({"x"})] == [0, 3]
        again = merged.relocate({"x": 9})
        assert again.instructions[3].src.offset == 64 + 9

    def test_relocated_merge_cycles_and_counts_unchanged(self):
        a, b = self._parents()
        merged = a.merge(b)
        clone = merged.relocate({"x": 123, "out": 456}, name="slice")
        assert clone.name == "slice"
        assert len(clone) == len(merged)
        assert clone.static_cycles(COST) == merged.static_cycles(COST)
        assert clone.static_cycles(COST, model="pipelined") == \
            merged.static_cycles(COST, model="pipelined")
        assert clone.issue_counts() == merged.issue_counts()
