"""Tests for memory references and vector operands."""

import numpy as np
import pytest

from repro.dtypes import FLOAT16
from repro.errors import IsaError
from repro.isa import MemRef, VectorOperand


def ref(offset=0, size=256):
    return MemRef("UB", offset, size, FLOAT16)


class TestMemRef:
    def test_basic_fields(self):
        r = ref(32, 100)
        assert r.end == 132
        assert r.nbytes == 200

    def test_negative_offset(self):
        with pytest.raises(IsaError):
            ref(offset=-1)

    def test_empty_region(self):
        with pytest.raises(IsaError):
            ref(size=0)

    def test_slice(self):
        s = ref(10, 100).slice(20, 30)
        assert (s.offset, s.size) == (30, 30)
        assert s.buffer == "UB"

    def test_slice_bounds(self):
        with pytest.raises(IsaError):
            ref(0, 10).slice(5, 6)
        with pytest.raises(IsaError):
            ref(0, 10).slice(-1, 2)


class TestVectorOperand:
    def test_contiguous_indices(self):
        op = VectorOperand(ref(0, 256), blk_stride=1, rep_stride=8)
        lanes = np.arange(128)
        idx = op.element_indices(2, lanes)
        assert idx.shape == (2, 128)
        assert np.array_equal(idx[0], np.arange(128))
        assert np.array_equal(idx[1], 128 + np.arange(128))

    def test_block_stride(self):
        # blk_stride 2: blocks of 16 lanes land 32 elements apart.
        op = VectorOperand(ref(), blk_stride=2, rep_stride=0)
        lanes = np.arange(32)  # two blocks
        idx = op.element_indices(1, lanes)
        assert np.array_equal(idx[0, :16], np.arange(16))
        assert np.array_equal(idx[0, 16:], 32 + np.arange(16))

    def test_zero_repeat_stride_reuses_addresses(self):
        op = VectorOperand(ref(), rep_stride=0)
        lanes = np.arange(16)
        idx = op.element_indices(3, lanes)
        assert np.array_equal(idx[0], idx[1])
        assert np.array_equal(idx[1], idx[2])

    def test_offset_applied(self):
        op = VectorOperand(ref(offset=100), rep_stride=1)
        idx = op.element_indices(2, np.arange(4))
        assert idx[0, 0] == 100
        assert idx[1, 0] == 116  # one 32-byte block = 16 fp16 later

    def test_negative_strides_rejected(self):
        with pytest.raises(IsaError):
            VectorOperand(ref(), blk_stride=-1)
        with pytest.raises(IsaError):
            VectorOperand(ref(), rep_stride=-2)

    def test_strided_gather_pattern_matches_pooling(self):
        # The standard-pooling source pattern: stride Sw=2 blocks.
        op = VectorOperand(ref(), blk_stride=2, rep_stride=1)
        lanes = np.arange(16)
        idx = op.element_indices(3, lanes)
        # repeats advance by one block (16 elems): the Kw walk.
        assert idx[1, 0] - idx[0, 0] == 16
        assert idx[2, 0] - idx[1, 0] == 16
