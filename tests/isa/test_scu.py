"""Tests for the SCU instructions: Im2Col, Col2Im and DMA moves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ASCEND910
from repro.dtypes import FLOAT16, FRACTAL_ROWS
from repro.errors import IsaError, LayoutError
from repro.fractal import col2im_nc1hwc0, im2col_nc1hwc0
from repro.isa import (
    Col2ImStore,
    DataMove,
    Im2ColLoad,
    Im2ColParams,
    MemRef,
    Program,
)
from repro.sim import AICore, GlobalMemory

COST = ASCEND910.cost
C0 = FLOAT16.c0


class TestIm2ColParams:
    def test_output_grid(self):
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        assert p.out_hw() == (4, 4)
        assert p.num_patches == 16
        assert p.fractals_per_plane == 1
        assert p.plane_rows() == 16

    def test_partial_fractal_rounds_up(self):
        p = Im2ColParams(ih=9, iw=9, kh=3, kw=3, sh=2, sw=2)
        assert p.num_patches == 16  # 4x4 exactly
        p = Im2ColParams(ih=11, iw=11, kh=3, kw=3, sh=2, sw=2)
        assert p.num_patches == 25
        assert p.fractals_per_plane == 2
        assert p.plane_rows() == 32

    def test_patch_origin(self):
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2, pt=1, pl=1)
        # patch 0 starts in the padding halo
        assert p.patch_origin(0) == (-1, -1)
        assert p.patch_origin(5) == (1, 1)

    def test_patch_origin_bounds(self):
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        with pytest.raises(IsaError):
            p.patch_origin(16)

    def test_invalid_geometry(self):
        with pytest.raises(LayoutError):
            Im2ColParams(ih=0, iw=8, kh=2, kw=2, sh=1, sw=1)
        with pytest.raises(LayoutError):
            Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=1, sw=1, pt=-1)
        with pytest.raises(LayoutError):
            Im2ColParams(ih=2, iw=2, kh=5, kw=5, sh=1, sw=1)


def load_image(core, shape, rng, buffer="L1"):
    """Place a random (C1?, Ih, Iw, C0) image into a buffer region."""
    ref = core.alloc(buffer, int(np.prod(shape)))
    data = rng.standard_normal(shape).astype(np.float16)
    core.view(buffer)[ref.offset:ref.end] = data.reshape(-1)
    return ref, data


class TestIm2ColLoad:
    def run_planes(self, core, gm, src, params, pad_value=0.0, c1=0):
        """Issue one repeat-mode-1 Im2Col per (xk, yk), as the pooling
        kernels do, and return the planes as an array."""
        plane = params.plane_rows() * C0
        dst = core.alloc("UB", params.kh * params.kw * plane)
        prog = Program("im2col")
        for xk in range(params.kh):
            for yk in range(params.kw):
                idx = xk * params.kw + yk
                prog.emit(Im2ColLoad(
                    src=src, dst=dst.slice(idx * plane, plane),
                    params=params, c1=c1, xk=xk, yk=yk,
                    repeat=params.fractals_per_plane, pad_value=pad_value,
                ))
        core.run(prog, gm)
        out = core.view("UB")[dst.offset:dst.end]
        return out.reshape(params.kh, params.kw, params.plane_rows(), C0)

    def test_matches_golden_exact_fractals(self, rng, gm):
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        src, img = load_image(core, (8, 8, C0), rng)
        got = self.run_planes(core, gm, src, p)
        ref = im2col_nc1hwc0(img[None, None], 2, 2, 2, 2)[0, 0]
        assert np.array_equal(got.reshape(2, 2, 16, C0),
                              ref.reshape(2, 2, 16, C0))

    def test_matches_golden_partial_final_fractal(self, rng, gm):
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=11, iw=11, kh=3, kw=3, sh=2, sw=2)
        src, img = load_image(core, (11, 11, C0), rng)
        got = self.run_planes(core, gm, src, p, pad_value=-9.0)
        ref = im2col_nc1hwc0(img[None, None], 3, 3, 2, 2)[0, 0]
        oh, ow = p.out_hw()
        valid = got[:, :, : oh * ow].reshape(3, 3, oh, ow, C0)
        assert np.array_equal(valid, ref)
        # rows beyond the patch grid are filled with the pad value
        assert np.all(got[:, :, oh * ow:] == np.float16(-9.0))

    def test_padding_on_the_fly(self, rng, gm):
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=6, iw=6, kh=3, kw=3, sh=2, sw=2,
                         pt=1, pb=1, pl=1, pr=1)
        src, img = load_image(core, (6, 6, C0), rng)
        got = self.run_planes(core, gm, src, p, pad_value=-4.0)
        ref = im2col_nc1hwc0(
            img[None, None], 3, 3, 2, 2, 1, 1, 1, 1, pad_value=-4.0
        )[0, 0]
        oh, ow = p.out_hw()
        valid = got[:, :, : oh * ow].reshape(3, 3, oh, ow, C0)
        assert np.array_equal(valid, ref)

    def test_c1_selection(self, rng, gm):
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        src, img = load_image(core, (3, 8, 8, C0), rng)  # C1=3
        got = self.run_planes(core, gm, src, p, c1=2)
        ref = im2col_nc1hwc0(img[None], 2, 2, 2, 2)[0, 2]
        assert np.array_equal(got.reshape(2, 2, 16, C0),
                              ref.reshape(2, 2, 16, C0))

    def test_first_patch_offset(self, rng, gm):
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=16, iw=16, kh=2, kw=2, sh=2, sw=2)  # 64 patches
        src, img = load_image(core, (16, 16, C0), rng)
        dst = core.alloc("UB", FRACTAL_ROWS * C0)
        prog = Program("t")
        prog.emit(Im2ColLoad(src=src, dst=dst, params=p, c1=0, xk=1, yk=0,
                             first_patch=32, repeat=1))
        core.run(prog, gm)
        got = core.view("UB")[dst.offset:dst.end].reshape(16, C0)
        ref = im2col_nc1hwc0(img[None, None], 2, 2, 2, 2)[0, 0, 1, 0]
        assert np.array_equal(got, ref.reshape(64, C0)[32:48])

    def test_repeat_mode0_iterates_kernel_then_c1(self, rng, gm):
        # Section III-C: "the input in Figure 5 can be fully loaded by
        # issuing a single Im2Col ... with repeat mode 0".
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        src, img = load_image(core, (2, 8, 8, C0), rng)  # C1=2
        dst = core.alloc("UB", 8 * FRACTAL_ROWS * C0)
        prog = Program("t")
        prog.emit(Im2ColLoad(src=src, dst=dst, params=p, c1=0, xk=0, yk=0,
                             repeat=8, repeat_mode=0))
        core.run(prog, gm)
        got = core.view("UB")[dst.offset:dst.end].reshape(2, 2, 2, 16, C0)
        ref = im2col_nc1hwc0(img[None], 2, 2, 2, 2)[0]  # (2,2,2,4,4,16)
        want = ref.reshape(2, 2, 2, 16, C0)
        assert np.array_equal(got, want)

    def test_figure5_example(self, gm):
        # The paper's Figure 5: 8x8 input, k=(2,2), s=(2,2); the first
        # (blue) fractal holds the top-left element of all 16 patches.
        core = AICore(ASCEND910)
        img = np.arange(8 * 8 * C0, dtype=np.float16).reshape(8, 8, C0)
        src = core.alloc("L1", img.size)
        core.view("L1")[src.offset:src.end] = img.reshape(-1)
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        dst = core.alloc("UB", FRACTAL_ROWS * C0)
        prog = Program("t")
        prog.emit(Im2ColLoad(src=src, dst=dst, params=p, c1=0, xk=0, yk=0))
        core.run(prog, gm)
        got = core.view("UB")[dst.offset:dst.end].reshape(16, C0)
        for patch in range(16):
            h, w = (patch // 4) * 2, (patch % 4) * 2
            assert np.array_equal(got[patch], img[h, w])

    def test_validation(self, rng, gm):
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        src, _ = load_image(core, (8, 8, C0), rng)
        small = core.alloc("UB", 8)
        with pytest.raises(IsaError):
            Im2ColLoad(src=src, dst=small, params=p, c1=0, xk=0, yk=0)
        big = core.alloc("UB", FRACTAL_ROWS * C0)
        with pytest.raises(IsaError):
            Im2ColLoad(src=src, dst=big, params=p, c1=0, xk=0, yk=0,
                       repeat_mode=2)
        with pytest.raises(IsaError):
            Im2ColLoad(src=src, dst=big, params=p, c1=0, xk=0, yk=0,
                       first_patch=7)

    def test_cycle_cost(self, rng, gm):
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        src, _ = load_image(core, (8, 8, C0), rng)
        dst = core.alloc("UB", 4 * FRACTAL_ROWS * C0)
        i = Im2ColLoad(src=src, dst=dst, params=p, c1=0, xk=0, yk=0,
                       repeat=4, repeat_mode=0)
        assert i.cycles(COST) == (
            COST.issue_cycles + 4 * COST.im2col_fractal_cycles
        )


class TestCol2ImStore:
    def run_merge(self, core, gm, planes, params):
        plane = params.plane_rows() * C0
        src = core.alloc("UB", params.kh * params.kw * plane)
        core.view("UB")[src.offset:src.end] = planes.reshape(-1)
        dst = core.alloc("UB", params.ih * params.iw * C0)
        core.view("UB")[dst.offset:dst.end] = 0
        prog = Program("col2im")
        for xk in range(params.kh):
            for yk in range(params.kw):
                idx = xk * params.kw + yk
                prog.emit(Col2ImStore(
                    src=src.slice(idx * plane, plane), dst=dst,
                    params=params, c1=0, xk=xk, yk=yk,
                    repeat=params.fractals_per_plane,
                ))
        core.run(prog, gm)
        return core.view("UB")[dst.offset:dst.end].reshape(
            params.ih, params.iw, C0
        )

    def _planes_from_golden(self, rng, params):
        oh, ow = params.out_hw()
        cols = rng.standard_normal(
            (params.kh, params.kw, oh * ow, C0)
        ).astype(np.float16)
        padded = np.zeros(
            (params.kh, params.kw, params.plane_rows(), C0), np.float16
        )
        padded[:, :, : oh * ow] = cols
        return cols, padded

    def test_matches_golden(self, rng, gm):
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=9, iw=9, kh=3, kw=3, sh=2, sw=2)
        oh, ow = p.out_hw()
        cols, padded = self._planes_from_golden(rng, p)
        got = self.run_merge(core, gm, padded, p)
        ref = col2im_nc1hwc0(
            cols.reshape(1, 1, 3, 3, oh, ow, C0), 9, 9, 2, 2
        )[0, 0]
        assert np.array_equal(got, ref)

    def test_partial_fractal_patches_skipped(self, rng, gm):
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=11, iw=11, kh=3, kw=3, sh=2, sw=2)  # 25 patches
        oh, ow = p.out_hw()
        cols, padded = self._planes_from_golden(rng, p)
        # poison the pad rows: they must never be accumulated
        padded[:, :, oh * ow:] = np.float16(1000.0)
        got = self.run_merge(core, gm, padded, p)
        ref = col2im_nc1hwc0(
            cols.reshape(1, 1, 3, 3, oh, ow, C0), 11, 11, 2, 2
        )[0, 0]
        assert np.array_equal(got, ref)

    def test_padding_halo_dropped(self, rng, gm):
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=6, iw=6, kh=3, kw=3, sh=2, sw=2,
                         pt=1, pb=1, pl=1, pr=1)
        oh, ow = p.out_hw()
        cols, padded = self._planes_from_golden(rng, p)
        got = self.run_merge(core, gm, padded, p)
        ref = col2im_nc1hwc0(
            cols.reshape(1, 1, 3, 3, oh, ow, C0), 6, 6, 2, 2, 1, 1, 1, 1
        )[0, 0]
        assert np.array_equal(got, ref)

    def test_requires_zero_initialised_output(self, rng, gm):
        # Section III-D: "Col2Im requires its output to be initialized
        # with zeros" -- the instruction accumulates onto what's there.
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        src = core.alloc("UB", p.plane_rows() * C0)
        core.view("UB")[src.offset:src.end] = 1
        dst = core.alloc("UB", 8 * 8 * C0)
        core.view("UB")[dst.offset:dst.end] = 5
        prog = Program("t")
        prog.emit(Col2ImStore(src=src, dst=dst, params=p, c1=0, xk=0, yk=0))
        core.run(prog, gm)
        got = core.view("UB")[dst.offset:dst.end].reshape(8, 8, C0)
        assert got[0, 0, 0] == 6  # 5 + 1, not overwritten

    def test_cycle_cost(self, rng, gm):
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        src = core.alloc("UB", p.plane_rows() * C0)
        dst = core.alloc("UB", 8 * 8 * C0)
        i = Col2ImStore(src=src, dst=dst, params=p, c1=0, xk=0, yk=0)
        assert i.cycles(COST) == (
            COST.issue_cycles + COST.col2im_fractal_cycles
        )

    def test_validation(self, rng, gm):
        core = AICore(ASCEND910)
        p = Im2ColParams(ih=8, iw=8, kh=2, kw=2, sh=2, sw=2)
        src = core.alloc("UB", p.plane_rows() * C0)
        dst = core.alloc("UB", 8 * 8 * C0)
        with pytest.raises(IsaError):
            Col2ImStore(src=src, dst=dst.slice(0, 100), params=p,
                        c1=0, xk=0, yk=0)
        with pytest.raises(IsaError):
            Col2ImStore(src=src.slice(0, 8), dst=dst, params=p,
                        c1=0, xk=0, yk=0)


class TestIm2colCol2imDualityOnCore:
    @given(
        ih=st.integers(5, 12),
        k=st.integers(2, 3),
        s=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_instruction_level_duality(self, ih, k, s):
        """Loading with Im2Col then merging with Col2Im multiplies each
        position by its overlap multiplicity (integer data: exact)."""
        from repro.fractal import overlap_multiplicity

        rng = np.random.default_rng(ih * 31 + k * 7 + s)
        core = AICore(ASCEND910)
        gm = GlobalMemory()
        p = Im2ColParams(ih=ih, iw=ih, kh=k, kw=k, sh=s, sw=s)
        img = rng.integers(-3, 4, (ih, ih, C0)).astype(np.float16)
        src = core.alloc("L1", img.size)
        core.view("L1")[src.offset:src.end] = img.reshape(-1)
        plane = p.plane_rows() * C0
        planes = core.alloc("UB", p.kh * p.kw * plane)
        out = core.alloc("UB", ih * ih * C0)
        prog = Program("dual")
        for xk in range(k):
            for yk in range(k):
                idx = xk * k + yk
                prog.emit(Im2ColLoad(
                    src=src, dst=planes.slice(idx * plane, plane),
                    params=p, c1=0, xk=xk, yk=yk,
                    repeat=p.fractals_per_plane,
                ))
        for xk in range(k):
            for yk in range(k):
                idx = xk * k + yk
                prog.emit(Col2ImStore(
                    src=planes.slice(idx * plane, plane), dst=out,
                    params=p, c1=0, xk=xk, yk=yk,
                    repeat=p.fractals_per_plane,
                ))
        core.run(prog, gm)
        got = core.view("UB")[out.offset:out.end].reshape(ih, ih, C0)
        mult = overlap_multiplicity(ih, ih, k, k, s, s)
        want = img * mult[:, :, None].astype(np.float16)
        assert np.array_equal(got, want)


class TestDataMove:
    def test_gm_to_scratch(self, rng):
        core = AICore(ASCEND910)
        gm = GlobalMemory()
        data = rng.standard_normal(256).astype(np.float16)
        src = gm.add("x", data)
        dst = core.alloc("UB", 256)
        prog = Program("t")
        prog.emit(DataMove(src, dst))
        core.run(prog, gm)
        assert np.array_equal(core.view("UB")[dst.offset:dst.end], data)

    def test_accumulate_mode(self, rng):
        core = AICore(ASCEND910)
        gm = GlobalMemory()
        out = gm.add("y", np.ones(64, np.float16))
        src = core.alloc("UB", 64)
        core.view("UB")[src.offset:src.end] = 2
        prog = Program("t")
        prog.emit(DataMove(src, out, accumulate=True))
        core.run(prog, gm)
        assert np.all(gm.view("y") == 3)

    def test_size_mismatch(self):
        a = MemRef("UB", 0, 64, FLOAT16)
        b = MemRef("UB", 64, 32, FLOAT16)
        with pytest.raises(IsaError):
            DataMove(a, b)

    def test_unknown_channel(self):
        a = MemRef("UB", 0, 64, FLOAT16)
        with pytest.raises(IsaError):
            DataMove(a, a, channel="pcie")

    def test_gm_cost_uses_dma_bandwidth(self):
        a = MemRef("x", 0, 1024, FLOAT16)
        b = MemRef("UB", 0, 1024, FLOAT16)
        i = DataMove(a, b, channel="gm")
        expect = COST.dma_latency_cycles + -(
            -2048 // COST.dma_bytes_per_cycle
        )
        assert i.cycles(COST) == expect

    def test_local_channel_faster(self):
        a = MemRef("L0C", 0, 4096, FLOAT16)
        b = MemRef("UB", 0, 4096, FLOAT16)
        assert DataMove(a, b, "local").cycles(COST) < \
            DataMove(a, b, "gm").cycles(COST)
