"""Tests for the Cube Unit mmad instruction."""

import numpy as np
import pytest

from repro.config import ASCEND910
from repro.dtypes import FRACTAL_ROWS
from repro.errors import IsaError, RepeatError
from repro.isa import Mmad, Program
from repro.sim import AICore, GlobalMemory

FR = FRACTAL_ROWS * FRACTAL_ROWS


def setup(rng, k=3):
    core = AICore(ASCEND910)
    gm = GlobalMemory()
    a_ref = core.alloc("L0A", k * FR)
    b_ref = core.alloc("L0B", k * FR)
    c_ref = core.alloc("L0C", FR)
    a = rng.standard_normal((k, 16, 16)).astype(np.float16)
    b = rng.standard_normal((k, 16, 16)).astype(np.float16)
    core.view("L0A")[a_ref.offset:a_ref.end] = a.reshape(-1)
    core.view("L0B")[b_ref.offset:b_ref.end] = b.reshape(-1)
    return core, gm, a_ref, b_ref, c_ref, a, b


def expected(a, b):
    acc = np.zeros((16, 16), np.float32)
    for ak, bk in zip(a, b):
        acc += ak.astype(np.float32) @ bk.astype(np.float32)
    return acc.astype(np.float16)


class TestMmad:
    def test_single_fractal_product(self, rng):
        core, gm, ar, br, cr, a, b = setup(rng, k=1)
        prog = Program("t")
        prog.emit(Mmad(a=ar, b=br, c=cr, repeat=1, init=True))
        core.run(prog, gm)
        got = core.view("L0C")[cr.offset:cr.end].reshape(16, 16)
        assert np.array_equal(got, expected(a, b))

    def test_repeat_chain_accumulates_fp32(self, rng):
        core, gm, ar, br, cr, a, b = setup(rng, k=5)
        prog = Program("t")
        prog.emit(Mmad(a=ar, b=br, c=cr, repeat=5, init=True))
        core.run(prog, gm)
        got = core.view("L0C")[cr.offset:cr.end].reshape(16, 16)
        assert np.array_equal(got, expected(a, b))

    def test_init_false_accumulates_on_existing(self, rng):
        core, gm, ar, br, cr, a, b = setup(rng, k=1)
        core.view("L0C")[cr.offset:cr.end] = 1.0
        prog = Program("t")
        prog.emit(Mmad(a=ar, b=br, c=cr, repeat=1, init=False))
        core.run(prog, gm)
        got = core.view("L0C")[cr.offset:cr.end].reshape(16, 16)
        want = (
            np.ones((16, 16), np.float32)
            + a[0].astype(np.float32) @ b[0].astype(np.float32)
        ).astype(np.float16)
        assert np.array_equal(got, want)

    def test_cycle_cost_one_per_fractal_pair(self, rng):
        # "The Cube Unit can multiply two data-fractals per clock cycle"
        # -- our conservative model charges one pair per cycle.
        _, _, ar, br, cr, _, _ = setup(rng, k=7)
        i = Mmad(a=ar, b=br, c=cr, repeat=7)
        cost = ASCEND910.cost
        assert i.cycles(cost) == cost.issue_cycles + 7 * cost.cube_mmad_cycles

    def test_region_validation(self, rng):
        _, _, ar, br, cr, _, _ = setup(rng, k=2)
        with pytest.raises(IsaError):
            Mmad(a=ar.slice(0, 100), b=br, c=cr, repeat=2)
        with pytest.raises(IsaError):
            Mmad(a=ar, b=br, c=cr.slice(0, 100), repeat=1)
        with pytest.raises(RepeatError):
            Mmad(a=ar, b=br, c=cr, repeat=0)

    def test_unit_is_cube(self, rng):
        _, _, ar, br, cr, _, _ = setup(rng, k=1)
        assert Mmad(a=ar, b=br, c=cr).unit == "cube"
