"""Request validation, geometry keys, and the coalescer's affinity map."""

import numpy as np
import pytest

from repro.errors import LayoutError, ServeError
from repro.ops import PoolSpec
from repro.serve import Coalescer, PoolRequest, geometry_key

SPEC = PoolSpec.square(3, 2)


def _x(shape=(1, 2, 16, 16, 16), dtype=np.float16, seed=0):
    return np.random.default_rng(seed).random(shape).astype(dtype)


class TestRequestValidation:
    def test_valid_forward(self):
        r = PoolRequest(kind="maxpool", x=_x(), spec=SPEC)
        assert r.tenant == "default" and r.execute == "numeric"

    def test_unknown_kind(self):
        with pytest.raises(ServeError):
            PoolRequest(kind="medianpool", x=_x(), spec=SPEC)

    def test_unknown_execute(self):
        with pytest.raises(ServeError):
            PoolRequest(kind="maxpool", x=_x(), spec=SPEC, execute="fused")

    def test_unknown_plan_policy(self):
        with pytest.raises(ServeError, match="unknown plan policy"):
            PoolRequest(kind="maxpool", x=_x(), spec=SPEC, plan="greedy")

    def test_autotuned_plan_accepted(self):
        r = PoolRequest(
            kind="maxpool", x=_x(), spec=SPEC, plan="autotuned"
        )
        assert r.plan == "autotuned"

    def test_rank5_required(self):
        with pytest.raises(LayoutError):
            PoolRequest(kind="maxpool", x=np.zeros((4, 4)), spec=SPEC)

    def test_forward_rejects_backward_fields(self):
        with pytest.raises(ServeError):
            PoolRequest(kind="maxpool", x=_x(), spec=SPEC, ih=16, iw=16)
        with pytest.raises(ServeError):
            PoolRequest(kind="avgpool", x=_x(), spec=SPEC, mask=_x())
        with pytest.raises(ServeError):
            PoolRequest(kind="avgpool", x=_x(), spec=SPEC, with_mask=True)

    def test_backward_requires_extents(self):
        with pytest.raises(ServeError):
            PoolRequest(kind="avgpool_backward", x=_x(), spec=SPEC)

    def test_maxpool_backward_requires_mask(self):
        with pytest.raises(ServeError):
            PoolRequest(
                kind="maxpool_backward", x=_x(), spec=SPEC, ih=16, iw=16
            )

    def test_avgpool_backward_rejects_mask(self):
        with pytest.raises(ServeError):
            PoolRequest(
                kind="avgpool_backward", x=_x(), spec=SPEC, ih=16, iw=16,
                mask=_x(),
            )

    def test_chaos_attempts_validated(self):
        with pytest.raises(ServeError):
            PoolRequest(
                kind="maxpool", x=_x(), spec=SPEC, chaos_crash_attempts=(-1,)
            )


class TestGeometryKey:
    def test_same_geometry_same_key_despite_values(self):
        a = PoolRequest(kind="maxpool", x=_x(seed=0), spec=SPEC)
        b = PoolRequest(kind="maxpool", x=_x(seed=99), spec=SPEC)
        assert geometry_key(a) == geometry_key(b)

    def test_key_distinguishes_every_axis(self):
        base = PoolRequest(kind="maxpool", x=_x(), spec=SPEC)
        variants = [
            PoolRequest(kind="avgpool", x=_x(), spec=SPEC),
            PoolRequest(kind="maxpool", x=_x(), spec=PoolSpec.square(2, 2)),
            PoolRequest(kind="maxpool", x=_x(), spec=SPEC, impl="standard"),
            PoolRequest(kind="maxpool", x=_x(), spec=SPEC, with_mask=True),
            PoolRequest(
                kind="maxpool", x=_x(shape=(1, 1, 16, 16, 16)), spec=SPEC
            ),
            PoolRequest(
                kind="maxpool", x=_x(dtype=np.float32), spec=SPEC
            ),
            PoolRequest(kind="maxpool", x=_x(), spec=SPEC, execute="cycles"),
            PoolRequest(kind="maxpool", x=_x(), spec=SPEC,
                        model="pipelined"),
            PoolRequest(kind="maxpool", x=_x(), spec=SPEC,
                        plan="autotuned"),
        ]
        keys = {geometry_key(v) for v in variants}
        assert geometry_key(base) not in keys
        assert len(keys) == len(variants)

    def test_tenant_does_not_affect_key(self):
        a = PoolRequest(kind="maxpool", x=_x(), spec=SPEC, tenant="a")
        b = PoolRequest(kind="maxpool", x=_x(), spec=SPEC, tenant="b")
        assert geometry_key(a) == geometry_key(b)

    def test_key_is_hashable(self):
        {geometry_key(PoolRequest(kind="maxpool", x=_x(), spec=SPEC)): 1}


class TestCoalescer:
    def test_route_unknown_is_none(self):
        assert Coalescer().route("k") is None

    def test_bind_then_route(self):
        c = Coalescer()
        c.bind("k", 3, hit=False)
        assert c.route("k") == 3
        c.bind("k", 3, hit=True)
        assert c.hits == 1 and c.misses == 1
        assert c.hit_rate == 0.5

    def test_forget_worker_drops_only_its_keys(self):
        c = Coalescer()
        c.bind("a", 0, hit=False)
        c.bind("b", 1, hit=False)
        c.bind("c", 0, hit=False)
        assert c.forget_worker(0) == 2
        assert c.route("a") is None and c.route("c") is None
        assert c.route("b") == 1
        assert len(c) == 1

    def test_hit_rate_empty(self):
        assert Coalescer().hit_rate == 0.0
