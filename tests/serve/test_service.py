"""PoolService integration: identity, admission, recovery, coalescing.

These tests drive real worker processes.  Every ``await`` is wrapped in
a generous timeout so a service bug fails the test instead of hanging
the suite.
"""

from __future__ import annotations

import asyncio
import pickle

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    QuotaExceededError,
    ServeError,
    WorkerFailure,
)
from repro.ops import PoolSpec
from repro.ops.reference import maxpool_argmax_ref
from repro.serve import (
    CRASH_EXIT_CODE,
    PoolRequest,
    PoolService,
    TenantQuota,
    execute_request,
    serve_burst,
)
from repro.sim import RetryPolicy
from repro.workloads import make_gradient, make_input

SPEC = PoolSpec.square(3, 2)
TIMEOUT = 60.0


def run(coro):
    """Drive one async test body with a hang guard."""
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def _x(seed=0, ih=16, iw=16, c=32):
    return make_input(ih, iw, c, seed=seed)


# ---------------------------------------------------------------------------
# Byte-identity: served == direct, for every implementation.
# ---------------------------------------------------------------------------

def _forward_requests():
    reqs = []
    for impl in ("standard", "im2col", "expansion", "xysplit"):
        reqs.append(PoolRequest(
            kind="maxpool", x=_x(seed=1), spec=SPEC, impl=impl,
        ))
    reqs.append(PoolRequest(
        kind="maxpool", x=_x(seed=2), spec=SPEC, impl="im2col",
        with_mask=True,
    ))
    for impl in ("standard", "im2col"):
        reqs.append(PoolRequest(
            kind="avgpool", x=_x(seed=3), spec=SPEC, impl=impl,
        ))
    return reqs


def _backward_requests():
    ih = iw = 16
    x = _x(seed=4, ih=ih, iw=iw)
    mask = maxpool_argmax_ref(x, SPEC)
    oh, ow = SPEC.with_image(ih, iw).out_hw()
    grad = make_gradient(x.shape[1], oh, ow, seed=5)
    reqs = []
    for impl in ("standard", "col2im"):
        reqs.append(PoolRequest(
            kind="maxpool_backward", x=grad, spec=SPEC, impl=impl,
            mask=mask, ih=ih, iw=iw,
        ))
        reqs.append(PoolRequest(
            kind="avgpool_backward", x=grad, spec=SPEC, impl=impl,
            ih=ih, iw=iw,
        ))
    return reqs


class TestByteIdentity:
    def test_every_impl_forward_and_backward(self):
        """The service's answer for every registered implementation is
        byte-identical to calling :mod:`repro.ops.api` directly --
        outputs, masks, and cycle counts."""
        requests = _forward_requests() + _backward_requests()
        direct = [execute_request(r) for r in requests]

        async def go():
            async with PoolService(workers=2) as svc:
                return await serve_burst(svc, requests)

        served = run(go())
        assert len(served) == len(direct)
        for req, got, want in zip(requests, served, direct):
            label = f"{req.kind}/{req.impl}"
            assert np.array_equal(got.output, want.output), label
            if want.mask is None:
                assert got.mask is None, label
            else:
                assert np.array_equal(got.mask, want.mask), label
            assert got.cycles == want.cycles, label

    def test_execute_modes_match_direct(self):
        reqs = [
            PoolRequest(kind="maxpool", x=_x(seed=6), spec=SPEC,
                        execute=mode)
            for mode in ("numeric", "cycles", "jit")
        ]
        direct = [execute_request(r) for r in reqs]

        async def go():
            async with PoolService(workers=1) as svc:
                return await serve_burst(svc, reqs)

        served = run(go())
        for req, got, want in zip(reqs, served, direct):
            assert got.cycles == want.cycles, req.execute
            if want.output is None:
                assert got.output is None
            else:
                assert np.array_equal(got.output, want.output), req.execute

    def test_responses_pickle(self):
        async def go():
            async with PoolService(workers=1) as svc:
                return await svc.maxpool(_x(), SPEC)

        res = run(go())
        clone = pickle.loads(pickle.dumps(res))
        assert np.array_equal(clone.output, res.output)
        assert clone.cycles == res.cycles

    def test_traces_only_when_requested(self):
        async def go():
            async with PoolService(workers=1) as svc:
                slim = await svc.maxpool(_x(), SPEC)
                full = await svc.maxpool(_x(), SPEC, collect_trace=True)
                return slim, full

        slim, full = run(go())
        assert all(
            not t.trace.records for t in slim.result.chip.per_tile
        )
        assert any(t.trace.records for t in full.result.chip.per_tile)


# ---------------------------------------------------------------------------
# Admission control and tenancy.
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_queue_limit_backpressure(self):
        async def go():
            async with PoolService(workers=1, queue_limit=4) as svc:
                reqs = [
                    PoolRequest(kind="maxpool", x=_x(seed=i), spec=SPEC)
                    for i in range(8)
                ]
                results = await asyncio.gather(
                    *(svc.submit(r) for r in reqs), return_exceptions=True
                )
                return results, svc.stats

        results, stats = run(go())
        rejected = [r for r in results if isinstance(r, AdmissionError)]
        accepted = [r for r in results if not isinstance(r, Exception)]
        assert len(rejected) == 4
        assert len(accepted) == 4
        assert stats.rejected_queue_full == 4
        assert stats.completed == 4

    def test_tenant_quota(self):
        async def go():
            quotas = {"greedy": TenantQuota(max_pending=2)}
            async with PoolService(
                workers=1, quotas=quotas, queue_limit=64
            ) as svc:
                greedy = [
                    PoolRequest(kind="maxpool", x=_x(seed=i), spec=SPEC,
                                tenant="greedy")
                    for i in range(5)
                ]
                polite = PoolRequest(
                    kind="maxpool", x=_x(seed=9), spec=SPEC, tenant="polite"
                )
                results = await asyncio.gather(
                    *(svc.submit(r) for r in greedy), svc.submit(polite),
                    return_exceptions=True,
                )
                return results, svc.stats

        results, stats = run(go())
        over = [r for r in results if isinstance(r, QuotaExceededError)]
        assert len(over) == 3  # greedy admitted 2 of 5
        assert stats.rejected_quota == 3
        # the other tenant was unaffected by greedy's rejections
        assert not isinstance(results[-1], Exception)
        assert stats.completed == 3

    def test_submit_before_start_and_after_close(self):
        svc = PoolService(workers=1)
        req = PoolRequest(kind="maxpool", x=_x(), spec=SPEC)

        async def not_started():
            await svc.submit(req)

        with pytest.raises(ServeError):
            run(not_started())

        async def closed():
            async with PoolService(workers=1) as s:
                pass
            await s.submit(req)

        with pytest.raises(ServeError):
            run(closed())

    def test_constructor_validation(self):
        with pytest.raises(ServeError):
            PoolService(workers=0)
        with pytest.raises(ServeError):
            PoolService(queue_limit=0)
        with pytest.raises(ServeError):
            PoolService(max_inflight_per_worker=0)

    def test_mixed_tenant_burst_all_complete(self):
        async def go():
            async with PoolService(workers=2, queue_limit=64) as svc:
                reqs = [
                    PoolRequest(
                        kind="maxpool", x=_x(seed=i % 3), spec=SPEC,
                        tenant=f"tenant{i % 4}",
                    )
                    for i in range(12)
                ]
                out = await serve_burst(svc, reqs)
                return out, svc.stats

        out, stats = run(go())
        assert len(out) == 12
        assert stats.completed == 12 and stats.failed == 0
        assert {r.tenant for r in out} == {f"tenant{i}" for i in range(4)}


# ---------------------------------------------------------------------------
# Coalescing.
# ---------------------------------------------------------------------------

class TestCoalescing:
    def test_same_geometry_shares_a_worker(self):
        async def go():
            async with PoolService(workers=4) as svc:
                reqs = [
                    PoolRequest(kind="maxpool", x=_x(seed=i), spec=SPEC)
                    for i in range(8)
                ]
                out = []
                for r in reqs:  # sequential: affinity is deterministic
                    out.append(await svc.submit(r))
                return out, svc.coalescer.hit_rate, svc.coalescer.hits

        out, hit_rate, hits = run(go())
        workers = {r.worker for r in out}
        assert len(workers) == 1  # all eight landed on the warm worker
        assert out[0].coalesced is False
        assert all(r.coalesced for r in out[1:])
        assert hits == 7
        assert hit_rate == pytest.approx(7 / 8)

    def test_distinct_geometries_spread(self):
        async def go():
            async with PoolService(workers=2) as svc:
                # concurrent: the second key sees worker 0 busy and
                # spreads to worker 1 under least-loaded placement
                return await asyncio.gather(
                    svc.maxpool(_x(seed=0), SPEC),
                    svc.maxpool(_x(seed=0, ih=20, iw=20), SPEC),
                )

        a, b = run(go())
        assert a.worker != b.worker

    def test_worker_caches_get_warm(self):
        async def go():
            async with PoolService(workers=2) as svc:
                for i in range(4):
                    await svc.maxpool(_x(seed=i), SPEC)
                return await svc.worker_cache_stats()

        stats = run(go())
        warm = [s for s in stats.values() if s["hits"] > 0]
        assert warm, stats  # repeated geometry produced real cache hits
        cold = [s for s in stats.values() if s["entries"] == 0]
        assert cold, stats  # the other worker never saw the geometry


# ---------------------------------------------------------------------------
# Crash recovery.
# ---------------------------------------------------------------------------

class TestCrashRecovery:
    def test_chaos_crash_is_retried(self):
        async def go():
            async with PoolService(workers=2) as svc:
                req = PoolRequest(
                    kind="maxpool", x=_x(seed=1), spec=SPEC,
                    chaos_crash_attempts=(0,),
                )
                res = await svc.submit(req)
                return res, svc.stats

        res, stats = run(go())
        assert res.attempts == 2
        assert stats.worker_failures == 1
        assert stats.retries == 1
        assert stats.respawns == 1
        assert stats.completed == 1
        # and the retried answer is still byte-identical to direct
        direct = execute_request(
            PoolRequest(kind="maxpool", x=_x(seed=1), spec=SPEC)
        )
        assert np.array_equal(res.output, direct.output)
        assert res.cycles == direct.cycles

    def test_retry_budget_exhaustion(self):
        async def go():
            async with PoolService(
                workers=2, retry=RetryPolicy(max_attempts=2),
            ) as svc:
                req = PoolRequest(
                    kind="maxpool", x=_x(seed=1), spec=SPEC,
                    chaos_crash_attempts=(0, 1),
                )
                with pytest.raises(WorkerFailure):
                    await svc.submit(req)
                return svc.stats

        stats = run(go())
        assert stats.failed == 1
        assert stats.worker_failures == 2

    def test_bystanders_survive_a_crash(self):
        """Requests sharing the fleet with a crashing one all complete,
        and their outputs stay byte-identical to direct execution."""
        async def go():
            async with PoolService(workers=2, queue_limit=64) as svc:
                chaos = PoolRequest(
                    kind="maxpool", x=_x(seed=0), spec=SPEC,
                    chaos_crash_attempts=(0,),
                )
                bystanders = [
                    PoolRequest(kind="maxpool", x=_x(seed=i), spec=SPEC)
                    for i in range(1, 7)
                ]
                results = await asyncio.gather(
                    svc.submit(chaos), *(svc.submit(b) for b in bystanders)
                )
                return results, svc.stats

        results, stats = run(go())
        assert stats.completed == 7 and stats.failed == 0
        direct = execute_request(
            PoolRequest(kind="maxpool", x=_x(seed=3), spec=SPEC)
        )
        for res in results:
            assert res.output is not None
        assert np.array_equal(results[3].output, direct.output)

    def test_crash_worker_hook_and_exit_code(self):
        async def go():
            async with PoolService(workers=2) as svc:
                victim = svc.workers[0]
                svc.crash_worker(0)
                victim.process.join(timeout=10)
                exitcode = victim.process.exitcode
                # wait for the collector to notice and the respawn to land
                for _ in range(200):
                    if svc.stats.respawns >= 1:
                        break
                    await asyncio.sleep(0.05)
                res = await svc.maxpool(_x(), SPEC)
                return exitcode, svc.stats, svc.workers[0].generation, res

        exitcode, stats, generation, res = run(go())
        assert exitcode == CRASH_EXIT_CODE
        assert stats.worker_failures == 1
        assert stats.respawns == 1
        assert generation == 1
        assert res.output is not None

    def test_quarantine_after_repeated_failures(self):
        async def go():
            async with PoolService(
                workers=2, retry=RetryPolicy(quarantine_after=2),
            ) as svc:
                for expected in (1, 2):
                    svc.crash_worker(0)
                    for _ in range(200):
                        if svc.stats.worker_failures >= expected and (
                            svc.workers[0].quarantined
                            or svc.workers[0].alive
                        ):
                            break
                        await asyncio.sleep(0.05)
                res = await svc.maxpool(_x(), SPEC)
                return svc.stats, res

        stats, res = run(go())
        assert stats.worker_failures == 2
        assert 0 in stats.quarantined
        assert stats.respawns == 1  # first crash respawned, second didn't
        assert res.worker == 1  # served by the surviving healthy worker

    def test_all_quarantined_forces_a_respawn(self):
        """With every slot quarantined the service degrades instead of
        deadlocking: the least-failed slot is respawned anyway."""
        async def go():
            async with PoolService(
                workers=1, retry=RetryPolicy(quarantine_after=1),
            ) as svc:
                svc.crash_worker(0)
                for _ in range(200):
                    if svc.stats.forced_respawns >= 1:
                        break
                    await asyncio.sleep(0.05)
                res = await svc.maxpool(_x(), SPEC)
                return svc.stats, res

        stats, res = run(go())
        assert stats.forced_respawns == 1
        assert res.output is not None
