"""End-to-end integrity: fingerprints, audits, tie-breaks, KAT probes.

Unit tests cover the loop-free pieces (config validation, the
deterministic audit sampler, audit-twin construction, KAT payloads and
goldens, the chaos bit-flipper) synchronously; the integration tests
drive real worker fleets through every detection path -- transit
corruption absorbed by fingerprint re-verification, a corrupt core
convicted by dual-execution audit + tie-break, and an idle-fleet
corrupt core convicted by known-answer probes -- plus the defaults-off
contract: without an :class:`IntegrityConfig`, requests, responses and
stats are byte-identical to the pre-integrity service.
"""

from __future__ import annotations

import asyncio
import dataclasses
import pickle

import numpy as np
import pytest

from repro.errors import IntegrityError, ServeError
from repro.ops import PoolSpec
from repro.serve import (
    KAT_GEOMETRIES,
    IntegrityConfig,
    IntegrityController,
    PoolRequest,
    PoolResponse,
    PoolService,
    ResilienceConfig,
    audit_twin,
    execute_request,
    kat_request,
)
from repro.serve.integrity import INTERNAL_TENANT
from repro.serve.workers import corrupt_result
from repro.sim import RetryPolicy
from repro.sim.fingerprint import fingerprint_result
from repro.workloads import make_input

SPEC = PoolSpec.square(3, 2)
TIMEOUT = 60.0
RETRY = RetryPolicy(max_attempts=6, quarantine_after=2)


def run(coro):
    """Drive one async test body with a hang guard."""
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def _x(seed=0, ih=16, iw=16, c=32):
    return make_input(ih, iw, c, seed=seed)


def _req(seed=0, **kw):
    return PoolRequest(kind="maxpool", x=_x(seed=seed), spec=SPEC, **kw)


async def _drain(svc, rounds=200):
    """Wait for outstanding dispatches and probes to settle."""
    for _ in range(rounds):
        if not svc._dispatched and not svc._requests:
            return
        await asyncio.sleep(0.02)


# ---------------------------------------------------------------------------
# Config and pure decision logic.
# ---------------------------------------------------------------------------

class TestIntegrityConfig:
    def test_defaults(self):
        cfg = IntegrityConfig()
        assert cfg.fingerprint
        assert not cfg.audit_enabled
        assert not cfg.kat_enabled

    @pytest.mark.parametrize("kw", [
        {"audit_rate": -0.1},
        {"audit_rate": 1.5},
        {"kat_interval_ms": 0.0},
        {"kat_interval_ms": -5.0},
        {"probe_timeout_ms": 0.0},
        {"max_recorded_errors": 0},
        {"kat_chaos_corrupt_output": (-1,)},
    ])
    def test_validation(self, kw):
        with pytest.raises(ServeError):
            IntegrityConfig(**kw)

    def test_audit_needs_two_workers(self):
        with pytest.raises(ServeError, match="worker"):
            PoolService(
                workers=1, integrity=IntegrityConfig(audit_rate=0.5)
            )


class TestAuditSampler:
    def _controller(self, **kw):
        from repro.config import ASCEND910
        return IntegrityController(IntegrityConfig(**kw), ASCEND910)

    def test_deterministic_and_rate_bounded(self):
        c = self._controller(audit_rate=0.25)
        picks = [c.should_audit(i) for i in range(400)]
        assert picks == [c.should_audit(i) for i in range(400)]
        rate = sum(picks) / len(picks)
        assert 0.1 < rate < 0.4

    def test_extremes(self):
        never = self._controller(audit_rate=0.0)
        always = self._controller(audit_rate=1.0)
        assert not any(never.should_audit(i) for i in range(100))
        assert all(always.should_audit(i) for i in range(100))

    def test_seed_shifts_the_sample(self):
        a = self._controller(audit_rate=0.25, seed=0)
        b = self._controller(audit_rate=0.25, seed=1)
        assert [a.should_audit(i) for i in range(400)] != [
            b.should_audit(i) for i in range(400)
        ]


class TestAuditTwin:
    def test_strips_schedule_chaos_keeps_corruption(self):
        req = _req(
            deadline_ms=100.0,
            collect_trace=True,
            chaos_crash_attempts=(0,),
            chaos_stall_attempts=(1,),
            chaos_slow_ms=50.0,
            chaos_slow_attempts=(0,),
            chaos_drop_reply=(2,),
            chaos_corrupt_output=(0,),
            chaos_corrupt_payload=(1,),
        )
        twin = audit_twin(req)
        assert twin.tenant == INTERNAL_TENANT
        assert twin.deadline_ms is None
        assert not twin.collect_trace
        assert twin.fingerprint
        assert twin.chaos_crash_attempts == ()
        assert twin.chaos_stall_attempts == ()
        assert twin.chaos_slow_ms == 0.0
        assert twin.chaos_drop_reply == ()
        # Worker-keyed corruption survives: a corrupt worker must
        # corrupt the audit leg too, or drills could not tie-break.
        assert twin.chaos_corrupt_output == (0,)
        assert twin.chaos_corrupt_payload == (1,)
        # Payload untouched.
        assert twin.x is req.x
        assert twin.spec == req.spec


class TestKnownAnswers:
    def test_kat_payloads_are_deterministic(self):
        for idx in range(len(KAT_GEOMETRIES)):
            a, b = kat_request(idx), kat_request(idx)
            assert a.tenant == INTERNAL_TENANT
            assert a.fingerprint
            assert a.x.tobytes() == b.x.tobytes()
        # Rotation wraps.
        assert kat_request(len(KAT_GEOMETRIES)).x.tobytes() == \
            kat_request(0).x.tobytes()

    def test_goldens_cached_and_worker_identical(self):
        from repro.config import ASCEND910
        ctl = IntegrityController(IntegrityConfig(), ASCEND910)
        fp = ctl.golden(0)
        assert ctl.golden(0) == fp  # cached
        direct = execute_request(kat_request(0), ASCEND910)
        assert fingerprint_result(direct.detach()) == fp

    def test_rotation(self):
        from repro.config import ASCEND910
        ctl = IntegrityController(IntegrityConfig(), ASCEND910)
        seen = [ctl.next_kat()[0] for _ in range(2 * len(KAT_GEOMETRIES))]
        assert seen == list(range(len(KAT_GEOMETRIES))) * 2


class TestCorruptResult:
    def test_flips_one_bit_deterministically(self):
        res = execute_request(_req()).detach()
        a = corrupt_result(res, 0, 0, "output")
        b = corrupt_result(res, 0, 0, "output")
        assert a.output.tobytes() == b.output.tobytes()
        diff = (a.output.view(np.uint16)
                ^ res.output.view(np.uint16)).reshape(-1)
        assert np.count_nonzero(diff) == 1
        assert bin(int(diff[diff != 0][0])).count("1") == 1

    def test_stage_and_coordinates_salt_the_position(self):
        res = execute_request(_req()).detach()
        out = corrupt_result(res, 0, 0, "output").output.tobytes()
        assert corrupt_result(res, 0, 0, "payload").output.tobytes() != out
        assert corrupt_result(res, 1, 0, "output").output.tobytes() != out

    def test_cycles_only_result_unchanged(self):
        res = execute_request(_req()).detach()
        bare = dataclasses.replace(res, output=None, mask=None)
        assert corrupt_result(bare, 0, 0, "output") is bare


# ---------------------------------------------------------------------------
# Defaults off: the pre-integrity service is byte-identical.
# ---------------------------------------------------------------------------

class TestDefaultsOff:
    def test_no_config_means_no_integrity_surface(self):
        async def body():
            async with PoolService(workers=1) as svc:
                res = await svc.submit(_req())
                assert res.fingerprint is None
                assert res.fingerprint_ok is None
                assert not res.audited
                direct = execute_request(_req())
                assert np.array_equal(res.output, direct.output)
                assert res.cycles == direct.cycles
                d = svc.stats.to_dict()
                for key in ("audits_run", "audit_mismatches",
                            "kat_probes", "corrupt_workers_quarantined",
                            "fingerprint_failures"):
                    assert key not in d
        run(body())

    def test_stats_dict_gains_counters_with_config(self):
        async def body():
            async with PoolService(
                workers=1, integrity=IntegrityConfig()
            ) as svc:
                await svc.submit(_req())
                d = svc.stats.to_dict()
                assert d["audits_run"] == 0
                assert d["fingerprint_failures"] == 0
        run(body())

    def test_internal_tenant_rejected_at_submit(self):
        async def body():
            async with PoolService(workers=1) as svc:
                with pytest.raises(ServeError, match="reserved"):
                    await svc.submit(_req(tenant=INTERNAL_TENANT))
        run(body())


# ---------------------------------------------------------------------------
# Fingerprint verification: transit corruption never reaches the caller.
# ---------------------------------------------------------------------------

class TestFingerprintVerification:
    def test_clean_response_carries_verified_fingerprint(self):
        async def body():
            async with PoolService(
                workers=1, integrity=IntegrityConfig()
            ) as svc:
                res = await svc.submit(_req())
                assert res.fingerprint_ok is True
                assert res.fingerprint == fingerprint_result(res.result)
        run(body())

    def test_payload_corruption_retried_and_quarantined(self):
        async def body():
            async with PoolService(
                workers=2, retry=RETRY, integrity=IntegrityConfig()
            ) as svc:
                direct = execute_request(_req())
                for seed in range(4):
                    res = await svc.submit(_req(
                        seed=0, chaos_corrupt_payload=(0,)))
                    # Corrupt bytes never served; retried elsewhere.
                    assert res.worker != 0
                    assert res.output.tobytes() == direct.output.tobytes()
                s = svc.stats
                assert s.fingerprint_failures >= RETRY.quarantine_after
                assert s.quarantined == (0,)
                assert s.corrupt_workers_quarantined == 1
                assert s.retries >= s.fingerprint_failures
        run(body())

    def test_every_worker_corrupt_exhausts_retries(self):
        async def body():
            async with PoolService(
                workers=2,
                retry=RetryPolicy(max_attempts=3, quarantine_after=8),
                integrity=IntegrityConfig(),
            ) as svc:
                with pytest.raises(IntegrityError) as ei:
                    await svc.submit(_req(chaos_corrupt_payload=(0, 1)))
                assert ei.value.slot in (0, 1)
                assert ei.value.request is not None
                assert svc.stats.failed == 1
        run(body())

    def test_stale_corrupt_reply_still_charges_the_worker(self):
        # A hedge winner resolves the request; the loser's corrupt
        # reply arrives *stale* -- its (worker, attempt) tag no longer
        # matches an outstanding dispatch -- and must still count
        # against the corrupt slot.
        async def body():
            async with PoolService(
                workers=2,
                retry=RETRY,
                resilience=ResilienceConfig(hedge_after_ms=80.0),
                integrity=IntegrityConfig(),
            ) as svc:
                res = await svc.submit(_req(
                    chaos_slow_ms=500.0, chaos_slow_attempts=(0,),
                    chaos_corrupt_payload=(0,),
                ))
                # Hedge leg (attempt 1, other worker) wins cleanly.
                assert res.worker == 1
                assert res.fingerprint_ok is True
                await _drain(svc)
                assert svc.stats.fingerprint_failures == 1
        run(body())


# ---------------------------------------------------------------------------
# Audits: a corrupt core is convicted by re-execution + tie-break.
# ---------------------------------------------------------------------------

class TestAudits:
    def test_clean_audit_matches(self):
        async def body():
            async with PoolService(
                workers=3, retry=RETRY,
                integrity=IntegrityConfig(audit_rate=1.0),
            ) as svc:
                res = await svc.submit(_req())
                assert res.audited
                await _drain(svc)
                s = svc.stats
                assert s.audits_run == 1
                assert s.audit_mismatches == 0
                assert not svc.integrity_errors
        run(body())

    def test_corrupt_core_convicted(self):
        async def body():
            async with PoolService(
                workers=3, retry=RETRY,
                integrity=IntegrityConfig(audit_rate=1.0),
            ) as svc:
                res = await svc.submit(_req(chaos_corrupt_output=(0,)))
                # Lowest-slot tie-break: the corrupt worker serves it,
                # and the self-consistent fingerprint verifies.
                assert res.worker == 0
                assert res.fingerprint_ok is True
                await _drain(svc)
                s = svc.stats
                assert s.audit_mismatches == 1
                errs = svc.integrity_errors
                assert len(errs) == 1
                assert isinstance(errs[0], IntegrityError)
                assert errs[0].slot == 0
                assert errs[0].divergence is not None
                assert 0 in s.quarantined
                assert s.corrupt_workers_quarantined == 1
        run(body())

    def test_audit_leg_on_corrupt_worker_also_convicts_it(self):
        # The *origin* is clean; the audit re-execution lands on the
        # corrupt worker.  The tie-break must convict the auditor, not
        # the innocent origin.
        async def body():
            async with PoolService(
                workers=3, retry=RETRY,
                integrity=IntegrityConfig(audit_rate=1.0),
            ) as svc:
                res = await svc.submit(_req(chaos_corrupt_output=(1,)))
                assert res.worker == 0
                await _drain(svc)
                errs = svc.integrity_errors
                if errs:  # audit leg landed on worker 1
                    assert all(e.slot == 1 for e in errs)
                    assert 0 not in svc.stats.quarantined
        run(body())

    def test_sampling_respects_rate_zero(self):
        async def body():
            async with PoolService(
                workers=2, integrity=IntegrityConfig(audit_rate=0.0)
            ) as svc:
                res = await svc.submit(_req())
                assert not res.audited
                await _drain(svc)
                assert svc.stats.audits_run == 0
        run(body())


# ---------------------------------------------------------------------------
# KAT probes: a corrupt core is caught with no user traffic at all.
# ---------------------------------------------------------------------------

class TestKatProbes:
    def test_quiet_fleet_probed_clean(self):
        async def body():
            async with PoolService(
                workers=2, retry=RETRY,
                integrity=IntegrityConfig(kat_interval_ms=30.0),
            ) as svc:
                for _ in range(100):
                    await asyncio.sleep(0.03)
                    if svc.stats.kat_probes >= 3:
                        break
                assert svc.stats.kat_probes >= 3
                assert not svc.integrity_errors
                assert not svc.stats.quarantined
        run(body())

    def test_corrupt_core_convicted_between_requests(self):
        async def body():
            async with PoolService(
                workers=3, retry=RETRY,
                integrity=IntegrityConfig(
                    kat_interval_ms=30.0,
                    kat_chaos_corrupt_output=(1,),
                ),
            ) as svc:
                for _ in range(200):
                    await asyncio.sleep(0.03)
                    if svc.integrity_errors:
                        break
                errs = svc.integrity_errors
                assert errs and all(e.slot == 1 for e in errs)
                assert 1 in svc.stats.quarantined
                # The healthy slots keep serving.
                res = await svc.submit(_req())
                assert res.worker != 1
        run(body())


# ---------------------------------------------------------------------------
# Envelope: pickling and the integrity metadata fields.
# ---------------------------------------------------------------------------

class TestResponseEnvelope:
    def test_response_pickles_with_integrity_fields(self):
        async def body():
            async with PoolService(
                workers=2, retry=RETRY,
                integrity=IntegrityConfig(audit_rate=1.0),
            ) as svc:
                res = await svc.submit(_req())
                await _drain(svc)
                clone = pickle.loads(pickle.dumps(res))
                assert isinstance(clone, PoolResponse)
                assert clone.fingerprint == res.fingerprint
                assert clone.fingerprint_ok is True
                assert clone.audited == res.audited
                assert clone.output.tobytes() == res.output.tobytes()
                assert clone.latency == res.latency
                # detach() on the carried result stays available after
                # the worker-boundary round trip.
                detached = clone.result.detach()
                assert fingerprint_result(detached) == clone.fingerprint
        run(body())

    def test_request_pickles_with_chaos_fields(self):
        req = _req(
            fingerprint=True,
            chaos_corrupt_output=(0,),
            chaos_corrupt_payload=(1,),
        )
        clone = pickle.loads(pickle.dumps(req))
        assert clone.fingerprint
        assert clone.chaos_corrupt_output == (0,)
        assert clone.chaos_corrupt_payload == (1,)
        assert clone.x.tobytes() == req.x.tobytes()

    def test_new_fields_excluded_from_geometry_key(self):
        from repro.serve import geometry_key

        plain = _req()
        flagged = _req(
            fingerprint=True,
            chaos_corrupt_output=(0,),
            chaos_corrupt_payload=(1,),
        )
        assert geometry_key(plain) == geometry_key(flagged)
