"""Unit tests for the loop-free resilience primitives.

Everything here runs without an event loop or worker processes: the
breaker and tracker are clock-injectable by design, so the state
machines are exercised deterministically with a fake monotonic clock.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    CircuitOpenError,
    DeadlineError,
    HedgeError,
    QuotaExceededError,
    ServeError,
)
from repro.ops import PoolSpec
from repro.serve import (
    CircuitBreaker,
    FairQueue,
    LatencyTracker,
    PoolRequest,
    ResilienceConfig,
    TenantQuota,
    degrade_request,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _x():
    return np.zeros((1, 1, 8, 8, 16), dtype=np.float16)


class TestResilienceConfig:
    def test_defaults_are_all_off(self):
        cfg = ResilienceConfig()
        assert cfg.stall_timeout_ms is None
        assert not cfg.hedge_enabled
        assert not cfg.breaker_enabled
        assert cfg.degrade_at is None
        assert not cfg.shed_low_priority

    @pytest.mark.parametrize("kw", [
        {"stall_timeout_ms": 0.0},
        {"stall_timeout_ms": -1.0},
        {"watchdog_interval_ms": 0.0},
        {"hedge_after_ms": 0.0},
        {"hedge_quantile": 0.0},
        {"hedge_quantile": 1.5},
        {"hedge_min_samples": 0},
        {"breaker_failure_threshold": 0.0},
        {"breaker_failure_threshold": 1.5},
        {"breaker_window": 0},
        {"breaker_min_volume": 0},
        {"breaker_open_ms": -1.0},
        {"breaker_half_open_probes": 0},
        {"degrade_at": -0.1},
        {"degrade_at": 1.1},
        {"retry_after_ms": -1.0},
    ])
    def test_validation(self, kw):
        with pytest.raises(ServeError):
            ResilienceConfig(**kw)

    def test_enabled_flags(self):
        assert ResilienceConfig(hedge_after_ms=5.0).hedge_enabled
        assert ResilienceConfig(hedge_quantile=0.99).hedge_enabled
        assert ResilienceConfig(breaker_failure_threshold=0.5).breaker_enabled


class TestLatencyTracker:
    def test_empty_quantile_is_none(self):
        assert LatencyTracker().quantile(0.99) is None

    def test_quantiles(self):
        t = LatencyTracker()
        for v in range(100):
            t.observe(float(v))
        assert t.quantile(0.0) == 0.0
        assert t.quantile(0.5) == 50.0
        assert t.quantile(0.99) == 99.0
        assert t.quantile(1.0) == 99.0

    def test_window_bounds_samples(self):
        t = LatencyTracker(window=4)
        for v in (1000.0, 1.0, 2.0, 3.0, 4.0):
            t.observe(v)
        # The spike aged out of the window.
        assert len(t) == 4
        assert t.quantile(1.0) == 4.0

    def test_bad_quantile(self):
        t = LatencyTracker()
        t.observe(1.0)
        with pytest.raises(ServeError):
            t.quantile(1.5)

    def test_bad_window(self):
        with pytest.raises(ServeError):
            LatencyTracker(window=0)


class TestCircuitBreaker:
    def _breaker(self, clock, **kw):
        kw.setdefault("breaker_failure_threshold", 0.5)
        kw.setdefault("breaker_min_volume", 4)
        kw.setdefault("breaker_open_ms", 1000.0)
        return CircuitBreaker(ResilienceConfig(**kw), clock=clock)

    def test_requires_threshold(self):
        with pytest.raises(ServeError):
            CircuitBreaker(ResilienceConfig())

    def test_closed_until_volume_and_rate(self):
        clock = FakeClock()
        br = self._breaker(clock)
        br.record_failure()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"  # below min volume
        br.record_failure()
        assert br.state == "open"  # 4/4 failures >= 0.5
        assert br.opens == 1

    def test_success_dilutes_failure_rate(self):
        clock = FakeClock()
        br = self._breaker(clock)
        for _ in range(6):
            br.record_success()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"  # 2/8 < 0.5
        assert br.failure_rate == pytest.approx(0.25)

    def test_open_excludes_then_half_opens(self):
        clock = FakeClock()
        br = self._breaker(clock)
        br.trip()
        assert not br.available()
        assert br.retry_after == pytest.approx(1.0)
        clock.advance(0.5)
        assert not br.available()
        clock.advance(0.6)
        assert br.state == "half-open"
        assert br.available()

    def test_half_open_probe_budget(self):
        clock = FakeClock()
        br = self._breaker(clock, breaker_half_open_probes=1)
        br.trip()
        clock.advance(2.0)
        assert br.available()
        br.record_dispatch()
        assert not br.available()  # probe budget consumed

    def test_probe_success_closes(self):
        clock = FakeClock()
        br = self._breaker(clock)
        br.trip()
        clock.advance(2.0)
        br.record_dispatch()
        br.record_success()
        assert br.state == "closed"
        assert br.failure_rate == 0.0  # window reset

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        br = self._breaker(clock)
        br.trip()
        clock.advance(2.0)
        br.record_dispatch()
        br.record_failure()
        assert br.state == "open"
        assert br.opens == 2
        assert br.retry_after == pytest.approx(1.0)

    def test_stale_failure_while_open_is_ignored(self):
        clock = FakeClock()
        br = self._breaker(clock)
        br.trip()
        br.record_failure()
        assert br.opens == 1  # no re-trip, no window pollution
        clock.advance(2.0)
        assert br.state == "half-open"

    def test_on_open_callback(self):
        clock = FakeClock()
        opens = []
        br = CircuitBreaker(
            ResilienceConfig(breaker_failure_threshold=0.5),
            clock=clock, on_open=lambda: opens.append(1),
        )
        br.trip()
        assert opens == [1]


class TestDegradeRequest:
    def test_jit_falls_back_to_numeric(self):
        r = PoolRequest(kind="maxpool", x=_x(), spec=PoolSpec.square(2, 2),
                        execute="jit")
        out, notes = degrade_request(r)
        assert out.execute == "numeric"
        assert notes == ("execute:jit->numeric",)

    def test_autotuned_falls_back_to_default(self):
        r = PoolRequest(kind="maxpool", x=_x(), spec=PoolSpec.square(2, 2),
                        plan="autotuned")
        out, notes = degrade_request(r)
        assert out.plan == "default"
        assert notes == ("plan:autotuned->default",)

    def test_both_at_once(self):
        r = PoolRequest(kind="maxpool", x=_x(), spec=PoolSpec.square(2, 2),
                        execute="jit", plan="autotuned")
        out, notes = degrade_request(r)
        assert out.execute == "numeric" and out.plan == "default"
        assert len(notes) == 2

    def test_already_cheapest_is_untouched(self):
        r = PoolRequest(kind="maxpool", x=_x(), spec=PoolSpec.square(2, 2))
        out, notes = degrade_request(r)
        assert out is r
        assert notes == ()


class TestStructuredErrors:
    def test_admission_error_context(self):
        e = AdmissionError("full", queue_depth=7, limit=8, retry_after=0.25)
        assert (e.queue_depth, e.limit, e.retry_after) == (7, 8, 0.25)

    def test_quota_error_context(self):
        e = QuotaExceededError("over", tenant="t", pending=4, limit=4,
                               retry_after=0.1)
        assert (e.tenant, e.pending, e.limit) == ("t", 4, 4)

    def test_deadline_error_context(self):
        e = DeadlineError("late", deadline_ms=10.0, elapsed_ms=12.5,
                          stage="queued")
        assert e.stage == "queued"
        assert e.elapsed_ms == 12.5

    def test_circuit_open_error_context(self):
        e = CircuitOpenError("open", retry_after=0.5)
        assert e.retry_after == 0.5

    def test_hierarchy(self):
        assert issubclass(DeadlineError, ServeError)
        assert issubclass(HedgeError, ServeError)
        assert issubclass(CircuitOpenError, ServeError)


class TestRequestResilienceFields:
    def test_deadline_must_be_numeric(self):
        with pytest.raises(ServeError):
            PoolRequest(kind="maxpool", x=_x(), spec=PoolSpec.square(2, 2),
                        deadline_ms=float("nan"))

    def test_negative_deadline_is_constructible(self):
        # Rejected at *admission* (stage="admission"), not construction,
        # so a caller computing "budget minus elapsed" needn't special-case.
        r = PoolRequest(kind="maxpool", x=_x(), spec=PoolSpec.square(2, 2),
                        deadline_ms=-5.0)
        assert r.deadline_ms == -5.0

    def test_chaos_fields_validated(self):
        spec = PoolSpec.square(2, 2)
        with pytest.raises(ServeError):
            PoolRequest(kind="maxpool", x=_x(), spec=spec, chaos_slow_ms=-1.0)
        with pytest.raises(ServeError):
            PoolRequest(kind="maxpool", x=_x(), spec=spec,
                        chaos_stall_attempts=(-1,))

    def test_chaos_fields_do_not_affect_geometry_key(self):
        from repro.serve import geometry_key
        spec = PoolSpec.square(2, 2)
        a = PoolRequest(kind="maxpool", x=_x(), spec=spec)
        b = PoolRequest(kind="maxpool", x=_x(), spec=spec,
                        deadline_ms=50.0, chaos_crash_attempts=(0,),
                        chaos_slow_ms=1.0, chaos_drop_reply=(1,))
        assert geometry_key(a) == geometry_key(b)


class TestTenantPriority:
    def test_default_priority_zero(self):
        assert TenantQuota().priority == 0

    def test_priority_must_be_int(self):
        with pytest.raises(ServeError):
            TenantQuota(priority=1.5)

    def test_pop_tail_takes_newest(self):
        q = FairQueue()
        q.push("t", 1)
        q.push("t", 2)
        q.push("t", 3)
        assert q.pop_tail("t") == 3
        assert q.pop_tail("t") == 2
        assert [q.pop()[1] for _ in range(1)] == [1]

    def test_pop_tail_empty_tenant(self):
        q = FairQueue()
        assert q.pop_tail("missing") is None
        q.push("t", 1)
        assert q.pop_tail("other") is None

    def test_pop_tail_drained_tenant_leaves_rotation(self):
        q = FairQueue()
        q.push("a", 1)
        q.push("b", 2)
        assert q.pop_tail("a") == 1
        # "a" drained via pop_tail: pop() must skip it cleanly.
        assert q.pop() == ("b", 2)
        assert q.pop() is None
