"""Quota validation and round-robin fairness of the tenant queue."""

import pytest

from repro.errors import ServeError
from repro.serve import FairQueue, TenantQuota


class TestTenantQuota:
    def test_default(self):
        assert TenantQuota().max_pending == 32

    def test_validation(self):
        with pytest.raises(ServeError):
            TenantQuota(max_pending=0)

    def test_frozen(self):
        q = TenantQuota(max_pending=4)
        with pytest.raises(Exception):
            q.max_pending = 8


class TestFairQueue:
    def test_fifo_within_tenant(self):
        q = FairQueue()
        q.push("a", 1)
        q.push("a", 2)
        q.push("a", 3)
        assert [q.pop()[1] for _ in range(3)] == [1, 2, 3]
        assert q.pop() is None

    def test_round_robin_across_tenants(self):
        q = FairQueue()
        for i in range(3):
            q.push("big", f"big{i}")
        q.push("small", "small0")
        order = []
        while True:
            item = q.pop()
            if item is None:
                break
            order.append(item[1])
        # the one-request tenant is serviced on the second turn, not
        # after the chatty tenant drains
        assert order.index("small0") == 1
        assert order == ["big0", "small0", "big1", "big2"]

    def test_push_front_keeps_tenant_head(self):
        q = FairQueue()
        q.push("a", 1)
        q.push("a", 2)
        tenant, item = q.pop()
        assert item == 1
        q.push_front(tenant, item)  # retried
        assert q.pop()[1] == 1
        assert q.pop()[1] == 2

    def test_len_and_pending(self):
        q = FairQueue()
        assert len(q) == 0
        q.push("a", 1)
        q.push("b", 2)
        q.push("b", 3)
        assert len(q) == 3
        assert q.pending("b") == 2
        assert q.pending("missing") == 0

    def test_tenants_in_turn_order(self):
        q = FairQueue()
        q.push("x", 1)
        q.push("y", 2)
        assert q.tenants() == ("x", "y")
        q.pop()  # services x, rotates it behind y
        q.push("x", 3)
        assert q.tenants() == ("y", "x")

    def test_drained_tenant_leaves_rotation(self):
        q = FairQueue()
        q.push("a", 1)
        q.push("b", 2)
        q.pop()
        q.pop()
        assert q.tenants() == ()
        q.push("a", 3)
        assert q.pop() == ("a", 3)
