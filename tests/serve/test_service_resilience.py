"""PoolService resilience integration: deadlines, stalls, hedges,
breakers, shedding.

These drive real worker processes through the opt-in resilience
machinery.  Chaos knobs on :class:`PoolRequest` make each fault class
deterministic: ``chaos_stall_attempts`` hangs a worker alive (only the
watchdog can see it), ``chaos_drop_reply`` orphans a dispatch (only
hedging or the watchdog recovers it), ``chaos_slow_ms`` manufactures
tail latency.  Every ``await`` is wrapped in a generous timeout so a
service bug fails the test instead of hanging the suite.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    CircuitOpenError,
    DeadlineError,
    QuotaExceededError,
    ServeError,
)
from repro.ops import PoolSpec
from repro.serve import (
    PoolRequest,
    PoolService,
    ResilienceConfig,
    TenantQuota,
    execute_request,
)
from repro.sim import RetryPolicy
from repro.workloads import make_input

SPEC = PoolSpec.square(3, 2)
TIMEOUT = 60.0


def run(coro):
    """Drive one async test body with a hang guard."""
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def _x(seed=0, ih=16, iw=16, c=32):
    return make_input(ih, iw, c, seed=seed)


def _req(seed=0, **kw):
    return PoolRequest(kind="maxpool", x=_x(seed=seed), spec=SPEC, **kw)


# ---------------------------------------------------------------------------
# Deadlines: admission, queued, in-flight.
# ---------------------------------------------------------------------------

class TestDeadlines:
    def test_expired_at_admission(self):
        async def body():
            async with PoolService(workers=1) as svc:
                with pytest.raises(DeadlineError) as ei:
                    await svc.submit(_req(deadline_ms=0.0))
                assert ei.value.stage == "admission"
                assert svc.stats.deadline_misses == 1
                # Never admitted: no queue/ledger residue.
                assert svc.stats.submitted == 0
        run(body())

    def test_expired_while_queued(self):
        async def body():
            # One worker, window 1: a slow request holds the worker
            # while the deadlined request ages out in the queue.
            async with PoolService(
                workers=1, max_inflight_per_worker=1,
                resilience=ResilienceConfig(watchdog_interval_ms=20.0),
            ) as svc:
                slow = asyncio.ensure_future(
                    svc.submit(_req(seed=1, chaos_slow_ms=700.0)))
                await asyncio.sleep(0.05)  # let it dispatch
                with pytest.raises(DeadlineError) as ei:
                    # Different geometry (impl), so no coalescing
                    # affinity bypasses the saturated dispatch window.
                    await svc.submit(_req(
                        seed=2, impl="standard", deadline_ms=100.0))
                assert ei.value.stage == "queued"
                assert ei.value.elapsed_ms >= 100.0
                res = await slow
                assert res.output is not None
        run(body())

    def test_expired_in_flight(self):
        async def body():
            cfg = ResilienceConfig(
                stall_timeout_ms=30_000.0, watchdog_interval_ms=20.0)
            async with PoolService(workers=1, resilience=cfg) as svc:
                with pytest.raises(DeadlineError) as ei:
                    await svc.submit(_req(
                        deadline_ms=200.0,
                        chaos_stall_attempts=(0, 1, 2, 3)))
                assert ei.value.stage == "in-flight"
                await svc.close(drain=False)
        run(body())

    def test_deadline_met_is_invisible(self):
        async def body():
            async with PoolService(workers=1) as svc:
                res = await svc.submit(_req(deadline_ms=30_000.0))
                assert res.output is not None
                assert svc.stats.deadline_misses == 0
        run(body())


# ---------------------------------------------------------------------------
# Stall watchdog: hung-but-alive workers are terminated and recovered.
# ---------------------------------------------------------------------------

class TestStallWatchdog:
    def test_stalled_worker_is_recovered(self):
        async def body():
            cfg = ResilienceConfig(
                stall_timeout_ms=300.0, watchdog_interval_ms=30.0)
            async with PoolService(workers=2, resilience=cfg) as svc:
                res = await svc.submit(_req(chaos_stall_attempts=(0,)))
                assert res.attempts == 2
                assert svc.stats.stalls_detected == 1
                assert svc.stats.worker_failures == 1
                assert svc.stats.retries == 1
                assert svc.stats.respawns == 1
                # Byte-identity survives the stall recovery.
                direct = execute_request(_req())
                np.testing.assert_array_equal(res.output, direct.output)
        run(body())

    def test_reply_queues_are_private_per_worker(self):
        # The watchdog SIGTERMs hung workers; a process killed mid-put
        # dies holding its reply queue's write lock.  The queues must
        # therefore be per worker (and replaced on respawn) -- one
        # shared reply queue would let a single kill wedge the fleet.
        async def body():
            cfg = ResilienceConfig(
                stall_timeout_ms=500.0, watchdog_interval_ms=30.0)
            async with PoolService(workers=3, resilience=cfg) as svc:
                before = {h.slot: h.outbox for h in svc._handles}
                assert len(set(map(id, before.values()))) == 3
                res = await svc.submit(_req(chaos_stall_attempts=(0,)))
                assert res.attempts >= 2
                after = {h.slot: h.outbox for h in svc._handles}
                replaced = [
                    slot for slot in before
                    if after[slot] is not before[slot]
                ]
                # Every respawn (>= 1; a loaded host may age a retry
                # past the timeout too) replaced the slot's queue.
                assert len(replaced) == svc.stats.respawns >= 1
        run(body())

    def test_stall_counts_against_retry_budget(self):
        async def body():
            cfg = ResilienceConfig(
                stall_timeout_ms=200.0, watchdog_interval_ms=30.0)
            async with PoolService(
                workers=2, resilience=cfg,
                retry=RetryPolicy(max_attempts=2, quarantine_after=10),
            ) as svc:
                from repro.errors import WorkerFailure
                with pytest.raises(WorkerFailure):
                    await svc.submit(_req(chaos_stall_attempts=(0, 1)))
                assert svc.stats.stalls_detected == 2
        run(body())

    def test_dropped_reply_is_recovered_by_watchdog(self):
        async def body():
            cfg = ResilienceConfig(
                stall_timeout_ms=300.0, watchdog_interval_ms=30.0)
            async with PoolService(workers=1, resilience=cfg) as svc:
                # The worker executes but the reply vanishes: from the
                # service's view the dispatch aged out, so the watchdog
                # terminates the worker and the retry completes.
                res = await svc.submit(_req(chaos_drop_reply=(0,)))
                assert res.attempts == 2
                assert res.output is not None
        run(body())


# ---------------------------------------------------------------------------
# Hedged retries: first byte-identical reply wins, exactly once.
# ---------------------------------------------------------------------------

class TestHedging:
    def test_hedge_wins_over_dropped_reply(self):
        async def body():
            cfg = ResilienceConfig(
                hedge_after_ms=150.0, watchdog_interval_ms=30.0)
            async with PoolService(workers=2, resilience=cfg) as svc:
                res = await svc.submit(_req(chaos_drop_reply=(0,)))
                assert res.hedged
                assert res.attempts == 2
                assert svc.stats.hedges == 1
                assert svc.stats.hedge_wins == 1
                direct = execute_request(_req())
                np.testing.assert_array_equal(res.output, direct.output)
        run(body())

    def test_hedge_loser_is_discarded_exactly_once(self):
        async def body():
            cfg = ResilienceConfig(
                hedge_after_ms=100.0, watchdog_interval_ms=30.0)
            async with PoolService(workers=2, resilience=cfg) as svc:
                # Both legs eventually reply (the slow primary after
                # ~600ms); only one resolution must happen and the
                # loser's reply must release its window slot.
                res = await svc.submit(_req(chaos_slow_ms=600.0,
                                            chaos_slow_attempts=(0,)))
                assert res.hedged
                assert svc.stats.hedge_wins == 1
                # Let the loser's reply drain, then verify the ledger.
                await asyncio.sleep(1.0)
                assert svc._dispatched == {}
                assert all(h.inflight == 0 for h in svc.workers)
                assert svc.stats.completed == 1
        run(body())

    def test_quantile_hedging_needs_samples(self):
        async def body():
            cfg = ResilienceConfig(
                hedge_quantile=0.5, hedge_min_samples=4,
                watchdog_interval_ms=20.0)
            async with PoolService(workers=2, resilience=cfg) as svc:
                # Below min samples: no hedging even for a slow request.
                res = await svc.submit(_req(chaos_slow_ms=300.0))
                assert not res.hedged
                for seed in range(4):
                    await svc.submit(_req(seed=seed))
                # Tracker warm: a request far beyond p50 gets hedged.
                res = await svc.submit(_req(
                    seed=9, chaos_slow_ms=800.0, chaos_slow_attempts=(0,)))
                assert res.hedged
        run(body())

    def test_hedged_leg_crash_does_not_requeue(self):
        async def body():
            # Primary leg stalls then is crashed via the watchdog while
            # the hedge leg completes: the request must resolve exactly
            # once with the hedge's result, not retry a third time.
            cfg = ResilienceConfig(
                hedge_after_ms=100.0, stall_timeout_ms=400.0,
                watchdog_interval_ms=30.0)
            async with PoolService(workers=2, resilience=cfg) as svc:
                res = await svc.submit(_req(chaos_stall_attempts=(0,)))
                assert res.hedged
                assert res.attempts == 2
                await asyncio.sleep(0.8)  # let the stall termination land
                assert svc.stats.completed == 1
                assert svc.stats.retries == 0  # hedge covered the death
        run(body())


# ---------------------------------------------------------------------------
# Circuit breakers: failing slots leave placement, then recover.
# ---------------------------------------------------------------------------

class TestCircuitBreakers:
    def test_breaker_opens_on_worker_deaths(self):
        async def body():
            cfg = ResilienceConfig(
                breaker_failure_threshold=0.5, breaker_min_volume=1,
                breaker_open_ms=60_000.0)
            async with PoolService(
                workers=2, resilience=cfg,
                retry=RetryPolicy(max_attempts=4, quarantine_after=10),
            ) as svc:
                res = await svc.submit(_req(chaos_crash_attempts=(0,)))
                assert res.output is not None
                assert svc.stats.breaker_opens >= 1
                opened = [s for s, br in svc.breakers.items()
                          if br.state == "open"]
                assert len(opened) == 1
                # Placement now avoids the open slot.
                for seed in range(3):
                    r = await svc.submit(_req(seed=seed + 10))
                    assert r.worker not in opened
        run(body())

    def test_all_open_fast_fails_submission(self):
        async def body():
            cfg = ResilienceConfig(
                breaker_failure_threshold=0.5, breaker_min_volume=1,
                breaker_open_ms=60_000.0)
            async with PoolService(workers=2, resilience=cfg) as svc:
                for br in svc.breakers.values():
                    br.trip()
                with pytest.raises(CircuitOpenError) as ei:
                    await svc.submit(_req())
                assert ei.value.retry_after > 0
                assert svc.stats.rejected_circuit == 1
        run(body())

    def test_half_open_probe_closes_breaker(self):
        async def body():
            cfg = ResilienceConfig(
                breaker_failure_threshold=0.5, breaker_min_volume=1,
                breaker_open_ms=100.0)
            async with PoolService(workers=1, resilience=cfg) as svc:
                svc.breakers[0].trip()
                await asyncio.sleep(0.15)  # past breaker_open_ms
                res = await svc.submit(_req())
                assert res.output is not None
                assert svc.breakers[0].state == "closed"
        run(body())


# ---------------------------------------------------------------------------
# Load shedding and graceful degradation.
# ---------------------------------------------------------------------------

class TestShedding:
    def test_low_priority_is_shed_for_high(self):
        async def body():
            cfg = ResilienceConfig(shed_low_priority=True)
            quotas = {
                "gold": TenantQuota(max_pending=32, priority=10),
                "bronze": TenantQuota(max_pending=32, priority=0),
            }
            async with PoolService(
                workers=1, max_inflight_per_worker=1, queue_limit=3,
                quotas=quotas, resilience=cfg,
            ) as svc:
                # Fill the queue with bronze work behind a slow request
                # (distinct impls = distinct geometry keys, so no
                # coalescing affinity bypasses the dispatch window).
                impls = ("im2col", "standard", "expansion")
                bronze = [
                    asyncio.ensure_future(svc.submit(_req(
                        seed=i, tenant="bronze", impl=impls[i],
                        chaos_slow_ms=400.0 if i == 0 else 0.0)))
                    for i in range(3)
                ]
                await asyncio.sleep(0.1)
                # Queue is full; a gold arrival sheds the newest bronze.
                gold = await svc.submit(_req(seed=9, tenant="gold"))
                assert gold.output is not None
                assert svc.stats.shed == 1
                outcomes = await asyncio.gather(
                    *bronze, return_exceptions=True)
                shed = [e for e in outcomes
                        if isinstance(e, AdmissionError)]
                assert len(shed) == 1
                assert shed[0].retry_after > 0
                assert shed[0].limit == 3
        run(body())

    def test_equal_priority_is_rejected_not_shed(self):
        async def body():
            cfg = ResilienceConfig(shed_low_priority=True)
            async with PoolService(
                workers=1, max_inflight_per_worker=1, queue_limit=2,
                resilience=cfg,
            ) as svc:
                futs = [
                    asyncio.ensure_future(svc.submit(_req(
                        seed=i, chaos_slow_ms=300.0 if i == 0 else 0.0)))
                    for i in range(2)
                ]
                await asyncio.sleep(0.1)
                with pytest.raises(AdmissionError) as ei:
                    await svc.submit(_req(seed=9))
                assert ei.value.queue_depth == 2
                assert svc.stats.shed == 0
                await asyncio.gather(*futs)
        run(body())

    def test_degradation_under_pressure(self):
        async def body():
            cfg = ResilienceConfig(degrade_at=0.0)  # degrade always
            async with PoolService(workers=1, resilience=cfg) as svc:
                res = await svc.submit(_req(execute="jit", plan="autotuned"))
                assert res.degraded == (
                    "execute:jit->numeric", "plan:autotuned->default")
                assert svc.stats.degraded == 1
                # Degradation is answer-preserving.
                direct = execute_request(_req())
                np.testing.assert_array_equal(res.output, direct.output)
        run(body())

    def test_no_degradation_below_threshold(self):
        async def body():
            cfg = ResilienceConfig(degrade_at=0.9)
            async with PoolService(
                workers=1, queue_limit=64, resilience=cfg,
            ) as svc:
                res = await svc.submit(_req(execute="jit"))
                assert res.degraded == ()
                assert svc.stats.degraded == 0
        run(body())

    def test_structured_quota_rejection(self):
        async def body():
            async with PoolService(
                workers=1, max_inflight_per_worker=1,
                quotas={"t": TenantQuota(max_pending=1)},
            ) as svc:
                fut = asyncio.ensure_future(svc.submit(_req(
                    tenant="t", chaos_slow_ms=300.0)))
                await asyncio.sleep(0.1)
                with pytest.raises(QuotaExceededError) as ei:
                    await svc.submit(_req(seed=1, tenant="t"))
                assert ei.value.tenant == "t"
                assert ei.value.pending == 1
                assert ei.value.limit == 1
                assert ei.value.retry_after > 0
                await fut
        run(body())


# ---------------------------------------------------------------------------
# Defaults-off invariant and lifecycle.
# ---------------------------------------------------------------------------

class TestDefaultsOff:
    def test_no_watchdog_without_resilience_or_deadline(self):
        async def body():
            async with PoolService(workers=1) as svc:
                await svc.submit(_req())
                assert svc._watchdog is None
        run(body())

    def test_watchdog_starts_lazily_on_first_deadline(self):
        async def body():
            async with PoolService(workers=1) as svc:
                await svc.submit(_req())
                assert svc._watchdog is None
                await svc.submit(_req(seed=1, deadline_ms=30_000.0))
                assert svc._watchdog is not None
        run(body())

    def test_empty_config_behaves_like_none(self):
        async def body():
            async with PoolService(
                workers=1, resilience=ResilienceConfig(),
            ) as svc:
                res = await svc.submit(_req())
                assert not res.hedged and res.degraded == ()
                s = svc.stats
                assert (s.hedges, s.shed, s.degraded,
                        s.stalls_detected, s.breaker_opens) == (0,) * 5
                assert svc.breakers is None
        run(body())

    def test_configurable_poll_and_shutdown(self):
        async def body():
            svc = PoolService(
                workers=1, poll_interval=0.005, shutdown_timeout=2.0)
            assert svc.poll_interval == 0.005
            assert svc.shutdown_timeout == 2.0
            async with svc:
                res = await svc.submit(_req())
                assert res.output is not None
        run(body())

    def test_poll_interval_validation(self):
        with pytest.raises(ServeError):
            PoolService(poll_interval=0.0)
        with pytest.raises(ServeError):
            PoolService(shutdown_timeout=0.0)


class TestCloseNoDrain:
    def test_close_fails_queued_and_inflight_promptly(self):
        async def body():
            async with PoolService(
                workers=1, max_inflight_per_worker=1,
            ) as svc:
                futs = [
                    asyncio.ensure_future(svc.submit(_req(
                        seed=i, chaos_slow_ms=500.0 if i == 0 else 0.0)))
                    for i in range(4)
                ]
                await asyncio.sleep(0.1)  # one in flight, three queued
                t0 = asyncio.get_running_loop().time()
                await svc.close(drain=False)
                elapsed = asyncio.get_running_loop().time() - t0
                outcomes = await asyncio.gather(
                    *futs, return_exceptions=True)
                assert all(isinstance(o, ServeError) for o in outcomes)
                assert "closed before completion" in str(outcomes[0])
                # Prompt: bounded by shutdown joins, not by the slow
                # request's sleep-through-the-queue completion.
                assert elapsed < 10.0
                assert svc._requests == {}
        run(body())


class TestChurnWithBreaker:
    def test_fair_rotation_under_tenant_churn_with_open_breaker(self):
        async def body():
            cfg = ResilienceConfig(
                breaker_failure_threshold=0.5, breaker_min_volume=1,
                breaker_open_ms=60_000.0)
            async with PoolService(
                workers=2, max_inflight_per_worker=2, resilience=cfg,
            ) as svc:
                svc.breakers[0].trip()  # half the fleet held open
                # Churning tenants: interleaved arrivals, disjoint names.
                res = await asyncio.gather(*[
                    svc.submit(_req(seed=i, tenant=f"t{i % 5}"))
                    for i in range(20)
                ])
                assert all(r.output is not None for r in res)
                # Everything ran on the unbroken slot...
                assert {r.worker for r in res} == {1}
                # ...and every tenant was serviced.
                assert {r.tenant for r in res} == {f"t{i}" for i in range(5)}
        run(body())
