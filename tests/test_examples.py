"""Smoke tests for the runnable examples.

The three fastest examples run end-to-end as subprocesses (their
internal assertions validate results); the longer sweeps are
compile-checked and their entry points verified so a bit-rotted example
cannot slip through the suite.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST = [
    ("quickstart.py", []),
    ("training_step.py", []),
    ("inceptionv3_layers.py", ["--quick"]),
]

ALL = sorted(p.name for p in EXAMPLES.glob("*.py"))


def test_expected_examples_present():
    assert set(ALL) >= {
        "quickstart.py",
        "inceptionv3_layers.py",
        "training_step.py",
        "stride_sweep.py",
        "padded_cnns.py",
        "network_profile.py",
    }


@pytest.mark.parametrize("name", ALL)
def test_example_compiles(name, tmp_path):
    py_compile.compile(
        str(EXAMPLES / name), cfile=str(tmp_path / (name + "c")), doraise=True
    )


@pytest.mark.parametrize("name", ALL)
def test_example_has_main_guard(name):
    text = (EXAMPLES / name).read_text()
    assert '__name__ == "__main__"' in text, name
    assert text.startswith("#!/usr/bin/env python"), name
    assert '"""' in text.splitlines()[1], f"{name} lacks a docstring"


@pytest.mark.parametrize("name,args", FAST, ids=[n for n, _ in FAST])
def test_fast_examples_run(name, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), name
