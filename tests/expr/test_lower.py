"""End-to-end tests for the lowering: lowered programs must compute the
same values NumPy does, for every access-pattern class the paper's
kernels exercise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ASCEND910
from repro.dtypes import FLOAT16
from repro.errors import LoweringError
from repro.expr import (
    Axis,
    BinOp,
    Reduce,
    ScalarOp,
    TensorDecl,
    elementwise_stage,
    fill_stage,
    lower_stage,
    reduce_stage,
    scatter_accumulate_stage,
)
from repro.isa import Program
from repro.sim import AICore, GlobalMemory

C0 = 16


class Runner:
    """Allocate tensors in the UB, lower stages, execute, read back."""

    def __init__(self):
        self.core = AICore(ASCEND910)
        self.gm = GlobalMemory()
        self.binding = {}
        self.decls = {}

    def tensor(self, name, shape, data=None, strides=None):
        decl = TensorDecl(name, shape, FLOAT16, strides)
        ref = self.core.alloc("UB", decl.size_elems, name)
        if data is not None:
            flat = self.core.view("UB")[ref.offset:ref.end]
            if strides is None:
                flat[:] = data.reshape(-1)
            else:
                view = np.lib.stride_tricks.as_strided(
                    flat, shape, [s * 2 for s in strides], writeable=True
                )
                view[:] = data
        self.binding[name] = ref
        self.decls[name] = decl
        return decl

    def run(self, *stages, max_repeat=255):
        prog = Program("t")
        results = [
            lower_stage(s, self.binding, prog, FLOAT16, max_repeat=max_repeat)
            for s in stages
        ]
        self.core.run(prog, self.gm)
        self.prog = prog
        return results

    def read(self, name):
        ref = self.binding[name]
        decl = self.decls[name]
        flat = self.core.view("UB")[ref.offset:ref.end]
        if decl.strides is None:
            return flat.reshape(decl.shape).copy()
        return np.lib.stride_tricks.as_strided(
            flat, decl.shape, [s * 2 for s in decl.strides]
        ).copy()


class TestFill:
    def test_fill_exact_region(self, rng):
        r = Runner()
        o = r.tensor("o", (5, 7, C0))
        ax = (Axis("a", 5), Axis("b", 7), Axis("c", C0))
        r.run(fill_stage(o, ax, 3.5))
        assert np.all(r.read("o") == np.float16(3.5))

    def test_fill_non_multiple_of_128_has_tail(self, rng):
        r = Runner()
        o = r.tensor("o", (3, 3, C0))  # 144 = 128 + 16
        ax = (Axis("a", 3), Axis("b", 3), Axis("c", C0))
        r.run(fill_stage(o, ax, 1.0))
        assert np.all(r.read("o") == 1.0)


class TestElementwise:
    def test_binop_contiguous(self, rng):
        r = Runner()
        a = rng.standard_normal((4, 8, C0)).astype(np.float16)
        b = rng.standard_normal((4, 8, C0)).astype(np.float16)
        ta = r.tensor("a", a.shape, a)
        tb = r.tensor("b", b.shape, b)
        to = r.tensor("o", a.shape)
        ax = (Axis("i", 4), Axis("j", 8), Axis("c", C0))
        r.run(elementwise_stage(
            to, ax, BinOp("mul", ta[ax[0], ax[1], ax[2]],
                          tb[ax[0], ax[1], ax[2]])
        ))
        assert np.array_equal(r.read("o"), a * b)

    def test_scalarop(self, rng):
        r = Runner()
        a = rng.standard_normal((2, C0)).astype(np.float16)
        ta = r.tensor("a", a.shape, a)
        to = r.tensor("o", a.shape)
        ax = (Axis("i", 2), Axis("c", C0))
        r.run(elementwise_stage(
            to, ax, ScalarOp("muls", ta[ax[0], ax[1]], 0.25)
        ))
        assert np.array_equal(r.read("o"), a * np.float16(0.25))

    def test_copy(self, rng):
        r = Runner()
        a = rng.standard_normal((3, C0)).astype(np.float16)
        ta = r.tensor("a", a.shape, a)
        to = r.tensor("o", a.shape)
        ax = (Axis("i", 3), Axis("c", C0))
        r.run(elementwise_stage(to, ax, ta[ax[0], ax[1]]))
        assert np.array_equal(r.read("o"), a)

    def test_strided_gather(self, rng):
        # expansion pattern: o[k, i, c] = a[i*2 + k, c]
        r = Runner()
        a = rng.standard_normal((9, C0)).astype(np.float16)
        ta = r.tensor("a", a.shape, a)
        to = r.tensor("o", (3, 4, C0))
        ak, ai, ac = Axis("k", 3), Axis("i", 4), Axis("c", C0)
        r.run(elementwise_stage(
            to, (ak, ai, ac), ta[ai * 2 + ak, ac]
        ))
        want = np.stack([a[k + 2 * np.arange(4)] for k in range(3)])
        assert np.array_equal(r.read("o"), want)

    def test_broadcast_load_over_outer_axis(self, rng):
        r = Runner()
        a = rng.standard_normal((4, C0)).astype(np.float16)
        ta = r.tensor("a", a.shape, a)
        to = r.tensor("o", (3, 4, C0))
        ak, ai, ac = Axis("k", 3), Axis("i", 4), Axis("c", C0)
        r.run(elementwise_stage(to, (ak, ai, ac), ta[ai, ac]))
        want = np.broadcast_to(a, (3, 4, C0))
        assert np.array_equal(r.read("o"), want)

    def test_eq_compare(self, rng):
        r = Runner()
        a = rng.standard_normal((4, C0)).astype(np.float16)
        b = a.copy()
        b[1] += 1
        ta = r.tensor("a", a.shape, a)
        tb = r.tensor("b", b.shape, b)
        to = r.tensor("o", a.shape)
        ax = (Axis("i", 4), Axis("c", C0))
        r.run(elementwise_stage(
            to, ax, BinOp("eq", ta[ax[0], ax[1]], tb[ax[0], ax[1]])
        ))
        assert np.array_equal(r.read("o"), (a == b).astype(np.float16))


class TestReduce:
    def test_max_reduce_scattered(self, rng):
        # Listing 1 exactly, small case.
        r = Runner()
        a = rng.standard_normal((9, 9, C0)).astype(np.float16)
        ta = r.tensor("a", a.shape, a)
        to = r.tensor("o", (4, 4, C0))
        aoh, aow, ac = Axis("oh", 4), Axis("ow", 4), Axis("c", C0)
        rkh, rkw = Axis("kh", 3), Axis("kw", 3)
        r.run(reduce_stage(
            to, (aoh, aow, ac),
            Reduce("max", ta[aoh * 2 + rkh, aow * 2 + rkw, ac], (rkh, rkw)),
        ))
        want = np.stack([
            [a[i * 2:i * 2 + 3, j * 2:j * 2 + 3].max(axis=(0, 1))
             for j in range(4)] for i in range(4)
        ])
        assert np.array_equal(r.read("o"), want)

    def test_sum_reduce(self, rng):
        r = Runner()
        a = rng.integers(-3, 4, (3, 4, C0)).astype(np.float16)
        ta = r.tensor("a", a.shape, a)
        to = r.tensor("o", (4, C0))
        ai, ac = Axis("i", 4), Axis("c", C0)
        rk = Axis("k", 3)
        r.run(reduce_stage(
            to, (ai, ac), Reduce("sum", ta[rk, ai, ac], (rk,))
        ))
        assert np.array_equal(r.read("o"), a.sum(axis=0, dtype=np.float16))

    def test_wide_reduce_over_planes(self, rng):
        # Listing 2 exactly; 4*4*16 = 256 lanes = two whole repeats, so
        # one vmax per (kh, kw) plane.
        r = Runner()
        a = rng.standard_normal((2, 2, 4, 4, C0)).astype(np.float16)
        ta = r.tensor("a", a.shape, a)
        to = r.tensor("o", (4, 4, C0))
        aoh, aow, ac = Axis("oh", 4), Axis("ow", 4), Axis("c", C0)
        rkh, rkw = Axis("kh", 2), Axis("kw", 2)
        res = r.run(reduce_stage(
            to, (aoh, aow, ac),
            Reduce("max", ta[rkh, rkw, aoh, aow, ac], (rkh, rkw)),
        ))
        assert np.array_equal(r.read("o"), a.max(axis=(0, 1)))
        # the whole plane per issue: kh*kw compute instructions
        assert r.prog.issue_counts()["vmax"] == 4

    def test_wide_reduce_with_tail(self, rng):
        # 5*5*16 = 400 lanes = 3 repeats + a 16-lane tail: two vmax
        # instructions per plane.
        r = Runner()
        a = rng.standard_normal((2, 2, 5, 5, C0)).astype(np.float16)
        ta = r.tensor("a", a.shape, a)
        to = r.tensor("o", (5, 5, C0))
        aoh, aow, ac = Axis("oh", 5), Axis("ow", 5), Axis("c", C0)
        rkh, rkw = Axis("kh", 2), Axis("kw", 2)
        r.run(reduce_stage(
            to, (aoh, aow, ac),
            Reduce("max", ta[rkh, rkw, aoh, aow, ac], (rkh, rkw)),
        ))
        assert np.array_equal(r.read("o"), a.max(axis=(0, 1)))
        assert r.prog.issue_counts()["vmax"] == 8

    def test_reduce_initialises_with_identity(self, rng):
        # Output starts poisoned; the fill must overwrite it.
        r = Runner()
        a = (-np.abs(rng.standard_normal((2, C0)))).astype(np.float16)
        ta = r.tensor("a", a.shape, a)
        to = r.tensor("o", (C0,), np.full(C0, 999, np.float16))
        ac = Axis("c", C0)
        rk = Axis("k", 2)
        r.run(reduce_stage(to, (ac,), Reduce("max", ta[rk, ac], (rk,))))
        assert np.array_equal(r.read("o"), a.max(axis=0))

    def test_padded_plane_strides(self, rng):
        # Planes padded to whole fractals: valid prefix reduced, pad
        # rows ignored.
        r = Runner()
        oh = ow = 3  # 9 patches -> plane padded to 16 rows
        plane = 16 * C0
        data = rng.standard_normal((2, plane)).astype(np.float16)
        ta = r.tensor(
            "a", (2, oh, ow, C0), data.reshape(2, -1)[:, : oh * ow * C0]
            .reshape(2, oh, ow, C0),
            strides=(plane, ow * C0, C0, 1),
        )
        to = r.tensor("o", (oh, ow, C0))
        aoh, aow, ac = Axis("oh", oh), Axis("ow", ow), Axis("c", C0)
        rk = Axis("k", 2)
        r.run(reduce_stage(
            to, (aoh, aow, ac), Reduce("max", ta[rk, aoh, aow, ac], (rk,))
        ))
        want = r.read("a").max(axis=0)
        assert np.array_equal(r.read("o"), want)


class TestScatterAccumulate:
    def test_merge_semantics(self, rng):
        # the backward merge: out[i*2+k, c] += m[k, i, c]
        r = Runner()
        m = rng.integers(-3, 4, (3, 4, C0)).astype(np.float16)
        tm = r.tensor("m", m.shape, m)
        to = r.tensor("o", (9, C0), np.zeros((9, C0), np.float16))
        ak, ai, ac = Axis("k", 3), Axis("i", 4), Axis("c", C0)
        r.run(scatter_accumulate_stage(
            to, (ai * 2 + ak, ac), (ak, ai, ac), tm[ak, ai, ac]
        ))
        want = np.zeros((9, C0), np.float16)
        for k in range(3):
            for i in range(4):
                want[i * 2 + k] += m[k, i]
        assert np.array_equal(r.read("o"), want)

    def test_merge_issue_count(self, rng):
        r = Runner()
        m = rng.standard_normal((3, 4, C0)).astype(np.float16)
        tm = r.tensor("m", m.shape, m)
        to = r.tensor("o", (9, C0), np.zeros((9, C0), np.float16))
        ak, ai, ac = Axis("k", 3), Axis("i", 4), Axis("c", C0)
        r.run(scatter_accumulate_stage(
            to, (ai * 2 + ak, ac), (ak, ai, ac), tm[ak, ai, ac]
        ))
        # one unrepeated 16-lane vadd per (k, i) -- the paper's bad case
        assert r.prog.issue_counts()["vadd"] == 12


class TestRepeatChunking:
    def test_wide_stage_chunks_at_max_repeat(self, rng):
        r = Runner()
        n = 20 * 128  # 20 full repeats
        a = rng.standard_normal((n,)).astype(np.float16)
        ta = r.tensor("a", (n,), a)
        to = r.tensor("o", (n,))
        ax = (Axis("i", n),)
        res = r.run(
            elementwise_stage(to, ax, ta[ax[0]]), max_repeat=8
        )
        assert np.array_equal(r.read("o"), a)
        # ceil(20/8) = 3 instructions
        assert res[0].instructions == 3

    def test_narrow_fold_chunks_at_max_repeat(self, rng):
        # A strided source keeps the group at C0; the contiguous output
        # lets i fold into the repeat, chunked at max_repeat.
        r = Runner()
        a = rng.standard_normal((20, C0)).astype(np.float16)
        ta = r.tensor("a", a.shape, a)
        to = r.tensor("o", (10, C0))
        ai, ac = Axis("i", 10), Axis("c", C0)
        res = r.run(
            elementwise_stage(to, (ai, ac), ta[ai * 2, ac]), max_repeat=4
        )
        assert np.array_equal(r.read("o"), a[::2])
        assert res[0].instructions == 3  # ceil(10/4)

    def test_invalid_max_repeat(self, rng):
        r = Runner()
        a = rng.standard_normal((C0,)).astype(np.float16)
        ta = r.tensor("a", (C0,), a)
        to = r.tensor("o", (C0,))
        ac = Axis("c", C0)
        with pytest.raises(LoweringError):
            r.run(elementwise_stage(to, (ac,), ta[ac]), max_repeat=0)

    def test_unbound_tensor_rejected(self, rng):
        r = Runner()
        a = rng.standard_normal((C0,)).astype(np.float16)
        ta = r.tensor("a", (C0,), a)
        loose = TensorDecl("loose", (C0,))
        ac = Axis("c", C0)
        with pytest.raises(LoweringError):
            r.run(elementwise_stage(loose, (ac,), ta[ac]))


class TestLoweringProperty:
    @given(
        oh=st.integers(2, 5),
        ow=st.integers(2, 5),
        kh=st.integers(1, 3),
        kw=st.integers(1, 3),
        sh=st.integers(1, 3),
        sw=st.integers(1, 3),
        op=st.sampled_from(["max", "sum"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_pooling_reduction_any_geometry(self, oh, ow, kh, kw, sh, sw, op):
        """Lowered scattered reductions match NumPy for arbitrary
        pooling geometry (integer data keeps sums exact)."""
        ih = (oh - 1) * sh + kh
        iw = (ow - 1) * sw + kw
        rng = np.random.default_rng(oh * 3 + ow * 5 + kh * 7 + kw * 11 + sh)
        a = rng.integers(-4, 5, (ih, iw, C0)).astype(np.float16)
        r = Runner()
        ta = r.tensor("a", a.shape, a)
        to = r.tensor("o", (oh, ow, C0))
        aoh, aow, ac = Axis("oh", oh), Axis("ow", ow), Axis("c", C0)
        rkh, rkw = Axis("kh", kh), Axis("kw", kw)
        r.run(reduce_stage(
            to, (aoh, aow, ac),
            Reduce(op, ta[aoh * sh + rkh, aow * sw + rkw, ac], (rkh, rkw)),
        ))
        npop = np.max if op == "max" else np.sum
        want = np.stack([
            [npop(a[i * sh:i * sh + kh, j * sw:j * sw + kw], axis=(0, 1))
             for j in range(ow)] for i in range(oh)
        ]).astype(np.float16)
        assert np.array_equal(r.read("o"), want)
