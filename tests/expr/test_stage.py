"""Tests for stage construction and validation."""

import pytest

from repro.errors import LoweringError
from repro.expr import (
    Axis,
    BinOp,
    Fill,
    Reduce,
    ScalarOp,
    Stage,
    TensorDecl,
    elementwise_stage,
    fill_stage,
    reduce_stage,
    scatter_accumulate_stage,
)
from repro.expr.nodes import body_loads

C0 = 16


def basics():
    t = TensorDecl("t", (4, C0))
    o = TensorDecl("o", (4, C0))
    ax = (Axis("i", 4), Axis("c", C0))
    return t, o, ax


class TestNodes:
    def test_binop_requires_loads(self):
        t, o, ax = basics()
        with pytest.raises(LoweringError):
            BinOp("add", t[ax[0], ax[1]], 3)  # type: ignore[arg-type]

    def test_binop_unknown_op(self):
        t, _, ax = basics()
        with pytest.raises(LoweringError):
            BinOp("pow", t[ax[0], ax[1]], t[ax[0], ax[1]])

    def test_scalarop_unknown_op(self):
        t, _, ax = basics()
        with pytest.raises(LoweringError):
            ScalarOp("divs", t[ax[0], ax[1]], 2.0)

    def test_reduce_requires_axes(self):
        t, _, ax = basics()
        with pytest.raises(LoweringError):
            Reduce("max", t[ax[0], ax[1]], ())

    def test_reduce_axis_must_appear_in_body(self):
        t, _, ax = basics()
        r = Axis("r", 3)
        with pytest.raises(LoweringError):
            Reduce("max", t[ax[0], ax[1]], (r,))

    def test_reduce_unknown_op(self):
        t, _, ax = basics()
        r = Axis("r", 4)
        with pytest.raises(LoweringError):
            Reduce("mean", t[r, ax[1]], (r,))

    def test_body_loads(self):
        t, o, ax = basics()
        la, lb = t[ax[0], ax[1]], o[ax[0], ax[1]]
        assert body_loads(BinOp("add", la, lb)) == [la, lb]
        assert body_loads(ScalarOp("muls", la, 2.0)) == [la]
        assert body_loads(la) == [la]
        assert body_loads(Fill(1.0)) == []


class TestStageValidation:
    def test_output_rank_mismatch(self):
        t, o, ax = basics()
        with pytest.raises(LoweringError):
            Stage(out=o, out_idx=(ax[0],), axes=ax, body=t[ax[0], ax[1]])

    def test_non_loop_axis_in_output(self):
        t, o, ax = basics()
        stray = Axis("s", 4)
        with pytest.raises(LoweringError):
            Stage(out=o, out_idx=(stray, ax[1]), axes=ax,
                  body=t[ax[0], ax[1]])

    def test_non_loop_axis_in_load(self):
        t, o, ax = basics()
        stray = Axis("s", 4)
        with pytest.raises(LoweringError):
            Stage(out=o, out_idx=(ax[0], ax[1]), axes=ax,
                  body=t[stray, ax[1]])

    def test_reduction_axis_in_output_rejected(self):
        t, o, ax = basics()
        r = Axis("r", 4)
        body = Reduce("max", t[r, ax[1]], (r,))
        with pytest.raises(LoweringError):
            Stage(out=o, out_idx=(r, ax[1]), axes=(ax[1],), body=body)

    def test_out_of_bounds_output_index(self):
        t, o, ax = basics()
        with pytest.raises(LoweringError):
            Stage(out=o, out_idx=(ax[0] + 1, ax[1]), axes=ax,
                  body=t[ax[0], ax[1]])

    def test_out_of_bounds_load(self):
        t, o, ax = basics()
        with pytest.raises(LoweringError):
            Stage(out=o, out_idx=(ax[0], ax[1]), axes=ax,
                  body=t[ax[0] * 2, ax[1]])

    def test_out_idx_wraps_raw_axes_and_ints(self):
        t, _, ax = basics()
        big = TensorDecl("big", (3, 4, C0))
        st = Stage(out=big, out_idx=(2, ax[0], ax[1]), axes=ax,
                   body=t[ax[0], ax[1]])
        assert st.out_idx[0].const == 2


class TestHelpers:
    def test_reduce_stage_sets_accumulate(self):
        t, o, ax = basics()
        r = Axis("r", 4)
        st = reduce_stage(o, ax, Reduce("sum", t[r, ax[1]], (r,)))
        assert st.accumulate
        assert st.accumulate_op == "sum"
        assert st.raxes == (r,)

    def test_reduce_stage_rejects_elementwise(self):
        t, o, ax = basics()
        with pytest.raises(LoweringError):
            elementwise_stage(o, ax, Reduce("max", t[ax[0], ax[1]],
                                            (ax[0],)))

    def test_scatter_requires_load_body(self):
        t, o, ax = basics()
        with pytest.raises(LoweringError):
            scatter_accumulate_stage(
                o, (ax[0], ax[1]), ax,
                BinOp("add", t[ax[0], ax[1]], t[ax[0], ax[1]]),  # type: ignore[arg-type]
            )

    def test_fill_stage(self):
        _, o, ax = basics()
        st = fill_stage(o, ax, -7.0)
        assert isinstance(st.body, Fill)
        assert st.body.value == -7.0
        assert not st.accumulate
