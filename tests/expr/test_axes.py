"""Tests for loop axes and affine index arithmetic."""

import pytest

from repro.errors import LoweringError
from repro.expr import AffineExpr, Axis


class TestAxis:
    def test_positive_extent_required(self):
        with pytest.raises(LoweringError):
            Axis("bad", 0)

    def test_identity_equality(self):
        a = Axis("x", 4)
        b = Axis("x", 4)
        assert a != b  # distinct loops, like TVM reduce_axis objects
        assert a == a


class TestAffineArithmetic:
    def test_axis_times_int(self):
        a = Axis("h", 8)
        e = a * 3
        assert e.coeff(a) == 3
        assert e.const == 0

    def test_rmul(self):
        a = Axis("h", 8)
        assert (3 * a).coeff(a) == 3

    def test_axis_plus_axis(self):
        h, k = Axis("h", 8), Axis("k", 3)
        e = h * 2 + k
        assert e.coeff(h) == 2
        assert e.coeff(k) == 1

    def test_add_constant(self):
        a = Axis("h", 8)
        e = a + 5
        assert e.const == 5

    def test_sub(self):
        a = Axis("h", 8)
        e = (a * 4 + 10) - (a + 3)
        assert e.coeff(a) == 3
        assert e.const == 7

    def test_zero_coefficients_dropped(self):
        a = Axis("h", 8)
        e = a - a
        assert e.terms == ()
        assert e.coeff(a) == 0

    def test_scale_whole_expression(self):
        a = Axis("h", 8)
        e = (a + 2) * 3
        assert e.coeff(a) == 3
        assert e.const == 6

    def test_non_integer_scale_rejected(self):
        a = Axis("h", 8)
        with pytest.raises(LoweringError):
            a * 1.5  # type: ignore[operator]

    def test_wrap(self):
        a = Axis("h", 8)
        assert AffineExpr.wrap(a).coeff(a) == 1
        assert AffineExpr.wrap(7).const == 7
        assert AffineExpr.wrap(AffineExpr.constant(3)).const == 3
        with pytest.raises(LoweringError):
            AffineExpr.wrap("x")  # type: ignore[arg-type]


class TestEvaluation:
    def test_evaluate(self):
        h, k = Axis("h", 8), Axis("k", 3)
        e = h * 2 + k * 5 + 1
        assert e.evaluate({h: 3, k: 2}) == 17

    def test_evaluate_missing_axis_reads_zero(self):
        h = Axis("h", 8)
        assert (h * 2 + 1).evaluate({}) == 1

    def test_min_max_values(self):
        h, k = Axis("h", 4), Axis("k", 3)
        e = h * 2 + k + 1  # h in 0..3, k in 0..2
        assert e.min_value() == 1
        assert e.max_value() == 2 * 3 + 2 + 1

    def test_min_with_negative_coeff(self):
        h = Axis("h", 4)
        e = h * -2 + 10
        assert e.min_value() == 10 - 6
        assert e.max_value() == 10
