"""Tests for tensor declarations and loads."""

import pytest

from repro.errors import LoweringError
from repro.expr import Axis, TensorDecl
from repro.expr.tensor import contiguous_strides


class TestStrides:
    def test_contiguous_strides(self):
        assert contiguous_strides((3, 4, 5)) == (20, 5, 1)
        assert contiguous_strides((7,)) == (1,)

    def test_default_layout(self):
        t = TensorDecl("t", (2, 3, 4))
        assert t.layout_strides == (12, 4, 1)
        assert t.size_elems == 24

    def test_padded_layout_size(self):
        # An Im2col plane padded to whole fractals: kw stride exceeds
        # the dense plane.
        t = TensorDecl("planes", (2, 2, 3, 3, 16),
                       strides=(2 * 160, 160, 48, 16, 1))
        assert t.size_elems == 320 + 160 + 2 * 48 + 2 * 16 + 15 + 1

    def test_stride_rank_mismatch(self):
        with pytest.raises(LoweringError):
            TensorDecl("t", (2, 3), strides=(1,))

    def test_invalid_shape(self):
        with pytest.raises(LoweringError):
            TensorDecl("t", (2, 0))
        with pytest.raises(LoweringError):
            TensorDecl("t", ())


class TestLoad:
    def test_flat_affine_uses_strides(self):
        t = TensorDecl("t", (4, 8, 16))
        h, w, c = Axis("h", 4), Axis("w", 8), Axis("c", 16)
        flat = t[h, w * 2, c].flat_affine()
        assert flat.coeff(h) == 8 * 16
        assert flat.coeff(w) == 2 * 16
        assert flat.coeff(c) == 1

    def test_flat_affine_constant_offsets(self):
        t = TensorDecl("t", (3, 3, 4, 16))
        a = Axis("a", 4)
        flat = t[1, 2, a, 0].flat_affine()
        assert flat.const == 1 * (3 * 4 * 16) + 2 * (4 * 16)
        assert flat.coeff(a) == 16

    def test_rank_mismatch(self):
        t = TensorDecl("t", (4, 4))
        with pytest.raises(LoweringError):
            t[Axis("a", 4)]

    def test_bounds_check_passes(self):
        t = TensorDecl("t", (9, 16))
        oh, kh = Axis("oh", 4), Axis("kh", 3)
        t[oh * 2 + kh, 0].check_in_bounds()  # max 3*2+2 = 8 < 9

    def test_bounds_check_fails(self):
        t = TensorDecl("t", (8, 16))
        oh, kh = Axis("oh", 4), Axis("kh", 3)
        with pytest.raises(LoweringError):
            t[oh * 2 + kh, 0].check_in_bounds()  # max 8 >= 8

    def test_axes_collected_in_order(self):
        t = TensorDecl("t", (4, 4, 4))
        a, b = Axis("a", 4), Axis("b", 4)
        assert t[b, a, b].axes() == [b, a]

    def test_operator_sugar(self):
        from repro.expr import BinOp

        t = TensorDecl("t", (4,))
        a = Axis("a", 4)
        e = t[a] * t[a]
        assert isinstance(e, BinOp)
        assert e.op == "mul"
        assert (t[a] + t[a]).op == "add"
        assert (t[a] - t[a]).op == "sub"
