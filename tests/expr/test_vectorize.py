"""Tests for the vectorization analysis -- the mechanism behind every
performance claim in the paper.

Each test encodes one sentence of Section V as a check on the plan the
analysis produces for the corresponding access pattern.
"""

import pytest

from repro.dtypes import FLOAT16
from repro.expr import (
    Axis,
    BinOp,
    Reduce,
    TensorDecl,
    elementwise_stage,
    plan_stage,
    reduce_stage,
    scatter_accumulate_stage,
)
from repro.expr.vectorize import stage_max_repeat

C0 = 16


def pool_setup(ih=9, iw=9, kh=3, kw=3, sh=2, sw=2):
    oh = (ih - kh) // sh + 1
    ow = (iw - kw) // sw + 1
    inp = TensorDecl("in", (ih, iw, C0))
    out = TensorDecl("out", (oh, ow, C0))
    ax = {
        "oh": Axis("oh", oh), "ow": Axis("ow", ow), "c0": Axis("c0", C0),
        "kh": Axis("kh", kh), "kw": Axis("kw", kw),
    }
    return inp, out, ax, oh, ow


class TestStandardPooling:
    """Listing 1: the strided access pattern."""

    def make(self, sh=2, sw=2):
        inp, out, ax, oh, ow = pool_setup(sh=sh, sw=sw)
        body = Reduce("max", inp[ax["oh"] * sh + ax["kh"],
                                 ax["ow"] * sw + ax["kw"], ax["c0"]],
                      (ax["kh"], ax["kw"]))
        return reduce_stage(out, (ax["oh"], ax["ow"], ax["c0"]), body), ax, oh, ow

    def test_stride2_mask_limited_to_c0(self):
        # "only 16 of 128 elements of the vector mask are set".
        st, ax, _, _ = self.make()
        plan = plan_stage(st, FLOAT16)
        assert [a.name for a in plan.group_axes] == ["c0"]
        assert plan.lanes_total == 16
        assert not plan.wide

    def test_stride2_folds_kw_reduction(self):
        # "each vmax uses repetition to obtain the maximum value across
        # the width of a patch Kw".
        st, ax, _, _ = self.make()
        plan = plan_stage(st, FLOAT16)
        assert plan.fold_axis is ax["kw"]

    def test_stride2_issue_count_is_oh_ow_kh(self):
        # "The vmax instruction is issued Oh*Ow*Kh times".
        st, ax, oh, ow = self.make()
        plan = plan_stage(st, FLOAT16)
        assert plan.instructions_per_tile(255, 128) == oh * ow * 3

    def test_stride1_group_widens_to_ow_c0(self):
        # Figure 8a: "elements in consecutive patches ... appear
        # consecutively in memory. This allows the vmax instruction to
        # improve its use of the Vector Unit, combining the mask
        # register set with all 128 elements".
        inp, out, ax, oh, ow = pool_setup(ih=19, iw=19, sh=1, sw=1)
        body = Reduce("max", inp[ax["oh"] * 1 + ax["kh"],
                                 ax["ow"] * 1 + ax["kw"], ax["c0"]],
                      (ax["kh"], ax["kw"]))
        st = reduce_stage(out, (ax["oh"], ax["ow"], ax["c0"]), body)
        plan = plan_stage(st, FLOAT16)
        assert [a.name for a in plan.group_axes] == ["ow", "c0"]
        assert plan.lanes_total == ow * 16 > 128
        assert plan.wide

    def test_stride1_lane_count(self):
        st, ax, oh, ow = self.make(sh=1, sw=1)
        plan = plan_stage(st, FLOAT16)
        assert plan.lanes_total == ow * C0


class TestIm2colPooling:
    """Listing 2: the transformed layout saturates the mask."""

    def make(self):
        inp, out, ax, oh, ow = pool_setup()
        planes = TensorDecl("planes", (3, 3, oh, ow, C0))
        body = Reduce("max", planes[ax["kh"], ax["kw"], ax["oh"],
                                    ax["ow"], ax["c0"]],
                      (ax["kh"], ax["kw"]))
        return reduce_stage(out, (ax["oh"], ax["ow"], ax["c0"]), body), ax, oh, ow

    def test_group_covers_whole_plane(self):
        st, ax, oh, ow = self.make()
        plan = plan_stage(st, FLOAT16)
        assert [a.name for a in plan.group_axes] == ["oh", "ow", "c0"]
        assert plan.lanes_total == oh * ow * C0
        assert plan.wide

    def test_issue_count_is_kh_kw(self):
        # "This instruction is only issued Kh*Kw times".
        st, ax, oh, ow = self.make()
        plan = plan_stage(st, FLOAT16)
        assert plan.instructions_per_tile(255, 128) == 3 * 3

    def test_padded_plane_strides_still_group(self):
        # The Im2Col deposit pads planes to whole fractals; contiguity
        # within a plane is what matters.
        inp, out, ax, oh, ow = pool_setup(ih=11, iw=11)
        plane = (-(-oh * ow // 16)) * 16 * C0
        planes = TensorDecl(
            "planes", (3, 3, oh, ow, C0),
            strides=(3 * plane, plane, ow * C0, C0, 1),
        )
        body = Reduce("max", planes[ax["kh"], ax["kw"], ax["oh"],
                                    ax["ow"], ax["c0"]],
                      (ax["kh"], ax["kw"]))
        st = reduce_stage(out, (ax["oh"], ax["ow"], ax["c0"]), body)
        plan = plan_stage(st, FLOAT16)
        assert plan.lanes_total == oh * ow * C0


class TestBackwardMerge:
    """Section V-B: the scatter defeats both the mask and the repeat."""

    def make(self, sh=2, sw=2):
        oh = ow = 4
        span_h = (oh - 1) * sh + 3
        span_w = (ow - 1) * sw + 3
        mg = TensorDecl("mg", (3, 3, oh, ow, C0))
        img = TensorDecl("img", (span_h, span_w, C0))
        ax = {
            "kh": Axis("kh", 3), "kw": Axis("kw", 3),
            "oh": Axis("oh", oh), "ow": Axis("ow", ow), "c0": Axis("c0", C0),
        }
        st = scatter_accumulate_stage(
            img,
            (ax["oh"] * sh + ax["kh"], ax["ow"] * sw + ax["kw"], ax["c0"]),
            (ax["kh"], ax["kw"], ax["oh"], ax["ow"], ax["c0"]),
            mg[ax["kh"], ax["kw"], ax["oh"], ax["ow"], ax["c0"]],
        )
        return st, ax

    def test_mask_limited_to_c0(self):
        # "the vadd instructions only set 16 elements of the vector
        # mask (vectorizing on C0)".
        st, _ = self.make()
        plan = plan_stage(st, FLOAT16)
        assert plan.lanes_total == 16

    def test_no_repeat_fold(self):
        # "... and repetition is not used" -- the strided destination
        # cannot advance contiguously.
        st, _ = self.make()
        plan = plan_stage(st, FLOAT16)
        assert plan.fold_axis is None

    def test_issue_count_is_kh_kw_oh_ow(self):
        st, _ = self.make()
        plan = plan_stage(st, FLOAT16)
        assert plan.instructions_per_tile(255, 128) == 3 * 3 * 4 * 4

    def test_stride1_destination_contiguous_widens_group(self):
        # With sw == 1 the destination is contiguous along ow, so the
        # (ow, c0) pair joins the lane group -- the scatter degenerates
        # into wider vector bodies, the stride-(1,1) exception.
        st, ax = self.make(sh=1, sw=1)
        plan = plan_stage(st, FLOAT16)
        assert [a.name for a in plan.group_axes] == ["ow", "c0"]
        assert plan.lanes_total == 4 * C0


class TestMultiplyStep:
    """Listing 3: 'vmul works well' -- contiguous in all operands."""

    def test_wide_group_with_broadcast_gradient(self):
        oh = ow = 4
        mask = TensorDecl("mask", (3, 3, oh, ow, C0))
        grad = TensorDecl("grad", (oh, ow, C0))
        ax = [Axis("kh", 3), Axis("kw", 3), Axis("oh", oh),
              Axis("ow", ow), Axis("c0", C0)]
        st = elementwise_stage(
            mask, tuple(ax),
            BinOp("mul", mask[ax[0], ax[1], ax[2], ax[3], ax[4]],
                  grad[ax[2], ax[3], ax[4]]),
        )
        plan = plan_stage(st, FLOAT16)
        # The gradient broadcast over (kh, kw) still permits the
        # (oh, ow, c0) group: those axes are all present in both.
        assert plan.lanes_total == oh * ow * C0
        assert [a.name for a in plan.outer_axes] == ["kh", "kw"]


class TestCompareConstraint:
    def test_eq_stage_cannot_repeat(self):
        a = TensorDecl("a", (4, C0))
        b = TensorDecl("b", (4, C0))
        out = TensorDecl("o", (4, C0))
        ax = [Axis("i", 4), Axis("c", C0)]
        st = elementwise_stage(
            out, tuple(ax), BinOp("eq", a[ax[0], ax[1]], b[ax[0], ax[1]])
        )
        assert stage_max_repeat(st) == 1
        plan = plan_stage(st, FLOAT16)
        assert plan.fold_axis is None

    def test_non_eq_stage_unrestricted(self):
        a = TensorDecl("a", (4, C0))
        out = TensorDecl("o", (4, C0))
        ax = [Axis("i", 4), Axis("c", C0)]
        st = elementwise_stage(
            out, tuple(ax), BinOp("add", a[ax[0], ax[1]], a[ax[0], ax[1]])
        )
        assert stage_max_repeat(st) is None
