"""Tests for schedule knobs: the algorithm/schedule decoupling of
Section IV-A, and what each automatic optimisation buys."""

import numpy as np
import pytest

from repro.config import ASCEND910
from repro.dtypes import FLOAT16
from repro.errors import ScheduleError
from repro.expr import (
    Axis,
    DEFAULT_SCHEDULE,
    NAIVE_SCHEDULE,
    Reduce,
    Schedule,
    TensorDecl,
    lower_stage,
    plan_stage,
    reduce_stage,
)
from repro.isa import Program
from repro.sim import AICore, GlobalMemory

C0 = 16


def maxpool_stage(ih=9, sh=2):
    oh = (ih - 3) // sh + 1
    inp = TensorDecl("in", (ih, ih, C0))
    out = TensorDecl("out", (oh, oh, C0))
    aoh, aow, ac = Axis("oh", oh), Axis("ow", oh), Axis("c0", C0)
    rkh, rkw = Axis("kh", 3), Axis("kw", 3)
    body = Reduce("max", inp[aoh * sh + rkh, aow * sh + rkw, ac], (rkh, rkw))
    return reduce_stage(out, (aoh, aow, ac), body), inp, out, oh


def run_with(schedule, rng):
    stage, inp, out, oh = maxpool_stage()
    core = AICore(ASCEND910)
    gm = GlobalMemory()
    in_ref = core.alloc("UB", 9 * 9 * C0)
    out_ref = core.alloc("UB", oh * oh * C0)
    x = rng.standard_normal((9, 9, C0)).astype(np.float16)
    core.view("UB")[in_ref.offset:in_ref.end] = x.reshape(-1)
    prog = Program("s")
    res = lower_stage(stage, {"in": in_ref, "out": out_ref}, prog,
                      FLOAT16, schedule=schedule)
    r = core.run(prog, gm)
    got = core.view("UB")[out_ref.offset:out_ref.end].reshape(oh, oh, C0)
    want = np.stack([
        [x[i * 2:i * 2 + 3, j * 2:j * 2 + 3].max(axis=(0, 1))
         for j in range(oh)] for i in range(oh)
    ])
    return res, r, got, want


class TestScheduleValidation:
    def test_max_repeat_bounds(self):
        with pytest.raises(ScheduleError):
            Schedule(max_repeat=0)
        with pytest.raises(ScheduleError):
            Schedule(max_repeat=256)

    def test_defaults(self):
        assert DEFAULT_SCHEDULE.allow_repeat_fold
        assert not DEFAULT_SCHEDULE.vectorize_c0_only
        assert not NAIVE_SCHEDULE.allow_repeat_fold
        assert NAIVE_SCHEDULE.vectorize_c0_only


class TestScheduleEffects:
    def test_all_schedules_compute_the_same_values(self, rng):
        for sched in (DEFAULT_SCHEDULE, NAIVE_SCHEDULE,
                      Schedule(allow_repeat_fold=False),
                      Schedule(max_repeat=2)):
            _, _, got, want = run_with(sched, np.random.default_rng(0))
            assert np.array_equal(got, want), sched

    def test_disabling_repeat_multiplies_issues_by_kw(self, rng):
        # "each vmax uses repetition to obtain the maximum value across
        # the width of a patch Kw" -- without it, one issue per element.
        res_auto, _, _, _ = run_with(DEFAULT_SCHEDULE, rng)
        res_nofold, _, _, _ = run_with(Schedule(allow_repeat_fold=False),
                                       np.random.default_rng(0))
        # reduction issues only (exclude the init fill): auto folds kw.
        assert res_nofold.plan.fold_axis is None
        assert res_auto.plan.fold_axis is not None
        assert res_nofold.instructions > 2.0 * res_auto.instructions

    def test_repeat_saves_cycles(self, rng):
        _, run_auto, _, _ = run_with(DEFAULT_SCHEDULE, rng)
        _, run_nofold, _, _ = run_with(Schedule(allow_repeat_fold=False),
                                       np.random.default_rng(0))
        assert run_nofold.cycles > 1.5 * run_auto.cycles

    def test_c0_only_limits_wide_groups(self):
        # On the Im2col layout the auto schedule fuses the whole plane;
        # the minimal schedule stops at C0.
        oh = ow = 4
        planes = TensorDecl("planes", (3, 3, oh, ow, C0))
        out = TensorDecl("out", (oh, ow, C0))
        aoh, aow, ac = Axis("oh", oh), Axis("ow", ow), Axis("c0", C0)
        rkh, rkw = Axis("kh", 3), Axis("kw", 3)
        st = reduce_stage(
            out, (aoh, aow, ac),
            Reduce("max", planes[rkh, rkw, aoh, aow, ac], (rkh, rkw)),
        )
        wide = plan_stage(st, FLOAT16)
        narrow = plan_stage(st, FLOAT16, c0_only=True)
        assert wide.lanes_total == oh * ow * C0
        assert narrow.lanes_total == C0

    def test_max_repeat_chunks(self, rng):
        res_full, _, _, _ = run_with(DEFAULT_SCHEDULE, rng)
        res_capped, _, _, _ = run_with(Schedule(max_repeat=1),
                                       np.random.default_rng(0))
        assert res_capped.instructions > res_full.instructions
