"""Tests for the measurement harness."""

import pytest

from repro.bench import Measurement, measure


class TestMeasurement:
    def test_mean(self):
        m = Measurement("x", (10, 10, 10))
        assert m.mean == 10
        assert m.cycles == 10

    def test_single_sample_zero_ci(self):
        assert Measurement("x", (42,)).ci95 == 0.0

    def test_identical_samples_zero_ci(self):
        assert Measurement("x", (5, 5, 5, 5)).ci95 == 0.0

    def test_ci_width_for_known_data(self):
        # samples 9, 11: mean 10, s = sqrt(2), n = 2, t = 12.706
        m = Measurement("x", (9, 11))
        assert m.ci95 == pytest.approx(12.706 * (2 ** 0.5) / (2 ** 0.5), rel=1e-6)


class TestMeasure:
    def test_runs_requested_repeats(self):
        calls = []

        def fn():
            calls.append(1)
            return 7

        m = measure(fn, "x", repeats=10)
        assert len(calls) == 10
        assert m.samples == (7,) * 10
        assert m.ci95 == 0.0  # deterministic simulator protocol

    def test_nondeterminism_detected(self):
        it = iter([1, 2])
        with pytest.raises(AssertionError):
            measure(lambda: next(it), "x", repeats=2)

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            measure(lambda: 1, "x", repeats=0)
