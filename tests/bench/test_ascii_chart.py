"""Tests for the ASCII figure renderer."""

import pytest

from repro.bench import FigureSeries, Measurement, render_ascii_chart


def make_fig():
    fig = FigureSeries("7a", "Maxpool", "size")
    fig.x = ["(35)", "(71)"]
    fig.add("Maxpool", Measurement("a", (8000,)))
    fig.add("Maxpool", Measurement("b", (20000,)))
    fig.add("Maxpool with Im2col", Measurement("c", (2500,)))
    fig.add("Maxpool with Im2col", Measurement("d", (6000,)))
    return fig


class TestAsciiChart:
    def test_contains_legend_and_values(self):
        text = render_ascii_chart(make_fig())
        assert "# Maxpool" in text
        assert "* Maxpool with Im2col" in text
        assert "20000" in text and "2500" in text

    def test_peak_bar_has_full_width(self):
        text = render_ascii_chart(make_fig(), width=40)
        assert "#" * 40 in text

    def test_bars_scale_linearly(self):
        text = render_ascii_chart(make_fig(), width=40)
        # 8000/20000 of 40 = 16
        lines = [l for l in text.splitlines() if "8000" in l]
        assert lines and lines[0].count("#") == 16

    def test_minimum_one_glyph(self):
        fig = FigureSeries("x", "t", "size")
        fig.x = ["a"]
        fig.add("big", Measurement("b", (100000,)))
        fig.add("tiny", Measurement("t", (1,)))
        text = render_ascii_chart(fig, width=30)
        assert "* 1" in text  # the tiny bar still draws one glyph

    def test_rejects_empty(self):
        fig = FigureSeries("x", "t", "size")
        fig.x = ["a"]
        fig.add("zero", Measurement("z", (0,)))
        with pytest.raises(ValueError):
            render_ascii_chart(fig)


class TestCliAsciiFlag:
    def test_cli_ascii(self, capsys, monkeypatch):
        import repro.bench.__main__ as cli
        from repro.bench import fig8
        from repro.bench.__main__ import main

        monkeypatch.setitem(
            cli.FIGS, "fig8c", lambda repeats, model="serial", plan="default": fig8(
                3, sizes=[6], model=model
            )
        )
        assert main(["fig8c", "--ascii"]) == 0
        out = capsys.readouterr().out
        assert "full width" in out
        assert "# Maxpool" in out
