"""Tests for the figure/table builders (small configurations)."""

import pytest

from repro.bench import (
    FigureSeries,
    Measurement,
    fig8,
    fig8_sizes,
    render_figure,
    render_table1,
    table1_rows,
)
from repro.bench.report import PAPER_HEADLINES, render_speedups
from repro.errors import ReproError


class TestFigureSeries:
    def make(self):
        fig = FigureSeries("7a", "Maxpool", "size")
        fig.x = ["a", "b"]
        fig.add("slow", Measurement("s/a", (100,)))
        fig.add("slow", Measurement("s/b", (200,)))
        fig.add("fast", Measurement("f/a", (25,)))
        fig.add("fast", Measurement("f/b", (40,)))
        return fig

    def test_cycles(self):
        assert self.make().cycles("slow") == [100, 200]

    def test_speedup(self):
        assert self.make().speedup("slow", "fast") == [4.0, 5.0]

    def test_render_contains_values(self):
        text = render_figure(self.make())
        assert "Figure 7a" in text
        assert "100" in text and "40" in text
        assert "4.00x" in text


class TestFig8Builders:
    def test_sizes_step_two(self):
        sizes = fig8_sizes(2)
        assert all(b - a == 2 for a, b in zip(sizes, sizes[1:]))

    def test_threshold_decreases_with_overlap(self):
        # stride 1 duplicates 9x the data; its threshold must be the
        # smallest of the three panels.
        assert fig8_sizes(1)[-1] < fig8_sizes(2)[-1] < fig8_sizes(3)[-1]

    def test_invalid_stride(self):
        with pytest.raises(ReproError):
            fig8(4)

    def test_fig8b_has_xysplit(self):
        fig = fig8(2, sizes=[9])
        assert "Maxpool with X-Y split" in fig.series
        assert len(fig.series) == 4

    def test_fig8a_three_impls(self):
        fig = fig8(1, sizes=[7])
        assert len(fig.series) == 3

    def test_series_lengths_match_x(self):
        fig = fig8(3, sizes=[6, 9])
        assert len(fig.x) == 2
        for impl, ms in fig.series.items():
            assert len(ms) == 2, impl


class TestTable1:
    def test_rows_cover_all_cnns(self):
        rows = dict(table1_rows())
        assert set(rows) == {"InceptionV3", "Xception", "Resnet50", "VGG16"}

    def test_resnet_padded_with_dashes(self):
        rows = dict(table1_rows())
        assert rows["Resnet50"][1:] == ["-", "-", "-"]

    def test_render(self):
        text = render_table1()
        assert "147,147,64" in text
        assert "224,224,64" in text
        assert "TABLE I" in text


class TestReport:
    def test_paper_headlines(self):
        assert PAPER_HEADLINES == {
            "maxpool": 3.2,
            "maxpool+mask": 5.0,
            "maxpool backward": 5.8,
        }

    def test_render_speedups(self):
        text = render_speedups({
            "maxpool": 3.4, "maxpool+mask": 4.7, "maxpool backward": 5.9,
        })
        assert "3.40x" in text and "paper 5.8x" in text
