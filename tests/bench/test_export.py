"""Tests for figure export and cycle breakdowns."""

import json

import numpy as np
import pytest

from repro.bench import FigureSeries, Measurement
from repro.bench.breakdown import breakdown, compare_breakdowns, render_breakdown
from repro.bench.export import (
    figure_to_csv,
    figure_to_json,
    figure_to_rows,
    write_figure,
)
from repro.config import ASCEND910_SINGLE_CORE
from repro.ops import PoolSpec, maxpool
from repro.workloads import make_input


def make_fig():
    fig = FigureSeries("7a", "Maxpool", "size")
    fig.x = ["(8,8)", "(16,16)"]
    fig.add("Maxpool", Measurement("a", (100,)))
    fig.add("Maxpool", Measurement("b", (400,)))
    fig.add("Maxpool with Im2col", Measurement("c", (50,)))
    fig.add("Maxpool with Im2col", Measurement("d", (110,)))
    return fig


class TestExport:
    def test_rows(self):
        rows = figure_to_rows(make_fig())
        assert len(rows) == 2
        assert rows[0]["Maxpool [cycles]"] == 100
        assert rows[1]["Maxpool with Im2col [cycles]"] == 110
        assert rows[0]["Maxpool [ci95]"] == 0.0

    def test_csv(self):
        text = figure_to_csv(make_fig())
        lines = text.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("size,")
        assert "100" in lines[1]

    def test_json_round_trip(self):
        doc = json.loads(figure_to_json(make_fig()))
        assert doc["figure"] == "7a"
        assert doc["series"]["Maxpool"]["cycles"] == [100, 400]

    def test_write_figure(self, tmp_path):
        paths = write_figure(make_fig(), tmp_path)
        assert sorted(p.name for p in paths) == ["fig7a.csv", "fig7a.json"]
        assert all(p.exists() and p.stat().st_size > 0 for p in paths)


class TestBreakdown:
    @pytest.fixture(scope="class")
    def runs(self):
        x = make_input(13, 13, 16, seed=0)
        spec = PoolSpec.square(3, 2)
        std = maxpool(x, spec, impl="standard", config=ASCEND910_SINGLE_CORE)
        i2c = maxpool(x, spec, impl="im2col", config=ASCEND910_SINGLE_CORE)
        return std, i2c

    def test_totals_match_trace(self, runs):
        std, _ = runs
        b = breakdown(std.chip)
        want = sum(
            r.cycles for t in std.chip.per_tile for r in t.trace.records
        )
        assert b.total == want

    def test_standard_dominated_by_vector(self, runs):
        std, _ = runs
        b = breakdown(std.chip)
        assert b.fraction("vector") > 0.7
        assert b.issues["vmax"] > 100

    def test_im2col_split_between_scu_and_vector(self, runs):
        _, i2c = runs
        b = breakdown(i2c.chip)
        assert b.by_unit.get("scu", 0) > 0
        assert b.issues["im2col"] == 9
        assert b.fraction("vector") < 0.7

    def test_render(self, runs):
        std, i2c = runs
        text = compare_breakdowns([
            ("standard", std.chip), ("im2col", i2c.chip)
        ])
        assert "unit vector" in text
        assert "im2col" in text
        assert "utilization" in text

    def test_render_single(self, runs):
        std, _ = runs
        text = render_breakdown("x", breakdown(std.chip))
        assert "vmax" in text
