"""Tests for the python -m repro.bench command line."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "147,147,64" in out

    def test_fig8_panel_with_export(self, capsys, tmp_path, monkeypatch):
        # shrink the sweep for test speed
        import repro.bench.__main__ as cli
        from repro.bench import fig8

        monkeypatch.setitem(
            cli.FIGS, "fig8c", lambda repeats, model="serial": fig8(3, sizes=[6, 12], model=model)
        )
        assert main(["fig8c", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 8c" in out
        assert (tmp_path / "fig8c.csv").exists()
        assert (tmp_path / "fig8c.json").exists()

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_repeats_flag(self, capsys, monkeypatch):
        import repro.bench.__main__ as cli
        from repro.bench import fig8

        seen = {}

        def fake(repeats, model="serial"):
            seen["repeats"] = repeats
            seen["model"] = model
            return fig8(3, sizes=[6], repeats=repeats, model=model)

        monkeypatch.setitem(cli.FIGS, "fig8c", fake)
        assert main(["fig8c", "--repeats", "3"]) == 0
        assert seen["repeats"] == 3


class TestArgValidation:
    """Degenerate --repeats / --out values must be rejected up front
    with a nonzero exit instead of producing empty or broken output."""

    def test_zero_repeats_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--repeats", "0"])
        assert exc.value.code == 2

    def test_negative_repeats_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--repeats", "-4"])
        assert exc.value.code == 2

    def test_blank_out_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--out", "   "])
        assert exc.value.code == 2

    def test_out_colliding_with_file_rejected(self, tmp_path):
        path = tmp_path / "notadir"
        path.write_text("occupied")
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--out", str(path)])
        assert exc.value.code == 2

    def test_out_directory_created(self, capsys, tmp_path, monkeypatch):
        import repro.bench.__main__ as cli
        from repro.bench import fig8

        monkeypatch.setitem(
            cli.FIGS, "fig8c", lambda repeats, model="serial": fig8(3, sizes=[6], model=model)
        )
        target = tmp_path / "deep" / "nested"
        assert main(["fig8c", "--out", str(target)]) == 0
        assert (target / "fig8c.json").exists()
