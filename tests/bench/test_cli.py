"""Tests for the python -m repro.bench command line."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "147,147,64" in out

    def test_fig8_panel_with_export(self, capsys, tmp_path, monkeypatch):
        # shrink the sweep for test speed
        import repro.bench.__main__ as cli
        from repro.bench import fig8

        monkeypatch.setitem(
            cli.FIGS, "fig8c", lambda repeats, model="serial", plan="default": fig8(
                3, sizes=[6, 12], model=model, plan=plan
            )
        )
        assert main(["fig8c", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 8c" in out
        assert (tmp_path / "fig8c.csv").exists()
        assert (tmp_path / "fig8c.json").exists()

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_repeats_flag(self, capsys, monkeypatch):
        import repro.bench.__main__ as cli
        from repro.bench import fig8

        seen = {}

        def fake(repeats, model="serial", plan="default"):
            seen["repeats"] = repeats
            seen["model"] = model
            return fig8(3, sizes=[6], repeats=repeats, model=model)

        monkeypatch.setitem(cli.FIGS, "fig8c", fake)
        assert main(["fig8c", "--repeats", "3"]) == 0
        assert seen["repeats"] == 3


class TestArgValidation:
    """Degenerate --repeats / --out values must be rejected up front
    with a nonzero exit instead of producing empty or broken output."""

    def test_zero_repeats_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--repeats", "0"])
        assert exc.value.code == 2

    def test_negative_repeats_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--repeats", "-4"])
        assert exc.value.code == 2

    def test_blank_out_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--out", "   "])
        assert exc.value.code == 2

    def test_out_colliding_with_file_rejected(self, tmp_path):
        path = tmp_path / "notadir"
        path.write_text("occupied")
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--out", str(path)])
        assert exc.value.code == 2

    def test_out_directory_created(self, capsys, tmp_path, monkeypatch):
        import repro.bench.__main__ as cli
        from repro.bench import fig8

        monkeypatch.setitem(
            cli.FIGS, "fig8c", lambda repeats, model="serial", plan="default": fig8(
                3, sizes=[6], model=model, plan=plan
            )
        )
        target = tmp_path / "deep" / "nested"
        assert main(["fig8c", "--out", str(target)]) == 0
        assert (target / "fig8c.json").exists()


class TestPlanFlag:
    """--plan threads the planning policy through to the figure sweeps."""

    def test_plan_passed_to_figures(self, capsys, monkeypatch):
        import repro.bench.__main__ as cli
        from repro.bench import fig8

        seen = {}

        def fake(repeats, model="serial", plan="default"):
            seen["plan"] = plan
            return fig8(3, sizes=[6], model=model)

        monkeypatch.setitem(cli.FIGS, "fig8c", fake)
        assert main(["fig8c", "--plan", "autotuned"]) == 0
        assert seen["plan"] == "autotuned"

    def test_model_both_runs_each_figure_twice(self, capsys, monkeypatch):
        import repro.bench.__main__ as cli
        from repro.bench import fig8

        seen = []

        def fake(repeats, model="serial", plan="default"):
            seen.append(model)
            return fig8(3, sizes=[6], model=model)

        monkeypatch.setitem(cli.FIGS, "fig8c", fake)
        assert main(["fig8c", "--model", "both"]) == 0
        assert seen == ["serial", "pipelined"]
        out = capsys.readouterr().out
        assert "fig8c[serial]" in out
        assert "fig8c[pipelined]" in out


class TestAutotuneCli:
    """--autotune mode: search, persist, export -- and the flag
    combinations it must refuse up front with exit code 2."""

    def test_autotune_subset_writes_table_and_export(
        self, capsys, tmp_path
    ):
        table = tmp_path / "table.json"
        out = tmp_path / "out"
        assert main([
            "--autotune", "--subset", "1",
            "--table", str(table), "--out", str(out),
        ]) == 0
        assert table.exists()
        assert (out / "BENCH_autotune.json").exists()
        stdout = capsys.readouterr().out
        assert "autotuning 2 workloads" in stdout
        assert "cycles won vs heuristic planner" in stdout

    def test_autotune_rejects_targets(self):
        with pytest.raises(SystemExit) as exc:
            main(["fig7a", "--autotune"])
        assert exc.value.code == 2

    def test_autotune_rejects_model_both(self):
        with pytest.raises(SystemExit) as exc:
            main(["--autotune", "--model", "both"])
        assert exc.value.code == 2

    def test_autotune_rejects_plan_autotuned(self):
        with pytest.raises(SystemExit) as exc:
            main(["--autotune", "--plan", "autotuned"])
        assert exc.value.code == 2

    def test_autotune_rejects_nonpositive_subset(self):
        with pytest.raises(SystemExit) as exc:
            main(["--autotune", "--subset", "0"])
        assert exc.value.code == 2

    def test_subset_requires_autotune(self):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--subset", "2"])
        assert exc.value.code == 2

    def test_table_requires_autotune(self):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--table", "t.json"])
        assert exc.value.code == 2

    def test_no_targets_without_autotune_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2
