"""Tests for the layer-level nn API."""

import numpy as np
import pytest

from repro.config import ASCEND910_SINGLE_CORE
from repro.errors import LayoutError, ReproError
from repro.nn import AvgPool2d, Conv2d, MaxPool2d, Sequential
from repro.ops import PoolSpec
from repro.ops.reference import (
    avgpool_backward_ref,
    avgpool_forward_ref,
    maxpool_argmax_ref,
    maxpool_backward_ref,
    maxpool_forward_ref,
)
from repro.workloads import make_input

CFG = ASCEND910_SINGLE_CORE


class TestMaxPool2d:
    def test_forward_matches_reference(self):
        x = make_input(13, 13, 16, seed=0)
        spec = PoolSpec.square(3, 2)
        layer = MaxPool2d(spec, config=CFG)
        y = layer.forward(x)
        assert np.array_equal(y, maxpool_forward_ref(x, spec))
        assert layer.forward_cycles > 0

    def test_backward_through_saved_mask(self):
        x = make_input(13, 13, 16, seed=1)
        spec = PoolSpec.square(3, 2)
        layer = MaxPool2d(spec, config=CFG)
        y = layer.forward(x)
        grad = np.ones_like(y)
        dx = layer.backward(grad)
        mask = maxpool_argmax_ref(x, spec)
        ref = maxpool_backward_ref(mask, grad, spec, 13, 13)
        assert np.array_equal(dx, ref)
        assert layer.backward_cycles > 0

    def test_backward_before_forward(self):
        layer = MaxPool2d(PoolSpec.square(2, 2), config=CFG)
        with pytest.raises(ReproError):
            layer.backward(np.zeros((1, 1, 2, 2, 16), np.float16))

    def test_impl_choice_changes_cycles_not_values(self):
        x = make_input(13, 13, 16, seed=2)
        spec = PoolSpec.square(3, 2)
        fast = MaxPool2d(spec, impl="im2col", config=CFG)
        slow = MaxPool2d(spec, impl="standard", config=CFG)
        assert np.array_equal(fast.forward(x), slow.forward(x))
        assert slow.forward_cycles > fast.forward_cycles

    def test_counters_accumulate_and_reset(self):
        x = make_input(9, 9, 16, seed=3)
        layer = MaxPool2d(PoolSpec.square(3, 2), config=CFG)
        layer.forward(x)
        once = layer.forward_cycles
        layer.forward(x)
        assert layer.forward_cycles == 2 * once
        layer.reset_counters()
        assert layer.total_cycles == 0


class TestAvgPool2d:
    def test_forward_backward(self):
        x = make_input(13, 13, 16, seed=4)
        spec = PoolSpec.square(3, 2)
        layer = AvgPool2d(spec, config=CFG)
        y = layer.forward(x)
        assert np.array_equal(y, avgpool_forward_ref(x, spec))
        grad = np.ones_like(y)
        dx = layer.backward(grad)
        assert np.array_equal(dx, avgpool_backward_ref(grad, spec, 13, 13))

    def test_backward_before_forward(self):
        layer = AvgPool2d(PoolSpec.square(2, 2), config=CFG)
        with pytest.raises(ReproError):
            layer.backward(np.zeros((1, 1, 2, 2, 16), np.float16))


class TestConv2d:
    def test_forward_shape_and_cycles(self, rng):
        x = make_input(10, 10, 16, seed=5)
        w = (rng.standard_normal((16, 16, 3, 3)) * 0.1).astype(np.float16)
        layer = Conv2d(w, PoolSpec.square(3, 1), config=CFG)
        y = layer.forward(x)
        assert y.shape == (1, 1, 8, 8, 16)
        assert layer.forward_cycles > 0

    def test_backward_shape(self, rng):
        x = make_input(10, 10, 16, seed=6)
        w = (rng.standard_normal((16, 16, 3, 3)) * 0.1).astype(np.float16)
        layer = Conv2d(w, PoolSpec.square(3, 1), config=CFG)
        y = layer.forward(x)
        dx = layer.backward(np.ones_like(y))
        assert dx.shape == x.shape

    def test_weight_rank_checked(self):
        with pytest.raises(LayoutError):
            Conv2d(np.zeros((16, 16, 3), np.float16), PoolSpec.square(3, 1))


class TestSequential:
    def make_block(self, rng):
        w = (rng.standard_normal((16, 16, 3, 3)) * 0.1).astype(np.float16)
        return Sequential(
            Conv2d(w, PoolSpec.square(3, 1), config=CFG),
            MaxPool2d(PoolSpec.square(3, 2), config=CFG),
        )

    def test_forward_backward_round_trip(self, rng):
        block = self.make_block(rng)
        x = make_input(12, 12, 16, seed=7)
        y = block.forward(x)
        assert y.shape == (1, 1, 4, 4, 16)
        dx = block.backward(np.ones_like(y))
        assert dx.shape == x.shape

    def test_cycle_report(self, rng):
        block = self.make_block(rng)
        x = make_input(12, 12, 16, seed=8)
        y = block.forward(x)
        block.backward(np.ones_like(y))
        report = block.cycle_report()
        assert "Conv2d" in report and "MaxPool2d" in report
        assert block.total_cycles > 0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            Sequential()

    def test_reset(self, rng):
        block = self.make_block(rng)
        block.forward(make_input(12, 12, 16, seed=9))
        block.reset_counters()
        assert block.total_cycles == 0
