"""Tests for the self-validation utility (grid sweep + report)."""

import pytest

from repro.validate import (
    DEFAULT_GRID,
    CheckResult,
    ValidationReport,
    validate_all,
)


class TestReport:
    def test_all_passed(self):
        r = ValidationReport()
        r.add("a", True)
        r.add("b", True)
        assert r.all_passed
        assert r.failures == []

    def test_failures_collected(self):
        r = ValidationReport()
        r.add("a", True)
        r.add("b", False, "mismatch")
        assert not r.all_passed
        assert r.failures == [CheckResult("b", False, "mismatch")]

    def test_render(self):
        r = ValidationReport()
        r.add("good", True)
        r.add("bad", False)
        text = r.render()
        assert "1 failures" in text
        assert "[FAIL] bad" in text
        assert "[ok  ] good" in text

    def test_render_only_failures(self):
        r = ValidationReport()
        r.add("good", True)
        r.add("bad", False)
        text = r.render(only_failures=True)
        assert "[FAIL] bad" in text
        assert "good" not in text

    def test_to_dict(self):
        r = ValidationReport()
        r.add("good", True)
        r.add("bad", False, "boom")
        d = r.to_dict()
        assert d["checks"] == 2 and not d["passed"]
        assert d["failures"] == [{"name": "bad", "detail": "boom"}]


class TestValidateAll:
    def test_grid_covers_regimes(self):
        strides = {(s.sh, s.sw) for *_, s in DEFAULT_GRID}
        assert (1, 1) in strides     # max overlap (Figure 8a regime)
        assert (2, 2) in strides     # the paper's main configuration
        assert (3, 3) in strides     # zero overlap (Figure 8c)
        assert any(s.has_padding for *_, s in DEFAULT_GRID)
        assert any(s.kh != s.kw for *_, s in DEFAULT_GRID)

    def test_grid_covers_relocation_regimes(self):
        """Multi-C1 / batch>1 / all-four-sides padding: the geometries
        whose slice offsets catch relocation bugs (the seed grid was
        C=16, N=1 only)."""
        assert any(c > 16 for _, _, c, _, _ in DEFAULT_GRID)
        assert any(n > 1 for _, _, _, n, _ in DEFAULT_GRID)
        assert any(
            min(s.pt, s.pb, s.pl, s.pr) > 0 for *_, s in DEFAULT_GRID
        )
        # batch>1 combined with multi-C1 in one entry
        assert any(
            c > 16 and n > 1 for _, _, c, n, _ in DEFAULT_GRID
        )

    def test_subset_passes(self):
        report = validate_all(grid=DEFAULT_GRID[:1])
        assert report.all_passed, report.render()
        # 11 forward variants (incl. 3 mask) + 4 backward = 15
        # golden checks, each paired with a pipelined-le-serial check.
        assert len(report.checks) == 30

    def test_multi_slice_entry_passes(self):
        # the all-four-sides-padded batch-2 multi-C1 entry
        report = validate_all(grid=[DEFAULT_GRID[8]])
        assert report.all_passed, report.render()

    @pytest.mark.slow
    def test_full_grid_passes(self):
        report = validate_all()
        assert report.all_passed, report.render()
        assert len(report.checks) == 30 * len(DEFAULT_GRID)
