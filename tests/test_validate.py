"""Tests for the self-validation utility."""

import pytest

from repro.validate import (
    DEFAULT_GRID,
    CheckResult,
    ValidationReport,
    validate_all,
)


class TestReport:
    def test_all_passed(self):
        r = ValidationReport()
        r.add("a", True)
        r.add("b", True)
        assert r.all_passed
        assert r.failures == []

    def test_failures_collected(self):
        r = ValidationReport()
        r.add("a", True)
        r.add("b", False, "mismatch")
        assert not r.all_passed
        assert r.failures == [CheckResult("b", False, "mismatch")]

    def test_render(self):
        r = ValidationReport()
        r.add("good", True)
        r.add("bad", False)
        text = r.render()
        assert "1 failures" in text
        assert "[FAIL] bad" in text
        assert "[ok  ] good" in text


class TestValidateAll:
    def test_grid_covers_regimes(self):
        strides = {(s.sh, s.sw) for _, _, _, s in DEFAULT_GRID}
        assert (1, 1) in strides     # max overlap (Figure 8a regime)
        assert (2, 2) in strides     # the paper's main configuration
        assert (3, 3) in strides     # zero overlap (Figure 8c)
        assert any(s.has_padding for _, _, _, s in DEFAULT_GRID)
        assert any(s.kh != s.kw for _, _, _, s in DEFAULT_GRID)

    def test_subset_passes(self):
        report = validate_all(grid=DEFAULT_GRID[:1])
        assert report.all_passed, report.render()
        # 4 maxpool + 4 avgpool + 2 mask + 2+2 backward = 14 checks
        assert len(report.checks) == 14

    @pytest.mark.slow
    def test_full_grid_passes(self):
        report = validate_all()
        assert report.all_passed, report.render()
        assert len(report.checks) == 14 * len(DEFAULT_GRID)
