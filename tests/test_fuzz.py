"""Differential fuzzing subsystem: generator, harness, shrinker, CLI.

The fixed-seed property test here is the CI anchor: every PR re-runs a
bounded differential fuzz (all registered implementations, four
execution routes) on the same deterministic geometry set.
"""

import json
import random

import numpy as np
import pytest

import repro.validate as V
from repro.ops import PoolSpec
from repro.validate import (
    FUZZ_CHIP,
    FuzzCase,
    check_case,
    fuzz,
    generate_cases,
    main,
    shrink_case,
)
from repro.workloads import sample_pool_geometry


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert generate_cases(3, 20) == generate_cases(3, 20)
        assert generate_cases(3, 20) != generate_cases(4, 20)

    def test_all_geometries_legal(self):
        for case in generate_cases(0, 300):
            oh, ow = case.spec.out_hw(case.ih, case.iw)
            assert oh >= 1 and ow >= 1
            assert case.c >= 1 and case.n >= 1

    def test_edge_regimes_sampled(self):
        cases = generate_cases(0, 300)
        specs = [c.spec for c in cases]
        # max overlap, all-four-sides padding, asymmetric padding,
        # single-output-row, multi-C1 and batch>1 all appear
        assert any(s.sh == 1 and s.sw == 1 and s.overlapping for s in specs)
        assert any(min(s.pt, s.pb, s.pl, s.pr) > 0 for s in specs)
        assert any(
            len({s.pt, s.pb, s.pl, s.pr}) > 1 for s in specs
        )
        assert any(
            c.spec.out_hw(c.ih, c.iw)[0] == 1 for c in cases
        )
        assert any(c.c > 16 for c in cases)
        assert any(c.n > 1 for c in cases)

    def test_sampler_respects_pool_spec_invariants(self):
        rng = random.Random(1)
        for _ in range(500):
            ih, iw, c, n, spec = sample_pool_geometry(rng)
            # PoolSpec construction itself validates kernel/stride/pad;
            # the image must fit at least one window.
            assert ih + spec.pt + spec.pb >= spec.kh
            assert iw + spec.pl + spec.pr >= spec.kw


class TestFuzzCase:
    def test_reproducer_round_trips(self):
        case = generate_cases(5, 1)[0]
        clone = eval(case.reproducer(), {
            "FuzzCase": FuzzCase, "PoolSpec": PoolSpec
        })
        assert clone == case

    def test_label_mentions_geometry(self):
        case = FuzzCase(ih=7, iw=9, c=32, n=2,
                        spec=PoolSpec.square(3, 2, pad=1), seed=11)
        assert "2x7x9x32" in case.label
        assert "k33s22" in case.label and "@11" in case.label

    def test_to_dict_json_serializable(self):
        case = generate_cases(2, 1)[0]
        payload = json.dumps(case.to_dict())
        assert f'"ih": {case.ih}' in payload


class TestDifferentialHarness:
    """The fixed-seed property test: every registered implementation
    agrees across fresh / relocated / cached / cycles routes."""

    def test_fixed_seed_property(self):
        report = fuzz(seed=0, cases=4)
        assert report.all_passed, report.render()
        assert report.cases == 4
        # all variants x all route checks actually ran
        assert report.checks >= 4 * 15 * 5

    def test_single_case_check_names(self):
        case = FuzzCase(ih=5, iw=5, c=16, n=1,
                        spec=PoolSpec.square(2, 2), seed=0)
        report = check_case(case)
        assert report.all_passed, report.render()
        names = [c.name for c in report.checks]
        for route in ("fresh-vs-golden", "relocated-vs-fresh",
                      "cached-vs-fresh", "cycles-no-data",
                      "cycles-vs-fresh", "trace-vs-fresh"):
            assert any(route in n for n in names)
        assert any("maxpool/im2col+mask" in n for n in names)
        assert any("avgpool-bwd/col2im" in n for n in names)

    def test_autotune_route_checks(self):
        # The ninth route: per (op, direction) the coarse cost-model
        # search runs once, and the winning plan re-executed
        # numerically must be bit-identical to the default plan at
        # exactly the predicted cycle count.
        case = FuzzCase(ih=6, iw=6, c=16, n=1,
                        spec=PoolSpec.square(2, 2), seed=0)
        report = check_case(case, autotune=True)
        assert report.all_passed, report.render()
        names = [c.name for c in report.checks]
        for check in ("output-vs-default", "cycles-as-predicted",
                      "no-regression"):
            assert any(check in n for n in names), check
        assert any("/autotune/" in n and "-bwd" in n for n in names)

    def test_autotune_off_by_default(self):
        case = FuzzCase(ih=5, iw=5, c=16, n=1,
                        spec=PoolSpec.square(2, 2), seed=0)
        report = check_case(case)
        assert not any(
            "/autotune/" in c.name for c in report.checks
        )

    def test_impl_filter(self):
        case = FuzzCase(ih=5, iw=5, c=16, n=1,
                        spec=PoolSpec.square(2, 2), seed=0)
        report = check_case(case, impls=("im2col",))
        assert report.all_passed, report.render()
        assert all("im2col" in c.name for c in report.checks)

    def test_injected_forward_bug_is_caught_and_shrunk(self, monkeypatch):
        """End-to-end failure path: corrupt the golden model and the
        harness must flag it, shrink it, and report a reproducer."""
        real = V.maxpool_forward_ref

        def corrupt(x, spec):
            out = real(x, spec)
            flat = out.reshape(-1)
            flat[0] += np.float16(1.0)
            return out

        monkeypatch.setattr(V, "maxpool_forward_ref", corrupt)
        report = fuzz(seed=0, cases=1, impls=("standard",))
        assert not report.all_passed
        failure = report.failures[0]
        assert any(
            "fresh-vs-golden" in c.name for c in failure.checks
        )
        # shrinking kept the failure and never grew the case
        assert failure.shrunk.ih <= failure.case.ih
        assert failure.shrunk.iw <= failure.case.iw
        assert failure.shrunk.n == 1
        text = failure.render()
        assert "FuzzCase(" in text and "PoolSpec(" in text

    def test_injected_cycle_bug_is_caught(self, monkeypatch):
        """The cycles route must report the exact numeric cycle count;
        perturb the summary path and the trace/cycle checks fire."""
        from repro.sim.aicore import RunResult
        import repro.sim.progcache as pc

        real = pc._summarize

        def skewed(program, config, collect_trace):
            res = real(program, config, collect_trace)
            return RunResult(
                cycles=res.cycles + 1,
                instructions=res.instructions,
                trace=res.trace,
            )

        monkeypatch.setattr(pc, "_summarize", skewed)
        case = FuzzCase(ih=5, iw=5, c=16, n=1,
                        spec=PoolSpec.square(2, 2), seed=0)
        report = check_case(case, impls=("im2col",))
        assert not report.all_passed
        assert any("cycles" in c.name for c in report.failures)


class TestShrinker:
    def test_reduces_to_minimum_under_predicate(self):
        case = FuzzCase(ih=24, iw=20, c=48, n=3,
                        spec=PoolSpec.square(2, 2), seed=0)
        # "fails whenever ih >= 7": the shrinker must find exactly 7
        shrunk = shrink_case(case, lambda c: c.ih >= 7)
        assert shrunk.ih == 7
        assert shrunk.n == 1 and shrunk.c == 16

    def test_never_below_geometry_floor(self):
        spec = PoolSpec(kh=3, kw=3, sh=1, sw=1, pt=1, pb=0, pl=0, pr=0)
        case = FuzzCase(ih=10, iw=10, c=16, n=1, spec=spec, seed=0)
        shrunk = shrink_case(case, lambda c: True)
        # kh - pt - pb = 2 rows minimum, kw = 3 cols minimum
        assert shrunk.ih == 2 and shrunk.iw == 3
        oh, ow = spec.out_hw(shrunk.ih, shrunk.iw)
        assert oh >= 1 and ow >= 1

    def test_unshrinkable_case_returned_unchanged(self):
        case = FuzzCase(ih=2, iw=2, c=16, n=1,
                        spec=PoolSpec.square(2, 2), seed=0)
        assert shrink_case(case, lambda c: True) == case

    def test_eval_budget_respected(self):
        case = FuzzCase(ih=1000, iw=1000, c=48, n=3,
                        spec=PoolSpec.square(2, 2), seed=0)
        evals = []
        shrink_case(case, lambda c: evals.append(1) or True, max_evals=9)
        assert len(evals) <= 10


class TestChaosRoute:
    """The sixth fuzz route: seeded fault injection with recovery."""

    CASE = FuzzCase(ih=9, iw=9, c=16, n=1,
                    spec=PoolSpec.square(3, 1), seed=0)

    def test_chaos_checks_recorded_and_pass(self):
        report = check_case(self.CASE, impls=("im2col",), chaos=True)
        assert report.all_passed, report.render(only_failures=True)
        names = [c.name for c in report.checks]
        assert any("chaos-serial" in n for n in names)
        assert any("chaos-pipelined" in n for n in names)
        assert any("output-vs-fault-free" in n for n in names)

    def test_chaos_off_by_default(self):
        report = check_case(self.CASE, impls=("im2col",))
        assert not any("chaos" in c.name for c in report.checks)

    @pytest.mark.parametrize("models", [("serial",), ("serial", "pipelined")])
    def test_same_seed_same_plan_report_and_outputs(self, models):
        """Chaos determinism: two runs under one seed build identical
        fault plans, resilience reports, and recovered outputs."""
        from repro.ops import forward_impl, run_forward
        from repro.sim import FaultPlan, ProgramCache, RetryPolicy
        from repro.validate import FUZZ_CHIP, _chaos_seed
        from repro.workloads import make_input

        case = self.CASE
        x = make_input(case.ih, case.iw, case.c, n=case.n, seed=case.seed)
        impl = forward_impl("im2col", "max")

        def once(model):
            base = run_forward(x, case.spec, impl, FUZZ_CHIP, cache=None)
            plan = FaultPlan.generate(
                _chaos_seed("prefix", model),
                num_tiles=len(base.chip.per_tile),
                num_cores=FUZZ_CHIP.num_cores,
            )
            res = run_forward(
                x, case.spec, impl, FUZZ_CHIP, cache=ProgramCache(),
                model=model, faults=plan, retry=RetryPolicy(),
            )
            return plan, res.resilience, res.output, base.output

        for model in models:
            plan_a, rep_a, out_a, base_a = once(model)
            plan_b, rep_b, out_b, base_b = once(model)
            assert plan_a == plan_b
            assert rep_a == rep_b
            assert np.array_equal(out_a, out_b)
            # and recovery really did reproduce the fault-free result
            assert np.array_equal(out_a, base_a)

    def test_fuzz_chaos_fixed_seed(self):
        report = fuzz(seed=0, cases=2, impls=("im2col", "col2im"),
                      chaos=True)
        assert report.all_passed, report.render()
        # two identical invocations agree check-for-check
        again = fuzz(seed=0, cases=2, impls=("im2col", "col2im"),
                     chaos=True)
        assert report.checks == again.checks
        assert report.cases == again.cases

    def test_unrecoverable_plan_fails_loudly(self, monkeypatch):
        """A plan the retry budget cannot absorb is reported as a
        failing chaos check (and therefore shrunk), not swallowed."""
        from repro.sim import Crash, FaultPlan

        def hostile(cls_seed, num_tiles, num_cores=None, rate=0.35):
            # crash every attempt of tile 0: no clean attempt exists
            return FaultPlan((Crash(0, attempts=None),))

        monkeypatch.setattr(
            V.FaultPlan, "generate", staticmethod(hostile)
        )
        report = check_case(self.CASE, impls=("im2col",), chaos=True,
                            models=("serial",))
        assert not report.all_passed
        assert any(
            "chaos-serial/recovered" in c.name and "unrecoverable" in c.detail
            for c in report.failures
        )


class TestCli:
    def test_pass_run_exit_zero(self, capsys):
        assert main(["--seed", "0", "--cases", "2", "--skip-grid"]) == 0
        out = capsys.readouterr().out
        assert "2 cases" in out and "0 failing" in out

    def test_grid_only(self, capsys):
        assert main(["--cases", "0"]) == 0
        out = capsys.readouterr().out
        assert "grid:" in out and "fuzz(" not in out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "sub" / "report.json"
        assert main(["--cases", "1", "--skip-grid",
                     "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["fuzz"]["passed"] is True
        assert payload["fuzz"]["cases"] == 1

    def test_impl_filter_flag(self, capsys):
        assert main(["--cases", "1", "--skip-grid",
                     "--impl", "im2col", "col2im"]) == 0

    def test_chaos_flag(self, tmp_path, capsys):
        path = tmp_path / "chaos.json"
        assert main(["--cases", "1", "--skip-grid", "--chaos",
                     "--impl", "im2col", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["chaos"] is True
        assert payload["fuzz"]["passed"] is True

    def test_unknown_impl_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["--impl", "nope"])
        assert exc.value.code == 2

    def test_negative_cases_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["--cases", "-3"])
        assert exc.value.code == 2

    def test_failure_exits_nonzero_with_reproducer(
        self, monkeypatch, capsys
    ):
        real = V.maxpool_forward_ref

        def corrupt(x, spec):
            out = real(x, spec)
            out.reshape(-1)[0] += np.float16(1.0)
            return out

        monkeypatch.setattr(V, "maxpool_forward_ref", corrupt)
        code = main(["--seed", "0", "--cases", "1", "--skip-grid",
                     "--impl", "standard"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out
        assert "shrunk reproducer: FuzzCase(" in out


class TestFuzzChip:
    def test_fuzz_chip_row_chunks(self):
        """The fuzz chip must actually exercise multi-tile slices."""
        assert FUZZ_CHIP.num_cores > 1
        case = FuzzCase(ih=9, iw=9, c=16, n=1,
                        spec=PoolSpec.square(3, 1), seed=0)
        from repro.ops import forward_impl, run_forward
        from repro.workloads import make_input

        x = make_input(case.ih, case.iw, case.c, seed=0)
        res = run_forward(x, case.spec, forward_impl("im2col", "max"),
                          FUZZ_CHIP, collect_trace=False, cache=None)
        assert len(res.tiles) > 1
