"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ASCEND910, ASCEND910_SINGLE_CORE
from repro.sim import AICore, GlobalMemory


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def core() -> AICore:
    """A fresh single AI Core with empty buffers."""
    return AICore(ASCEND910)


@pytest.fixture
def gm() -> GlobalMemory:
    return GlobalMemory()


@pytest.fixture
def single_core_config():
    return ASCEND910_SINGLE_CORE


@pytest.fixture
def chip_config():
    return ASCEND910


def random_fp16(rng: np.random.Generator, shape) -> np.ndarray:
    """Standard-normal fp16 data with distinct values (ties in max
    reductions are still possible but astronomically unlikely)."""
    return rng.standard_normal(shape).astype(np.float16)
