"""Unit tests for the data-type descriptors."""

import numpy as np
import pytest

from repro.dtypes import (
    BLOCK_BYTES,
    FLOAT16,
    FLOAT32,
    FRACTAL_BITS,
    FRACTAL_ROWS,
    INT8,
    UINT8,
    VECTOR_BYTES_PER_REPEAT,
    DType,
    dtype_by_name,
    dtype_of,
)
from repro.errors import LayoutError


class TestC0Lengths:
    def test_float16_c0_is_16(self):
        # Section III-B: "for Float16, C0 has a length of 16".
        assert FLOAT16.c0 == 16

    def test_uint8_c0_is_32(self):
        # "For Unsigned8, C0 has a length of 32."
        assert UINT8.c0 == 32

    def test_int8_c0_is_32(self):
        assert INT8.c0 == 32

    def test_float32_c0_is_8(self):
        assert FLOAT32.c0 == 8

    @pytest.mark.parametrize("dt", [FLOAT16, FLOAT32, UINT8, INT8])
    def test_fractal_is_4096_bits(self, dt: DType):
        # A data-fractal always holds 4096 bits (Section III-A).
        assert FRACTAL_ROWS * dt.c0 * dt.itemsize * 8 == FRACTAL_BITS

    @pytest.mark.parametrize("dt", [FLOAT16, FLOAT32, UINT8, INT8])
    def test_fractal_bytes(self, dt: DType):
        assert dt.fractal_bytes() == FRACTAL_BITS // 8 == 512

    def test_inconsistent_c0_rejected(self):
        with pytest.raises(LayoutError):
            DType("bogus", np.dtype(np.float16), 2, 32)


class TestLaneGeometry:
    def test_fp16_lanes_per_block(self):
        assert FLOAT16.lanes_per_block == BLOCK_BYTES // 2 == 16

    def test_fp16_lanes_per_repeat(self):
        # 128 fp16 lanes per repeat body (Section III-A's mask width).
        assert FLOAT16.lanes_per_repeat == VECTOR_BYTES_PER_REPEAT // 2 == 128

    def test_fp32_lanes_per_repeat(self):
        assert FLOAT32.lanes_per_repeat == 64

    def test_uint8_lanes_per_repeat(self):
        assert UINT8.lanes_per_repeat == 256


class TestMinMax:
    def test_fp16_min_is_finite(self):
        assert FLOAT16.min_value == float(np.finfo(np.float16).min)
        assert np.isfinite(FLOAT16.min_value)

    def test_fp16_max(self):
        assert FLOAT16.max_value == float(np.finfo(np.float16).max)

    def test_uint8_min(self):
        assert UINT8.min_value == 0

    def test_int8_minmax(self):
        assert INT8.min_value == -128
        assert INT8.max_value == 127


class TestLookup:
    @pytest.mark.parametrize(
        "name,dt",
        [("float16", FLOAT16), ("float32", FLOAT32),
         ("uint8", UINT8), ("int8", INT8)],
    )
    def test_by_name(self, name, dt):
        assert dtype_by_name(name) is dt

    def test_unknown_name(self):
        with pytest.raises(LayoutError):
            dtype_by_name("float64")

    def test_dtype_of_array(self):
        assert dtype_of(np.zeros(3, np.float16)) is FLOAT16
        assert dtype_of(np.zeros(3, np.uint8)) is UINT8

    def test_dtype_of_unsupported(self):
        with pytest.raises(LayoutError):
            dtype_of(np.zeros(3, np.float64))
