"""Documentation conventions: every public item carries a docstring.

This enforces the library's documentation deliverable mechanically --
any new public module, class or function must explain itself.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro.")
    if not name.endswith("__main__")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    mod = importlib.import_module(module_name)
    assert mod.__doc__ and mod.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    mod = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(mod).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
    assert not missing, f"{module_name}: undocumented public items {missing}"


def test_package_exports_resolve():
    """Everything in __all__ must actually exist."""
    for module_name in MODULES:
        mod = importlib.import_module(module_name)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module_name}.__all__: {name}"
