"""End-to-end integration: a CNN block trained through the simulator.

Mirrors examples/training_step.py as a test: convolution on the Cube
Unit, MaxPool with mask, backward through Col2Im, convolution input
gradient -- every value checked against the NumPy pipeline.
"""

import numpy as np
import pytest

from repro.config import ASCEND910_SINGLE_CORE
from repro.nn import Conv2d, MaxPool2d, Sequential
from repro.ops import PoolSpec
from repro.ops.conv2d import conv2d_input_grad_ref, conv2d_ref
from repro.ops.reference import (
    maxpool_argmax_ref,
    maxpool_backward_ref,
    maxpool_forward_ref,
)
from repro.workloads import make_input

ULP = dict(rtol=2e-3, atol=2e-3)


@pytest.fixture(scope="module")
def block():
    rng = np.random.default_rng(7)
    w = (rng.standard_normal((16, 16, 3, 3)) * 0.1).astype(np.float16)
    conv_spec = PoolSpec.square(3, 1)
    pool_spec = PoolSpec.square(3, 2)
    net = Sequential(
        Conv2d(w, conv_spec, config=ASCEND910_SINGLE_CORE),
        MaxPool2d(pool_spec, config=ASCEND910_SINGLE_CORE),
    )
    x = make_input(16, 16, 16, seed=8)
    y = net.forward(x)
    dx = net.backward(np.ones_like(y))
    return dict(net=net, x=x, y=y, dx=dx, w=w,
                conv_spec=conv_spec, pool_spec=pool_spec)


class TestPipeline:
    def test_forward_values(self, block):
        conv_ref = conv2d_ref(block["x"], block["w"], block["conv_spec"])
        pool_ref = maxpool_forward_ref(conv_ref, block["pool_spec"])
        np.testing.assert_allclose(
            block["y"].astype(np.float32), pool_ref.astype(np.float32), **ULP
        )

    def test_backward_values(self, block):
        conv_ref = conv2d_ref(block["x"], block["w"], block["conv_spec"])
        mask = maxpool_argmax_ref(conv_ref, block["pool_spec"])
        grad = np.ones_like(block["y"])
        ph = pw = conv_ref.shape[2]
        pool_bwd = maxpool_backward_ref(mask, grad, block["pool_spec"], ph, pw)
        dx_ref = conv2d_input_grad_ref(
            pool_bwd, block["w"], block["conv_spec"], 16, 16
        )
        np.testing.assert_allclose(
            block["dx"].astype(np.float32), dx_ref.astype(np.float32),
            rtol=2e-2, atol=2e-2,
        )

    def test_cycles_accumulated(self, block):
        net = block["net"]
        assert net.total_cycles > 0
        for layer in net.layers:
            assert layer.forward_cycles > 0
            assert layer.backward_cycles > 0

    def test_pooling_is_minor_cost(self, block):
        # the paper's premise: pooling << convolution when implemented
        # with the accelerated kernels.
        conv, pool = block["net"].layers
        assert pool.total_cycles < conv.total_cycles

    def test_shapes(self, block):
        assert block["y"].shape == (1, 1, 6, 6, 16)
        assert block["dx"].shape == block["x"].shape


class TestAcceleratedVsStandardPipeline:
    def test_same_values_different_cycles(self):
        rng = np.random.default_rng(9)
        w = (rng.standard_normal((16, 16, 3, 3)) * 0.1).astype(np.float16)
        x = make_input(16, 16, 16, seed=10)

        def build(fwd, bwd):
            return Sequential(
                Conv2d(w, PoolSpec.square(3, 1),
                       config=ASCEND910_SINGLE_CORE),
                MaxPool2d(PoolSpec.square(3, 2), impl=fwd,
                          backward_impl=bwd,
                          config=ASCEND910_SINGLE_CORE),
            )

        fast = build("im2col", "col2im")
        slow = build("standard", "standard")
        yf = fast.forward(x)
        ys = slow.forward(x)
        assert np.array_equal(yf, ys)
        gf = fast.backward(np.ones_like(yf))
        gs = slow.backward(np.ones_like(ys))
        np.testing.assert_allclose(
            gf.astype(np.float32), gs.astype(np.float32), **ULP
        )
        fast_pool = fast.layers[1].total_cycles
        slow_pool = slow.layers[1].total_cycles
        assert slow_pool > 2 * fast_pool
