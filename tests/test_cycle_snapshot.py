"""Cycle-count regression snapshots.

These pin the exact simulated cycle counts of canonical workloads under
the *default* calibrated cost model.  They exist so an accidental
change to the cost constants, the lowering, the tiling policy or the
instruction cycle formulas is caught immediately -- every number in
EXPERIMENTS.md depends on them.  If a change is intentional,
recalibrate (DESIGN.md Section 4), regenerate EXPERIMENTS.md, and
update these values in the same commit.
"""

import pytest

from repro.config import ASCEND910_SINGLE_CORE
from repro.ops import PoolSpec, avgpool, maxpool, maxpool_backward
from repro.ops.reference import maxpool_argmax_ref
from repro.workloads import make_gradient, make_input

CFG = ASCEND910_SINGLE_CORE
SPEC = PoolSpec.square(3, 2)

#: (17,17,16) single-core, default CostModel -- regenerate with
#: scripts in this file's docstring procedure.
FORWARD_SNAPSHOT = {
    "standard": 1765,
    "im2col": 679,
    "expansion": 1282,
    "xysplit": 1402,
}
MASK_SNAPSHOT = {"standard": 6010, "im2col": 1900}
BACKWARD_SNAPSHOT = {"standard": 4278, "col2im": 1119}


@pytest.fixture(scope="module")
def x():
    return make_input(17, 17, 16, seed=0)


class TestForwardSnapshot:
    @pytest.mark.parametrize("impl,expected", sorted(FORWARD_SNAPSHOT.items()))
    def test_cycles(self, x, impl, expected):
        res = maxpool(x, SPEC, impl=impl, config=CFG, collect_trace=False)
        assert res.cycles == expected, (
            f"{impl}: {res.cycles} != snapshot {expected}; if intentional, "
            "recalibrate and update EXPERIMENTS.md"
        )

    def test_snapshot_ordering_is_figure8b(self):
        c = FORWARD_SNAPSHOT
        assert c["im2col"] < c["expansion"] < c["xysplit"] < c["standard"]


class TestMaskSnapshot:
    @pytest.mark.parametrize("impl,expected", sorted(MASK_SNAPSHOT.items()))
    def test_cycles(self, x, impl, expected):
        res = maxpool(x, SPEC, impl=impl, with_mask=True, config=CFG,
                      collect_trace=False)
        assert res.cycles == expected


class TestBackwardSnapshot:
    @pytest.mark.parametrize("impl,expected", sorted(BACKWARD_SNAPSHOT.items()))
    def test_cycles(self, x, impl, expected):
        mask = maxpool_argmax_ref(x, SPEC)
        grad = make_gradient(1, 8, 8, seed=1)
        res = maxpool_backward(mask, grad, SPEC, 17, 17, impl=impl,
                               config=CFG, collect_trace=False)
        assert res.cycles == expected


class TestSnapshotRatios:
    """The headline mechanism at this small size, pinned."""

    def test_forward_speedup(self):
        s = FORWARD_SNAPSHOT["standard"] / FORWARD_SNAPSHOT["im2col"]
        assert 2.0 < s < 3.5

    def test_backward_speedup(self):
        s = BACKWARD_SNAPSHOT["standard"] / BACKWARD_SNAPSHOT["col2im"]
        assert 3.0 < s < 5.0

    def test_avgpool_tracks_maxpool(self, x):
        # Section V-C: same access pattern, so nearly the same cycles
        # (one extra vmuls stage).
        mx = maxpool(x, SPEC, impl="im2col", config=CFG,
                     collect_trace=False).cycles
        av = avgpool(x, SPEC, impl="im2col", config=CFG,
                     collect_trace=False).cycles
        assert mx <= av <= 1.2 * mx
