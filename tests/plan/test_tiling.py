"""Tests for the row-chunk tiling planner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ASCEND910, ChipConfig
from repro.dtypes import FLOAT16
from repro.errors import TilingError
from repro.isa import Im2ColParams
from repro.plan import (
    chunk_fits,
    plan_chunk,
    plan_row_chunks,
    tiles_for_chunk,
    tiling_threshold,
)


def small_footprint(params, dtype):
    """An implementation needing input + output tiles in the UB."""
    oh, ow = params.out_hw()
    c0 = dtype.c0 * dtype.itemsize
    return {"UB": params.ih * params.iw * c0 + oh * ow * c0}


def big_footprint(params, dtype):
    """Im2col-like: Kh*Kw planes."""
    oh, ow = params.out_hw()
    c0 = dtype.c0 * dtype.itemsize
    return {"UB": params.kh * params.kw * oh * ow * c0 + oh * ow * c0}


def params(ih, iw=None, k=3, s=2, pt=0, pb=0, pl=0, pr=0):
    return Im2ColParams(ih=ih, iw=iw or ih, kh=k, kw=k, sh=s, sw=s,
                        pt=pt, pb=pb, pl=pl, pr=pr)


class TestPlanRowChunks:
    def test_single_tile_when_fits(self):
        tiles = plan_row_chunks(params(20), small_footprint, ASCEND910, FLOAT16)
        assert len(tiles) == 1
        t = tiles[0]
        assert (t.oh0, t.oh1) == (0, 9)
        assert (t.ih0, t.ih1) == (0, 19)  # rows 0..(8*2+3) = 19

    def test_chunks_when_too_big(self):
        tiles = plan_row_chunks(params(147, k=3, s=2), big_footprint,
                                ASCEND910, FLOAT16)
        assert len(tiles) > 1

    def test_tiles_cover_output_exactly(self):
        tiles = plan_row_chunks(params(147), big_footprint, ASCEND910, FLOAT16)
        oh, _ = params(147).out_hw()
        assert tiles[0].oh0 == 0
        assert tiles[-1].oh1 == oh
        for a, b in zip(tiles, tiles[1:]):
            assert a.oh1 == b.oh0

    def test_every_tile_fits(self):
        full = params(147)
        tiles = plan_row_chunks(full, big_footprint, ASCEND910, FLOAT16)
        cap = ASCEND910.ub_bytes
        for t in tiles:
            assert big_footprint(t.params, FLOAT16)["UB"] <= cap

    def test_tile_geometry_consistent(self):
        full = params(147)
        tiles = plan_row_chunks(full, big_footprint, ASCEND910, FLOAT16)
        for t in tiles:
            got_oh, got_ow = t.params.out_hw()
            assert got_oh == t.out_rows
            assert got_ow == full.out_hw()[1]
            assert t.params.ih == t.in_rows

    def test_padding_distributed_to_edge_tiles(self):
        # ih=21 so the final patch genuinely reaches the bottom pad row
        # (with ih=20 the stride-2 grid never touches it).
        full = params(21, k=3, s=2, pt=1, pb=1, pl=1, pr=1)
        tiles = plan_row_chunks(full, big_footprint,
                                ASCEND910.with_cost(), FLOAT16,
                                min_tiles=4)
        assert tiles[0].params.pt == 1
        assert all(t.params.pt == 0 for t in tiles[1:])
        assert tiles[-1].params.pb == 1
        assert all(t.params.pb == 0 for t in tiles[:-1])
        # left/right padding appears on every tile
        assert all(t.params.pl == 1 and t.params.pr == 1 for t in tiles)

    def test_min_tiles_splits_for_parallelism(self):
        full = params(40)
        alone = plan_row_chunks(full, small_footprint, ASCEND910, FLOAT16)
        assert len(alone) == 1
        spread = plan_row_chunks(full, small_footprint, ASCEND910, FLOAT16,
                                 min_tiles=8)
        assert len(spread) >= 8

    def test_min_tiles_capped_at_output_rows(self):
        full = params(9)  # oh = 4
        tiles = plan_row_chunks(full, small_footprint, ASCEND910, FLOAT16,
                                min_tiles=100)
        assert len(tiles) == 4  # one output row per tile

    def test_impossible_tiling_raises(self):
        tiny = ChipConfig(num_cores=1, ub_bytes=64)
        with pytest.raises(TilingError):
            plan_row_chunks(params(50), small_footprint, tiny, FLOAT16)

    def test_unknown_buffer_in_footprint(self):
        def bad(params, dtype):
            return {"L9": 1}

        with pytest.raises(TilingError):
            plan_row_chunks(params(20), bad, ASCEND910, FLOAT16)

    @given(
        ih=st.integers(5, 60),
        k=st.integers(2, 3),
        s=st.integers(1, 3),
        min_tiles=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_coverage_property(self, ih, k, s, min_tiles):
        full = params(ih, k=k, s=s)
        tiles = plan_row_chunks(full, big_footprint, ASCEND910, FLOAT16,
                                min_tiles=min_tiles)
        oh, _ = full.out_hw()
        # exact, ordered, gap-free coverage of the output rows
        assert tiles[0].oh0 == 0 and tiles[-1].oh1 == oh
        for a, b in zip(tiles, tiles[1:]):
            assert a.oh1 == b.oh0
        # each tile's input window is inside the image
        for t in tiles:
            assert 0 <= t.ih0 < t.ih1 <= ih
            assert t.params.out_hw()[0] == t.out_rows


class TestTilingThreshold:
    def test_threshold_is_maximal(self):
        spec = lambda s: params(s)
        thr = tiling_threshold(spec, big_footprint, ASCEND910, FLOAT16)
        cap = ASCEND910.ub_bytes
        assert big_footprint(params(thr), FLOAT16)["UB"] <= cap
        assert big_footprint(params(thr + 1), FLOAT16)["UB"] > cap

    def test_bigger_footprint_smaller_threshold(self):
        spec = lambda s: params(s)
        t_small = tiling_threshold(spec, small_footprint, ASCEND910, FLOAT16)
        t_big = tiling_threshold(spec, big_footprint, ASCEND910, FLOAT16)
        assert t_big < t_small

    def test_sizes_below_kernel_skipped(self):
        # make_params raises for sizes < kernel; threshold search must
        # step over them.
        thr = tiling_threshold(lambda s: params(s, k=3, s=1),
                               big_footprint, ASCEND910, FLOAT16)
        assert thr >= 3

    def test_nothing_fits(self):
        tiny = ChipConfig(ub_bytes=16)
        with pytest.raises(TilingError):
            tiling_threshold(lambda s: params(s), small_footprint,
                             tiny, FLOAT16, max_size=64)


class TestChunkPrimitives:
    """The decision/realization split the planner and autotuner use."""

    def test_tiles_for_chunk_matches_planner(self):
        full = params(147)
        chunk = plan_chunk(full, big_footprint, ASCEND910, FLOAT16)
        assert tiles_for_chunk(full, chunk) == plan_row_chunks(
            full, big_footprint, ASCEND910, FLOAT16
        )

    def test_tiles_for_chunk_covers_exactly(self):
        full = params(21, k=3, s=2, pt=1, pb=1)
        oh, _ = full.out_hw()
        for chunk in range(1, oh + 1):
            tiles = tiles_for_chunk(full, chunk)
            assert tiles[0].oh0 == 0 and tiles[-1].oh1 == oh
            for a, b in zip(tiles, tiles[1:]):
                assert a.oh1 == b.oh0

    def test_tiles_for_chunk_rejects_nonpositive(self):
        with pytest.raises(TilingError):
            tiles_for_chunk(params(20), 0)
        with pytest.raises(TilingError):
            tiles_for_chunk(params(20), -3)

    def test_chunk_fits_matches_capacity(self):
        full = params(147)
        oh, _ = full.out_hw()
        best = plan_chunk(full, big_footprint, ASCEND910, FLOAT16)
        assert chunk_fits(full, best, big_footprint, ASCEND910, FLOAT16)
        if best < oh:
            assert not chunk_fits(
                full, best + 1, big_footprint, ASCEND910, FLOAT16
            )

    def test_chunk_fits_false_rather_than_raise(self):
        # The autotuner filters illegal candidates; capacity overflow
        # and degenerate tilings both come back False, never raise.
        tiny = ChipConfig(num_cores=1, ub_bytes=64)
        assert not chunk_fits(
            params(50), 1, small_footprint, tiny, FLOAT16
        )


class TestPlanChunkEdges:
    """The binary search's documented edge cases (module docstring)."""

    def test_chunk_one_overflow_raises_tiling_error(self):
        # A kernel window that can never fit the UB budget: even the
        # single-output-row probe overflows, so the planner must raise
        # (the workload would need column tiling) instead of looping
        # or returning an illegal chunk.
        tiny = ChipConfig(num_cores=1, ub_bytes=64)
        with pytest.raises(TilingError, match="column tiling"):
            plan_chunk(params(50), small_footprint, tiny, FLOAT16)
        with pytest.raises(TilingError, match="column tiling"):
            plan_row_chunks(params(50), small_footprint, tiny, FLOAT16)

    def test_exactly_one_chunk_size_fits(self):
        # Boundary where the probe and the search winner coincide: a
        # footprint legal only for single-output-row tiles.  The
        # binary search must degenerate to the probed chunk=1, not an
        # untested candidate.
        cap = ASCEND910.ub_bytes

        def knife_edge(p, dtype):
            return {"UB": cap if p.out_hw()[0] <= 1 else cap + 1}

        full = params(21)
        assert plan_chunk(full, knife_edge, ASCEND910, FLOAT16) == 1
        tiles = plan_row_chunks(full, knife_edge, ASCEND910, FLOAT16)
        assert all(t.out_rows == 1 for t in tiles)
        assert len(tiles) == full.out_hw()[0]

    def test_boundary_chunk_k_fits_k_plus_one_does_not(self):
        # General boundary: the largest fitting chunk is returned even
        # when it is neither 1 nor the whole grid.
        full = params(21)
        oh, _ = full.out_hw()
        for k in range(1, oh):
            def capped(p, dtype, k=k):
                return {"UB": 0 if p.out_hw()[0] <= k else 10**9}

            assert plan_chunk(full, capped, ASCEND910, FLOAT16) == k

    def test_min_tiles_never_unfits(self):
        # Parallelism shrinking only ever reduces the chunk, which by
        # monotonicity always still fits.
        full = params(40)
        for min_tiles in (1, 2, 4, 8, 100):
            chunk = plan_chunk(
                full, big_footprint, ASCEND910, FLOAT16,
                min_tiles=min_tiles,
            )
            assert chunk_fits(full, chunk, big_footprint, ASCEND910, FLOAT16)
