"""Plan identity and resolution: the contract that lets plans key
caches, persist in the autotune table, and travel with results.

Three properties carry the whole pipeline:

* an :class:`~repro.plan.ExecutionPlan` is hashable, equality-
  comparable, and round-trips losslessly through JSON;
* two equal plans lower into the *same* :class:`~repro.sim.
  ProgramCache` entries (the cache is keyed by the plan, so equal
  plans never duplicate programs);
* a ``detach()``-ed :class:`~repro.ops.base.PoolRunResult` pickles
  with its plan attached, so the serving layer ships plans across the
  worker boundary for free.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.config import ASCEND910
from repro.dtypes import FLOAT16, FLOAT32
from repro.errors import PlanError
from repro.ops import PoolSpec
from repro.ops.base import run_backward, run_forward
from repro.ops.registry import backward_impl, forward_impl
from repro.plan import ExecutionPlan, plan_default, resolve_plan
from repro.sim import ProgramCache
from repro.workloads import make_gradient, make_input

SPEC = PoolSpec(kh=3, kw=3, sh=2, sw=2)


def fwd_plan(execute: str = "numeric") -> ExecutionPlan:
    impl = forward_impl("standard", "max")
    return plan_default(
        "fwd", impl, SPEC, FLOAT16, 1, 1, 28, 28, ASCEND910,
        execute=execute,
    )


class TestPlanIdentity:
    def test_hash_equality_and_json_round_trip(self):
        a = fwd_plan()
        b = fwd_plan()
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        restored = ExecutionPlan.from_json(a.to_json())
        assert restored == a
        assert hash(restored) == hash(a)
        # The canonical encoding is stable: re-encoding the round-trip
        # reproduces the same bytes (sorted keys, no drift).
        assert restored.to_json() == a.to_json()

    def test_distinct_choices_are_distinct_plans(self):
        a = fwd_plan()
        assert replace(a, chunk=a.chunk + 1) != a
        assert replace(a, model="pipelined") != a
        assert replace(a, impl="im2col") != a

    def test_from_dict_rejects_malformed_payloads(self):
        good = fwd_plan().to_dict()
        bad = dict(good)
        bad.pop("chunk")
        with pytest.raises(PlanError, match="malformed plan payload"):
            ExecutionPlan.from_dict(bad)
        with pytest.raises(PlanError, match="malformed plan JSON"):
            ExecutionPlan.from_json("{not json")

    def test_equal_plans_share_cache_entries(self):
        x = make_input(28, 28, 16, n=1, seed=0)
        impl = forward_impl("standard", "max")
        cache = ProgramCache()
        first = run_forward(
            x, SPEC, impl, ASCEND910, collect_trace=False,
            cache=cache, plan=fwd_plan(),
        )
        misses = cache.stats.misses
        assert misses > 0
        hits_before = cache.stats.hits
        second = run_forward(
            x, SPEC, impl, ASCEND910, collect_trace=False,
            cache=cache, plan=fwd_plan(),
        )
        # An equal plan re-keys into the same entries: zero new misses,
        # every lookup a hit.
        assert cache.stats.misses == misses
        assert cache.stats.hits > hits_before
        assert np.array_equal(second.output, first.output)
        assert second.cycles == first.cycles

    def test_detached_result_pickles_with_plan(self):
        x = make_input(28, 28, 16, n=1, seed=1)
        impl = forward_impl("im2col", "max")
        res = run_forward(
            x, SPEC, impl, ASCEND910, cache=ProgramCache(),
        )
        assert res.plan is not None
        slim = res.detach()
        restored = pickle.loads(pickle.dumps(slim))
        assert restored.plan == res.plan
        assert restored.cycles == res.cycles
        assert np.array_equal(restored.output, res.output)


class TestResolvePlan:
    """Explicit plans are validated against the workload they run on."""

    def args(self, **overrides):
        impl = forward_impl("standard", "max")
        base = dict(
            kind="fwd", impl=impl, spec=SPEC, dtype=FLOAT16,
            n=1, c1=1, ih=28, iw=28, config=ASCEND910,
        )
        base.update(overrides)
        return base

    def call(self, plan, **overrides):
        a = self.args(**overrides)
        return resolve_plan(
            plan, a["kind"], a["impl"], a["spec"], a["dtype"],
            a["n"], a["c1"], a["ih"], a["iw"], a["config"],
        )

    def test_unknown_policy_string(self):
        with pytest.raises(PlanError, match="unknown plan 'greedy'"):
            self.call("greedy")

    def test_non_plan_object(self):
        with pytest.raises(PlanError, match="must be a string"):
            self.call(42)

    def test_kind_mismatch(self):
        plan = replace(fwd_plan(), kind="bwd")
        with pytest.raises(PlanError, match="direction"):
            self.call(plan)

    def test_spec_mismatch(self):
        plan = replace(fwd_plan(), spec=PoolSpec(kh=2, kw=2, sh=2, sw=2))
        with pytest.raises(PlanError, match="spec"):
            self.call(plan)

    def test_dtype_mismatch(self):
        plan = replace(fwd_plan(), dtype=FLOAT32.name)
        with pytest.raises(PlanError, match="dtype"):
            self.call(plan)

    def test_extent_mismatch(self):
        plan = replace(fwd_plan(), ih=56, iw=56)
        with pytest.raises(PlanError, match="extents"):
            self.call(plan)

    def test_operator_mismatch(self):
        plan = replace(fwd_plan(), op="avg")
        with pytest.raises(PlanError, match="operator"):
            self.call(plan)

    def test_mask_mismatch(self):
        plan = replace(fwd_plan(), with_mask=True)
        with pytest.raises(PlanError, match="operator|mask"):
            self.call(plan)

    def test_invalid_execute_chunk_model(self):
        with pytest.raises(PlanError, match="execution mode"):
            self.call(replace(fwd_plan(), execute="warp"))
        with pytest.raises(PlanError, match="row chunk"):
            self.call(replace(fwd_plan(), chunk=0))
        with pytest.raises(PlanError, match="timing model"):
            self.call(replace(fwd_plan(), model="quantum"))

    def test_impl_swap_resolves_through_registry(self):
        # A plan naming a different bit-exact variant wins over the
        # call's impl argument: the resolved impl is the plan's.
        plan = replace(fwd_plan(), impl="im2col")
        resolved_plan, _timing, resolved_impl = self.call(plan)
        assert resolved_plan is plan
        assert resolved_impl.name == "im2col"


class TestDefaultPlanEquivalence:
    """``plan="default"`` is the reified historical heuristic."""

    def test_forward_explicit_default_plan_is_identical(self):
        x = make_input(30, 30, 16, n=1, seed=2)
        impl = forward_impl("standard", "max")
        implicit = run_forward(
            x, SPEC, impl, ASCEND910, collect_trace=False,
            cache=ProgramCache(),
        )
        explicit = run_forward(
            x, SPEC, impl, ASCEND910, collect_trace=False,
            cache=ProgramCache(),
            plan=plan_default(
                "fwd", impl, SPEC, FLOAT16, 1, x.shape[1], 30, 30,
                ASCEND910,
            ),
        )
        assert np.array_equal(explicit.output, implicit.output)
        assert explicit.cycles == implicit.cycles
        assert explicit.plan == implicit.plan

    def test_backward_explicit_default_plan_is_identical(self):
        spec = SPEC
        oh, ow = spec.out_hw(30, 30)
        grad = make_gradient(1, oh, ow, n=1, seed=3)
        impl = backward_impl("col2im", "avg")
        implicit = run_backward(
            grad, spec, impl, 30, 30, config=ASCEND910,
            collect_trace=False, cache=ProgramCache(),
        )
        explicit = run_backward(
            grad, spec, impl, 30, 30, config=ASCEND910,
            collect_trace=False, cache=ProgramCache(),
            plan=plan_default(
                "bwd", impl, spec, FLOAT16, 1, grad.shape[1], 30, 30,
                ASCEND910,
            ),
        )
        assert np.array_equal(explicit.output, implicit.output)
        assert explicit.cycles == implicit.cycles
        assert explicit.plan == implicit.plan
