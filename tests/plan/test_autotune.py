"""The cost-model autotuner: search spaces, determinism, and the
persisted best-config table behind ``plan="autotuned"``.

The contracts pinned here are the ones the benchmark guard
(``benchmarks/test_autotune.py``) and the ninth fuzz route build on:
the search space only contains bit-exact variants, repeated searches
return identical winners, table records are integer-only and
byte-deterministic, and table misses degrade to the default plan.
"""

from __future__ import annotations

import pytest

from repro.config import ASCEND910
from repro.dtypes import FLOAT16
from repro.errors import PlanError
from repro.ops import PoolSpec
from repro.ops.registry import FORWARD_IMPLS, forward_impl
from repro.plan import (
    AutotuneTable,
    ExecutionPlan,
    Workload,
    autotune_grid,
    candidate_chunks,
    candidate_impls,
    grid_workloads,
    search,
    summarize_rows,
    tuned_plan,
)

SPEC = PoolSpec(kh=3, kw=3, sh=2, sw=2)


def fwd_workload(impl: str = "standard", **overrides) -> Workload:
    fields = dict(
        kind="fwd", op="max", impl=impl, with_mask=False,
        dtype=FLOAT16.name, spec=SPEC, n=1, c1=1, ih=28, iw=28,
    )
    fields.update(overrides)
    return Workload(**fields)


class TestSearchSpaces:
    def test_forward_max_ranges_over_all_variants(self):
        assert candidate_impls(fwd_workload()) == list(FORWARD_IMPLS)

    def test_mask_workloads_restricted_to_mask_capable(self):
        variants = candidate_impls(fwd_workload(with_mask=True))
        assert "standard" in variants
        assert set(variants) <= set(FORWARD_IMPLS)
        for name in variants:
            assert getattr(FORWARD_IMPLS[name], "supports_mask", True)

    def test_avg_and_backward_keep_the_requested_variant(self):
        assert candidate_impls(fwd_workload(op="avg")) == ["standard"]
        assert candidate_impls(
            fwd_workload(kind="bwd", impl="col2im")
        ) == ["col2im"]

    def test_candidate_chunks_exhaustive_and_coarse(self):
        impl = forward_impl("standard", "max")
        full = SPEC.with_image(28, 28)
        oh, _ = full.out_hw()
        exhaustive = candidate_chunks(
            full, impl.footprint, ASCEND910, FLOAT16
        )
        coarse = candidate_chunks(
            full, impl.footprint, ASCEND910, FLOAT16, mode="coarse"
        )
        assert exhaustive == sorted(set(exhaustive))
        assert set(coarse) <= set(exhaustive)
        assert 1 in coarse
        assert all(1 <= c <= oh for c in exhaustive)
        with pytest.raises(PlanError, match="chunk search mode"):
            candidate_chunks(
                full, impl.footprint, ASCEND910, FLOAT16, mode="greedy"
            )

    def test_extra_chunks_are_considered_but_clamped(self):
        impl = forward_impl("standard", "max")
        full = SPEC.with_image(28, 28)
        oh, _ = full.out_hw()
        chunks = candidate_chunks(
            full, impl.footprint, ASCEND910, FLOAT16, mode="coarse",
            extra=(3, 0, oh + 5),
        )
        assert 3 in chunks
        assert all(c <= oh for c in chunks)


class TestSearch:
    def test_baseline_always_in_space(self):
        result = search(fwd_workload(), ASCEND910, chunks="coarse")
        assert result.best_cycles <= result.baseline_cycles
        assert result.cycles_won >= 1.0
        assert result.evaluated >= 1
        assert result.best.execute == "numeric"

    def test_search_is_deterministic(self):
        w = fwd_workload()
        a = search(w, ASCEND910, chunks="coarse")
        b = search(w, ASCEND910, chunks="coarse")
        assert a.best == b.best
        assert a.best_cycles == b.best_cycles
        assert a.evaluated == b.evaluated

    def test_to_entry_is_integer_only(self):
        result = search(fwd_workload(), ASCEND910, chunks="coarse")
        entry = result.to_entry()
        for key in ("cycles", "baseline_cycles", "evaluated"):
            assert type(entry[key]) is int
        assert entry["plan"] == result.best.to_dict()
        assert entry["baseline_plan"] == result.baseline.to_dict()


class TestTable:
    def test_save_load_round_trip(self, tmp_path):
        table, _rows = autotune_grid(
            [fwd_workload()], ASCEND910, chunks="coarse"
        )
        assert len(table) == 1
        saved = table.save(tmp_path / "t.json")
        assert AutotuneTable.load(saved).to_json() == table.to_json()

    def test_missing_file_is_an_empty_table(self, tmp_path):
        table = AutotuneTable.load(tmp_path / "nope.json")
        assert len(table) == 0

    def test_malformed_files_raise_plan_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(PlanError, match="malformed autotune table"):
            AutotuneTable.load(bad)
        bad.write_text('{"version": 1}')
        with pytest.raises(PlanError, match="no 'entries'"):
            AutotuneTable.load(bad)

    def test_tuned_plan_hit_and_miss(self):
        w = fwd_workload()
        table, _rows = autotune_grid([w], ASCEND910, chunks="coarse")
        impl = forward_impl("standard", "max")
        plan = tuned_plan(
            "fwd", impl, SPEC, FLOAT16, 1, 1, 28, 28, ASCEND910,
            execute="cycles", table=table,
        )
        assert isinstance(plan, ExecutionPlan)
        # The caller's execute mode replaces the table's canonical one.
        assert plan.execute == "cycles"
        entry = table.lookup(w.key(ASCEND910))
        assert plan.to_dict() == {
            **entry["plan"], "execute": "cycles",
        }
        # Any workload drift -- here the extents -- is a miss.
        miss = tuned_plan(
            "fwd", impl, SPEC, FLOAT16, 1, 1, 30, 30, ASCEND910,
            table=table,
        )
        assert miss is None

    def test_workload_key_carries_config_fingerprint(self):
        w = fwd_workload()
        key = w.key(ASCEND910)
        assert key.startswith("fwd:max:standard:mask0:float16:")
        assert ":cfg" in key


class TestGrid:
    def test_grid_workloads_shape(self):
        grid = [(28, 28, 16, 1, SPEC), (14, 14, 32, 2, SPEC)]
        workloads = grid_workloads(grid)
        assert len(workloads) == 4
        assert [w.kind for w in workloads] == ["fwd", "bwd"] * 2
        assert workloads[0].impl == "standard"
        assert workloads[1].impl == "col2im"
        # Channels round up to whole C1 blocks.
        assert workloads[2].c1 == 2
        assert workloads[3].n == 2

    def test_autotune_grid_rows_and_summary(self):
        grid = [(28, 28, 16, 1, SPEC)]
        table, rows = autotune_grid(
            grid_workloads(grid), ASCEND910, chunks="coarse"
        )
        assert len(rows) == 2 == len(table)
        for row in rows:
            assert row["cycles_won"] >= 1.0
            assert row["best_cycles"] <= row["baseline_cycles"]
        summary = summarize_rows(rows)
        assert summary["workloads"] == 2
        assert summary["median_cycles_won"] >= 1.0
        assert summary["best_cycles_won"] >= summary["median_cycles_won"]
