"""Import-surface tests: every name in ``__all__`` actually resolves.

Guards the public API of the simulator packages -- a renamed or dropped
symbol (or an ``__all__`` entry that was never exported) fails here
rather than in downstream ``from repro.sim import ...`` lines.
"""

import importlib

import pytest

SURFACES = (
    "repro", "repro.sim", "repro.isa", "repro.errors", "repro.ops",
    "repro.serve",
)


@pytest.mark.parametrize("modname", SURFACES)
def test_all_names_importable(modname):
    mod = importlib.import_module(modname)
    exported = getattr(mod, "__all__", None)
    assert exported, f"{modname} defines no __all__"
    assert len(set(exported)) == len(exported), "duplicate __all__ entries"
    for name in exported:
        assert hasattr(mod, name), f"{modname}.__all__ lists missing {name!r}"


def test_sim_exports_fault_and_scheduler_vocabulary():
    """The PR-3 timing models and the fault/resilience vocabulary are
    part of the ``repro.sim`` public surface."""
    import repro.sim as sim

    for name in (
        # scheduler (pluggable timing models)
        "ExecutionModel", "SerialModel", "PipelinedModel", "Schedule",
        "InstructionTiming", "SERIAL", "PIPELINED", "MODELS",
        "resolve_model",
        # faults / resilience
        "FaultPlan", "FaultInjector", "Injection", "Stall", "Crash",
        "BitFlip", "Deadline", "RetryPolicy", "ResilienceReport",
        "FailureRecord", "DegradationEvent", "CoverageLedger",
        "resolve_injector",
    ):
        assert name in sim.__all__, name
        assert hasattr(sim, name), name


def test_isa_exports_instruction_base():
    import repro.isa as isa

    for name in ("Instruction", "HW_MAX_REPEAT", "Region"):
        assert name in isa.__all__, name
        assert hasattr(isa, name), name


def test_errors_export_fault_exceptions():
    from repro import errors

    for name in ("CoreFailure", "DeadlineExceeded", "FaultInjectionError"):
        assert hasattr(errors, name), name
