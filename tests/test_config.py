"""Unit tests for the chip configuration and cost model."""

import pytest

from repro.config import (
    ASCEND910,
    ASCEND910_SINGLE_CORE,
    BufferSpec,
    ChipConfig,
    CostModel,
)


class TestChipConfig:
    def test_ascend910_has_32_cores(self):
        # Section VI: "an Ascend 910 chip, which contains 32 AI Cores".
        assert ASCEND910.num_cores == 32

    def test_counter_frequency(self):
        # "on-chip execution time running at a frequency of 100 MHz".
        assert ASCEND910.frequency_mhz == 100

    def test_single_core_variant(self):
        assert ASCEND910_SINGLE_CORE.num_cores == 1
        assert ASCEND910_SINGLE_CORE.ub_bytes == ASCEND910.ub_bytes

    def test_buffer_specs_names(self):
        specs = ASCEND910.buffer_specs()
        assert set(specs) == {"L1", "L0A", "L0B", "L0C", "UB"}

    def test_buffer_capacities(self):
        specs = ASCEND910.buffer_specs()
        assert specs["L1"].capacity_bytes == 1024 * 1024
        assert specs["UB"].capacity_bytes == 256 * 1024
        assert specs["L0A"].capacity_bytes == 64 * 1024
        assert specs["L0B"].capacity_bytes == 64 * 1024
        assert specs["L0C"].capacity_bytes == 256 * 1024

    def test_cube_buffers_fractal_aligned(self):
        specs = ASCEND910.buffer_specs()
        for name in ("L0A", "L0B", "L0C"):
            assert specs[name].alignment == 512  # one fractal

    def test_max_repeat_is_hw_limit(self):
        assert ASCEND910.max_repeat == 255

    def test_with_cost_replaces_only_named(self):
        cfg = ASCEND910.with_cost(issue_cycles=9)
        assert cfg.cost.issue_cycles == 9
        assert cfg.cost.dma_bytes_per_cycle == ASCEND910.cost.dma_bytes_per_cycle
        assert cfg.num_cores == ASCEND910.num_cores

    def test_with_cost_does_not_mutate_original(self):
        before = ASCEND910.cost.issue_cycles
        ASCEND910.with_cost(issue_cycles=before + 1)
        assert ASCEND910.cost.issue_cycles == before

    def test_configs_frozen(self):
        with pytest.raises(AttributeError):
            ASCEND910.num_cores = 8  # type: ignore[misc]


class TestCostModel:
    def test_defaults_positive(self):
        c = CostModel()
        for field in (
            "issue_cycles", "vector_repeat_cycles", "im2col_fractal_cycles",
            "col2im_fractal_cycles", "dma_latency_cycles",
            "dma_bytes_per_cycle", "local_bytes_per_cycle", "loop_cycles",
            "cube_mmad_cycles", "tile_launch_cycles",
        ):
            assert getattr(c, field) > 0, field

    def test_col2im_not_cheaper_than_vector_repeat(self):
        # A Col2Im fractal is a read-modify-write; it must cost at
        # least as much as a plain vector repeat.
        c = CostModel()
        assert c.col2im_fractal_cycles >= c.vector_repeat_cycles


class TestBufferSpec:
    def test_fields(self):
        spec = BufferSpec("X", 1024, alignment=64)
        assert spec.name == "X"
        assert spec.capacity_bytes == 1024
        assert spec.alignment == 64

    def test_default_alignment(self):
        assert BufferSpec("Y", 10).alignment == 32
