"""Multi-core scaling behaviour of the chip model and the
parallelization-aware tiling policy."""

import dataclasses

import numpy as np
import pytest

from repro.config import ASCEND910
from repro.ops import PoolSpec, forward_impl, run_forward
from repro.workloads import make_input


def cores(n):
    return dataclasses.replace(ASCEND910, num_cores=n)


class TestCoreScaling:
    @pytest.fixture(scope="class")
    def workload(self):
        # C1 = 4 slices: without row splitting only 4 cores would work.
        return make_input(47, 47, 64, seed=0), PoolSpec.square(3, 2)

    def test_makespan_scales_with_cores(self, workload):
        # Near-monotone: row chunking granularity can cost a few percent
        # at awkward core counts (e.g. 12 tiles on 8 cores), but doubling
        # cores must never lose more than that.
        x, spec = workload
        impl = forward_impl("im2col", "max")
        prev = None
        for n in (1, 2, 4, 8, 16, 32):
            cycles = run_forward(x, spec, impl, cores(n),
                                 collect_trace=False).cycles
            if prev is not None:
                assert cycles <= 1.05 * prev, f"{n} cores slower than fewer"
            prev = cycles
        one = run_forward(x, spec, impl, cores(1), collect_trace=False).cycles
        assert one / cycles > 8  # 32 cores buy nearly an order of magnitude

    def test_row_splitting_engages_idle_cores(self, workload):
        x, spec = workload
        impl = forward_impl("im2col", "max")
        res = run_forward(x, spec, impl, cores(32), collect_trace=False)
        # 4 slices alone could use 4 cores; the planner must have split
        # rows to reach well beyond that.
        assert res.chip.cores_used > 8

    def test_values_independent_of_core_count(self, workload):
        x, spec = workload
        impl = forward_impl("standard", "max")
        outs = [
            run_forward(x, spec, impl, cores(n), collect_trace=False).output
            for n in (1, 32)
        ]
        assert np.array_equal(outs[0], outs[1])

    def test_speedup_comparison_stable_across_core_counts(self, workload):
        # The paper's verdict must not depend on the core count.
        x, spec = workload
        for n in (1, 32):
            std = run_forward(x, spec, forward_impl("standard", "max"),
                              cores(n), collect_trace=False).cycles
            i2c = run_forward(x, spec, forward_impl("im2col", "max"),
                              cores(n), collect_trace=False).cycles
            assert std / i2c > 2.0, f"{n} cores"

    def test_total_work_roughly_conserved(self, workload):
        # Parallelism redistributes work; it must not erase it.  Extra
        # tiles cost halo re-loads and launches, so allow 2x slack.
        x, spec = workload
        impl = forward_impl("im2col", "max")
        one = run_forward(x, spec, impl, cores(1), collect_trace=False)
        many = run_forward(x, spec, impl, cores(32), collect_trace=False)
        assert many.chip.total_work_cycles < 2 * one.chip.total_work_cycles
        assert many.chip.total_work_cycles > one.chip.total_work_cycles / 2
