"""Tests for deterministic fault injection and resilient dispatch.

Covers the failure model (:mod:`repro.sim.faults`) and the recovery
machinery in :meth:`repro.sim.Chip.run_tiles` /
:meth:`run_tile_groups`: retry with backoff, reassignment, quarantine,
global-memory rollback, graceful degradation and the tile-coverage
ledger -- plus the zero-cost-when-idle contract.
"""

import numpy as np
import pytest

from repro.config import ASCEND910, ChipConfig
from repro.dtypes import FLOAT16
from repro.errors import (
    CoreFailure,
    DeadlineExceeded,
    FaultInjectionError,
    SimulationError,
)
from repro.isa import DataMove, Mask, MemRef, Program, VectorDup, VectorOperand
from repro.sim import (
    AICore,
    BitFlip,
    Chip,
    CoverageLedger,
    Crash,
    Deadline,
    FaultInjector,
    FaultPlan,
    GlobalMemory,
    ResilienceReport,
    RetryPolicy,
    Stall,
    resolve_injector,
)
from repro.sim.aicore import summarize

CFG2 = ChipConfig(num_cores=2)
CFG4 = ChipConfig(num_cores=4)
LAUNCH = CFG2.cost.tile_launch_cycles


def store_program(name="t", value=1.0, out="out", offset=0, accumulate=False):
    """dup ``value`` into UB then DMA it to global ``out``."""
    ub = MemRef("UB", 0, 128, FLOAT16)
    p = Program(name)
    p.emit(VectorDup(VectorOperand(ub), value, Mask.full(), 1))
    p.emit(DataMove(ub, MemRef(out, offset, 128, FLOAT16),
                    accumulate=accumulate))
    return p


def copy_program(name="c", src="x", dst="out"):
    """GM -> UB -> GM round trip (so a UB flip corrupts the output)."""
    ub = MemRef("UB", 0, 128, FLOAT16)
    p = Program(name)
    p.emit(DataMove(MemRef(src, 0, 128, FLOAT16), ub))
    p.emit(DataMove(ub, MemRef(dst, 0, 128, FLOAT16)))
    return p


def fresh_gm(*names):
    gm = GlobalMemory()
    for nm in names:
        gm.zeros(nm, 256, FLOAT16)
    return gm


class TestFaultValidation:
    def test_negative_tile_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan((Stall(tile=-1, cycles=5),))

    def test_negative_core_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan((Crash(tile=0, core=-2),))

    def test_empty_attempts_rejected(self):
        with pytest.raises(FaultInjectionError, match="attempts"):
            FaultPlan((Crash(tile=0, attempts=()),))

    def test_negative_attempt_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan((Stall(tile=0, cycles=5, attempts=(-1,)),))

    def test_zero_stall_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan((Stall(tile=0, cycles=0),))

    def test_bad_deadline_budget_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan((Deadline(tile=0, budget=0),))

    def test_negative_bitflip_fields_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan((BitFlip(tile=0, offset=-1),))
        with pytest.raises(FaultInjectionError):
            FaultPlan((BitFlip(tile=0, bit=-1),))
        with pytest.raises(FaultInjectionError):
            FaultPlan((BitFlip(tile=0, buffer=""),))

    def test_retry_policy_validation(self):
        with pytest.raises(FaultInjectionError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultInjectionError):
            RetryPolicy(backoff_factor=0)
        with pytest.raises(FaultInjectionError):
            RetryPolicy(quarantine_after=0)

    def test_injector_requires_plan(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector([Stall(0, 5)])  # list, not FaultPlan

    def test_resolve_injector_normalises(self):
        assert resolve_injector(None) is None
        plan = FaultPlan((Stall(0, 5),))
        inj = resolve_injector(plan)
        assert isinstance(inj, FaultInjector)
        assert resolve_injector(inj) is inj


class TestFaultPlanGenerate:
    def test_deterministic_per_seed(self):
        a = FaultPlan.generate(7, num_tiles=50, num_cores=4)
        b = FaultPlan.generate(7, num_tiles=50, num_cores=4)
        assert a == b
        assert a != FaultPlan.generate(8, num_tiles=50, num_cores=4)

    def test_faults_target_valid_tiles(self):
        plan = FaultPlan.generate(0, num_tiles=40, num_cores=4)
        assert plan.faults  # rate 0.35 over 40 tiles
        for f in plan.faults:
            assert 0 <= f.tile < 40
            assert f.core is None or 0 <= f.core < 4
            assert f.attempts in ((0,), (0, 1))

    def test_recoverable_by_construction(self):
        """Generated faults never fire on the default policy's last
        clean attempts (attempts 2 and 3)."""
        plan = FaultPlan.generate(3, num_tiles=80, num_cores=4)
        policy = RetryPolicy()
        for f in plan.faults:
            assert max(f.attempts) < policy.max_attempts - 1

    def test_rate_zero_empty(self):
        assert len(FaultPlan.generate(0, num_tiles=20, rate=0.0)) == 0

    def test_bad_args_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.generate(0, num_tiles=-1)
        with pytest.raises(FaultInjectionError):
            FaultPlan.generate(0, num_tiles=5, rate=1.5)


class TestInjectorMatching:
    def test_no_match_returns_none(self):
        inj = FaultInjector(FaultPlan((Stall(3, 10),)))
        assert inj.injection(0, 0, 0) is None
        assert inj.injection(3, 0, 1) is None  # attempts=(0,)

    def test_core_binding(self):
        inj = FaultInjector(FaultPlan((Crash(0, core=1),)))
        assert inj.injection(0, 0, 0) is None
        got = inj.injection(0, 1, 0)
        assert got is not None and got.crash_at == 0

    def test_attempts_none_fires_always(self):
        inj = FaultInjector(FaultPlan((Stall(0, 10, attempts=None),)))
        for attempt in range(5):
            assert inj.injection(0, 0, attempt).stall == 10

    def test_aggregation(self):
        plan = FaultPlan((
            Stall(0, 10), Stall(0, 5),
            Crash(0, at_instruction=9), Crash(0, at_instruction=4),
            Deadline(0, budget=100), Deadline(0, budget=50),
        ))
        got = FaultInjector(plan).injection(0, 0, 0)
        assert got.stall == 15
        assert got.crash_at == 4
        assert got.deadline == 50
        assert got.can_fail

    def test_stall_only_cannot_fail(self):
        got = FaultInjector(FaultPlan((Stall(0, 10),))).injection(0, 0, 0)
        assert not got.can_fail


class TestStall:
    def test_stall_slows_without_failing(self):
        progs = [store_program(f"t{i}", offset=128 * i) for i in range(2)]
        base = Chip(CFG2).run_tiles(progs, fresh_gm("out"))
        gm = fresh_gm("out")
        res = Chip(CFG2).run_tiles(
            progs, gm,
            faults=FaultPlan((Stall(0, cycles=77),)),
        )
        rep = res.resilience
        assert rep is not None
        assert rep.stall_cycles == 77 and rep.retries == 0
        assert not rep.failures
        assert res.total_work_cycles == base.total_work_cycles + 77
        assert np.all(gm.view("out")[:256] == 1.0)


class TestCrashRetry:
    def test_crash_retries_and_recovers(self):
        progs = [store_program(f"t{i}", offset=128 * i) for i in range(2)]
        gm = fresh_gm("out")
        res = Chip(CFG2).run_tiles(
            progs, gm, faults=FaultPlan((Crash(0, at_instruction=1),)),
        )
        rep = res.resilience
        assert rep.retries == 1
        assert rep.reassignments == 1  # moved to the other core
        assert rep.failures[0].error == "CoreFailure"
        assert rep.failures[0].tile == 0
        assert rep.backoff_cycles == RetryPolicy().backoff(1)
        assert np.all(gm.view("out")[:256] == 1.0)

    def test_crash_past_end_fires_after_last_instruction(self):
        gm = fresh_gm("out")
        core = AICore(CFG2)
        inj = FaultInjector(
            FaultPlan((Crash(0, at_instruction=99),))
        ).injection(0, 0, 0)
        with pytest.raises(CoreFailure, match="2/2"):
            core.run(store_program(), gm, injection=inj)
        # the whole program ran before the crash
        assert np.all(gm.view("out")[:128] == 1.0)

    def test_retry_exhaustion_raises(self):
        progs = [store_program()]
        with pytest.raises(SimulationError, match="retry budget"):
            Chip(CFG2).run_tiles(
                progs, fresh_gm("out"),
                faults=FaultPlan((Crash(0, attempts=None),)),
                retry=RetryPolicy(max_attempts=2),
            )

    def test_cycles_mode_crash_retries(self):
        progs = [store_program(f"t{i}") for i in range(2)]
        res = Chip(CFG2).run_tiles(
            progs, None, execute="cycles",
            faults=FaultPlan((Crash(1, at_instruction=0),)),
        )
        assert res.resilience.retries == 1
        base = Chip(CFG2).run_tiles(progs, None, execute="cycles")
        assert res.cycles >= base.cycles


class TestBitFlip:
    def test_detected_flip_recovers_bit_identical(self):
        gm = fresh_gm("x", "out")
        gm.view("x")[:128] = np.arange(128, dtype=np.float16)
        res = Chip(CFG2).run_tiles(
            [copy_program()], gm,
            faults=FaultPlan(
                (BitFlip(0, offset=3, bit=9, at_instruction=1),)
            ),
        )
        assert res.resilience.retries == 1
        assert res.resilience.failures[0].error == "CoreFailure"
        assert np.array_equal(
            gm.view("out")[:128], gm.view("x")[:128]
        )

    def test_undetected_flip_caught_by_oracle(self):
        """A silent flip propagates to the output -- which is exactly
        what the reference-oracle comparison exists to catch."""
        gm = fresh_gm("x", "out")
        gm.view("x")[:128] = np.arange(128, dtype=np.float16)
        res = Chip(CFG2).run_tiles(
            [copy_program()], gm,
            faults=FaultPlan(
                (BitFlip(0, offset=3, bit=9, at_instruction=1,
                         detected=False),)
            ),
        )
        assert res.resilience.retries == 0
        out = gm.view("out")[:128]
        assert not np.array_equal(out, gm.view("x")[:128])
        # exactly one element differs: the flipped one
        assert int(np.sum(out != gm.view("x")[:128])) == 1

    def test_unknown_buffer_rejected(self):
        gm = fresh_gm("out")
        with pytest.raises(FaultInjectionError, match="NOPE"):
            Chip(CFG2).run_tiles(
                [store_program()], gm,
                faults=FaultPlan((BitFlip(0, buffer="NOPE"),)),
            )


class TestDeadline:
    def test_tiny_budget_fails_then_recovers(self):
        gm = fresh_gm("out")
        res = Chip(CFG2).run_tiles(
            [store_program()], gm,
            faults=FaultPlan((Deadline(0, budget=1),)),
        )
        rep = res.resilience
        assert rep.retries == 1
        assert rep.failures[0].error == "DeadlineExceeded"
        assert np.all(gm.view("out")[:128] == 1.0)

    def test_generous_budget_never_fires(self):
        res = Chip(CFG2).run_tiles(
            [store_program()], fresh_gm("out"),
            faults=FaultPlan((Deadline(0, budget=10**9),)),
        )
        assert res.resilience.retries == 0
        assert not res.resilience.failures

    def test_stall_counts_against_budget(self):
        prog = store_program()
        cycles = summarize(prog, CFG2).cycles
        res = Chip(CFG2).run_tiles(
            [prog], fresh_gm("out"),
            faults=FaultPlan((
                Stall(0, cycles=cycles + 1, attempts=(0,)),
                Deadline(0, budget=2 * cycles, attempts=(0,)),
            )),
        )
        assert res.resilience.failures[0].error == "DeadlineExceeded"


class TestRollback:
    def test_accumulate_store_not_double_counted(self):
        """A crashed attempt's partial accumulate-DMA is rolled back, so
        the retry does not double-add."""
        gm = fresh_gm("out")
        prog = store_program(accumulate=True)
        res = Chip(CFG2).run_tiles(
            [prog], gm,
            # crash *after* the accumulate store retired
            faults=FaultPlan((Crash(0, at_instruction=2),)),
        )
        assert res.resilience.retries == 1
        assert np.all(gm.view("out")[:128] == 1.0)  # not 2.0


class TestQuarantineAndReassignment:
    def test_core_quarantined_after_k_failures(self):
        # tiles 0 and 2 land on core 0; make core 0 fail once per tile
        progs = [store_program(f"t{i}", offset=128 * i % 256)
                 for i in range(4)]
        gm = fresh_gm("out")
        res = Chip(CFG2).run_tiles(
            progs, gm,
            faults=FaultPlan((
                Crash(0, core=0), Crash(2, core=0),
            )),
            retry=RetryPolicy(quarantine_after=2),
        )
        rep = res.resilience
        assert rep.quarantined_cores == (0,)
        assert rep.retries == 2
        # after quarantine, later tiles placed on core 0 are reassigned
        assert rep.reassignments >= 2

    def test_single_core_chip_retries_in_place(self):
        cfg = ChipConfig(num_cores=1)
        gm = fresh_gm("out")
        res = Chip(cfg).run_tiles(
            [store_program()], gm,
            faults=FaultPlan((Crash(0, at_instruction=0),)),
        )
        rep = res.resilience
        assert rep.retries == 1 and rep.reassignments == 0
        assert np.all(gm.view("out")[:128] == 1.0)


class TestCoverageLedger:
    def test_double_completion_rejected(self):
        led = CoverageLedger()
        led.record(0)
        with pytest.raises(SimulationError, match="twice"):
            led.record(0, attempt=1)

    def test_audit_gap_rejected(self):
        led = CoverageLedger()
        led.record(0)
        led.record(2)
        with pytest.raises(SimulationError, match="missing \\[1\\]"):
            led.audit(3)

    def test_audit_unknown_rejected(self):
        led = CoverageLedger()
        led.record(5)
        with pytest.raises(SimulationError, match="unknown \\[5\\]"):
            led.audit(1)

    def test_audit_passes_exact_cover(self):
        led = CoverageLedger()
        for t in range(4):
            led.record(t, attempt=t % 2)
        led.audit(4)

    def test_corrupted_dispatch_caught_by_audit(self, monkeypatch):
        """A dispatcher bug that skips a tile's completion is caught by
        the audit, not silently returned."""
        from repro.sim import chip as chip_mod

        real = chip_mod._ResilientDispatch.run_item

        def skip_ledger(self, tile, core_id, prog, summary):
            if tile == 1:  # complete the tile but "forget" the record
                cid, res = real(self, tile, core_id, prog, summary)
                del self.ledger._completed[tile]
                return cid, res
            return real(self, tile, core_id, prog, summary)

        monkeypatch.setattr(
            chip_mod._ResilientDispatch, "run_item", skip_ledger
        )
        progs = [store_program(f"t{i}") for i in range(2)]
        with pytest.raises(SimulationError, match="audit"):
            Chip(CFG2).run_tiles(
                progs, fresh_gm("out"), retry=RetryPolicy(),
            )


class TestDegradation:
    def test_cached_to_fresh(self):
        """A summary built for a different program degrades to fresh
        accounting under the resilient dispatcher instead of aborting.
        """
        prog = store_program("real")
        wrong = summarize(Program("other"), CFG2)
        # historical path: hard error
        with pytest.raises(SimulationError, match="summary mismatch"):
            Chip(CFG2).run_tiles([prog], fresh_gm("out"),
                                 summaries=[wrong])
        # resilient path: degradation event + correct accounting
        res = Chip(CFG2).run_tiles(
            [prog], fresh_gm("out"), summaries=[wrong],
            retry=RetryPolicy(),
        )
        rep = res.resilience
        assert [d.kind for d in rep.degradations] == ["cached-to-fresh"]
        assert res.per_tile[0].cycles == summarize(prog, CFG2).cycles

    def test_pipelined_to_serial(self):
        gm = fresh_gm("out")
        res = Chip(CFG2).run_tiles(
            [store_program()], gm, model="pipelined",
            faults=FaultPlan((Crash(0, attempts=(0, 1)),)),
            retry=RetryPolicy(degrade_model_after=2),
        )
        rep = res.resilience
        kinds = [d.kind for d in rep.degradations]
        assert "pipelined-to-serial" in kinds
        assert rep.retries == 2
        # the final (serial) attempt still completed the tile
        assert np.all(gm.view("out")[:128] == 1.0)


class TestZeroCostWhenIdle:
    def test_no_faults_no_report(self):
        res = Chip(CFG2).run_tiles([store_program()], fresh_gm("out"))
        assert res.resilience is None

    def test_empty_plan_identical_cycles_clean_report(self):
        progs = [store_program(f"t{i}", offset=128 * i % 256)
                 for i in range(5)]
        base = Chip(CFG2).run_tiles(progs, fresh_gm("out"))
        gm = fresh_gm("out")
        res = Chip(CFG2).run_tiles(progs, gm, faults=FaultPlan(()))
        assert res.resilience is not None and res.resilience.clean
        assert res.cycles == base.cycles
        assert res.total_work_cycles == base.total_work_cycles
        assert res.per_core_cycles == base.per_core_cycles

    def test_groups_empty_plan_identical(self):
        g = [store_program(f"g{i}") for i in range(3)]
        base = Chip(CFG2).run_tile_groups([g, g], fresh_gm("out"))
        res = Chip(CFG2).run_tile_groups([g, g], fresh_gm("out"),
                                         retry=RetryPolicy())
        assert res.cycles == base.cycles
        assert res.per_core_cycles == base.per_core_cycles
        assert res.resilience.clean


class TestGroupedResilience:
    def test_reassigned_tile_drags_group(self):
        """After a mid-group failure moves the tile, the remainder of
        the group follows it (one-core serialisation preserved)."""
        g0 = [store_program(f"a{i}", offset=0) for i in range(3)]
        g1 = [store_program(f"b{i}", offset=128) for i in range(2)]
        gm = fresh_gm("out")
        res = Chip(CFG2).run_tile_groups(
            [g0, g1], gm,
            # tile index 1 = second program of group 0 (flat order)
            faults=FaultPlan((Crash(1, core=0),)),
        )
        rep = res.resilience
        assert rep.retries == 1 and rep.reassignments == 1
        assert np.all(gm.view("out")[:256] == 1.0)

    def test_determinism_same_plan_same_report(self):
        plan = FaultPlan.generate(11, num_tiles=6, num_cores=2)
        progs = [store_program(f"t{i}", offset=128 * (i % 2))
                 for i in range(6)]

        def once():
            gm = fresh_gm("out")
            res = Chip(CFG2).run_tiles(progs, gm, faults=plan)
            return res, gm.view("out").copy()

        (res_a, out_a), (res_b, out_b) = once(), once()
        assert res_a.resilience == res_b.resilience
        assert res_a.cycles == res_b.cycles
        assert res_a.per_core_cycles == res_b.per_core_cycles
        assert np.array_equal(out_a, out_b)


class TestResilienceReport:
    def test_extra_cycles_and_clean(self):
        rep = ResilienceReport(stall_cycles=5, backoff_cycles=7)
        assert rep.extra_cycles == 12 and not rep.clean
        assert ResilienceReport().clean

    def test_to_dict_round_trips_counters(self):
        import json

        res = Chip(CFG2).run_tiles(
            [store_program()], fresh_gm("out"),
            faults=FaultPlan((Crash(0, at_instruction=0),)),
        )
        payload = json.loads(json.dumps(res.resilience.to_dict()))
        assert payload["retries"] == 1
        assert payload["plan_faults"] == 1
        assert payload["failures"][0]["error"] == "CoreFailure"


class TestSilentOnlyPlans:
    """``FaultPlan.silent_only`` and the JIT-path flip applicator."""

    def test_silent_only_property(self):
        assert FaultPlan(faults=()).silent_only
        assert FaultPlan(
            (BitFlip(tile=0, detected=False),
             BitFlip(tile=1, detected=False)),
        ).silent_only
        # The BitFlip default models ECC memory (detected=True).
        assert not FaultPlan((BitFlip(tile=0),)).silent_only
        assert not FaultPlan((Crash(tile=0),)).silent_only
        assert not FaultPlan(
            (BitFlip(tile=0, detected=False), Stall(tile=0, cycles=4)),
        ).silent_only

    def test_apply_rejects_failing_injection(self):
        from repro.sim.faults import Injection, apply_silent_flips_to_gm

        inj = Injection(tile=0, core=0, attempt=0, crash_at=0)
        with pytest.raises(FaultInjectionError, match="undetected"):
            apply_silent_flips_to_gm(
                fresh_gm("out"), store_program(), inj, frozenset({"UB"})
            )

    def test_apply_rejects_programs_without_gm_writes(self):
        from repro.sim.faults import Injection, apply_silent_flips_to_gm

        ub = MemRef("UB", 0, 128, FLOAT16)
        p = Program("scratch-only")
        p.emit(VectorDup(VectorOperand(ub), 1.0, Mask.full(), 1))
        inj = Injection(
            tile=0, core=0, attempt=0,
            bitflips=(BitFlip(tile=0, detected=False),),
        )
        with pytest.raises(FaultInjectionError, match="writes no"):
            apply_silent_flips_to_gm(
                fresh_gm("out"), p, inj, frozenset({"UB"})
            )

    def test_apply_flips_exactly_one_bit(self):
        from repro.sim.faults import Injection, apply_silent_flips_to_gm

        gm = fresh_gm("out")
        before = gm.tensors["out"].view(np.uint16).copy()
        inj = Injection(
            tile=0, core=0, attempt=0,
            bitflips=(
                BitFlip(tile=0, offset=5, bit=3, detected=False),
            ),
        )
        apply_silent_flips_to_gm(
            gm, store_program(), inj, frozenset({"UB"})
        )
        diff = gm.tensors["out"].view(np.uint16) ^ before
        assert np.count_nonzero(diff) == 1
        assert diff[5] == 1 << 3

    def test_apply_offset_wraps_modulo_written_elements(self):
        from repro.sim.faults import Injection, apply_silent_flips_to_gm

        gm = fresh_gm("out")
        total = gm.tensors["out"].size
        flip = BitFlip(tile=0, offset=total + 2, bit=1, detected=False)
        inj = Injection(tile=0, core=0, attempt=0, bitflips=(flip,))
        apply_silent_flips_to_gm(
            gm, store_program(), inj, frozenset({"UB"})
        )
        diff = gm.tensors["out"].view(np.uint16)
        assert diff[2] == 1 << 1
        assert np.count_nonzero(diff) == 1
