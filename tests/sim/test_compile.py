"""The Program-to-NumPy JIT (:mod:`repro.sim.compile`).

Covers the compilation contract at every layer:

* hand-built programs run through a :class:`CompiledKernel` must be
  **bit-identical** to the per-instruction interpreter;
* one kernel serves every :meth:`~repro.isa.program.Program.relocate`
  clone of its template (relocation deltas read off the clone's
  anchored global-memory operands);
* non-compilable instructions fall back to the interpreter in program
  order (``supports_compile() == False`` and raised
  :class:`~repro.errors.CompileError` alike), accounted in
  :class:`KernelStats`;
* the mode is mutually exclusive with ``sanitize=`` and raw
  ``injection=`` at the core layer; at the chip layer *silent-only*
  fault plans (undetected :class:`BitFlip`) compose with the JIT
  (flips land on written global-memory tensors post-execute) while
  anything needing per-instruction boundaries raises a precise
  :class:`~repro.errors.PlanError`;
* kernel/program mismatches raise instead of silently mis-executing.

Whole-operator bit-identity is enforced end-to-end by
``python -m repro.validate --jit`` and the equivalence suites in
``tests/ops``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import ASCEND910, ChipConfig
from repro.dtypes import FLOAT16
from repro.errors import CompileError, IsaError, SimulationError
from repro.isa.instruction import Instruction
from repro.isa.mask import Mask
from repro.isa.operand import MemRef, VectorOperand
from repro.isa.program import Program
from repro.isa.scu import Col2ImStore, DataMove, Im2ColLoad, Im2ColParams
from repro.isa.vector import VADD, VADDS, VMAX, VectorDup
from repro.sim import (
    AICore,
    BitFlip,
    Chip,
    CompiledKernel,
    FaultPlan,
    GlobalMemory,
    RetryPolicy,
    compile_program,
)

DT = FLOAT16
CFG = ASCEND910
SMALL = ChipConfig(num_cores=2)


def _vop(buffer: str, offset: int, size: int = 128) -> VectorOperand:
    return VectorOperand(MemRef(buffer, offset, size, DT))


def _gm(n_x: int = 4096, n_out: int = 4096, seed: int = 0) -> GlobalMemory:
    rng = np.random.default_rng(seed)
    gm = GlobalMemory()
    gm.add("x", rng.standard_normal(n_x).astype(DT.np_dtype))
    gm.zeros("out", n_out, DT)
    return gm


def _run_both(program: Program, seed: int = 0):
    """Interpreter and JIT results of ``program`` on identical memory."""
    ref_gm = _gm(seed=seed)
    jit_gm = _gm(seed=seed)
    ref_core = AICore(CFG, DT)
    jit_core = AICore(CFG, DT)
    ref = ref_core.run(program, ref_gm)
    jit = jit_core.run(program, jit_gm, execute="jit")
    return ref, jit, ref_gm, jit_gm


def _sample_program() -> Program:
    """DMA in, dup, vector math, DMA out: every common record kind."""
    p = Program("sample-s0-t0")
    p.emit(DataMove(MemRef("x", 0, 512, DT), MemRef("UB", 0, 512, DT)))
    p.emit(VectorDup(_vop("UB", 512), 0.25, Mask.full(), repeat=2))
    p.emit(
        VMAX(
            _vop("UB", 1024), _vop("UB", 0), _vop("UB", 256),
            Mask.full(), repeat=2,
        )
    )
    p.emit(
        VADDS(
            _vop("UB", 1536), _vop("UB", 1024), 1.5, Mask.full(), repeat=2,
        )
    )
    p.emit(DataMove(MemRef("UB", 1536, 256, DT), MemRef("out", 64, 256, DT)))
    return p


# ---------------------------------------------------------------------------
# Bit identity on hand-built programs.
# ---------------------------------------------------------------------------

class TestBitIdentity:
    def test_mixed_program_matches_interpreter(self):
        p = _sample_program()
        ref, jit, ref_gm, jit_gm = _run_both(p)
        assert np.array_equal(ref_gm.view("out"), jit_gm.view("out"))
        assert ref.cycles == jit.cycles
        assert ref.instructions == jit.instructions

    def test_accumulate_dma(self):
        p = Program("acc-s0-t0")
        p.emit(DataMove(MemRef("x", 0, 128, DT), MemRef("UB", 0, 128, DT)))
        p.emit(
            DataMove(
                MemRef("UB", 0, 128, DT), MemRef("out", 0, 128, DT),
                accumulate=True,
            )
        )
        p.emit(
            DataMove(
                MemRef("UB", 0, 128, DT), MemRef("out", 0, 128, DT),
                accumulate=True,
            )
        )
        _, _, ref_gm, jit_gm = _run_both(p)
        assert np.array_equal(ref_gm.view("out"), jit_gm.view("out"))

    def test_im2col_col2im_round_trip(self):
        params = Im2ColParams(ih=6, iw=6, kh=2, kw=2, sh=2, sw=2, pr=1)
        rows = params.plane_rows()
        p = Program("scu-s0-t0")
        n_in = params.ih * params.iw * DT.c0
        p.emit(DataMove(MemRef("x", 0, n_in, DT), MemRef("UB", 0, n_in, DT)))
        src = MemRef("UB", 0, n_in, DT)
        for k, (xk, yk) in enumerate(
            (xk, yk) for yk in range(params.kh) for xk in range(params.kw)
        ):
            p.emit(
                Im2ColLoad(
                    src,
                    MemRef("UB", n_in + k * rows * DT.c0, rows * DT.c0, DT),
                    params, c1=0, xk=xk, yk=yk,
                    repeat=rows // 16, pad_value=-1.0,
                )
            )
        merge = MemRef("UB", n_in + 4 * rows * DT.c0, n_in, DT)
        p.emit(VectorDup(VectorOperand(merge), 0.0, Mask.full(),
                         repeat=n_in // 128))
        for k, (xk, yk) in enumerate(
            (xk, yk) for yk in range(params.kh) for xk in range(params.kw)
        ):
            p.emit(
                Col2ImStore(
                    MemRef("UB", n_in + k * rows * DT.c0, rows * DT.c0, DT),
                    merge, params, c1=0, xk=xk, yk=yk, repeat=rows // 16,
                )
            )
        p.emit(DataMove(merge, MemRef("out", 0, n_in, DT)))
        ref, jit, ref_gm, jit_gm = _run_both(p)
        assert np.array_equal(ref_gm.view("out"), jit_gm.view("out"))
        assert ref.cycles == jit.cycles

    def test_overlapping_vector_writes_stay_sequential(self):
        """Aliased dst/src repeats must replay the interpreter loop."""
        p = Program("alias-s0-t0")
        p.emit(DataMove(MemRef("x", 0, 256, DT), MemRef("UB", 0, 256, DT)))
        # rep_stride=0: every repeat writes the same 128 lanes, each
        # observing the previous repeat's result.
        p.emit(
            VADD(
                VectorOperand(MemRef("UB", 0, 128, DT), rep_stride=0),
                VectorOperand(MemRef("UB", 0, 128, DT), rep_stride=0),
                VectorOperand(MemRef("UB", 128, 128, DT), rep_stride=0),
                Mask.full(), repeat=3,
            )
        )
        p.emit(DataMove(MemRef("UB", 0, 128, DT), MemRef("out", 0, 128, DT)))
        _, _, ref_gm, jit_gm = _run_both(p)
        assert np.array_equal(ref_gm.view("out"), jit_gm.view("out"))

    def test_vmax_reduction_rewrite_is_exact(self):
        """The vmax repeat chain (dst rep_stride 0, src0 == dst) is the
        pooling reduction idiom; the ufunc.reduce rewrite must be
        bit-identical."""
        p = Program("reduce-s0-t0")
        p.emit(DataMove(MemRef("x", 0, 1024, DT), MemRef("UB", 128, 1024, DT)))
        p.emit(DataMove(MemRef("x", 1024, 128, DT), MemRef("UB", 0, 128, DT)))
        p.emit(
            VMAX(
                VectorOperand(MemRef("UB", 0, 128, DT), rep_stride=0),
                VectorOperand(MemRef("UB", 0, 128, DT), rep_stride=0),
                VectorOperand(MemRef("UB", 128, 1024, DT)),
                Mask.full(), repeat=8,
            )
        )
        p.emit(DataMove(MemRef("UB", 0, 128, DT), MemRef("out", 0, 128, DT)))
        _, _, ref_gm, jit_gm = _run_both(p)
        assert np.array_equal(ref_gm.view("out"), jit_gm.view("out"))


# ---------------------------------------------------------------------------
# Fusion shape.
# ---------------------------------------------------------------------------

class TestFusion:
    def test_adjacent_dma_rows_fuse_into_one_step(self):
        p = Program("rows-s0-t0")
        for r in range(8):
            p.emit(
                DataMove(
                    MemRef("x", r * 96, 64, DT),
                    MemRef("UB", r * 64, 64, DT),
                )
            )
        kernel = compile_program(p, CFG)
        assert kernel.stats.steps == 1
        assert kernel.stats.compiled == 8

    def test_same_value_dups_fuse(self):
        p = Program("dups-s0-t0")
        for r in range(4):
            p.emit(VectorDup(_vop("UB", r * 128), 0.5, Mask.full()))
        assert compile_program(p, CFG).stats.steps == 1

    def test_overlapping_copies_do_not_fuse(self):
        p = Program("overlap-s0-t0")
        # dst stride 32 < 64 elements: rows overlap, must stay separate
        # steps so later writes land after earlier ones.
        for r in range(4):
            p.emit(
                DataMove(
                    MemRef("x", r * 64, 64, DT),
                    MemRef("UB", r * 32, 64, DT),
                )
            )
        kernel = compile_program(p, CFG)
        assert kernel.stats.steps == 4
        p.emit(DataMove(MemRef("UB", 0, 160, DT), MemRef("out", 0, 160, DT)))
        _, _, ref_gm, jit_gm = _run_both(p)
        assert np.array_equal(ref_gm.view("out"), jit_gm.view("out"))

    def test_fused_kernel_is_bit_identical(self):
        p = Program("rows-s0-t0")
        for r in range(8):
            p.emit(
                DataMove(
                    MemRef("x", r * 96, 64, DT), MemRef("UB", r * 64, 64, DT)
                )
            )
        p.emit(DataMove(MemRef("UB", 0, 512, DT), MemRef("out", 0, 512, DT)))
        _, _, ref_gm, jit_gm = _run_both(p)
        assert np.array_equal(ref_gm.view("out"), jit_gm.view("out"))


# ---------------------------------------------------------------------------
# Relocation survival.
# ---------------------------------------------------------------------------

class TestRelocation:
    def test_one_kernel_serves_relocated_clones(self):
        template = _sample_program()
        kernel = compile_program(template, CFG)
        for delta in (0, 512, 1024):
            clone = template.relocate(
                {"x": delta, "out": delta},
                name=f"sample-s{delta // 512}-t0",
            )
            ref_gm, jit_gm = _gm(seed=7), _gm(seed=7)
            AICore(CFG, DT).run(clone, ref_gm)
            AICore(CFG, DT).run(
                clone, jit_gm, execute="jit", compiled=kernel
            )
            assert np.array_equal(ref_gm.view("out"), jit_gm.view("out"))

    def test_deltas_read_off_clone(self):
        template = _sample_program()
        kernel = compile_program(template, CFG)
        clone = template.relocate({"x": 256, "out": 640})
        assert kernel.deltas(clone) == {"x": 256, "out": 640}
        assert kernel.deltas(template) == {}

    def test_out_of_range_delta_raises(self):
        template = _sample_program()
        kernel = compile_program(template, CFG)
        clone = template.relocate({"out": 4096})  # escapes out's 4096
        gm = _gm()
        with pytest.raises(IsaError, match="escape"):
            AICore(CFG, DT).run(clone, gm, execute="jit", compiled=kernel)


# ---------------------------------------------------------------------------
# Interpreter fallback.
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class _Opaque(Instruction):
    """A scalar instruction the JIT cannot translate."""

    dst: MemRef
    unit = "scalar"

    def cycles(self, cost) -> int:
        return 1

    def execute(self, ctx) -> None:
        view = ctx.view(self.dst.buffer)
        view[self.dst.offset : self.dst.end] += 1.0


@dataclasses.dataclass(frozen=True)
class _Refusing(Instruction):
    """Opts into compile() but always refuses at compile time."""

    dst: MemRef
    unit = "scalar"

    def cycles(self, cost) -> int:
        return 1

    def execute(self, ctx) -> None:
        view = ctx.view(self.dst.buffer)
        view[self.dst.offset : self.dst.end] *= 2.0

    def supports_compile(self) -> bool:
        return True

    def compile(self, ctx) -> None:
        # emit something first: the compiler must roll it back
        ctx.emit_fill(
            self.dst, np.arange(self.dst.offset, self.dst.end),
            DT.np_dtype.type(0),
        )
        raise CompileError("data-dependent refusal")


class TestFallback:
    def test_unsupported_instruction_runs_via_interpreter(self):
        p = Program("fb-s0-t0")
        p.emit(DataMove(MemRef("x", 0, 128, DT), MemRef("UB", 0, 128, DT)))
        p.emit(_Opaque(MemRef("UB", 0, 128, DT)))
        p.emit(DataMove(MemRef("UB", 0, 128, DT), MemRef("out", 0, 128, DT)))
        kernel = compile_program(p, CFG)
        assert kernel.stats.fallbacks == 1
        assert kernel.stats.compiled == 2
        _, _, ref_gm, jit_gm = _run_both(p)
        assert np.array_equal(ref_gm.view("out"), jit_gm.view("out"))

    def test_compile_error_rolls_back_partial_records(self):
        p = Program("refuse-s0-t0")
        p.emit(DataMove(MemRef("x", 0, 128, DT), MemRef("UB", 0, 128, DT)))
        p.emit(_Refusing(MemRef("UB", 0, 128, DT)))
        p.emit(DataMove(MemRef("UB", 0, 128, DT), MemRef("out", 0, 128, DT)))
        kernel = compile_program(p, CFG)
        assert kernel.stats.fallbacks == 1
        _, _, ref_gm, jit_gm = _run_both(p)
        # the rolled-back emit_fill must not have left a zeroing step
        assert np.array_equal(ref_gm.view("out"), jit_gm.view("out"))

    def test_base_compile_raises_not_implemented(self):
        with pytest.raises(NotImplementedError, match="supports_compile"):
            _Opaque(MemRef("UB", 0, 128, DT)).compile(None)

    def test_stats_shape(self):
        p = _sample_program()
        kernel = compile_program(p, CFG)
        s = kernel.stats
        assert s.instructions == len(p)
        assert s.compiled == len(p)
        assert s.fallbacks == 0
        assert 1 <= s.steps <= len(p)


# ---------------------------------------------------------------------------
# Mode exclusivity and mismatch guards.
# ---------------------------------------------------------------------------

class TestGuards:
    def test_jit_rejects_sanitize(self):
        core = AICore(CFG, DT)
        with pytest.raises(SimulationError, match="sanitized"):
            core.run(_sample_program(), _gm(), execute="jit", sanitize=True)

    def test_jit_rejects_injection(self):
        from repro.sim.faults import Injection

        core = AICore(CFG, DT)
        inj = Injection(
            tile=0, core=0, attempt=0, bitflips=(BitFlip(tile=0),)
        )
        with pytest.raises(SimulationError, match="injection"):
            core.run(
                _sample_program(), _gm(), execute="jit", injection=inj
            )

    def test_compiled_requires_jit_mode(self):
        core = AICore(CFG, DT)
        kernel = compile_program(_sample_program(), CFG)
        with pytest.raises(SimulationError, match="execute='jit'"):
            core.run(_sample_program(), _gm(), compiled=kernel)

    def test_chip_rejects_jit_with_nonsilent_faults(self):
        from repro.errors import PlanError
        from repro.sim.faults import Crash

        chip = Chip(SMALL, DT)
        with pytest.raises(PlanError, match=r"fault kinds: Crash"):
            chip.run_tiles(
                [_sample_program()], _gm(), execute="jit",
                faults=FaultPlan(faults=(Crash(tile=0),)),
            )
        with pytest.raises(PlanError, match=r"BitFlip\(detected=True\)"):
            chip.run_tiles(
                [_sample_program()], _gm(), execute="jit",
                faults=FaultPlan(faults=(BitFlip(tile=0, detected=True),)),
            )
        with pytest.raises(PlanError, match="resilient retry"):
            chip.run_tiles(
                [_sample_program()], _gm(), execute="jit",
                retry=RetryPolicy(),
            )

    def test_chip_jit_allows_silent_fault_plans(self):
        chip = Chip(SMALL, DT)
        # Empty plans are trivially silent-only; no faults fire.
        res = chip.run_tiles(
            [_sample_program()], _gm(), execute="jit",
            faults=FaultPlan(faults=()),
        )
        assert res.resilience is not None
        assert res.resilience.plan_faults == 0
        # A silent BitFlip corrupts the JIT output deterministically:
        # same plan twice -> identical bytes, differing from fault-free.
        clean = chip.run_tiles([_sample_program()], _gm(), execute="jit")
        plan = FaultPlan(
            faults=(BitFlip(tile=0, offset=3, bit=2, detected=False),)
        )
        g1, g2 = _gm(), _gm()
        r1 = chip.run_tiles([_sample_program()], g1, execute="jit",
                            faults=plan)
        r2 = chip.run_tiles([_sample_program()], g2, execute="jit",
                            faults=plan)
        assert r1.resilience is not None
        assert r1.resilience.plan_faults == 1
        assert r1.cycles == clean.cycles  # silent: no retry, no stall
        np.testing.assert_array_equal(g1.tensors["out"], g2.tensors["out"])

    def test_chip_rejects_compiled_without_jit(self):
        chip = Chip(SMALL, DT)
        kernel = compile_program(_sample_program(), CFG)
        with pytest.raises(SimulationError, match="execute='jit'"):
            chip.run_tiles([_sample_program()], _gm(), compiled=[kernel])

    def test_chip_rejects_mismatched_kernel_count(self):
        chip = Chip(SMALL, DT)
        kernel = compile_program(_sample_program(), CFG)
        with pytest.raises(SimulationError, match="compiled"):
            chip.run_tiles(
                [_sample_program()], _gm(), execute="jit",
                compiled=[kernel, kernel],
            )

    def test_kernel_rejects_wrong_program(self):
        kernel = compile_program(_sample_program(), CFG)
        other = Program("other-s0-t0")
        other.emit(
            DataMove(MemRef("x", 0, 32, DT), MemRef("UB", 0, 32, DT))
        )
        core = AICore(CFG, DT)
        with pytest.raises(SimulationError, match="mismatch"):
            core.run(other, _gm(), execute="jit", compiled=kernel)

    def test_kernel_rejects_same_length_different_name(self):
        p = _sample_program()
        kernel = compile_program(p, CFG)
        renamed = Program("imposter-s0-t0", list(p.instructions))
        core = AICore(CFG, DT)
        with pytest.raises(SimulationError, match="mismatch"):
            core.run(renamed, _gm(), execute="jit", compiled=kernel)

    def test_slice_clones_share_canonical_name(self):
        p = _sample_program()
        kernel = compile_program(p, CFG)
        clone = p.relocate({"x": 0}, name="sample-s9-t0")
        core = AICore(CFG, DT)
        core.run(clone, _gm(), execute="jit", compiled=kernel)  # no raise


# ---------------------------------------------------------------------------
# Chip-level dispatch.
# ---------------------------------------------------------------------------

class TestChipDispatch:
    def test_run_tiles_jit_matches_numeric(self):
        progs = [
            _sample_program().relocate(
                {"x": 512 * s, "out": 512 * s}, name=f"sample-s{s}-t0"
            )
            for s in range(4)
        ]
        ref_gm, jit_gm = _gm(seed=11), _gm(seed=11)
        ref = Chip(SMALL, DT).run_tiles(list(progs), ref_gm)
        jit = Chip(SMALL, DT).run_tiles(list(progs), jit_gm, execute="jit")
        assert np.array_equal(ref_gm.view("out"), jit_gm.view("out"))
        assert ref.cycles == jit.cycles
        assert ref.total_work_cycles == jit.total_work_cycles

    def test_run_tiles_accepts_precompiled_kernels(self):
        template = _sample_program()
        kernel = compile_program(template, CFG)
        progs = [
            template.relocate(
                {"x": 512 * s, "out": 512 * s}, name=f"sample-s{s}-t0"
            )
            for s in range(3)
        ]
        ref_gm, jit_gm = _gm(seed=13), _gm(seed=13)
        Chip(SMALL, DT).run_tiles(list(progs), ref_gm)
        Chip(SMALL, DT).run_tiles(
            list(progs), jit_gm, execute="jit", compiled=[kernel] * 3
        )
        assert np.array_equal(ref_gm.view("out"), jit_gm.view("out"))
