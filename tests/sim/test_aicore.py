"""Tests for the AI Core executor."""

import numpy as np
import pytest

from repro.config import ASCEND910
from repro.errors import SimulationError
from repro.isa import (
    DataMove,
    Mask,
    MemRef,
    Program,
    VADD,
    VectorDup,
    VectorOperand,
)
from repro.dtypes import FLOAT16
from repro.sim import AICore, GlobalMemory


def simple_program(core):
    d = core.alloc("UB", 128)
    prog = Program("t")
    prog.emit(VectorDup(VectorOperand(d), 1.5, Mask.full(), 1))
    return prog, d


class TestAICore:
    def test_buffers_present(self, core):
        assert set(core.buffers) == {"L1", "L0A", "L0B", "L0C", "UB"}

    def test_run_returns_cycles_and_trace(self, core, gm):
        prog, _ = simple_program(core)
        res = core.run(prog, gm)
        assert res.cycles == prog.static_cycles(ASCEND910.cost)
        assert res.instructions == 1
        assert res.trace.issues("vector_dup") == 1

    def test_trace_disabled(self, core, gm):
        prog, _ = simple_program(core)
        res = core.run(prog, gm, collect_trace=False)
        assert res.trace.issues() == 0
        assert res.cycles > 0

    def test_gm_access_requires_attachment(self, core):
        # view() outside run() must not silently read stale memory
        with pytest.raises(SimulationError):
            core.view("some_gm_tensor")

    def test_gm_detached_after_run(self, core, gm):
        gm.add("x", np.zeros(4, np.float16))
        prog, _ = simple_program(core)
        core.run(prog, gm)
        with pytest.raises(SimulationError):
            core.view("x")

    def test_scalar_loop_trips_in_cycles(self, core, gm):
        prog, _ = simple_program(core)
        base = core.run(prog, gm).cycles
        prog.scalar_loop_trips = 100
        assert core.run(prog, gm).cycles == base + 100 * ASCEND910.cost.loop_cycles

    def test_reset_allocations(self, core):
        core.alloc("UB", 1000)
        core.reset_allocations()
        r = core.alloc("UB", 1000)
        assert r.offset == 0

    def test_vector_utilization_reported(self, core, gm):
        d = core.alloc("UB", 256)
        s = core.alloc("UB", 256)
        prog = Program("t")
        prog.emit(VADD(VectorOperand(d), VectorOperand(d),
                       VectorOperand(s), Mask.first(16), 1))
        res = core.run(prog, gm)
        assert res.vector_lane_utilization == pytest.approx(0.125)

    def test_failed_instruction_detaches_gm(self, core, gm):
        bad = Program("bad")
        huge = MemRef("UB", ASCEND910.ub_bytes, 128, FLOAT16)
        bad.emit(VectorDup(VectorOperand(huge), 0.0, Mask.full(), 1))
        with pytest.raises(Exception):
            core.run(bad, gm)
        with pytest.raises(SimulationError):
            core.view("anything")


class TestSummaryGuard:
    """``AICore.run`` must reject a precomputed summary that belongs to
    a *different* program instead of silently reporting its cycles."""

    def _two_programs(self, core):
        prog, _ = simple_program(core)
        other = Program("other")
        d = core.alloc("UB", 256)
        s = core.alloc("UB", 256)
        other.emit(VADD(VectorOperand(d), VectorOperand(d),
                        VectorOperand(s), Mask.full(), 1))
        other.emit(VADD(VectorOperand(d), VectorOperand(d),
                        VectorOperand(s), Mask.full(), 1))
        return prog, other

    def test_matching_summary_accepted(self, core, gm):
        from repro.sim import summarize

        prog, _ = simple_program(core)
        summary = summarize(prog, ASCEND910)
        res = core.run(prog, gm, execute="cycles", summary=summary)
        assert res is summary

    def test_instruction_count_mismatch_raises(self, core, gm):
        from repro.sim import summarize

        prog, other = self._two_programs(core)
        summary = summarize(other, ASCEND910)
        with pytest.raises(SimulationError, match="summary"):
            core.run(prog, gm, execute="cycles", summary=summary)

    def test_name_mismatch_raises(self, core, gm):
        from repro.sim import summarize

        prog, other = self._two_programs(core)
        # Same instruction count, different program name.
        renamed = Program("imposter")
        renamed.instructions = list(prog.instructions)
        summary = summarize(renamed, ASCEND910)
        with pytest.raises(SimulationError, match="summary"):
            core.run(prog, gm, execute="cycles", summary=summary)

    def test_relocated_slice_names_are_canonical(self, core, gm):
        """A summary computed from slice 0's program must be accepted
        for the relocated clone of slice 3 (same tile geometry)."""
        from repro.sim import summarize

        d = core.alloc("UB", 128)
        prog = Program("maxpool-s0-t0")
        prog.emit(VectorDup(VectorOperand(d), 1.5, Mask.full(), 1))
        summary = summarize(prog, ASCEND910)
        clone = prog.relocate({}, name="maxpool-s3-t0")
        res = core.run(clone, gm, execute="cycles", summary=summary)
        assert res is summary


class TestLaneUtilizationGuard:
    """``RunResult.vector_lane_utilization`` must refuse to answer for
    a trace that was never collected -- an empty record list would
    silently read as "no vector instructions"."""

    def test_uncollected_trace_raises(self, core, gm):
        d = core.alloc("UB", 256)
        s = core.alloc("UB", 256)
        prog = Program("t")
        prog.emit(VADD(VectorOperand(d), VectorOperand(d),
                       VectorOperand(s), Mask.first(16), 1))
        res = core.run(prog, gm, collect_trace=False)
        with pytest.raises(SimulationError, match="collect"):
            res.vector_lane_utilization

    def test_no_vector_instructions_is_none(self, core, gm):
        d = core.alloc("UB", 64)
        prog = Program("dma-only")
        prog.emit(DataMove(MemRef("x", 0, 64, FLOAT16), d))
        gm.add("x", np.zeros(64, np.float16))
        res = core.run(prog, gm)
        assert res.vector_lane_utilization is None


class TestSummaryGuardAcrossModels:
    """The summary-mismatch guard is model-independent: both timing
    models reject a summary built for a different program, and both
    accept the canonicalised relocated-slice name."""

    @pytest.mark.parametrize("model", ["serial", "pipelined"])
    def test_mismatch_rejected(self, core, gm, model):
        from repro.sim import summarize

        prog = Program("a")
        d = core.alloc("UB", 128)
        prog.emit(VectorDup(VectorOperand(d), 1.0, Mask.full(), 1))
        other = Program("b")
        other.emit(VectorDup(VectorOperand(d), 1.0, Mask.full(), 1))
        other.emit(VectorDup(VectorOperand(d), 2.0, Mask.full(), 1))
        summary = summarize(other, ASCEND910, model=model)
        with pytest.raises(SimulationError, match="summary"):
            core.run(prog, gm, execute="cycles", summary=summary,
                     model=model)

    @pytest.mark.parametrize("model", ["serial", "pipelined"])
    def test_canonical_slice_name_accepted(self, core, gm, model):
        from repro.sim import summarize

        d = core.alloc("UB", 128)
        prog = Program("pool-s0-t2")
        prog.emit(VectorDup(VectorOperand(d), 1.5, Mask.full(), 1))
        summary = summarize(prog, ASCEND910, model=model)
        clone = prog.relocate({}, name="pool-s7-t2")
        res = core.run(clone, gm, execute="cycles", summary=summary,
                       model=model)
        assert res is summary

    @pytest.mark.parametrize("model", ["serial", "pipelined"])
    def test_different_tile_slot_rejected(self, core, gm, model):
        """Only the slice token is canonicalised; a different tile index
        is a different program."""
        from repro.sim import summarize

        d = core.alloc("UB", 128)
        prog = Program("pool-s0-t2")
        prog.emit(VectorDup(VectorOperand(d), 1.5, Mask.full(), 1))
        summary = summarize(prog, ASCEND910, model=model)
        other = Program("pool-s0-t3")
        other.emit(VectorDup(VectorOperand(d), 1.5, Mask.full(), 1))
        with pytest.raises(SimulationError, match="summary"):
            core.run(other, gm, execute="cycles", summary=summary,
                     model=model)
