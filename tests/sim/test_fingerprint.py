"""Unit tests for result fingerprinting (:mod:`repro.sim.fingerprint`).

The digest underwrites the serve layer's silent-corruption detection,
so the properties that matter are pinned here without any fleet: every
bit of every component perturbs it, absence and emptiness are distinct,
and the value is a pure function of the result bytes (stable across
processes, layouts and repeated calls).
"""

from __future__ import annotations

import numpy as np

from repro.sim import FINGERPRINT_VERSION, fingerprint_arrays, fingerprint_result


def _out(seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((1, 2, 4, 4, 16)).astype(np.float16)


def _mask(seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 9, size=(1, 2, 4, 4, 16)).astype(np.uint8)


class TestFingerprintArrays:
    def test_stable_across_calls_and_copies(self):
        a, m = _out(), _mask()
        fp = fingerprint_arrays(a, m, 1234)
        assert fingerprint_arrays(a.copy(), m.copy(), 1234) == fp
        assert fingerprint_arrays(a, m, 1234) == fp

    def test_noncontiguous_layout_is_normalized(self):
        a = _out()
        strided = np.ascontiguousarray(a)[:, :, ::2, :, :][:, :, :, ::2, :]
        assert fingerprint_arrays(strided, None, 7) == fingerprint_arrays(
            strided.copy(order="C"), None, 7
        )

    def test_every_component_perturbs(self):
        a, m = _out(), _mask()
        base = fingerprint_arrays(a, m, 1000)
        flipped = a.copy()
        flipped.view(np.uint16).reshape(-1)[5] ^= 1
        assert fingerprint_arrays(flipped, m, 1000) != base
        m2 = m.copy()
        m2.reshape(-1)[3] ^= 0b100
        assert fingerprint_arrays(a, m2, 1000) != base
        assert fingerprint_arrays(a, m, 1001) != base

    def test_sign_flip_on_zero_is_corruption(self):
        # -0.0 == 0.0 numerically, but the digest works on bytes: a
        # flipped sign bit on a zero must not go unnoticed.
        z = np.zeros((4, 16), dtype=np.float16)
        nz = z.copy()
        nz.view(np.uint16)[0, 0] ^= 0x8000
        assert np.array_equal(z, nz)
        assert fingerprint_arrays(z, None, 0) != fingerprint_arrays(
            nz, None, 0
        )

    def test_absent_distinct_from_empty(self):
        empty = np.zeros((0,), dtype=np.float16)
        assert fingerprint_arrays(None, None, 0) != fingerprint_arrays(
            empty, None, 0
        )
        a = _out()
        assert fingerprint_arrays(a, None, 0) != fingerprint_arrays(
            a, np.zeros((0,), dtype=np.uint8), 0
        )

    def test_dtype_and_shape_are_part_of_identity(self):
        raw = np.zeros(64, dtype=np.float16)
        as_u16 = raw.view(np.uint16)
        assert raw.tobytes() == as_u16.tobytes()
        assert fingerprint_arrays(raw, None, 0) != fingerprint_arrays(
            as_u16, None, 0
        )
        assert fingerprint_arrays(raw, None, 0) != fingerprint_arrays(
            raw.reshape(8, 8), None, 0
        )

    def test_output_and_mask_slots_do_not_commute(self):
        a = _mask(3)  # same dtype/shape in both slots
        b = _mask(4)
        assert fingerprint_arrays(a, b, 0) != fingerprint_arrays(b, a, 0)

    def test_version_tag_seeds_the_digest(self):
        # Pin the encoding version: bumping it must change every digest
        # (stored goldens cannot match across schemes).
        assert FINGERPRINT_VERSION == 1


class TestFingerprintResult:
    def test_matches_arrays_digest_on_real_result(self):
        from repro.ops import PoolSpec, maxpool

        x = _out(7)
        res = maxpool(x, PoolSpec.square(2, 2), with_mask=True)
        fp = fingerprint_result(res)
        assert fp == fingerprint_arrays(res.output, res.mask, res.cycles)
        # Detaching drops traces, never the fingerprinted payload.
        assert fingerprint_result(res.detach()) == fp
