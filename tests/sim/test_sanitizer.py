"""Tests for the ISA-level memory sanitizer.

Three layers:

* clean kernels stay clean (and the sanitizer never perturbs numerics
  or cycles);
* *mutation* tests -- deliberately corrupted kernels (shrunk
  allocation, skipped input DMA, widened repeat stride, swapped
  dependent instructions, lying ``writes()`` declaration) must each
  trip their violation class with a diagnostic naming the program,
  instruction index and byte range;
* the race auditor and the strict-mode stale-read regression
  (scratch-pads are intentionally never cleared between tiles -- strict
  mode is what catches kernels that rely on it).
"""

import dataclasses

import numpy as np
import pytest

from repro.config import ASCEND910, ASCEND910_SINGLE_CORE
from repro.dtypes import FLOAT16
from repro.errors import SanitizerError, SimulationError
from repro.isa import (
    DataMove,
    Mask,
    MemRef,
    Program,
    VADD,
    VectorDup,
    VectorOperand,
)
from repro.ops import PoolSpec, forward_impl, run_forward
from repro.ops.base import TileContext
from repro.plan import TileGeom
from repro.sim import (
    AICore,
    Chip,
    GlobalMemory,
    POISON_VALUE,
    Sanitizer,
    SanitizerReport,
    audit_races,
    resolve_sanitizer,
)
from repro.sim.sanitizer import BufferCoverage
from repro.sim.trace import Trace, TraceRecord
from repro.tik import KernelBuilder
from repro.workloads import make_input

C0 = FLOAT16.c0


def build_pool_kernel(ih=9, iw=9, spec=None, name="im2col-max"):
    """One real forward tile program (im2col MaxPool) plus its GM."""
    spec = spec or PoolSpec.square(3, 2)
    params = spec.with_image(ih, iw)
    oh, ow = params.out_hw()
    b = KernelBuilder(ASCEND910, FLOAT16, name=name)
    ctx = TileContext(
        builder=b,
        geom=TileGeom(oh0=0, oh1=oh, ih0=0, ih1=ih, params=params),
        spec=spec,
        dtype=FLOAT16,
        gm_in=MemRef("x", 0, ih * iw * C0, FLOAT16),
        gm_out=MemRef("out", 0, oh * ow * C0, FLOAT16),
    )
    forward_impl("im2col", "max").build_tile(ctx)
    gm = GlobalMemory()
    rng = np.random.default_rng(7)
    gm.add("x", rng.standard_normal(ih * iw * C0).astype(np.float16))
    gm.add("out", np.zeros(oh * ow * C0, np.float16))
    return b.program, gm


def run_sanitized(program, gm, halt=True):
    core = AICore(ASCEND910)
    san = Sanitizer(ASCEND910, halt=halt)
    res = core.run(program, gm, sanitize=san)
    return res, san


class TestCleanKernel:
    def test_clean_run_attaches_report(self):
        prog, gm = build_pool_kernel()
        res, san = run_sanitized(prog, gm)
        assert res.sanitizer is san.report
        assert res.sanitizer.clean
        assert res.sanitizer.programs == 1
        assert res.sanitizer.checked_instructions == len(prog)

    def test_sanitizer_never_perturbs(self):
        prog, gm = build_pool_kernel()
        base = AICore(ASCEND910).run(prog, gm)
        out_base = gm.view("out").copy()

        prog2, gm2 = build_pool_kernel()
        res, _ = run_sanitized(prog2, gm2)
        assert np.array_equal(gm2.view("out"), out_base)
        assert res.cycles == base.cycles
        assert res.instructions == base.instructions

    def test_coverage_statistics(self):
        prog, gm = build_pool_kernel()
        res, _ = run_sanitized(prog, gm)
        cov = res.sanitizer.coverage["UB"]
        assert cov.declared_bytes > 0
        assert cov.declared_bytes <= cov.capacity_bytes
        assert cov.high_water_bytes >= cov.declared_bytes // 2
        assert 0 < cov.initialized_bytes <= cov.declared_bytes
        # The manifest footprint must agree with the builder.
        declared_ub = sum(
            r.size for r in prog.allocations["UB"].values()
        ) * FLOAT16.itemsize
        assert cov.declared_bytes == declared_ub

    def test_default_run_has_no_report(self):
        prog, gm = build_pool_kernel()
        res = AICore(ASCEND910).run(prog, gm)
        assert res.sanitizer is None

    def test_poison_fill_on_begin(self):
        core = AICore(ASCEND910)
        san = Sanitizer(ASCEND910)
        prog, _ = build_pool_kernel()
        san.begin_program(core, prog)
        assert np.all(core.buffers["UB"].data == np.float16(POISON_VALUE))


class TestModeGuards:
    def test_cycles_mode_rejected(self):
        prog, gm = build_pool_kernel()
        with pytest.raises(SimulationError, match="numeric"):
            AICore(ASCEND910).run(prog, gm, execute="cycles", sanitize=True)

    def test_chip_rejects_faults_with_sanitize(self):
        from repro.sim import FaultPlan

        prog, gm = build_pool_kernel()
        chip = Chip(ASCEND910_SINGLE_CORE)
        with pytest.raises(SimulationError, match="mutually exclusive"):
            chip.run_tiles(
                [prog], gm, sanitize=True, faults=FaultPlan(seed=0),
            )

    def test_chip_rejects_cycles_with_sanitize(self):
        prog, gm = build_pool_kernel()
        chip = Chip(ASCEND910_SINGLE_CORE)
        with pytest.raises(SimulationError, match="numeric"):
            chip.run_tiles([prog], gm, execute="cycles", sanitize=True)

    def test_resolve_sanitizer(self):
        assert resolve_sanitizer(None, ASCEND910) is None
        assert resolve_sanitizer(False, ASCEND910) is None
        fresh = resolve_sanitizer(True, ASCEND910)
        assert isinstance(fresh, Sanitizer) and fresh.halt
        inst = Sanitizer(ASCEND910, halt=False)
        assert resolve_sanitizer(inst, ASCEND910) is inst


class TestMutationsDetected:
    """Each corrupted-kernel class must be caught with a diagnostic
    naming the program, the instruction index and the byte range."""

    def _assert_diagnostic(self, msg, program_name):
        assert program_name in msg
        assert "instruction " in msg
        assert "bytes [" in msg

    def test_shrunk_allocation_is_bounds_violation(self):
        prog, gm = build_pool_kernel(name="shrunk")
        # Halve the largest UB allocation in the manifest: operands
        # built against the original size now run past the region.
        refs = prog.allocations["UB"]
        victim = max(refs, key=lambda k: refs[k].size)
        refs[victim] = dataclasses.replace(
            refs[victim], size=max(C0, refs[victim].size // 2)
        )
        with pytest.raises(SanitizerError, match="bounds") as exc:
            run_sanitized(prog, gm)
        self._assert_diagnostic(str(exc.value), "shrunk")

    def test_skipped_input_dma_is_uninit_read(self):
        prog, gm = build_pool_kernel(name="skipdma")
        idx = next(
            i for i, ins in enumerate(prog.instructions)
            if isinstance(ins, DataMove) and ins.src.buffer == "x"
        )
        del prog.instructions[idx]
        with pytest.raises(
            SanitizerError, match="uninit-read|poison-read"
        ) as exc:
            run_sanitized(prog, gm)
        self._assert_diagnostic(str(exc.value), "skipdma")

    def test_widened_repeat_stride_is_bounds_violation(self):
        prog, gm = build_pool_kernel(name="stride")
        # Widen the addressing stride of the first vector operand we
        # find: its element set now escapes the live allocation.
        for ins in prog.instructions:
            field = next(
                (
                    f.name
                    for f in dataclasses.fields(ins)
                    if isinstance(getattr(ins, f.name), VectorOperand)
                ),
                None,
            )
            if field is None:
                continue
            op = getattr(ins, field)
            attr = "rep_stride" if getattr(ins, "repeat", 1) > 1 else (
                "blk_stride"
            )
            object.__setattr__(op, attr, getattr(op, attr) + 512)
            break
        else:  # pragma: no cover - pooling kernels always vectorise
            pytest.fail("no vector operand found")
        with pytest.raises(SanitizerError, match="bounds") as exc:
            run_sanitized(prog, gm)
        self._assert_diagnostic(str(exc.value), "stride")

    def test_swapped_dependent_instructions_is_uninit_read(self):
        b = KernelBuilder(ASCEND910, FLOAT16, name="swapped")
        src = b.alloc("UB", 128, "in")
        dst = b.alloc("UB", 128, "result")
        b.dma(MemRef("x", 0, 128, FLOAT16), src)
        b.program.emit(
            VADD(
                VectorOperand(dst), VectorOperand(src),
                VectorOperand(src), Mask.full(), 1,
            )
        )
        ins = b.program.instructions
        ins[0], ins[1] = ins[1], ins[0]  # consumer before producer
        gm = GlobalMemory()
        gm.add("x", np.ones(128, np.float16))
        with pytest.raises(SanitizerError, match="uninit-read") as exc:
            run_sanitized(b.program, gm)
        msg = str(exc.value)
        self._assert_diagnostic(msg, "swapped")
        assert "instruction 0" in msg

    def test_undeclared_write_detected(self):
        class LyingDup(VectorDup):
            """A ``vector_dup`` whose ``writes()`` hides its store."""

            def writes(self):
                return []

        prog = Program("liar")
        ref = MemRef("UB", 0, 128, FLOAT16)
        prog.emit(LyingDup(VectorOperand(ref), 2.0, Mask.full(), 1))
        gm = GlobalMemory()
        with pytest.raises(SanitizerError, match="undeclared-write") as exc:
            run_sanitized(prog, gm)
        self._assert_diagnostic(str(exc.value), "liar")

    def test_nonhalting_mode_collects_violations(self):
        prog, gm = build_pool_kernel(name="collect")
        refs = prog.allocations["UB"]
        victim = max(refs, key=lambda k: refs[k].size)
        refs[victim] = dataclasses.replace(
            refs[victim], size=max(C0, refs[victim].size // 2)
        )
        res, san = run_sanitized(prog, gm, halt=False)
        assert not san.report.clean
        assert res.sanitizer is san.report
        v = san.report.violations[0]
        assert v.kind == "bounds"
        assert v.program == "collect"
        assert v.instruction >= 0
        assert v.stop_byte > v.start_byte


class TestOutOfManifestAccess:
    def test_unallocated_buffer_access_is_bounds(self):
        """With a non-empty manifest, a buffer the manifest does not
        mention has no live regions at all."""
        b = KernelBuilder(ASCEND910, FLOAT16, name="strayl1")
        b.alloc("UB", 128, "only-ub")
        b.program.emit(
            VectorDup(
                VectorOperand(MemRef("L0C", 0, 256, FLOAT16)),
                0.0, Mask.full(), 1,
            )
        )
        with pytest.raises(SanitizerError, match="none live"):
            run_sanitized(b.program, GlobalMemory())

    def test_handbuilt_program_falls_back_to_whole_buffer(self):
        prog = Program("handmade")
        ref = MemRef("UB", 0, 128, FLOAT16)
        prog.emit(VectorDup(VectorOperand(ref), 1.0, Mask.full(), 1))
        res, _ = run_sanitized(prog, GlobalMemory())
        assert res.sanitizer.clean

    def test_gm_escape_is_bounds(self):
        prog = Program("gmescape")
        ub = MemRef("UB", 0, 64, FLOAT16)
        prog.emit(DataMove(MemRef("x", 96, 64, FLOAT16), ub))
        gm = GlobalMemory()
        gm.add("x", np.zeros(128, np.float16))  # [96, 160) escapes
        with pytest.raises(SanitizerError, match="global tensor"):
            run_sanitized(prog, gm)


class TestStaleReadRegression:
    """Scratch-pads are deliberately never cleared between tiles (the
    hardware does not either, and clearing would dirty the cycle
    model); strict mode is the tool that catches kernels *relying* on
    leftover data."""

    def _writer(self):
        b = KernelBuilder(ASCEND910, FLOAT16, name="tileA")
        ref = b.alloc("UB", 128, "a")
        b.dup(ref, 2.0)
        return b.program

    def _stale_reader(self):
        b = KernelBuilder(ASCEND910, FLOAT16, name="tileB")
        src = b.alloc("UB", 128, "never-written")
        dst = b.alloc("UB", 128, "dst")
        b.program.emit(
            VADD(
                VectorOperand(dst), VectorOperand(src),
                VectorOperand(src), Mask.full(), 1,
            )
        )
        return b.program

    def test_scratch_survives_across_tiles_unsanitized(self):
        """The intentional behaviour strict mode guards: tile B can see
        tile A's leftover UB contents on the same core."""
        b = KernelBuilder(ASCEND910, FLOAT16, name="tileB-probe")
        src = b.alloc("UB", 128, "leftover")
        b.dma(src, MemRef("probe", 0, 128, FLOAT16))
        gm = GlobalMemory()
        gm.add("probe", np.zeros(128, np.float16))
        chip = Chip(ASCEND910_SINGLE_CORE)
        chip.run_tiles([self._writer(), b.program], gm)
        assert np.all(gm.view("probe") == np.float16(2.0))

    def test_strict_mode_diagnoses_stale_read(self):
        gm = GlobalMemory()
        chip = Chip(ASCEND910_SINGLE_CORE)
        with pytest.raises(SanitizerError, match="stale-read") as exc:
            chip.run_tiles(
                [self._writer(), self._stale_reader()], gm, sanitize=True
            )
        msg = str(exc.value)
        assert "tileB" in msg
        assert "previous tile" in msg

    def test_fresh_core_reports_uninit_not_stale(self):
        """Same buggy kernel on a fresh core: nothing was freed yet, so
        the diagnosis is uninit-read."""
        with pytest.raises(SanitizerError, match="uninit-read"):
            run_sanitized(self._stale_reader(), GlobalMemory())


class TestRaceAudit:
    def _timed(self, prog, cost=None):
        from repro.sim import SERIAL

        return SERIAL.trace(prog, cost or ASCEND910.cost)

    def test_serial_schedule_is_clean(self):
        prog, gm = build_pool_kernel()
        assert audit_races(prog, self._timed(prog)) == []

    def test_pipelined_kernel_schedules_are_clean(self):
        from repro.sim import PIPELINED

        prog, _ = build_pool_kernel()
        assert audit_races(prog, PIPELINED.trace(prog, ASCEND910.cost)) == []

    def _conflicting_program(self):
        prog = Program("racy")
        ub = MemRef("UB", 0, 128, FLOAT16)
        prog.emit(DataMove(MemRef("x", 0, 128, FLOAT16), ub))
        prog.emit(VectorDup(VectorOperand(ub), 0.0, Mask.full(), 1))
        return prog

    def test_cross_unit_race_detected(self):
        prog = self._conflicting_program()
        trace = Trace(
            [
                TraceRecord("data_move", "mte", 10, 1, None, 0, 10),
                TraceRecord("vector_dup", "vector", 8, 1, 0.0, 5, 13),
            ]
        )
        found = audit_races(prog, trace)
        assert [v.kind for v in found] == ["race"]
        assert "overlapping-in-time" in found[0].message

    def test_same_unit_overlap_detected(self):
        prog = Program("overlap")
        a = MemRef("UB", 0, 128, FLOAT16)
        b = MemRef("UB", 256, 128, FLOAT16)
        prog.emit(VectorDup(VectorOperand(a), 0.0, Mask.full(), 1))
        prog.emit(VectorDup(VectorOperand(b), 0.0, Mask.full(), 1))
        trace = Trace(
            [
                TraceRecord("vector_dup", "vector", 8, 1, 0.0, 0, 8),
                TraceRecord("vector_dup", "vector", 8, 1, 0.0, 4, 12),
            ]
        )
        found = audit_races(prog, trace)
        assert [v.kind for v in found] == ["unit-overlap"]

    def test_disjoint_cross_unit_overlap_is_fine(self):
        prog = Program("disjoint")
        ub = MemRef("UB", 0, 128, FLOAT16)
        far = MemRef("UB", 4096, 128, FLOAT16)
        prog.emit(DataMove(MemRef("x", 0, 128, FLOAT16), ub))
        prog.emit(VectorDup(VectorOperand(far), 0.0, Mask.full(), 1))
        trace = Trace(
            [
                TraceRecord("data_move", "mte", 10, 1, None, 0, 10),
                TraceRecord("vector_dup", "vector", 8, 1, 0.0, 5, 13),
            ]
        )
        assert audit_races(prog, trace) == []

    def test_untimed_trace_rejected(self):
        prog = self._conflicting_program()
        trace = Trace.from_instructions(prog.instructions, ASCEND910.cost)
        with pytest.raises(SanitizerError, match="timed"):
            audit_races(prog, trace)

    def test_length_mismatch_rejected(self):
        prog = self._conflicting_program()
        trace = Trace(
            [TraceRecord("data_move", "mte", 10, 1, None, 0, 10)]
        )
        with pytest.raises(SanitizerError, match="records"):
            audit_races(prog, trace)

    def test_sanitizer_audit_halts_on_race(self):
        prog = self._conflicting_program()
        san = Sanitizer(ASCEND910)
        san.begin_program(AICore(ASCEND910), prog)
        trace = Trace(
            [
                TraceRecord("data_move", "mte", 10, 1, None, 0, 10),
                TraceRecord("vector_dup", "vector", 8, 1, 0.0, 5, 13),
            ]
        )
        with pytest.raises(SanitizerError, match="race"):
            san.audit(prog, trace)
        assert not san.report.clean


class TestReportMerge:
    def test_merge_concatenates_and_maxes(self):
        a = SanitizerReport(
            programs=1,
            checked_instructions=10,
            coverage={
                "UB": BufferCoverage("UB", 1024, 100, 100, 80, 90),
            },
        )
        b = SanitizerReport(
            programs=2,
            checked_instructions=5,
            coverage={
                "UB": BufferCoverage("UB", 1024, 200, 220, 60, 10),
                "L1": BufferCoverage("L1", 4096, 50, 50, 50, 50),
            },
        )
        a.merge(b)
        assert a.programs == 3
        assert a.checked_instructions == 15
        assert a.coverage["UB"].declared_bytes == 200
        assert a.coverage["UB"].high_water_bytes == 220
        assert a.coverage["UB"].initialized_bytes == 80
        assert a.coverage["UB"].touched_bytes == 90
        assert "L1" in a.coverage


class TestOpsIntegration:
    def test_run_forward_sanitized_clean_and_identical(self):
        x = make_input(9, 9, 16, seed=3)
        spec = PoolSpec.square(3, 2)
        impl = forward_impl("im2col", "max")
        base = run_forward(x, spec, impl, ASCEND910_SINGLE_CORE)
        res = run_forward(
            x, spec, impl, ASCEND910_SINGLE_CORE, sanitize=True
        )
        assert res.sanitizer is not None and res.sanitizer.clean
        assert res.sanitizer.programs >= 1
        assert np.array_equal(res.output, base.output)
        assert res.cycles == base.cycles
        assert base.sanitizer is None

    def test_api_threads_sanitize(self):
        from repro.ops.api import maxpool

        x = make_input(9, 9, 16, seed=3)
        res = maxpool(x, PoolSpec.square(3, 2), sanitize=True)
        assert res.sanitizer is not None and res.sanitizer.clean
