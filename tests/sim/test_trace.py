"""Tests for the execution trace container."""

import pytest

from repro.sim import Trace, TraceRecord


def rec(opcode="vadd", unit="vector", cycles=5, repeat=1, util=1.0):
    return TraceRecord(opcode, unit, cycles, repeat, util)


class TestTrace:
    def test_issue_counting(self):
        t = Trace()
        t.add(rec("vadd"))
        t.add(rec("vadd"))
        t.add(rec("vmax"))
        assert t.issues() == 3
        assert t.issues("vadd") == 2
        assert t.issues("col2im") == 0

    def test_issue_counts_counter(self):
        t = Trace()
        t.add(rec("im2col", unit="scu"))
        t.add(rec("vmax"))
        assert t.issue_counts() == {"im2col": 1, "vmax": 1}

    def test_cycles_by_unit(self):
        t = Trace()
        t.add(rec("vadd", unit="vector", cycles=5))
        t.add(rec("data_move", unit="mte", cycles=40, util=None))
        t.add(rec("vmax", unit="vector", cycles=7))
        assert t.cycles_by_unit() == {"vector": 12, "mte": 40}

    def test_cycles_by_opcode(self):
        t = Trace()
        t.add(rec("vadd", cycles=5))
        t.add(rec("vadd", cycles=6))
        assert t.cycles_by_opcode() == {"vadd": 11}

    def test_utilization_repeat_weighted(self):
        t = Trace()
        t.add(rec("vadd", repeat=1, util=1.0))
        t.add(rec("vmax", repeat=3, util=0.125))
        want = (1.0 + 3 * 0.125) / 4
        assert t.vector_lane_utilization() == pytest.approx(want)

    def test_utilization_ignores_non_vector(self):
        t = Trace()
        t.add(rec("data_move", unit="mte", util=None))
        assert t.vector_lane_utilization() is None
