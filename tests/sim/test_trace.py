"""Tests for the execution trace container."""

import pytest

from repro.errors import SimulationError
from repro.sim import Trace, TraceRecord, pooled_lane_utilization


def rec(opcode="vadd", unit="vector", cycles=5, repeat=1, util=1.0):
    return TraceRecord(opcode, unit, cycles, repeat, util)


class TestTrace:
    def test_issue_counting(self):
        t = Trace()
        t.add(rec("vadd"))
        t.add(rec("vadd"))
        t.add(rec("vmax"))
        assert t.issues() == 3
        assert t.issues("vadd") == 2
        assert t.issues("col2im") == 0

    def test_issue_counts_counter(self):
        t = Trace()
        t.add(rec("im2col", unit="scu"))
        t.add(rec("vmax"))
        assert t.issue_counts() == {"im2col": 1, "vmax": 1}

    def test_cycles_by_unit(self):
        t = Trace()
        t.add(rec("vadd", unit="vector", cycles=5))
        t.add(rec("data_move", unit="mte", cycles=40, util=None))
        t.add(rec("vmax", unit="vector", cycles=7))
        assert t.cycles_by_unit() == {"vector": 12, "mte": 40}

    def test_cycles_by_opcode(self):
        t = Trace()
        t.add(rec("vadd", cycles=5))
        t.add(rec("vadd", cycles=6))
        assert t.cycles_by_opcode() == {"vadd": 11}

    def test_utilization_repeat_weighted(self):
        t = Trace()
        t.add(rec("vadd", repeat=1, util=1.0))
        t.add(rec("vmax", repeat=3, util=0.125))
        want = (1.0 + 3 * 0.125) / 4
        assert t.vector_lane_utilization() == pytest.approx(want)

    def test_utilization_ignores_non_vector(self):
        t = Trace()
        t.add(rec("data_move", unit="mte", util=None))
        assert t.vector_lane_utilization() is None


class TestUncollectedTrace:
    """`None` means "no vector issues"; an *uncollected* trace is a
    different thing and must say so instead of masquerading as an empty
    program."""

    def test_collected_by_default(self):
        assert Trace().collected

    def test_uncollected_utilization_raises(self):
        t = Trace(collected=False)
        with pytest.raises(SimulationError, match="not collected"):
            t.vector_lane_utilization()

    def test_empty_collected_trace_is_none_not_error(self):
        assert Trace().vector_lane_utilization() is None


class TestPooledLaneUtilization:
    """The shared helper behind Trace and ChipRunResult pooling."""

    def test_matches_single_trace(self):
        records = [rec(repeat=1, util=1.0), rec(repeat=3, util=0.125)]
        t = Trace(list(records))
        assert pooled_lane_utilization(records) == pytest.approx(
            t.vector_lane_utilization()
        )

    def test_pools_across_traces(self):
        a = [rec(repeat=1, util=1.0)]
        b = [rec(repeat=1, util=0.5), rec(unit="mte", util=None)]
        assert pooled_lane_utilization(a + b) == pytest.approx(0.75)

    def test_no_vector_issues_is_none(self):
        assert pooled_lane_utilization([]) is None
        assert pooled_lane_utilization([rec(unit="mte", util=None)]) is None
