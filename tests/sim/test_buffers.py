"""Tests for scratch-pad buffers and the allocator."""

import numpy as np
import pytest

from repro.config import ASCEND910, BufferSpec
from repro.dtypes import FLOAT16
from repro.errors import CapacityError
from repro.sim import Allocator, ScratchBuffer


def make_alloc(capacity=1024, alignment=32):
    return Allocator(BufferSpec("UB", capacity, alignment), FLOAT16)


class TestScratchBuffer:
    def test_backing_store_sized_to_capacity(self):
        buf = ScratchBuffer(BufferSpec("UB", 2048), FLOAT16)
        assert buf.data.size == 1024  # fp16: 2 bytes/elem
        assert buf.capacity_elems == 1024

    def test_zero_initialised(self):
        buf = ScratchBuffer(BufferSpec("UB", 64), FLOAT16)
        assert not buf.data.any()

    def test_clear(self):
        buf = ScratchBuffer(BufferSpec("UB", 64), FLOAT16)
        buf.data[:] = 5
        buf.clear()
        assert not buf.data.any()


class TestAllocator:
    def test_sequential_allocations_disjoint(self):
        a = make_alloc()
        r1 = a.alloc(100)
        r2 = a.alloc(100)
        assert r1.end <= r2.offset

    def test_alignment(self):
        a = make_alloc(alignment=32)  # 16 fp16 elements
        a.alloc(5)
        r2 = a.alloc(10)
        assert r2.offset % 16 == 0

    def test_capacity_enforced(self):
        a = make_alloc(capacity=64)  # 32 elements
        a.alloc(32)
        with pytest.raises(CapacityError):
            a.alloc(1)

    def test_capacity_error_names_allocation(self):
        a = make_alloc(capacity=64)
        with pytest.raises(CapacityError, match="mybuf"):
            a.alloc(1000, name="mybuf")

    def test_nonpositive_size(self):
        with pytest.raises(CapacityError):
            make_alloc().alloc(0)

    def test_reset_reclaims(self):
        a = make_alloc(capacity=64)
        a.alloc(32)
        a.reset()
        r = a.alloc(32)
        assert r.offset == 0

    def test_high_water_survives_reset(self):
        a = make_alloc()
        a.alloc(100)
        a.reset()
        a.alloc(10)
        assert a.high_water_bytes == 200

    def test_used_and_free(self):
        a = make_alloc(capacity=1024)
        a.alloc(100)
        assert a.used_bytes == 200
        assert a.free_bytes == 824

    def test_for_buffer_constructor(self):
        buf = ScratchBuffer(BufferSpec("L1", 128), FLOAT16)
        a = Allocator.for_buffer(buf)
        assert a.capacity_elems == 64

    def test_refs_name_the_buffer(self):
        r = make_alloc().alloc(4)
        assert r.buffer == "UB"

    def test_all_chip_buffers_allocatable(self):
        for name, spec in ASCEND910.buffer_specs().items():
            a = Allocator(spec, FLOAT16)
            r = a.alloc(16)
            assert r.buffer == name


class TestAllocatorMessages:
    """The error messages name the buffer, the allocation and the
    actual problem (a zero-size request used to be reported as an
    overflow of "0 elements")."""

    def test_nonpositive_size_message_is_precise(self):
        with pytest.raises(
            CapacityError, match="non-positive allocation size 0"
        ):
            make_alloc().alloc(0)

    def test_nonpositive_size_names_allocation(self):
        with pytest.raises(CapacityError, match="'rows'"):
            make_alloc().alloc(-3, name="rows")

    def test_negative_size_message(self):
        with pytest.raises(
            CapacityError, match="non-positive allocation size -5"
        ):
            make_alloc().alloc(-5)

    def test_alignment_error_names_allocation(self):
        from repro.errors import AlignmentError

        a = Allocator(BufferSpec("UB", 1024, alignment=1), FLOAT16)
        with pytest.raises(AlignmentError, match="'patch'"):
            a.alloc(4, name="patch")

    def test_overflow_names_allocation(self):
        a = make_alloc(capacity=64)
        with pytest.raises(CapacityError, match="overflow.*bigbuf"):
            a.alloc(1000, name="bigbuf")


class TestLiveRegions:
    def test_live_regions_track_allocations(self):
        a = make_alloc()
        r1 = a.alloc(100, name="x")
        r2 = a.alloc(50, name="y")
        live = a.live_regions()
        assert live == {"x": r1, "y": r2}

    def test_unnamed_allocations_get_keys(self):
        a = make_alloc()
        r = a.alloc(10)
        assert list(a.live_regions()) == ["alloc0"]
        assert a.live_regions()["alloc0"] is r

    def test_duplicate_names_deduplicated(self):
        a = make_alloc()
        r1 = a.alloc(10, name="t")
        r2 = a.alloc(10, name="t")
        live = a.live_regions()
        assert live["t"] is r1
        assert live["t#1"] is r2

    def test_reset_clears_live_regions(self):
        a = make_alloc()
        a.alloc(10, name="t")
        a.reset()
        assert a.live_regions() == {}

    def test_live_regions_returns_copy(self):
        a = make_alloc()
        a.alloc(10, name="t")
        a.live_regions().clear()
        assert "t" in a.live_regions()

    def test_regions_disjoint_and_within_capacity(self):
        a = make_alloc(capacity=1024)
        for i in range(5):
            a.alloc(20 + i, name=f"r{i}")
        regions = sorted(a.live_regions().values(), key=lambda r: r.offset)
        for prev, nxt in zip(regions, regions[1:]):
            assert prev.end <= nxt.offset
        assert regions[-1].end <= a.capacity_elems


class TestPoison:
    def test_poison_fills_backing_store(self):
        buf = ScratchBuffer(BufferSpec("UB", 64), FLOAT16)
        buf.poison(-20000.0)
        assert np.all(buf.data == np.float16(-20000.0))

    def test_poison_value_is_fp16_exact(self):
        from repro.sim import POISON_VALUE

        assert float(np.float16(POISON_VALUE)) == POISON_VALUE
        assert np.isfinite(POISON_VALUE)
