"""Tests for scratch-pad buffers and the allocator."""

import pytest

from repro.config import ASCEND910, BufferSpec
from repro.dtypes import FLOAT16
from repro.errors import CapacityError
from repro.sim import Allocator, ScratchBuffer


def make_alloc(capacity=1024, alignment=32):
    return Allocator(BufferSpec("UB", capacity, alignment), FLOAT16)


class TestScratchBuffer:
    def test_backing_store_sized_to_capacity(self):
        buf = ScratchBuffer(BufferSpec("UB", 2048), FLOAT16)
        assert buf.data.size == 1024  # fp16: 2 bytes/elem
        assert buf.capacity_elems == 1024

    def test_zero_initialised(self):
        buf = ScratchBuffer(BufferSpec("UB", 64), FLOAT16)
        assert not buf.data.any()

    def test_clear(self):
        buf = ScratchBuffer(BufferSpec("UB", 64), FLOAT16)
        buf.data[:] = 5
        buf.clear()
        assert not buf.data.any()


class TestAllocator:
    def test_sequential_allocations_disjoint(self):
        a = make_alloc()
        r1 = a.alloc(100)
        r2 = a.alloc(100)
        assert r1.end <= r2.offset

    def test_alignment(self):
        a = make_alloc(alignment=32)  # 16 fp16 elements
        a.alloc(5)
        r2 = a.alloc(10)
        assert r2.offset % 16 == 0

    def test_capacity_enforced(self):
        a = make_alloc(capacity=64)  # 32 elements
        a.alloc(32)
        with pytest.raises(CapacityError):
            a.alloc(1)

    def test_capacity_error_names_allocation(self):
        a = make_alloc(capacity=64)
        with pytest.raises(CapacityError, match="mybuf"):
            a.alloc(1000, name="mybuf")

    def test_nonpositive_size(self):
        with pytest.raises(CapacityError):
            make_alloc().alloc(0)

    def test_reset_reclaims(self):
        a = make_alloc(capacity=64)
        a.alloc(32)
        a.reset()
        r = a.alloc(32)
        assert r.offset == 0

    def test_high_water_survives_reset(self):
        a = make_alloc()
        a.alloc(100)
        a.reset()
        a.alloc(10)
        assert a.high_water_bytes == 200

    def test_used_and_free(self):
        a = make_alloc(capacity=1024)
        a.alloc(100)
        assert a.used_bytes == 200
        assert a.free_bytes == 824

    def test_for_buffer_constructor(self):
        buf = ScratchBuffer(BufferSpec("L1", 128), FLOAT16)
        a = Allocator.for_buffer(buf)
        assert a.capacity_elems == 64

    def test_refs_name_the_buffer(self):
        r = make_alloc().alloc(4)
        assert r.buffer == "UB"

    def test_all_chip_buffers_allocatable(self):
        for name, spec in ASCEND910.buffer_specs().items():
            a = Allocator(spec, FLOAT16)
            r = a.alloc(16)
            assert r.buffer == name
