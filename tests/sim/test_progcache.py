"""Program cache, relocation, and cycles-only execution mode.

Covers the three layers of the compiled-program cache:

* operand/instruction/program relocation (``isa``),
* the :class:`repro.sim.progcache.ProgramCache` itself,
* the operator drivers' cached + relocated fast path, which must be
  **bit-identical** to the uncached per-tile lowering -- outputs, masks,
  gradients *and* cycle counts -- for every implementation, including
  padded and row-chunked geometries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ASCEND910, ChipConfig
from repro.dtypes import FLOAT16
from repro.isa.mask import Mask
from repro.isa.operand import MemRef, VectorOperand
from repro.isa.program import Program
from repro.isa.scu import DataMove
from repro.isa.vector import VMAX
from repro.ops import PoolSpec
from repro.ops.base import run_backward, run_forward
from repro.ops.reference import maxpool_argmax_ref
from repro.ops.registry import backward_impl, forward_impl
from repro.sim import (
    PROGRAM_CACHE,
    AICore,
    GlobalMemory,
    ProgramCache,
    program_key,
)
from repro.workloads import make_gradient, make_input

DT = FLOAT16
SMALL = ChipConfig(num_cores=4)


# ---------------------------------------------------------------------------
# Relocation primitives.
# ---------------------------------------------------------------------------

class TestMemRefRelocate:
    def test_shifts_offset(self):
        ref = MemRef("x", 100, 64, DT)
        moved = ref.relocate({"x": 256})
        assert moved.offset == 356
        assert moved.size == 64 and moved.buffer == "x"

    def test_unlisted_buffer_is_shared(self):
        ref = MemRef("UB", 100, 64, DT)
        assert ref.relocate({"x": 256}) is ref

    def test_zero_delta_is_shared(self):
        ref = MemRef("x", 100, 64, DT)
        assert ref.relocate({"x": 0}) is ref

    def test_vector_operand(self):
        op = VectorOperand(MemRef("out", 8, 128, DT), blk_stride=2)
        moved = op.relocate({"out": 64})
        assert moved.ref.offset == 72
        assert moved.blk_stride == 2
        assert op.relocate({"grad": 4}) is op


class TestInstructionRelocate:
    def test_gm_operand_rebased_scratch_shared(self):
        mv = DataMove(MemRef("x", 0, 32, DT), MemRef("UB", 16, 32, DT))
        moved = mv.relocate({"x": 96})
        assert moved.src.offset == 96
        assert moved.dst is mv.dst  # scratch-pad operand untouched
        assert mv.src.offset == 0  # original untouched

    def test_identity_when_untouched(self):
        v = VMAX(
            VectorOperand(MemRef("UB", 0, 128, DT)),
            VectorOperand(MemRef("UB", 128, 128, DT)),
            VectorOperand(MemRef("UB", 256, 128, DT)),
            Mask.full(),
        )
        assert v.relocate({"x": 512}) is v

    def test_buffers(self):
        mv = DataMove(MemRef("x", 0, 32, DT), MemRef("UB", 16, 32, DT))
        assert mv.buffers() == frozenset({"x", "UB"})


class TestProgramRelocate:
    def _program(self) -> Program:
        p = Program("maxpool-im2col-s0-t0")
        p.emit(DataMove(MemRef("x", 64, 32, DT), MemRef("UB", 0, 32, DT)))
        p.emit(
            VMAX(
                VectorOperand(MemRef("UB", 0, 16, DT)),
                VectorOperand(MemRef("UB", 0, 16, DT)),
                VectorOperand(MemRef("UB", 16, 16, DT)),
                Mask.full(),
            )
        )
        p.emit(DataMove(MemRef("UB", 0, 32, DT), MemRef("out", 8, 32, DT)))
        p.scalar_loop_trips = 3
        return p

    def test_rebases_only_gm(self):
        p = self._program()
        q = p.relocate({"x": 1000, "out": 500}, name="maxpool-im2col-s7-t0")
        assert q.name == "maxpool-im2col-s7-t0"
        assert q.scalar_loop_trips == 3
        assert q.instructions[0].src.offset == 1064
        assert q.instructions[2].dst.offset == 508
        # the vector instruction is the very same object
        assert q.instructions[1] is p.instructions[1]
        # original untouched
        assert p.instructions[0].src.offset == 64

    def test_zero_delta_clone_shares_instructions(self):
        p = self._program()
        q = p.relocate({"x": 0}, name="renamed")
        assert q.name == "renamed"
        assert all(a is b for a, b in zip(p.instructions, q.instructions))

    def test_relocation_plan_is_cached(self):
        p = self._program()
        p.relocate({"x": 16, "out": 16})
        plan = p._reloc_plan[frozenset({"x", "out"})]
        assert plan == [0, 2]
        # second relocation reuses the same plan object
        p.relocate({"x": 32, "out": 32})
        assert p._reloc_plan[frozenset({"x", "out"})] is plan

    def test_cycles_invariant_under_relocation(self):
        p = self._program()
        q = p.relocate({"x": 1000, "out": 500})
        cost = ASCEND910.cost
        assert p.static_cycles(cost) == q.static_cycles(cost)


# ---------------------------------------------------------------------------
# The cache proper.
# ---------------------------------------------------------------------------

def _key(i: int = 0):
    geom = ("geom", i)
    return program_key(
        "fwd", "maxpool-im2col", PoolSpec.square(3, 2), geom, DT,
        (20, 20, 9, 9), ASCEND910,
    )


class TestProgramCache:
    def test_miss_then_hit(self):
        cache = ProgramCache()
        builds = []

        def build():
            builds.append(1)
            return Program("p")

        p1 = cache.get_or_build(_key(), build)
        p2 = cache.get_or_build(_key(), build)
        assert p1 is p2
        assert len(builds) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_distinct_keys_do_not_alias(self):
        cache = ProgramCache()
        p1 = cache.get_or_build(_key(0), lambda: Program("a"))
        p2 = cache.get_or_build(_key(1), lambda: Program("b"))
        assert p1 is not p2
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = ProgramCache(maxsize=2)
        cache.get_or_build(_key(0), lambda: Program("a"))
        cache.get_or_build(_key(1), lambda: Program("b"))
        cache.get_or_build(_key(0), lambda: Program("a2"))  # refresh 0
        cache.get_or_build(_key(2), lambda: Program("c"))  # evicts 1
        assert _key(0) in cache and _key(2) in cache
        assert _key(1) not in cache
        assert cache.stats.evictions == 1

    def test_clear(self):
        cache = ProgramCache()
        cache.get_or_build(_key(), lambda: Program("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_summary_matches_execution(self):
        """The memoized static summary equals a real numeric run."""
        cache = ProgramCache()
        prog = Program("p")
        prog.emit(DataMove(MemRef("x", 0, 32, DT), MemRef("UB", 0, 32, DT)))
        prog.emit(
            VMAX(
                VectorOperand(MemRef("UB", 0, 16, DT)),
                VectorOperand(MemRef("UB", 0, 16, DT)),
                VectorOperand(MemRef("UB", 16, 16, DT)),
                Mask.full(),
            )
        )
        prog.scalar_loop_trips = 2
        key = _key()
        assert cache.get_or_build(key, lambda: prog) is prog

        gm = GlobalMemory()
        gm.add("x", np.ones(32, dtype=DT.np_dtype))
        executed = AICore(ASCEND910, DT).run(prog, gm)

        summary = cache.summary(key, prog, ASCEND910)
        assert summary.cycles == executed.cycles
        assert summary.instructions == executed.instructions
        assert summary.trace.records == executed.trace.records
        # memoized: same object on the second ask
        assert cache.summary(key, prog, ASCEND910) is summary
        # no-trace variant is empty but cycle-identical
        bare = cache.summary(key, prog, ASCEND910, collect_trace=False)
        assert bare.cycles == summary.cycles
        assert not bare.trace.records


class TestInvalidate:
    def test_invalidate_drops_entry_and_counts(self):
        cache = ProgramCache()
        key = _key()
        cache.get_or_build(key, lambda: Program("p"))
        assert key in cache
        assert cache.invalidate(key) is True
        assert key not in cache
        assert cache.stats.invalidations == 1
        # idempotent: a second invalidation is a no-op
        assert cache.invalidate(key) is False
        assert cache.stats.invalidations == 1

    def test_invalidate_forces_rebuild(self):
        cache = ProgramCache()
        key = _key()
        builds = []

        def build():
            builds.append(1)
            return Program("p")

        cache.get_or_build(key, build)
        cache.get_or_build(key, build)
        assert len(builds) == 1
        cache.invalidate(key)
        cache.get_or_build(key, build)
        assert len(builds) == 2

    def test_invalidate_drops_compiled_kernel(self):
        """Invalidation must drop the memoized JIT kernel too: the next
        ``compiled()`` rebuilds (a ``jit_miss``) instead of re-serving
        the suspect kernel."""
        cache = ProgramCache()
        key = _key()
        prog = Program("p")
        prog.emit(DataMove(MemRef("x", 0, 128, DT), MemRef("UB", 0, 128, DT)))
        cache.get_or_build(key, lambda: prog)
        first = cache.compiled(key, prog, ASCEND910)
        assert cache.compiled(key, prog, ASCEND910) is first
        assert cache.stats.jit_hits == 1 and cache.stats.jit_misses == 1
        cache.invalidate(key)
        rebuilt = cache.compiled(key, prog, ASCEND910)
        assert rebuilt is not first
        assert cache.stats.jit_misses == 2
        # re-adopted under the key: a further ask is a hit again
        assert cache.compiled(key, prog, ASCEND910) is rebuilt
        assert cache.stats.jit_hits == 2

    def test_invalidate_drops_memoized_summaries(self):
        cache = ProgramCache()
        key = _key()
        prog = Program("p")
        d = MemRef("UB", 0, 128, DT)
        prog.emit(DataMove(MemRef("x", 0, 128, DT), d))
        cache.get_or_build(key, lambda: prog)
        first = cache.summary(key, prog, ASCEND910)
        cache.invalidate(key)
        # served again only via the fallback re-adoption path
        second = cache.summary(key, prog, ASCEND910)
        assert second.cycles == first.cycles
        assert cache.stats.summary_fallbacks == 1


class TestCompiledMemo:
    """:meth:`ProgramCache.compiled` -- the JIT kernel cache."""

    def _prog(self) -> Program:
        prog = Program("p")
        prog.emit(DataMove(MemRef("x", 0, 128, DT), MemRef("UB", 0, 128, DT)))
        return prog

    def test_miss_then_hit_counters(self):
        cache = ProgramCache()
        key = _key()
        prog = cache.get_or_build(key, self._prog)
        k1 = cache.compiled(key, prog, ASCEND910)
        k2 = cache.compiled(key, prog, ASCEND910)
        assert k1 is k2
        assert cache.stats.jit_misses == 1
        assert cache.stats.jit_hits == 1
        assert cache.stats.jit_fallbacks == 0

    def test_fallback_builds_are_counted(self):
        import dataclasses

        from repro.isa.instruction import Instruction

        @dataclasses.dataclass(frozen=True)
        class Opaque(Instruction):
            dst: MemRef
            unit = "scalar"

            def cycles(self, cost):
                return 1

            def execute(self, ctx):
                pass

        cache = ProgramCache()
        key = _key()
        prog = Program("p")
        prog.emit(Opaque(MemRef("UB", 0, 16, DT)))
        cache.get_or_build(key, lambda: prog)
        kernel = cache.compiled(key, prog, ASCEND910)
        assert kernel.stats.fallbacks == 1
        assert cache.stats.jit_fallbacks == 1

    def test_evicted_entry_readopts_and_memoizes(self):
        cache = ProgramCache(maxsize=1)
        prog = cache.get_or_build(_key(0), self._prog)
        cache.get_or_build(_key(1), self._prog)  # evicts _key(0)
        k1 = cache.compiled(_key(0), prog, ASCEND910)
        assert cache.stats.summary_fallbacks == 1
        assert cache.compiled(_key(0), prog, ASCEND910) is k1
        assert cache.stats.jit_hits == 1


class TestSummaryFallback:
    """Regression: ``summary`` after eviction/aliasing must re-insert
    and memoize instead of silently recomputing once per slice."""

    def _count_summarize(self, monkeypatch):
        import repro.sim.progcache as pc

        calls = []
        real = pc._summarize

        def spy(program, config, collect_trace):
            calls.append(program)
            return real(program, config, collect_trace)

        monkeypatch.setattr(pc, "_summarize", spy)
        return calls

    def test_evicted_entry_no_recompute_storm(self, monkeypatch):
        calls = self._count_summarize(monkeypatch)
        cache = ProgramCache(maxsize=1)
        prog_a = cache.get_or_build(_key(0), lambda: Program("a"))
        # A second geometry evicts the first in a maxsize=1 cache...
        cache.get_or_build(_key(1), lambda: Program("b"))
        assert _key(0) not in cache
        # ...yet per-slice summary asks for prog_a must compute ONCE,
        # not once per slice (the seed behaviour).
        first = cache.summary(_key(0), prog_a, ASCEND910)
        for _ in range(5):
            assert cache.summary(_key(0), prog_a, ASCEND910) is first
        assert len(calls) == 1
        assert cache.stats.summary_fallbacks == 1
        # the fallback re-inserted the program under its key
        assert _key(0) in cache
        assert cache.get_or_build(_key(0), lambda: Program("fresh")) is prog_a

    def test_aliased_entry_adopts_callers_program(self, monkeypatch):
        calls = self._count_summarize(monkeypatch)
        cache = ProgramCache(maxsize=1)
        prog_a = cache.get_or_build(_key(0), lambda: Program("a"))
        # evict, then rebuild the same key to a *different* program
        cache.get_or_build(_key(1), lambda: Program("b"))
        prog_a2 = cache.get_or_build(_key(0), lambda: Program("a2"))
        assert prog_a2 is not prog_a
        # summaries for the caller's (stale) program memoize too
        first = cache.summary(_key(0), prog_a, ASCEND910)
        assert cache.summary(_key(0), prog_a, ASCEND910) is first
        assert cache.stats.summary_fallbacks == 1
        assert len(calls) == 1

    def test_fallback_respects_maxsize(self):
        cache = ProgramCache(maxsize=1)
        prog_a = cache.get_or_build(_key(0), lambda: Program("a"))
        cache.get_or_build(_key(1), lambda: Program("b"))
        cache.summary(_key(0), prog_a, ASCEND910)
        assert len(cache) == 1  # re-insert evicted the other entry

    def test_live_entry_counts_no_fallback(self):
        cache = ProgramCache()
        prog = cache.get_or_build(_key(0), lambda: Program("a"))
        cache.summary(_key(0), prog, ASCEND910)
        cache.summary(_key(0), prog, ASCEND910)
        assert cache.stats.summary_fallbacks == 0


# ---------------------------------------------------------------------------
# Driver-level caching behaviour.
# ---------------------------------------------------------------------------

class TestDriverCaching:
    def test_one_lowering_per_geometry(self):
        cache = ProgramCache()
        x = make_input(20, 20, 32, seed=0)  # (1, 2, 20, 20, 16)
        spec = PoolSpec.square(3, 2)
        impl = forward_impl("im2col", "max")
        res = run_forward(x, spec, impl, ASCEND910, cache=cache)
        tiles = len(res.tiles)
        slices = x.shape[0] * x.shape[1]
        assert res.chip.tiles == tiles * slices
        # one miss per unique geometry, hits for every other slice
        assert cache.stats.misses == tiles
        assert cache.stats.hits == 0  # first call: all geometries new
        run_forward(x, spec, impl, ASCEND910, cache=cache)
        assert cache.stats.misses == tiles
        assert cache.stats.hits == tiles

    def test_global_cache_is_default(self):
        PROGRAM_CACHE.clear()
        x = make_input(12, 12, 16, seed=0)
        spec = PoolSpec.square(2, 2)
        run_forward(x, spec, forward_impl("im2col", "max"), SMALL)
        assert PROGRAM_CACHE.stats.misses > 0

    def test_programs_named_by_slice_and_tile(self):
        x = make_input(20, 20, 32, seed=0)
        spec = PoolSpec.square(3, 2)
        for cache in (None, ProgramCache()):
            res = run_forward(
                x, spec, forward_impl("im2col", "max"), ASCEND910,
                cache=cache,
            )
            tiles = len(res.tiles)
            # names are attributable: {impl}-s{slice}-t{tile}
            # (reconstruct via the chip result's tile count)
            slices = res.chip.tiles // tiles
            assert slices == x.shape[0] * x.shape[1]

    def test_cycles_mode_returns_no_data(self):
        x = make_input(12, 12, 16, seed=0)
        spec = PoolSpec.square(2, 2)
        res = run_forward(
            x, spec, forward_impl("im2col", "max"), SMALL,
            execute="cycles", cache=ProgramCache(),
        )
        assert res.output is None and res.mask is None
        assert res.cycles > 0

    def test_bad_execute_mode_rejected(self):
        from repro.errors import LayoutError

        x = make_input(12, 12, 16, seed=0)
        with pytest.raises(LayoutError):
            run_forward(
                x, PoolSpec.square(2, 2), forward_impl("im2col", "max"),
                SMALL, execute="fused",
            )


# ---------------------------------------------------------------------------
# Bit-identical equivalence: cached+relocated vs uncached, and
# cycles-only vs numeric.
# ---------------------------------------------------------------------------

#: (spec, ih, iw, config) covering unpadded, padded, and row-chunked
#: geometries.  ASCEND910's 32 cores force min_tiles > 1 on the small
#: N*C1, so every case exercises row chunking *and* relocation.
GEOMETRIES = [
    pytest.param(PoolSpec.square(3, 2), 20, 20, ASCEND910, id="rowchunk"),
    pytest.param(PoolSpec.square(3, 2, pad=1), 21, 21, ASCEND910, id="padded"),
    pytest.param(PoolSpec(kh=2, kw=3, sh=2, sw=1), 14, 17, SMALL, id="rect"),
]

FORWARD = ["standard", "im2col", "expansion", "xysplit"]
BACKWARD = ["standard", "col2im"]


def _fwd_input(ih, iw):
    return make_input(ih, iw, 32, seed=3)  # N=1, C1=2 slices


class TestForwardEquivalence:
    @pytest.mark.parametrize("spec,ih,iw,config", GEOMETRIES)
    @pytest.mark.parametrize("name", FORWARD)
    def test_cached_equals_uncached(self, name, spec, ih, iw, config):
        x = _fwd_input(ih, iw)
        impl = forward_impl(name, "max")
        ref = run_forward(x, spec, impl, config, cache=None)
        cached = run_forward(x, spec, impl, config, cache=ProgramCache())
        assert np.array_equal(ref.output, cached.output)
        assert ref.cycles == cached.cycles
        assert (
            ref.chip.total_work_cycles == cached.chip.total_work_cycles
        )
        analytic = run_forward(
            x, spec, impl, config, execute="cycles", cache=ProgramCache()
        )
        assert analytic.cycles == ref.cycles

    @pytest.mark.parametrize("spec,ih,iw,config", GEOMETRIES)
    @pytest.mark.parametrize("name", ["standard", "im2col", "expansion"])
    def test_mask_bit_identical(self, name, spec, ih, iw, config):
        x = _fwd_input(ih, iw)
        impl = forward_impl(name, "max", with_mask=True)
        ref = run_forward(x, spec, impl, config, cache=None)
        cached = run_forward(x, spec, impl, config, cache=ProgramCache())
        assert np.array_equal(ref.output, cached.output)
        assert np.array_equal(ref.mask, cached.mask)
        assert ref.cycles == cached.cycles

    def test_avgpool_equivalence(self):
        x = _fwd_input(20, 20)
        spec = PoolSpec.square(3, 2)
        impl = forward_impl("im2col", "avg")
        ref = run_forward(x, spec, impl, ASCEND910, cache=None)
        cached = run_forward(x, spec, impl, ASCEND910, cache=ProgramCache())
        assert np.array_equal(ref.output, cached.output)
        assert ref.cycles == cached.cycles


class TestBackwardEquivalence:
    @pytest.mark.parametrize("spec,ih,iw,config", GEOMETRIES)
    @pytest.mark.parametrize("name", BACKWARD)
    @pytest.mark.parametrize("serialize", [False, True])
    def test_gradients_bit_identical(
        self, name, spec, ih, iw, config, serialize
    ):
        x = _fwd_input(ih, iw)
        mask = maxpool_argmax_ref(x, spec)
        oh, ow = spec.with_image(ih, iw).out_hw()
        grad = make_gradient(x.shape[1], oh, ow, seed=4)
        impl = backward_impl(name, "max")
        kwargs = dict(
            mask=mask, config=config, serialize_slices=serialize
        )
        ref = run_backward(grad, spec, impl, ih, iw, cache=None, **kwargs)
        cached = run_backward(
            grad, spec, impl, ih, iw, cache=ProgramCache(), **kwargs
        )
        assert np.array_equal(ref.output, cached.output)
        assert ref.cycles == cached.cycles
        analytic = run_backward(
            grad, spec, impl, ih, iw, cache=ProgramCache(),
            execute="cycles", **kwargs,
        )
        assert analytic.cycles == ref.cycles
        assert analytic.output is None

    def test_avgpool_backward_equivalence(self):
        spec = PoolSpec.square(3, 2)
        ih = iw = 20
        oh, ow = spec.with_image(ih, iw).out_hw()
        grad = make_gradient(2, oh, ow, seed=5)
        for name in BACKWARD:
            impl = backward_impl(name, "avg")
            ref = run_backward(
                grad, spec, impl, ih, iw, config=ASCEND910, cache=None
            )
            cached = run_backward(
                grad, spec, impl, ih, iw, config=ASCEND910,
                cache=ProgramCache(),
            )
            assert np.array_equal(ref.output, cached.output)
            assert ref.cycles == cached.cycles


class TestTraceEquivalence:
    def test_cached_traces_match_uncached(self):
        """Per-tile traces from memoized summaries equal executed ones."""
        x = _fwd_input(20, 20)
        spec = PoolSpec.square(3, 2)
        impl = forward_impl("im2col", "max")
        ref = run_forward(x, spec, impl, ASCEND910, cache=None)
        cached = run_forward(
            x, spec, impl, ASCEND910, cache=ProgramCache()
        )
        assert len(ref.chip.per_tile) == len(cached.chip.per_tile)
        for a, b in zip(ref.chip.per_tile, cached.chip.per_tile):
            assert a.trace.records == b.trace.records
            assert a.cycles == b.cycles
        assert (
            ref.chip.vector_lane_utilization
            == cached.chip.vector_lane_utilization
        )

    def test_collect_trace_false_yields_no_records(self):
        x = _fwd_input(20, 20)
        res = run_forward(
            x, PoolSpec.square(3, 2), forward_impl("im2col", "max"),
            ASCEND910, collect_trace=False, cache=ProgramCache(),
        )
        assert all(not t.trace.records for t in res.chip.per_tile)


# ---------------------------------------------------------------------------
# Thread safety (the serving layer's contract).
# ---------------------------------------------------------------------------

class TestThreadSafety:
    """A shared :class:`ProgramCache` hammered from many threads must
    build each key at most once, never lose a compiled kernel, and keep
    its counters consistent -- the contract the cache docstring promises
    the serving layer."""

    def test_single_build_per_key_under_contention(self):
        import threading

        cache = ProgramCache()
        builds = {i: 0 for i in range(8)}
        build_lock = threading.Lock()
        barrier = threading.Barrier(8)
        results: list[dict] = [dict() for _ in range(8)]

        def worker(tid: int):
            barrier.wait()
            for rep in range(50):
                i = (tid + rep) % 8

                def build(i=i):
                    with build_lock:
                        builds[i] += 1
                    return Program(f"p{i}")

                results[tid][i] = cache.get_or_build(_key(i), build)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # every key lowered exactly once, all threads saw the same object
        assert all(n == 1 for n in builds.values()), builds
        for i in range(8):
            objs = {id(r[i]) for r in results}
            assert len(objs) == 1
        s = cache.stats
        assert s.misses == 8
        assert s.hits == 8 * 50 - 8
        assert s.lookups == s.hits + s.misses

    def test_no_lost_compiled_kernels_under_churn(self):
        """Threads interleaving get_or_build/compiled/invalidate on a
        tiny cache (constant eviction pressure) must always get back a
        working kernel -- the evicted-entry window in the seed could
        drop a freshly built CompiledKernel on the floor."""
        import threading

        cache = ProgramCache(maxsize=2)
        errors: list[BaseException] = []
        barrier = threading.Barrier(6)

        def prog(i: int) -> Program:
            p = Program(f"p{i}")
            p.emit(
                DataMove(MemRef("x", 0, 128, DT), MemRef("UB", 0, 128, DT))
            )
            return p

        def worker(tid: int):
            try:
                barrier.wait()
                for rep in range(40):
                    i = (tid + rep) % 5
                    p = cache.get_or_build(_key(i), lambda i=i: prog(i))
                    kernel = cache.compiled(_key(i), p, ASCEND910)
                    assert kernel is not None
                    summary = cache.summary(_key(i), p, ASCEND910)
                    assert summary.cycles > 0
                    if rep % 7 == tid % 7:
                        cache.invalidate(_key(i))
            except BaseException as exc:  # noqa: BLE001 - collect all
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert len(cache) <= 2
        s = cache.stats
        # counters stayed coherent under churn
        assert s.lookups == s.hits + s.misses
        assert s.jit_hits + s.jit_misses > 0

    def test_driver_runs_share_a_cache_across_threads(self):
        """Two driver threads sharing one cache produce bit-identical
        results to a single-threaded uncached run."""
        import threading

        cache = ProgramCache()
        x = make_input(20, 20, 32, seed=7)
        spec = PoolSpec.square(3, 2)
        impl = forward_impl("im2col", "max")
        ref = run_forward(x, spec, impl, ASCEND910, cache=None)
        outs: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []

        def worker(tid: int):
            try:
                for _ in range(3):
                    res = run_forward(x, spec, impl, ASCEND910, cache=cache)
                    outs[tid] = res.output
                    assert res.cycles == ref.cycles
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        for out in outs.values():
            assert np.array_equal(out, ref.output)
