"""Tests for the pluggable timing models (``repro.sim.scheduler``)."""

import pytest

from repro.config import ASCEND910, ASCEND910_SINGLE_CORE
from repro.dtypes import FLOAT16
from repro.errors import SimulationError
from repro.isa import (
    DataMove,
    Mask,
    MemRef,
    Program,
    VADD,
    VectorDup,
    VectorOperand,
)
from repro.ops import PoolSpec, forward_impl, forward_variants, run_forward
from repro.sim import (
    MODELS,
    PIPELINED,
    SERIAL,
    PipelinedModel,
    SerialModel,
    resolve_model,
    summarize,
)
from repro.workloads import make_input

COST = ASCEND910.cost


def vops(offset=0, n=128):
    d = MemRef("UB", offset, n, FLOAT16)
    s = MemRef("UB", offset + 4096, n, FLOAT16)
    return VectorOperand(d), VectorOperand(s)


def dma_in(ub_offset=0, n=128):
    """Global-memory load into UB[ub_offset : ub_offset+n]."""
    return DataMove(
        MemRef("x", 0, n, FLOAT16), MemRef("UB", ub_offset, n, FLOAT16)
    )


class TestResolveModel:
    def test_none_is_serial(self):
        assert resolve_model(None) is SERIAL

    def test_names(self):
        assert resolve_model("serial") is SERIAL
        assert resolve_model("pipelined") is PIPELINED

    def test_instance_passthrough(self):
        m = PipelinedModel()
        assert resolve_model(m) is m

    def test_unknown_raises(self):
        with pytest.raises(SimulationError, match="unknown timing model"):
            resolve_model("speculative")

    def test_registry_names(self):
        assert set(MODELS) == {"serial", "pipelined"}
        assert isinstance(MODELS["serial"], SerialModel)
        assert isinstance(MODELS["pipelined"], PipelinedModel)


class TestSerialModel:
    def test_program_cycles_is_plain_sum(self):
        p = Program("k")
        d, s = vops()
        i1 = p.emit(VectorDup(d, 0.0, Mask.full(), 3))
        i2 = p.emit(VADD(d, d, s, Mask.full(), 2))
        p.scalar_loop_trips = 7
        want = i1.cycles(COST) + i2.cycles(COST) + 7 * COST.loop_cycles
        assert SERIAL.program_cycles(p, COST) == want
        assert p.static_cycles(COST) == want  # default model is serial
        assert p.static_cycles(COST, model="serial") == want

    def test_schedule_is_prefix_sums(self):
        p = Program("k")
        d, s = vops()
        p.emit(VectorDup(d, 0.0, Mask.full(), 1))
        p.emit(VADD(d, d, s, Mask.full(), 2))
        p.emit(dma_in())
        sched = SERIAL.schedule(p, COST)
        t = 0
        for instr, timing in zip(p.instructions, sched.timings):
            assert timing.issue == t
            t += instr.cycles(COST)
            assert timing.retire == t
        assert sched.makespan == t

    def test_unit_busy_matches_unit_cycles(self):
        p = Program("k")
        d, s = vops()
        p.emit(VADD(d, d, s, Mask.full(), 1))
        p.emit(dma_in())
        sched = SERIAL.schedule(p, COST)
        assert sched.unit_busy == p.unit_cycles(COST)

    def test_occupancy_sums_to_one_for_serial(self):
        p = Program("k")
        d, s = vops()
        p.emit(VADD(d, d, s, Mask.full(), 1))
        p.emit(dma_in())
        occ = SERIAL.schedule(p, COST).occupancy()
        assert sum(occ.values()) == pytest.approx(1.0)


class TestPipelinedModel:
    def test_independent_units_overlap(self):
        """An MTE load into one UB region and vector work on a disjoint
        region issue concurrently: makespan < serial sum."""
        p = Program("k")
        d, s = vops(offset=16384)
        p.emit(dma_in(ub_offset=0))
        p.emit(VADD(d, d, s, Mask.full(), 4))
        sched = PIPELINED.schedule(p, COST)
        assert sched.timings[0].issue == 0
        assert sched.timings[1].issue == 0  # no hazard, no wait
        assert sched.makespan < SERIAL.program_cycles(p, COST)
        assert sched.makespan == max(t.retire for t in sched.timings)

    def test_raw_hazard_serialises(self):
        """A vector read of the region an MTE load writes must wait for
        the load to retire."""
        p = Program("k")
        load = p.emit(dma_in(ub_offset=0, n=128))
        d = VectorOperand(MemRef("UB", 8192, 128, FLOAT16))
        s = VectorOperand(MemRef("UB", 0, 128, FLOAT16))
        p.emit(VADD(d, s, s, Mask.full(), 1))
        sched = PIPELINED.schedule(p, COST)
        assert sched.timings[1].issue == load.cycles(COST)
        assert sched.makespan == SERIAL.program_cycles(p, COST)

    def test_war_hazard_serialises(self):
        """An MTE store over a region the vector unit is still reading
        must wait for the read to retire."""
        p = Program("k")
        d, s = vops(offset=0)
        rd = p.emit(VADD(d, d, s, Mask.full(), 1))
        # Overwrite the *source* region the vadd reads.
        p.emit(
            DataMove(
                MemRef("x", 0, 128, FLOAT16),
                MemRef("UB", 4096, 128, FLOAT16),
            )
        )
        sched = PIPELINED.schedule(p, COST)
        assert sched.timings[1].issue == rd.cycles(COST)

    def test_same_unit_stays_in_order(self):
        p = Program("k")
        p.emit(dma_in(ub_offset=0))
        p.emit(dma_in(ub_offset=8192))  # disjoint, but same unit
        sched = PIPELINED.schedule(p, COST)
        assert sched.timings[1].issue == sched.timings[0].retire

    def test_scalar_loop_trips_extend_makespan(self):
        p = Program("k")
        d, s = vops()
        p.emit(VADD(d, d, s, Mask.full(), 1))
        p.scalar_loop_trips = 1000
        assert (
            PIPELINED.schedule(p, COST).makespan
            >= 1000 * COST.loop_cycles
        )

    def test_trace_carries_issue_and_retire(self):
        p = Program("k")
        d, s = vops(offset=16384)
        p.emit(dma_in(ub_offset=0))
        p.emit(VADD(d, d, s, Mask.full(), 1))
        trace = PIPELINED.trace(p, COST)
        sched = PIPELINED.schedule(p, COST)
        for rec, t in zip(trace.records, sched.timings):
            assert rec.issue_at == t.issue
            assert rec.retire_at == t.retire
            assert rec.cycles == t.cycles
        assert trace.makespan() == sched.makespan == p.static_cycles(
            COST, model="pipelined"
        )

    def test_unit_cycles_model_independent(self):
        p = Program("k")
        d, s = vops(offset=16384)
        p.emit(dma_in(ub_offset=0))
        p.emit(VADD(d, d, s, Mask.full(), 2))
        p.scalar_loop_trips = 3
        assert p.unit_cycles(COST) == p.unit_cycles(
            COST, model="pipelined"
        )


class TestMakespanInvariant:
    """pipelined <= serial on every real lowered kernel."""

    @pytest.mark.parametrize(
        "name,op,with_mask",
        [(n, o, m) for n, o, m in forward_variants()],
    )
    def test_forward_kernels(self, name, op, with_mask):
        x = make_input(13, 13, 16, seed=0)
        spec = PoolSpec.square(3, 2)
        impl = forward_impl(name, op, with_mask)
        serial = run_forward(
            x, spec, impl, ASCEND910_SINGLE_CORE,
            collect_trace=False, execute="cycles",
        )
        pipe = run_forward(
            x, spec, impl, ASCEND910_SINGLE_CORE,
            collect_trace=False, execute="cycles", model="pipelined",
        )
        assert pipe.cycles <= serial.cycles
        assert pipe.timing_model == "pipelined"
        assert serial.timing_model == "serial"

    def test_numeric_outputs_identical_across_models(self):
        import numpy as np

        x = make_input(12, 12, 16, seed=3)
        spec = PoolSpec.square(2, 2)
        impl = forward_impl("im2col", "max")
        serial = run_forward(x, spec, impl, ASCEND910_SINGLE_CORE)
        pipe = run_forward(
            x, spec, impl, ASCEND910_SINGLE_CORE, model="pipelined"
        )
        assert np.array_equal(serial.output, pipe.output)
        assert pipe.cycles <= serial.cycles


class TestCacheModelSeparation:
    """Distinct timing models never alias in the program cache."""

    def _program(self):
        p = Program("k")
        d, s = vops(offset=16384)
        p.emit(dma_in(ub_offset=0))
        p.emit(VADD(d, d, s, Mask.full(), 2))
        return p

    def test_program_key_folds_model(self):
        from repro.sim import program_key

        base = dict(
            kind="fwd", impl="i", spec=(1,), geom=(2,),
            dtype=FLOAT16, image=(8, 8, 4, 4), config=ASCEND910,
        )
        assert program_key(**base) == program_key(**base, model="serial")
        assert program_key(**base) != program_key(
            **base, model="pipelined"
        )

    def test_summaries_memoized_per_model(self):
        from repro.sim import ProgramCache, program_key

        cache = ProgramCache()
        prog = self._program()
        results = {}
        for model in ("serial", "pipelined"):
            key = program_key(
                "fwd", "i", (1,), (2,), FLOAT16, (8, 8, 4, 4),
                ASCEND910, model=model,
            )
            got = cache.get_or_build(key, lambda: prog)
            results[model] = cache.summary(
                key, got, ASCEND910, model=model
            )
        assert results["serial"].cycles == prog.static_cycles(COST)
        assert results["pipelined"].cycles == prog.static_cycles(
            COST, model="pipelined"
        )
        assert results["pipelined"].cycles < results["serial"].cycles


class TestSummarizeHelper:
    def test_summarize_matches_models(self):
        p = Program("k")
        d, s = vops(offset=16384)
        p.emit(dma_in(ub_offset=0))
        p.emit(VADD(d, d, s, Mask.full(), 2))
        for model in ("serial", "pipelined"):
            res = summarize(p, ASCEND910, model=model)
            assert res.cycles == p.static_cycles(
                ASCEND910.cost, model=model
            )
            assert res.instructions == len(p)
            assert res.trace.collected
