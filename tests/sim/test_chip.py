"""Tests for the multi-core chip model."""

import numpy as np
import pytest

from repro.config import ASCEND910, ChipConfig
from repro.errors import SimulationError
from repro.isa import Mask, MemRef, Program, VectorDup, VectorOperand
from repro.dtypes import FLOAT16
from repro.sim import Chip, GlobalMemory


def tile_program(repeat=1, offset=0):
    """A tiny program writing `repeat` vector bodies."""
    d = MemRef("UB", offset, 128 * repeat, FLOAT16)
    p = Program(f"tile-{offset}")
    p.emit(VectorDup(VectorOperand(d), 1.0, Mask.full(), repeat))
    return p


LAUNCH = ASCEND910.cost.tile_launch_cycles


class TestChip:
    def test_core_count(self):
        assert len(Chip(ASCEND910).cores) == 32

    def test_zero_cores_rejected(self):
        with pytest.raises(SimulationError):
            Chip(ChipConfig(num_cores=0))

    def test_empty_tile_list_rejected(self, gm):
        with pytest.raises(SimulationError):
            Chip(ASCEND910).run_tiles([], gm)

    def test_single_tile_cycles(self, gm):
        chip = Chip(ASCEND910)
        prog = tile_program()
        res = chip.run_tiles([prog], gm)
        assert res.cycles == prog.static_cycles(ASCEND910.cost) + LAUNCH
        assert res.tiles == 1
        assert res.cores_used == 1

    def test_parallel_tiles_makespan_is_max(self, gm):
        # Two tiles on two cores: chip time = the slower one.
        chip = Chip(ASCEND910)
        short = tile_program(repeat=1)
        long = tile_program(repeat=100)
        res = chip.run_tiles([short, long], gm)
        assert res.cycles == long.static_cycles(ASCEND910.cost) + LAUNCH
        assert res.total_work_cycles == (
            short.static_cycles(ASCEND910.cost)
            + long.static_cycles(ASCEND910.cost)
            + 2 * LAUNCH
        )
        assert res.cores_used == 2

    def test_more_tiles_than_cores_round_robin(self, gm):
        cfg = ChipConfig(num_cores=2)
        chip = Chip(cfg)
        tiles = [tile_program(repeat=10) for _ in range(5)]
        res = chip.run_tiles(tiles, gm)
        per = tiles[0].static_cycles(cfg.cost) + LAUNCH
        # core 0 gets 3 tiles, core 1 gets 2
        assert res.cycles == 3 * per
        assert res.cores_used == 2
        assert res.tiles == 5

    def test_groups_serialise_on_one_core(self, gm):
        chip = Chip(ASCEND910)
        group = [tile_program(repeat=10) for _ in range(4)]
        res = chip.run_tile_groups([group], gm)
        per = group[0].static_cycles(ASCEND910.cost) + LAUNCH
        assert res.cycles == 4 * per  # serial, despite 32 cores
        assert res.cores_used == 1

    def test_groups_parallel_across_groups(self, gm):
        chip = Chip(ASCEND910)
        g1 = [tile_program(repeat=10)] * 2
        g2 = [tile_program(repeat=10)] * 2
        res = chip.run_tile_groups([g1, g2], gm)
        per = tile_program(repeat=10).static_cycles(ASCEND910.cost) + LAUNCH
        assert res.cycles == 2 * per
        assert res.cores_used == 2

    def test_empty_group_rejected(self, gm):
        with pytest.raises(SimulationError):
            Chip(ASCEND910).run_tile_groups([[]], gm)

    def test_tiles_share_global_memory(self, rng):
        gm = GlobalMemory()
        gm.zeros("out", 256, FLOAT16)
        chip = Chip(ChipConfig(num_cores=2))
        progs = []
        for t in range(2):
            d = MemRef("UB", 0, 128, FLOAT16)
            p = Program(f"t{t}")
            p.emit(VectorDup(VectorOperand(d), float(t + 1), Mask.full(), 1))
            from repro.isa import DataMove

            p.emit(DataMove(d, MemRef("out", t * 128, 128, FLOAT16)))
            progs.append(p)
        chip.run_tiles(progs, gm)
        out = gm.view("out")
        assert np.all(out[:128] == 1.0)
        assert np.all(out[128:] == 2.0)

    def test_chip_utilization_pooled(self, gm):
        chip = Chip(ASCEND910)
        res = chip.run_tiles([tile_program(), tile_program()], gm)
        assert res.vector_lane_utilization == pytest.approx(1.0)

    def test_chip_utilization_matches_trace_helper(self, gm):
        from repro.sim import pooled_lane_utilization

        chip = Chip(ASCEND910)
        res = chip.run_tiles([tile_program(2), tile_program()], gm)
        records = [
            rec for r in res.per_tile for rec in r.trace.records
        ]
        assert res.vector_lane_utilization == pytest.approx(
            pooled_lane_utilization(records)
        )

    def test_chip_utilization_uncollected_raises(self, gm):
        chip = Chip(ASCEND910)
        res = chip.run_tiles(
            [tile_program(), tile_program()], gm, collect_trace=False
        )
        with pytest.raises(SimulationError, match="collect_trace"):
            res.vector_lane_utilization

    def test_chip_utilization_uncollected_cycles_mode_raises(self):
        chip = Chip(ASCEND910)
        res = chip.run_tiles(
            [tile_program()], None, collect_trace=False, execute="cycles"
        )
        with pytest.raises(SimulationError, match="collect_trace"):
            res.vector_lane_utilization


class TestDispatchValidation:
    def test_negative_index_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            Chip(ASCEND910)._dispatch(-1)

    def test_summaries_length_mismatch_rejected(self, gm):
        chip = Chip(ChipConfig(num_cores=2))
        progs = [tile_program(), tile_program()]
        with pytest.raises(SimulationError, match="1 summaries for 2"):
            chip.run_tiles(progs, gm, summaries=[None])

    def test_group_summaries_shape_mismatch_rejected(self, gm):
        chip = Chip(ChipConfig(num_cores=2))
        groups = [[tile_program(), tile_program()], [tile_program()]]
        # wrong outer length
        with pytest.raises(SimulationError, match="mirror groups"):
            chip.run_tile_groups(groups, gm, summaries=[[None, None]])
        # wrong inner length
        with pytest.raises(SimulationError, match="mirror groups"):
            chip.run_tile_groups(
                groups, gm, summaries=[[None], [None]]
            )

    def test_matching_summaries_accepted(self, gm):
        chip = Chip(ChipConfig(num_cores=2))
        progs = [tile_program(), tile_program()]
        res = chip.run_tiles(progs, gm, summaries=[None, None])
        assert res.tiles == 2


class TestPerCoreBreakdown:
    def test_per_core_cycles_round_robin(self, gm):
        cfg = ChipConfig(num_cores=2)
        chip = Chip(cfg)
        tiles = [tile_program(repeat=10) for _ in range(5)]
        res = chip.run_tiles(tiles, gm)
        per = tiles[0].static_cycles(cfg.cost) + LAUNCH
        assert res.per_core_cycles == (3 * per, 2 * per)
        assert res.cycles == max(res.per_core_cycles)
        assert res.total_work_cycles == sum(res.per_core_cycles)

    def test_per_core_cycles_idle_cores_zero(self, gm):
        chip = Chip(ChipConfig(num_cores=4))
        res = chip.run_tiles([tile_program()], gm)
        assert len(res.per_core_cycles) == 4
        assert res.per_core_cycles[1:] == (0, 0, 0)
        assert res.cores_used == 1

    def test_load_imbalance_balanced(self, gm):
        chip = Chip(ChipConfig(num_cores=2))
        res = chip.run_tiles(
            [tile_program(repeat=10), tile_program(repeat=10)], gm
        )
        assert res.load_imbalance == pytest.approx(1.0)

    def test_load_imbalance_skewed(self, gm):
        cfg = ChipConfig(num_cores=2)
        chip = Chip(cfg)
        short = tile_program(repeat=1)
        long = tile_program(repeat=100)
        res = chip.run_tiles([long, short], gm)
        a = long.static_cycles(cfg.cost) + LAUNCH
        b = short.static_cycles(cfg.cost) + LAUNCH
        assert res.load_imbalance == pytest.approx(a / ((a + b) / 2))
        assert res.load_imbalance > 1.0

    def test_groups_accounting_matches_dispatch(self, gm):
        cfg = ChipConfig(num_cores=2)
        chip = Chip(cfg)
        g = [tile_program(repeat=5)] * 2
        res = chip.run_tile_groups([g, g, g], gm)
        per = g[0].static_cycles(cfg.cost) + LAUNCH
        # groups 0 and 2 land on core 0, group 1 on core 1
        assert res.per_core_cycles == (4 * per, 2 * per)

    def test_pipelined_model_threads_through_chip(self, gm):
        chip = Chip(ChipConfig(num_cores=2))
        tiles = [tile_program(repeat=10) for _ in range(3)]
        serial = chip.run_tiles(tiles, gm)
        pipe = chip.run_tiles(tiles, gm, model="pipelined")
        assert pipe.cycles <= serial.cycles
        for pa, pb in zip(pipe.per_tile, serial.per_tile):
            assert pa.cycles <= pb.cycles
