"""Tests for the simulated global memory."""

import numpy as np
import pytest

from repro.dtypes import FLOAT16
from repro.errors import SimulationError
from repro.sim import GlobalMemory


class TestGlobalMemory:
    def test_add_returns_spanning_ref(self, rng):
        gm = GlobalMemory()
        x = rng.standard_normal((2, 3, 4)).astype(np.float16)
        ref = gm.add("x", x)
        assert (ref.buffer, ref.offset, ref.size) == ("x", 0, 24)

    def test_add_copies(self, rng):
        gm = GlobalMemory()
        x = rng.standard_normal(8).astype(np.float16)
        gm.add("x", x)
        x[0] = 99
        assert gm.view("x")[0] != np.float16(99)

    def test_duplicate_name_rejected(self, rng):
        gm = GlobalMemory()
        gm.add("x", np.zeros(4, np.float16))
        with pytest.raises(SimulationError):
            gm.add("x", np.zeros(4, np.float16))

    def test_zeros(self):
        gm = GlobalMemory()
        gm.zeros("out", 100, FLOAT16)
        assert gm.view("out").size == 100
        assert not gm.view("out").any()

    def test_view_missing(self):
        with pytest.raises(SimulationError):
            GlobalMemory().view("nope")

    def test_read_reshapes_and_copies(self, rng):
        gm = GlobalMemory()
        x = rng.standard_normal((3, 4)).astype(np.float16)
        gm.add("x", x)
        got = gm.read("x", (3, 4))
        assert np.array_equal(got, x)
        got[0, 0] = 1  # copy: must not write through
        assert gm.view("x")[0] == x[0, 0]

    def test_read_wrong_shape(self, rng):
        gm = GlobalMemory()
        gm.add("x", np.zeros(12, np.float16))
        with pytest.raises(SimulationError):
            gm.read("x", (5, 5))

    def test_contains(self):
        gm = GlobalMemory()
        gm.add("x", np.zeros(4, np.float16))
        assert "x" in gm
        assert "y" not in gm
