"""Integration tests: every forward implementation against the golden
model, across geometry, padding, ops and tiling regimes."""

import numpy as np
import pytest

from repro.config import ASCEND910, ASCEND910_SINGLE_CORE
from repro.ops import PoolSpec, avgpool, maxpool, run_forward, forward_impl
from repro.ops.reference import (
    avgpool_forward_ref,
    maxpool_argmax_ref,
    maxpool_forward_ref,
)
from repro.workloads import make_input

ALL_IMPLS = ("standard", "im2col", "expansion", "xysplit")

GEOMETRIES = [
    # (h, w, c, spec) -- spanning strides, kernels, non-square cases
    (17, 17, 16, PoolSpec.square(3, 2)),
    (16, 16, 16, PoolSpec.square(2, 2)),        # VGG16-style, no overlap
    (15, 15, 16, PoolSpec.square(3, 3)),        # Figure 8c
    (13, 13, 16, PoolSpec.square(3, 1)),        # Figure 8a, max overlap
    (12, 18, 16, PoolSpec(kh=3, kw=2, sh=2, sw=3)),  # anisotropic
    (11, 11, 16, PoolSpec.square(3, 2)),        # partial final fractal
]


class TestMaxpoolForwardAllImpls:
    @pytest.mark.parametrize("impl", ALL_IMPLS)
    @pytest.mark.parametrize("h,w,c,spec", GEOMETRIES)
    def test_matches_reference(self, impl, h, w, c, spec,
                               single_core_config):
        x = make_input(h, w, c, seed=h * 100 + w)
        ref = maxpool_forward_ref(x, spec)
        res = maxpool(x, spec, impl=impl, config=single_core_config)
        assert np.array_equal(res.output, ref), (impl, h, w, spec)

    @pytest.mark.parametrize("impl", ALL_IMPLS)
    def test_with_padding(self, impl, single_core_config):
        x = make_input(10, 10, 16, seed=5)
        spec = PoolSpec(kh=3, kw=3, sh=2, sw=2, pt=1, pb=1, pl=1, pr=1)
        ref = maxpool_forward_ref(x, spec)
        res = maxpool(x, spec, impl=impl, config=single_core_config)
        assert np.array_equal(res.output, ref), impl

    @pytest.mark.parametrize("impl", ALL_IMPLS)
    def test_asymmetric_padding(self, impl, single_core_config):
        # the Xception/Resnet "same" padding: bottom/right only
        x = make_input(12, 12, 16, seed=6)
        spec = PoolSpec(kh=3, kw=3, sh=2, sw=2, pb=1, pr=1)
        ref = maxpool_forward_ref(x, spec)
        res = maxpool(x, spec, impl=impl, config=single_core_config)
        assert np.array_equal(res.output, ref), impl

    @pytest.mark.parametrize("impl", ("standard", "im2col"))
    def test_multi_channel_multi_core(self, impl):
        x = make_input(17, 17, 64, seed=7)  # C1 = 4
        spec = PoolSpec.square(3, 2)
        ref = maxpool_forward_ref(x, spec)
        res = maxpool(x, spec, impl=impl, config=ASCEND910)
        assert np.array_equal(res.output, ref)
        assert res.chip.cores_used > 1

    @pytest.mark.parametrize("impl", ("standard", "im2col"))
    def test_batched_input(self, impl, single_core_config):
        x = make_input(9, 9, 16, n=3, seed=8)
        spec = PoolSpec.square(3, 2)
        ref = maxpool_forward_ref(x, spec)
        res = maxpool(x, spec, impl=impl, config=single_core_config)
        assert np.array_equal(res.output, ref)

    @pytest.mark.parametrize("impl", ("standard", "im2col"))
    def test_forced_row_tiling(self, impl):
        # 63x63 stride 2: the im2col planes exceed the UB, forcing
        # row chunks even on one core.
        x = make_input(63, 63, 16, seed=9)
        spec = PoolSpec.square(3, 2)
        ref = maxpool_forward_ref(x, spec)
        res = maxpool(x, spec, impl=impl, config=ASCEND910_SINGLE_CORE)
        assert np.array_equal(res.output, ref)
        if impl == "im2col":
            assert len(res.tiles) > 1


class TestMaxpoolWithMask:
    @pytest.mark.parametrize("impl", ("standard", "im2col", "expansion"))
    def test_mask_matches_reference(self, impl, single_core_config):
        x = make_input(13, 13, 16, seed=10)
        spec = PoolSpec.square(3, 2)
        res = maxpool(x, spec, impl=impl, with_mask=True,
                      config=single_core_config)
        assert np.array_equal(res.output, maxpool_forward_ref(x, spec))
        assert np.array_equal(res.mask, maxpool_argmax_ref(x, spec))

    def test_mask_with_ties(self, single_core_config):
        # Constant input: every patch ties; first-occurrence wins.
        x = np.ones((1, 1, 9, 9, 16), np.float16)
        spec = PoolSpec.square(3, 2)
        for impl in ("standard", "im2col"):
            res = maxpool(x, spec, impl=impl, with_mask=True,
                          config=single_core_config)
            assert np.array_equal(res.mask, maxpool_argmax_ref(x, spec)), impl

    def test_mask_tiled(self, single_core_config):
        x = make_input(45, 45, 16, seed=11)
        spec = PoolSpec.square(3, 2)
        res = maxpool(x, spec, impl="im2col", with_mask=True,
                      config=single_core_config)
        assert np.array_equal(res.mask, maxpool_argmax_ref(x, spec))
        assert len(res.tiles) > 1

    def test_xysplit_refuses_mask(self):
        from repro.errors import LayoutError

        with pytest.raises(LayoutError):
            forward_impl("xysplit", "max", with_mask=True)


class TestAvgpoolForward:
    @pytest.mark.parametrize("impl", ("standard", "im2col", "expansion"))
    @pytest.mark.parametrize("h,w,c,spec", GEOMETRIES[:4])
    def test_matches_reference_exact(self, impl, h, w, c, spec,
                                     single_core_config):
        x = make_input(h, w, c, seed=h + w)
        ref = avgpool_forward_ref(x, spec)
        res = avgpool(x, spec, impl=impl, config=single_core_config)
        assert np.array_equal(res.output, ref), impl

    def test_xysplit_within_fp16_rounding(self, single_core_config):
        # The X-Y split regroups the fp16 summation (rows then columns),
        # so only tolerance-level agreement is possible.
        x = make_input(17, 17, 16, seed=3)
        spec = PoolSpec.square(3, 2)
        ref = avgpool_forward_ref(x, spec)
        res = avgpool(x, spec, impl="xysplit", config=single_core_config)
        np.testing.assert_allclose(
            res.output.astype(np.float32), ref.astype(np.float32),
            rtol=5e-3, atol=5e-3,
        )

    def test_avgpool_with_padding(self, single_core_config):
        x = make_input(10, 10, 16, seed=4)
        spec = PoolSpec(kh=2, kw=2, sh=2, sw=2, pb=1, pr=1)
        ref = avgpool_forward_ref(x, spec)
        res = avgpool(x, spec, impl="im2col", config=single_core_config)
        assert np.array_equal(res.output, ref)


class TestInputValidation:
    def test_wrong_rank_rejected(self):
        from repro.errors import LayoutError

        with pytest.raises(LayoutError):
            maxpool(np.zeros((4, 4), np.float16), PoolSpec.square(2, 2))

    def test_wrong_c0_rejected(self):
        from repro.errors import LayoutError

        with pytest.raises(LayoutError):
            maxpool(np.zeros((1, 1, 4, 4, 8), np.float16),
                    PoolSpec.square(2, 2))

    def test_unknown_impl(self):
        from repro.errors import ReproError

        x = make_input(8, 8, 16)
        with pytest.raises(ReproError):
            maxpool(x, PoolSpec.square(2, 2), impl="magic")


class TestCycleAccounting:
    def test_cycles_positive_and_deterministic(self, single_core_config):
        x = make_input(11, 11, 16, seed=1)
        spec = PoolSpec.square(3, 2)
        a = maxpool(x, spec, impl="im2col", config=single_core_config)
        b = maxpool(x, spec, impl="im2col", config=single_core_config)
        assert a.cycles == b.cycles > 0

    def test_trace_collection_does_not_change_cycles(self, single_core_config):
        x = make_input(11, 11, 16, seed=1)
        spec = PoolSpec.square(3, 2)
        a = maxpool(x, spec, impl="standard", config=single_core_config,
                    collect_trace=True)
        b = maxpool(x, spec, impl="standard", config=single_core_config,
                    collect_trace=False)
        assert a.cycles == b.cycles

    def test_im2col_saturates_lanes(self, single_core_config):
        x = make_input(17, 17, 16, seed=2)
        spec = PoolSpec.square(3, 2)
        res = maxpool(x, spec, impl="im2col", config=single_core_config)
        assert res.chip.vector_lane_utilization > 0.9

    def test_standard_wastes_lanes(self, single_core_config):
        x = make_input(17, 17, 16, seed=2)
        spec = PoolSpec.square(3, 2)
        res = maxpool(x, spec, impl="standard", config=single_core_config)
        assert res.chip.vector_lane_utilization < 0.25
