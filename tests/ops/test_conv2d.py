"""Tests for the Cube-unit convolution (the instructions' native use)."""

import numpy as np
import pytest

from repro.config import ASCEND910, ASCEND910_SINGLE_CORE
from repro.errors import LayoutError
from repro.ops import PoolSpec
from repro.ops.conv2d import (
    conv2d,
    conv2d_input_grad,
    conv2d_input_grad_ref,
    conv2d_ref,
    weight_fractals,
)
from repro.workloads import make_input


def weights(rng, cout, c, k):
    return (rng.standard_normal((cout, c, k, k)) * 0.1).astype(np.float16)


ULP = dict(rtol=2e-3, atol=2e-3)  # one fp16 ulp of summation-order slack


class TestWeightFractals:
    def test_shape(self, rng):
        w = weights(rng, 32, 48, 3)
        f = weight_fractals(w, 3, 3)
        assert f.shape == (2, 3 * 9, 16, 16)

    def test_channel_padding(self, rng):
        w = weights(rng, 16, 20, 2)  # C=20 -> C1=2 with zero pad
        f = weight_fractals(w, 2, 2)
        assert f.shape == (1, 2 * 4, 16, 16)
        # padded input-channel rows are zero in the second c1 group
        assert np.all(f[0, 4:, 4:, :] == 0)

    def test_element_placement(self, rng):
        w = weights(rng, 16, 16, 2)
        f = weight_fractals(w, 2, 2)
        # fractal k = (c1=0, kh, kw), entry [c0_in, cout]
        assert f[0, 0, 3, 5] == w[5, 3, 0, 0]
        assert f[0, 3, 3, 5] == w[5, 3, 1, 1]

    def test_kernel_mismatch(self, rng):
        with pytest.raises(LayoutError):
            weight_fractals(weights(rng, 16, 16, 2), 3, 3)


class TestConv2dForward:
    @pytest.mark.parametrize("h,c,cout,k,s", [
        (8, 16, 16, 2, 2),
        (9, 16, 16, 3, 1),
        (12, 32, 16, 3, 2),
        (10, 16, 32, 3, 1),
    ])
    def test_matches_reference(self, rng, h, c, cout, k, s):
        x = make_input(h, h, c, seed=h + c)
        w = weights(rng, cout, c, k)
        spec = PoolSpec.square(k, s)
        res = conv2d(x, w, spec, config=ASCEND910_SINGLE_CORE)
        ref = conv2d_ref(x, w, spec)
        np.testing.assert_allclose(
            res.output.astype(np.float32), ref.astype(np.float32), **ULP
        )

    def test_multicore(self, rng):
        x = make_input(10, 10, 16, n=2, seed=1)
        w = weights(rng, 32, 16, 3)
        spec = PoolSpec.square(3, 1)
        res = conv2d(x, w, spec, config=ASCEND910)
        ref = conv2d_ref(x, w, spec)
        np.testing.assert_allclose(
            res.output.astype(np.float32), ref.astype(np.float32), **ULP
        )
        assert res.chip.cores_used == 4  # N * Cout1 tiles

    def test_uses_cube_and_mode0_im2col(self, rng):
        x = make_input(8, 8, 16, seed=2)
        w = weights(rng, 16, 16, 2)
        res = conv2d(x, w, PoolSpec.square(2, 2),
                     config=ASCEND910_SINGLE_CORE)
        counts = res.chip.per_tile[0].trace.issue_counts()
        assert counts["mmad"] >= 1
        assert counts["im2col"] >= 1

    def test_cout_not_multiple_of_16_rejected(self, rng):
        x = make_input(8, 8, 16)
        with pytest.raises(LayoutError):
            conv2d(x, weights(rng, 8, 16, 2), PoolSpec.square(2, 2))

    def test_channel_mismatch_rejected(self, rng):
        x = make_input(8, 8, 16)
        with pytest.raises(LayoutError):
            conv2d(x, weights(rng, 16, 32, 2), PoolSpec.square(2, 2))


class TestConv2dInputGrad:
    @pytest.mark.parametrize("h,c,cout,k,s", [
        (8, 16, 16, 2, 2),
        (10, 16, 16, 3, 1),
        (12, 16, 32, 3, 2),
    ])
    def test_matches_reference(self, rng, h, c, cout, k, s):
        spec = PoolSpec.square(k, s)
        oh, ow = spec.out_hw(h, h)
        dy = rng.standard_normal(
            (1, cout // 16, oh, ow, 16)
        ).astype(np.float16)
        w = weights(rng, cout, c, k)
        res = conv2d_input_grad(dy, w, spec, h, h,
                                config=ASCEND910_SINGLE_CORE)
        ref = conv2d_input_grad_ref(dy, w, spec, h, h)
        np.testing.assert_allclose(
            res.output.astype(np.float32), ref.astype(np.float32), **ULP
        )

    def test_uses_col2im(self, rng):
        spec = PoolSpec.square(2, 2)
        dy = rng.standard_normal((1, 1, 4, 4, 16)).astype(np.float16)
        w = weights(rng, 16, 16, 2)
        res = conv2d_input_grad(dy, w, spec, 8, 8,
                                config=ASCEND910_SINGLE_CORE)
        counts = res.chip.per_tile[0].trace.issue_counts()
        assert counts["col2im"] == 4  # Kh*Kw
        assert counts["mmad"] >= 1
