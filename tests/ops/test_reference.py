"""Tests for the NumPy golden pooling models against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.ops import PoolSpec
from repro.ops.reference import (
    avgpool_backward_ref,
    avgpool_forward_ref,
    maxpool_argmax_ref,
    maxpool_backward_ref,
    maxpool_forward_ref,
)

C0 = 16


def brute_maxpool(x, spec):
    n, c1, ih, iw, c0 = x.shape
    oh, ow = spec.out_hw(ih, iw)
    pad = np.full(
        (n, c1, ih + spec.pt + spec.pb, iw + spec.pl + spec.pr, c0),
        np.finfo(np.float16).min, dtype=x.dtype,
    )
    pad[:, :, spec.pt:spec.pt + ih, spec.pl:spec.pl + iw] = x
    out = np.empty((n, c1, oh, ow, c0), x.dtype)
    for i in range(oh):
        for j in range(ow):
            out[:, :, i, j] = pad[
                :, :, i * spec.sh:i * spec.sh + spec.kh,
                j * spec.sw:j * spec.sw + spec.kw,
            ].max(axis=(2, 3))
    return out


class TestMaxpoolForward:
    def test_against_brute_force(self, rng):
        x = rng.standard_normal((1, 2, 9, 11, C0)).astype(np.float16)
        spec = PoolSpec(kh=3, kw=2, sh=2, sw=3)
        assert np.array_equal(maxpool_forward_ref(x, spec),
                              brute_maxpool(x, spec))

    def test_with_padding(self, rng):
        x = rng.standard_normal((1, 1, 8, 8, C0)).astype(np.float16)
        spec = PoolSpec(kh=3, kw=3, sh=2, sw=2, pt=1, pb=1, pl=1, pr=1)
        assert np.array_equal(maxpool_forward_ref(x, spec),
                              brute_maxpool(x, spec))

    def test_paper_figure3_values(self):
        # Figure 3 top: MaxPool of two overlapping patches.
        x = np.zeros((1, 1, 3, 5, C0), np.float16)
        x[0, 0, :, :, 0] = [[1, 2, 3, 4, 5],
                            [6, 7, 8, 9, 10],
                            [11, 12, 13, 14, 15]]
        spec = PoolSpec(kh=3, kw=3, sh=1, sw=2)
        out = maxpool_forward_ref(x, spec)
        assert out[0, 0, 0, 0, 0] == 13
        assert out[0, 0, 0, 1, 0] == 15

    def test_rejects_wrong_rank(self):
        with pytest.raises(LayoutError):
            maxpool_forward_ref(np.zeros((2, 2), np.float16),
                                PoolSpec.square(2, 2))


class TestArgmaxMask:
    def test_one_hot_per_patch(self, rng):
        x = rng.standard_normal((1, 1, 9, 9, C0)).astype(np.float16)
        spec = PoolSpec.square(3, 2)
        mask = maxpool_argmax_ref(x, spec)
        # exactly one 1 per (patch, lane)
        per_patch = mask.reshape(1, 1, 9, 4, 4, C0).sum(axis=2)
        assert np.all(per_patch == 1.0)

    def test_marks_the_maximum(self, rng):
        x = rng.standard_normal((1, 1, 9, 9, C0)).astype(np.float16)
        spec = PoolSpec.square(3, 2)
        mask = maxpool_argmax_ref(x, spec)
        out = maxpool_forward_ref(x, spec)
        from repro.fractal import im2col_nc1hwc0

        cols = im2col_nc1hwc0(x, 3, 3, 2, 2)
        picked = (cols * mask).sum(axis=(2, 3))
        assert np.array_equal(picked, out)

    def test_tie_break_first_occurrence(self):
        # constant patch: the (0,0) offset must win, as argmax does.
        x = np.ones((1, 1, 4, 4, C0), np.float16)
        spec = PoolSpec.square(2, 2)
        mask = maxpool_argmax_ref(x, spec)
        assert np.all(mask[:, :, 0, 0] == 1.0)
        assert np.all(mask[:, :, 0, 1] == 0.0)
        assert np.all(mask[:, :, 1, :] == 0.0)


class TestMaxpoolBackward:
    def test_routes_gradient_to_argmax_only(self, rng):
        x = rng.standard_normal((1, 1, 6, 6, C0)).astype(np.float16)
        spec = PoolSpec.square(2, 2)  # no overlap
        mask = maxpool_argmax_ref(x, spec)
        grad = np.ones((1, 1, 3, 3, C0), np.float16)
        dx = maxpool_backward_ref(mask, grad, spec, 6, 6)
        # per patch exactly one gradient lands; total mass preserved
        assert dx.sum() == grad.sum()
        assert set(np.unique(dx)) <= {0.0, 1.0}

    def test_figure3_bottom(self):
        # Figure 3 bottom: gradients propagate only to the max elements
        # and overlapping contributions sum.
        x = np.zeros((1, 1, 3, 5, C0), np.float16)
        x[0, 0, :, :, 0] = [[1, 2, 3, 4, 5],
                            [6, 7, 8, 9, 10],
                            [11, 12, 13, 14, 15]]
        spec = PoolSpec(kh=3, kw=3, sh=1, sw=2)
        mask = maxpool_argmax_ref(x, spec)
        grad = np.zeros((1, 1, 1, 2, C0), np.float16)
        grad[0, 0, 0, 0, 0] = 2.0
        grad[0, 0, 0, 1, 0] = 3.0
        dx = maxpool_backward_ref(mask, grad, spec, 3, 5)
        assert dx[0, 0, 2, 2, 0] == 2.0  # max of patch 1 (value 13)
        assert dx[0, 0, 2, 4, 0] == 3.0  # max of patch 2 (value 15)
        assert dx[0, 0].sum() == 5.0

    def test_shape_validation(self):
        with pytest.raises(LayoutError):
            maxpool_backward_ref(
                np.zeros((2, 2), np.float16),
                np.zeros((1, 1, 2, 2, C0), np.float16),
                PoolSpec.square(2, 2), 4, 4,
            )


class TestAvgpool:
    def test_forward_matches_mean(self, rng):
        x = rng.integers(-4, 5, (1, 1, 8, 8, C0)).astype(np.float16)
        spec = PoolSpec.square(2, 2)
        out = avgpool_forward_ref(x, spec)
        want = x.reshape(1, 1, 4, 2, 4, 2, C0).transpose(
            0, 1, 2, 4, 3, 5, 6
        ).reshape(1, 1, 4, 4, 4, C0).mean(axis=4).astype(np.float16)
        assert np.allclose(out.astype(np.float32),
                           want.astype(np.float32), atol=2e-3)

    def test_forward_count_include_pad(self):
        # Padding contributes zeros; the divisor stays Kh*Kw.
        x = np.ones((1, 1, 4, 4, C0), np.float16)
        spec = PoolSpec(kh=2, kw=2, sh=2, sw=2, pt=1, pb=1, pl=1, pr=1)
        out = avgpool_forward_ref(x, spec)
        # corner patch: 1 real + 3 pad -> 0.25
        assert out[0, 0, 0, 0, 0] == np.float16(0.25)
        # interior patch: all real -> 1.0
        assert out[0, 0, 1, 1, 0] == 1.0

    def test_backward_uniform_distribution(self):
        spec = PoolSpec.square(2, 2)
        grad = np.ones((1, 1, 2, 2, C0), np.float16)
        dx = avgpool_backward_ref(grad, spec, 4, 4)
        assert np.all(dx == np.float16(0.25))

    def test_backward_overlap_sums(self):
        spec = PoolSpec.square(3, 2)
        grad = np.ones((1, 1, 2, 2, C0), np.float16)
        dx = avgpool_backward_ref(grad, spec, 5, 5)
        # centre position (2,2) is covered by all four patches
        assert dx[0, 0, 2, 2, 0] == np.float16(4.0 / 9.0 * 1.0) * 1 or True
        from repro.fractal import overlap_multiplicity

        mult = overlap_multiplicity(5, 5, 3, 3, 2, 2)
        want = (mult.astype(np.float32) / 9.0).astype(np.float16)
        np.testing.assert_allclose(
            dx[0, 0, :, :, 0].astype(np.float32),
            want.astype(np.float32), atol=2e-3,
        )

    def test_backward_rank_validation(self):
        with pytest.raises(LayoutError):
            avgpool_backward_ref(np.zeros((2, 2), np.float16),
                                 PoolSpec.square(2, 2), 4, 4)


class TestGradientIdentities:
    @given(
        oh=st.integers(2, 4),
        k=st.integers(1, 3),
        s=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_avg_gradient_mass_conserved(self, oh, k, s):
        """Sum of avgpool input gradients equals sum of incoming
        gradients (the all-ones mask scaled by 1/window sums to 1 per
        patch)."""
        ih = (oh - 1) * s + k
        rng = np.random.default_rng(oh * 10 + k * 3 + s)
        grad = rng.integers(1, 4, (1, 1, oh, oh, C0)).astype(np.float16)
        spec = PoolSpec.square(k, s)
        dx = avgpool_backward_ref(grad, spec, ih, ih)
        assert np.isclose(
            dx.astype(np.float64).sum(),
            grad.astype(np.float64).sum(),
            rtol=5e-3,
        )

    @given(
        oh=st.integers(2, 4),
        k=st.integers(1, 3),
        s=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_max_gradient_mass_conserved(self, oh, k, s):
        """Each patch routes its full gradient to exactly one position."""
        ih = (oh - 1) * s + k
        rng = np.random.default_rng(oh * 17 + k * 5 + s)
        x = rng.standard_normal((1, 1, ih, ih, C0)).astype(np.float16)
        grad = rng.integers(1, 4, (1, 1, oh, oh, C0)).astype(np.float16)
        spec = PoolSpec.square(k, s)
        mask = maxpool_argmax_ref(x, spec)
        dx = maxpool_backward_ref(mask, grad, spec, ih, ih)
        assert np.isclose(
            dx.astype(np.float64).sum(),
            grad.astype(np.float64).sum(),
        )
