"""Tiling must never change results: forced-tiling equivalence tests.

Runs the same workload untiled (single big-UB config) and tiled
(shrunken UB forcing many row chunks) and requires identical outputs --
the strongest guard against seam bugs in the tile geometry, the DMA
offsets and the padding distribution.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import ASCEND910_SINGLE_CORE
from repro.ops import (
    PoolSpec,
    backward_impl,
    forward_impl,
    run_backward,
    run_forward,
)
from repro.ops.reference import maxpool_argmax_ref
from repro.workloads import make_gradient, make_input

BIG = ASCEND910_SINGLE_CORE
#: Tiny UB: forces several row chunks on even the small test workloads.
SMALL = dataclasses.replace(ASCEND910_SINGLE_CORE, ub_bytes=24 * 1024,
                            l1_bytes=256 * 1024)


def tiles_of(res):
    return len(res.tiles)


class TestForwardTiledEquivalence:
    @pytest.mark.parametrize("name", ["standard", "im2col", "expansion",
                                      "xysplit"])
    def test_maxpool(self, name):
        x = make_input(29, 29, 16, seed=0)
        spec = PoolSpec.square(3, 2)
        impl = forward_impl(name, "max")
        whole = run_forward(x, spec, impl, BIG, collect_trace=False)
        tiled = run_forward(x, spec, impl, SMALL, collect_trace=False)
        assert tiles_of(tiled) > tiles_of(whole)
        assert np.array_equal(whole.output, tiled.output), name

    @pytest.mark.parametrize("name", ["standard", "im2col"])
    def test_maxpool_with_padding(self, name):
        x = make_input(26, 26, 16, seed=1)
        spec = PoolSpec(kh=3, kw=3, sh=2, sw=2, pt=1, pb=1, pl=1, pr=1)
        impl = forward_impl(name, "max")
        whole = run_forward(x, spec, impl, BIG, collect_trace=False)
        tiled = run_forward(x, spec, impl, SMALL, collect_trace=False)
        assert tiles_of(tiled) > 1
        assert np.array_equal(whole.output, tiled.output), name

    @pytest.mark.parametrize("name", ["standard", "im2col"])
    def test_mask_identical_across_tilings(self, name):
        x = make_input(29, 29, 16, seed=2)
        spec = PoolSpec.square(3, 2)
        impl = forward_impl(name, "max", with_mask=True)
        whole = run_forward(x, spec, impl, BIG, collect_trace=False)
        tiled = run_forward(x, spec, impl, SMALL, collect_trace=False)
        assert np.array_equal(whole.mask, tiled.mask), name
        assert np.array_equal(whole.mask, maxpool_argmax_ref(x, spec))


class TestBackwardTiledEquivalence:
    @pytest.mark.parametrize("name", ["standard", "col2im"])
    def test_maxpool_backward_integer_exact(self, name):
        # Integer gradients make fp16 sums order-independent, so even
        # the seam rows must agree exactly.
        h = w = 29
        spec = PoolSpec.square(3, 2)
        x = make_input(h, w, 16, seed=3)
        mask = maxpool_argmax_ref(x, spec)
        oh, ow = spec.out_hw(h, w)
        rng = np.random.default_rng(4)
        grad = rng.integers(-3, 4, (1, 1, oh, ow, 16)).astype(np.float16)
        impl = backward_impl(name, "max")
        whole = run_backward(grad, spec, impl, h, w, mask=mask,
                             config=BIG, collect_trace=False)
        tiled = run_backward(grad, spec, impl, h, w, mask=mask,
                             config=SMALL, collect_trace=False)
        assert tiles_of(tiled) > tiles_of(whole)
        assert np.array_equal(whole.output, tiled.output), name

    @pytest.mark.parametrize("name", ["standard", "col2im"])
    def test_avgpool_backward_float_tolerance(self, name):
        h = w = 29
        spec = PoolSpec.square(3, 2)
        oh, ow = spec.out_hw(h, w)
        grad = make_gradient(1, oh, ow, seed=5)
        impl = backward_impl(name, "avg")
        whole = run_backward(grad, spec, impl, h, w, config=BIG,
                             collect_trace=False)
        tiled = run_backward(grad, spec, impl, h, w, config=SMALL,
                             collect_trace=False)
        np.testing.assert_allclose(
            whole.output.astype(np.float32),
            tiled.output.astype(np.float32),
            rtol=5e-3, atol=5e-3,
        )


class TestTiledCycleSanity:
    def test_tiling_adds_bounded_overhead_single_core(self):
        # Chunking re-loads overlap rows and pays per-tile launches; on
        # one core the total must stay within a modest factor.
        x = make_input(29, 29, 16, seed=6)
        spec = PoolSpec.square(3, 2)
        impl = forward_impl("im2col", "max")
        whole = run_forward(x, spec, impl, BIG, collect_trace=False)
        tiled = run_forward(x, spec, impl, SMALL, collect_trace=False)
        assert tiled.cycles < 2.5 * whole.cycles
