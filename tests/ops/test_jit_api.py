"""``execute="jit"`` through the public API layer (`repro.ops.api`).

The JIT contract at the surface users actually call: every registered
forward and backward variant must produce bit-identical outputs, masks
and cycle counts with ``execute="jit"``, under both timing models,
with or without the shared program cache — and the mode-exclusivity
guards must fire with the same messages the lower layers raise.
"""

import numpy as np
import pytest

from repro.errors import LayoutError, SimulationError
from repro.fractal import nhwc_to_nc1hwc0
from repro.ops import PoolSpec
from repro.ops.api import avgpool, avgpool_backward, maxpool, maxpool_backward
from repro.ops.base import run_forward
from repro.ops.registry import forward_impl

SPEC = PoolSpec.square(3, 2)
IH = IW = 15


@pytest.fixture(scope="module")
def x5():
    x = np.random.default_rng(7).standard_normal((1, IH, IW, 32))
    return nhwc_to_nc1hwc0(x.astype(np.float16))


def _same(a, b):
    assert a.cycles == b.cycles
    assert np.array_equal(a.output, b.output)
    if a.mask is not None or b.mask is not None:
        assert np.array_equal(a.mask, b.mask)


class TestForwardParity:
    @pytest.mark.parametrize("impl", ["standard", "im2col", "expansion", "xysplit"])
    def test_maxpool_jit_matches_interpreter(self, x5, impl):
        _same(maxpool(x5, SPEC, impl=impl),
              maxpool(x5, SPEC, impl=impl, execute="jit"))

    @pytest.mark.parametrize("impl", ["standard", "im2col", "expansion"])
    def test_maxpool_with_mask_jit(self, x5, impl):
        _same(maxpool(x5, SPEC, impl=impl, with_mask=True),
              maxpool(x5, SPEC, impl=impl, with_mask=True, execute="jit"))

    @pytest.mark.parametrize("impl", ["standard", "im2col", "expansion", "xysplit"])
    def test_avgpool_jit(self, x5, impl):
        _same(avgpool(x5, SPEC, impl=impl),
              avgpool(x5, SPEC, impl=impl, execute="jit"))

    def test_pipelined_model_jit(self, x5):
        _same(maxpool(x5, SPEC, impl="im2col", model="pipelined"),
              maxpool(x5, SPEC, impl="im2col", model="pipelined",
                      execute="jit"))

    def test_uncached_path_jit(self, x5):
        impl = forward_impl("im2col", "max", with_mask=False)
        _same(run_forward(x5, SPEC, impl, cache=None),
              run_forward(x5, SPEC, impl, cache=None, execute="jit"))


class TestBackwardParity:
    @pytest.fixture(scope="class")
    def grads(self, x5):
        fwd = maxpool(x5, SPEC, impl="im2col", with_mask=True)
        grad = np.random.default_rng(8).standard_normal(
            fwd.output.shape).astype(np.float16)
        return fwd.mask, grad

    @pytest.mark.parametrize("impl", ["standard", "col2im"])
    def test_maxpool_backward_jit(self, grads, impl):
        mask, grad = grads
        _same(maxpool_backward(mask, grad, SPEC, IH, IW, impl=impl),
              maxpool_backward(mask, grad, SPEC, IH, IW, impl=impl,
                               execute="jit"))

    @pytest.mark.parametrize("impl", ["standard", "col2im"])
    def test_avgpool_backward_jit(self, grads, impl):
        _, grad = grads
        _same(avgpool_backward(grad, SPEC, IH, IW, impl=impl),
              avgpool_backward(grad, SPEC, IH, IW, impl=impl,
                               execute="jit"))


class TestGuards:
    def test_jit_rejects_sanitize(self, x5):
        with pytest.raises(SimulationError, match="sanitized dispatch"):
            maxpool(x5, SPEC, impl="im2col", execute="jit", sanitize=True)

    def test_unknown_mode_names_jit(self, x5):
        with pytest.raises(LayoutError, match="'numeric', 'cycles' or 'jit'"):
            maxpool(x5, SPEC, impl="im2col", execute="jitt")
