"""Tests for the Cube-unit AvgPool (the paper's future-work path)."""

import numpy as np
import pytest

from repro.config import ASCEND910_SINGLE_CORE
from repro.errors import LayoutError
from repro.ops import PoolSpec, avgpool
from repro.ops.fused import (
    avgpool_kernel_weights,
    avgpool_via_cube,
    maxpool_via_cube,
)
from repro.ops.reference import avgpool_forward_ref
from repro.workloads import make_input

TOL = dict(rtol=2e-3, atol=2e-3)


class TestKernelWeights:
    def test_diagonal_structure(self):
        w = avgpool_kernel_weights(32, PoolSpec.square(3, 2))
        assert w.shape == (32, 32, 3, 3)
        assert np.all(w[5, 5] == np.float16(1.0 / 9.0))
        assert np.all(w[5, 6] == 0)

    def test_rows_sum_to_one(self):
        w = avgpool_kernel_weights(16, PoolSpec.square(2, 2))
        assert np.allclose(w.sum(axis=(1, 2, 3)), 1.0, atol=1e-3)

    def test_channel_count_validated(self):
        with pytest.raises(LayoutError):
            avgpool_kernel_weights(20, PoolSpec.square(2, 2))


class TestAvgpoolViaCube:
    @pytest.mark.parametrize("k,s", [(2, 2), (3, 2), (3, 1)])
    def test_matches_reference(self, k, s):
        x = make_input(12, 12, 16, seed=0)
        spec = PoolSpec.square(k, s)
        res = avgpool_via_cube(x, spec, config=ASCEND910_SINGLE_CORE)
        ref = avgpool_forward_ref(x, spec)
        np.testing.assert_allclose(
            res.output.astype(np.float32), ref.astype(np.float32), **TOL
        )

    def test_matches_vector_route(self):
        x = make_input(12, 12, 32, seed=1)
        spec = PoolSpec.square(3, 2)
        cube = avgpool_via_cube(x, spec, config=ASCEND910_SINGLE_CORE)
        vector = avgpool(x, spec, impl="im2col",
                         config=ASCEND910_SINGLE_CORE)
        np.testing.assert_allclose(
            cube.output.astype(np.float32),
            vector.output.astype(np.float32), **TOL
        )

    def test_uses_the_cube_unit(self):
        x = make_input(12, 12, 16, seed=2)
        res = avgpool_via_cube(x, PoolSpec.square(2, 2),
                               config=ASCEND910_SINGLE_CORE)
        counts = res.chip.per_tile[0].trace.issue_counts()
        assert counts["mmad"] >= 1

    def test_vector_route_cheaper_for_standalone_pooling(self):
        # The diagonal kernel wastes the matrix unit on zeros; standalone
        # AvgPool belongs on the Vector Unit (the Cube route pays off
        # only fused with a real convolution).
        x = make_input(12, 12, 32, seed=3)
        spec = PoolSpec.square(3, 2)
        cube = avgpool_via_cube(x, spec, config=ASCEND910_SINGLE_CORE,
                                collect_trace=False)
        vector = avgpool(x, spec, impl="im2col",
                         config=ASCEND910_SINGLE_CORE, collect_trace=False)
        assert vector.cycles < cube.cycles


class TestMaxpoolGuard:
    def test_maxpool_has_no_cube_mapping(self):
        with pytest.raises(LayoutError):
            maxpool_via_cube()
