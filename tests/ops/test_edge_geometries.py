"""Edge geometries: global pooling, 1x1 kernels, extreme aspect ratios,
single-patch grids -- the corners a downstream user will eventually hit."""

import numpy as np
import pytest

from repro.config import ASCEND910_SINGLE_CORE
from repro.ops import PoolSpec, avgpool, maxpool, maxpool_backward
from repro.ops.reference import (
    avgpool_forward_ref,
    maxpool_argmax_ref,
    maxpool_backward_ref,
    maxpool_forward_ref,
)
from repro.workloads import make_input

CFG = ASCEND910_SINGLE_CORE


class TestGlobalPooling:
    """kernel == image: one patch, the ResNet head pattern."""

    @pytest.mark.parametrize("impl", ["standard", "im2col", "expansion"])
    def test_global_max(self, impl):
        x = make_input(17, 17, 16, seed=0)
        spec = PoolSpec(kh=17, kw=17, sh=17, sw=17)
        res = maxpool(x, spec, impl=impl, config=CFG)
        assert res.output.shape == (1, 1, 1, 1, 16)
        assert np.array_equal(res.output, maxpool_forward_ref(x, spec))

    @pytest.mark.parametrize("impl", ["standard", "im2col"])
    def test_global_avg(self, impl):
        x = make_input(8, 8, 16, seed=1)
        spec = PoolSpec(kh=8, kw=8, sh=8, sw=8)
        res = avgpool(x, spec, impl=impl, config=CFG)
        assert np.array_equal(res.output, avgpool_forward_ref(x, spec))

    def test_global_backward(self):
        x = make_input(8, 8, 16, seed=2)
        spec = PoolSpec(kh=8, kw=8, sh=8, sw=8)
        mask = maxpool_argmax_ref(x, spec)
        grad = np.ones((1, 1, 1, 1, 16), np.float16)
        res = maxpool_backward(mask, grad, spec, 8, 8, impl="col2im",
                               config=CFG)
        ref = maxpool_backward_ref(mask, grad, spec, 8, 8)
        assert np.array_equal(res.output, ref)
        # exactly one gradient routed per lane
        assert res.output.sum() == 16


class TestOneByOneKernel:
    """k=1: pooling degenerates to (strided) identity/subsampling."""

    @pytest.mark.parametrize("impl", ["standard", "im2col"])
    def test_identity(self, impl):
        x = make_input(8, 8, 16, seed=3)
        spec = PoolSpec(kh=1, kw=1, sh=1, sw=1)
        res = maxpool(x, spec, impl=impl, config=CFG)
        assert np.array_equal(res.output, x)

    @pytest.mark.parametrize("impl", ["standard", "im2col"])
    def test_subsampling(self, impl):
        x = make_input(8, 8, 16, seed=4)
        spec = PoolSpec(kh=1, kw=1, sh=2, sw=2)
        res = maxpool(x, spec, impl=impl, config=CFG)
        assert np.array_equal(res.output, x[:, :, ::2, ::2])


class TestExtremeAspectRatios:
    @pytest.mark.parametrize("impl", ["standard", "im2col", "expansion"])
    def test_row_vector_input(self, impl):
        x = make_input(3, 40, 16, seed=5)
        spec = PoolSpec(kh=3, kw=3, sh=1, sw=2)
        res = maxpool(x, spec, impl=impl, config=CFG)
        assert np.array_equal(res.output, maxpool_forward_ref(x, spec))

    @pytest.mark.parametrize("impl", ["standard", "im2col"])
    def test_column_vector_input(self, impl):
        x = make_input(40, 3, 16, seed=6)
        spec = PoolSpec(kh=3, kw=3, sh=2, sw=1)
        res = maxpool(x, spec, impl=impl, config=CFG)
        assert np.array_equal(res.output, maxpool_forward_ref(x, spec))

    @pytest.mark.parametrize("impl", ["standard", "im2col"])
    def test_single_output_column(self, impl):
        # Ow == 1: the plane is a thin strip; masks still line up.
        x = make_input(17, 3, 16, seed=7)
        spec = PoolSpec.square(3, 2)
        res = maxpool(x, spec, impl=impl, config=CFG)
        assert res.output.shape[3] == 1
        assert np.array_equal(res.output, maxpool_forward_ref(x, spec))


class TestMinimumInputs:
    @pytest.mark.parametrize("impl", ["standard", "im2col", "expansion",
                                      "xysplit"])
    def test_kernel_sized_input(self, impl):
        # the smallest legal input: exactly one patch
        x = make_input(3, 3, 16, seed=8)
        spec = PoolSpec.square(3, 1)
        res = maxpool(x, spec, impl=impl, config=CFG)
        assert res.output.shape == (1, 1, 1, 1, 16)
        assert np.array_equal(res.output, maxpool_forward_ref(x, spec))

    def test_input_smaller_than_kernel_rejected(self):
        from repro.errors import ReproError

        x = make_input(2, 2, 16, seed=9)
        with pytest.raises(ReproError):
            maxpool(x, PoolSpec.square(3, 1), config=CFG)


class TestMetamorphicEquivalence:
    """All implementations are the same function: pairwise-identical
    outputs on randomized geometry (stronger than agreeing with the
    reference at a single point each)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_all_forward_impls_agree(self, seed):
        rng = np.random.default_rng(seed)
        oh = int(rng.integers(2, 6))
        k = int(rng.integers(1, 4))
        s = int(rng.integers(1, 4))
        ih = (oh - 1) * s + k
        x = make_input(ih, ih, 16, seed=seed)
        spec = PoolSpec.square(k, s)
        outs = [
            maxpool(x, spec, impl=i, config=CFG, collect_trace=False).output
            for i in ("standard", "im2col", "expansion", "xysplit")
        ]
        for other in outs[1:]:
            assert np.array_equal(outs[0], other)
