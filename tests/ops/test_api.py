"""Tests for the top-level operator API surface."""

import numpy as np
import pytest

from repro import (
    ASCEND910,
    ASCEND910_SINGLE_CORE,
    PoolSpec,
    avgpool,
    avgpool_backward,
    maxpool,
    maxpool_backward,
)
from repro.errors import ReproError
from repro.ops import BACKWARD_IMPLS, FORWARD_IMPLS, backward_impl, forward_impl
from repro.ops.base import PoolRunResult
from repro.workloads import make_gradient, make_input


class TestRegistry:
    def test_forward_names(self):
        assert set(FORWARD_IMPLS) == {
            "standard", "im2col", "expansion", "xysplit"
        }

    def test_backward_names(self):
        assert set(BACKWARD_IMPLS) == {"standard", "col2im"}

    def test_forward_impl_factory(self):
        impl = forward_impl("im2col", "max", with_mask=True)
        assert impl.name == "im2col"
        assert impl.op == "max"
        assert impl.with_mask

    def test_backward_impl_factory(self):
        impl = backward_impl("col2im", "avg")
        assert impl.name == "col2im"
        assert impl.op == "avg"

    def test_unknown_names(self):
        with pytest.raises(ReproError):
            forward_impl("nope")
        with pytest.raises(ReproError):
            backward_impl("nope")

    def test_invalid_op(self):
        with pytest.raises(ReproError):
            forward_impl("standard", op="median")

    def test_describe(self):
        assert forward_impl("im2col", "max", True).describe() == \
            "maxpool-im2col+mask"
        assert backward_impl("standard", "avg").describe() == \
            "avgpool-standard"


class TestResultObject:
    def test_forward_result_fields(self):
        x = make_input(9, 9, 16, seed=0)
        res = maxpool(x, PoolSpec.square(3, 2),
                      config=ASCEND910_SINGLE_CORE)
        assert isinstance(res, PoolRunResult)
        assert res.output.shape == (1, 1, 4, 4, 16)
        assert res.mask is None
        assert res.cycles == res.chip.cycles
        assert len(res.tiles) >= 1

    def test_mask_present_when_requested(self):
        x = make_input(9, 9, 16, seed=0)
        res = maxpool(x, PoolSpec.square(3, 2), with_mask=True,
                      config=ASCEND910_SINGLE_CORE)
        assert res.mask is not None
        assert res.mask.shape == (1, 1, 3, 3, 4, 4, 16)

    def test_outputs_are_fresh_arrays(self):
        x = make_input(9, 9, 16, seed=0)
        a = maxpool(x, PoolSpec.square(3, 2), config=ASCEND910_SINGLE_CORE)
        b = maxpool(x, PoolSpec.square(3, 2), config=ASCEND910_SINGLE_CORE)
        a.output[:] = 0
        assert not np.array_equal(a.output, b.output)


class TestConfigPlumbing:
    def test_custom_config_respected(self):
        x = make_input(9, 9, 16, seed=0)
        spec = PoolSpec.square(3, 2)
        cheap = maxpool(x, spec, config=ASCEND910.with_cost(issue_cycles=1),
                        collect_trace=False)
        dear = maxpool(x, spec, config=ASCEND910.with_cost(issue_cycles=50),
                       collect_trace=False)
        assert dear.cycles > cheap.cycles
        assert np.array_equal(dear.output, cheap.output)

    def test_single_vs_multi_core_same_values(self):
        x = make_input(17, 17, 64, seed=1)
        spec = PoolSpec.square(3, 2)
        one = maxpool(x, spec, config=ASCEND910_SINGLE_CORE,
                      collect_trace=False)
        many = maxpool(x, spec, config=ASCEND910, collect_trace=False)
        assert np.array_equal(one.output, many.output)
        assert many.cycles <= one.cycles  # parallelism can only help


class TestAvgApi:
    def test_avgpool_roundtrip(self):
        x = make_input(9, 9, 16, seed=2)
        spec = PoolSpec.square(3, 2)
        fwd = avgpool(x, spec, config=ASCEND910_SINGLE_CORE)
        grad = np.ones_like(fwd.output)
        bwd = avgpool_backward(grad, spec, 9, 9,
                               config=ASCEND910_SINGLE_CORE)
        assert bwd.output.shape == x.shape

    def test_maxpool_backward_signature(self):
        x = make_input(9, 9, 16, seed=3)
        spec = PoolSpec.square(3, 2)
        fwd = maxpool(x, spec, with_mask=True, config=ASCEND910_SINGLE_CORE)
        grad = make_gradient(1, 4, 4, seed=4)
        bwd = maxpool_backward(fwd.mask, grad, spec, 9, 9,
                               config=ASCEND910_SINGLE_CORE)
        assert bwd.output.shape == x.shape
        assert bwd.mask is None


class TestResiliencePassThrough:
    """Regression for the serving-layer bugfix: ``faults=``/``retry=``
    (and ``cache=``) must be reachable from the public entry points,
    not only from ``run_forward``/``run_backward``."""

    def test_maxpool_accepts_faults_and_retry(self):
        from repro.sim import FaultPlan, RetryPolicy

        x = make_input(17, 17, 64, seed=1)
        spec = PoolSpec.square(3, 2)
        clean = maxpool(x, spec, collect_trace=False)
        plan = FaultPlan.generate(seed=11, num_tiles=len(clean.tiles) * 4,
                                  rate=0.3)
        res = maxpool(
            x, spec, collect_trace=False, faults=plan,
            retry=RetryPolicy(max_attempts=6),
        )
        assert np.array_equal(res.output, clean.output)
        assert res.chip.resilience is not None
        assert res.chip.resilience.plan_faults > 0
        assert res.chip.resilience.attempts >= len(clean.tiles)

    def test_avgpool_accepts_faults(self):
        from repro.sim import FaultPlan

        x = make_input(17, 17, 64, seed=2)
        spec = PoolSpec.square(3, 2)
        clean = avgpool(x, spec, collect_trace=False)
        res = avgpool(
            x, spec, collect_trace=False,
            faults=FaultPlan.generate(seed=5, num_tiles=32, rate=0.3),
        )
        assert np.array_equal(res.output, clean.output)
        assert res.chip.resilience is not None

    def test_backward_entry_points_accept_faults(self):
        from repro.sim import FaultPlan, RetryPolicy

        x = make_input(17, 17, 16, seed=3)
        spec = PoolSpec.square(3, 2)
        fwd = maxpool(x, spec, with_mask=True, collect_trace=False)
        grad = make_gradient(1, 8, 8, seed=4)
        plan = FaultPlan.generate(seed=7, num_tiles=32, rate=0.3)
        clean = maxpool_backward(fwd.mask, grad, spec, 17, 17,
                                 collect_trace=False)
        res = maxpool_backward(
            fwd.mask, grad, spec, 17, 17, collect_trace=False,
            faults=plan, retry=RetryPolicy(max_attempts=6),
        )
        assert np.array_equal(res.output, clean.output)
        assert res.chip.resilience is not None

        aclean = avgpool_backward(grad, spec, 17, 17, collect_trace=False)
        ares = avgpool_backward(
            grad, spec, 17, 17, collect_trace=False, faults=plan,
        )
        assert np.array_equal(ares.output, aclean.output)
        assert ares.chip.resilience is not None

    def test_cache_control_from_entry_points(self):
        from repro.sim import ProgramCache

        x = make_input(17, 17, 64, seed=1)
        spec = PoolSpec.square(3, 2)
        mine = ProgramCache()
        a = maxpool(x, spec, collect_trace=False, cache=mine)
        assert mine.stats.misses > 0
        b = maxpool(x, spec, collect_trace=False, cache=mine)
        assert mine.stats.hits >= mine.stats.misses
        assert np.array_equal(a.output, b.output)
        # cache=None disables caching entirely
        uncached = maxpool(x, spec, collect_trace=False, cache=None)
        assert np.array_equal(uncached.output, a.output)

    def test_docstrings_mention_resilience(self):
        for fn in (maxpool, avgpool, maxpool_backward, avgpool_backward):
            assert "faults" in fn.__doc__ and "retry" in fn.__doc__


class TestDetach:
    """Result objects crossing the serve worker boundary must slim
    down (drop trace payloads) and pickle."""

    def test_detach_drops_traces_keeps_numbers(self):
        x = make_input(17, 17, 64, seed=1)
        res = maxpool(x, PoolSpec.square(3, 2))
        assert any(t.trace.records for t in res.chip.per_tile)
        slim = res.detach()
        assert np.array_equal(slim.output, res.output)
        assert slim.cycles == res.cycles
        assert slim.chip.tiles == res.chip.tiles
        assert all(not t.trace.records for t in slim.chip.per_tile)
        # uncollected traces refuse to masquerade as empty statistics
        assert not slim.chip.per_tile[0].trace.collected

    def test_detach_is_identity_when_traceless(self):
        x = make_input(9, 9, 16, seed=0)
        res = maxpool(x, PoolSpec.square(3, 2), collect_trace=False,
                      config=ASCEND910_SINGLE_CORE)
        assert res.detach() is res

    def test_detached_result_pickles(self):
        import pickle

        x = make_input(17, 17, 64, seed=1)
        res = maxpool(x, PoolSpec.square(3, 2)).detach()
        clone = pickle.loads(pickle.dumps(res))
        assert np.array_equal(clone.output, res.output)
        assert clone.cycles == res.cycles
        assert clone.chip.tiles == res.chip.tiles

    def test_traced_result_pickles_whole(self):
        """Without detach the full trace survives the round-trip (the
        serve path only detaches when the request didn't ask for
        traces)."""
        import pickle

        x = make_input(9, 9, 16, seed=0)
        res = maxpool(x, PoolSpec.square(3, 2),
                      config=ASCEND910_SINGLE_CORE)
        clone = pickle.loads(pickle.dumps(res))
        assert clone.chip.per_tile[0].trace.records == \
            res.chip.per_tile[0].trace.records
