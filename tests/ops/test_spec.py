"""Tests for pooling hyper-parameters."""

import pytest

from repro.errors import LayoutError
from repro.ops import PoolSpec


class TestPoolSpec:
    def test_square_constructor(self):
        s = PoolSpec.square(3, 2)
        assert (s.kh, s.kw, s.sh, s.sw) == (3, 3, 2, 2)
        assert not s.has_padding

    def test_square_with_pad(self):
        s = PoolSpec.square(3, 2, pad=1)
        assert (s.pt, s.pb, s.pl, s.pr) == (1, 1, 1, 1)
        assert s.has_padding

    def test_window(self):
        assert PoolSpec(kh=3, kw=2, sh=1, sw=1).window == 6

    def test_overlapping(self):
        assert PoolSpec.square(3, 2).overlapping
        assert PoolSpec.square(3, 1).overlapping
        assert not PoolSpec.square(2, 2).overlapping  # VGG16 case
        assert not PoolSpec.square(3, 3).overlapping  # Figure 8c

    def test_out_hw_equation1(self):
        assert PoolSpec.square(3, 2).out_hw(71, 71) == (35, 35)
        assert PoolSpec.square(2, 2).out_hw(224, 224) == (112, 112)
        assert PoolSpec.square(3, 2).out_hw(147, 147) == (73, 73)

    def test_with_image_carries_everything(self):
        s = PoolSpec(kh=3, kw=2, sh=2, sw=1, pt=1, pb=0, pl=1, pr=1)
        p = s.with_image(10, 12)
        assert (p.ih, p.iw) == (10, 12)
        assert (p.kh, p.kw, p.sh, p.sw) == (3, 2, 2, 1)
        assert (p.pt, p.pb, p.pl, p.pr) == (1, 0, 1, 1)

    def test_invalid_kernel(self):
        with pytest.raises(LayoutError):
            PoolSpec(kh=0, kw=1, sh=1, sw=1)

    def test_negative_pad(self):
        with pytest.raises(LayoutError):
            PoolSpec(kh=2, kw=2, sh=1, sw=1, pt=-1)

    def test_pad_as_large_as_kernel_rejected(self):
        # would create all-padding patches
        with pytest.raises(LayoutError):
            PoolSpec(kh=2, kw=2, sh=1, sw=1, pt=2)
