"""Registry lookup and variant introspection."""

import pytest

from repro.errors import LayoutError, ReproError
from repro.ops import (
    BACKWARD_IMPLS,
    FORWARD_IMPLS,
    backward_impl,
    backward_variants,
    forward_impl,
    forward_variants,
)


class TestLookup:
    def test_forward_names(self):
        for name in FORWARD_IMPLS:
            impl = forward_impl(name, "max")
            assert impl.name == name

    def test_unknown_forward(self):
        with pytest.raises(ReproError, match="unknown forward"):
            forward_impl("nope")

    def test_unknown_backward(self):
        with pytest.raises(ReproError, match="unknown backward"):
            backward_impl("nope")


class TestVariants:
    def test_every_variant_instantiates(self):
        for name, op, with_mask in forward_variants():
            impl = forward_impl(name, op, with_mask)
            assert impl.op == op and impl.with_mask == with_mask
        for name, op in backward_variants():
            assert backward_impl(name, op).op == op

    def test_mask_only_where_supported(self):
        masked = {n for n, _, m in forward_variants() if m}
        assert "xysplit" not in masked
        assert {"standard", "im2col", "expansion"} <= masked
        # mask variants are max-only (the Argmax mask)
        assert all(op == "max" for _, op, m in forward_variants() if m)

    def test_unsupported_mask_rejected_at_construction(self):
        with pytest.raises(LayoutError, match="does not save a mask"):
            forward_impl("xysplit", "max", True)

    def test_name_filter(self):
        only = forward_variants(("im2col",))
        assert {n for n, _, _ in only} == {"im2col"}
        assert backward_variants(("col2im",)) == [
            ("col2im", "max"), ("col2im", "avg")
        ]

    def test_counts_cover_registry(self):
        # 2 ops per impl + 1 mask variant per mask-capable impl
        masked = sum(
            1 for f in FORWARD_IMPLS.values()
            if getattr(f, "supports_mask", True)
        )
        assert len(forward_variants()) == 2 * len(FORWARD_IMPLS) + masked
        assert len(backward_variants()) == 2 * len(BACKWARD_IMPLS)
