"""Integration tests for the backward implementations."""

import numpy as np
import pytest

from repro.config import ASCEND910, ASCEND910_SINGLE_CORE
from repro.errors import LayoutError
from repro.ops import (
    PoolSpec,
    avgpool_backward,
    backward_impl,
    maxpool_backward,
    run_backward,
)
from repro.ops.reference import (
    avgpool_backward_ref,
    maxpool_argmax_ref,
    maxpool_backward_ref,
)
from repro.workloads import make_gradient, make_input

BOTH = ("standard", "col2im")


def setup(h=17, w=17, c=16, spec=None, seed=0):
    spec = spec or PoolSpec.square(3, 2)
    x = make_input(h, w, c, seed=seed)
    mask = maxpool_argmax_ref(x, spec)
    oh, ow = spec.out_hw(h, w)
    grad = make_gradient(x.shape[1], oh, ow, seed=seed + 1)
    return x, mask, grad, spec


class TestMaxpoolBackward:
    @pytest.mark.parametrize("impl", BOTH)
    def test_single_tile_exact(self, impl, single_core_config):
        x, mask, grad, spec = setup(h=13, w=13)
        ref = maxpool_backward_ref(mask, grad, spec, 13, 13)
        res = maxpool_backward(mask, grad, spec, 13, 13, impl=impl,
                               config=single_core_config)
        assert np.array_equal(res.output, ref), impl

    @pytest.mark.parametrize("impl", BOTH)
    @pytest.mark.parametrize("spec", [
        PoolSpec.square(2, 2),
        PoolSpec.square(3, 3),
        PoolSpec(kh=3, kw=2, sh=2, sw=3),
        PoolSpec.square(3, 1),
    ])
    def test_geometries(self, impl, spec, single_core_config):
        x, mask, grad, spec = setup(h=13, w=13, spec=spec)
        ref = maxpool_backward_ref(mask, grad, spec, 13, 13)
        res = maxpool_backward(mask, grad, spec, 13, 13, impl=impl,
                               config=single_core_config)
        assert np.array_equal(res.output, ref), (impl, spec)

    @pytest.mark.parametrize("impl", BOTH)
    def test_with_padding(self, impl, single_core_config):
        spec = PoolSpec(kh=3, kw=3, sh=2, sw=2, pt=1, pb=1, pl=1, pr=1)
        x, mask, grad, _ = setup(h=12, w=12, spec=spec)
        ref = maxpool_backward_ref(mask, grad, spec, 12, 12)
        res = maxpool_backward(mask, grad, spec, 12, 12, impl=impl,
                               config=single_core_config)
        assert np.array_equal(res.output, ref), impl

    @pytest.mark.parametrize("impl", BOTH)
    def test_serialized_tiling_exact(self, impl, single_core_config):
        # serialize_slices keeps per-slice chunks on one core; within a
        # tile the accumulation order matches the reference (kh, kw)
        # order except at chunk-seam rows, where both orders coincide
        # for integer gradients.
        spec = PoolSpec.square(3, 2)
        h = w = 63
        x = make_input(h, w, 16, seed=2)
        mask = maxpool_argmax_ref(x, spec)
        oh, ow = spec.out_hw(h, w)
        rng = np.random.default_rng(3)
        grad = rng.integers(-3, 4, (1, 1, oh, ow, 16)).astype(np.float16)
        ref = maxpool_backward_ref(mask, grad, spec, h, w)
        res = run_backward(
            grad, spec, backward_impl(impl, "max"), h, w, mask=mask,
            config=single_core_config, serialize_slices=True,
        )
        assert len(res.tiles) > 1
        assert np.array_equal(res.output, ref), impl

    @pytest.mark.parametrize("impl", BOTH)
    def test_parallel_tiling_within_tolerance(self, impl):
        # Parallel chunks accumulate via atomic-add DMA; fp16 ordering
        # at seam rows differs from the reference by <= ulps.
        spec = PoolSpec.square(3, 2)
        h = w = 45
        x, mask, grad, _ = setup(h=h, w=w, spec=spec)
        ref = maxpool_backward_ref(mask, grad, spec, h, w)
        res = maxpool_backward(mask, grad, spec, h, w, impl=impl,
                               config=ASCEND910)
        np.testing.assert_allclose(
            res.output.astype(np.float32), ref.astype(np.float32),
            rtol=1e-2, atol=1e-2,
        )

    def test_multi_channel(self):
        spec = PoolSpec.square(3, 2)
        x, mask, grad, _ = setup(h=17, w=17, c=48)
        ref = maxpool_backward_ref(mask, grad, spec, 17, 17)
        res = maxpool_backward(mask, grad, spec, 17, 17, impl="col2im",
                               config=ASCEND910)
        np.testing.assert_allclose(
            res.output.astype(np.float32), ref.astype(np.float32),
            rtol=1e-2, atol=1e-2,
        )

    def test_gradient_mass_conserved(self, single_core_config):
        x, mask, grad, spec = setup(h=13, w=13)
        res = maxpool_backward(mask, grad, spec, 13, 13, impl="col2im",
                               config=single_core_config)
        assert np.isclose(
            res.output.astype(np.float64).sum(),
            grad.astype(np.float64).sum(),
            rtol=1e-3,
        )


class TestMaxpoolBackwardValidation:
    def test_mask_required(self):
        grad = make_gradient(1, 4, 4)
        impl = backward_impl("standard", "max")
        with pytest.raises(LayoutError):
            run_backward(grad, PoolSpec.square(2, 2), impl, 8, 8, mask=None)

    def test_mask_shape_checked(self):
        grad = make_gradient(1, 4, 4)
        bad_mask = np.zeros((1, 1, 3, 3, 4, 4, 16), np.float16)
        with pytest.raises(LayoutError):
            maxpool_backward(bad_mask, grad, PoolSpec.square(2, 2), 8, 8)

    def test_grid_mismatch_rejected(self):
        x, mask, grad, spec = setup(h=13, w=13)
        with pytest.raises(LayoutError):
            maxpool_backward(mask, grad, spec, 50, 50)


class TestAvgpoolBackward:
    @pytest.mark.parametrize("impl", BOTH)
    def test_matches_reference(self, impl, single_core_config):
        spec = PoolSpec.square(3, 2)
        grad = make_gradient(1, 6, 6, seed=4)
        ref = avgpool_backward_ref(grad, spec, 13, 13)
        res = avgpool_backward(grad, spec, 13, 13, impl=impl,
                               config=single_core_config)
        assert np.array_equal(res.output, ref), impl

    @pytest.mark.parametrize("impl", BOTH)
    def test_no_overlap_geometry(self, impl, single_core_config):
        spec = PoolSpec.square(2, 2)
        grad = make_gradient(1, 8, 8, seed=5)
        ref = avgpool_backward_ref(grad, spec, 16, 16)
        res = avgpool_backward(grad, spec, 16, 16, impl=impl,
                               config=single_core_config)
        assert np.array_equal(res.output, ref), impl

    def test_mask_rejected(self):
        grad = make_gradient(1, 4, 4)
        mask = np.zeros((1, 1, 2, 2, 4, 4, 16), np.float16)
        impl = backward_impl("col2im", "avg")
        with pytest.raises(LayoutError):
            run_backward(grad, PoolSpec.square(2, 2), impl, 8, 8, mask=mask)


class TestBackwardCosts:
    def test_col2im_beats_standard(self, single_core_config):
        x, mask, grad, spec = setup(h=17, w=17)
        std = maxpool_backward(mask, grad, spec, 17, 17, impl="standard",
                               config=single_core_config)
        c2i = maxpool_backward(mask, grad, spec, 17, 17, impl="col2im",
                               config=single_core_config)
        assert std.cycles > 2 * c2i.cycles

    def test_standard_issue_counts(self, single_core_config):
        # Section V-B: the merge issues Kh*Kw*Oh*Ow vadds.
        x, mask, grad, spec = setup(h=13, w=13)
        res = maxpool_backward(mask, grad, spec, 13, 13, impl="standard",
                               config=single_core_config)
        oh, ow = spec.out_hw(13, 13)
        vadds = sum(
            t.trace.issues("vadd") for t in res.chip.per_tile
        )
        assert vadds >= 9 * oh * ow

    def test_col2im_issue_counts(self, single_core_config):
        # ... replaced by Kh*Kw Col2Im issues.
        x, mask, grad, spec = setup(h=13, w=13)
        res = maxpool_backward(mask, grad, spec, 13, 13, impl="col2im",
                               config=single_core_config)
        col2ims = sum(
            t.trace.issues("col2im") for t in res.chip.per_tile
        )
        assert col2ims == 9
        vadds = sum(t.trace.issues("vadd") for t in res.chip.per_tile)
        assert vadds == 0  # no scatter-adds anywhere
