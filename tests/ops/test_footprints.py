"""Footprint-model consistency: the tiling planner trusts each
implementation's ``footprint()``; these tests verify the model bounds
what the kernel builder actually allocates, across randomized geometry.
A footprint that under-reports would let the planner build tiles that
overflow a buffer at kernel-construction time."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ASCEND910
from repro.dtypes import FLOAT16
from repro.errors import TilingError
from repro.isa.operand import MemRef
from repro.ops import PoolSpec, backward_impl, forward_impl
from repro.ops.base import TileContext
from repro.plan import TileGeom, plan_row_chunks
from repro.tik import KernelBuilder


def build_tile(impl, spec, ih, iw, needs_grad=False, needs_mask=False):
    """Construct one untiled tile program; returns the builder."""
    params = spec.with_image(ih, iw)
    oh, ow = params.out_hw()
    c0 = FLOAT16.c0
    b = KernelBuilder(ASCEND910, FLOAT16)
    geom = TileGeom(oh0=0, oh1=oh, ih0=0, ih1=ih, params=params)
    mask_planes = None
    if needs_mask or impl.with_mask:
        mask_planes = [
            MemRef("mask", k * oh * ow * c0, oh * ow * c0, FLOAT16)
            for k in range(spec.kh * spec.kw)
        ]
    ctx = TileContext(
        builder=b,
        geom=geom,
        spec=spec,
        dtype=FLOAT16,
        gm_in=MemRef("x", 0, ih * iw * c0, FLOAT16),
        gm_out=MemRef("out", 0, oh * ow * c0, FLOAT16),
        gm_mask_planes=mask_planes,
        gm_grad=MemRef("grad", 0, oh * ow * c0, FLOAT16) if needs_grad else None,
        gm_dx=MemRef("dx", 0, ih * iw * c0, FLOAT16) if needs_grad else None,
    )
    impl.build_tile(ctx)
    return b


GEOM = st.tuples(
    st.integers(2, 5),   # oh
    st.integers(1, 3),   # kh
    st.integers(1, 3),   # sh
    st.booleans(),       # pad
)


def spec_and_size(oh, k, s, pad):
    p = 1 if (pad and k > 1) else 0
    ih = (oh - 1) * s + k - 2 * p
    if ih < k - p:
        return None
    try:
        spec = PoolSpec(kh=k, kw=k, sh=s, sw=s, pt=p, pb=p, pl=p, pr=p)
    except Exception:
        return None
    try:
        spec.out_hw(ih, ih)
    except Exception:
        return None
    return spec, ih


class TestForwardFootprints:
    @pytest.mark.parametrize("name", ["standard", "im2col", "expansion", "xysplit"])
    @given(geom=GEOM)
    @settings(max_examples=25, deadline=None)
    def test_footprint_bounds_allocations(self, name, geom):
        got = spec_and_size(*geom)
        if got is None:
            return
        spec, ih = got
        impl = forward_impl(name, "max")
        declared = impl.footprint(spec.with_image(ih, ih), FLOAT16)
        b = build_tile(impl, spec, ih, ih)
        assert b.ub_high_water() <= declared.get("UB", 0) + 64
        assert b.l1_high_water() <= declared.get("L1", 0) + 64

    @pytest.mark.parametrize("name", ["standard", "im2col", "expansion"])
    def test_with_mask_footprint(self, name):
        spec = PoolSpec.square(3, 2)
        impl = forward_impl(name, "max", with_mask=True)
        declared = impl.footprint(spec.with_image(13, 13), FLOAT16)
        b = build_tile(impl, spec, 13, 13)
        assert b.ub_high_water() <= declared["UB"] + 64

    @pytest.mark.parametrize("name", ["standard", "im2col", "expansion"])
    def test_avg_footprint(self, name):
        spec = PoolSpec.square(3, 2)
        impl = forward_impl(name, "avg")
        declared = impl.footprint(spec.with_image(13, 13), FLOAT16)
        b = build_tile(impl, spec, 13, 13)
        assert b.ub_high_water() <= declared["UB"] + 64


class TestBackwardFootprints:
    @pytest.mark.parametrize("name", ["standard", "col2im"])
    @pytest.mark.parametrize("op", ["max", "avg"])
    @given(geom=GEOM)
    @settings(max_examples=20, deadline=None)
    def test_footprint_bounds_allocations(self, name, op, geom):
        got = spec_and_size(*geom)
        if got is None:
            return
        spec, ih = got
        impl = backward_impl(name, op)
        declared = impl.footprint(spec.with_image(ih, ih), FLOAT16)
        b = build_tile(impl, spec, ih, ih, needs_grad=True,
                       needs_mask=(op == "max"))
        assert b.ub_high_water() <= declared.get("UB", 0) + 64


class TestPlannerUsesFootprints:
    def test_planned_tiles_always_buildable(self):
        """Every tile the planner produces must build without a
        CapacityError -- the end-to-end guarantee."""
        spec = PoolSpec.square(3, 2)
        impl = forward_impl("im2col", "max", with_mask=True)
        full = spec.with_image(95, 95)
        tiles = plan_row_chunks(full, impl.footprint, ASCEND910, FLOAT16)
        assert len(tiles) > 1
        c0 = FLOAT16.c0
        for geom in tiles:
            b = KernelBuilder(ASCEND910, FLOAT16)
            oh, ow = geom.params.out_hw()
            ctx = TileContext(
                builder=b, geom=geom, spec=spec, dtype=FLOAT16,
                gm_in=MemRef("x", 0, geom.in_rows * 95 * c0, FLOAT16),
                gm_out=MemRef("out", 0, geom.out_rows * ow * c0, FLOAT16),
                gm_mask_planes=[
                    MemRef("mask", k * oh * ow * c0, oh * ow * c0, FLOAT16)
                    for k in range(9)
                ],
            )
            impl.build_tile(ctx)  # must not raise


class TestLiveRegionsVsFootprint:
    """The planner trusts ``footprint()``; the sanitizer trusts the
    allocation manifest.  Over every DEFAULT_GRID geometry the two must
    agree: the live regions a kernel actually allocates stay within the
    declared footprint (same slack the planner applies)."""

    SLACK = 64  # alignment slop per buffer, as in the planner tests

    def _assert_bounded(self, builder, impl, params):
        declared = impl.footprint(params, FLOAT16)
        for name, alloc in builder.allocators.items():
            live = alloc.live_regions()
            if not live:
                continue
            high_water = max(r.end for r in live.values()) * FLOAT16.itemsize
            assert high_water == alloc.high_water_bytes
            assert high_water <= declared.get(name, 0) + self.SLACK, (
                f"{name}: live regions reach {high_water} B but "
                f"footprint declared {declared.get(name, 0)} B"
            )
            # The manifest recorded on the program is the allocator's
            # live view -- what the sanitizer will enforce at runtime.
            assert builder.program.allocations[name] == live

    def test_forward_grid(self):
        from repro.ops import forward_variants
        from repro.validate import DEFAULT_GRID

        for h, w, _c, _n, spec in DEFAULT_GRID:
            params = spec.with_image(h, w)
            for name, op, with_mask in forward_variants():
                impl = forward_impl(name, op, with_mask)
                b = build_tile(impl, spec, h, w)
                self._assert_bounded(b, impl, params)

    def test_backward_grid(self):
        from repro.ops import backward_variants
        from repro.validate import DEFAULT_GRID

        for h, w, _c, _n, spec in DEFAULT_GRID:
            params = spec.with_image(h, w)
            for name, op in backward_variants():
                impl = backward_impl(name, op)
                b = build_tile(impl, spec, h, w, needs_grad=True,
                               needs_mask=(op == "max"))
                self._assert_bounded(b, impl, params)
