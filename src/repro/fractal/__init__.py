"""Fractal (``NC1HWC0``) memory layout support.

DaVinci represents images in the *fractal* layout ``NC1HWC0`` where the
channel dimension ``C`` of ``NCHW`` is split into ``C1 = ceil(C / C0)``
groups of a constant ``C0`` channels (16 for float16).  This package
implements the layout conversions, the data-fractal abstraction and a
pure-NumPy golden model of the Im2col / Col2im transformations on that
layout (paper Sections II-A, II-B and III-B).
"""

from .layout import (
    nchw_to_nc1hwc0,
    nc1hwc0_to_nchw,
    c1_of,
    nhwc_to_nc1hwc0,
    nc1hwc0_to_nhwc,
    zero_pad_hw,
)
from .fractal import Fractal, split_into_fractals, join_fractals
from .im2col import (
    im2col_nc1hwc0,
    col2im_nc1hwc0,
    overlap_multiplicity,
)

__all__ = [
    "nchw_to_nc1hwc0",
    "nc1hwc0_to_nchw",
    "nhwc_to_nc1hwc0",
    "nc1hwc0_to_nhwc",
    "c1_of",
    "zero_pad_hw",
    "Fractal",
    "split_into_fractals",
    "join_fractals",
    "im2col_nc1hwc0",
    "col2im_nc1hwc0",
    "overlap_multiplicity",
]
