"""Conversions between NCHW / NHWC and the DaVinci ``NC1HWC0`` layout.

Section III-B of the paper: ``C`` is split into ``C1 = ceil(C / C0)``
groups of exactly ``C0`` channels; if ``C`` is not divisible by ``C0``
the tail group is zero-padded.  All conversions here are pure NumPy and
serve as the golden model against which the simulator operates -- the
simulated global memory holds tensors in ``NC1HWC0``.
"""

from __future__ import annotations

import numpy as np

from ..dtypes import DType, dtype_of
from ..errors import LayoutError


def c1_of(channels: int, c0: int) -> int:
    """Number of C1 groups needed to hold ``channels`` channels."""
    if channels <= 0:
        raise LayoutError(f"channel count must be positive, got {channels}")
    if c0 <= 0:
        raise LayoutError(f"C0 must be positive, got {c0}")
    return -(-channels // c0)


def nchw_to_nc1hwc0(x: np.ndarray, dtype: DType | None = None) -> np.ndarray:
    """Convert an ``(N, C, H, W)`` tensor to ``(N, C1, H, W, C0)``.

    The tail ``C0`` group is zero-padded when ``C % C0 != 0``.
    """
    if x.ndim != 4:
        raise LayoutError(f"expected NCHW rank-4 input, got shape {x.shape}")
    dt = dtype or dtype_of(x)
    n, c, h, w = x.shape
    c1 = c1_of(c, dt.c0)
    padded = np.zeros((n, c1 * dt.c0, h, w), dtype=dt.np_dtype)
    padded[:, :c] = x.astype(dt.np_dtype, copy=False)
    # (N, C1, C0, H, W) -> (N, C1, H, W, C0)
    return np.ascontiguousarray(
        padded.reshape(n, c1, dt.c0, h, w).transpose(0, 1, 3, 4, 2)
    )


def nc1hwc0_to_nchw(x: np.ndarray, channels: int) -> np.ndarray:
    """Convert ``(N, C1, H, W, C0)`` back to ``(N, C, H, W)``.

    ``channels`` selects how many of the ``C1*C0`` padded channels are
    real; the zero padding added by :func:`nchw_to_nc1hwc0` is dropped.
    """
    if x.ndim != 5:
        raise LayoutError(f"expected NC1HWC0 rank-5 input, got shape {x.shape}")
    n, c1, h, w, c0 = x.shape
    if not 0 < channels <= c1 * c0:
        raise LayoutError(
            f"channels={channels} incompatible with C1*C0={c1 * c0}"
        )
    # (N, C1, H, W, C0) -> (N, C1, C0, H, W) -> (N, C1*C0, H, W)
    full = x.transpose(0, 1, 4, 2, 3).reshape(n, c1 * c0, h, w)
    return np.ascontiguousarray(full[:, :channels])


def nhwc_to_nc1hwc0(x: np.ndarray, dtype: DType | None = None) -> np.ndarray:
    """Convert an ``(N, H, W, C)`` tensor (Table I uses HWC shapes) to
    ``(N, C1, H, W, C0)``."""
    if x.ndim != 4:
        raise LayoutError(f"expected NHWC rank-4 input, got shape {x.shape}")
    return nchw_to_nc1hwc0(np.ascontiguousarray(x.transpose(0, 3, 1, 2)), dtype)


def nc1hwc0_to_nhwc(x: np.ndarray, channels: int) -> np.ndarray:
    """Convert ``(N, C1, H, W, C0)`` to ``(N, H, W, C)``."""
    nchw = nc1hwc0_to_nchw(x, channels)
    return np.ascontiguousarray(nchw.transpose(0, 2, 3, 1))


def zero_pad_hw(
    x: np.ndarray,
    pad_top: int,
    pad_bottom: int,
    pad_left: int,
    pad_right: int,
    value: float = 0.0,
) -> np.ndarray:
    """Pad the H and W dimensions of an ``NC1HWC0`` tensor.

    The Im2Col instruction performs this padding on the fly (parameters
    ``Pl, Pr, Pt, Pb`` in Section III-C); this function is the golden
    model used to validate the instruction, with a configurable pad
    ``value`` because max-pooling pads with the dtype minimum rather than
    zero.
    """
    if x.ndim != 5:
        raise LayoutError(f"expected NC1HWC0 rank-5 input, got shape {x.shape}")
    if min(pad_top, pad_bottom, pad_left, pad_right) < 0:
        raise LayoutError("padding amounts must be non-negative")
    return np.pad(
        x,
        ((0, 0), (0, 0), (pad_top, pad_bottom), (pad_left, pad_right), (0, 0)),
        mode="constant",
        constant_values=value,
    )
