"""Golden-model Im2col / Col2im on the ``NC1HWC0`` layout.

These are the *functional* definitions of the transformations the SCU
instructions implement (Sections III-C and III-D).  The simulator's
``Im2Col`` / ``Col2Im`` instructions are validated against these in the
test suite.

The output shape follows the paper's repeat-mode-1 ordering
``(N, C1, Kh, Kw, Oh, Ow, C0)`` -- the shape used by the accelerated
forward pooling (end of Section III-C).
"""

from __future__ import annotations

import numpy as np

from ..errors import LayoutError
from .layout import zero_pad_hw


def _out_extent(image: int, pad_lo: int, pad_hi: int, kernel: int, stride: int) -> int:
    """Equation (1) of the paper: number of patches along one axis."""
    span = image + pad_lo + pad_hi - kernel
    if span < 0:
        raise LayoutError(
            f"kernel {kernel} larger than padded image extent "
            f"{image + pad_lo + pad_hi}"
        )
    return span // stride + 1


def output_hw(
    ih: int,
    iw: int,
    kh: int,
    kw: int,
    sh: int,
    sw: int,
    pt: int = 0,
    pb: int = 0,
    pl: int = 0,
    pr: int = 0,
) -> tuple[int, int]:
    """Patch-grid extents ``(Oh, Ow)`` (Equation 1)."""
    if min(kh, kw, sh, sw) <= 0:
        raise LayoutError("kernel and stride extents must be positive")
    return (
        _out_extent(ih, pt, pb, kh, sh),
        _out_extent(iw, pl, pr, kw, sw),
    )


def im2col_nc1hwc0(
    x: np.ndarray,
    kh: int,
    kw: int,
    sh: int,
    sw: int,
    pt: int = 0,
    pb: int = 0,
    pl: int = 0,
    pr: int = 0,
    pad_value: float = 0.0,
) -> np.ndarray:
    """Im2col of an ``(N, C1, Ih, Iw, C0)`` tensor.

    Returns an ``(N, C1, Kh, Kw, Oh, Ow, C0)`` tensor: for each kernel
    offset ``(xk, yk)`` a full ``(Oh, Ow, C0)`` plane of the elements at
    that offset within every patch.  This is exactly what a sequence of
    ``Im2Col`` instructions in repeat mode 1 deposits in a buffer.
    """
    if x.ndim != 5:
        raise LayoutError(f"expected NC1HWC0 rank-5 input, got {x.shape}")
    n, c1, ih, iw, c0 = x.shape
    oh, ow = output_hw(ih, iw, kh, kw, sh, sw, pt, pb, pl, pr)
    padded = zero_pad_hw(x, pt, pb, pl, pr, value=pad_value)

    out = np.empty((n, c1, kh, kw, oh, ow, c0), dtype=x.dtype)
    for xk in range(kh):
        for yk in range(kw):
            # Strided view selecting element (xk, yk) of every patch.
            plane = padded[
                :,
                :,
                xk : xk + (oh - 1) * sh + 1 : sh,
                yk : yk + (ow - 1) * sw + 1 : sw,
                :,
            ]
            out[:, :, xk, yk] = plane
    return out


def col2im_nc1hwc0(
    cols: np.ndarray,
    ih: int,
    iw: int,
    sh: int,
    sw: int,
    pt: int = 0,
    pb: int = 0,
    pl: int = 0,
    pr: int = 0,
    accumulate_dtype: np.dtype | None = None,
) -> np.ndarray:
    """Col2im: scatter-add an ``(N, C1, Kh, Kw, Oh, Ow, C0)`` tensor back
    to ``(N, C1, Ih, Iw, C0)``.

    Elements of overlapping patches that map to the same input position
    are summed (Section II-B / Figure 2).  Contributions that fall into
    the padding halo are discarded, as the hardware never writes them
    back.  ``accumulate_dtype`` optionally widens the accumulation (the
    simulated instruction accumulates in the storage dtype, fp16, so the
    golden model defaults to the same for bit-comparable results).
    """
    if cols.ndim != 7:
        raise LayoutError(f"expected rank-7 im2col tensor, got {cols.shape}")
    n, c1, kh, kw, oh, ow, c0 = cols.shape
    exp_oh, exp_ow = output_hw(ih, iw, kh, kw, sh, sw, pt, pb, pl, pr)
    if (oh, ow) != (exp_oh, exp_ow):
        raise LayoutError(
            f"im2col tensor has patch grid ({oh}, {ow}) but parameters "
            f"imply ({exp_oh}, {exp_ow})"
        )
    acc_dt = accumulate_dtype or cols.dtype
    padded = np.zeros(
        (n, c1, ih + pt + pb, iw + pl + pr, c0), dtype=acc_dt
    )
    for xk in range(kh):
        for yk in range(kw):
            target = padded[
                :,
                :,
                xk : xk + (oh - 1) * sh + 1 : sh,
                yk : yk + (ow - 1) * sw + 1 : sw,
                :,
            ]
            # In-place accumulate; the strided view may alias itself only
            # when sh/sw < 1, which is impossible, so += is safe.
            target += cols[:, :, xk, yk].astype(acc_dt, copy=False)
    inner = padded[:, :, pt : pt + ih, pl : pl + iw, :]
    return np.ascontiguousarray(inner.astype(cols.dtype, copy=False))


def overlap_multiplicity(
    ih: int,
    iw: int,
    kh: int,
    kw: int,
    sh: int,
    sw: int,
    pt: int = 0,
    pb: int = 0,
    pl: int = 0,
    pr: int = 0,
) -> np.ndarray:
    """How many patches cover each ``(h, w)`` input position.

    ``col2im(im2col(x)) == multiplicity * x`` wherever multiplicity > 0;
    the property tests rely on this identity.  Returned as an
    ``(Ih, Iw)`` int array.
    """
    ones = np.ones((1, 1, ih, iw, 1), dtype=np.float32)
    cols = im2col_nc1hwc0(ones, kh, kw, sh, sw, pt, pb, pl, pr, pad_value=0.0)
    # Zero out contributions that came from padding before scattering back:
    # im2col of ones has pad positions = 0 already (pad_value=0), so a
    # straight col2im counts only real coverage.
    back = col2im_nc1hwc0(
        cols, ih, iw, sh, sw, pt, pb, pl, pr, accumulate_dtype=np.float32
    )
    return back[0, 0, :, :, 0].astype(np.int64)
