"""The data-fractal abstraction.

A *data-fractal* is the constant-size unit the Cube Unit and the SCU
operate on: a small matrix of 16 rows by ``C0`` columns holding exactly
4096 bits (Section III-A).  The simulator mostly works on flat NumPy
views, but the fractal class is used by the Cube-unit model and by tests
that check the Im2Col output really is a sequence of fractals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dtypes import FRACTAL_ROWS, DType, dtype_of
from ..errors import LayoutError


@dataclass(frozen=True)
class Fractal:
    """One immutable 16 x C0 data-fractal."""

    data: np.ndarray

    def __post_init__(self) -> None:
        dt = dtype_of(self.data)
        if self.data.shape != (FRACTAL_ROWS, dt.c0):
            raise LayoutError(
                f"fractal of dtype {dt.name} must be "
                f"({FRACTAL_ROWS}, {dt.c0}), got {self.data.shape}"
            )
        self.data.setflags(write=False)

    @property
    def dtype(self) -> DType:
        return dtype_of(self.data)

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def __add__(self, other: "Fractal") -> "Fractal":
        if self.data.shape != other.data.shape:
            raise LayoutError("fractal shape mismatch in addition")
        return Fractal(self.data + other.data)

    def matmul(self, other: "Fractal") -> np.ndarray:
        """Fractal multiply as the Cube Unit performs it.

        Accumulation happens in float32 (the hardware L0C accumulator is
        wider than fp16); callers round back to fp16 when storing out.
        """
        a = self.data.astype(np.float32)
        b = other.data.astype(np.float32)
        if a.shape[1] != b.shape[0]:
            raise LayoutError(
                f"fractal matmul inner dims differ: {a.shape} @ {b.shape}"
            )
        return a @ b


def split_into_fractals(matrix: np.ndarray) -> list[Fractal]:
    """Split a ``(16*k, C0)`` matrix into ``k`` fractals, in row order."""
    dt = dtype_of(matrix)
    if matrix.ndim != 2 or matrix.shape[1] != dt.c0:
        raise LayoutError(
            f"expected (rows, C0={dt.c0}) matrix, got {matrix.shape}"
        )
    rows = matrix.shape[0]
    if rows % FRACTAL_ROWS != 0:
        raise LayoutError(
            f"row count {rows} is not a multiple of {FRACTAL_ROWS}"
        )
    return [
        Fractal(np.ascontiguousarray(matrix[i : i + FRACTAL_ROWS]))
        for i in range(0, rows, FRACTAL_ROWS)
    ]


def join_fractals(fractals: list[Fractal]) -> np.ndarray:
    """Concatenate fractals back into a ``(16*k, C0)`` matrix."""
    if not fractals:
        raise LayoutError("cannot join an empty fractal list")
    return np.concatenate([f.data for f in fractals], axis=0)
