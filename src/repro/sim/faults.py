"""Deterministic fault injection and the resilience vocabulary.

The paper's evaluation assumes every AI Core executes its tile program
flawlessly; a production fleet does not.  Real accelerator deployments
see stalled cores, transient scratch-pad corruption and cycle-budget
overruns -- and GEMM-based lowering pipelines are notoriously sensitive
to silent layout corruption (the im2col indirection layers of
arXiv:2110.03901 / arXiv:2209.09434 stress exactly this data-movement
integrity).  This module supplies the *failure model* half of the
fault-tolerant execution stack; :mod:`repro.sim.chip` supplies the
recovery half (retry, reassignment, quarantine, degradation).

Everything here is **seeded and deterministic**: a :class:`FaultPlan`
is a frozen value object, :meth:`FaultPlan.generate` is a pure function
of its seed, and injection decisions depend only on
``(tile, core, attempt)`` -- so a chaos run replays bit-identically
under the same seed, which is what lets the differential fuzzer's
chaos route (``python -m repro.validate --chaos``) assert recovered
outputs equal the fault-free run.

Fault kinds
-----------

* :class:`Stall`    -- a core loses ``cycles`` extra cycles on a tile
  (transient contention); never fails the tile, only slows it.
* :class:`Crash`    -- the core dies mid-program at an instruction
  index, raising :class:`~repro.errors.CoreFailure`; partial global-
  memory effects are rolled back by the chip before the retry.
* :class:`BitFlip`  -- transient UB/L1 corruption: one bit of one
  scratch-pad element flips at an instruction boundary.  ``detected``
  flips model parity/ECC-checked memories and raise
  :class:`~repro.errors.CoreFailure` at the corruption point;
  undetected flips propagate silently and exist so tests can show the
  reference oracle catches them.
* :class:`Deadline` -- a cycle budget: the tile's makespan under the
  active :class:`~repro.sim.scheduler.ExecutionModel` (plus any
  injected stall) must stay within ``budget`` or the attempt fails
  with :class:`~repro.errors.DeadlineExceeded`.

Each fault names the flat work-item index it targets (``tile``), and
optionally the core it is bound to (``core=None`` fires anywhere) and
the retry ``attempts`` it fires on (``None`` = every attempt; the
default ``(0,)`` models a transient that a retry clears).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

import numpy as np

from ..errors import CoreFailure, FaultInjectionError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..isa.program import Program
    from .aicore import AICore


# ---------------------------------------------------------------------------
# Fault kinds.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Stall:
    """A core loses ``cycles`` extra cycles executing a tile."""

    tile: int
    cycles: int
    core: int | None = None
    attempts: tuple[int, ...] | None = (0,)


@dataclass(frozen=True)
class Crash:
    """The core dies before executing instruction ``at_instruction``.

    Indices beyond the program's length fire after its last
    instruction (the core crashed while retiring the tile).
    """

    tile: int
    at_instruction: int = 0
    core: int | None = None
    attempts: tuple[int, ...] | None = (0,)


@dataclass(frozen=True)
class BitFlip:
    """One bit of one scratch-pad element flips mid-program.

    ``offset`` is reduced modulo the buffer's element count and ``bit``
    modulo the element width, so one plan is valid on any chip
    configuration.  ``detected=True`` (the default) models ECC/parity
    memories: the corruption is applied *and* the core raises
    :class:`~repro.errors.CoreFailure` at the same instruction
    boundary, giving the dispatch layer a clean retry point.
    """

    tile: int
    buffer: str = "UB"
    offset: int = 0
    bit: int = 0
    at_instruction: int = 0
    detected: bool = True
    core: int | None = None
    attempts: tuple[int, ...] | None = (0,)


@dataclass(frozen=True)
class Deadline:
    """Cycle budget for a tile: makespan above ``budget`` fails it."""

    tile: int
    budget: int
    core: int | None = None
    attempts: tuple[int, ...] | None = (0,)


Fault = Union[Stall, Crash, BitFlip, Deadline]

#: Fault kinds whose firing *fails* the attempt (Stall only slows it;
#: Deadline fails only when the budget is actually exceeded).
FAILING_KINDS = (Crash, BitFlip)


def _validate_fault(f: Fault) -> None:
    if f.tile < 0:
        raise FaultInjectionError(f"fault targets negative tile {f.tile}: {f}")
    if f.core is not None and f.core < 0:
        raise FaultInjectionError(f"fault targets negative core {f.core}: {f}")
    if f.attempts is not None:
        if not f.attempts:
            raise FaultInjectionError(
                f"fault has an empty attempts tuple (it can never fire); "
                f"use attempts=None to fire on every attempt: {f}"
            )
        if any(a < 0 for a in f.attempts):
            raise FaultInjectionError(f"fault names a negative attempt: {f}")
    if isinstance(f, Stall) and f.cycles <= 0:
        raise FaultInjectionError(f"stall must cost at least one cycle: {f}")
    if isinstance(f, Crash) and f.at_instruction < 0:
        raise FaultInjectionError(f"crash index must be >= 0: {f}")
    if isinstance(f, BitFlip):
        if f.at_instruction < 0:
            raise FaultInjectionError(f"bit-flip index must be >= 0: {f}")
        if f.offset < 0 or f.bit < 0:
            raise FaultInjectionError(
                f"bit-flip offset/bit must be >= 0: {f}"
            )
        if not f.buffer:
            raise FaultInjectionError(f"bit-flip names no buffer: {f}")
    if isinstance(f, Deadline) and f.budget <= 0:
        raise FaultInjectionError(f"deadline budget must be positive: {f}")


# ---------------------------------------------------------------------------
# The plan: a frozen, seeded value object.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject into one chip run.

    Validated eagerly: a malformed plan raises
    :class:`~repro.errors.FaultInjectionError` at construction, never
    mid-run.  Plans compare by value, so the chaos determinism contract
    (same seed => same plan) is a plain ``==``.
    """

    faults: tuple[Fault, ...] = ()
    #: Provenance when built by :meth:`generate`; purely informational.
    seed: int | None = None

    def __post_init__(self) -> None:
        for f in self.faults:
            _validate_fault(f)

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def can_fail(self) -> bool:
        """Whether any fault can fail an attempt (vs. only slow it)."""
        return any(
            isinstance(f, FAILING_KINDS) or isinstance(f, Deadline)
            for f in self.faults
        )

    @property
    def silent_only(self) -> bool:
        """Whether every fault is an *undetected* :class:`BitFlip`.

        Silent-only plans never fail an attempt, need no retry point and
        no global-memory rollback, so they are the one fault shape that
        composes with ``execute="jit"``: the chip applies them to the
        kernel's output tensors after the fused kernel runs
        (:func:`apply_silent_flips_to_gm`) instead of at an
        instruction boundary the JIT does not have.
        """
        return all(
            isinstance(f, BitFlip) and not f.detected for f in self.faults
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        num_tiles: int,
        num_cores: int | None = None,
        rate: float = 0.35,
    ) -> "FaultPlan":
        """A seeded random plan over ``num_tiles`` work items.

        Deterministic per ``seed`` (uses its own :class:`random.Random`;
        never global state).  Every generated fault is *recoverable by
        construction* under the default :class:`RetryPolicy`: faults
        fire on attempts 0 (and sometimes 1) only, so the bounded retry
        always has a clean attempt left.  ``num_cores`` optionally pins
        a fraction of faults to a concrete core, exercising the
        reassignment path (a core-bound fault cannot follow the tile to
        its new core).
        """
        if num_tiles < 0:
            raise FaultInjectionError("num_tiles must be >= 0")
        if not 0.0 <= rate <= 1.0:
            raise FaultInjectionError("rate must be in [0, 1]")
        rng = random.Random(seed)
        faults: list[Fault] = []
        for t in range(num_tiles):
            if rng.random() >= rate:
                continue
            attempts: tuple[int, ...] = (
                (0,) if rng.random() < 0.7 else (0, 1)
            )
            core: int | None = None
            if num_cores and rng.random() < 0.25:
                core = rng.randrange(num_cores)
                # A core-bound transient must fire on first contact:
                # later attempts may run elsewhere.
                attempts = (0,)
            kind = rng.choice(("stall", "crash", "bitflip", "deadline"))
            if kind == "stall":
                faults.append(
                    Stall(t, cycles=rng.randrange(16, 4096), core=core,
                          attempts=attempts)
                )
            elif kind == "crash":
                faults.append(
                    Crash(t, at_instruction=rng.randrange(0, 48), core=core,
                          attempts=attempts)
                )
            elif kind == "bitflip":
                faults.append(
                    BitFlip(
                        t,
                        buffer="UB",
                        offset=rng.randrange(0, 4096),
                        bit=rng.randrange(0, 16),
                        at_instruction=rng.randrange(0, 48),
                        core=core,
                        attempts=attempts,
                    )
                )
            else:
                faults.append(
                    Deadline(t, budget=rng.randrange(1, 2048), core=core,
                             attempts=attempts)
                )
        return cls(faults=tuple(faults), seed=seed)


# ---------------------------------------------------------------------------
# The injector: plan -> per-attempt injections.
# ---------------------------------------------------------------------------

_UINT_FOR_ITEMSIZE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


@dataclass(frozen=True)
class Injection:
    """The faults that fire on one ``(tile, core, attempt)`` execution.

    Built by :class:`FaultInjector`; consumed by
    :meth:`repro.sim.aicore.AICore.run` (crash/bit-flip, numeric mode)
    and by the chip's resilient dispatch (stall/deadline accounting and
    cycles-mode faulting).
    """

    tile: int
    core: int
    attempt: int
    stall: int = 0
    crash_at: int | None = None
    bitflips: tuple[BitFlip, ...] = ()
    deadline: int | None = None

    @property
    def can_fail(self) -> bool:
        """Whether this injection can fail the attempt (and therefore
        whether partial global-memory effects need a rollback plan)."""
        return (
            self.crash_at is not None
            or self.deadline is not None
            or any(b.detected for b in self.bitflips)
        )

    # -- numeric-mode execution hook -----------------------------------
    def run(self, core: "AICore", program: "Program") -> None:
        """Execute ``program`` on ``core`` with this injection applied.

        The instruction-by-instruction data pass of
        :meth:`AICore.run`, with fault sites visited at every
        instruction boundary (including one past the last instruction,
        where out-of-range fault indices land).
        """
        n = len(program.instructions)
        for idx, instr in enumerate(program.instructions):
            self._fire(core, idx, n, program)
            instr.execute(core)
        self._fire(core, n, n, program)

    def _fire(
        self, core: "AICore", idx: int, n: int, program: "Program"
    ) -> None:
        for b in self.bitflips:
            if min(b.at_instruction, n) != idx:
                continue
            self._apply_flip(core, b)
            if b.detected:
                raise CoreFailure(
                    f"core {self.core}: detected bit flip in {b.buffer!r} "
                    f"(element {b.offset}, bit {b.bit}) at instruction "
                    f"{idx}/{n} of {program.name!r} (attempt {self.attempt})"
                )
        if self.crash_at is not None and min(self.crash_at, n) == idx:
            raise CoreFailure(
                f"core {self.core} crashed at instruction {idx}/{n} of "
                f"{program.name!r} (attempt {self.attempt})"
            )

    @staticmethod
    def _apply_flip(core: "AICore", b: BitFlip) -> None:
        buf = core.buffers.get(b.buffer)
        if buf is None:
            raise FaultInjectionError(
                f"bit-flip targets unknown scratch buffer {b.buffer!r}; "
                f"this core has {sorted(core.buffers)}"
            )
        itemsize = buf.data.dtype.itemsize
        raw = buf.data.view(_UINT_FOR_ITEMSIZE[itemsize])
        raw[b.offset % raw.size] ^= raw.dtype.type(1) << (
            b.bit % (8 * itemsize)
        )


class FaultInjector:
    """Runtime view of a :class:`FaultPlan`: answers, for every
    ``(tile, core, attempt)``, which faults fire.

    Stateless per query (all decisions are pure functions of the plan
    and the coordinates), so one injector can be shared across replays
    and both replays see identical faults.
    """

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise FaultInjectionError(
                f"expected a FaultPlan, got {type(plan).__name__}"
            )
        self.plan = plan
        self._by_tile: dict[int, list[Fault]] = {}
        for f in plan.faults:
            self._by_tile.setdefault(f.tile, []).append(f)

    @property
    def has_faults(self) -> bool:
        return bool(self.plan.faults)

    def injection(
        self, tile: int, core: int, attempt: int
    ) -> Injection | None:
        """The :class:`Injection` for one execution, or ``None`` when no
        fault matches (the overwhelmingly common case)."""
        matches = [
            f
            for f in self._by_tile.get(tile, ())
            if (f.core is None or f.core == core)
            and (f.attempts is None or attempt in f.attempts)
        ]
        if not matches:
            return None
        stall = sum(f.cycles for f in matches if isinstance(f, Stall))
        crashes = [
            f.at_instruction for f in matches if isinstance(f, Crash)
        ]
        flips = tuple(f for f in matches if isinstance(f, BitFlip))
        budgets = [f.budget for f in matches if isinstance(f, Deadline)]
        return Injection(
            tile=tile,
            core=core,
            attempt=attempt,
            stall=stall,
            crash_at=min(crashes) if crashes else None,
            bitflips=flips,
            deadline=min(budgets) if budgets else None,
        )


def apply_silent_flips_to_gm(
    gm,
    program: "Program",
    injection: Injection,
    scratch_names,
) -> None:
    """Apply an injection's silent bit flips to a program's *outputs*.

    The JIT path for silent-only plans: a fused kernel has no
    per-instruction boundaries, so an undetected scratch-pad flip is
    modelled by its observable effect instead -- one bit of one element
    of a global-memory tensor the program writes, flipped after the
    kernel completes.  Targeting is deterministic: the written GM
    tensors (``instr.writes()`` minus ``scratch_names``) are sorted by
    name and their elements concatenated into one flat index space;
    ``offset`` picks the element modulo its total size and ``bit`` the
    bit modulo the element width, mirroring the scratch-pad rule so one
    plan is valid for any geometry.

    Raises :class:`~repro.errors.FaultInjectionError` if the injection
    carries anything but silent flips (the caller should have routed
    those through the resilient dispatch) or the program writes no
    global memory.
    """
    if injection.can_fail or injection.stall:
        raise FaultInjectionError(
            "apply_silent_flips_to_gm handles undetected bit flips only; "
            f"this injection carries stall={injection.stall} "
            f"crash_at={injection.crash_at} deadline={injection.deadline} "
            f"detected_flips="
            f"{[b for b in injection.bitflips if b.detected]}"
        )
    names: set[str] = set()
    for instr in program.instructions:
        for r in instr.writes():
            if r.buffer not in scratch_names and r.buffer in gm.tensors:
                names.add(r.buffer)
    targets = [gm.tensors[nm] for nm in sorted(names)]
    total = sum(t.size for t in targets)
    if not total:
        raise FaultInjectionError(
            f"silent bit-flip targets program {program.name!r} which "
            f"writes no global-memory elements"
        )
    for b in injection.bitflips:
        pos = b.offset % total
        for t in targets:
            if pos < t.size:
                idx = np.unravel_index(pos, t.shape)
                itemsize = t.dtype.itemsize
                word = np.asarray(t[idx]).view(
                    _UINT_FOR_ITEMSIZE[itemsize]
                ).copy()
                word ^= word.dtype.type(1) << (b.bit % (8 * itemsize))
                t[idx] = word.view(t.dtype)[()]
                break
            pos -= t.size


# ---------------------------------------------------------------------------
# Recovery vocabulary: policy, ledger, report.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential cycle-cost backoff.

    ``max_attempts`` caps total tries per tile; every retry charges
    ``backoff_cycles * backoff_factor**(attempt-1)`` cycles to the core
    that re-runs the tile (accounted in
    :attr:`ResilienceReport.backoff_cycles` and the chip's per-core
    totals).  A core is quarantined -- excluded from new assignments --
    after ``quarantine_after`` failures.  Under the pipelined timing
    model, retry attempt ``degrade_model_after`` and later fall back to
    the serial model (see :class:`DegradationEvent`); numeric outputs
    are model-independent, so degradation never changes results.
    """

    max_attempts: int = 4
    backoff_cycles: int = 64
    backoff_factor: int = 2
    quarantine_after: int = 3
    degrade_model_after: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultInjectionError("max_attempts must be >= 1")
        if self.backoff_cycles < 0 or self.backoff_factor < 1:
            raise FaultInjectionError(
                "backoff must be non-negative with factor >= 1"
            )
        if self.quarantine_after < 1:
            raise FaultInjectionError("quarantine_after must be >= 1")
        if self.degrade_model_after < 1:
            raise FaultInjectionError("degrade_model_after must be >= 1")

    def backoff(self, attempt: int) -> int:
        """Backoff cycles charged before retry attempt ``attempt``."""
        if attempt < 1:
            return 0
        return self.backoff_cycles * self.backoff_factor ** (attempt - 1)


class CoverageLedger:
    """Audit that every output tile completes **exactly once**.

    The resilient dispatcher records each work item's successful
    completion; a second completion (double write) raises immediately,
    and :meth:`audit` raises on gaps (a tile that never completed) or
    unknown indices.  The ledger is the guarantee-by-audit that retry
    and reassignment, however tangled, neither dropped nor duplicated a
    tile's output.
    """

    def __init__(self) -> None:
        self._completed: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._completed)

    def record(self, tile: int, attempt: int = 0) -> None:
        prior = self._completed.get(tile)
        if prior is not None:
            raise SimulationError(
                f"tile-coverage audit: tile {tile} completed twice "
                f"(attempts {prior} and {attempt}); outputs must be "
                "written exactly once"
            )
        self._completed[tile] = attempt

    def audit(self, expected: int) -> None:
        missing = [t for t in range(expected) if t not in self._completed]
        unknown = sorted(
            t for t in self._completed if not 0 <= t < expected
        )
        if missing or unknown:
            raise SimulationError(
                f"tile-coverage audit failed: expected tiles 0..{expected - 1}"
                f", missing {missing}, unknown {unknown}"
            )


@dataclass(frozen=True)
class FailureRecord:
    """One failed execution attempt, as recorded by the dispatcher."""

    tile: int
    core: int
    attempt: int
    error: str
    message: str


@dataclass(frozen=True)
class DegradationEvent:
    """One graceful-degradation decision taken instead of aborting.

    ``kind`` is ``"cached-to-fresh"`` (a cached summary visibly
    mismatched its program, so the tile re-ran with fresh accounting)
    or ``"pipelined-to-serial"`` (repeated failures under the pipelined
    model; the retry fell back to serial timing).
    """

    kind: str
    tile: int
    detail: str = ""


@dataclass(frozen=True)
class ResilienceReport:
    """Structured account of everything the resilience layer did.

    Attached to :class:`~repro.sim.chip.ChipRunResult` whenever a
    :class:`FaultPlan` or :class:`RetryPolicy` was supplied; ``None``
    on the historical fast path.  Compares by value, so the chaos
    determinism contract (same seed => same report) is a plain ``==``.
    """

    #: Number of faults in the active plan (0 for a bare RetryPolicy).
    plan_faults: int = 0
    #: Total execution attempts, including the successful ones.
    attempts: int = 0
    #: Attempts beyond the first, summed over tiles.
    retries: int = 0
    #: Times a tile moved to a different core than planned.
    reassignments: int = 0
    #: Injected stall cycles actually paid.
    stall_cycles: int = 0
    #: Retry backoff cycles actually paid.
    backoff_cycles: int = 0
    #: Cores quarantined after repeated failures, in quarantine order.
    quarantined_cores: tuple[int, ...] = ()
    failures: tuple[FailureRecord, ...] = ()
    degradations: tuple[DegradationEvent, ...] = ()

    @property
    def extra_cycles(self) -> int:
        """Cycles the run paid that a fault-free run would not have."""
        return self.stall_cycles + self.backoff_cycles

    @property
    def clean(self) -> bool:
        """Whether the run needed no recovery at all."""
        return (
            self.retries == 0
            and self.reassignments == 0
            and self.extra_cycles == 0
            and not self.quarantined_cores
            and not self.failures
            and not self.degradations
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (for ``--json`` exports and benches)."""
        return {
            "plan_faults": self.plan_faults,
            "attempts": self.attempts,
            "retries": self.retries,
            "reassignments": self.reassignments,
            "stall_cycles": self.stall_cycles,
            "backoff_cycles": self.backoff_cycles,
            "extra_cycles": self.extra_cycles,
            "quarantined_cores": list(self.quarantined_cores),
            "failures": [
                {
                    "tile": f.tile,
                    "core": f.core,
                    "attempt": f.attempt,
                    "error": f.error,
                    "message": f.message,
                }
                for f in self.failures
            ],
            "degradations": [
                {"kind": d.kind, "tile": d.tile, "detail": d.detail}
                for d in self.degradations
            ],
        }


def resolve_injector(
    faults: "FaultPlan | FaultInjector | None",
) -> FaultInjector | None:
    """Normalise the ``faults`` argument of the chip entry points."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    return FaultInjector(faults)
