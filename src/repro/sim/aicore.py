"""One simulated AI Core.

Executes a :class:`repro.isa.program.Program` instruction by instruction
against its private scratch-pad buffers and the shared global memory,
accumulating the cycle count the paper's hardware counters would report.

The model is *issue-serial*: units do not overlap in time.  The paper's
kernels are dominated by a single unit per phase (MTE for loads, Vector
or SCU for compute), so serial accounting preserves the comparisons; the
calibration record in EXPERIMENTS.md quantifies the residual error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ChipConfig
from ..dtypes import FLOAT16, DType
from ..errors import SimulationError
from ..isa.program import Program
from .buffers import Allocator, ScratchBuffer
from .memory import GlobalMemory
from .trace import Trace, TraceRecord


@dataclass(frozen=True)
class RunResult:
    """Outcome of executing one program on one core."""

    cycles: int
    instructions: int
    trace: Trace

    @property
    def vector_lane_utilization(self) -> float | None:
        """Repeat-weighted vector utilization of this run's trace.

        ``None`` = the program issued no vector instructions; raises
        :class:`~repro.errors.SimulationError` when the trace was not
        collected (see :meth:`repro.sim.trace.Trace.vector_lane_utilization`).
        """
        return self.trace.vector_lane_utilization()


@dataclass
class AICore:
    """Scalar + Vector + Cube units, private buffers, and the SCU."""

    config: ChipConfig
    dtype: DType = FLOAT16
    core_id: int = 0
    buffers: dict[str, ScratchBuffer] = field(init=False)
    allocators: dict[str, Allocator] = field(init=False)
    _gm: GlobalMemory | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.buffers = {
            name: ScratchBuffer(spec, self.dtype)
            for name, spec in self.config.buffer_specs().items()
        }
        self.allocators = {
            name: Allocator.for_buffer(buf) for name, buf in self.buffers.items()
        }

    # -- ExecutionContext protocol -------------------------------------
    def view(self, buffer: str) -> np.ndarray:
        buf = self.buffers.get(buffer)
        if buf is not None:
            return buf.data
        if self._gm is None:
            raise SimulationError(
                f"instruction referenced {buffer!r} but no global memory "
                "is attached"
            )
        return self._gm.view(buffer)

    # -- allocation helpers used by kernel builders --------------------
    def alloc(self, buffer: str, size_elems: int, name: str = ""):
        return self.allocators[buffer].alloc(size_elems, name)

    def reset_allocations(self) -> None:
        for alloc in self.allocators.values():
            alloc.reset()

    # -- execution ------------------------------------------------------
    def run(
        self,
        program: Program,
        gm: GlobalMemory | None,
        collect_trace: bool = True,
        execute: str = "numeric",
        summary: RunResult | None = None,
    ) -> RunResult:
        """Execute ``program``; returns cycles and the trace.

        ``execute`` selects the execution mode:

        * ``"numeric"`` (default) -- run every instruction's data effect
          against the buffers; results land in ``gm``.
        * ``"cycles"`` -- skip data execution entirely and account cycles
          analytically.  The cost model is data-independent, so the
          returned cycle count is identical to the numeric mode's; only
          the buffer contents are left untouched.  ``gm`` may be ``None``.

        ``summary`` optionally supplies a precomputed :class:`RunResult`
        for this exact program (typically from
        :mod:`repro.sim.progcache`): per-instruction cycle accounting and
        :class:`TraceRecord` allocation are skipped and the summary is
        returned as-is -- in numeric mode after the data pass, in cycles
        mode immediately.
        """
        if execute not in ("numeric", "cycles"):
            raise SimulationError(
                f"unknown execution mode {execute!r}; expected 'numeric' "
                "or 'cycles'"
            )
        cost = self.config.cost
        if execute == "cycles":
            if summary is not None:
                return summary
            trace = (
                Trace.from_instructions(program.instructions, cost)
                if collect_trace
                else Trace(collected=False)
            )
            return RunResult(
                cycles=program.static_cycles(cost),
                instructions=len(program),
                trace=trace,
            )
        if gm is None:
            raise SimulationError("numeric execution requires global memory")
        if summary is not None:
            # Data pass only; cycles/trace come precomputed.
            self._gm = gm
            try:
                for instr in program:
                    instr.execute(self)
            finally:
                self._gm = None
            return summary
        self._gm = gm
        trace = Trace(collected=collect_trace)
        cycles = 0
        try:
            for instr in program:
                instr.execute(self)
                c = instr.cycles(cost)
                cycles += c
                if collect_trace:
                    trace.add(
                        TraceRecord(
                            opcode=instr.opcode,
                            unit=instr.unit,
                            cycles=c,
                            repeat=getattr(instr, "repeat", 1),
                            lane_utilization=instr.lane_utilization(),
                        )
                    )
        finally:
            self._gm = None
        cycles += program.scalar_loop_trips * cost.loop_cycles
        return RunResult(
            cycles=cycles, instructions=len(program), trace=trace
        )
