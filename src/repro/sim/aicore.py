"""One simulated AI Core.

Executes a :class:`repro.isa.program.Program` instruction by instruction
against its private scratch-pad buffers and the shared global memory,
accumulating the cycle count the paper's hardware counters would report.

*When* those cycles elapse is the business of the pluggable timing
model (:mod:`repro.sim.scheduler`): the default :class:`SerialModel`
reproduces the historical issue-serial accounting bit-identically,
while :class:`PipelinedModel` overlaps units under data hazards.  Data
execution is identical under every model -- instructions run in program
order, so numeric results cannot depend on the timing model.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from ..config import ChipConfig
from ..dtypes import FLOAT16, DType
from ..errors import SimulationError
from ..isa.program import Program
from .buffers import Allocator, ScratchBuffer
from .memory import GlobalMemory
from .scheduler import ExecutionModel, resolve_model
from .trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .compile import CompiledKernel
    from .faults import Injection
    from .sanitizer import Sanitizer, SanitizerReport


@dataclass(frozen=True)
class RunResult:
    """Outcome of executing one program on one core."""

    cycles: int
    instructions: int
    trace: Trace
    #: Name of the program this result summarizes (slice token
    #: canonicalised -- relocated clones of one tile program share a
    #: summary).  Empty for results built without a program at hand.
    program_name: str = ""
    #: What the memory sanitizer observed, when the run was sanitized
    #: (``sanitize=`` truthy); ``None`` on the zero-cost default path.
    sanitizer: "SanitizerReport | None" = None

    @property
    def vector_lane_utilization(self) -> float | None:
        """Repeat-weighted vector utilization of this run's trace.

        ``None`` = the program issued no vector instructions; raises
        :class:`~repro.errors.SimulationError` when the trace was not
        collected (see :meth:`repro.sim.trace.Trace.vector_lane_utilization`).
        """
        return self.trace.vector_lane_utilization()

    def detach(self) -> "RunResult":
        """A slim copy safe to ship across a process boundary.

        Drops the per-instruction trace payload -- by far the largest
        part of a result -- replacing it with an *uncollected*
        :class:`~repro.sim.trace.Trace`, so trace-derived statistics
        raise loudly instead of reporting an empty program.  Scalars
        (cycles, instruction count, program name) and the sanitizer
        report survive.  Already-slim results return themselves.
        """
        if not self.trace.collected and not self.trace.records:
            return self
        return replace(self, trace=Trace(collected=False))


#: Relocated per-slice clones are named ``...-s<slice>-t<tile>``; their
#: summaries are shared, so the slice token is canonicalised before
#: comparing a summary's provenance against a program.
_SLICE_TOKEN = re.compile(r"-s\d+(?=-t\d+)")


def _canonical_name(name: str) -> str:
    return _SLICE_TOKEN.sub("-s*", name)


def summarize(
    program: Program,
    config: ChipConfig,
    model: "str | ExecutionModel | None" = None,
    collect_trace: bool = True,
) -> RunResult:
    """The :class:`RunResult` executing ``program`` would produce,
    computed statically under ``model`` (default serial).

    Exact, not an estimate: the cost model is data-independent, so the
    cycle count and the timed trace equal what execution records.
    """
    m = resolve_model(model)
    cost = config.cost
    trace = (
        m.trace(program, cost) if collect_trace else Trace(collected=False)
    )
    return RunResult(
        cycles=m.program_cycles(program, cost),
        instructions=len(program),
        trace=trace,
        program_name=_canonical_name(program.name),
    )


@dataclass
class AICore:
    """Scalar + Vector + Cube units, private buffers, and the SCU."""

    config: ChipConfig
    dtype: DType = FLOAT16
    core_id: int = 0
    buffers: dict[str, ScratchBuffer] = field(init=False)
    allocators: dict[str, Allocator] = field(init=False)
    _gm: GlobalMemory | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.buffers = {
            name: ScratchBuffer(spec, self.dtype)
            for name, spec in self.config.buffer_specs().items()
        }
        self.allocators = {
            name: Allocator.for_buffer(buf) for name, buf in self.buffers.items()
        }

    # -- ExecutionContext protocol -------------------------------------
    def view(self, buffer: str) -> np.ndarray:
        buf = self.buffers.get(buffer)
        if buf is not None:
            return buf.data
        if self._gm is None:
            raise SimulationError(
                f"instruction referenced {buffer!r} but no global memory "
                "is attached"
            )
        return self._gm.view(buffer)

    # -- allocation helpers used by kernel builders --------------------
    def alloc(self, buffer: str, size_elems: int, name: str = ""):
        return self.allocators[buffer].alloc(size_elems, name)

    def reset_allocations(self) -> None:
        for alloc in self.allocators.values():
            alloc.reset()

    # -- execution ------------------------------------------------------
    def run(
        self,
        program: Program,
        gm: GlobalMemory | None,
        collect_trace: bool = True,
        execute: str = "numeric",
        summary: RunResult | None = None,
        model: "str | ExecutionModel | None" = None,
        injection: "Injection | None" = None,
        sanitize: "bool | Sanitizer | None" = None,
        compiled: "CompiledKernel | None" = None,
    ) -> RunResult:
        """Execute ``program``; returns cycles and the trace.

        ``execute`` selects the execution mode:

        * ``"numeric"`` (default) -- run every instruction's data effect
          against the buffers; results land in ``gm``.
        * ``"cycles"`` -- skip data execution entirely and account cycles
          analytically.  The cost model is data-independent, so the
          returned cycle count is identical to the numeric mode's; only
          the buffer contents are left untouched.  ``gm`` may be ``None``.
        * ``"jit"`` -- apply the program's data effect through a
          compiled batch kernel (:mod:`repro.sim.compile`):
          bit-identical buffer contents and the exact same cycle
          accounting as ``"numeric"``, at a fraction of the dispatch
          cost.  ``compiled`` optionally supplies the kernel (typically
          from :meth:`repro.sim.progcache.ProgramCache.compiled`);
          without it the program is compiled on the spot.  Incompatible
          with ``sanitize=`` and ``injection=``, which instrument the
          per-instruction interpreter loop the JIT exists to skip.

        ``model`` picks the timing model (name, instance or ``None``
        for the default serial model); it shapes *when* cycles elapse,
        never the numeric results.

        ``summary`` optionally supplies a precomputed :class:`RunResult`
        for this exact program (typically from
        :mod:`repro.sim.progcache`): cycle accounting and trace
        construction are skipped and the summary is returned as-is --
        in numeric mode after the data pass, in cycles mode
        immediately.  A summary that visibly belongs to a *different*
        program (instruction count or canonicalised program name
        mismatch) raises :class:`~repro.errors.SimulationError` instead
        of silently mis-accounting.

        ``injection`` optionally attaches a deterministic fault
        injection (:class:`repro.sim.faults.Injection`) to this numeric
        run: bit-flips corrupt scratch-pad contents at their chosen
        instruction index and injected crashes raise
        :class:`~repro.errors.CoreFailure` mid-program.  ``None`` (the
        default) executes the historical loop unchanged -- the fault
        machinery is zero-cost when idle.

        ``sanitize`` switches on the strict memory-checking mode
        (:mod:`repro.sim.sanitizer`): ``True`` builds a fresh halting
        :class:`~repro.sim.sanitizer.Sanitizer`, an instance is reused
        (keep one per core across tiles so stale reads of a previous
        tile's data are diagnosed precisely), and ``None``/``False``
        (the default) runs the historical loop unchanged -- the
        sanitizer is zero-cost when disabled.  Sanitized runs must be
        numeric and fault-free; violations raise
        :class:`~repro.errors.SanitizerError` and the resulting
        :class:`RunResult` carries the sanitizer's report.
        """
        if execute not in ("numeric", "cycles", "jit"):
            raise SimulationError(
                f"unknown execution mode {execute!r}; expected 'numeric', "
                "'cycles' or 'jit'"
            )
        if compiled is not None and execute != "jit":
            raise SimulationError(
                "compiled= supplies a JIT kernel and is only meaningful "
                "with execute='jit'"
            )
        if sanitize:
            from .sanitizer import resolve_sanitizer

            san = resolve_sanitizer(sanitize, self.config)
        else:
            san = None
        if san is not None and execute != "numeric":
            raise SimulationError(
                "sanitized runs must execute numerically "
                "(execute='numeric'): the cycles-only fast path never "
                "touches buffer data, and the JIT's fused batch steps "
                "bypass the per-instruction loop strict mode instruments"
            )
        if san is not None and injection is not None:
            raise SimulationError(
                "sanitize= and injection= are mutually exclusive: fault "
                "injection deliberately corrupts scratch-pad state, which "
                "strict mode would (correctly) reject"
            )
        if injection is not None and execute == "jit":
            raise SimulationError(
                "injection= and execute='jit' are mutually exclusive: "
                "faults are injected at per-instruction boundaries, which "
                "the JIT's fused batch steps do not have; run the "
                "interpreter (execute='numeric') to inject faults"
            )
        if summary is not None:
            self._check_summary(program, summary)
        if execute == "cycles":
            if summary is not None:
                return summary
            return summarize(
                program, self.config, model=model, collect_trace=collect_trace
            )
        if gm is None:
            raise SimulationError("numeric execution requires global memory")
        if execute == "jit":
            kernel = compiled
            if kernel is None:
                from .compile import compile_program

                kernel = compile_program(program, self.config)
            self._gm = gm
            try:
                kernel(self, program)
            finally:
                self._gm = None
            if summary is not None:
                return summary
            return summarize(
                program, self.config, model=model,
                collect_trace=collect_trace,
            )
        self._gm = gm
        try:
            if san is not None:
                san.begin_program(self, program)
                for idx, instr in enumerate(program):
                    san.run_instruction(self, program, idx, instr)
                san.end_program(self, program)
                san.audit(
                    program,
                    resolve_model(model).trace(program, self.config.cost),
                )
            elif injection is None:
                for instr in program:
                    instr.execute(self)
            else:
                injection.run(self, program)
        finally:
            self._gm = None
        if summary is not None:
            # Data pass done; cycles/trace come precomputed.
            result = summary
        else:
            result = summarize(
                program, self.config, model=model,
                collect_trace=collect_trace,
            )
        if san is not None:
            result = replace(result, sanitizer=san.report)
        return result

    @staticmethod
    def _check_summary(program: Program, summary: RunResult) -> None:
        """Cheap guard against a summary built for a different program.

        A wrong summary used to be accepted silently -- cycle totals
        then quietly described some *other* program.  Instruction count
        always discriminates; the program name check is skipped for
        summaries that carry no provenance (``program_name == ""``).
        """
        canonical = _canonical_name(program.name)
        if summary.instructions != len(program):
            raise SimulationError(
                f"summary mismatch for program {program.name!r} "
                f"(canonical {canonical!r}): summary covers "
                f"{summary.instructions} instructions, program has "
                f"{len(program)}"
            )
        if summary.program_name and summary.program_name != canonical:
            raise SimulationError(
                f"summary mismatch: summary was built for "
                f"{summary.program_name!r} ({summary.instructions} "
                f"instructions), not {canonical!r} "
                f"({len(program)} instructions)"
            )
