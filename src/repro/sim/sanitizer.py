"""ISA-level memory sanitizer: shadow state, poison, and race auditing.

The paper pushes scratch-pad management onto software -- "more
complexity is placed upon the application's code" (Section III-A) -- so
every kernel-builder bug (overlapping allocations, reads of stale UB
data left by the previous tile, operand strides running past a region,
hazard regions that fail to cover what ``execute()`` touches) silently
produces wrong cycles or wrong numerics.  This module is the missing
correctness tool: an MSan/TSan-style strict execution mode, opt-in via
``sanitize=`` on :meth:`repro.sim.aicore.AICore.run` and the chip /
ops / validate layers, and **zero-cost when disabled**.

Per scratch-pad buffer the sanitizer keeps a byte-per-element *shadow
state* array:

* ``POISONED`` -- never allocated by any program on this core;
* ``FREED``    -- allocated by a *previous* program, then freed when the
  next tile reset the allocators (reading it is the classic
  stale-data-from-the-previous-tile bug that zero-init masks);
* ``UNINIT``   -- allocated by the current program but never written;
* ``INIT``     -- written by the current program.

On :meth:`Sanitizer.begin_program` the buffer contents are poison-filled
with :data:`POISON_VALUE` (a finite, fp16-exact sentinel far outside the
test data range -- deliberately *not* NaN so arithmetic stays
deterministic), so any read the shadow state flags also visibly corrupts
the numerics instead of hiding behind :class:`ScratchBuffer`'s zero
init.

Every instruction is then checked on four axes:

1. **bounds** -- each operand's precise element set (derived from
   :meth:`repro.isa.operand.VectorOperand.element_indices` with the
   instruction's mask, or from DMA/fractal lengths) must fall inside a
   single live allocation of the right buffer (live regions come from
   the program's allocation manifest recorded by
   :meth:`repro.tik.builder.KernelBuilder.alloc`);
2. **init** -- reads of ``UNINIT`` / ``FREED`` / ``POISONED`` scratch
   elements raise, classified as ``uninit-read`` / ``stale-read`` /
   ``poison-read``;
3. **region soundness** -- the bytes ``execute()`` *actually* mutated
   (observed by snapshot-diffing every scratch buffer the instruction
   viewed) must be a subset of the regions
   :meth:`repro.isa.instruction.Instruction.writes` declared, proving
   the :class:`repro.sim.scheduler.PipelinedModel` hazard regions are
   genuinely conservative;
4. **race audit** -- :func:`audit_races` re-checks the issue/retire
   timeline from the timed :class:`repro.sim.trace.Trace` for
   overlapping-in-time accesses to overlapping regions, independently
   of the scoreboard that produced the schedule.

Violations raise :class:`repro.errors.SanitizerError` naming the
program, instruction index, opcode, operand and offending byte range;
with ``halt=False`` they are collected into the
:class:`SanitizerReport` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..dtypes import FRACTAL_ROWS, VECTOR_BYTES_PER_REPEAT
from ..errors import SanitizerError
from ..isa.cube import Mmad
from ..isa.instruction import Instruction, Region
from ..isa.operand import MemRef, VectorOperand
from ..isa.scu import Col2ImStore, Im2ColLoad, _plane_indices

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..isa.program import Program
    from .aicore import AICore
    from .trace import Trace

__all__ = [
    "POISON_VALUE",
    "SanitizerViolation",
    "BufferCoverage",
    "SanitizerReport",
    "Sanitizer",
    "audit_races",
    "resolve_sanitizer",
]

#: Poison sentinel written into every scratch-pad element on
#: ``begin_program``.  Finite and exactly representable in fp16 (and
#: fp32), far outside the [-8, 8) range fuzzed inputs use, and *not*
#: NaN: a stale read corrupts results deterministically and visibly
#: instead of poisoning comparisons themselves.
POISON_VALUE = -20000.0

# Shadow states (one uint8 per element).
_POISONED = np.uint8(0)
_FREED = np.uint8(1)
_UNINIT = np.uint8(2)
_INIT = np.uint8(3)

#: Violation kind raised for reads of each non-INIT shadow state.
_READ_KIND = {
    int(_POISONED): "poison-read",
    int(_FREED): "stale-read",
    int(_UNINIT): "uninit-read",
}


@dataclass(frozen=True)
class SanitizerViolation:
    """One detected memory-safety violation.

    ``instruction`` is the index into the program (``-1`` for
    program-level findings such as races reported against a pair);
    ``start_byte``/``stop_byte`` is the offending half-open byte range
    within ``buffer``.  ``message`` is the full human-readable
    diagnostic (also the text of the :class:`SanitizerError` raised in
    halting mode).
    """

    kind: str
    program: str
    instruction: int
    opcode: str
    operand: str
    buffer: str
    start_byte: int
    stop_byte: int
    message: str


@dataclass(frozen=True)
class BufferCoverage:
    """Shadow-coverage statistics for one scratch-pad buffer.

    ``declared_bytes`` is the manifest footprint (bytes inside live
    allocations), ``high_water_bytes`` the furthest allocated byte --
    the pair the tiling planner's footprint model is audited against.
    ``initialized_bytes``/``touched_bytes`` say how much of the
    declared footprint the program actually wrote (per the shadow
    state) and how much ``execute()`` observably mutated.
    """

    buffer: str
    capacity_bytes: int
    declared_bytes: int
    high_water_bytes: int
    initialized_bytes: int
    touched_bytes: int


@dataclass
class SanitizerReport:
    """Everything one sanitized run observed.

    Attached to :class:`repro.sim.aicore.RunResult` /
    :class:`repro.sim.chip.ChipRunResult` (and surfaced as
    ``PoolRunResult.sanitizer``).  ``violations`` is empty for a clean
    run; ``coverage`` aggregates per-buffer shadow statistics over
    every program checked (bytes are maxima across programs, so the
    numbers describe the heaviest tile).
    """

    programs: int = 0
    checked_instructions: int = 0
    violations: list[SanitizerViolation] = field(default_factory=list)
    coverage: dict[str, BufferCoverage] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no violation was recorded."""
        return not self.violations

    def merge(self, other: "SanitizerReport") -> "SanitizerReport":
        """Fold ``other`` into this report (per-core reports are merged
        into one chip-level report this way); returns ``self``."""
        self.programs += other.programs
        self.checked_instructions += other.checked_instructions
        self.violations.extend(other.violations)
        for name, cov in other.coverage.items():
            mine = self.coverage.get(name)
            if mine is None:
                self.coverage[name] = cov
            else:
                self.coverage[name] = BufferCoverage(
                    buffer=name,
                    capacity_bytes=cov.capacity_bytes,
                    declared_bytes=max(
                        mine.declared_bytes, cov.declared_bytes
                    ),
                    high_water_bytes=max(
                        mine.high_water_bytes, cov.high_water_bytes
                    ),
                    initialized_bytes=max(
                        mine.initialized_bytes, cov.initialized_bytes
                    ),
                    touched_bytes=max(
                        mine.touched_bytes, cov.touched_bytes
                    ),
                )
        return self


class _SanitizedContext:
    """ExecutionContext wrapper observing which buffers an instruction
    views, snapshotting scratch buffers lazily on first view so the
    sanitizer can diff actual writes against declared regions."""

    __slots__ = ("_core", "_scratch", "snapshots")

    def __init__(self, core: "AICore", scratch: frozenset[str]) -> None:
        self._core = core
        self._scratch = scratch
        self.snapshots: dict[str, np.ndarray] = {}

    def view(self, buffer: str) -> np.ndarray:
        """Forward to the core, snapshotting scratch buffers once."""
        arr = self._core.view(buffer)
        if buffer in self._scratch and buffer not in self.snapshots:
            self.snapshots[buffer] = arr.copy()
        return arr


@dataclass(frozen=True)
class _Access:
    """One operand's precise element set: either a contiguous span
    (``indices is None``) or an explicit flat index array, both
    relative to the buffer."""

    operand: str
    buffer: str
    is_read: bool
    is_write: bool
    start: int
    stop: int
    indices: np.ndarray | None = None


def _precise_accesses(instr: Instruction) -> list[_Access]:
    """The exact element sets ``instr.execute()`` reads and writes.

    Special-cases the SCU gather/scatter instructions (whose MemRef
    regions over-approximate the touched elements); every other
    instruction is handled by the same dataclass-field walk that powers
    :meth:`Instruction.reads`/``writes`` -- MemRef operands are
    contiguous spans, VectorOperand operands enumerate
    :meth:`~repro.isa.operand.VectorOperand.element_indices` under the
    instruction's mask.
    """
    if isinstance(instr, Im2ColLoad):
        dt = instr.src.dtype
        c1_extent = instr.src.size // (
            instr.params.ih * instr.params.iw * dt.c0
        )
        gathered: list[np.ndarray] = []
        for c1, xk, yk, patch in instr._positions():
            idx, valid = _plane_indices(
                instr.params, dt, c1, c1_extent, xk, yk, patch, FRACTAL_ROWS
            )
            gathered.append(idx[valid].reshape(-1))
        src_idx = (
            instr.src.offset + np.concatenate(gathered)
            if gathered
            else np.empty(0, dtype=np.int64)
        )
        fractal = FRACTAL_ROWS * dt.c0
        return [
            _Access(
                "src", instr.src.buffer, True, False,
                instr.src.offset, instr.src.end, src_idx,
            ),
            _Access(
                "dst", instr.dst.buffer, False, True,
                instr.dst.offset,
                instr.dst.offset + instr.repeat * fractal,
            ),
        ]
    if isinstance(instr, Col2ImStore):
        dt = instr.src.dtype
        c1_extent = instr.dst.size // (
            instr.params.ih * instr.params.iw * dt.c0
        )
        rows = instr.repeat * FRACTAL_ROWS
        idx, valid = _plane_indices(
            instr.params, dt, instr.c1, c1_extent, instr.xk, instr.yk,
            instr.first_patch, rows,
        )
        dst_idx = instr.dst.offset + idx[valid].reshape(-1)
        # Source rows whose patch is beyond the grid (or in the padding
        # halo) are gathered but *discarded*; only valid rows' contents
        # matter, so only they must be initialized.
        valid_rows = np.flatnonzero(valid)
        src_idx = (
            instr.src.offset
            + (valid_rows[:, None] * dt.c0 + np.arange(dt.c0)[None, :])
        ).reshape(-1)
        return [
            _Access(
                "src", instr.src.buffer, True, False,
                instr.src.offset, instr.src.offset + rows * dt.c0,
                src_idx,
            ),
            _Access(
                "dst", instr.dst.buffer, True, True,
                instr.dst.offset, instr.dst.end, dst_idx,
            ),
        ]
    if isinstance(instr, Mmad):
        fr = FRACTAL_ROWS * FRACTAL_ROWS
        return [
            _Access(
                "a", instr.a.buffer, True, False,
                instr.a.offset, instr.a.offset + instr.repeat * fr,
            ),
            _Access(
                "b", instr.b.buffer, True, False,
                instr.b.offset, instr.b.offset + instr.repeat * fr,
            ),
            _Access(
                "c", instr.c.buffer, not instr.init, True,
                instr.c.offset, instr.c.offset + fr,
            ),
        ]
    # Generic path: the reads()/writes() dataclass-field walk with
    # mask-precise indices for vector operands.
    import dataclasses as _dc

    repeat = int(getattr(instr, "repeat", 1))
    mask = getattr(instr, "mask", None)
    rmw = instr.rmw_fields()
    out: list[_Access] = []
    for f in _dc.fields(instr):  # type: ignore[arg-type]
        v = getattr(instr, f.name)
        if not isinstance(v, (MemRef, VectorOperand)):
            continue
        is_write = f.name in instr.write_fields
        is_read = not is_write or f.name in rmw
        if isinstance(v, MemRef):
            out.append(
                _Access(f.name, v.buffer, is_read, is_write, v.offset, v.end)
            )
            continue
        dt = v.ref.dtype
        if mask is not None:
            lanes = mask.lanes(dt)
        else:  # pragma: no cover - no maskless vector op ships today
            lanes = np.arange(
                VECTOR_BYTES_PER_REPEAT // dt.itemsize, dtype=np.int64
            )
        idx = v.element_indices(repeat, lanes).reshape(-1)
        lo = int(idx.min()) if idx.size else v.ref.offset
        hi = int(idx.max()) + 1 if idx.size else v.ref.offset
        out.append(
            _Access(f.name, v.ref.buffer, is_read, is_write, lo, hi, idx)
        )
    return out


def _fmt_bytes(itemsize: int, start: int, stop: int) -> str:
    return f"bytes [{start * itemsize}, {stop * itemsize})"


class Sanitizer:
    """Strict-mode shadow-state checker for one core's execution.

    One instance tracks one core; keep it alive across tiles (the chip
    dispatcher does) so allocations freed by a previous tile's
    ``reset_allocations()`` are remembered as ``FREED`` and stale reads
    get the precise ``stale-read`` diagnosis rather than the generic
    poison one.

    ``halt=True`` (the default) raises :class:`SanitizerError` at the
    first violation; ``halt=False`` records violations into
    :attr:`report` and keeps executing (used by the mutation tests to
    count what a corrupted kernel trips).
    """

    def __init__(self, config, halt: bool = True) -> None:
        self.config = config
        self.halt = halt
        self.report = SanitizerReport()
        self._scratch = frozenset(config.buffer_specs())
        #: buffer name -> uint8 shadow array (lazily sized on first use).
        self._shadow: dict[str, np.ndarray] = {}
        #: buffer name -> list[MemRef] live this program.
        self._live: dict[str, list[tuple[str, MemRef]]] = {}
        self._program_name = ""
        self._touched: dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------
    def begin_program(self, core: "AICore", program: "Program") -> None:
        """Arm the sanitizer for one program on ``core``.

        Transitions every element allocated by the previous program to
        ``FREED``, poison-fills the scratch buffers with
        :data:`POISON_VALUE`, then marks the new program's manifest
        allocations ``UNINIT``.  A program with an *empty* manifest
        (hand-built, no :class:`~repro.tik.builder.KernelBuilder`)
        falls back to a single whole-buffer live region per buffer;
        with a non-empty manifest, a buffer the manifest does not
        mention has **no** live regions -- the builder allocated
        everything the kernel may touch, so any access is out of
        bounds.
        """
        self._program_name = program.name
        self._live = {}
        self._touched = {}
        manifest = program.allocations
        for name, buf in core.buffers.items():
            shadow = self._shadow.get(name)
            if shadow is None:
                shadow = np.full(buf.capacity_elems, _POISONED, np.uint8)
                self._shadow[name] = shadow
            else:
                shadow[shadow >= _UNINIT] = _FREED
            buf.poison(POISON_VALUE)
            refs = manifest.get(name)
            if refs:
                self._live[name] = sorted(
                    refs.items(), key=lambda kv: kv[1].offset
                )
                for _, ref in refs.items():
                    # FREED bytes stay FREED inside the new allocation:
                    # they are just as unwritten as UNINIT ones, but a
                    # read deserves the precise stale-read diagnosis
                    # (the previous tile's data is sitting there).
                    region = shadow[ref.offset : ref.end]
                    region[region == _POISONED] = _UNINIT
            elif not manifest:
                whole = MemRef(name, 0, buf.capacity_elems, buf.dtype)
                self._live[name] = [("<whole-buffer>", whole)]
                shadow[shadow == _POISONED] = _UNINIT
            else:
                self._live[name] = []
        self.report.programs += 1

    def end_program(self, core: "AICore", program: "Program") -> None:
        """Record per-buffer coverage statistics for the finished
        program into :attr:`report` (maxima across programs)."""
        for name, buf in core.buffers.items():
            shadow = self._shadow[name]
            itemsize = buf.dtype.itemsize
            declared = sum(
                ref.size for _, ref in self._live.get(name, ())
            )
            high_water = max(
                (ref.end for _, ref in self._live.get(name, ())), default=0
            )
            cov = BufferCoverage(
                buffer=name,
                capacity_bytes=buf.spec.capacity_bytes,
                declared_bytes=declared * itemsize,
                high_water_bytes=high_water * itemsize,
                initialized_bytes=int((shadow == _INIT).sum()) * itemsize,
                touched_bytes=self._touched.get(name, 0) * itemsize,
            )
            prev = self.report.coverage.get(name)
            if prev is None:
                self.report.coverage[name] = cov
            else:
                self.report.coverage[name] = BufferCoverage(
                    buffer=name,
                    capacity_bytes=cov.capacity_bytes,
                    declared_bytes=max(
                        prev.declared_bytes, cov.declared_bytes
                    ),
                    high_water_bytes=max(
                        prev.high_water_bytes, cov.high_water_bytes
                    ),
                    initialized_bytes=max(
                        prev.initialized_bytes, cov.initialized_bytes
                    ),
                    touched_bytes=max(
                        prev.touched_bytes, cov.touched_bytes
                    ),
                )

    # -- violation plumbing ---------------------------------------------
    def _violate(
        self,
        kind: str,
        idx: int,
        instr: Instruction | None,
        operand: str,
        buffer: str,
        itemsize: int,
        start: int,
        stop: int,
        detail: str,
    ) -> None:
        opcode = instr.opcode if instr is not None else ""
        where = (
            f"program {self._program_name!r}, instruction {idx}"
            + (f" ({opcode})" if opcode else "")
            + (f", operand {operand!r}" if operand else "")
        )
        msg = (
            f"{kind}: {where}: {buffer} "
            f"{_fmt_bytes(itemsize, start, stop)}: {detail}"
        )
        v = SanitizerViolation(
            kind=kind,
            program=self._program_name,
            instruction=idx,
            opcode=opcode,
            operand=operand,
            buffer=buffer,
            start_byte=start * itemsize,
            stop_byte=stop * itemsize,
            message=msg,
        )
        self.report.violations.append(v)
        if self.halt:
            raise SanitizerError(msg)

    # -- per-instruction checking ---------------------------------------
    def run_instruction(
        self,
        core: "AICore",
        program: "Program",
        idx: int,
        instr: Instruction,
    ) -> None:
        """Check, execute and shadow-update one instruction.

        Performs the bounds and init checks *before* ``execute()``
        (the corrupted state never materialises in halting mode), runs
        the instruction under a snapshotting context, then diffs the
        snapshots against the declared write regions and updates the
        shadow state.
        """
        accesses = _precise_accesses(instr)
        for acc in accesses:
            self._check_access(core, idx, instr, acc)
        ctx = _SanitizedContext(core, self._scratch)
        instr.execute(ctx)
        self._check_observed(core, idx, instr, ctx, accesses)
        for acc in accesses:
            if acc.is_write and acc.buffer in self._shadow:
                shadow = self._shadow[acc.buffer]
                if acc.indices is not None:
                    shadow[acc.indices] = _INIT
                else:
                    shadow[acc.start : acc.stop] = _INIT
        self.report.checked_instructions += 1

    def _check_access(
        self, core: "AICore", idx: int, instr: Instruction, acc: _Access
    ) -> None:
        if acc.buffer in self._scratch:
            itemsize = core.buffers[acc.buffer].dtype.itemsize
            in_bounds = self._check_bounds(idx, instr, acc, itemsize)
            # Init state is only meaningful for in-bounds accesses; in
            # non-halting mode an out-of-bounds index set could escape
            # the shadow array itself.
            if in_bounds and acc.is_read:
                self._check_init(idx, instr, acc, itemsize)
        else:
            # Global memory: no allocator regions to honour, but the
            # operand must stay inside the tensor.
            arr = core.view(acc.buffer)
            if acc.start < 0 or acc.stop > arr.size:
                self._violate(
                    "bounds", idx, instr, acc.operand, acc.buffer,
                    arr.dtype.itemsize, acc.start, acc.stop,
                    f"operand escapes global tensor of "
                    f"{arr.size * arr.dtype.itemsize} bytes",
                )

    def _check_bounds(
        self, idx: int, instr: Instruction, acc: _Access, itemsize: int
    ) -> bool:
        """Every accessed element must fall inside *one* live region.

        Returns whether the access was in bounds (always ``True`` in
        halting mode, which raises instead).
        """
        regions = self._live.get(acc.buffer, [])
        home = None
        home_name = ""
        for name, ref in regions:
            if ref.offset <= acc.start < ref.end:
                home, home_name = ref, name
                break
        if home is None or acc.stop > home.end:
            live = ", ".join(
                f"{name}=[{ref.offset * itemsize}, {ref.end * itemsize})"
                for name, ref in regions
            )
            self._violate(
                "bounds", idx, instr, acc.operand, acc.buffer, itemsize,
                acc.start, acc.stop,
                "access outside any single live allocation"
                + (f"; live regions: {live}" if live else "; none live"),
            )
            return False
        if acc.indices is not None and acc.indices.size:
            lo = int(acc.indices.min())
            hi = int(acc.indices.max()) + 1
            if lo < home.offset or hi > home.end:
                self._violate(
                    "bounds", idx, instr, acc.operand, acc.buffer,
                    itemsize, lo, hi,
                    f"strided elements escape live allocation "
                    f"{home_name!r}="
                    f"[{home.offset * itemsize}, {home.end * itemsize})",
                )
                return False
        return True

    def _check_init(
        self, idx: int, instr: Instruction, acc: _Access, itemsize: int
    ) -> None:
        shadow = self._shadow[acc.buffer]
        if acc.indices is not None:
            states = shadow[acc.indices]
            bad = states < _INIT
            if not bad.any():
                return
            worst = int(states[bad].min())
            bad_idx = acc.indices[bad]
            lo, hi = int(bad_idx.min()), int(bad_idx.max()) + 1
        else:
            states = shadow[acc.start : acc.stop]
            bad = states < _INIT
            if not bad.any():
                return
            worst = int(states[bad].min())
            rel = np.flatnonzero(bad)
            lo = acc.start + int(rel.min())
            hi = acc.start + int(rel.max()) + 1
        kind = _READ_KIND[worst]
        detail = {
            "uninit-read": "read of never-written scratch-pad elements",
            "stale-read": (
                "read of data freed by a previous tile's allocator reset "
                "(stale contents that zero-init used to mask)"
            ),
            "poison-read": "read of never-allocated scratch-pad elements",
        }[kind]
        self._violate(
            kind, idx, instr, acc.operand, acc.buffer, itemsize, lo, hi,
            detail,
        )

    def _check_observed(
        self,
        core: "AICore",
        idx: int,
        instr: Instruction,
        ctx: _SanitizedContext,
        accesses: list[_Access],
    ) -> None:
        """Observed writes (snapshot diff) must be declared writes."""
        declared = [r for r in instr.writes()]
        for name, snap in ctx.snapshots.items():
            arr = core.buffers[name].data
            diff = np.flatnonzero(snap != arr)
            if diff.size:
                self._touched[name] = self._touched.get(name, 0) + int(
                    diff.size
                )
            covered = np.zeros(diff.shape, dtype=bool)
            for r in declared:
                if r.buffer == name:
                    covered |= (diff >= r.start) & (diff < r.stop)
            stray = diff[~covered]
            if stray.size:
                lo, hi = int(stray.min()), int(stray.max()) + 1
                self._violate(
                    "undeclared-write", idx, instr, "", name,
                    core.buffers[name].dtype.itemsize, lo, hi,
                    f"execute() mutated {stray.size} element(s) outside "
                    f"the regions writes() declared -- the pipelined "
                    f"hazard regions would not cover this store",
                )

    # -- race auditing ---------------------------------------------------
    def audit(self, program: "Program", trace: "Trace") -> None:
        """Run :func:`audit_races` and fold the findings into the
        report (raising in halting mode)."""
        for v in audit_races(program, trace):
            v = replace(v, program=program.name)
            self.report.violations.append(v)
            if self.halt:
                raise SanitizerError(v.message)


def audit_races(program: "Program", trace: "Trace") -> list[SanitizerViolation]:
    """Re-check a timed schedule for races, independently of the
    scoreboard that produced it.

    Two instructions *race* when their ``[issue, retire)`` intervals
    overlap in time and their conservative operand regions conflict
    (write/write or write/read on overlapping element spans).  Under
    the serial model no intervals overlap, so the audit is trivially
    clean; under the pipelined model a finding proves the scoreboard
    ordered two conflicting accesses only by luck.  Same-unit time
    overlap is reported as ``unit-overlap`` -- units are in-order
    serial timelines, so it can never legally happen.

    Returns the violations found (empty for a clean schedule); records
    must carry issue/retire times (traces built through an
    :class:`repro.sim.scheduler.ExecutionModel` do).
    """
    records = trace.records
    if any(r.issue_at is None or r.retire_at is None for r in records):
        raise SanitizerError(
            "race audit needs a timed trace (issue/retire per record); "
            "build it through an ExecutionModel"
        )
    instrs = program.instructions
    if len(records) != len(instrs):
        raise SanitizerError(
            f"race audit: trace has {len(records)} records but program "
            f"{program.name!r} has {len(instrs)} instructions"
        )
    order = sorted(range(len(records)), key=lambda i: records[i].issue_at)
    active: list[int] = []
    out: list[SanitizerViolation] = []
    reads = [instrs[i].reads() for i in range(len(instrs))]
    writes = [instrs[i].writes() for i in range(len(instrs))]
    for i in order:
        ri = records[i]
        active = [j for j in active if records[j].retire_at > ri.issue_at]
        for j in active:
            rj = records[j]
            if ri.unit == rj.unit:
                out.append(
                    _race_violation(
                        "unit-overlap", program, i, j, ri, rj,
                        Region(ri.unit, 0, 0),
                        f"two {ri.unit!r}-unit instructions overlap in "
                        f"time; unit timelines are serial",
                    )
                )
                continue
            conflict = _first_conflict(
                writes[i], writes[j]
            ) or _first_conflict(
                writes[i], reads[j]
            ) or _first_conflict(
                reads[i], writes[j]
            )
            if conflict is not None:
                out.append(
                    _race_violation(
                        "race", program, i, j, ri, rj, conflict,
                        "overlapping-in-time accesses to overlapping "
                        "regions across units; the scoreboard ordered "
                        "these only by luck",
                    )
                )
        active.append(i)
    return out


def _first_conflict(
    a: Iterable[Region], b: Iterable[Region]
) -> Region | None:
    """The first region of ``a`` overlapping any region of ``b``."""
    bl = list(b)
    for ra in a:
        for rb in bl:
            if ra.overlaps(rb):
                return Region(
                    ra.buffer, max(ra.start, rb.start), min(ra.stop, rb.stop)
                )
    return None


def _race_violation(
    kind: str,
    program: "Program",
    i: int,
    j: int,
    ri,
    rj,
    region: Region,
    detail: str,
) -> SanitizerViolation:
    msg = (
        f"{kind}: program {program.name!r}, instructions {j} "
        f"({rj.opcode}, [{rj.issue_at}, {rj.retire_at})) and {i} "
        f"({ri.opcode}, [{ri.issue_at}, {ri.retire_at})): "
        f"{region.buffer} elements [{region.start}, {region.stop}): "
        f"{detail}"
    )
    return SanitizerViolation(
        kind=kind,
        program=program.name,
        instruction=i,
        opcode=ri.opcode,
        operand="",
        buffer=region.buffer,
        start_byte=region.start,
        stop_byte=region.stop,
        message=msg,
    )


def resolve_sanitizer(
    sanitize: "bool | Sanitizer | None", config
) -> "Sanitizer | None":
    """Normalise a ``sanitize=`` argument: falsy -> ``None`` (strict
    mode off, zero cost), ``True`` -> a fresh halting
    :class:`Sanitizer`, an instance -> itself (kept across tiles for
    cross-tile stale-read tracking)."""
    if not sanitize:
        return None
    if isinstance(sanitize, Sanitizer):
        return sanitize
    return Sanitizer(config)
