"""Scratch-pad buffers and their allocator.

"The private buffers of the AI Core (L0A, L0B, L0C, L1, and Unified
Buffer) are organized as scratch-pad memories ... Data movement between
these buffers must be explicitly managed by the application"
(Section III-A).  There is no hardware management: a kernel builder
*allocates* regions out of each buffer and the allocator enforces the
capacity and alignment the real hardware would silently require.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import BufferSpec
from ..dtypes import DType
from ..errors import AlignmentError, CapacityError
from ..isa.operand import MemRef


@dataclass
class ScratchBuffer:
    """One scratch-pad memory with NumPy-backed contents.

    The backing store is typed with the kernel's element dtype; kernels
    in this reproduction are single-dtype (fp16), matching the paper.
    """

    spec: BufferSpec
    dtype: DType
    data: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        elems = self.spec.capacity_bytes // self.dtype.itemsize
        self.data = np.zeros(elems, dtype=self.dtype.np_dtype)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def capacity_elems(self) -> int:
        return self.data.size

    def clear(self) -> None:
        self.data.fill(0)

    def poison(self, value: float) -> None:
        """Fill the whole backing store with a sentinel value.

        Used by the sanitizer's strict mode on ``reset_allocations()``:
        zero is a *plausible* pooling value, so zero-init can mask reads
        of never-written scratch-pad data.  A poison sentinel (a finite,
        fp16-exact value far outside the test data range -- see
        :data:`repro.sim.sanitizer.POISON_VALUE`) makes stale or
        uninitialized reads corrupt the numerics visibly and lets the
        shadow state attribute the corruption to the offending read.
        """
        self.data.fill(value)


@dataclass
class Allocator:
    """Bump allocator for one scratch-pad buffer.

    Works off the buffer *specification* only -- kernel builders allocate
    regions without needing a backing store, since the produced
    :class:`MemRef` regions are valid on any core (all cores share the
    same buffer geometry).  Raises :class:`CapacityError` when the buffer
    would overflow.  ``high_water_bytes`` is what the tiling planner's
    footprint model is validated against in tests.
    """

    spec: BufferSpec
    dtype: DType
    _next: int = 0
    high_water_bytes: int = 0
    _live: dict[str, MemRef] = field(default_factory=dict, repr=False)

    @classmethod
    def for_buffer(cls, buffer: ScratchBuffer) -> "Allocator":
        return cls(buffer.spec, buffer.dtype)

    @property
    def capacity_elems(self) -> int:
        return self.spec.capacity_bytes // self.dtype.itemsize

    def alloc(self, size_elems: int, name: str = "") -> MemRef:
        """Allocate ``size_elems`` elements, aligned to the buffer's
        alignment requirement."""
        if size_elems <= 0:
            raise CapacityError(
                f"{self.spec.name}: non-positive allocation size "
                f"{size_elems}"
                + (f" (allocating {name!r})" if name else "")
                + "; allocations must request at least one element"
            )
        dt = self.dtype
        align_elems = self.spec.alignment // dt.itemsize
        if align_elems == 0:
            raise AlignmentError(
                f"{self.spec.name}: alignment {self.spec.alignment} "
                f"finer than element size {dt.itemsize}"
                + (f" (allocating {name!r})" if name else "")
            )
        start = -(-self._next // align_elems) * align_elems
        end = start + size_elems
        if end > self.capacity_elems:
            raise CapacityError(
                f"{self.spec.name} overflow: need {end * dt.itemsize} B "
                f"(allocating {name or size_elems}) but capacity is "
                f"{self.spec.capacity_bytes} B"
            )
        self._next = end
        self.high_water_bytes = max(self.high_water_bytes, end * dt.itemsize)
        ref = MemRef(self.spec.name, start, size_elems, dt)
        key = name or f"alloc{len(self._live)}"
        if key in self._live:
            serial = sum(1 for k in self._live if k.split("#")[0] == key)
            key = f"{key}#{serial}"
        self._live[key] = ref
        return ref

    def live_regions(self) -> dict[str, MemRef]:
        """Name -> :class:`MemRef` of every allocation since the last
        :meth:`reset`.

        Unnamed allocations get ``allocN`` keys and repeated names get
        ``#K`` suffixes, so the mapping is lossless.  The sanitizer uses
        this to know which bytes of a scratch-pad are *live* (operands
        must stay inside a live region) and tests use it to audit the
        tiling planner's footprint model against what kernels actually
        allocate.
        """
        return dict(self._live)

    def reset(self) -> None:
        """Free everything (a new tile reuses the whole buffer)."""
        self._next = 0
        self._live.clear()

    @property
    def used_bytes(self) -> int:
        return self._next * self.dtype.itemsize

    @property
    def free_bytes(self) -> int:
        return self.spec.capacity_bytes - self.used_bytes
