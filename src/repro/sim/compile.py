"""Program-to-NumPy JIT: lowered programs as fused batch kernels.

The numeric interpreter (:meth:`repro.sim.aicore.AICore.run` with
``execute="numeric"``) walks a :class:`~repro.isa.program.Program` one
instruction at a time, recomputing gather/scatter index arrays and
bounds checks on every call.  For a Table-1-scale pooling workload that
Python-side dispatch dominates the run -- the cycles-only analytic mode
is dramatically faster precisely because it skips it.

This module removes the dispatch without changing a single output bit:
:func:`compile_program` walks the instruction list *once*, asks each
instruction to emit its data effect into a :class:`CompileContext`
(precomputed index arrays, à la fancy-indexing im2col), fuses adjacent
compatible effects into batched array expressions, and returns a
:class:`CompiledKernel` -- a callable applying the whole program's data
effect to the scratch-pads and global memory in a handful of NumPy
calls.

Design constraints, in order:

* **Bit identity.**  Every emitted step reproduces the interpreter's
  NumPy statements exactly (same gathers, same scatter statements, same
  accumulation order), so ``python -m repro.validate --jit`` can assert
  byte-equal outputs.  Fusions are only performed when provably
  order-insensitive: elementwise groups require disjoint writes and no
  read-after-write, ``vmax``/``vmin`` repeat chains collapse through
  ``ufunc.reduce`` (exact -- no rounding, order-independent), Col2Im
  groups concatenate their ``np.add.at`` index streams (preserving
  per-element accumulation order), Im2Col groups must write contiguous
  destination segments, and DMA groups must form clean arithmetic
  progressions with disjoint destination rows.  Anything else stays a
  standalone step or falls back to the interpreter.

* **Relocation survival.**  One kernel serves every
  :meth:`~repro.isa.program.Program.relocate` clone of its template:
  global-memory refs are *anchored* at compile time (instruction index,
  field name, base offset) and the per-call delta is read off the
  clone, so a kernel cached under a slice-independent
  :func:`~repro.sim.progcache.program_key` runs any slice.

* **Interpreter fallback.**  Instructions that do not implement
  :meth:`~repro.isa.instruction.Instruction.compile` -- or whose
  ``compile()`` raises :class:`~repro.errors.CompileError` for a
  data-dependent reason -- become fallback steps that simply call
  ``execute()`` on the *clone's* instruction in program order, so
  partially-compilable programs run instead of erroring.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..config import ChipConfig
from ..dtypes import FRACTAL_ROWS
from ..errors import CompileError, IsaError, SimulationError
from ..isa.operand import MemRef, VectorOperand
from ..isa.program import Program
from .aicore import _canonical_name

__all__ = [
    "CompileContext",
    "CompiledKernel",
    "KernelStats",
    "compile_program",
]

#: A compiled step: ``step(resolved, program, ctx)`` where ``resolved``
#: maps buffer name -> (flat array, relocation delta), ``program`` is
#: the (possibly relocated) program being run and ``ctx`` is the core
#: (used only by interpreter-fallback steps).
Step = Callable[[dict, Program, object], None]


# ---------------------------------------------------------------------------
# records -- one per compiled instruction, fused into steps by _fuse()


class _Record:
    kind = ""

    def buffers(self) -> set[str]:
        raise NotImplementedError


def _idx(a) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


class _Ew(_Record):
    """One gather-compute-scatter vector statement."""

    kind = "ew"

    def __init__(self, key, func, dst_ref, dst_idx, sources) -> None:
        self.key = key
        self.func = func
        self.dst_ref = dst_ref
        self.dst_idx = _idx(dst_idx)
        self.sources = [(ref, _idx(ix)) for ref, ix in sources]
        # Only records whose own scatter indices are unique may fuse:
        # concatenating them keeps every write disjoint.
        self.unique = bool(
            len(np.unique(self.dst_idx)) == self.dst_idx.size
        )

    def buffers(self) -> set[str]:
        return {self.dst_ref.buffer} | {r.buffer for r, _ in self.sources}


class _Seq(_Record):
    """A sequential-repeat vector statement (later repeats observe
    earlier writes); replays the interpreter's per-repeat loop."""

    kind = "seq"

    def __init__(self, func, dst_ref, dst_idx, sources) -> None:
        self.func = func
        self.dst_ref = dst_ref
        self.dst_idx = _idx(dst_idx)
        self.sources = [(ref, _idx(ix)) for ref, ix in sources]

    def buffers(self) -> set[str]:
        return {self.dst_ref.buffer} | {r.buffer for r, _ in self.sources}


class _Reduce(_Record):
    """A vmax/vmin repeat chain rewritten as one ``ufunc.reduce``."""

    kind = "reduce"

    def __init__(self, op, func, dst_ref, dst_row, src_ref, src_idx):
        self.op = op
        self.func = func
        self.dst_ref = dst_ref
        self.dst_row = _idx(dst_row)
        self.src_ref = src_ref
        self.src_idx = _idx(src_idx)

    def buffers(self) -> set[str]:
        return {self.dst_ref.buffer, self.src_ref.buffer}


class _Fill(_Record):
    kind = "fill"

    def __init__(self, dst_ref, dst_idx, value) -> None:
        self.dst_ref = dst_ref
        self.dst_idx = _idx(dst_idx)
        self.value = value

    def buffers(self) -> set[str]:
        return {self.dst_ref.buffer}


class _Im2col(_Record):
    """One Im2Col issue: a masked gather into a contiguous fractal run."""

    kind = "im2col"

    def __init__(self, src_ref, dst_ref, idx, valid, pad, start, stop):
        self.src_ref = src_ref
        self.dst_ref = dst_ref
        self.idx = _idx(idx)
        self.valid = np.ascontiguousarray(valid, dtype=bool)
        self.pad = pad
        self.dst_start = start
        self.dst_stop = stop

    def buffers(self) -> set[str]:
        return {self.src_ref.buffer, self.dst_ref.buffer}


class _Col2im(_Record):
    """One Col2Im issue: a valid-filtered gather + ``np.add.at``."""

    kind = "col2im"

    def __init__(self, src_ref, dst_ref, src_idx, dst_idx) -> None:
        self.src_ref = src_ref
        self.dst_ref = dst_ref
        self.src_idx = _idx(src_idx)
        self.dst_idx = _idx(dst_idx)

    def buffers(self) -> set[str]:
        return {self.src_ref.buffer, self.dst_ref.buffer}


class _Copy(_Record):
    kind = "copy"

    def __init__(self, src_ref, dst_ref, accumulate) -> None:
        self.src_ref = src_ref
        self.dst_ref = dst_ref
        self.accumulate = accumulate

    def buffers(self) -> set[str]:
        return {self.src_ref.buffer, self.dst_ref.buffer}


class _Mmad(_Record):
    kind = "mmad"

    def __init__(self, instr) -> None:
        self.instr = instr

    def buffers(self) -> set[str]:
        i = self.instr
        return {i.a.buffer, i.b.buffer, i.c.buffer}


class _Fallback(_Record):
    kind = "fallback"

    def __init__(self, indices: list[int]) -> None:
        self.indices = indices

    def buffers(self) -> set[str]:
        return set()


# ---------------------------------------------------------------------------
# compile context -- the emit API instructions' compile() hooks call


class CompileContext:
    """Collects one record per compiled instruction.

    Instructions emit *absolute* (buffer-relative) index arrays computed
    from their template operands; relocation deltas are applied at call
    time by the kernel, so one compile serves every slice.
    """

    def __init__(self, config: ChipConfig) -> None:
        self.config = config
        self.records: list[_Record] = []

    # -- emit API (called from Instruction.compile) --------------------
    def emit_elementwise(
        self,
        key,
        func: Callable,
        dst_ref: MemRef,
        dst_idx: np.ndarray,
        sources: Sequence[tuple[MemRef, np.ndarray]],
    ) -> None:
        """One ``dst[dst_idx] = func(*gathered sources)`` statement.

        ``key`` discriminates fusable statements (op plus any captured
        immediates): adjacent same-key records with disjoint writes and
        no read-after-write merge into one batched statement.
        """
        self.records.append(_Ew(key, func, dst_ref, dst_idx, sources))

    def emit_sequential(
        self,
        func: Callable,
        dst_ref: MemRef,
        dst_idx: np.ndarray,
        sources: Sequence[tuple[MemRef, np.ndarray]],
    ) -> None:
        """A per-repeat loop whose later repeats observe earlier writes
        (index arrays shaped ``(repeat, lanes)``).  Never fused."""
        self.records.append(_Seq(func, dst_ref, dst_idx, sources))

    def emit_reduction(
        self,
        op: str,
        func,
        dst_ref: MemRef,
        dst_row: np.ndarray,
        src_ref: MemRef,
        src_idx: np.ndarray,
    ) -> None:
        """An accumulating vmax/vmin chain: ``dst[row] = func(dst[row],
        func.reduce(src[src_idx], axis=0))`` -- exact because max/min
        are order-independent and rounding-free."""
        self.records.append(
            _Reduce(op, func, dst_ref, dst_row, src_ref, src_idx)
        )

    def emit_fill(self, dst_ref: MemRef, dst_idx, value) -> None:
        """``dst[dst_idx] = value``; adjacent same-value fills merge
        unconditionally (the scatter order is irrelevant)."""
        self.records.append(_Fill(dst_ref, dst_idx, value))

    def emit_im2col(
        self, src_ref, dst_ref, idx, valid, pad, dst_start, dst_stop
    ) -> None:
        """A masked patch gather writing ``[dst_start, dst_stop)``;
        adjacent issues with contiguous destinations merge."""
        self.records.append(
            _Im2col(src_ref, dst_ref, idx, valid, pad, dst_start, dst_stop)
        )

    def emit_col2im(self, src_ref, dst_ref, src_idx, dst_idx) -> None:
        """A valid-filtered accumulate-scatter (``np.add.at``);
        adjacent issues concatenate their index streams, preserving
        per-element accumulation order."""
        self.records.append(_Col2im(src_ref, dst_ref, src_idx, dst_idx))

    def emit_copy(self, src_ref: MemRef, dst_ref: MemRef, accumulate):
        """A contiguous region copy (or accumulate-DMA add); adjacent
        row-strided copies forming an arithmetic progression merge into
        one batched gather/scatter."""
        self.records.append(_Copy(src_ref, dst_ref, accumulate))

    def emit_mmad(self, instr) -> None:
        """A fractal multiply-accumulate chain (float32 accumulator)."""
        self.records.append(_Mmad(instr))


# ---------------------------------------------------------------------------
# fusion


class _WriteSet:
    """Sorted per-buffer element-index sets a fusion group has written;
    membership tests gate read-after-write / write-after-write."""

    def __init__(self) -> None:
        self._by_buf: dict[str, np.ndarray] = {}

    def add(self, buffer: str, idx: np.ndarray) -> None:
        arr = np.unique(idx.reshape(-1))
        prev = self._by_buf.get(buffer)
        self._by_buf[buffer] = (
            arr if prev is None else np.union1d(prev, arr)
        )

    def intersects(self, buffer: str, idx: np.ndarray) -> bool:
        prev = self._by_buf.get(buffer)
        if prev is None or prev.size == 0:
            return False
        flat = idx.reshape(-1)
        pos = np.minimum(
            np.searchsorted(prev, flat), prev.size - 1
        )
        return bool(np.any(prev[pos] == flat))


def _ew_joins(first: _Ew, cand: _Record, ws: _WriteSet) -> bool:
    if not isinstance(cand, _Ew) or cand.key != first.key:
        return False
    if not cand.unique or cand.dst_ref.buffer != first.dst_ref.buffer:
        return False
    if len(cand.sources) != len(first.sources) or any(
        cr.buffer != fr.buffer
        for (cr, _), (fr, _) in zip(cand.sources, first.sources)
    ):
        return False
    # RAW: the candidate must not read anything the group wrote (its
    # gather would happen before the group's scatter in the fused step).
    for ref, ix in cand.sources:
        if ws.intersects(ref.buffer, ix):
            return False
    # WAW: later writes must not overwrite earlier ones.
    return not ws.intersects(cand.dst_ref.buffer, cand.dst_idx)


def _fill_joins(first: _Fill, cand: _Record) -> bool:
    return (
        isinstance(cand, _Fill)
        and cand.dst_ref.buffer == first.dst_ref.buffer
        and cand.value == first.value
        and cand.value.dtype == first.value.dtype
    )


def _im2col_joins(first: _Im2col, cand: _Record, stop: int) -> bool:
    return (
        isinstance(cand, _Im2col)
        and cand.src_ref.buffer == first.src_ref.buffer
        and cand.dst_ref.buffer == first.dst_ref.buffer
        and cand.src_ref.buffer != cand.dst_ref.buffer
        and cand.pad == first.pad
        and cand.pad.dtype == first.pad.dtype
        and cand.dst_start == stop
    )


def _col2im_joins(first: _Col2im, cand: _Record, ws: _WriteSet) -> bool:
    if not isinstance(cand, _Col2im):
        return False
    if (
        cand.src_ref.buffer != first.src_ref.buffer
        or cand.dst_ref.buffer != first.dst_ref.buffer
    ):
        return False
    # RAW only: accumulation order is preserved by concatenation
    # (np.add.at processes indices in array order), so overlapping
    # destinations (WAW) are exact; reading freshly-accumulated data
    # is not.
    return not ws.intersects(cand.src_ref.buffer, cand.src_idx)


def _fuse(records: list[_Record]) -> list[list[_Record]]:
    groups: list[list[_Record]] = []
    i, n = 0, len(records)
    while i < n:
        first = records[i]
        group = [first]
        j = i + 1
        if first.kind == "fallback":
            while j < n and records[j].kind == "fallback":
                group.append(records[j])
                j += 1
        elif first.kind == "ew" and first.unique:
            ws = _WriteSet()
            ws.add(first.dst_ref.buffer, first.dst_idx)
            while j < n and _ew_joins(first, records[j], ws):
                ws.add(records[j].dst_ref.buffer, records[j].dst_idx)
                group.append(records[j])
                j += 1
        elif first.kind == "fill":
            while j < n and _fill_joins(first, records[j]):
                group.append(records[j])
                j += 1
        elif first.kind == "im2col":
            stop = first.dst_stop
            while j < n and _im2col_joins(first, records[j], stop):
                stop = records[j].dst_stop
                group.append(records[j])
                j += 1
        elif first.kind == "col2im":
            ws = _WriteSet()
            ws.add(first.dst_ref.buffer, first.dst_idx)
            while j < n and _col2im_joins(first, records[j], ws):
                ws.add(records[j].dst_ref.buffer, records[j].dst_idx)
                group.append(records[j])
                j += 1
        elif first.kind == "copy":
            n_el = first.src_ref.size
            ss = ds = None
            prev = first
            while j < n:
                cand = records[j]
                if not (
                    isinstance(cand, _Copy)
                    and cand.src_ref.buffer == first.src_ref.buffer
                    and cand.dst_ref.buffer == first.dst_ref.buffer
                    and cand.src_ref.buffer != cand.dst_ref.buffer
                    and cand.accumulate == first.accumulate
                    and cand.src_ref.size == n_el
                ):
                    break
                cs = cand.src_ref.offset - prev.src_ref.offset
                cd = cand.dst_ref.offset - prev.dst_ref.offset
                if ss is None:
                    # The second member defines the progression; its
                    # destination stride must keep rows disjoint (the
                    # batched scatter writes each element exactly once).
                    if abs(cd) < n_el:
                        break
                    ss, ds = cs, cd
                elif (cs, cd) != (ss, ds):
                    break
                group.append(cand)
                prev = cand
                j += 1
        groups.append(group)
        i = j
    return groups


# ---------------------------------------------------------------------------
# step construction


def _merge_checks(entries) -> tuple:
    """Collapse ``(buffer, lo, hi)`` bound checks to one span per buffer."""
    merged: dict[str, tuple[int, int]] = {}
    for buf, lo, hi in entries:
        cur = merged.get(buf)
        merged[buf] = (
            (lo, hi) if cur is None else (min(cur[0], lo), max(cur[1], hi))
        )
    return tuple((b, lo, hi) for b, (lo, hi) in merged.items())


def _check(resolved: dict, checks: tuple) -> None:
    for buf, lo, hi in checks:
        arr, delta = resolved[buf]
        if lo + delta < 0 or hi + delta >= arr.size:
            raise IsaError(
                f"jit: element indices [{lo + delta}, {hi + delta}] "
                f"escape buffer {buf!r} of size {arr.size}"
            )


def _span(buf: str, ix: np.ndarray) -> tuple[str, int, int]:
    return buf, int(ix.min()), int(ix.max())


def _ew_step(group: list[_Ew]) -> Step:
    first = group[0]
    func = first.func
    dst_buf = first.dst_ref.buffer
    if len(group) == 1:
        d_idx = first.dst_idx
        srcs = [(ref.buffer, ix) for ref, ix in first.sources]
    else:
        d_idx = np.concatenate([g.dst_idx for g in group])
        srcs = [
            (
                ref.buffer,
                np.concatenate([g.sources[k][1] for g in group]),
            )
            for k, (ref, _) in enumerate(first.sources)
        ]
    checks = _merge_checks(
        [_span(dst_buf, d_idx)] + [_span(b, ix) for b, ix in srcs]
    )

    def step(resolved, program, ctx):
        _check(resolved, checks)
        args = []
        for b, ix in srcs:
            arr, dl = resolved[b]
            args.append(arr[ix + dl] if dl else arr[ix])
        d_arr, dd = resolved[dst_buf]
        d_arr[d_idx + dd if dd else d_idx] = func(*args)

    return step


def _seq_step(rec: _Seq) -> Step:
    dst_buf = rec.dst_ref.buffer
    src = [(ref.buffer, ix) for ref, ix in rec.sources]
    checks = _merge_checks(
        [_span(dst_buf, rec.dst_idx)] + [_span(b, ix) for b, ix in src]
    )

    def step(resolved, program, ctx):
        _check(resolved, checks)
        d_arr, dd = resolved[dst_buf]
        di = rec.dst_idx + dd if dd else rec.dst_idx
        gathered = []
        for b, ix in src:
            arr, dl = resolved[b]
            gathered.append((arr, ix + dl if dl else ix))
        func = rec.func
        for r in range(di.shape[0]):
            d_arr[di[r]] = func(*[a[ix[r]] for a, ix in gathered])

    return step


def _reduce_step(rec: _Reduce) -> Step:
    dst_buf = rec.dst_ref.buffer
    src_buf = rec.src_ref.buffer
    checks = _merge_checks(
        [_span(dst_buf, rec.dst_row), _span(src_buf, rec.src_idx)]
    )

    def step(resolved, program, ctx):
        _check(resolved, checks)
        s_arr, sd = resolved[src_buf]
        d_arr, dd = resolved[dst_buf]
        rows = s_arr[rec.src_idx + sd if sd else rec.src_idx]
        m = rec.func.reduce(rows, axis=0)
        di = rec.dst_row + dd if dd else rec.dst_row
        d_arr[di] = rec.func(d_arr[di], m)

    return step


def _fill_step(group: list[_Fill]) -> Step:
    first = group[0]
    dst_buf = first.dst_ref.buffer
    d_idx = (
        first.dst_idx
        if len(group) == 1
        else np.concatenate([g.dst_idx for g in group])
    )
    value = first.value
    checks = (_span(dst_buf, d_idx),)

    def step(resolved, program, ctx):
        _check(resolved, checks)
        d_arr, dd = resolved[dst_buf]
        d_arr[d_idx + dd if dd else d_idx] = value

    return step


def _im2col_step(group: list[_Im2col]) -> Step:
    first = group[0]
    src_buf = first.src_ref.buffer
    dst_buf = first.dst_ref.buffer
    if len(group) == 1:
        idx, valid = first.idx, first.valid
    else:
        idx = np.concatenate([g.idx for g in group])
        valid = np.concatenate([g.valid for g in group])
    invalid = ~valid
    pad = first.pad
    start, stop = first.dst_start, group[-1].dst_stop
    checks = _merge_checks(
        [_span(src_buf, idx), (dst_buf, start, stop - 1)]
    )

    def step(resolved, program, ctx):
        _check(resolved, checks)
        s_arr, sd = resolved[src_buf]
        d_arr, dd = resolved[dst_buf]
        rows = s_arr[idx + sd if sd else idx]
        rows[invalid] = pad
        d_arr[start + dd : stop + dd] = rows.reshape(-1)

    return step


def _col2im_step(group: list[_Col2im]) -> Step:
    first = group[0]
    src_buf = first.src_ref.buffer
    dst_buf = first.dst_ref.buffer
    if len(group) == 1:
        s_idx, d_idx = first.src_idx, first.dst_idx
    else:
        s_idx = np.concatenate([g.src_idx for g in group])
        d_idx = np.concatenate([g.dst_idx for g in group])
    checks = _merge_checks([_span(src_buf, s_idx), _span(dst_buf, d_idx)])

    def step(resolved, program, ctx):
        _check(resolved, checks)
        s_arr, sd = resolved[src_buf]
        d_arr, dd = resolved[dst_buf]
        vals = s_arr[s_idx + sd if sd else s_idx]
        np.add.at(d_arr, d_idx + dd if dd else d_idx, vals)

    return step


def _copy_step(group: list[_Copy]) -> Step:
    first = group[0]
    src_buf = first.src_ref.buffer
    dst_buf = first.dst_ref.buffer
    acc = first.accumulate
    n_el = first.src_ref.size
    if len(group) == 1:
        s0, d0 = first.src_ref.offset, first.dst_ref.offset

        def step(resolved, program, ctx):
            s_arr, sd = resolved[src_buf]
            d_arr, dd = resolved[dst_buf]
            ss, ds = s0 + sd, d0 + dd
            if (
                ss < 0
                or ss + n_el > s_arr.size
                or ds < 0
                or ds + n_el > d_arr.size
            ):
                raise IsaError("DataMove region escapes buffer")
            if acc:
                d_arr[ds : ds + n_el] += s_arr[ss : ss + n_el]
            else:
                d_arr[ds : ds + n_el] = s_arr[ss : ss + n_el]

        return step

    lane = np.arange(n_el, dtype=np.int64)
    s_idx = (
        np.array([g.src_ref.offset for g in group], dtype=np.int64)[:, None]
        + lane
    ).reshape(-1)
    d_idx = (
        np.array([g.dst_ref.offset for g in group], dtype=np.int64)[:, None]
        + lane
    ).reshape(-1)
    checks = _merge_checks([_span(src_buf, s_idx), _span(dst_buf, d_idx)])

    def step(resolved, program, ctx):
        _check(resolved, checks)
        s_arr, sd = resolved[src_buf]
        d_arr, dd = resolved[dst_buf]
        vals = s_arr[s_idx + sd if sd else s_idx]
        di = d_idx + dd if dd else d_idx
        if acc:
            # Destination rows are disjoint (fusion requires it), so the
            # buffered fancy-index add touches each element exactly once.
            d_arr[di] += vals
        else:
            d_arr[di] = vals

    return step


def _mmad_step(rec: _Mmad) -> Step:
    instr = rec.instr
    fr = FRACTAL_ROWS * FRACTAL_ROWS
    a_buf, a_off = instr.a.buffer, instr.a.offset
    b_buf, b_off = instr.b.buffer, instr.b.offset
    c_buf, c_off = instr.c.buffer, instr.c.offset
    repeat, init = instr.repeat, instr.init

    def step(resolved, program, ctx):
        a_arr, ad = resolved[a_buf]
        b_arr, bd = resolved[b_buf]
        c_arr, cd = resolved[c_buf]
        out = c_arr[c_off + cd : c_off + cd + fr].reshape(
            FRACTAL_ROWS, FRACTAL_ROWS
        )
        acc = (
            np.zeros((FRACTAL_ROWS, FRACTAL_ROWS), dtype=np.float32)
            if init
            else out.astype(np.float32)
        )
        for r in range(repeat):
            a = a_arr[a_off + ad + r * fr : a_off + ad + (r + 1) * fr]
            b = b_arr[b_off + bd + r * fr : b_off + bd + (r + 1) * fr]
            acc += a.reshape(FRACTAL_ROWS, FRACTAL_ROWS).astype(
                np.float32
            ) @ b.reshape(FRACTAL_ROWS, FRACTAL_ROWS).astype(np.float32)
        out[:] = acc.astype(out.dtype)

    return step


def _fallback_step(group: list[_Fallback]) -> Step:
    indices = tuple(i for g in group for i in g.indices)

    def step(resolved, program, ctx):
        # Execute the *clone's* instructions: their operands already
        # carry the slice's global-memory offsets, so fallback needs no
        # delta arithmetic.
        for i in indices:
            program.instructions[i].execute(ctx)

    return step


def _make_step(group: list[_Record]) -> Step:
    kind = group[0].kind
    if kind == "ew":
        return _ew_step(group)
    if kind == "seq":
        return _seq_step(group[0])
    if kind == "reduce":
        return _reduce_step(group[0])
    if kind == "fill":
        return _fill_step(group)
    if kind == "im2col":
        return _im2col_step(group)
    if kind == "col2im":
        return _col2im_step(group)
    if kind == "copy":
        return _copy_step(group)
    if kind == "mmad":
        return _mmad_step(group[0])
    return _fallback_step(group)


# ---------------------------------------------------------------------------
# the kernel


@dataclass(frozen=True)
class KernelStats:
    """Compile-time shape of one kernel, exposed for tests/benchmarks."""

    #: Instructions in the template program.
    instructions: int
    #: Instructions translated into batched steps.
    compiled: int
    #: Instructions running via the interpreter fallback.
    fallbacks: int
    #: Fused steps the kernel executes per call.
    steps: int


class CompiledKernel:
    """The whole program's data effect as a list of batched steps.

    Call with ``kernel(core, program)`` where ``program`` is the
    template itself or any :meth:`~repro.isa.program.Program.relocate`
    clone of it; relocation deltas are derived per call from the
    clone's anchored global-memory operands.
    """

    def __init__(
        self,
        program_name: str,
        instructions: int,
        steps: tuple[Step, ...],
        buffers: tuple[str, ...],
        anchors: dict[str, tuple[int, str, int]],
        stats: KernelStats,
    ) -> None:
        self.program_name = program_name
        self.instructions = instructions
        self.steps = steps
        self.buffers = buffers
        self.anchors = anchors
        self.stats = stats

    def deltas(self, program: Program) -> dict[str, int]:
        """Per-buffer relocation deltas of ``program`` vs. the template."""
        out: dict[str, int] = {}
        for buf, (idx, fname, base) in self.anchors.items():
            v = getattr(program.instructions[idx], fname)
            off = v.offset if isinstance(v, MemRef) else v.ref.offset
            if off != base:
                out[buf] = off - base
        return out

    def __call__(self, ctx, program: Program) -> None:
        if len(program.instructions) != self.instructions:
            raise SimulationError(
                f"compiled kernel mismatch for program "
                f"{program.name!r}: kernel covers {self.instructions} "
                f"instructions, program has {len(program.instructions)}"
            )
        canonical = _canonical_name(program.name)
        if self.program_name and canonical != self.program_name:
            raise SimulationError(
                f"compiled kernel mismatch: kernel was built for "
                f"{self.program_name!r}, not {canonical!r}"
            )
        deltas = self.deltas(program)
        resolved = {
            b: (ctx.view(b), deltas.get(b, 0)) for b in self.buffers
        }
        for step in self.steps:
            step(resolved, program, ctx)


def _anchors(
    program: Program, scratch: frozenset[str]
) -> dict[str, tuple[int, str, int]]:
    """First (instruction index, field name, base offset) per
    global-memory buffer -- how a kernel reads relocation deltas off a
    clone (relocation preserves instruction order and fields)."""
    anchors: dict[str, tuple[int, str, int]] = {}
    for idx, instr in enumerate(program.instructions):
        for f in dataclasses.fields(instr):  # type: ignore[arg-type]
            v = getattr(instr, f.name)
            if isinstance(v, MemRef):
                buf, off = v.buffer, v.offset
            elif isinstance(v, VectorOperand):
                buf, off = v.ref.buffer, v.ref.offset
            else:
                continue
            if buf not in scratch and buf not in anchors:
                anchors[buf] = (idx, f.name, off)
    return anchors


def compile_program(
    program: Program, config: ChipConfig
) -> CompiledKernel:
    """Translate ``program`` into a :class:`CompiledKernel`.

    Instructions whose type opts out (``supports_compile() == False``)
    or whose ``compile()`` raises :class:`~repro.errors.CompileError`
    become interpreter-fallback steps; everything else is emitted as
    batched records and fused.  The result is bit-identical to the
    interpreter for every input (differentially enforced by
    ``python -m repro.validate --jit``).
    """
    ctx = CompileContext(config)
    compiled = fallbacks = 0
    for idx, instr in enumerate(program.instructions):
        if not instr.supports_compile():
            ctx.records.append(_Fallback([idx]))
            fallbacks += 1
            continue
        mark = len(ctx.records)
        try:
            instr.compile(ctx)
        except CompileError:
            del ctx.records[mark:]
            ctx.records.append(_Fallback([idx]))
            fallbacks += 1
            continue
        compiled += 1
    buffers = set()
    for rec in ctx.records:
        buffers.update(rec.buffers())
    groups = _fuse(ctx.records)
    steps = tuple(_make_step(g) for g in groups)
    return CompiledKernel(
        program_name=_canonical_name(program.name),
        instructions=len(program.instructions),
        steps=steps,
        buffers=tuple(sorted(buffers)),
        anchors=_anchors(
            program, frozenset(config.buffer_specs().keys())
        ),
        stats=KernelStats(
            instructions=len(program.instructions),
            compiled=compiled,
            fallbacks=fallbacks,
            steps=len(steps),
        ),
    )
