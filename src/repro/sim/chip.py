"""The multi-core chip model.

"the outer loops are parallelized between the AI Cores available on the
target device" (Section IV-A): a tiled kernel produces one program per
(N, C1[, row-chunk]) tile, tiles are dealt round-robin to the chip's
cores, and the chip-level cycle count is the maximum per-core total --
cores run independently with no shared-resource contention modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ChipConfig
from ..dtypes import FLOAT16, DType
from ..errors import SimulationError
from ..isa.program import Program
from .aicore import AICore, RunResult
from .memory import GlobalMemory
from .scheduler import ExecutionModel
from .trace import pooled_lane_utilization


@dataclass(frozen=True)
class ChipRunResult:
    """Outcome of running a tiled kernel on the whole chip."""

    #: Chip makespan: max over cores of that core's serial tile cycles.
    cycles: int
    #: Sum of cycles over all tiles (single-core-equivalent work).
    total_work_cycles: int
    #: Number of tiles executed.
    tiles: int
    #: Number of cores that received at least one tile.
    cores_used: int
    per_tile: tuple[RunResult, ...]
    #: Cycles (incl. launch overhead) accumulated on each core, indexed
    #: by core id -- the load-imbalance breakdown: ``cycles`` is its max,
    #: ``total_work_cycles`` its sum.  Idle cores report 0.
    per_core_cycles: tuple[int, ...] = ()

    @property
    def load_imbalance(self) -> float:
        """Makespan over mean busy-core cycles (1.0 = perfectly balanced).

        The quantity bench output reports so a skewed tile deal is
        visible without digging through per-tile results.
        """
        busy = [c for c in self.per_core_cycles if c > 0]
        if not busy:
            return 1.0
        return self.cycles / (sum(busy) / len(busy))

    @property
    def vector_lane_utilization(self) -> float | None:
        """Repeat-weighted utilization pooled over every tile.

        Shares :func:`repro.sim.trace.pooled_lane_utilization` with the
        per-program :meth:`repro.sim.trace.Trace.vector_lane_utilization`.
        ``None`` means the run issued no vector instructions; if *no*
        tile collected a trace (``collect_trace=False``), asking for
        utilization raises -- the statistic is not derivable, which is
        different from "there were no vector issues".
        """
        collected = [r.trace for r in self.per_tile if r.trace.collected]
        if self.per_tile and not collected:
            raise SimulationError(
                "no tile collected a trace (collect_trace=False); "
                "re-run with collect_trace=True to derive lane "
                "utilization"
            )
        return pooled_lane_utilization(
            rec for trace in collected for rec in trace.records
        )


@dataclass
class Chip:
    """``config.num_cores`` AI Cores sharing one global memory."""

    config: ChipConfig
    dtype: DType = FLOAT16
    cores: list[AICore] = field(init=False)

    def __post_init__(self) -> None:
        if self.config.num_cores <= 0:
            raise SimulationError("chip needs at least one core")
        self.cores = [
            AICore(self.config, self.dtype, core_id=i)
            for i in range(self.config.num_cores)
        ]

    def _dispatch(self, index: int) -> tuple[int, AICore]:
        """Round-robin deal: ``(core_id, core)`` for work item ``index``.

        The single place mapping work items to cores -- both
        :meth:`run_tiles` (per tile) and :meth:`run_tile_groups` (per
        group) route through it, so the dealing policy and the
        ``per_core_cycles`` accounting can never drift apart.
        """
        core_id = index % len(self.cores)
        return core_id, self.cores[core_id]

    def _run_one(
        self,
        core: AICore,
        prog: Program,
        gm: GlobalMemory | None,
        collect_trace: bool,
        execute: str,
        summary: RunResult | None,
        model,
    ) -> RunResult:
        if execute == "numeric":
            core.reset_allocations()
        return core.run(
            prog,
            gm,
            collect_trace=collect_trace,
            execute=execute,
            summary=summary,
            model=model,
        )

    def _result(
        self,
        per_core_cycles: list[int],
        tiles: int,
        results: list[RunResult],
    ) -> ChipRunResult:
        busy = [c for c in per_core_cycles if c > 0]
        return ChipRunResult(
            cycles=max(per_core_cycles),
            total_work_cycles=sum(per_core_cycles),
            tiles=tiles,
            cores_used=len(busy),
            per_tile=tuple(results),
            per_core_cycles=tuple(per_core_cycles),
        )

    def run_tiles(
        self,
        programs: list[Program],
        gm: GlobalMemory | None,
        collect_trace: bool = True,
        execute: str = "numeric",
        summaries: list[RunResult | None] | None = None,
        model: "str | ExecutionModel | None" = None,
    ) -> ChipRunResult:
        """Execute tile programs round-robin over the cores.

        Tiles assigned to one core run serially on it; distinct cores
        run (logically) in parallel, so the chip's cycle count is the
        slowest core's total.  Each tile pays the block-dispatch
        overhead ``tile_launch_cycles``.

        ``execute``, ``summaries`` and ``model`` forward to
        :meth:`AICore.run`: ``execute="cycles"`` skips data execution
        (``gm`` may be ``None``), ``summaries`` -- one optional
        precomputed :class:`RunResult` per program, typically from the
        program cache -- lets repeated tiles skip per-instruction
        accounting, and ``model`` selects the timing model.
        """
        if not programs:
            raise SimulationError("run_tiles called with no tile programs")
        if summaries is not None and len(summaries) != len(programs):
            raise SimulationError(
                f"{len(summaries)} summaries for {len(programs)} programs"
            )
        launch = self.config.cost.tile_launch_cycles
        per_core_cycles = [0] * len(self.cores)
        results: list[RunResult] = []
        for t, prog in enumerate(programs):
            core_id, core = self._dispatch(t)
            res = self._run_one(
                core, prog, gm, collect_trace, execute,
                summaries[t] if summaries is not None else None, model,
            )
            results.append(res)
            per_core_cycles[core_id] += res.cycles + launch
        return self._result(per_core_cycles, len(programs), results)

    def run_tile_groups(
        self,
        groups: list[list[Program]],
        gm: GlobalMemory | None,
        collect_trace: bool = True,
        execute: str = "numeric",
        summaries: list[list[RunResult | None]] | None = None,
        model: "str | ExecutionModel | None" = None,
    ) -> ChipRunResult:
        """Execute groups of tiles; each group stays on one core.

        Used when tiles within a group must be serialised -- e.g. the
        row-chunked backward tiles of one (N, C1) slice, whose
        accumulate-DMA stores overlap and may not race across cores.
        Groups are dealt round-robin to cores.  ``execute``,
        ``summaries`` (nested to mirror ``groups``) and ``model`` behave
        as in :meth:`run_tiles`.
        """
        if not groups or any(not g for g in groups):
            raise SimulationError("run_tile_groups needs non-empty groups")
        if summaries is not None and (
            len(summaries) != len(groups)
            or any(len(s) != len(g) for s, g in zip(summaries, groups))
        ):
            raise SimulationError("summaries do not mirror groups")
        launch = self.config.cost.tile_launch_cycles
        per_core_cycles = [0] * len(self.cores)
        results: list[RunResult] = []
        tiles = 0
        for gidx, group in enumerate(groups):
            core_id, core = self._dispatch(gidx)
            for pidx, prog in enumerate(group):
                res = self._run_one(
                    core, prog, gm, collect_trace, execute,
                    summaries[gidx][pidx] if summaries is not None else None,
                    model,
                )
                results.append(res)
                per_core_cycles[core_id] += res.cycles + launch
                tiles += 1
        return self._result(per_core_cycles, tiles, results)
