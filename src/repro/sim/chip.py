"""The multi-core chip model.

"the outer loops are parallelized between the AI Cores available on the
target device" (Section IV-A): a tiled kernel produces one program per
(N, C1[, row-chunk]) tile, tiles are dealt round-robin to the chip's
cores, and the chip-level cycle count is the maximum per-core total --
cores run independently with no shared-resource contention modelled.

Fault tolerance: :meth:`Chip.run_tiles` / :meth:`Chip.run_tile_groups`
optionally take a :class:`~repro.sim.faults.FaultPlan` and a
:class:`~repro.sim.faults.RetryPolicy`.  With either supplied, the
dispatcher becomes resilient -- bounded retry with exponential cycle
backoff, reassignment of failed tiles to healthy cores, quarantine of
repeatedly-failing cores, rollback of a failed attempt's partial
global-memory writes, graceful degradation (cached summary -> fresh
accounting, pipelined -> serial timing) and a tile-coverage ledger
auditing that every output tile completes exactly once.  Everything
the layer did is recorded in the attached
:class:`~repro.sim.faults.ResilienceReport`.  With neither supplied
(the default), the historical dispatch loop runs unchanged: the
resilience machinery is zero-cost when idle.

Scratch-pad reuse between tiles is **intentional**: ``_run_one`` resets
each core's allocators before a tile but deliberately never calls
:meth:`~repro.sim.buffers.ScratchBuffer.clear` -- real hardware does
not zero a scratch-pad between kernels, and a correct kernel
initializes everything it reads, so clearing would only add cost and
hide bugs.  The consequence is that a *buggy* kernel can silently read
the previous tile's data (and, because :class:`ScratchBuffer` happens
to zero-init at construction, a freshly built chip can mask even that).
Strict mode (``sanitize=True``) closes the hole: buffers are
poison-filled at each tile start and the shadow state flags any read of
freed or never-written elements (see :mod:`repro.sim.sanitizer`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..config import ChipConfig
from ..dtypes import FLOAT16, DType
from ..errors import CoreFailure, DeadlineExceeded, PlanError, SimulationError
from ..isa.program import Program
from .aicore import AICore, RunResult
from .faults import (
    BitFlip,
    CoverageLedger,
    DegradationEvent,
    FailureRecord,
    FaultInjector,
    FaultPlan,
    Injection,
    ResilienceReport,
    RetryPolicy,
    apply_silent_flips_to_gm,
    resolve_injector,
)
from .memory import GlobalMemory
from .sanitizer import Sanitizer, SanitizerReport
from .scheduler import SERIAL, ExecutionModel, resolve_model
from .trace import pooled_lane_utilization


@dataclass(frozen=True)
class ChipRunResult:
    """Outcome of running a tiled kernel on the whole chip."""

    #: Chip makespan: max over cores of that core's serial tile cycles.
    cycles: int
    #: Sum of cycles over all tiles (single-core-equivalent work).
    total_work_cycles: int
    #: Number of tiles executed.
    tiles: int
    #: Number of cores that received at least one tile.
    cores_used: int
    per_tile: tuple[RunResult, ...]
    #: Cycles (incl. launch overhead) accumulated on each core, indexed
    #: by core id -- the load-imbalance breakdown: ``cycles`` is its max,
    #: ``total_work_cycles`` its sum.  Idle cores report 0.
    per_core_cycles: tuple[int, ...] = ()
    #: What the resilience layer did (retries, reassignments,
    #: quarantines, degradations, extra cycles); ``None`` on the
    #: historical fast path (no fault plan / retry policy supplied).
    resilience: ResilienceReport | None = None
    #: Merged per-core memory-sanitizer report (``sanitize=True``);
    #: ``None`` on the zero-cost default path.
    sanitizer: SanitizerReport | None = None

    @property
    def load_imbalance(self) -> float:
        """Makespan over mean busy-core cycles (1.0 = perfectly balanced).

        The quantity bench output reports so a skewed tile deal is
        visible without digging through per-tile results.
        """
        busy = [c for c in self.per_core_cycles if c > 0]
        if not busy:
            return 1.0
        return self.cycles / (sum(busy) / len(busy))

    def detach(self) -> "ChipRunResult":
        """A slim copy safe to ship across a process boundary.

        Per-tile results are detached (their per-instruction trace
        payloads dropped -- see :meth:`repro.sim.aicore.RunResult.detach`);
        the chip-level aggregates, the per-core cycle breakdown and the
        resilience/sanitizer reports all survive, so latency/SLO
        accounting on the far side loses nothing it needs.  Returns
        ``self`` when every tile is already slim.
        """
        detached = tuple(r.detach() for r in self.per_tile)
        if all(d is r for d, r in zip(detached, self.per_tile)):
            return self
        return replace(self, per_tile=detached)

    @property
    def vector_lane_utilization(self) -> float | None:
        """Repeat-weighted utilization pooled over every tile.

        Shares :func:`repro.sim.trace.pooled_lane_utilization` with the
        per-program :meth:`repro.sim.trace.Trace.vector_lane_utilization`.
        ``None`` means the run issued no vector instructions; if *no*
        tile collected a trace (``collect_trace=False``), asking for
        utilization raises -- the statistic is not derivable, which is
        different from "there were no vector issues".
        """
        collected = [r.trace for r in self.per_tile if r.trace.collected]
        if self.per_tile and not collected:
            raise SimulationError(
                "no tile collected a trace (collect_trace=False); "
                "re-run with collect_trace=True to derive lane "
                "utilization"
            )
        return pooled_lane_utilization(
            rec for trace in collected for rec in trace.records
        )


class _ResilientDispatch:
    """One resilient chip run: the retry/reassign/quarantine machinery.

    Owns the mutable recovery state (per-core failure counts, the
    quarantine set, the coverage ledger and every report counter) for
    the duration of a single :meth:`Chip.run_tiles` /
    :meth:`Chip.run_tile_groups` call.
    """

    def __init__(
        self,
        chip: "Chip",
        injector: FaultInjector | None,
        policy: RetryPolicy,
        gm: GlobalMemory | None,
        collect_trace: bool,
        execute: str,
        model: "str | ExecutionModel | None",
    ) -> None:
        self.chip = chip
        self.injector = injector
        self.policy = policy
        self.gm = gm
        self.collect_trace = collect_trace
        self.execute = execute
        self.model = resolve_model(model)
        n = len(chip.cores)
        self.per_core_cycles = [0] * n
        self.launch = chip.config.cost.tile_launch_cycles
        self.failures_per_core = [0] * n
        self.quarantined: list[int] = []
        self.ledger = CoverageLedger()
        self.attempts = 0
        self.retries = 0
        self.reassignments = 0
        self.stall_cycles = 0
        self.backoff_cycles = 0
        self.failures: list[FailureRecord] = []
        self.degradations: list[DegradationEvent] = []
        self._scratch_names = frozenset(chip.config.buffer_specs())

    # -- core selection -------------------------------------------------
    def place(self, core_id: int) -> int:
        """Honour quarantine at initial placement time."""
        if core_id in self.quarantined:
            new = self._next_core(core_id)
            if new != core_id:
                self.reassignments += 1
                return new
        return core_id

    def _next_core(self, avoid: int) -> int:
        """The next healthy core after ``avoid`` (cyclic); ``avoid``
        itself when it is the only healthy core; the least-failed core
        when everything is quarantined (degraded, but still making
        progress -- unrecoverability is reserved for retry exhaustion).
        """
        n = len(self.chip.cores)
        for d in range(1, n + 1):
            cand = (avoid + d) % n
            if cand not in self.quarantined:
                return cand
        return min(range(n), key=lambda c: (self.failures_per_core[c], c))

    # -- degradation ----------------------------------------------------
    def _preflight_summary(
        self, tile: int, prog: Program, summary: RunResult | None
    ) -> RunResult | None:
        """Cached->fresh degradation: a summary that visibly belongs to
        a different program is dropped (and recorded) instead of
        aborting the run; the tile pays fresh per-instruction
        accounting."""
        if summary is None:
            return None
        try:
            AICore._check_summary(prog, summary)
        except SimulationError as exc:
            self.degradations.append(
                DegradationEvent("cached-to-fresh", tile, str(exc))
            )
            return None
        return summary

    # -- one work item --------------------------------------------------
    def run_item(
        self,
        tile: int,
        core_id: int,
        prog: Program,
        summary: RunResult | None,
    ) -> tuple[int, RunResult]:
        """Execute one work item to completion (or exhaust retries).

        Returns ``(core_id, result)`` -- the core that finally ran the
        tile, so grouped dispatch can keep the rest of a group on the
        reassigned core.
        """
        core_id = self.place(core_id)
        cur_summary = self._preflight_summary(tile, prog, summary)
        cur_model = self.model
        attempt = 0
        while True:
            self.attempts += 1
            inj = (
                self.injector.injection(tile, core_id, attempt)
                if self.injector is not None
                else None
            )
            snapshot = None
            try:
                if (
                    inj is not None
                    and inj.can_fail
                    and self.execute == "numeric"
                    and self.gm is not None
                ):
                    snapshot = self._snapshot(prog)
                res = self._attempt(core_id, prog, cur_summary, cur_model, inj)
                cycles = res.cycles + (inj.stall if inj is not None else 0)
                if (
                    inj is not None
                    and inj.deadline is not None
                    and cycles > inj.deadline
                ):
                    raise DeadlineExceeded(
                        f"tile {tile} ({prog.name!r}) makespan {cycles} "
                        f"exceeds budget {inj.deadline} under model "
                        f"{cur_model.name!r} on core {core_id} "
                        f"(attempt {attempt})"
                    )
            except (CoreFailure, DeadlineExceeded) as exc:
                if snapshot is not None:
                    self._restore(snapshot)
                self._record_failure(tile, core_id, attempt, exc)
                attempt += 1
                if attempt >= self.policy.max_attempts:
                    raise SimulationError(
                        f"tile {tile} ({prog.name!r}) failed {attempt} "
                        f"attempts (last on core {core_id}); retry budget "
                        f"of {self.policy.max_attempts} exhausted: {exc}"
                    ) from exc
                self.retries += 1
                backoff = self.policy.backoff(attempt)
                new_core = self._next_core(core_id)
                if new_core != core_id:
                    self.reassignments += 1
                core_id = new_core
                self.per_core_cycles[core_id] += backoff
                self.backoff_cycles += backoff
                if (
                    cur_model.name != SERIAL.name
                    and attempt >= self.policy.degrade_model_after
                ):
                    self.degradations.append(
                        DegradationEvent(
                            "pipelined-to-serial",
                            tile,
                            f"fell back to serial timing after {attempt} "
                            f"failed attempts under {cur_model.name!r}; "
                            "cached summary dropped",
                        )
                    )
                    cur_model = SERIAL
                    cur_summary = None
                continue
            # Success: account stall + launch, close the ledger entry.
            if inj is not None and inj.stall:
                self.stall_cycles += inj.stall
            self.ledger.record(tile, attempt)
            self.per_core_cycles[core_id] += cycles + self.launch
            return core_id, res

    def _attempt(
        self,
        core_id: int,
        prog: Program,
        summary: RunResult | None,
        model: ExecutionModel,
        inj: Injection | None,
    ) -> RunResult:
        core = self.chip.cores[core_id]
        if self.execute == "numeric":
            core.reset_allocations()
            return core.run(
                prog,
                self.gm,
                collect_trace=self.collect_trace,
                execute="numeric",
                summary=summary,
                model=model,
                injection=inj,
            )
        # Cycles mode has no data pass: crash/detected-corruption faults
        # fail the attempt up front (the tile never completes).
        if inj is not None:
            n = len(prog)
            if inj.crash_at is not None:
                raise CoreFailure(
                    f"core {core_id} crashed at instruction "
                    f"{min(inj.crash_at, n)}/{n} of {prog.name!r} "
                    f"(attempt {inj.attempt})"
                )
            for b in inj.bitflips:
                if b.detected:
                    raise CoreFailure(
                        f"core {core_id}: detected bit flip in "
                        f"{b.buffer!r} at instruction "
                        f"{min(b.at_instruction, n)}/{n} of {prog.name!r} "
                        f"(attempt {inj.attempt})"
                    )
        return core.run(
            prog,
            None,
            collect_trace=self.collect_trace,
            execute="cycles",
            summary=summary,
            model=model,
        )

    # -- rollback -------------------------------------------------------
    def _snapshot(self, prog: Program) -> dict[str, np.ndarray]:
        """Copies of every global-memory tensor ``prog`` writes.

        Taken only for attempts a fault can fail, so a failed attempt's
        partial stores (including accumulate-DMA partial sums, which a
        blind re-run would double-count) can be rolled back and the
        retry starts from clean state.
        """
        assert self.gm is not None
        names: set[str] = set()
        for instr in prog.instructions:
            for r in instr.writes():
                if r.buffer not in self._scratch_names:
                    names.add(r.buffer)
        return {
            nm: self.gm.tensors[nm].copy()
            for nm in sorted(names)
            if nm in self.gm.tensors
        }

    def _restore(self, snapshot: dict[str, np.ndarray]) -> None:
        assert self.gm is not None
        for nm, arr in snapshot.items():
            np.copyto(self.gm.tensors[nm], arr)

    # -- bookkeeping ----------------------------------------------------
    def _record_failure(
        self, tile: int, core_id: int, attempt: int, exc: Exception
    ) -> None:
        self.failures.append(
            FailureRecord(
                tile=tile,
                core=core_id,
                attempt=attempt,
                error=type(exc).__name__,
                message=str(exc),
            )
        )
        self.failures_per_core[core_id] += 1
        if (
            self.failures_per_core[core_id] >= self.policy.quarantine_after
            and core_id not in self.quarantined
        ):
            self.quarantined.append(core_id)

    def report(self) -> ResilienceReport:
        return ResilienceReport(
            plan_faults=(
                len(self.injector.plan.faults)
                if self.injector is not None
                else 0
            ),
            attempts=self.attempts,
            retries=self.retries,
            reassignments=self.reassignments,
            stall_cycles=self.stall_cycles,
            backoff_cycles=self.backoff_cycles,
            quarantined_cores=tuple(self.quarantined),
            failures=tuple(self.failures),
            degradations=tuple(self.degradations),
        )


@dataclass
class Chip:
    """``config.num_cores`` AI Cores sharing one global memory."""

    config: ChipConfig
    dtype: DType = FLOAT16
    cores: list[AICore] = field(init=False)

    def __post_init__(self) -> None:
        if self.config.num_cores <= 0:
            raise SimulationError("chip needs at least one core")
        self.cores = [
            AICore(self.config, self.dtype, core_id=i)
            for i in range(self.config.num_cores)
        ]

    def _dispatch(self, index: int) -> tuple[int, AICore]:
        """Round-robin deal: ``(core_id, core)`` for work item ``index``.

        The single place mapping work items to cores -- both
        :meth:`run_tiles` (per tile) and :meth:`run_tile_groups` (per
        group) route through it, so the dealing policy and the
        ``per_core_cycles`` accounting can never drift apart.  Bounds
        are validated here so a bad index surfaces as a clear
        :class:`~repro.errors.SimulationError` instead of a raw
        ``IndexError`` deep in the accounting.
        """
        if index < 0:
            raise SimulationError(
                f"work item index {index} is negative; tiles are dealt "
                "by non-negative flat index"
            )
        if not self.cores:
            raise SimulationError("chip has no cores to dispatch onto")
        core_id = index % len(self.cores)
        return core_id, self.cores[core_id]

    def _run_one(
        self,
        core: AICore,
        prog: Program,
        gm: GlobalMemory | None,
        collect_trace: bool,
        execute: str,
        summary: RunResult | None,
        model,
        sanitizer: "Sanitizer | None" = None,
        kernel=None,
    ) -> RunResult:
        # Note: allocators are reset per tile but the scratch-pad
        # *contents* are deliberately not cleared -- see the module
        # docstring.  Strict mode poisons them instead.
        if execute in ("numeric", "jit"):
            core.reset_allocations()
        return core.run(
            prog,
            gm,
            collect_trace=collect_trace,
            execute=execute,
            summary=summary,
            model=model,
            sanitize=sanitizer,
            compiled=kernel,
        )

    def _result(
        self,
        per_core_cycles: list[int],
        tiles: int,
        results: list[RunResult],
        resilience: ResilienceReport | None = None,
        sanitizers: "list[Sanitizer] | None" = None,
    ) -> ChipRunResult:
        busy = [c for c in per_core_cycles if c > 0]
        report = None
        if sanitizers is not None:
            report = SanitizerReport()
            for s in sanitizers:
                report.merge(s.report)
        return ChipRunResult(
            cycles=max(per_core_cycles),
            total_work_cycles=sum(per_core_cycles),
            tiles=tiles,
            cores_used=len(busy),
            per_tile=tuple(results),
            per_core_cycles=tuple(per_core_cycles),
            resilience=resilience,
            sanitizer=report,
        )

    def _sanitizers(
        self,
        sanitize: bool,
        execute: str,
        faults,
        retry,
    ) -> "list[Sanitizer] | None":
        """One persistent halting :class:`Sanitizer` per core (so
        cross-tile stale reads are diagnosed precisely), or ``None``
        when strict mode is off.  Rejects combinations strict mode
        cannot check."""
        if not sanitize:
            return None
        if faults is not None or retry is not None:
            raise SimulationError(
                "sanitize= and faults=/retry= are mutually exclusive: "
                "fault injection corrupts scratch-pad state on purpose, "
                "which strict mode would (correctly) reject"
            )
        if execute != "numeric":
            raise SimulationError(
                "sanitized dispatch must execute numerically "
                "(execute='numeric'): cycles-only runs never touch "
                "buffer data, and JIT runs bypass the per-instruction "
                "loop strict mode instruments"
            )
        return [Sanitizer(self.config) for _ in self.cores]

    @staticmethod
    def _check_jit_modes(
        execute: str, faults, retry, compiled=None
    ) -> None:
        """``execute="jit"`` composes with *silent-only* fault plans
        (every fault an undetected :class:`BitFlip`): those never fail
        an attempt, so the chip applies them to the kernel's written
        global-memory tensors post-execute.  Everything else in the
        resilient dispatcher -- detected faults, crashes, stalls,
        deadlines, ``retry=`` -- operates at per-instruction boundaries
        the fused batch kernels do not have, and raises a
        :class:`~repro.errors.PlanError` naming the conflicting fields.
        """
        if compiled is not None and execute != "jit":
            raise SimulationError(
                "compiled= supplies JIT kernels and is only meaningful "
                "with execute='jit'"
            )
        if execute != "jit":
            return
        plan = faults.plan if isinstance(faults, FaultInjector) else faults
        conflicts = []
        if plan is not None and not plan.silent_only:
            kinds = sorted(
                {
                    "BitFlip(detected=True)"
                    if isinstance(f, BitFlip)
                    else type(f).__name__
                    for f in plan.faults
                    if not (isinstance(f, BitFlip) and not f.detected)
                }
            )
            conflicts.append(f"faults= (fault kinds: {', '.join(kinds)})")
        if retry is not None:
            conflicts.append("retry= (resilient retry)")
        if conflicts:
            raise PlanError(
                f"execute='jit' conflicts with {' and '.join(conflicts)}: "
                "fused batch kernels have no per-instruction boundaries "
                "for fault injection or retry accounting.  Only *silent* "
                "BitFlip plans (detected=False) compose with the JIT -- "
                "their flips land on the kernel's written global-memory "
                "tensors post-execute.  Run the interpreter "
                "(execute='numeric') for resilient dispatch"
            )

    def run_tiles(
        self,
        programs: list[Program],
        gm: GlobalMemory | None,
        collect_trace: bool = True,
        execute: str = "numeric",
        summaries: list[RunResult | None] | None = None,
        model: "str | ExecutionModel | None" = None,
        faults: "FaultPlan | FaultInjector | None" = None,
        retry: RetryPolicy | None = None,
        sanitize: bool = False,
        compiled: list | None = None,
    ) -> ChipRunResult:
        """Execute tile programs round-robin over the cores.

        Tiles assigned to one core run serially on it; distinct cores
        run (logically) in parallel, so the chip's cycle count is the
        slowest core's total.  Each tile pays the block-dispatch
        overhead ``tile_launch_cycles``.

        ``execute``, ``summaries`` and ``model`` forward to
        :meth:`AICore.run`: ``execute="cycles"`` skips data execution
        (``gm`` may be ``None``), ``summaries`` -- one optional
        precomputed :class:`RunResult` per program, typically from the
        program cache -- lets repeated tiles skip per-instruction
        accounting, and ``model`` selects the timing model.

        ``faults`` / ``retry`` switch on the resilient dispatcher (see
        the module docstring); both ``None`` (the default) runs the
        historical loop unchanged and leaves
        :attr:`ChipRunResult.resilience` as ``None``.

        ``sanitize=True`` runs every tile in strict memory-checking
        mode (:mod:`repro.sim.sanitizer`) with one persistent
        :class:`~repro.sim.sanitizer.Sanitizer` per core, so stale
        reads of a previous tile's scratch data are caught; the merged
        report lands in :attr:`ChipRunResult.sanitizer`.  Incompatible
        with ``faults``/``retry`` and ``execute="cycles"``/``"jit"``.

        ``execute="jit"`` runs each tile through its compiled batch
        kernel (:mod:`repro.sim.compile`); ``compiled`` optionally
        supplies one kernel per program (typically shared across
        relocated clones via the program cache), mirroring
        ``summaries``.  Incompatible with ``faults``/``retry`` and
        ``sanitize``.
        """
        if not programs:
            raise SimulationError("run_tiles called with no tile programs")
        if summaries is not None and len(summaries) != len(programs):
            raise SimulationError(
                f"run_tiles got {len(summaries)} summaries for "
                f"{len(programs)} tile programs; summaries must "
                "correspond 1:1 with tiles"
            )
        if compiled is not None and len(compiled) != len(programs):
            raise SimulationError(
                f"run_tiles got {len(compiled)} compiled kernels for "
                f"{len(programs)} tile programs; kernels must "
                "correspond 1:1 with tiles"
            )
        self._check_jit_modes(execute, faults, retry, compiled)
        sanitizers = self._sanitizers(sanitize, execute, faults, retry)
        injector = resolve_injector(faults)
        launch = self.config.cost.tile_launch_cycles
        silent_jit = injector is not None and execute == "jit"
        scratch = (
            frozenset(self.config.buffer_specs()) if silent_jit else None
        )
        if retry is None and (injector is None or silent_jit):
            per_core_cycles = [0] * len(self.cores)
            results: list[RunResult] = []
            for t, prog in enumerate(programs):
                core_id, core = self._dispatch(t)
                res = self._run_one(
                    core, prog, gm, collect_trace, execute,
                    summaries[t] if summaries is not None else None, model,
                    sanitizers[core_id] if sanitizers is not None else None,
                    compiled[t] if compiled is not None else None,
                )
                results.append(res)
                per_core_cycles[core_id] += res.cycles + launch
                if silent_jit:
                    inj = injector.injection(t, core_id, 0)
                    if inj is not None:
                        apply_silent_flips_to_gm(gm, prog, inj, scratch)
            return self._result(
                per_core_cycles, len(programs), results,
                resilience=ResilienceReport(
                    plan_faults=len(injector.plan),
                    attempts=len(programs),
                ) if silent_jit else None,
                sanitizers=sanitizers,
            )

        dispatch = _ResilientDispatch(
            self, injector, retry or RetryPolicy(), gm, collect_trace,
            execute, model,
        )
        results = []
        for t, prog in enumerate(programs):
            core_id, _ = self._dispatch(t)
            _, res = dispatch.run_item(
                t, core_id, prog,
                summaries[t] if summaries is not None else None,
            )
            results.append(res)
        dispatch.ledger.audit(len(programs))
        return self._result(
            dispatch.per_core_cycles, len(programs), results,
            dispatch.report(),
        )

    def run_tile_groups(
        self,
        groups: list[list[Program]],
        gm: GlobalMemory | None,
        collect_trace: bool = True,
        execute: str = "numeric",
        summaries: list[list[RunResult | None]] | None = None,
        model: "str | ExecutionModel | None" = None,
        faults: "FaultPlan | FaultInjector | None" = None,
        retry: RetryPolicy | None = None,
        sanitize: bool = False,
        compiled: list | None = None,
    ) -> ChipRunResult:
        """Execute groups of tiles; each group stays on one core.

        Used when tiles within a group must be serialised -- e.g. the
        row-chunked backward tiles of one (N, C1) slice, whose
        accumulate-DMA stores overlap and may not race across cores.
        Groups are dealt round-robin to cores.  ``execute``,
        ``summaries`` (nested to mirror ``groups``) and ``model`` behave
        as in :meth:`run_tiles`.  Under the resilient dispatcher
        (``faults`` / ``retry``), a reassigned tile drags the rest of
        its group to the new core, preserving the group's one-core
        serialisation invariant.  ``sanitize`` and ``compiled`` (nested
        to mirror ``groups``) behave as in :meth:`run_tiles`.
        """
        if not groups or any(not g for g in groups):
            raise SimulationError("run_tile_groups needs non-empty groups")
        if summaries is not None and (
            len(summaries) != len(groups)
            or any(len(s) != len(g) for s, g in zip(summaries, groups))
        ):
            raise SimulationError(
                "summaries do not mirror groups: need one (possibly None) "
                "summary per tile program, nested exactly like the groups"
            )
        if compiled is not None and (
            len(compiled) != len(groups)
            or any(len(c) != len(g) for c, g in zip(compiled, groups))
        ):
            raise SimulationError(
                "compiled kernels do not mirror groups: need one "
                "(possibly None) kernel per tile program, nested exactly "
                "like the groups"
            )
        self._check_jit_modes(execute, faults, retry, compiled)
        sanitizers = self._sanitizers(sanitize, execute, faults, retry)
        injector = resolve_injector(faults)
        launch = self.config.cost.tile_launch_cycles
        silent_jit = injector is not None and execute == "jit"
        scratch = (
            frozenset(self.config.buffer_specs()) if silent_jit else None
        )
        if retry is None and (injector is None or silent_jit):
            per_core_cycles = [0] * len(self.cores)
            results: list[RunResult] = []
            tiles = 0
            for gidx, group in enumerate(groups):
                core_id, core = self._dispatch(gidx)
                for pidx, prog in enumerate(group):
                    res = self._run_one(
                        core, prog, gm, collect_trace, execute,
                        summaries[gidx][pidx] if summaries is not None
                        else None,
                        model,
                        sanitizers[core_id] if sanitizers is not None
                        else None,
                        compiled[gidx][pidx] if compiled is not None
                        else None,
                    )
                    results.append(res)
                    per_core_cycles[core_id] += res.cycles + launch
                    if silent_jit:
                        inj = injector.injection(tiles, core_id, 0)
                        if inj is not None:
                            apply_silent_flips_to_gm(gm, prog, inj, scratch)
                    tiles += 1
            return self._result(
                per_core_cycles, tiles, results,
                resilience=ResilienceReport(
                    plan_faults=len(injector.plan), attempts=tiles
                ) if silent_jit else None,
                sanitizers=sanitizers,
            )

        dispatch = _ResilientDispatch(
            self, injector, retry or RetryPolicy(), gm, collect_trace,
            execute, model,
        )
        results = []
        tiles = 0
        for gidx, group in enumerate(groups):
            core_id, _ = self._dispatch(gidx)
            for pidx, prog in enumerate(group):
                core_id, res = dispatch.run_item(
                    tiles, core_id, prog,
                    summaries[gidx][pidx] if summaries is not None else None,
                )
                results.append(res)
                tiles += 1
        dispatch.ledger.audit(tiles)
        return self._result(
            dispatch.per_core_cycles, tiles, results, dispatch.report()
        )
