"""Compiled-program cache with relocation.

Every ``(N, C1)`` slice of a pooling workload lowers to the *same* tile
program -- only the global-memory base offsets differ -- yet the seed
driver re-ran the Python-side lowering once per tile.  For a Table-1 /
InceptionV3-scale sweep that is thousands of redundant lowering passes.

This module memoizes lowered tile programs keyed by everything the
lowering depends on (implementation ``describe()``, tile geometry,
dtype, chip-config fingerprint, full-image extents), and memoizes the
per-program execution *summary* (cycle total plus the statically-derived
trace).  Because the simulator's cost model is data-independent,
relocated copies of a program are cycle-identical, so one summary stands
in for every slice.  The drivers in :mod:`repro.ops.base` build one
program per unique geometry, emit :meth:`repro.isa.program.Program.relocate`
clones per slice, and hand the shared summaries to the chip so repeated
tiles skip per-instruction accounting -- the enabling layer for the
cycles-only analytic mode (``execute="cycles"``) that the benchmark
figures run on.

This mirrors how implicit-GEMM stacks amortize im2col setup across
invocations (the indirection buffer of the Indirect Convolution
Algorithm is built once and reused; only the data pass re-runs).

Thread safety
-------------

:class:`ProgramCache` is safe to share between threads: every public
operation (``get_or_build``, ``summary``, ``compiled``, ``invalidate``,
``clear``, length/containment) takes one internal re-entrant lock, so
lookups, LRU reordering, eviction, stat counting and the
summary/kernel memo writes are each atomic.  In particular the
evicted-entry window is closed: ``compiled``/``summary`` re-adopt the
caller's program and install the memo under the same lock, so a
concurrent eviction can never drop a :class:`CompiledKernel` another
caller just adopted.  Build callbacks (lowering, summarization, JIT
compilation) run *inside* the lock -- concurrent callers of the same
key wait rather than duplicating work, and a kernel observed once is
never rebuilt.  Processes never share a cache; the serving layer
(:mod:`repro.serve`) gives each worker process its own instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

from ..config import ChipConfig
from ..dtypes import DType
from ..isa.program import Program
from .aicore import RunResult, summarize
from .scheduler import ExecutionModel, resolve_model

#: A fully-discriminating, hashable description of one tile lowering.
ProgramKey = Hashable


def program_key(
    kind: str,
    impl: str,
    spec: Hashable,
    geom: Hashable,
    dtype: DType,
    image: tuple[int, ...],
    config: ChipConfig,
    model: "str | ExecutionModel | None" = None,
) -> ProgramKey:
    """Cache key of one tile program.

    ``kind`` distinguishes driver direction ("fwd"/"bwd"), ``impl`` is
    the implementation's ``describe()`` string (op, variant, mask),
    ``spec``/``geom`` are the frozen pooling spec and tile geometry,
    ``image`` carries the full-tensor extents that are baked into
    global-memory offsets (``ih, iw, oh, ow``), and ``config`` -- a
    frozen dataclass -- fingerprints both the program shape (buffer
    capacities, ``max_repeat``) and the cost model the summary depends
    on.  ``model`` is the timing model's name (default serial): cached
    summaries are schedule-dependent, so distinct models never alias.
    Slice index is deliberately *absent*: that is the whole point.
    """
    return (
        kind, impl, spec, geom, dtype.name, image, config,
        resolve_model(model).name,
    )


def plan_key(plan, geom: Hashable, config: ChipConfig) -> ProgramKey:
    """Cache key of one tile program, derived from an
    :class:`~repro.plan.planner.ExecutionPlan`.

    Produces *exactly* the tuple :func:`program_key` would for the same
    lowering -- plans and ad-hoc drivers share one key space, so a plan
    lowered through :func:`repro.plan.planner.lower` hits entries a
    pre-refactor driver populated and vice versa.  Duck-typed (reads
    ``kind``/``describe``/``spec``/``dtype``/``image``/``model``
    attributes) so this module never imports :mod:`repro.plan`.  A
    plan's ``model`` is already a resolved model *name* (possibly of a
    custom :class:`~repro.sim.scheduler.ExecutionModel` instance not in
    the registry), so it is used verbatim rather than re-resolved.
    """
    return (
        plan.kind, plan.describe, plan.spec, geom, plan.dtype,
        plan.image, config, plan.model,
    )


@dataclass
class CacheStats:
    """Hit/miss counters, exposed for tests and benchmarks.

    ``summary_fallbacks`` counts :meth:`ProgramCache.summary` calls that
    found no live entry for their ``(key, program)`` pair -- the entry
    was evicted (or the key re-built to a different program) between
    ``get_or_build`` and ``summary``.  Each fallback re-inserts the
    caller's program so subsequent summaries memoize; a growing counter
    under a steady workload is the signature of a too-small ``maxsize``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    summary_fallbacks: int = 0
    #: :meth:`ProgramCache.compiled` calls served from a live entry's
    #: memoized :class:`~repro.sim.compile.CompiledKernel`.  Distinct
    #: from ``hits`` (program lookups) and from summary memoization:
    #: a JIT run that re-lowers nothing can still be a ``jit_miss`` the
    #: first time each program is compiled.
    jit_hits: int = 0
    #: :meth:`ProgramCache.compiled` calls that had to build the kernel.
    jit_misses: int = 0
    #: Kernel builds whose program was only *partially* compilable --
    #: the built kernel carries interpreter-fallback steps
    #: (``kernel.stats.fallbacks > 0``).  Counted once per build.
    jit_fallbacks: int = 0
    #: Entries dropped via :meth:`ProgramCache.invalidate` -- the
    #: recovery hook for ``cached-to-fresh`` degradation events (see
    #: :class:`repro.sim.faults.ResilienceReport`): after a resilient
    #: run reports a summary mismatch, invalidating the key forces the
    #: next driver pass to re-lower instead of re-serving the suspect
    #: entry.
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _Entry:
    __slots__ = ("program", "summaries", "kernel")

    def __init__(self, program: Program) -> None:
        self.program = program
        #: Memoized run summaries keyed by ``(model_name, collect_trace)``
        #: -- schedules differ across timing models, so summaries are
        #: memoized per model and never cross-contaminate.
        self.summaries: dict[tuple[str, bool], RunResult] = {}
        #: Memoized :class:`~repro.sim.compile.CompiledKernel` for this
        #: program (``None`` until the first ``execute="jit"`` run).
        #: One kernel serves every relocated clone -- relocation deltas
        #: are derived per call from the clone's anchored global-memory
        #: operands -- so, like summaries, the kernel is keyed only by
        #: the slice-independent :func:`program_key`.
        self.kernel = None


class ProgramCache:
    """LRU cache of lowered tile programs and their run summaries.

    One module-level instance (:data:`PROGRAM_CACHE`) is shared by the
    operator drivers; tests can construct private instances or
    :meth:`clear` the shared one.  The cache is keyed by
    :func:`program_key`, so distinct chip configurations (including cost
    models) never alias.

    All public methods are atomic under one internal
    :class:`threading.RLock` (see the module docstring): the cache may
    be hammered from many threads without losing entries, kernels or
    stat counts.  Build callbacks execute while the lock is held, so a
    key is lowered/compiled at most once no matter how many threads
    race on it.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: OrderedDict[ProgramKey, _Entry] = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: ProgramKey) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def invalidate(self, key: ProgramKey) -> bool:
        """Drop ``key``'s entry (program, memoized summaries **and**
        the memoized compiled kernel).

        Returns whether an entry was actually removed.  This is the
        recovery hook paired with the resilient dispatcher's
        ``cached-to-fresh`` degradation: the degraded run already
        recovered by re-accounting freshly, and invalidating the key
        ensures subsequent runs rebuild rather than re-serve the entry
        that mismatched.  Counted in :attr:`CacheStats.invalidations`.
        """
        with self._lock:
            if self._entries.pop(key, None) is None:
                return False
            self.stats.invalidations += 1
            return True

    def get_or_build(
        self, key: ProgramKey, build: Callable[[], Program]
    ) -> Program:
        """The cached program for ``key``, lowering it on first miss.

        Atomic: two threads racing on a cold key serialize on the
        cache lock, the loser observing the winner's entry as a hit.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry.program
            self.stats.misses += 1
            program = build()
            self._insert(key, _Entry(program))
            return program

    def _insert(self, key: ProgramKey, entry: _Entry) -> None:
        """Install ``entry`` as most-recently-used, evicting LRU overflow.

        Callers hold the cache lock; taking it again is free (RLock).
        """
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def summary(
        self,
        key: ProgramKey,
        program: Program,
        config: ChipConfig,
        collect_trace: bool = True,
        model: "str | ExecutionModel | None" = None,
    ) -> RunResult:
        """The memoized execution summary of ``program`` under ``model``.

        Computed statically (the cost model is data-independent) and
        shared by every relocated clone: ``cycles`` equals what numeric
        execution would report, and ``trace`` is the full
        per-instruction timed trace.  With ``collect_trace=False`` an
        empty-trace variant is returned (and separately memoized) so
        callers that asked for no trace do not receive one.  Summaries
        are memoized per ``(model, collect_trace)``; callers that also
        fold the model into :func:`program_key` get fully disjoint
        entries per model.

        If the entry was evicted -- or the key now maps to a *different*
        build of the program -- between :meth:`get_or_build` and this
        call, the caller's program is re-inserted (counted in
        :attr:`CacheStats.summary_fallbacks`) so the summary still
        memoizes instead of silently recomputing once per slice.
        """
        m = resolve_model(model)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.program is not program:
                # Evicted or aliased under this key since get_or_build.
                # Re-adopt the caller's program: without this, a small
                # cache degraded into one fresh _summarize per summary()
                # call -- a silent per-slice recompute storm.
                self.stats.summary_fallbacks += 1
                entry = _Entry(program)
                self._insert(key, entry)
            memo = (m.name, collect_trace)
            cached = entry.summaries.get(memo)
            if cached is None:
                if m.name == "serial":
                    cached = _summarize(program, config, collect_trace)
                else:
                    cached = summarize(
                        program, config, model=m, collect_trace=collect_trace
                    )
                entry.summaries[memo] = cached
            return cached

    def compiled(
        self, key: ProgramKey, program: Program, config: ChipConfig
    ):
        """The memoized :class:`~repro.sim.compile.CompiledKernel` of
        ``program``, compiling on first use.

        Shared by every relocated clone, exactly like :meth:`summary`
        (and with the same eviction/alias re-adoption fallback).  Hits
        and misses are counted separately from summary traffic in
        :attr:`CacheStats.jit_hits` / :attr:`CacheStats.jit_misses`;
        builds whose kernel needs interpreter fallbacks additionally
        bump :attr:`CacheStats.jit_fallbacks`.

        Atomic: the re-adoption, the compile and the memo write happen
        under the cache lock, so a concurrent eviction can never drop a
        kernel between this method handing it out and the caller using
        it, and a kernel is compiled at most once per live entry.
        """
        from .compile import compile_program

        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.program is not program:
                self.stats.summary_fallbacks += 1
                entry = _Entry(program)
                self._insert(key, entry)
            if entry.kernel is None:
                self.stats.jit_misses += 1
                entry.kernel = compile_program(program, config)
                if entry.kernel.stats.fallbacks:
                    self.stats.jit_fallbacks += 1
            else:
                self.stats.jit_hits += 1
            return entry.kernel


def _summarize(
    program: Program, config: ChipConfig, collect_trace: bool
) -> RunResult:
    """Serial-model summary (module-level so tests can intercept it)."""
    return summarize(
        program, config, model="serial", collect_trace=collect_trace
    )


#: The process-wide cache the operator drivers use by default.
PROGRAM_CACHE = ProgramCache()
