"""Deterministic result fingerprinting for silent-data-corruption checks.

The serving fleet (:mod:`repro.serve.integrity`) needs a cheap,
bit-exact digest of a pooling result that two independent processes can
compute and compare: the worker fingerprints its
:class:`~repro.ops.base.PoolRunResult` right after execution, and the
service re-fingerprints the unpickled payload on arrival.  Any
single-bit difference in the output tensor, the argmax mask, or the
cycle count changes the digest, so cross-process payload corruption is
caught without shipping a second copy of the data.

The digest is a CRC-32 chained over a small, explicitly versioned
encoding:

* a format tag (``FINGERPRINT_VERSION``) so future encodings cannot
  silently collide with old goldens;
* for each array slot (output, then mask): a presence byte, then the
  dtype string, the shape, and the raw C-contiguous bytes;
* the cycle count rendered as a decimal string (cycles are Python ints
  and may exceed 64 bits in pathological timing models).

CRC-32 is not cryptographic — the threat model is *accidental*
corruption (flipped bits in pickled payloads, a core writing wrong
bytes), not an adversarial worker.  For that model a 32-bit checksum of
the exact bytes is ample, fast, and available without dependencies.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "FINGERPRINT_VERSION",
    "fingerprint_arrays",
    "fingerprint_result",
]

#: Bump whenever the encoding below changes; keeps stored golden
#: fingerprints from matching digests produced under a different scheme.
FINGERPRINT_VERSION = 1


def _feed_array(crc: int, tag: bytes, arr: np.ndarray | None) -> int:
    """Chain one (possibly absent) array into the running CRC."""
    crc = zlib.crc32(tag, crc)
    if arr is None:
        return zlib.crc32(b"\x00", crc)
    crc = zlib.crc32(b"\x01", crc)
    crc = zlib.crc32(str(arr.dtype).encode("ascii"), crc)
    crc = zlib.crc32(repr(tuple(arr.shape)).encode("ascii"), crc)
    return zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)


def fingerprint_arrays(
    output: np.ndarray | None,
    mask: np.ndarray | None,
    cycles: int,
) -> int:
    """CRC-32 digest over a result triple, sensitive to every bit.

    ``output``/``mask`` may be ``None`` (cycles-only execution, or a
    forward pass run without ``with_mask``); absence is encoded
    distinctly from an empty array so the two cannot collide.
    """
    crc = zlib.crc32(b"repro-fp/%d" % FINGERPRINT_VERSION)
    crc = _feed_array(crc, b"output", output)
    crc = _feed_array(crc, b"mask", mask)
    return zlib.crc32(str(int(cycles)).encode("ascii"), crc)


def fingerprint_result(result) -> int:
    """Fingerprint a :class:`~repro.ops.base.PoolRunResult` (or any
    object exposing ``output``, ``mask`` and ``cycles``)."""
    return fingerprint_arrays(result.output, result.mask, result.cycles)
