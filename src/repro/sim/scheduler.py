"""Pluggable timing models: serial and pipelined cycle accounting.

The simulator's original accounting was *issue-serial*: one instruction
at a time, chip cycles = the sum of instruction costs.  The real
DaVinci kernels instead overlap MTE loads with Vector/SCU compute via
double-buffered (ping-pong) UB tiles -- EXPERIMENTS.md records the
resulting gap as residual calibration error.  This module makes the
timing model a first-class, *pluggable* subsystem:

* :class:`ExecutionModel` -- the interface every layer (``Program``,
  ``AICore``, ``Chip``, ``ProgramCache``, ``repro.ops``, ``repro.bench``,
  ``repro.validate``) consumes.
* :class:`SerialModel` -- reproduces the historical counts
  **bit-identically** and remains the default, so every snapshot,
  figure export and cached summary is unchanged.
* :class:`PipelinedModel` -- a scoreboard scheduler: per-unit in-order
  issue timelines (MTE / Vector / SCU / Cube / scalar) with cross-unit
  overlap gated by read-after-write, write-after-read and
  write-after-write hazards on the operand regions that
  :meth:`repro.isa.instruction.Instruction.reads` /
  :meth:`~repro.isa.instruction.Instruction.writes` report.

Both models are *data-independent* (like the cost model itself), so a
schedule is a pure function of the instruction stream and can be
memoized by the program cache and shared across relocated clones.

Invariant (held by construction, checked by the fuzz harness): the
pipelined makespan never exceeds the serial one.  Every issue-time
constraint -- the unit's previous retire, or a hazard partner's
retire -- is the retire time of an *earlier* instruction, which by
induction is at most that instruction's serial prefix sum; hence
``retire[i] <= sum(cycles[0..i])`` for every ``i``.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from ..config import CostModel
from ..errors import SimulationError
from .trace import Trace, TraceRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..isa.program import Program

#: Functional units with their own in-order issue timeline.
UNITS = ("mte", "vector", "scu", "cube", "scalar")


@dataclass(frozen=True)
class InstructionTiming:
    """When one instruction occupies its unit: ``[issue, retire)``."""

    index: int
    unit: str
    issue: int
    retire: int

    @property
    def cycles(self) -> int:
        return self.retire - self.issue


@dataclass(frozen=True)
class Schedule:
    """A complete timing assignment for one program.

    ``makespan`` is the program's wall-clock cycle count under the
    model; ``unit_busy`` maps each unit to its total busy cycles
    (model-independent -- overlap moves work in time, it does not change
    how long each unit is occupied).
    """

    makespan: int
    timings: tuple[InstructionTiming, ...]
    unit_busy: dict[str, int]

    def occupancy(self) -> dict[str, float]:
        """Fraction of the makespan each unit spends busy."""
        if self.makespan <= 0:
            return {u: 0.0 for u in self.unit_busy}
        return {
            u: busy / self.makespan for u, busy in self.unit_busy.items()
        }


class ExecutionModel(ABC):
    """How a program's instruction stream maps to time.

    Implementations must be stateless (safe to share and to embed in
    cache keys by :attr:`name`).  ``program_cycles`` defaults to the
    schedule's makespan; :class:`SerialModel` overrides it with the
    closed-form sum so the hot cycles-only path never materialises
    timings.
    """

    #: Stable identifier -- CLI value, cache-key component, export field.
    name: ClassVar[str]

    @abstractmethod
    def schedule(self, program: "Program", cost: CostModel) -> Schedule:
        """Assign issue/retire times to every instruction."""

    def program_cycles(self, program: "Program", cost: CostModel) -> int:
        """The program's makespan in cycles under this model."""
        return self.schedule(program, cost).makespan

    def unit_cycles(
        self, program: "Program", cost: CostModel
    ) -> dict[str, int]:
        """Busy cycles per functional unit (model-independent)."""
        out: dict[str, int] = {}
        for i in program.instructions:
            out[i.unit] = out.get(i.unit, 0) + i.cycles(cost)
        if program.scalar_loop_trips:
            out["scalar"] = (
                out.get("scalar", 0)
                + program.scalar_loop_trips * cost.loop_cycles
            )
        return out

    def trace(self, program: "Program", cost: CostModel) -> Trace:
        """The timed trace the program would record under this model.

        Record order is program order; ``issue_at``/``retire_at`` carry
        the schedule.  Data-independent, so one trace stands in for
        every relocated clone of a tile program.
        """
        sched = self.schedule(program, cost)
        return Trace(
            [
                TraceRecord(
                    opcode=i.opcode,
                    unit=i.unit,
                    cycles=t.cycles,
                    repeat=int(getattr(i, "repeat", 1)),
                    lane_utilization=i.lane_utilization(),
                    issue_at=t.issue,
                    retire_at=t.retire,
                )
                for i, t in zip(program.instructions, sched.timings)
            ]
        )


class SerialModel(ExecutionModel):
    """Issue-serial accounting: the historical (and default) model.

    One instruction at a time, no overlap; program cycles are the plain
    sum of instruction costs plus the scalar-loop tax.  Reproduces the
    seed simulator's counts bit-identically.
    """

    name: ClassVar[str] = "serial"

    def program_cycles(self, program: "Program", cost: CostModel) -> int:
        total = sum(i.cycles(cost) for i in program.instructions)
        return total + program.scalar_loop_trips * cost.loop_cycles

    def schedule(self, program: "Program", cost: CostModel) -> Schedule:
        timings: list[InstructionTiming] = []
        t = 0
        for idx, instr in enumerate(program.instructions):
            c = instr.cycles(cost)
            timings.append(InstructionTiming(idx, instr.unit, t, t + c))
            t += c
        makespan = t + program.scalar_loop_trips * cost.loop_cycles
        return Schedule(
            makespan=makespan,
            timings=tuple(timings),
            unit_busy=self.unit_cycles(program, cost),
        )


class _HazardLog:
    """Per-buffer interval log: ``(retire, start, stop)`` ascending by
    retire, queried for the latest retire among overlapping entries."""

    __slots__ = ("entries", "max_retire")

    def __init__(self) -> None:
        self.entries: list[tuple[int, int, int]] = []
        self.max_retire = 0

    def latest_conflict(self, start: int, stop: int, floor: int) -> int:
        """Max retire over entries overlapping ``[start, stop)``, or
        ``floor`` if none exceeds it."""
        if self.max_retire <= floor:
            return floor
        es = self.entries
        for i in range(len(es) - 1, -1, -1):
            r, s, e = es[i]
            if r <= floor:
                break  # sorted ascending: nothing earlier can beat floor
            if s < stop and start < e:
                return r  # first overlap from the top is the max
        return floor

    def record(self, start: int, stop: int, retire: int) -> None:
        ent = (retire, start, stop)
        es = self.entries
        if not es or es[-1][0] <= retire:
            es.append(ent)
        else:  # rare: cross-unit retires are not monotone in issue order
            bisect.insort(es, ent)
        if retire > self.max_retire:
            self.max_retire = retire


class PipelinedModel(ExecutionModel):
    """Scoreboard scheduler with per-unit in-order issue.

    Each functional unit is a serial timeline (instructions of one unit
    issue in program order, one at a time -- the hardware queues are
    in-order).  Instructions on *different* units overlap freely unless
    a data hazard orders them:

    * **RAW** -- a read must wait for every earlier write overlapping
      its region to retire (the consumer of a ping-pong tile waits for
      the MTE load filling it);
    * **WAW** -- a write waits for earlier overlapping writes;
    * **WAR** -- a write waits for earlier overlapping *reads* (the MTE
      may not refill a tile the Vector unit is still reading -- exactly
      the constraint double-buffering exists to relax).

    Regions come from :meth:`Instruction.reads` / ``writes`` and are
    conservative (strided operands report their full reach), which can
    only serialise, never reorder incorrectly.  ``scalar_loop_trips``
    occupy the scalar timeline after its last instruction.

    By construction the makespan never exceeds :class:`SerialModel`'s:
    every constraint is an earlier instruction's retire time, which is
    bounded by its serial prefix sum.
    """

    name: ClassVar[str] = "pipelined"

    def schedule(self, program: "Program", cost: CostModel) -> Schedule:
        unit_free: dict[str, int] = {}
        write_logs: dict[str, _HazardLog] = {}
        read_logs: dict[str, _HazardLog] = {}
        timings: list[InstructionTiming] = []
        makespan = 0
        for idx, instr in enumerate(program.instructions):
            c = instr.cycles(cost)
            unit = instr.unit
            ready = unit_free.get(unit, 0)
            reads = instr.reads()
            writes = instr.writes()
            for r in reads:  # RAW
                log = write_logs.get(r.buffer)
                if log is not None:
                    ready = log.latest_conflict(r.start, r.stop, ready)
            for w in writes:  # WAW, then WAR
                log = write_logs.get(w.buffer)
                if log is not None:
                    ready = log.latest_conflict(w.start, w.stop, ready)
                log = read_logs.get(w.buffer)
                if log is not None:
                    ready = log.latest_conflict(w.start, w.stop, ready)
            retire = ready + c
            unit_free[unit] = retire
            for w in writes:
                write_logs.setdefault(w.buffer, _HazardLog()).record(
                    w.start, w.stop, retire
                )
            for r in reads:
                read_logs.setdefault(r.buffer, _HazardLog()).record(
                    r.start, r.stop, retire
                )
            timings.append(InstructionTiming(idx, unit, ready, retire))
            if retire > makespan:
                makespan = retire
        if program.scalar_loop_trips:
            scalar_end = (
                unit_free.get("scalar", 0)
                + program.scalar_loop_trips * cost.loop_cycles
            )
            makespan = max(makespan, scalar_end)
        return Schedule(
            makespan=makespan,
            timings=tuple(timings),
            unit_busy=self.unit_cycles(program, cost),
        )


#: Shared stateless instances.
SERIAL = SerialModel()
PIPELINED = PipelinedModel()

MODELS: dict[str, ExecutionModel] = {
    SERIAL.name: SERIAL,
    PIPELINED.name: PIPELINED,
}


def resolve_model(
    model: "str | ExecutionModel | None",
) -> ExecutionModel:
    """Normalise a model spec: ``None`` -> the default :data:`SERIAL`,
    a name -> the registry entry, an instance -> itself."""
    if model is None:
        return SERIAL
    if isinstance(model, ExecutionModel):
        return model
    resolved = MODELS.get(model)
    if resolved is None:
        raise SimulationError(
            f"unknown timing model {model!r}; expected one of "
            f"{sorted(MODELS)}"
        )
    return resolved
