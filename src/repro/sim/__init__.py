"""The simulated DaVinci chip.

* :mod:`repro.sim.buffers` -- scratch-pad memories and a bump allocator.
* :mod:`repro.sim.memory`  -- simulated global memory (DDR/HBM/L2).
* :mod:`repro.sim.aicore`  -- one AI Core executing a Program.
* :mod:`repro.sim.chip`    -- the multi-core chip and tile scheduling.
* :mod:`repro.sim.trace`   -- per-instruction execution traces.
* :mod:`repro.sim.scheduler` -- pluggable timing models (serial/pipelined).
* :mod:`repro.sim.compile` -- the NumPy JIT: lowered programs fused
  into batched, relocatable kernels (``execute="jit"``).
* :mod:`repro.sim.progcache` -- compiled-program cache + relocation.
* :mod:`repro.sim.faults`   -- deterministic fault injection + recovery
  vocabulary (fault plans, retry policy, resilience reports).
* :mod:`repro.sim.sanitizer` -- ISA-level memory sanitizer (shadow
  state, poison-on-reset, bounds/init/region-soundness checks, race
  auditing).
* :mod:`repro.sim.fingerprint` -- deterministic CRC-32 result digests
  for cross-process silent-data-corruption detection.
"""

from .buffers import Allocator, ScratchBuffer
from .faults import (
    BitFlip,
    CoverageLedger,
    Crash,
    Deadline,
    DegradationEvent,
    FailureRecord,
    FaultInjector,
    FaultPlan,
    Injection,
    ResilienceReport,
    RetryPolicy,
    Stall,
    apply_silent_flips_to_gm,
    resolve_injector,
)
from .fingerprint import (
    FINGERPRINT_VERSION,
    fingerprint_arrays,
    fingerprint_result,
)
from .memory import GlobalMemory
from .scheduler import (
    MODELS,
    PIPELINED,
    SERIAL,
    ExecutionModel,
    InstructionTiming,
    PipelinedModel,
    Schedule,
    SerialModel,
    resolve_model,
)
from .aicore import AICore, RunResult, summarize
from .chip import Chip, ChipRunResult
from .compile import (
    CompileContext,
    CompiledKernel,
    KernelStats,
    compile_program,
)
from .progcache import (
    PROGRAM_CACHE,
    CacheStats,
    ProgramCache,
    plan_key,
    program_key,
)
from .sanitizer import (
    POISON_VALUE,
    BufferCoverage,
    Sanitizer,
    SanitizerReport,
    SanitizerViolation,
    audit_races,
    resolve_sanitizer,
)
from .trace import Trace, TraceRecord, pooled_lane_utilization

__all__ = [
    "Allocator",
    "ScratchBuffer",
    "GlobalMemory",
    "AICore",
    "RunResult",
    "summarize",
    "Chip",
    "ChipRunResult",
    "ExecutionModel",
    "SerialModel",
    "PipelinedModel",
    "Schedule",
    "InstructionTiming",
    "SERIAL",
    "PIPELINED",
    "MODELS",
    "resolve_model",
    "Trace",
    "TraceRecord",
    "pooled_lane_utilization",
    "PROGRAM_CACHE",
    "CacheStats",
    "ProgramCache",
    "program_key",
    "plan_key",
    "CompileContext",
    "CompiledKernel",
    "KernelStats",
    "compile_program",
    "FaultPlan",
    "FaultInjector",
    "Injection",
    "Stall",
    "Crash",
    "BitFlip",
    "Deadline",
    "RetryPolicy",
    "ResilienceReport",
    "FailureRecord",
    "DegradationEvent",
    "CoverageLedger",
    "apply_silent_flips_to_gm",
    "resolve_injector",
    "FINGERPRINT_VERSION",
    "fingerprint_arrays",
    "fingerprint_result",
    "POISON_VALUE",
    "Sanitizer",
    "SanitizerReport",
    "SanitizerViolation",
    "BufferCoverage",
    "audit_races",
    "resolve_sanitizer",
]
