"""The simulated DaVinci chip.

* :mod:`repro.sim.buffers` -- scratch-pad memories and a bump allocator.
* :mod:`repro.sim.memory`  -- simulated global memory (DDR/HBM/L2).
* :mod:`repro.sim.aicore`  -- one AI Core executing a Program.
* :mod:`repro.sim.chip`    -- the multi-core chip and tile scheduling.
* :mod:`repro.sim.trace`   -- per-instruction execution traces.
* :mod:`repro.sim.progcache` -- compiled-program cache + relocation.
"""

from .buffers import Allocator, ScratchBuffer
from .memory import GlobalMemory
from .aicore import AICore, RunResult
from .chip import Chip, ChipRunResult
from .progcache import PROGRAM_CACHE, CacheStats, ProgramCache, program_key
from .trace import Trace, TraceRecord, pooled_lane_utilization

__all__ = [
    "Allocator",
    "ScratchBuffer",
    "GlobalMemory",
    "AICore",
    "RunResult",
    "Chip",
    "ChipRunResult",
    "Trace",
    "TraceRecord",
    "pooled_lane_utilization",
    "PROGRAM_CACHE",
    "CacheStats",
    "ProgramCache",
    "program_key",
]
