"""Simulated global memory (DDR / HBM / L2).

"From the AI Core's perspective, all shared memories (DDR, HBM, and L2)
are considered global memory" (Section III-A).  Tensors live here as
flat, named fp16 (or other dtype) arrays; kernels address them through
:class:`repro.isa.operand.MemRef` with the tensor name as the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dtypes import DType, dtype_of
from ..errors import SimulationError
from ..isa.operand import MemRef


@dataclass
class GlobalMemory:
    """A name -> flat-array map standing in for DDR/HBM/L2."""

    tensors: dict[str, np.ndarray] = field(default_factory=dict)

    def add(self, name: str, array: np.ndarray) -> MemRef:
        """Register a tensor (any shape); returns a MemRef spanning it.

        The stored array is a flat *copy* so later mutation of the
        caller's array cannot silently change simulated memory.
        """
        if name in self.tensors:
            raise SimulationError(f"tensor {name!r} already in global memory")
        flat = np.ascontiguousarray(array).reshape(-1).copy()
        self.tensors[name] = flat
        return MemRef(name, 0, flat.size, dtype_of(flat))

    def zeros(self, name: str, size: int, dtype: DType) -> MemRef:
        """Allocate a zero-filled output tensor."""
        return self.add(name, np.zeros(size, dtype=dtype.np_dtype))

    def view(self, name: str) -> np.ndarray:
        try:
            return self.tensors[name]
        except KeyError:
            raise SimulationError(
                f"no tensor {name!r} in global memory"
            ) from None

    def read(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """Copy a tensor out, reshaped; for inspecting kernel results."""
        flat = self.view(name)
        expected = int(np.prod(shape))
        if expected != flat.size:
            raise SimulationError(
                f"tensor {name!r} has {flat.size} elements, cannot view as "
                f"{shape}"
            )
        return flat.reshape(shape).copy()

    def __contains__(self, name: str) -> bool:
        return name in self.tensors
