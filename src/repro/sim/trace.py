"""Execution traces.

The paper's analysis hinges on *instruction issue counts* and *vector
mask utilization* (Section V).  A :class:`Trace` records both per
instruction so tests and benchmarks can assert e.g. "the standard
MaxPool issued ``Oh*Ow*Kh`` vmax instructions at 12.5% utilization while
the Im2col version issued ``Kh*Kw`` at 100%".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import SimulationError


@dataclass(frozen=True)
class TraceRecord:
    """One executed instruction.

    ``issue_at``/``retire_at`` carry the timing model's schedule (see
    :mod:`repro.sim.scheduler`): the half-open interval during which the
    instruction occupied its unit.  ``None`` marks a record built
    without a schedule (legacy :meth:`Trace.from_instructions`).
    """

    opcode: str
    unit: str
    cycles: int
    repeat: int
    lane_utilization: float | None
    issue_at: int | None = None
    retire_at: int | None = None


def pooled_lane_utilization(
    records: Iterable[TraceRecord],
) -> float | None:
    """Repeat-weighted mean lane utilization over vector issues.

    The single implementation behind both
    :meth:`Trace.vector_lane_utilization` (one program) and
    :attr:`repro.sim.chip.ChipRunResult.vector_lane_utilization` (pooled
    over every tile).  Records without a lane utilization (DMA, SCU,
    scalar) do not participate; ``None`` means *no vector issues at
    all*, never "unknown".
    """
    num = 0.0
    den = 0
    for r in records:
        if r.lane_utilization is None:
            continue
        num += r.lane_utilization * r.repeat
        den += r.repeat
    return num / den if den else None


@dataclass
class Trace:
    """Accumulated records for one program execution.

    ``collected=False`` marks a trace that was deliberately *not*
    recorded (``collect_trace=False``): an empty record list then means
    "nobody looked", not "the program issued nothing".  Derived
    statistics raise :class:`~repro.errors.SimulationError` on an
    uncollected trace instead of silently reporting an empty program.
    """

    records: list[TraceRecord] = field(default_factory=list)
    #: Whether records were recorded at all.  ``Trace(collected=False)``
    #: is what runs with ``collect_trace=False`` carry.
    collected: bool = True

    @classmethod
    def from_instructions(cls, instructions, cost) -> "Trace":
        """Build the trace a program *would* produce, without executing.

        Every :class:`TraceRecord` field (opcode, unit, cycles, repeat,
        lane utilization) is a static property of the instruction -- the
        simulator's costs are data-independent -- so the trace of a
        program is a pure function of the instruction stream.  The
        cycles-only execution mode and the program cache exploit this:
        one statically-derived trace stands in for every relocated copy
        of a tile program, skipping per-instruction record allocation.
        """
        return cls(
            [
                TraceRecord(
                    opcode=i.opcode,
                    unit=i.unit,
                    cycles=i.cycles(cost),
                    repeat=getattr(i, "repeat", 1),
                    lane_utilization=i.lane_utilization(),
                )
                for i in instructions
            ]
        )

    def add(self, record: TraceRecord) -> None:
        self.records.append(record)

    def issues(self, opcode: str | None = None) -> int:
        """Number of instruction issues, optionally for one opcode."""
        if opcode is None:
            return len(self.records)
        return sum(1 for r in self.records if r.opcode == opcode)

    def issue_counts(self) -> Counter:
        return Counter(r.opcode for r in self.records)

    def cycles_by_unit(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.unit] = out.get(r.unit, 0) + r.cycles
        return out

    def cycles_by_opcode(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.opcode] = out.get(r.opcode, 0) + r.cycles
        return out

    def makespan(self) -> int:
        """Wall-clock cycles spanned by the recorded schedule.

        Requires timed records (built through an
        :class:`repro.sim.scheduler.ExecutionModel`); untimed traces
        raise, as the statistic is not derivable from costs alone.
        """
        self._require_collected()
        self._require_timed()
        return max((r.retire_at for r in self.records), default=0)

    def unit_occupancy(self) -> dict[str, float]:
        """Fraction of the makespan each unit spends busy.

        Under the serial model occupancies sum to (at most) 1.0; under
        the pipelined model the sum exceeding 1.0 measures cross-unit
        overlap -- the quantity double-buffering buys.
        """
        self._require_collected()
        self._require_timed()
        span = self.makespan()
        busy = self.cycles_by_unit()
        if span <= 0:
            return {u: 0.0 for u in busy}
        return {u: c / span for u, c in busy.items()}

    def _require_timed(self) -> None:
        if any(
            r.issue_at is None or r.retire_at is None for r in self.records
        ):
            raise SimulationError(
                "trace records carry no schedule times; build the trace "
                "through an ExecutionModel to derive timing statistics"
            )

    def vector_lane_utilization(self) -> float | None:
        """Repeat-weighted mean utilization over vector issues.

        ``None`` means the program issued no vector instructions.  A
        trace that was never collected raises instead -- asking for
        utilization of records that do not exist is a caller bug
        (re-run with ``collect_trace=True``).
        """
        self._require_collected()
        return pooled_lane_utilization(self.records)

    def _require_collected(self) -> None:
        if not self.collected:
            raise SimulationError(
                "trace was not collected (collect_trace=False); re-run "
                "with collect_trace=True to derive trace statistics"
            )
