"""Pooling (and convolution) operators for the simulated DaVinci core.

The package follows the paper's Section V:

* :mod:`repro.ops.spec`       -- pooling hyper-parameters (Equation 1);
* :mod:`repro.ops.reference`  -- pure-NumPy golden models;
* :mod:`repro.ops.base`       -- tile orchestration shared by every
  implementation (tiling, DMA in/out, multi-core dispatch);
* :mod:`repro.ops.maxpool`    -- MaxPool forward: standard (TVM
  lowering), Im2col (the paper's contribution), expansion, X-Y split;
  each optionally saving the Argmax mask;
* :mod:`repro.ops.avgpool`    -- AvgPool forward, same variants;
* :mod:`repro.ops.backward`   -- Max/AvgPool backward with the standard
  vadd merge or the Col2Im merge;
* :mod:`repro.ops.conv2d`     -- Im2Col -> Cube convolution (the
  instructions' primary purpose);
* :mod:`repro.ops.registry`   -- name -> implementation lookup.
"""

from .spec import PoolSpec
from .base import PoolRunResult, run_forward, run_backward
from .registry import (
    forward_impl,
    backward_impl,
    forward_variants,
    backward_variants,
    bit_exact_variants,
    FORWARD_IMPLS,
    BACKWARD_IMPLS,
    POOL_OPS,
)
from .api import (
    maxpool,
    maxpool_backward,
    avgpool,
    avgpool_backward,
)

__all__ = [
    "PoolSpec",
    "PoolRunResult",
    "run_forward",
    "run_backward",
    "forward_impl",
    "backward_impl",
    "forward_variants",
    "backward_variants",
    "bit_exact_variants",
    "FORWARD_IMPLS",
    "BACKWARD_IMPLS",
    "POOL_OPS",
    "maxpool",
    "maxpool_backward",
    "avgpool",
    "avgpool_backward",
]
