"""Convolution on the Cube Unit via Im2Col -- the instructions' primary
purpose (Sections II-A and III).

Pooling is the paper's contribution; convolution is what ``Im2Col`` and
``Col2Im`` were built for, and implementing it validates the substrate:

* forward: ``Im2Col`` in repeat mode 0 streams the ``OutIn`` row-block
  fractals straight into L0A (iterating ``[c1, (xk, yk)]`` exactly as
  Section III-C describes), the pre-fractalised kernel matrix sits in
  L0B, and one ``mmad`` per (patch-block, output-channel-block)
  accumulates the product in L0C;
* input gradient: the Cube computes ``dOutIn = dY @ W^T`` plane by
  plane and ``Col2Im`` merges the overlapping patches back into the
  input layout -- the original convolution-backward use of Col2Im
  (Section II-B).

Weights are rearranged into the fractal stream on the host, as the real
software stack does at graph-compile time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ASCEND910, ChipConfig
from ..dtypes import FLOAT16, FRACTAL_ROWS, dtype_of
from ..errors import LayoutError
from ..fractal.im2col import col2im_nc1hwc0, im2col_nc1hwc0
from ..isa.cube import Mmad
from ..isa.operand import MemRef
from ..isa.scu import Col2ImStore, Im2ColLoad
from ..plan.planner import dispatch_programs
from ..sim import ChipRunResult, ExecutionModel, GlobalMemory, resolve_model
from ..tik import KernelBuilder
from .spec import PoolSpec


@dataclass
class ConvRunResult:
    output: np.ndarray
    chip: ChipRunResult
    #: Name of the timing model the cycle counts were produced under.
    timing_model: str = "serial"

    @property
    def cycles(self) -> int:
        return self.chip.cycles


def _check_conv_args(x: np.ndarray, weights: np.ndarray) -> None:
    if x.ndim != 5:
        raise LayoutError(f"expected NC1HWC0 input, got {x.shape}")
    if weights.ndim != 4:
        raise LayoutError(
            f"expected (Cout, C, Kh, Kw) weights, got {weights.shape}"
        )
    c0 = FLOAT16.c0
    if x.shape[-1] != c0:
        raise LayoutError(f"C0 must be {c0}")
    if weights.shape[0] % FRACTAL_ROWS != 0:
        raise LayoutError(
            f"Cout must be a multiple of {FRACTAL_ROWS} (got "
            f"{weights.shape[0]}); pad the kernel bank"
        )
    if weights.shape[1] != x.shape[1] * c0:
        raise LayoutError(
            f"weights expect {weights.shape[1]} input channels but the "
            f"input carries {x.shape[1] * c0}"
        )


def conv2d_ref(
    x: np.ndarray, weights: np.ndarray, spec: PoolSpec
) -> np.ndarray:
    """Golden conv: float32 accumulation, one rounding to fp16.

    ``x``: (N, C1, Ih, Iw, C0); ``weights``: (Cout, C1*C0, Kh, Kw).
    Returns (N, Cout/16, Oh, Ow, 16).
    """
    _check_conv_args(x, weights)
    n, c1, ih, iw, c0 = x.shape
    cout = weights.shape[0]
    cols = im2col_nc1hwc0(
        x, spec.kh, spec.kw, spec.sh, spec.sw,
        spec.pt, spec.pb, spec.pl, spec.pr,
    )
    _, _, kh, kw, oh, ow, _ = cols.shape
    # (N, Oh*Ow, C1*Kh*Kw*C0) rows of the OutIn matrix, ordered
    # [c1, kh, kw, c0] to match the Im2Col mode-0 fractal stream.
    rows = cols.transpose(0, 4, 5, 1, 2, 3, 6).reshape(
        n, oh * ow, c1 * kh * kw * c0
    )
    # (C1*Kh*Kw*C0, Cout) columns of OutKer in the same reduction order.
    wmat = (
        weights.reshape(cout, c1, c0, kh, kw)
        .transpose(1, 3, 4, 2, 0)
        .reshape(c1 * kh * kw * c0, cout)
    )
    out = rows.astype(np.float32) @ wmat.astype(np.float32)
    out = out.astype(np.float16)
    # (N, Oh*Ow, Cout) -> (N, Cout1, Oh, Ow, 16)
    return np.ascontiguousarray(
        out.reshape(n, oh, ow, cout // FRACTAL_ROWS, FRACTAL_ROWS)
        .transpose(0, 3, 1, 2, 4)
    )


def weight_fractals(weights: np.ndarray, kh: int, kw: int) -> np.ndarray:
    """Host-side weight rearrangement: ``(Cout, C, Kh, Kw)`` into the
    L0B fractal stream ``(Cout1, K, 16, 16)`` where ``K = C1*Kh*Kw`` and
    fractal ``k`` holds ``(c0_in, cout)``."""
    cout, c, gkh, gkw = weights.shape
    if (gkh, gkw) != (kh, kw):
        raise LayoutError("weight kernel extents disagree with the spec")
    c0 = FLOAT16.c0
    if c % c0 != 0:
        pad = np.zeros((cout, -c % c0, kh, kw), dtype=weights.dtype)
        weights = np.concatenate([weights, pad], axis=1)
        c = weights.shape[1]
    c1 = c // c0
    cout1 = cout // FRACTAL_ROWS
    # (cout1, 16, c1, c0, kh, kw) -> (cout1, c1, kh, kw, c0, 16)
    arr = weights.reshape(cout1, FRACTAL_ROWS, c1, c0, kh, kw)
    arr = arr.transpose(0, 2, 4, 5, 3, 1)
    return np.ascontiguousarray(
        arr.reshape(cout1, c1 * kh * kw, c0, FRACTAL_ROWS)
    )


def conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    spec: PoolSpec,
    config: ChipConfig = ASCEND910,
    collect_trace: bool = True,
    model: "str | ExecutionModel | None" = None,
) -> ConvRunResult:
    """Convolution on the simulated Cube Unit.

    Single-tile implementation: the input slice must fit L1 and the
    reduction depth ``K = C1*Kh*Kw`` must fit one mmad repeat chain
    (255) so the float32 accumulation never round-trips through fp16.
    The (N, Cout1) tiles parallelise across AI Cores.
    """
    _check_conv_args(x, weights)
    dtype = dtype_of(x)
    n, c1, ih, iw, c0 = x.shape
    cout = weights.shape[0]
    cout1 = cout // FRACTAL_ROWS
    params = spec.with_image(ih, iw)
    oh, ow = params.out_hw()
    k_depth = c1 * spec.kh * spec.kw
    if k_depth > 255:
        raise LayoutError(
            f"reduction depth {k_depth} exceeds one mmad repeat chain"
        )
    fr = FRACTAL_ROWS * FRACTAL_ROWS
    wfrac = weight_fractals(weights, spec.kh, spec.kw)

    gm = GlobalMemory()
    gm.add("x", x)
    gm.add("w", wfrac)
    gm.zeros("y", n * cout1 * oh * ow * FRACTAL_ROWS, dtype)

    n_pblocks = params.fractals_per_plane
    programs = []
    for ni in range(n):
        for co in range(cout1):
            b = KernelBuilder(config, dtype, name=f"conv-n{ni}-co{co}")
            in_l1 = b.alloc("L1", c1 * ih * iw * c0, "in")
            b.dma(
                MemRef("x", ni * c1 * ih * iw * c0, c1 * ih * iw * c0, dtype),
                in_l1,
            )
            w_l0b = b.alloc("L0B", k_depth * fr, "w")
            b.dma(MemRef("w", co * k_depth * fr, k_depth * fr, dtype), w_l0b)
            a_l0a = b.alloc("L0A", k_depth * fr, "a")
            c_l0c = b.alloc("L0C", fr, "acc")
            out_ub = b.alloc("UB", n_pblocks * fr, "out")
            for pblk in range(n_pblocks):
                # Mode-0 Im2Col: one instruction streams the whole
                # [c1, (xk, yk)] fractal chain for these 16 patches.
                b.program.emit(
                    Im2ColLoad(
                        src=in_l1,
                        dst=a_l0a,
                        params=params,
                        c1=0,
                        xk=0,
                        yk=0,
                        first_patch=pblk * FRACTAL_ROWS,
                        repeat=k_depth,
                        repeat_mode=0,
                    )
                )
                b.program.emit(
                    Mmad(a=a_l0a, b=w_l0b, c=c_l0c, repeat=k_depth, init=True)
                )
                b.dma(c_l0c, out_ub.slice(pblk * fr, fr), channel="local")
            b.program.scalar_loop_trips += n_pblocks * 3
            valid = oh * ow * FRACTAL_ROWS
            b.dma(
                out_ub.slice(0, valid),
                MemRef("y", (ni * cout1 + co) * valid, valid, dtype),
            )
            programs.append(b.program)

    result = dispatch_programs(
        config, dtype, programs, gm, collect_trace=collect_trace,
        model=model,
    )
    y = gm.read("y", (n, cout1, oh, ow, FRACTAL_ROWS))
    return ConvRunResult(
        output=y, chip=result, timing_model=resolve_model(model).name
    )


def conv2d_input_grad_ref(
    dy: np.ndarray, weights: np.ndarray, spec: PoolSpec, ih: int, iw: int
) -> np.ndarray:
    """Golden input gradient: ``col2im(dY @ W^T)``."""
    n, cout1, oh, ow, _ = dy.shape
    cout = cout1 * FRACTAL_ROWS
    c = weights.shape[1]
    c0 = FLOAT16.c0
    c1 = -(-c // c0)
    dmat = dy.transpose(0, 2, 3, 1, 4).reshape(n, oh * ow, cout)
    wmat = (
        np.concatenate(
            [weights, np.zeros((cout, c1 * c0 - c, spec.kh, spec.kw),
                               dtype=weights.dtype)], axis=1
        )
        .reshape(cout, c1, c0, spec.kh, spec.kw)
        .transpose(1, 3, 4, 2, 0)
        .reshape(c1 * spec.kh * spec.kw * c0, cout)
    )
    dcols = (
        dmat.astype(np.float32) @ wmat.astype(np.float32).T
    ).astype(np.float16)
    cols = (
        dcols.reshape(n, oh, ow, c1, spec.kh, spec.kw, c0)
        .transpose(0, 3, 4, 5, 1, 2, 6)
    )
    return col2im_nc1hwc0(
        np.ascontiguousarray(cols), ih, iw, spec.sh, spec.sw,
        spec.pt, spec.pb, spec.pl, spec.pr,
    )


def conv2d_input_grad(
    dy: np.ndarray,
    weights: np.ndarray,
    spec: PoolSpec,
    ih: int,
    iw: int,
    config: ChipConfig = ASCEND910,
    collect_trace: bool = True,
    model: "str | ExecutionModel | None" = None,
) -> ConvRunResult:
    """Input gradient of convolution on the simulated chip.

    Per (N, C1) tile: the Cube computes each ``(kh, kw)`` gradient plane
    as ``dY @ W^T`` fractal products, then ``Col2Im`` merges the planes
    into the input layout -- Col2Im's original role (Section II-B).
    """
    n, cout1, oh, ow, _ = dy.shape
    dtype = dtype_of(dy)
    c0 = FLOAT16.c0
    c = weights.shape[1]
    c1_total = -(-c // c0)
    params = spec.with_image(ih, iw)
    if params.out_hw() != (oh, ow):
        raise LayoutError("gradient grid does not match the geometry")
    fr = FRACTAL_ROWS * FRACTAL_ROWS
    # W^T fractal stream: (c1, kh, kw, cout1) fractals of (cout, c0_in).
    wfrac = weight_fractals(weights, spec.kh, spec.kw)  # (cout1, K, c0, 16)
    k_depth = c1_total * spec.kh * spec.kw
    wt = wfrac.transpose(1, 0, 3, 2)  # (K, cout1, 16cout, c0in)
    gm = GlobalMemory()
    gm.add("dy", dy)
    gm.add("wt", np.ascontiguousarray(wt))
    gm.zeros("dx", n * c1_total * ih * iw * c0, dtype)

    n_pblocks = params.fractals_per_plane
    plane_elems = params.plane_rows() * c0
    max_rep = config.max_repeat
    programs = []
    for ni in range(n):
        for ci in range(c1_total):
            b = KernelBuilder(config, dtype, name=f"dconv-n{ni}-c{ci}")
            dy_l0a = b.alloc("L0A", n_pblocks * fr * cout1, "dy")
            # dY row blocks: (pblk, cout1) fractals of (patch, cout).
            for pblk in range(n_pblocks):
                for co in range(cout1):
                    rows = min(FRACTAL_ROWS, oh * ow - pblk * FRACTAL_ROWS)
                    src = MemRef(
                        "dy",
                        ((ni * cout1 + co) * oh * ow + pblk * FRACTAL_ROWS)
                        * FRACTAL_ROWS,
                        rows * FRACTAL_ROWS,
                        dtype,
                    )
                    b.dma(
                        src,
                        dy_l0a.slice(
                            (pblk * cout1 + co) * fr, rows * FRACTAL_ROWS
                        ),
                    )
            b.program.scalar_loop_trips += n_pblocks * cout1
            # One plane buffer, streamed through Col2Im per (kh, kw):
            # the UB never holds more than a single gradient plane.
            plane_ub = b.alloc("UB", plane_elems, "plane")
            wt_l0b = b.alloc("L0B", spec.kh * spec.kw * cout1 * fr, "wt")
            for kk in range(spec.kh * spec.kw):
                kidx = ci * spec.kh * spec.kw + kk
                b.dma(
                    MemRef("wt", kidx * cout1 * fr, cout1 * fr, dtype),
                    wt_l0b.slice(kk * cout1 * fr, cout1 * fr),
                )
            c_l0c = b.alloc("L0C", fr, "acc")
            img_ub = b.alloc("UB", ih * iw * c0, "dx")
            b.dup(img_ub, 0.0)
            for kk in range(spec.kh * spec.kw):
                xk, yk = divmod(kk, spec.kw)
                for pblk in range(n_pblocks):
                    b.program.emit(
                        Mmad(
                            a=dy_l0a.slice(pblk * cout1 * fr, cout1 * fr),
                            b=wt_l0b.slice(kk * cout1 * fr, cout1 * fr),
                            c=c_l0c,
                            repeat=cout1,
                            init=True,
                        )
                    )
                    b.dma(
                        c_l0c,
                        plane_ub.slice(pblk * fr, fr),
                        channel="local",
                    )
                done = 0
                while done < n_pblocks:
                    rep = min(max_rep, n_pblocks - done)
                    b.program.emit(Col2ImStore(
                        src=plane_ub.slice(done * fr, rep * fr),
                        dst=img_ub,
                        params=params,
                        c1=0,
                        xk=xk,
                        yk=yk,
                        first_patch=done * FRACTAL_ROWS,
                        repeat=rep,
                    ))
                    done += rep
            b.program.scalar_loop_trips += spec.kh * spec.kw * (
                n_pblocks * 2 + 1
            )
            b.dma(
                img_ub,
                MemRef(
                    "dx", (ni * c1_total + ci) * ih * iw * c0,
                    ih * iw * c0, dtype,
                ),
                accumulate=True,
            )
            programs.append(b.program)

    result = dispatch_programs(
        config, dtype, programs, gm, collect_trace=collect_trace,
        model=model,
    )
    dx = gm.read("dx", (n, c1_total, ih, iw, c0))
    return ConvRunResult(
        output=dx, chip=result, timing_model=resolve_model(model).name
    )
