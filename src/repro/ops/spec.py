"""Pooling hyper-parameters.

A :class:`PoolSpec` is the image-independent part of the geometry:
kernel, stride and padding.  Combining it with an image size yields the
:class:`~repro.isa.scu.Im2ColParams` every instruction consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LayoutError
from ..isa.scu import Im2ColParams


@dataclass(frozen=True)
class PoolSpec:
    """Kernel/stride/padding of one pooling layer."""

    kh: int
    kw: int
    sh: int
    sw: int
    pt: int = 0
    pb: int = 0
    pl: int = 0
    pr: int = 0

    def __post_init__(self) -> None:
        if min(self.kh, self.kw, self.sh, self.sw) <= 0:
            raise LayoutError("kernel and stride extents must be positive")
        if min(self.pt, self.pb, self.pl, self.pr) < 0:
            raise LayoutError("padding must be non-negative")
        # Zero-padding wider than the kernel would create patches made
        # entirely of padding; the hardware geometry forbids it.
        if max(self.pt, self.pb) >= self.kh or max(self.pl, self.pr) >= self.kw:
            raise LayoutError("padding must be smaller than the kernel")

    @classmethod
    def square(cls, kernel: int, stride: int, pad: int = 0) -> "PoolSpec":
        """The common symmetric case, e.g. kernel (3,3) stride (2,2)."""
        return cls(
            kh=kernel, kw=kernel, sh=stride, sw=stride,
            pt=pad, pb=pad, pl=pad, pr=pad,
        )

    @property
    def window(self) -> int:
        return self.kh * self.kw

    @property
    def has_padding(self) -> bool:
        return (self.pt, self.pb, self.pl, self.pr) != (0, 0, 0, 0)

    @property
    def overlapping(self) -> bool:
        """Whether patches overlap (stride smaller than kernel) -- the
        condition under which Im2col duplicates data and Col2im sums."""
        return self.sh < self.kh or self.sw < self.kw

    def with_image(self, ih: int, iw: int) -> Im2ColParams:
        """Full instruction geometry for an ``(ih, iw)`` image."""
        return Im2ColParams(
            ih=ih, iw=iw,
            kh=self.kh, kw=self.kw,
            sh=self.sh, sw=self.sw,
            pt=self.pt, pb=self.pb, pl=self.pl, pr=self.pr,
        )

    def out_hw(self, ih: int, iw: int) -> tuple[int, int]:
        """Output grid size (Equation 1)."""
        return self.with_image(ih, iw).out_hw()
