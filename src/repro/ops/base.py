"""Shared orchestration for pooling implementations.

Every implementation follows the same envelope (Section V-A):

1. the workload is tiled on ``(N, C1)`` (and further row-chunked when a
   tile exceeds the Unified Buffer),
2. each tile's program loads its inputs from global memory, computes on
   one AI Core, and stores its outputs back,
3. tiles run in parallel across the chip's AI Cores.

Implementations only provide the *compute* part of a tile
(:meth:`PoolingImpl.build_tile`) and a footprint model used by the
tiling planner.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..config import ASCEND910, ChipConfig
from ..dtypes import DType, dtype_of
from ..errors import LayoutError
from ..expr import Axis, TensorDecl
from ..isa.operand import MemRef
from ..isa.scu import Im2ColParams
from ..plan import TileGeom
from ..plan.planner import ExecutionPlan, dispatch, lower, resolve_plan
from ..sim import (
    PROGRAM_CACHE,
    ChipRunResult,
    ExecutionModel,
    FaultInjector,
    FaultPlan,
    ProgramCache,
    ResilienceReport,
    RetryPolicy,
    SanitizerReport,
)
from ..tik import KernelBuilder
from .spec import PoolSpec


@dataclass
class TileContext:
    """Everything a tile program needs to be built."""

    builder: KernelBuilder
    geom: TileGeom
    spec: PoolSpec
    dtype: DType
    #: Forward: the tile's input rows in global memory.
    gm_in: MemRef | None = None
    #: Forward: the tile's output rows in global memory.
    gm_out: MemRef | None = None
    #: (kh*kw) per-plane slices of the global mask tensor, row-major.
    gm_mask_planes: list[MemRef] | None = None
    #: Backward: the tile's incoming-gradient rows.
    gm_grad: MemRef | None = None
    #: Backward: the tile's input-gradient rows (accumulate target).
    gm_dx: MemRef | None = None

    @property
    def params(self) -> Im2ColParams:
        return self.geom.params

    @property
    def c0(self) -> int:
        return self.dtype.c0


class PoolingImpl(abc.ABC):
    """One pooling implementation (forward or backward)."""

    #: Short name used by the registry and the benches.
    name: str = "base"
    #: "max" or "avg".
    op: str = "max"
    #: Forward only: also produce the Argmax mask (Figure 7b).
    with_mask: bool = False
    #: Class-level capability flag: whether this implementation can save
    #: the Argmax mask at all.  The registry's introspection helpers
    #: (:func:`repro.ops.registry.forward_variants`) read it to
    #: enumerate every legal variant without try/except probing.
    supports_mask: bool = True

    def __init__(self, op: str = "max", with_mask: bool = False) -> None:
        if op not in ("max", "avg"):
            raise LayoutError(f"unknown pooling op {op!r}")
        if with_mask and not self.supports_mask:
            raise LayoutError(
                f"the {self.name} variant does not save a mask"
            )
        if with_mask and op != "max":
            raise LayoutError("the Argmax mask only exists for MaxPool")
        self.op = op
        self.with_mask = with_mask

    @property
    def reduce_op(self) -> str:
        return "max" if self.op == "max" else "sum"

    def pad_value(self, dtype: DType) -> float:
        """What padding positions contribute: the reduction identity."""
        return dtype.min_value if self.op == "max" else 0.0

    @abc.abstractmethod
    def footprint(self, params: Im2ColParams, dtype: DType) -> dict[str, int]:
        """Scratch-pad bytes a tile of this geometry requires."""

    @abc.abstractmethod
    def build_tile(self, ctx: TileContext) -> None:
        """Emit the tile's compute into ``ctx.builder``."""

    def describe(self) -> str:
        mask = "+mask" if self.with_mask else ""
        return f"{self.op}pool-{self.name}{mask}"


@dataclass
class PoolRunResult:
    """Simulated execution outcome of one operator invocation."""

    #: Forward: pooled output ``(N, C1, Oh, Ow, C0)``.
    #: Backward: input gradient ``(N, C1, Ih, Iw, C0)``.
    #: ``None`` under ``execute="cycles"`` (no data is computed).
    output: np.ndarray | None
    #: Forward with ``with_mask``: ``(N, C1, Kh, Kw, Oh, Ow, C0)``.
    mask: np.ndarray | None
    chip: ChipRunResult
    tiles: tuple[TileGeom, ...]
    #: Name of the timing model the cycle counts were produced under
    #: ("serial"/"pipelined"); numeric outputs are model-independent.
    timing_model: str = "serial"
    #: The :class:`~repro.plan.planner.ExecutionPlan` this result was
    #: dispatched from (``None`` for results constructed outside the
    #: plan pipeline).  Plans are plain frozen dataclasses, so they
    #: survive :meth:`detach` and pickling -- the serving layer ships
    #: them across the worker boundary with the result.
    plan: ExecutionPlan | None = None

    @property
    def cycles(self) -> int:
        """The chip-level cycle count (the paper's reported metric)."""
        return self.chip.cycles

    @property
    def resilience(self) -> "ResilienceReport | None":
        """What the resilience layer did, or ``None`` when the run used
        the historical fault-free dispatch path."""
        return self.chip.resilience

    @property
    def sanitizer(self) -> "SanitizerReport | None":
        """The memory sanitizer's merged report (``sanitize=True``), or
        ``None`` when the run used the zero-cost default path."""
        return self.chip.sanitizer

    def detach(self) -> "PoolRunResult":
        """A slim copy safe to ship across a process boundary.

        Every field of a :class:`PoolRunResult` pickles, but the
        per-instruction trace payloads inside ``chip.per_tile`` dwarf
        the actual answer -- for a serving system that is dead weight
        on every response.  ``detach()`` drops exactly that (see
        :meth:`repro.sim.chip.ChipRunResult.detach`): outputs, masks,
        cycle counts, per-core breakdowns, tile geometries and the
        resilience/sanitizer reports all survive.  The serving layer
        (:mod:`repro.serve`) detaches results before they cross the
        worker boundary unless the request asked for traces.
        """
        chip = self.chip.detach()
        if chip is self.chip:
            return self
        return PoolRunResult(
            output=self.output,
            mask=self.mask,
            chip=chip,
            tiles=self.tiles,
            timing_model=self.timing_model,
            plan=self.plan,
        )


# ---------------------------------------------------------------------------
# Shared building blocks used by the implementations.
# ---------------------------------------------------------------------------

def pool_axes(params: Im2ColParams, c0: int) -> dict[str, Axis]:
    """Fresh loop axes for one tile's geometry."""
    oh, ow = params.out_hw()
    return {
        "oh": Axis("oh", oh),
        "ow": Axis("ow", ow),
        "c0": Axis("c0", c0),
        "kh": Axis("kh", params.kh),
        "kw": Axis("kw", params.kw),
    }


def load_input_materialized(
    ctx: TileContext, pad_value: float
) -> tuple[TensorDecl, MemRef, Im2ColParams]:
    """Bring the tile input into the UB, materialising any padding.

    Implementations that compute directly on the image layout (standard,
    expansion, X-Y split) cannot pad on the fly the way the ``Im2Col``
    load can; they fill a padded region with the reduction identity and
    deposit the real rows inside it.  Returns the (possibly padded)
    tensor declaration, its UB region, and the *effective* geometry
    (padding folded into the image extents).
    """
    p = ctx.params
    b = ctx.builder
    c0 = ctx.c0
    if ctx.gm_in is None:
        raise LayoutError("tile context has no input tensor")
    if not (p.pt or p.pb or p.pl or p.pr):
        ref = b.alloc("UB", p.ih * p.iw * c0, "in")
        b.dma(ctx.gm_in, ref)
        decl = TensorDecl("in", (p.ih, p.iw, c0), ctx.dtype)
        return decl, ref, p
    ph = p.ih + p.pt + p.pb
    pw = p.iw + p.pl + p.pr
    ref = b.alloc("UB", ph * pw * c0, "in_padded")
    b.dup(ref, pad_value)
    interior = ref.slice((p.pt * pw + p.pl) * c0, (p.ih - 1) * pw * c0 + p.iw * c0)
    b.dma_rows(
        ctx.gm_in,
        interior,
        rows=p.ih,
        src_row_elems=p.iw * c0,
        dst_row_elems=pw * c0,
        copy_elems=p.iw * c0,
    )
    decl = TensorDecl("in", (ph, pw, c0), ctx.dtype)
    eff = Im2ColParams(
        ih=ph, iw=pw, kh=p.kh, kw=p.kw, sh=p.sh, sw=p.sw
    )
    return decl, ref, eff


def materialized_input_bytes(params: Im2ColParams, dtype: DType) -> int:
    """UB bytes of the (possibly padded) materialised input tile."""
    ph = params.ih + params.pt + params.pb
    pw = params.iw + params.pl + params.pr
    return ph * pw * dtype.c0 * dtype.itemsize


def out_tile_bytes(params: Im2ColParams, dtype: DType) -> int:
    """UB bytes of one (Oh, Ow, C0) output tile."""
    oh, ow = params.out_hw()
    return oh * ow * dtype.c0 * dtype.itemsize


def im2col_planes_bytes(params: Im2ColParams, dtype: DType) -> int:
    """UB bytes of the Kh*Kw fractal-padded Im2col planes."""
    return (
        params.kh * params.kw * params.plane_rows() * dtype.c0 * dtype.itemsize
    )


def mask_planes_bytes(params: Im2ColParams, dtype: DType) -> int:
    """UB bytes of the contiguous (unpadded) Argmax-mask planes."""
    oh, ow = params.out_hw()
    return params.kh * params.kw * oh * ow * dtype.c0 * dtype.itemsize


# ---------------------------------------------------------------------------
# Operator drivers.
# ---------------------------------------------------------------------------

def _validate_input(x: np.ndarray, dtype: DType) -> None:
    if x.ndim != 5:
        raise LayoutError(f"expected NC1HWC0 rank-5 input, got {x.shape}")
    if x.shape[-1] != dtype.c0:
        raise LayoutError(
            f"C0 dimension is {x.shape[-1]}, expected {dtype.c0} for "
            f"{dtype.name}"
        )


def _check_execute(execute: str) -> None:
    if execute not in ("numeric", "cycles", "jit"):
        raise LayoutError(
            f"unknown execution mode {execute!r}; expected 'numeric', "
            "'cycles' or 'jit'"
        )


def run_forward(
    x: np.ndarray,
    spec: PoolSpec,
    impl: PoolingImpl,
    config: ChipConfig = ASCEND910,
    collect_trace: bool = True,
    execute: str = "numeric",
    cache: ProgramCache | None = PROGRAM_CACHE,
    model: "str | ExecutionModel | None" = None,
    faults: "FaultPlan | FaultInjector | None" = None,
    retry: RetryPolicy | None = None,
    sanitize: bool = False,
    plan: "str | ExecutionPlan" = "default",
) -> PoolRunResult:
    """Run a forward pooling implementation on the simulated chip.

    ``x`` is an ``(N, C1, Ih, Iw, C0)`` float16 tensor.  The result's
    output (and mask) are NumPy arrays read back from simulated global
    memory, directly comparable against :mod:`repro.ops.reference`.

    The driver is a thin composition of the plan -> lower -> dispatch
    pipeline (:mod:`repro.plan.planner`): the workload's choices are
    reified into an :class:`~repro.plan.planner.ExecutionPlan`, lowered
    to tile programs, and dispatched on a fresh chip.  ``plan``
    selects the planning policy: ``"default"`` (the default) is the
    historical heuristic and is byte-identical to the pre-pipeline
    driver; ``"autotuned"`` consults the persisted autotune table
    (:mod:`repro.plan.autotune`), falling back to the default plan for
    untuned workloads; an explicit :class:`ExecutionPlan` is validated
    against the workload and dispatched as-is (its implementation
    variant, row chunk and timing model win over the call's arguments).

    Every ``(N, C1)`` slice lowers to the same tile programs up to
    global-memory base offsets, so by default (``cache`` = the shared
    :data:`repro.sim.PROGRAM_CACHE`) the driver lowers one program per
    unique tile geometry and emits relocated clones for the remaining
    slices, with memoized cycle/trace summaries so repeated tiles skip
    per-instruction accounting.  ``cache=None`` restores the uncached
    per-tile lowering (the reference path the equivalence tests compare
    against).

    ``execute="cycles"`` additionally skips the NumPy data pass: cycle
    counts are identical (the cost model is data-independent) but
    ``output``/``mask`` are ``None``.  The benchmark figures run in this
    mode.

    ``execute="jit"`` runs the data pass through compiled batch kernels
    (:mod:`repro.sim.compile`) instead of the per-instruction
    interpreter: outputs, masks and cycle counts are bit-identical to
    ``"numeric"`` at a fraction of the dispatch cost.  With a cache,
    one kernel is compiled per unique tile geometry and shared by every
    relocated slice clone (memoized alongside the program, see
    :meth:`repro.sim.ProgramCache.compiled`).  Incompatible with
    ``sanitize=`` and ``faults=``/``retry=``, which instrument the
    interpreter loop the JIT skips.

    ``model`` selects the timing model ("serial"/"pipelined", an
    :class:`~repro.sim.scheduler.ExecutionModel`, or ``None`` for the
    default serial accounting).  It only shapes cycle counts; numeric
    outputs are bit-identical across models.

    ``faults`` / ``retry`` switch on the chip's resilient dispatcher
    (deterministic fault injection, bounded retry with reassignment and
    quarantine -- see :mod:`repro.sim.faults`); the recovery account is
    available as ``result.resilience``.  Both default to ``None``:
    fault-free runs take the historical zero-overhead path.

    ``sanitize=True`` runs every tile in strict memory-checking mode
    (:mod:`repro.sim.sanitizer`): scratch-pads are poison-filled per
    tile, every operand is bounds- and init-checked against the
    kernel's allocation manifest, observed writes are verified against
    the declared hazard regions, and the pipelined schedule is audited
    for races.  Violations raise
    :class:`~repro.errors.SanitizerError`; a clean run's report is
    available as ``result.sanitizer``.  Requires ``execute="numeric"``
    and no ``faults``/``retry``; off by default and zero-cost when off.
    """
    _check_execute(execute)
    dtype = dtype_of(x)
    _validate_input(x, dtype)
    n, c1_total, ih, iw, c0 = x.shape
    resolved, timing, impl = resolve_plan(
        plan, "fwd", impl, spec, dtype, n, c1_total, ih, iw, config,
        execute=execute, model=model,
    )
    lowering = lower(
        resolved, config, cache=cache, collect_trace=collect_trace,
        timing=timing, impl=impl,
    )
    return dispatch(
        resolved, lowering, config, x=x, collect_trace=collect_trace,
        timing=timing, faults=faults, retry=retry, sanitize=sanitize,
    )


def run_backward(
    grad: np.ndarray,
    spec: PoolSpec,
    impl: PoolingImpl,
    ih: int,
    iw: int,
    mask: np.ndarray | None = None,
    config: ChipConfig = ASCEND910,
    collect_trace: bool = True,
    serialize_slices: bool = False,
    execute: str = "numeric",
    cache: ProgramCache | None = PROGRAM_CACHE,
    model: "str | ExecutionModel | None" = None,
    faults: "FaultPlan | FaultInjector | None" = None,
    retry: RetryPolicy | None = None,
    sanitize: bool = False,
    plan: "str | ExecutionPlan" = "default",
) -> PoolRunResult:
    """Run a backward pooling implementation.

    ``grad`` is ``(N, C1, Oh, Ow, C0)``; for MaxPool, ``mask`` is the
    rank-7 Argmax mask the forward pass saved.  Returns the input
    gradient ``(N, C1, Ih, Iw, C0)``.

    Row-chunked tiles of one slice write overlapping input rows; their
    stores use the accumulate-DMA mode, so by default they run on
    different cores like forward tiles (the atomic-add path AKG uses for
    multi-core reductions).  ``serialize_slices=True`` instead keeps each
    ``(N, C1)`` slice's chunks on one core, giving a bit-deterministic
    accumulation order at the cost of parallelism.

    ``execute``, ``cache``, ``model``, ``faults``, ``retry`` and
    ``plan`` behave exactly as in :func:`run_forward`: the driver is
    the same plan -> lower -> dispatch composition, tile programs are
    lowered once per unique geometry and relocated per slice,
    ``execute="cycles"`` skips the data pass (``output`` is ``None``),
    ``model`` selects the timing model without affecting numeric
    results, and ``faults``/``retry`` enable the resilient dispatcher
    (a failed attempt's partial accumulate-DMA stores are rolled back
    before the retry, so recovered outputs stay bit-identical).
    ``sanitize=True`` enables the strict memory-checking mode exactly
    as in :func:`run_forward`.  ``execute="jit"`` likewise mirrors
    :func:`run_forward`: the data pass runs through compiled batch
    kernels (one per unique tile geometry, shared by every relocated
    slice clone) with bit-identical gradients and cycle counts.
    """
    _check_execute(execute)
    dtype = dtype_of(grad)
    _validate_input(grad, dtype)
    n, c1_total, oh, ow, c0 = grad.shape
    full = spec.with_image(ih, iw)
    if full.out_hw() != (oh, ow):
        raise LayoutError(
            f"gradient grid {(oh, ow)} does not match geometry "
            f"{full.out_hw()}"
        )
    if impl.op == "max":
        if mask is None:
            raise LayoutError("MaxPool backward requires the Argmax mask")
        expect = (n, c1_total, spec.kh, spec.kw, oh, ow, c0)
        if mask.shape != expect:
            raise LayoutError(
                f"mask shape {mask.shape} does not match {expect}"
            )
    elif mask is not None:
        raise LayoutError("AvgPool backward takes no mask")

    resolved, timing, impl = resolve_plan(
        plan, "bwd", impl, spec, dtype, n, c1_total, ih, iw, config,
        execute=execute, model=model, serialize_slices=serialize_slices,
    )
    lowering = lower(
        resolved, config, cache=cache, collect_trace=collect_trace,
        timing=timing, impl=impl,
    )
    return dispatch(
        resolved, lowering, config, grad=grad, mask=mask,
        collect_trace=collect_trace, timing=timing, faults=faults,
        retry=retry, sanitize=sanitize,
    )
