"""Shared orchestration for pooling implementations.

Every implementation follows the same envelope (Section V-A):

1. the workload is tiled on ``(N, C1)`` (and further row-chunked when a
   tile exceeds the Unified Buffer),
2. each tile's program loads its inputs from global memory, computes on
   one AI Core, and stores its outputs back,
3. tiles run in parallel across the chip's AI Cores.

Implementations only provide the *compute* part of a tile
(:meth:`PoolingImpl.build_tile`) and a footprint model used by the
tiling planner.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..config import ASCEND910, ChipConfig
from ..dtypes import DType, dtype_of
from ..errors import LayoutError
from ..expr import Axis, TensorDecl
from ..isa.operand import MemRef
from ..isa.program import Program
from ..isa.scu import Im2ColParams
from ..plan import TileGeom, plan_row_chunks
from ..sim import Chip, ChipRunResult, GlobalMemory
from ..tik import KernelBuilder
from .spec import PoolSpec


@dataclass
class TileContext:
    """Everything a tile program needs to be built."""

    builder: KernelBuilder
    geom: TileGeom
    spec: PoolSpec
    dtype: DType
    #: Forward: the tile's input rows in global memory.
    gm_in: MemRef | None = None
    #: Forward: the tile's output rows in global memory.
    gm_out: MemRef | None = None
    #: (kh*kw) per-plane slices of the global mask tensor, row-major.
    gm_mask_planes: list[MemRef] | None = None
    #: Backward: the tile's incoming-gradient rows.
    gm_grad: MemRef | None = None
    #: Backward: the tile's input-gradient rows (accumulate target).
    gm_dx: MemRef | None = None

    @property
    def params(self) -> Im2ColParams:
        return self.geom.params

    @property
    def c0(self) -> int:
        return self.dtype.c0


class PoolingImpl(abc.ABC):
    """One pooling implementation (forward or backward)."""

    #: Short name used by the registry and the benches.
    name: str = "base"
    #: "max" or "avg".
    op: str = "max"
    #: Forward only: also produce the Argmax mask (Figure 7b).
    with_mask: bool = False

    def __init__(self, op: str = "max", with_mask: bool = False) -> None:
        if op not in ("max", "avg"):
            raise LayoutError(f"unknown pooling op {op!r}")
        if with_mask and op != "max":
            raise LayoutError("the Argmax mask only exists for MaxPool")
        self.op = op
        self.with_mask = with_mask

    @property
    def reduce_op(self) -> str:
        return "max" if self.op == "max" else "sum"

    def pad_value(self, dtype: DType) -> float:
        """What padding positions contribute: the reduction identity."""
        return dtype.min_value if self.op == "max" else 0.0

    @abc.abstractmethod
    def footprint(self, params: Im2ColParams, dtype: DType) -> dict[str, int]:
        """Scratch-pad bytes a tile of this geometry requires."""

    @abc.abstractmethod
    def build_tile(self, ctx: TileContext) -> None:
        """Emit the tile's compute into ``ctx.builder``."""

    def describe(self) -> str:
        mask = "+mask" if self.with_mask else ""
        return f"{self.op}pool-{self.name}{mask}"


@dataclass
class PoolRunResult:
    """Simulated execution outcome of one operator invocation."""

    #: Forward: pooled output ``(N, C1, Oh, Ow, C0)``.
    #: Backward: input gradient ``(N, C1, Ih, Iw, C0)``.
    output: np.ndarray
    #: Forward with ``with_mask``: ``(N, C1, Kh, Kw, Oh, Ow, C0)``.
    mask: np.ndarray | None
    chip: ChipRunResult
    tiles: tuple[TileGeom, ...]

    @property
    def cycles(self) -> int:
        """The chip-level cycle count (the paper's reported metric)."""
        return self.chip.cycles


# ---------------------------------------------------------------------------
# Shared building blocks used by the implementations.
# ---------------------------------------------------------------------------

def pool_axes(params: Im2ColParams, c0: int) -> dict[str, Axis]:
    """Fresh loop axes for one tile's geometry."""
    oh, ow = params.out_hw()
    return {
        "oh": Axis("oh", oh),
        "ow": Axis("ow", ow),
        "c0": Axis("c0", c0),
        "kh": Axis("kh", params.kh),
        "kw": Axis("kw", params.kw),
    }


def load_input_materialized(
    ctx: TileContext, pad_value: float
) -> tuple[TensorDecl, MemRef, Im2ColParams]:
    """Bring the tile input into the UB, materialising any padding.

    Implementations that compute directly on the image layout (standard,
    expansion, X-Y split) cannot pad on the fly the way the ``Im2Col``
    load can; they fill a padded region with the reduction identity and
    deposit the real rows inside it.  Returns the (possibly padded)
    tensor declaration, its UB region, and the *effective* geometry
    (padding folded into the image extents).
    """
    p = ctx.params
    b = ctx.builder
    c0 = ctx.c0
    if ctx.gm_in is None:
        raise LayoutError("tile context has no input tensor")
    if not (p.pt or p.pb or p.pl or p.pr):
        ref = b.alloc("UB", p.ih * p.iw * c0, "in")
        b.dma(ctx.gm_in, ref)
        decl = TensorDecl("in", (p.ih, p.iw, c0), ctx.dtype)
        return decl, ref, p
    ph = p.ih + p.pt + p.pb
    pw = p.iw + p.pl + p.pr
    ref = b.alloc("UB", ph * pw * c0, "in_padded")
    b.dup(ref, pad_value)
    interior = ref.slice((p.pt * pw + p.pl) * c0, (p.ih - 1) * pw * c0 + p.iw * c0)
    b.dma_rows(
        ctx.gm_in,
        interior,
        rows=p.ih,
        src_row_elems=p.iw * c0,
        dst_row_elems=pw * c0,
        copy_elems=p.iw * c0,
    )
    decl = TensorDecl("in", (ph, pw, c0), ctx.dtype)
    eff = Im2ColParams(
        ih=ph, iw=pw, kh=p.kh, kw=p.kw, sh=p.sh, sw=p.sw
    )
    return decl, ref, eff


def materialized_input_bytes(params: Im2ColParams, dtype: DType) -> int:
    """UB bytes of the (possibly padded) materialised input tile."""
    ph = params.ih + params.pt + params.pb
    pw = params.iw + params.pl + params.pr
    return ph * pw * dtype.c0 * dtype.itemsize


def out_tile_bytes(params: Im2ColParams, dtype: DType) -> int:
    """UB bytes of one (Oh, Ow, C0) output tile."""
    oh, ow = params.out_hw()
    return oh * ow * dtype.c0 * dtype.itemsize


def im2col_planes_bytes(params: Im2ColParams, dtype: DType) -> int:
    """UB bytes of the Kh*Kw fractal-padded Im2col planes."""
    return (
        params.kh * params.kw * params.plane_rows() * dtype.c0 * dtype.itemsize
    )


def mask_planes_bytes(params: Im2ColParams, dtype: DType) -> int:
    """UB bytes of the contiguous (unpadded) Argmax-mask planes."""
    oh, ow = params.out_hw()
    return params.kh * params.kw * oh * ow * dtype.c0 * dtype.itemsize


# ---------------------------------------------------------------------------
# Operator drivers.
# ---------------------------------------------------------------------------

def _validate_input(x: np.ndarray, dtype: DType) -> None:
    if x.ndim != 5:
        raise LayoutError(f"expected NC1HWC0 rank-5 input, got {x.shape}")
    if x.shape[-1] != dtype.c0:
        raise LayoutError(
            f"C0 dimension is {x.shape[-1]}, expected {dtype.c0} for "
            f"{dtype.name}"
        )


def _mask_plane_refs(
    geom: TileGeom,
    spec: PoolSpec,
    slice_idx: int,
    oh_full: int,
    ow: int,
    c0: int,
    dtype: DType,
    name: str = "mask",
) -> list[MemRef]:
    """GM regions of each (kh, kw) plane's rows [oh0, oh1) for a tile."""
    refs = []
    rows = geom.out_rows * ow * c0
    for i in range(spec.kh):
        for j in range(spec.kw):
            base = (
                ((slice_idx * spec.kh + i) * spec.kw + j) * oh_full + geom.oh0
            ) * ow * c0
            refs.append(MemRef(name, base, rows, dtype))
    return refs


def run_forward(
    x: np.ndarray,
    spec: PoolSpec,
    impl: PoolingImpl,
    config: ChipConfig = ASCEND910,
    collect_trace: bool = True,
) -> PoolRunResult:
    """Run a forward pooling implementation on the simulated chip.

    ``x`` is an ``(N, C1, Ih, Iw, C0)`` float16 tensor.  The result's
    output (and mask) are NumPy arrays read back from simulated global
    memory, directly comparable against :mod:`repro.ops.reference`.
    """
    dtype = dtype_of(x)
    _validate_input(x, dtype)
    n, c1_total, ih, iw, c0 = x.shape
    full = spec.with_image(ih, iw)
    oh, ow = full.out_hw()
    min_tiles = -(-config.num_cores // (n * c1_total))
    tiles = plan_row_chunks(
        full, impl.footprint, config, dtype, min_tiles=min_tiles
    )

    gm = GlobalMemory()
    gm.add("x", x)
    gm.zeros("out", n * c1_total * oh * ow * c0, dtype)
    if impl.with_mask:
        gm.zeros(
            "mask", n * c1_total * spec.kh * spec.kw * oh * ow * c0, dtype
        )

    programs: list[Program] = []
    for slice_idx in range(n * c1_total):
        for geom in tiles:
            b = KernelBuilder(config, dtype, name=f"{impl.describe()}-t{len(programs)}")
            gm_in = MemRef(
                "x",
                (slice_idx * ih + geom.ih0) * iw * c0,
                geom.in_rows * iw * c0,
                dtype,
            )
            gm_out = MemRef(
                "out",
                (slice_idx * oh + geom.oh0) * ow * c0,
                geom.out_rows * ow * c0,
                dtype,
            )
            ctx = TileContext(
                builder=b,
                geom=geom,
                spec=spec,
                dtype=dtype,
                gm_in=gm_in,
                gm_out=gm_out,
                gm_mask_planes=(
                    _mask_plane_refs(geom, spec, slice_idx, oh, ow, c0, dtype)
                    if impl.with_mask
                    else None
                ),
            )
            impl.build_tile(ctx)
            programs.append(b.program)

    chip = Chip(config, dtype)
    result = chip.run_tiles(programs, gm, collect_trace=collect_trace)
    out = gm.read("out", (n, c1_total, oh, ow, c0))
    mask = (
        gm.read("mask", (n, c1_total, spec.kh, spec.kw, oh, ow, c0))
        if impl.with_mask
        else None
    )
    return PoolRunResult(output=out, mask=mask, chip=result, tiles=tuple(tiles))


def run_backward(
    grad: np.ndarray,
    spec: PoolSpec,
    impl: PoolingImpl,
    ih: int,
    iw: int,
    mask: np.ndarray | None = None,
    config: ChipConfig = ASCEND910,
    collect_trace: bool = True,
    serialize_slices: bool = False,
) -> PoolRunResult:
    """Run a backward pooling implementation.

    ``grad`` is ``(N, C1, Oh, Ow, C0)``; for MaxPool, ``mask`` is the
    rank-7 Argmax mask the forward pass saved.  Returns the input
    gradient ``(N, C1, Ih, Iw, C0)``.

    Row-chunked tiles of one slice write overlapping input rows; their
    stores use the accumulate-DMA mode, so by default they run on
    different cores like forward tiles (the atomic-add path AKG uses for
    multi-core reductions).  ``serialize_slices=True`` instead keeps each
    ``(N, C1)`` slice's chunks on one core, giving a bit-deterministic
    accumulation order at the cost of parallelism.
    """
    dtype = dtype_of(grad)
    _validate_input(grad, dtype)
    n, c1_total, oh, ow, c0 = grad.shape
    full = spec.with_image(ih, iw)
    if full.out_hw() != (oh, ow):
        raise LayoutError(
            f"gradient grid {(oh, ow)} does not match geometry "
            f"{full.out_hw()}"
        )
    if impl.op == "max":
        if mask is None:
            raise LayoutError("MaxPool backward requires the Argmax mask")
        expect = (n, c1_total, spec.kh, spec.kw, oh, ow, c0)
        if mask.shape != expect:
            raise LayoutError(
                f"mask shape {mask.shape} does not match {expect}"
            )
    elif mask is not None:
        raise LayoutError("AvgPool backward takes no mask")

    min_tiles = (
        1 if serialize_slices
        else -(-config.num_cores // (n * c1_total))
    )
    tiles = plan_row_chunks(
        full, impl.footprint, config, dtype, min_tiles=min_tiles
    )
    gm = GlobalMemory()
    gm.add("grad", grad)
    if mask is not None:
        gm.add("mask", mask)
    gm.zeros("dx", n * c1_total * ih * iw * c0, dtype)

    groups: list[list[Program]] = []
    for slice_idx in range(n * c1_total):
        group: list[Program] = []
        for geom in tiles:
            b = KernelBuilder(config, dtype, name=f"{impl.describe()}-s{slice_idx}")
            gm_grad = MemRef(
                "grad",
                (slice_idx * oh + geom.oh0) * ow * c0,
                geom.out_rows * ow * c0,
                dtype,
            )
            gm_dx = MemRef(
                "dx",
                (slice_idx * ih + geom.ih0) * iw * c0,
                geom.in_rows * iw * c0,
                dtype,
            )
            ctx = TileContext(
                builder=b,
                geom=geom,
                spec=spec,
                dtype=dtype,
                gm_grad=gm_grad,
                gm_dx=gm_dx,
                gm_mask_planes=(
                    _mask_plane_refs(geom, spec, slice_idx, oh, ow, c0, dtype)
                    if mask is not None
                    else None
                ),
            )
            impl.build_tile(ctx)
            group.append(b.program)
        groups.append(group)

    chip = Chip(config, dtype)
    if serialize_slices:
        result = chip.run_tile_groups(groups, gm, collect_trace=collect_trace)
    else:
        flat = [prog for group in groups for prog in group]
        result = chip.run_tiles(flat, gm, collect_trace=collect_trace)
    dx = gm.read("dx", (n, c1_total, ih, iw, c0))
    return PoolRunResult(output=dx, mask=None, chip=result, tiles=tuple(tiles))
