"""Backward pooling implementations (paper Section V-B).

Both variants share the multiply step -- ``vmul`` over the mask-gradient
product "works well" because the Im2col-shaped operands are contiguous
-- and differ only in the *merge* step:

* :class:`StandardBackward` -- the inlined TVM expansion writes the
  products back through a strided scatter; the DSL lowering can neither
  widen the mask past ``C0`` nor use the repeat parameter
  ("the vadd instructions only set 16 elements of the vector mask ...
  and repetition is not used"), so ``Kh*Kw*Oh*Ow`` instructions issue.
* :class:`Col2imBackward` -- "the merge step computes exactly the
  Col2im operation": ``Kh*Kw`` Col2Im issues, each repeat summing a
  whole 256-element fractal, replace the scatter entirely.

For AvgPool no mask is loaded; the gradient is scaled by
``1/(Kh*Kw)`` and broadcast to every window position (Section V-C).
"""

from __future__ import annotations

from ..dtypes import DType
from ..expr import (
    Axis,
    BinOp,
    ScalarOp,
    Stage,
    TensorDecl,
    lower_stage,
    scatter_accumulate_stage,
)
from ..isa.operand import MemRef
from ..isa.scu import Im2ColParams
from .base import (
    PoolingImpl,
    TileContext,
    im2col_planes_bytes,
    mask_planes_bytes,
    out_tile_bytes,
    pool_axes,
)


def _grad_in(ctx: TileContext) -> tuple[TensorDecl, MemRef]:
    """DMA the tile's incoming gradients into the UB."""
    p = ctx.params
    oh, ow = p.out_hw()
    ref = ctx.builder.alloc("UB", oh * ow * ctx.c0, "grad")
    assert ctx.gm_grad is not None
    ctx.builder.dma(ctx.gm_grad, ref)
    return TensorDecl("grad", (oh, ow, ctx.c0), ctx.dtype), ref


def _load_mask_planes(
    ctx: TileContext, plane_elems: int
) -> tuple[TensorDecl, MemRef]:
    """DMA the Argmax-mask planes into the UB.

    ``plane_elems`` is the in-UB stride between planes: the valid
    ``Oh*Ow*C0`` prefix for the standard merge, or the fractal-padded
    ``plane_rows()*C0`` for the Col2Im merge (whose final fractal must
    be whole; the pad rows are never read as patches).
    """
    p = ctx.params
    oh, ow = p.out_hw()
    c0 = ctx.c0
    valid = oh * ow * c0
    b = ctx.builder
    ref = b.alloc("UB", p.kh * p.kw * plane_elems, "mask")
    assert ctx.gm_mask_planes is not None
    for idx, gm_plane in enumerate(ctx.gm_mask_planes):
        b.dma(gm_plane, ref.slice(idx * plane_elems, valid))
    b.program.scalar_loop_trips += len(ctx.gm_mask_planes)
    decl = TensorDecl(
        "mask",
        (p.kh, p.kw, oh, ow, c0),
        ctx.dtype,
        strides=(p.kw * plane_elems, plane_elems, ow * c0, c0, 1),
    )
    return decl, ref


def _emit_multiply(
    ctx: TileContext,
    mg_decl: TensorDecl,
    binding: dict[str, MemRef],
    grad_decl: TensorDecl,
    mask_decl: TensorDecl | None,
) -> None:
    """The multiply step (Listing 3): ``mg = mask * grad`` for MaxPool,
    ``mg = grad * 1/(Kh*Kw)`` broadcast for AvgPool.  Contiguous in all
    operands, so the DSL saturates the mask either way."""
    p = ctx.params
    ax = pool_axes(p, ctx.c0)
    akh, akw = ax["kh"], ax["kw"]
    aoh, aow, ac0 = ax["oh"], ax["ow"], ax["c0"]
    grad_load = grad_decl[aoh, aow, ac0]
    if mask_decl is not None:
        body = BinOp("mul", mask_decl[akh, akw, aoh, aow, ac0], grad_load)
    else:
        body = ScalarOp("muls", grad_load, 1.0 / ctx.spec.window)
    lower_stage(
        Stage(
            out=mg_decl,
            out_idx=(akh, akw, aoh, aow, ac0),
            axes=(akh, akw, aoh, aow, ac0),
            body=body,
            name="bwd.mul",
        ),
        binding, ctx.builder.program, ctx.dtype,
        max_repeat=ctx.builder.config.max_repeat,
    )


class StandardBackward(PoolingImpl):
    """The TVM merge: strided scatter-add with regular vadd."""

    name = "standard"

    @staticmethod
    def _halo(params: Im2ColParams) -> tuple[int, int]:
        """Rows/cols of the padded scatter target (the full patch span,
        including the padding halo that is discarded afterwards)."""
        oh, ow = params.out_hw()
        return (
            (oh - 1) * params.sh + params.kh,
            (ow - 1) * params.sw + params.kw,
        )

    def footprint(self, params: Im2ColParams, dtype: DType) -> dict[str, int]:
        rows, cols = self._halo(params)
        halo = rows * cols * dtype.c0 * dtype.itemsize
        return {
            "UB": mask_planes_bytes(params, dtype)
            + out_tile_bytes(params, dtype)
            + halo
        }

    def build_tile(self, ctx: TileContext) -> None:
        b = ctx.builder
        p = ctx.params
        c0 = ctx.c0
        oh, ow = p.out_hw()
        grad_decl, grad_ref = _grad_in(ctx)
        binding: dict[str, MemRef] = {"grad": grad_ref}
        if self.op == "max":
            mask_decl, mask_ref = _load_mask_planes(ctx, oh * ow * c0)
            mg_decl, mg_ref = mask_decl, mask_ref  # multiply in place
            binding["mask"] = mask_ref
        else:
            mg_ref = b.alloc("UB", p.kh * p.kw * oh * ow * c0, "mg")
            mg_decl = TensorDecl("mg", (p.kh, p.kw, oh, ow, c0), ctx.dtype)
            mask_decl = None
            binding["mg"] = mg_ref
        binding[mg_decl.name] = mg_ref
        _emit_multiply(ctx, mg_decl, binding, grad_decl, mask_decl)

        rows, cols = self._halo(p)
        halo_ref = b.alloc("UB", rows * cols * c0, "halo")
        halo_decl = TensorDecl("halo", (rows, cols, c0), ctx.dtype)
        binding["halo"] = halo_ref
        b.dup(halo_ref, 0.0)
        ax = pool_axes(p, c0)
        akh, akw = ax["kh"], ax["kw"]
        aoh, aow, ac0 = ax["oh"], ax["ow"], ax["c0"]
        # The merge: out[oh*Sh+kh, ow*Sw+kw] += mg[kh, kw, oh, ow] --
        # a strided destination, so the lowering falls back to 16-lane
        # unrepeated vadds: the paper's Kh*Kw*Oh*Ow issues.
        lower_stage(
            scatter_accumulate_stage(
                halo_decl,
                (aoh * p.sh + akh, aow * p.sw + akw, ac0),
                (akh, akw, aoh, aow, ac0),
                mg_decl[akh, akw, aoh, aow, ac0],
                name="bwd.merge",
            ),
            binding, b.program, ctx.dtype, max_repeat=b.config.max_repeat,
        )
        self._store_interior(ctx, halo_ref, rows, cols)

    def _store_interior(
        self, ctx: TileContext, halo_ref: MemRef, rows: int, cols: int
    ) -> None:
        """Accumulate the halo's real-image interior back to global
        memory, dropping the padding ring.

        When the stride grid does not reach the image's last rows or
        columns (e.g. kernel 2, stride 2 on an odd extent) the halo is
        smaller than the tile image; uncovered positions receive no
        gradient and are simply not written.
        """
        p = ctx.params
        c0 = ctx.c0
        assert ctx.gm_dx is not None
        covered_rows = min(p.ih, rows - p.pt)
        covered_cols = min(p.iw, cols - p.pl)
        start = (p.pt * cols + p.pl) * c0
        if p.pl == 0 and p.pr == 0 and covered_cols == p.iw:
            interior = halo_ref.slice(start, covered_rows * cols * c0)
            ctx.builder.dma(
                interior,
                ctx.gm_dx.slice(0, covered_rows * p.iw * c0),
                accumulate=True,
            )
        else:
            interior = halo_ref.slice(
                start, (covered_rows - 1) * cols * c0 + covered_cols * c0
            )
            ctx.builder.dma_rows(
                interior,
                ctx.gm_dx,
                rows=covered_rows,
                src_row_elems=cols * c0,
                dst_row_elems=p.iw * c0,
                copy_elems=covered_cols * c0,
                accumulate=True,
            )


class Col2imBackward(PoolingImpl):
    """The paper's contribution: Col2Im performs the merge."""

    name = "col2im"

    def footprint(self, params: Im2ColParams, dtype: DType) -> dict[str, int]:
        img = params.ih * params.iw * dtype.c0 * dtype.itemsize
        return {
            "UB": im2col_planes_bytes(params, dtype)
            + out_tile_bytes(params, dtype)
            + img
        }

    def build_tile(self, ctx: TileContext) -> None:
        b = ctx.builder
        p = ctx.params
        c0 = ctx.c0
        plane_elems = p.plane_rows() * c0
        grad_decl, grad_ref = _grad_in(ctx)
        binding: dict[str, MemRef] = {"grad": grad_ref}
        if self.op == "max":
            mask_decl, mask_ref = _load_mask_planes(ctx, plane_elems)
            mg_decl, mg_ref = mask_decl, mask_ref
            binding["mask"] = mask_ref
        else:
            oh, ow = p.out_hw()
            mg_ref = b.alloc("UB", p.kh * p.kw * plane_elems, "mg")
            mg_decl = TensorDecl(
                "mg",
                (p.kh, p.kw, oh, ow, c0),
                ctx.dtype,
                strides=(p.kw * plane_elems, plane_elems, ow * c0, c0, 1),
            )
            mask_decl = None
            binding["mg"] = mg_ref
        binding[mg_decl.name] = mg_ref
        _emit_multiply(ctx, mg_decl, binding, grad_decl, mask_decl)

        # Col2Im writes real-image coordinates only (it skips the
        # padding halo and the pad patches of the final fractal), so the
        # target is the unpadded tile image and one contiguous
        # accumulate-DMA stores it.
        img_ref = b.alloc("UB", p.ih * p.iw * c0, "dx")
        b.dup(img_ref, 0.0)
        b.col2im_merge(mg_ref, img_ref, p)
        assert ctx.gm_dx is not None
        b.dma(img_ref, ctx.gm_dx, accumulate=True)
