"""AvgPool on the Cube Unit -- the paper's future-work direction.

Section VIII: "Further work could ... consider the fusion techniques
described by Suita et al. to execute Avgpool together with convolution
as matrix multiplication in the Cube Unit."  Suita et al.'s observation
(Section VII) is that AvgPool *is* a convolution whose kernel weights
all equal ``1/(Kh*Kw)`` -- channel-diagonal, so each output channel
averages its own input channel.

This module builds that diagonal kernel and reuses the Im2Col -> Cube
pipeline of :mod:`repro.ops.conv2d`, giving the third execution venue
for pooling (Scalar/Vector/Cube) and letting the benches compare the
Cube route against the paper's Vector-unit implementations.  MaxPool
"cannot be fused in the same way" (Section VII) -- max is not a linear
map -- which this module's guard enforces.
"""

from __future__ import annotations

import numpy as np

from ..config import ASCEND910, ChipConfig
from ..dtypes import FLOAT16, dtype_of
from ..errors import LayoutError
from ..sim import ExecutionModel
from .conv2d import ConvRunResult, conv2d
from .spec import PoolSpec


def avgpool_kernel_weights(channels: int, spec: PoolSpec) -> np.ndarray:
    """The channel-diagonal averaging kernel ``(C, C, Kh, Kw)``.

    ``W[o, i, :, :] = 1/(Kh*Kw)`` when ``o == i`` else 0 -- convolving
    with it computes AvgPool exactly (up to the fp32-accumulate /
    fp16-round arithmetic of the Cube Unit).
    """
    if channels <= 0 or channels % 16 != 0:
        raise LayoutError(
            f"the Cube route needs a multiple-of-16 channel count, got "
            f"{channels}"
        )
    w = np.zeros((channels, channels, spec.kh, spec.kw), dtype=np.float16)
    value = np.float16(1.0 / spec.window)
    idx = np.arange(channels)
    w[idx, idx] = value
    return w


def avgpool_via_cube(
    x: np.ndarray,
    spec: PoolSpec,
    config: ChipConfig = ASCEND910,
    collect_trace: bool = True,
    model: "str | ExecutionModel | None" = None,
) -> ConvRunResult:
    """AvgPool computed by the Cube Unit as a diagonal convolution.

    Functionally interchangeable with
    :func:`repro.ops.avgpool` (tolerance: the Cube accumulates in
    float32 and rounds once, the Vector route accumulates in fp16);
    the cycle cost exposes the trade-off: the matrix unit multiplies
    ``C x C`` kernel fractals that are almost entirely zeros, so the
    Vector route wins for pooling alone, and the Cube route only pays
    off fused into a preceding convolution (Suita et al.).
    """
    dtype = dtype_of(x)
    if dtype is not FLOAT16:
        raise LayoutError("the Cube route is defined for float16")
    channels = x.shape[1] * dtype.c0
    weights = avgpool_kernel_weights(channels, spec)
    return conv2d(x, weights, spec, config=config,
                  collect_trace=collect_trace, model=model)


def maxpool_via_cube(*args, **kwargs):
    """MaxPool has no Cube mapping: max is not linear (Section VII:
    "CNNs tend to use Maxpool, which cannot be fused in the same
    way").  Always raises."""
    raise LayoutError(
        "MaxPool cannot be expressed as a matrix multiplication; use the "
        "Vector-unit implementations (repro.ops.maxpool)"
    )
