"""Pure-NumPy golden models of the pooling operators.

Every simulated kernel is validated against these.  Accumulation orders
mirror the kernels exactly (sequential over the kernel window in
``(kh, kw)`` order, in the storage dtype) so float16 results match
bit-for-bit, not just within tolerance.
"""

from __future__ import annotations

import numpy as np

from ..dtypes import dtype_of
from ..errors import LayoutError
from ..fractal.im2col import col2im_nc1hwc0, im2col_nc1hwc0
from .spec import PoolSpec


def _check_input(x: np.ndarray) -> None:
    if x.ndim != 5:
        raise LayoutError(
            f"pooling reference expects NC1HWC0 rank-5 input, got {x.shape}"
        )


def maxpool_forward_ref(x: np.ndarray, spec: PoolSpec) -> np.ndarray:
    """MaxPool forward on an ``(N, C1, Ih, Iw, C0)`` tensor.

    Padding positions participate with the dtype minimum, so they can
    never win unless a patch is entirely padding (which
    :class:`PoolSpec` forbids).
    """
    _check_input(x)
    dt = dtype_of(x)
    cols = im2col_nc1hwc0(
        x, spec.kh, spec.kw, spec.sh, spec.sw,
        spec.pt, spec.pb, spec.pl, spec.pr,
        pad_value=dt.min_value,
    )
    # Sequential (kh, kw) accumulation in storage dtype -- matches the
    # kernels' vmax ordering exactly (max is order-insensitive, but we
    # keep the pattern uniform with avgpool).
    n, c1, kh, kw, oh, ow, c0 = cols.shape
    out = np.full((n, c1, oh, ow, c0), dt.min_value, dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            np.maximum(out, cols[:, :, i, j], out=out)
    return out


def maxpool_argmax_ref(x: np.ndarray, spec: PoolSpec) -> np.ndarray:
    """The Argmax mask in the Im2col shape ``(N, C1, Kh, Kw, Oh, Ow, C0)``.

    1.0 at the *first* (row-major ``(kh, kw)``) occurrence of each
    patch's maximum, 0.0 elsewhere -- the tie-breaking rule the
    simulated kernels implement with their found-chain.
    """
    _check_input(x)
    dt = dtype_of(x)
    cols = im2col_nc1hwc0(
        x, spec.kh, spec.kw, spec.sh, spec.sw,
        spec.pt, spec.pb, spec.pl, spec.pr,
        pad_value=dt.min_value,
    )
    n, c1, kh, kw, oh, ow, c0 = cols.shape
    flat = cols.reshape(n, c1, kh * kw, oh, ow, c0)
    arg = flat.argmax(axis=2)  # first occurrence on ties
    mask = np.zeros_like(flat)
    np.put_along_axis(mask, arg[:, :, None], x.dtype.type(1.0), axis=2)
    return mask.reshape(cols.shape)


def maxpool_backward_ref(
    mask: np.ndarray,
    grad: np.ndarray,
    spec: PoolSpec,
    ih: int,
    iw: int,
) -> np.ndarray:
    """MaxPool backward: route gradients through the Argmax mask and
    merge overlapping patches by summation (Figure 3, bottom)."""
    if mask.ndim != 7 or grad.ndim != 5:
        raise LayoutError(
            f"expected rank-7 mask and rank-5 grad, got {mask.shape} and "
            f"{grad.shape}"
        )
    mg = mask * grad[:, :, None, None]
    return col2im_nc1hwc0(
        mg, ih, iw, spec.sh, spec.sw, spec.pt, spec.pb, spec.pl, spec.pr
    )


def avgpool_forward_ref(x: np.ndarray, spec: PoolSpec) -> np.ndarray:
    """AvgPool forward: sequential fp16 sum over the window followed by
    one multiply with ``1/(Kh*Kw)`` -- the kernels' exact arithmetic.

    Padding contributes zeros and the divisor is always the full window
    (``count_include_pad`` semantics).
    """
    _check_input(x)
    cols = im2col_nc1hwc0(
        x, spec.kh, spec.kw, spec.sh, spec.sw,
        spec.pt, spec.pb, spec.pl, spec.pr,
        pad_value=0.0,
    )
    n, c1, kh, kw, oh, ow, c0 = cols.shape
    acc = np.zeros((n, c1, oh, ow, c0), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            acc += cols[:, :, i, j]
    return acc * x.dtype.type(1.0 / (kh * kw))


def avgpool_backward_ref(
    grad: np.ndarray,
    spec: PoolSpec,
    ih: int,
    iw: int,
) -> np.ndarray:
    """AvgPool backward: every window position receives
    ``grad / (Kh*Kw)``; overlaps sum (Section V-C: the equivalent mask
    "contains 1 in all its positions")."""
    if grad.ndim != 5:
        raise LayoutError(f"expected rank-5 grad, got {grad.shape}")
    n, c1, oh, ow, c0 = grad.shape
    scaled = grad * grad.dtype.type(1.0 / spec.window)
    mg = np.broadcast_to(
        scaled[:, :, None, None], (n, c1, spec.kh, spec.kw, oh, ow, c0)
    ).copy()
    return col2im_nc1hwc0(
        mg, ih, iw, spec.sh, spec.sw, spec.pt, spec.pb, spec.pl, spec.pr
    )
