"""User-facing operator entry points.

These are the functions a downstream user calls::

    from repro.ops import maxpool, maxpool_backward, PoolSpec

    spec = PoolSpec.square(kernel=3, stride=2)
    res = maxpool(x, spec, impl="im2col", with_mask=True)
    bwd = maxpool_backward(res.mask, grad, spec, ih, iw, impl="col2im")

``x`` is an ``(N, C1, Ih, Iw, C0)`` float16 tensor in the fractal
layout; use :mod:`repro.fractal` to convert from NCHW/NHWC.

Every entry point exposes the full resilience surface of the drivers
in :mod:`repro.ops.base`: ``faults=``/``retry=`` switch on the
fault-tolerant dispatcher (the recovery account lands in
``result.resilience``) and ``cache=`` selects the program cache the
lowering and the JIT-kernel memoization go through (``None`` disables
caching entirely).  Historically the public API silently dropped these
even though the drivers threaded them through -- resilient dispatch
was reachable only by importing the internal ``run_forward``/
``run_backward``.
"""

from __future__ import annotations

import numpy as np

from ..config import ASCEND910, ChipConfig
from ..sim import (
    PROGRAM_CACHE,
    FaultInjector,
    FaultPlan,
    ProgramCache,
    RetryPolicy,
)
from ..plan.planner import ExecutionPlan
from .base import PoolRunResult, run_backward, run_forward
from .registry import backward_impl, forward_impl
from .spec import PoolSpec

_RESILIENCE_DOC = """
    ``faults`` (a :class:`~repro.sim.FaultPlan` or
    :class:`~repro.sim.FaultInjector`) and ``retry`` (a
    :class:`~repro.sim.RetryPolicy`) enable the resilient dispatcher --
    bounded retry, tile reassignment, core quarantine, global-memory
    rollback; see :mod:`repro.sim.faults` -- and the recovery account
    is returned as ``result.resilience``.  Both ``None`` (the default)
    keeps the historical zero-overhead path.  ``cache`` selects the
    :class:`~repro.sim.ProgramCache` used for lowered programs, their
    summaries and compiled JIT kernels (default: the process-wide
    shared cache; ``None`` disables caching).  ``plan`` selects the
    planning policy (see :mod:`repro.plan.planner`): ``"default"`` is
    the historical heuristic, ``"autotuned"`` consults the persisted
    autotune table (:mod:`repro.plan.autotune`, falling back to the
    default plan for untuned workloads), and an explicit
    :class:`~repro.plan.planner.ExecutionPlan` is validated against the
    workload and dispatched as-is."""


def maxpool(
    x: np.ndarray,
    spec: PoolSpec,
    impl: str = "im2col",
    with_mask: bool = False,
    config: ChipConfig = ASCEND910,
    collect_trace: bool = True,
    execute: str = "numeric",
    model: str | None = None,
    sanitize: bool = False,
    faults: "FaultPlan | FaultInjector | None" = None,
    retry: RetryPolicy | None = None,
    cache: ProgramCache | None = PROGRAM_CACHE,
    plan: "str | ExecutionPlan" = "default",
) -> PoolRunResult:
    """MaxPool forward on the simulated chip.

    ``impl`` is one of ``standard``, ``im2col``, ``expansion``,
    ``xysplit``.  With ``with_mask=True`` the result also carries the
    Argmax mask needed for training (not supported by ``xysplit``).
    ``execute="cycles"`` runs the analytic fast path: cycle counts are
    identical but no data is computed (``output``/``mask`` are ``None``).
    ``execute="jit"`` computes the data through compiled batch kernels
    (:mod:`repro.sim.compile`) -- bit-identical outputs, masks and
    cycle counts, much faster dispatch than the default
    per-instruction interpreter.
    ``model`` picks the timing model (``serial``/``pipelined``); it only
    shapes cycle counts, never the numeric results.  ``sanitize=True``
    runs in the strict memory-checking mode
    (:mod:`repro.sim.sanitizer`); a clean run's report is
    ``result.sanitizer``.
    """
    return run_forward(
        x, spec, forward_impl(impl, "max", with_mask), config, collect_trace,
        execute=execute, model=model, sanitize=sanitize,
        faults=faults, retry=retry, cache=cache, plan=plan,
    )


def avgpool(
    x: np.ndarray,
    spec: PoolSpec,
    impl: str = "im2col",
    config: ChipConfig = ASCEND910,
    collect_trace: bool = True,
    execute: str = "numeric",
    model: str | None = None,
    sanitize: bool = False,
    faults: "FaultPlan | FaultInjector | None" = None,
    retry: RetryPolicy | None = None,
    cache: ProgramCache | None = PROGRAM_CACHE,
    plan: "str | ExecutionPlan" = "default",
) -> PoolRunResult:
    """AvgPool forward (Section V-C): sum reduction plus the element-wise
    division by the window size.  ``execute="jit"`` runs the data pass
    through compiled batch kernels (bit-identical, faster);
    ``sanitize=True`` enables the strict memory-checking mode."""
    return run_forward(
        x, spec, forward_impl(impl, "avg"), config, collect_trace,
        execute=execute, model=model, sanitize=sanitize,
        faults=faults, retry=retry, cache=cache, plan=plan,
    )


def maxpool_backward(
    mask: np.ndarray,
    grad: np.ndarray,
    spec: PoolSpec,
    ih: int,
    iw: int,
    impl: str = "col2im",
    config: ChipConfig = ASCEND910,
    collect_trace: bool = True,
    execute: str = "numeric",
    model: str | None = None,
    sanitize: bool = False,
    faults: "FaultPlan | FaultInjector | None" = None,
    retry: RetryPolicy | None = None,
    cache: ProgramCache | None = PROGRAM_CACHE,
    plan: "str | ExecutionPlan" = "default",
) -> PoolRunResult:
    """MaxPool backward: gradients routed through the Argmax mask, then
    merged (``impl`` = ``standard`` for the vadd scatter, ``col2im`` for
    the Col2Im instruction).  ``execute="jit"`` runs the data pass
    through compiled batch kernels (bit-identical, faster);
    ``sanitize=True`` enables the strict memory-checking mode."""
    return run_backward(
        grad, spec, backward_impl(impl, "max"), ih, iw,
        mask=mask, config=config, collect_trace=collect_trace,
        execute=execute, model=model, sanitize=sanitize,
        faults=faults, retry=retry, cache=cache, plan=plan,
    )


def avgpool_backward(
    grad: np.ndarray,
    spec: PoolSpec,
    ih: int,
    iw: int,
    impl: str = "col2im",
    config: ChipConfig = ASCEND910,
    collect_trace: bool = True,
    execute: str = "numeric",
    model: str | None = None,
    sanitize: bool = False,
    faults: "FaultPlan | FaultInjector | None" = None,
    retry: RetryPolicy | None = None,
    cache: ProgramCache | None = PROGRAM_CACHE,
    plan: "str | ExecutionPlan" = "default",
) -> PoolRunResult:
    """AvgPool backward: scaled gradients broadcast to every window
    position, then merged (no mask needed, Section V-C).
    ``execute="jit"`` runs the data pass through compiled batch
    kernels (bit-identical, faster); ``sanitize=True`` enables the
    strict memory-checking mode."""
    return run_backward(
        grad, spec, backward_impl(impl, "avg"), ih, iw,
        mask=None, config=config, collect_trace=collect_trace,
        execute=execute, model=model, sanitize=sanitize,
        faults=faults, retry=retry, cache=cache, plan=plan,
    )


for _fn in (maxpool, avgpool, maxpool_backward, avgpool_backward):
    _fn.__doc__ = (_fn.__doc__ or "") + _RESILIENCE_DOC
del _fn
