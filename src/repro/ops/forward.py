"""Forward pooling implementations (paper Sections V-A, V-C, VI-B).

Four implementations, each usable for MaxPool (``op="max"``) and
AvgPool (``op="avg"``), the max variants optionally saving the Argmax
mask:

* :class:`StandardForward`  -- Listing 1 lowered by the DSL: the strided
  patch access limits vectorization to the ``C0`` lanes (except for
  stride ``(1, 1)``, where contiguity saturates the mask -- Figure 8a).
* :class:`Im2colForward`    -- the paper's contribution (Listing 2): the
  ``Im2Col`` custom intrinsic loads the tile in the
  ``(Kh, Kw, Oh, Ow, C0)`` layout, the reduction saturates the mask and
  issues only ``Kh*Kw`` vector instructions.
* :class:`ExpansionForward` -- same layout, built with *regular* vector
  copies in the UB instead of the Im2Col load (Figure 8's "Maxpool
  with expansion").
* :class:`XYSplitForward`   -- reduce along W then along H, reusing the
  row reduction (Lai et al.; Figure 8b's "X-Y split").
"""

from __future__ import annotations

from typing import Callable

from ..dtypes import DType
from ..expr import (
    Axis,
    BinOp,
    Load,
    Reduce,
    ScalarOp,
    Stage,
    TensorDecl,
    elementwise_stage,
    fill_stage,
    lower_stage,
    reduce_stage,
)
from ..isa.operand import MemRef
from ..isa.scu import Im2ColParams
from .base import (
    PoolingImpl,
    TileContext,
    im2col_planes_bytes,
    load_input_materialized,
    mask_planes_bytes,
    materialized_input_bytes,
    out_tile_bytes,
    pool_axes,
)


def _finish_average(
    ctx: TileContext,
    out_decl: TensorDecl,
    binding: dict[str, MemRef],
    axes: dict[str, Axis],
) -> None:
    """Divide the accumulated sums by the window size (Section V-C:
    "a new operation is needed to compute an element-wise division")."""
    a = (axes["oh"], axes["ow"], axes["c0"])
    scale = 1.0 / ctx.spec.window
    st = elementwise_stage(
        out_decl,
        a,
        ScalarOp("muls", out_decl[a[0], a[1], a[2]], scale),
        name="avg.div",
    )
    lower_stage(st, binding, ctx.builder.program, ctx.dtype,
                max_repeat=ctx.builder.config.max_repeat)


def _emit_argmax_mask(
    ctx: TileContext,
    out_decl: TensorDecl,
    plane_load: Callable[[int, int, dict[str, Axis]], Load],
    binding: dict[str, MemRef],
    axes: dict[str, Axis],
) -> tuple[TensorDecl, MemRef]:
    """Compute the Argmax mask into contiguous UB planes.

    For each kernel offset, in row-major order::

        eq    = (patch_element == max)          # vcmp_eq
        diff  = eq - found                      # vsub   (in place on eq)
        plane = max(diff, 0)                    # vmax with a zero tensor
        found = found + plane                   # vadd

    ``found`` implements first-occurrence tie breaking, matching
    ``argmax``.  Saving the mask "is independent of the use of Im2Col
    instructions. Still, the Im2Col output shape ... is used to store
    it" (Section V-A) -- both the standard and accelerated variants
    store this same layout.
    """
    b = ctx.builder
    p = ctx.params
    oh, ow = p.out_hw()
    c0 = ctx.c0
    plane = oh * ow * c0
    a3 = (axes["oh"], axes["ow"], axes["c0"])

    mask_ref = b.alloc("UB", p.kh * p.kw * plane, "mask")
    found_ref = b.alloc("UB", plane, "found")
    eq_ref = b.alloc("UB", plane, "eq")
    zero_ref = b.alloc("UB", plane, "zero")
    mask_decl = TensorDecl("mask", (p.kh, p.kw, oh, ow, c0), ctx.dtype)
    found_decl = TensorDecl("found", (oh, ow, c0), ctx.dtype)
    eq_decl = TensorDecl("eq", (oh, ow, c0), ctx.dtype)
    zero_decl = TensorDecl("zero", (oh, ow, c0), ctx.dtype)

    bind = dict(binding)
    bind.update(
        {"mask": mask_ref, "found": found_ref, "eq": eq_ref, "zero": zero_ref}
    )
    mr = b.config.max_repeat

    def emit(stage: Stage) -> None:
        lower_stage(stage, bind, b.program, ctx.dtype, max_repeat=mr)

    emit(fill_stage(found_decl, a3, 0.0, name="mask.found.init"))
    emit(fill_stage(zero_decl, a3, 0.0, name="mask.zero.init"))
    for i in range(p.kh):
        for j in range(p.kw):
            out_load = out_decl[a3[0], a3[1], a3[2]]
            emit(elementwise_stage(
                eq_decl, a3,
                BinOp("eq", plane_load(i, j, axes), out_load),
                name=f"mask.eq[{i},{j}]",
            ))
            emit(elementwise_stage(
                eq_decl, a3,
                BinOp("sub", eq_decl[a3[0], a3[1], a3[2]],
                      found_decl[a3[0], a3[1], a3[2]]),
                name=f"mask.diff[{i},{j}]",
            ))
            emit(Stage(
                out=mask_decl,
                out_idx=(i, j, a3[0], a3[1], a3[2]),
                axes=a3,
                body=BinOp("max", eq_decl[a3[0], a3[1], a3[2]],
                           zero_decl[a3[0], a3[1], a3[2]]),
                name=f"mask.plane[{i},{j}]",
            ))
            emit(elementwise_stage(
                found_decl, a3,
                BinOp("add", found_decl[a3[0], a3[1], a3[2]],
                      mask_decl[i, j, a3[0], a3[1], a3[2]]),
                name=f"mask.found[{i},{j}]",
            ))
    return mask_decl, mask_ref


def _store_mask(ctx: TileContext, mask_ref: MemRef) -> None:
    """DMA each contiguous (kh, kw) mask plane to its global slice."""
    p = ctx.params
    oh, ow = p.out_hw()
    plane = oh * ow * ctx.c0
    assert ctx.gm_mask_planes is not None
    for idx, gm_plane in enumerate(ctx.gm_mask_planes):
        ctx.builder.dma(mask_ref.slice(idx * plane, plane), gm_plane)
    ctx.builder.program.scalar_loop_trips += len(ctx.gm_mask_planes)


def _mask_side_bytes(params: Im2ColParams, dtype: DType) -> int:
    """Extra UB bytes of the mask computation: mask planes + found +
    eq + zero work tensors."""
    return mask_planes_bytes(params, dtype) + 3 * out_tile_bytes(params, dtype)


class StandardForward(PoolingImpl):
    """Listing 1: the plain TVM lowering on the image layout."""

    name = "standard"

    def footprint(self, params: Im2ColParams, dtype: DType) -> dict[str, int]:
        ub = materialized_input_bytes(params, dtype) + out_tile_bytes(params, dtype)
        if self.with_mask:
            ub += _mask_side_bytes(params, dtype)
        return {"UB": ub}

    def build_tile(self, ctx: TileContext) -> None:
        b = ctx.builder
        c0 = ctx.c0
        in_decl, in_ref, eff = load_input_materialized(
            ctx, self.pad_value(ctx.dtype)
        )
        p = ctx.params
        oh, ow = p.out_hw()
        out_ref = b.alloc("UB", oh * ow * c0, "out")
        out_decl = TensorDecl("out", (oh, ow, c0), ctx.dtype)
        ax = pool_axes(p, c0)
        rkh, rkw = ax["kh"], ax["kw"]
        aoh, aow, ac0 = ax["oh"], ax["ow"], ax["c0"]
        body = Reduce(
            self.reduce_op,
            in_decl[aoh * eff.sh + rkh, aow * eff.sw + rkw, ac0],
            (rkh, rkw),
        )
        binding = {"in": in_ref, "out": out_ref}
        lower_stage(
            reduce_stage(out_decl, (aoh, aow, ac0), body, name="pool"),
            binding, b.program, ctx.dtype, max_repeat=b.config.max_repeat,
        )
        if self.op == "avg":
            _finish_average(ctx, out_decl, binding, ax)
        if self.with_mask:
            def plane_load(i: int, j: int, axes: dict[str, Axis]) -> Load:
                return in_decl[
                    axes["oh"] * eff.sh + i, axes["ow"] * eff.sw + j, axes["c0"]
                ]

            _, mask_ref = _emit_argmax_mask(ctx, out_decl, plane_load, binding, ax)
            _store_mask(ctx, mask_ref)
        assert ctx.gm_out is not None
        b.dma(out_ref, ctx.gm_out)


class Im2colForward(PoolingImpl):
    """Listing 2: the Im2Col-load based implementation (the paper's
    contribution).  The layout transform happens *during the load*
    (global -> L1 -> UB), so the memory blow-up exists only in the UB
    and the reduction runs at full mask saturation."""

    name = "im2col"

    def footprint(self, params: Im2ColParams, dtype: DType) -> dict[str, int]:
        ub = im2col_planes_bytes(params, dtype) + out_tile_bytes(params, dtype)
        if self.with_mask:
            ub += _mask_side_bytes(params, dtype)
        return {
            "UB": ub,
            "L1": params.ih * params.iw * dtype.c0 * dtype.itemsize,
        }

    def build_tile(self, ctx: TileContext) -> None:
        b = ctx.builder
        p = ctx.params
        c0 = ctx.c0
        oh, ow = p.out_hw()
        assert ctx.gm_in is not None and ctx.gm_out is not None
        in_l1 = b.alloc("L1", p.ih * p.iw * c0, "in")
        b.dma(ctx.gm_in, in_l1)
        planes_ref = b.alloc(
            "UB", p.kh * p.kw * p.plane_rows() * c0, "planes"
        )
        plane_elems = b.im2col_planes(
            in_l1, planes_ref, p, pad_value=self.pad_value(ctx.dtype)
        )
        planes_decl = TensorDecl(
            "planes",
            (p.kh, p.kw, oh, ow, c0),
            ctx.dtype,
            strides=(p.kw * plane_elems, plane_elems, ow * c0, c0, 1),
        )
        out_ref = b.alloc("UB", oh * ow * c0, "out")
        out_decl = TensorDecl("out", (oh, ow, c0), ctx.dtype)
        ax = pool_axes(p, c0)
        rkh, rkw = ax["kh"], ax["kw"]
        aoh, aow, ac0 = ax["oh"], ax["ow"], ax["c0"]
        body = Reduce(
            self.reduce_op, planes_decl[rkh, rkw, aoh, aow, ac0], (rkh, rkw)
        )
        binding = {"planes": planes_ref, "out": out_ref}
        lower_stage(
            reduce_stage(out_decl, (aoh, aow, ac0), body, name="pool"),
            binding, b.program, ctx.dtype, max_repeat=b.config.max_repeat,
        )
        if self.op == "avg":
            _finish_average(ctx, out_decl, binding, ax)
        if self.with_mask:
            def plane_load(i: int, j: int, axes: dict[str, Axis]) -> Load:
                return planes_decl[i, j, axes["oh"], axes["ow"], axes["c0"]]

            _, mask_ref = _emit_argmax_mask(ctx, out_decl, plane_load, binding, ax)
            _store_mask(ctx, mask_ref)
        b.dma(out_ref, ctx.gm_out)


class ExpansionForward(PoolingImpl):
    """The Im2col layout built with *regular* vector instructions after
    the input already sits in the UB (Figure 8's "Maxpool with
    expansion").  Pays for the transform as explicit vector work, which
    is why it trails the Im2Col load."""

    name = "expansion"

    def footprint(self, params: Im2ColParams, dtype: DType) -> dict[str, int]:
        ub = (
            materialized_input_bytes(params, dtype)
            + mask_planes_bytes(params, dtype)  # the expansion planes
            + out_tile_bytes(params, dtype)
        )
        if self.with_mask:
            ub += _mask_side_bytes(params, dtype)
        return {"UB": ub}

    def build_tile(self, ctx: TileContext) -> None:
        b = ctx.builder
        c0 = ctx.c0
        in_decl, in_ref, eff = load_input_materialized(
            ctx, self.pad_value(ctx.dtype)
        )
        p = ctx.params
        oh, ow = p.out_hw()
        exp_ref = b.alloc("UB", p.kh * p.kw * oh * ow * c0, "exp")
        exp_decl = TensorDecl("exp", (p.kh, p.kw, oh, ow, c0), ctx.dtype)
        ax = pool_axes(p, c0)
        akh, akw = ax["kh"], ax["kw"]
        aoh, aow, ac0 = ax["oh"], ax["ow"], ax["c0"]
        binding = {"in": in_ref, "exp": exp_ref}
        # The expansion: regular strided copies into the Im2col layout.
        lower_stage(
            Stage(
                out=exp_decl,
                out_idx=(akh, akw, aoh, aow, ac0),
                axes=(akh, akw, aoh, aow, ac0),
                body=in_decl[aoh * eff.sh + akh, aow * eff.sw + akw, ac0],
                name="expand",
            ),
            binding, b.program, ctx.dtype, max_repeat=b.config.max_repeat,
        )
        out_ref = b.alloc("UB", oh * ow * c0, "out")
        out_decl = TensorDecl("out", (oh, ow, c0), ctx.dtype)
        binding["out"] = out_ref
        rkh, rkw = Axis("rkh", p.kh), Axis("rkw", p.kw)
        body = Reduce(
            self.reduce_op, exp_decl[rkh, rkw, aoh, aow, ac0], (rkh, rkw)
        )
        lower_stage(
            reduce_stage(out_decl, (aoh, aow, ac0), body, name="pool"),
            binding, b.program, ctx.dtype, max_repeat=b.config.max_repeat,
        )
        if self.op == "avg":
            _finish_average(ctx, out_decl, binding, ax)
        if self.with_mask:
            def plane_load(i: int, j: int, axes: dict[str, Axis]) -> Load:
                return exp_decl[i, j, axes["oh"], axes["ow"], axes["c0"]]

            _, mask_ref = _emit_argmax_mask(ctx, out_decl, plane_load, binding, ax)
            _store_mask(ctx, mask_ref)
        assert ctx.gm_out is not None
        b.dma(out_ref, ctx.gm_out)


class XYSplitForward(PoolingImpl):
    """Reduce along the width first, then along the height, reusing the
    row reduction (Lai et al. [7]; Section VI-B).  The intermediate
    tensor is materialised because "in TVM, all computations generate a
    new tensor, and thus the in-place approach is not possible"."""

    name = "xysplit"
    #: The two-pass reduction never sees a whole window at once, so the
    #: Argmax mask cannot be produced; declared here so the registry's
    #: variant enumeration skips (xysplit, with_mask) combinations.
    supports_mask = False

    @staticmethod
    def _rows_used(params: Im2ColParams) -> int:
        oh, _ = params.out_hw()
        return (oh - 1) * params.sh + params.kh

    def footprint(self, params: Im2ColParams, dtype: DType) -> dict[str, int]:
        _, ow = params.out_hw()
        tmp = self._rows_used(params) * ow * dtype.c0 * dtype.itemsize
        return {
            "UB": materialized_input_bytes(params, dtype)
            + tmp
            + out_tile_bytes(params, dtype)
        }

    def build_tile(self, ctx: TileContext) -> None:
        b = ctx.builder
        c0 = ctx.c0
        in_decl, in_ref, eff = load_input_materialized(
            ctx, self.pad_value(ctx.dtype)
        )
        p = ctx.params
        oh, ow = p.out_hw()
        rows = self._rows_used(p)
        tmp_ref = b.alloc("UB", rows * ow * c0, "tmp")
        tmp_decl = TensorDecl("tmp", (rows, ow, c0), ctx.dtype)
        out_ref = b.alloc("UB", oh * ow * c0, "out")
        out_decl = TensorDecl("out", (oh, ow, c0), ctx.dtype)
        ax = pool_axes(p, c0)
        aoh, aow, ac0 = ax["oh"], ax["ow"], ax["c0"]
        ah = Axis("h", rows)
        rkw = Axis("rkw", p.kw)
        rkh = Axis("rkh", p.kh)
        binding = {"in": in_ref, "tmp": tmp_ref, "out": out_ref}
        mr = b.config.max_repeat
        # Stage 1: reduce along the width of each patch row.
        lower_stage(
            reduce_stage(
                tmp_decl, (ah, aow, ac0),
                Reduce(self.reduce_op, in_decl[ah, aow * eff.sw + rkw, ac0], (rkw,)),
                name="xy.rows",
            ),
            binding, b.program, ctx.dtype, max_repeat=mr,
        )
        # Stage 2: reduce the row results along the height.
        lower_stage(
            reduce_stage(
                out_decl, (aoh, aow, ac0),
                Reduce(self.reduce_op, tmp_decl[aoh * eff.sh + rkh, aow, ac0], (rkh,)),
                name="xy.cols",
            ),
            binding, b.program, ctx.dtype, max_repeat=mr,
        )
        if self.op == "avg":
            _finish_average(ctx, out_decl, binding, ax)
        assert ctx.gm_out is not None
        b.dma(out_ref, ctx.gm_out)
