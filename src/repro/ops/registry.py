"""Implementation registry: names -> implementation factories.

The benches and examples select implementations by the names used in
the paper's figures ("Maxpool", "Maxpool with Im2col", "Maxpool with
expansion", "X-Y split"; "Maxpool backward", "... with Col2im").
"""

from __future__ import annotations

from typing import Callable

from ..errors import ReproError
from .backward import Col2imBackward, StandardBackward
from .base import PoolingImpl
from .forward import (
    ExpansionForward,
    Im2colForward,
    StandardForward,
    XYSplitForward,
)

FORWARD_IMPLS: dict[str, Callable[..., PoolingImpl]] = {
    "standard": StandardForward,
    "im2col": Im2colForward,
    "expansion": ExpansionForward,
    "xysplit": XYSplitForward,
}

BACKWARD_IMPLS: dict[str, Callable[..., PoolingImpl]] = {
    "standard": StandardBackward,
    "col2im": Col2imBackward,
}


def forward_impl(
    name: str, op: str = "max", with_mask: bool = False
) -> PoolingImpl:
    """Instantiate a forward implementation by name."""
    try:
        factory = FORWARD_IMPLS[name]
    except KeyError:
        raise ReproError(
            f"unknown forward implementation {name!r}; available: "
            f"{sorted(FORWARD_IMPLS)}"
        ) from None
    return factory(op=op, with_mask=with_mask)


def backward_impl(name: str, op: str = "max") -> PoolingImpl:
    """Instantiate a backward implementation by name."""
    try:
        factory = BACKWARD_IMPLS[name]
    except KeyError:
        raise ReproError(
            f"unknown backward implementation {name!r}; available: "
            f"{sorted(BACKWARD_IMPLS)}"
        ) from None
    return factory(op=op)


#: Pooling ops every implementation supports.
POOL_OPS: tuple[str, ...] = ("max", "avg")


def forward_variants(
    names: tuple[str, ...] | list[str] | None = None,
) -> list[tuple[str, str, bool]]:
    """Every legal registered forward ``(name, op, with_mask)`` combo.

    Introspects the registry rather than hard-coding the capability
    matrix: mask variants are enumerated only for implementations whose
    class declares :attr:`~repro.ops.base.PoolingImpl.supports_mask`
    (and only for ``op="max"`` -- the Argmax mask does not exist for
    AvgPool).  The differential fuzzer (:mod:`repro.validate`) sweeps
    exactly this list, so a newly registered implementation is fuzzed
    automatically.
    """
    out: list[tuple[str, str, bool]] = []
    for name, factory in FORWARD_IMPLS.items():
        if names is not None and name not in names:
            continue
        for op in POOL_OPS:
            out.append((name, op, False))
        if getattr(factory, "supports_mask", True):
            out.append((name, "max", True))
    return out


def bit_exact_variants(
    kind: str, op: str, with_mask: bool = False, requested: str | None = None
) -> list[str]:
    """Implementation names whose numeric outputs are bit-identical and
    therefore freely interchangeable by the autotuner.

    Forward MaxPool variants are asserted bit-exact against the golden
    model -- outputs *and* masks -- by every differential fuzz route
    (``exact=op == "max"`` in :mod:`repro.validate`), so they form one
    equivalence class (mask workloads: the mask-capable subset).
    AvgPool forward variants only agree within fp16-summation tolerance
    cross-impl, and backward variants regroup accumulate-DMA sums, so
    those classes collapse to the single ``requested`` variant.
    """
    if kind == "fwd" and op == "max":
        names = [
            name
            for name, factory in FORWARD_IMPLS.items()
            if not with_mask or getattr(factory, "supports_mask", True)
        ]
        if requested is not None and requested not in names:
            names.insert(0, requested)
        return names
    if requested is None:
        raise ReproError(
            f"{kind}/{op} has no cross-variant bit-exactness guarantee; "
            "a requested variant is required"
        )
    return [requested]


def backward_variants(
    names: tuple[str, ...] | list[str] | None = None,
) -> list[tuple[str, str]]:
    """Every registered backward ``(name, op)`` combination."""
    return [
        (name, op)
        for name in BACKWARD_IMPLS
        if names is None or name in names
        for op in POOL_OPS
    ]
