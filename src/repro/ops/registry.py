"""Implementation registry: names -> implementation factories.

The benches and examples select implementations by the names used in
the paper's figures ("Maxpool", "Maxpool with Im2col", "Maxpool with
expansion", "X-Y split"; "Maxpool backward", "... with Col2im").
"""

from __future__ import annotations

from typing import Callable

from ..errors import ReproError
from .backward import Col2imBackward, StandardBackward
from .base import PoolingImpl
from .forward import (
    ExpansionForward,
    Im2colForward,
    StandardForward,
    XYSplitForward,
)

FORWARD_IMPLS: dict[str, Callable[..., PoolingImpl]] = {
    "standard": StandardForward,
    "im2col": Im2colForward,
    "expansion": ExpansionForward,
    "xysplit": XYSplitForward,
}

BACKWARD_IMPLS: dict[str, Callable[..., PoolingImpl]] = {
    "standard": StandardBackward,
    "col2im": Col2imBackward,
}


def forward_impl(
    name: str, op: str = "max", with_mask: bool = False
) -> PoolingImpl:
    """Instantiate a forward implementation by name."""
    try:
        factory = FORWARD_IMPLS[name]
    except KeyError:
        raise ReproError(
            f"unknown forward implementation {name!r}; available: "
            f"{sorted(FORWARD_IMPLS)}"
        ) from None
    return factory(op=op, with_mask=with_mask)


def backward_impl(name: str, op: str = "max") -> PoolingImpl:
    """Instantiate a backward implementation by name."""
    try:
        factory = BACKWARD_IMPLS[name]
    except KeyError:
        raise ReproError(
            f"unknown backward implementation {name!r}; available: "
            f"{sorted(BACKWARD_IMPLS)}"
        ) from None
    return factory(op=op)
