"""Data-type descriptors for the simulated DaVinci architecture.

DaVinci's fractal memory layout fixes the innermost ``C0`` dimension so
that one *data-fractal* (16 rows of ``C0`` elements) always holds 4096
bits of data (Section III-B of the paper).  For ``float16`` this gives
``C0 = 16``; for ``uint8`` it gives ``C0 = 32``.

The paper's evaluation uses ``float16`` exclusively; this module also
carries the other types the hardware supports so layout code can be
exercised against them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import LayoutError

#: Bits of payload in one data-fractal (16 x C0 elements).
FRACTAL_BITS = 4096

#: Rows in a data-fractal -- also the number of patches an Im2Col load
#: selects per issued fractal (Section III-C, task (iii)).
FRACTAL_ROWS = 16

#: Bytes in one vector-unit block; the 128-bit mask covers 8 blocks of
#: 16 fp16 lanes (Section III-A).
BLOCK_BYTES = 32

#: Width of the vector mask register in lanes-of-smallest-granularity.
VECTOR_MASK_BITS = 128

#: Bytes processed by one vector repeat iteration (8 blocks).
VECTOR_BYTES_PER_REPEAT = 256


@dataclass(frozen=True)
class DType:
    """Description of an element type as seen by the simulated hardware.

    Attributes
    ----------
    name:
        Canonical lower-case name (``"float16"``...).
    np_dtype:
        The NumPy dtype used to store simulated buffer contents.
    itemsize:
        Bytes per element.
    c0:
        Length of the fractal ``C0`` dimension for this type, chosen so
        that ``FRACTAL_ROWS * c0 * itemsize * 8 == FRACTAL_BITS``.
    """

    name: str
    np_dtype: np.dtype
    itemsize: int
    c0: int

    def __post_init__(self) -> None:
        if FRACTAL_ROWS * self.c0 * self.itemsize * 8 != FRACTAL_BITS:
            raise LayoutError(
                f"dtype {self.name}: C0={self.c0} does not yield a "
                f"{FRACTAL_BITS}-bit fractal"
            )

    @property
    def lanes_per_block(self) -> int:
        """Elements held by one 32-byte vector block."""
        return BLOCK_BYTES // self.itemsize

    @property
    def lanes_per_repeat(self) -> int:
        """Elements processed by one vector repeat (8 blocks)."""
        return VECTOR_BYTES_PER_REPEAT // self.itemsize

    @property
    def min_value(self) -> float:
        """Most negative finite value; used to seed max reductions."""
        if np.issubdtype(self.np_dtype, np.floating):
            return float(np.finfo(self.np_dtype).min)
        return int(np.iinfo(self.np_dtype).min)

    @property
    def max_value(self) -> float:
        if np.issubdtype(self.np_dtype, np.floating):
            return float(np.finfo(self.np_dtype).max)
        return int(np.iinfo(self.np_dtype).max)

    def fractal_bytes(self) -> int:
        """Bytes in one data-fractal of this type (always 512)."""
        return FRACTAL_ROWS * self.c0 * self.itemsize


FLOAT16 = DType("float16", np.dtype(np.float16), 2, 16)
FLOAT32 = DType("float32", np.dtype(np.float32), 4, 8)
UINT8 = DType("uint8", np.dtype(np.uint8), 1, 32)
INT8 = DType("int8", np.dtype(np.int8), 1, 32)

_BY_NAME = {d.name: d for d in (FLOAT16, FLOAT32, UINT8, INT8)}


def dtype_by_name(name: str) -> DType:
    """Look up a :class:`DType` by its canonical name.

    Raises :class:`LayoutError` for unknown names.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise LayoutError(f"unknown dtype name {name!r}") from None


def dtype_of(array: np.ndarray) -> DType:
    """Return the :class:`DType` descriptor matching a NumPy array."""
    for d in _BY_NAME.values():
        if d.np_dtype == array.dtype:
            return d
    raise LayoutError(f"unsupported array dtype {array.dtype}")
