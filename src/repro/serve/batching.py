"""Request/response vocabulary and geometry-keyed coalescing.

A pooling fleet's traffic is heavily repetitive: the same layer
geometries arrive over and over from different tenants (every user of
an InceptionV3 deployment pools the same shapes).  The simulator's
whole perf substrate -- the program cache, ``Program.relocate`` clones
and memoized JIT kernels -- amortizes work *per unique geometry*, so
the serving layer's job is to make sure same-geometry requests land
where that amortization already happened.  That is what the
:class:`Coalescer` does: it maps each request's :func:`geometry_key`
to the worker that first served it, so every subsequent request with
the same key reuses that worker's cached program, summaries and
compiled kernel instead of warming a second cache from scratch.  This
is the service-level analogue of how indirect-convolution runtimes
reuse the indirection buffer across calls (Dukhan, arXiv 1907.02129)
and how implicit-im2col stacks batch same-shape work (arXiv
2110.03901).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

import numpy as np

from ..errors import LayoutError, ServeError
from ..ops.spec import PoolSpec
from ..sim.scheduler import resolve_model

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..ops.base import PoolRunResult

#: The operator kinds a request may name, mirroring :mod:`repro.ops.api`.
KINDS = ("maxpool", "avgpool", "maxpool_backward", "avgpool_backward")
_FORWARD_KINDS = ("maxpool", "avgpool")
_EXECUTE_MODES = ("numeric", "cycles", "jit")
#: Plan policies a request may carry.  Explicit ExecutionPlan objects
#: stay a library-level feature: requests are a wire format, and the
#: named policies keep the geometry key hashable and small.
_PLAN_POLICIES = ("default", "autotuned")


@dataclass(frozen=True, eq=False)
class PoolRequest:
    """One operator invocation travelling through the service.

    ``x`` is the forward input or the backward incoming gradient, in
    the fractal ``(N, C1, H, W, C0)`` layout -- exactly what the
    matching :mod:`repro.ops.api` entry point takes.  Validation
    happens at construction, so a malformed request is rejected at
    submission time rather than inside a worker process.

    ``deadline_ms`` is the caller's end-to-end latency budget: the
    service enforces it at admission (an already-expired deadline is
    rejected immediately), at dequeue (it expired while queued) and --
    for in-flight requests -- from the stall watchdog, failing the
    request with a structured :class:`~repro.errors.DeadlineError`
    instead of letting it wait forever.  ``None`` (the default) means
    no budget.

    The ``chaos_*`` fields are the process-level analogues of the
    chip-level fault classes in :mod:`repro.sim.faults`, used by tests
    and chaos drills (all default to "never"; harmless in production):

    * ``chaos_crash_attempts`` -- :class:`~repro.sim.faults.Crash`: a
      worker executing one of the listed attempt numbers kills itself
      instead of replying.
    * ``chaos_stall_attempts`` -- :class:`~repro.sim.faults.Stall`: the
      worker *hangs forever* on the listed attempts, alive but silent
      -- the fault class only the stall watchdog can see.
    * ``chaos_slow_ms`` / ``chaos_slow_attempts`` -- tail latency: the
      worker sleeps ``chaos_slow_ms`` before executing, on the listed
      attempts (every attempt when the tuple is empty).
    * ``chaos_drop_reply`` -- the worker executes the request but never
      replies on the listed attempts, orphaning the dispatch (covered
      by hedging or the stall watchdog).
    * ``chaos_corrupt_output`` -- silent data corruption at the *core*:
      a worker whose slot is listed flips one deterministic bit of the
      result **before** fingerprinting it, so the reply is
      self-consistent and only dual-execution audits or known-answer
      probes (:mod:`repro.serve.integrity`) can catch it.
    * ``chaos_corrupt_payload`` -- corruption *in transit*: a listed
      worker flips one bit **after** fingerprinting, modelling a
      corrupted pickle payload; the service-side fingerprint
      re-verification catches it on arrival.

    Both corruption hooks are keyed by worker slot and salted by
    ``(worker, attempt)`` when choosing the bit, stay excluded from
    :func:`geometry_key` like every chaos field, and are no-ops for
    cycles-only results (no arrays to corrupt).

    ``fingerprint`` is service-managed: :class:`~repro.serve.service.
    PoolService` sets it on admission when an ``IntegrityConfig`` is
    active, and workers respond by attaching a CRC-32 digest
    (:func:`repro.sim.fingerprint.fingerprint_result`) to the reply.
    """

    kind: str
    x: np.ndarray
    spec: PoolSpec
    impl: str = "im2col"
    with_mask: bool = False
    mask: np.ndarray | None = None
    ih: int | None = None
    iw: int | None = None
    execute: str = "numeric"
    model: str | None = None
    #: Planning policy forwarded to the ops layer: ``"default"`` or
    #: ``"autotuned"`` (workers consult their own lazily-loaded copy of
    #: the persisted autotune table; untuned workloads fall back to the
    #: default plan, so the flag is always safe).
    plan: str = "default"
    collect_trace: bool = False
    tenant: str = "default"
    #: End-to-end latency budget in milliseconds (None = unbounded).
    deadline_ms: float | None = None
    chaos_crash_attempts: tuple[int, ...] = ()
    chaos_stall_attempts: tuple[int, ...] = ()
    chaos_slow_ms: float = 0.0
    chaos_slow_attempts: tuple[int, ...] = ()
    chaos_drop_reply: tuple[int, ...] = ()
    chaos_corrupt_output: tuple[int, ...] = ()
    chaos_corrupt_payload: tuple[int, ...] = ()
    #: Ask the worker for a result fingerprint (set by the service when
    #: integrity checking is on; excluded from the geometry key).
    fingerprint: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ServeError(
                f"unknown request kind {self.kind!r}; expected one of "
                f"{KINDS}"
            )
        if self.execute not in _EXECUTE_MODES:
            raise ServeError(
                f"unknown execution mode {self.execute!r}; expected one "
                f"of {_EXECUTE_MODES}"
            )
        if self.plan not in _PLAN_POLICIES:
            raise ServeError(
                f"unknown plan policy {self.plan!r}; expected one of "
                f"{_PLAN_POLICIES}"
            )
        if not isinstance(self.x, np.ndarray) or self.x.ndim != 5:
            raise LayoutError(
                "request payload must be a rank-5 NC1HWC0 tensor, got "
                f"{getattr(self.x, 'shape', type(self.x).__name__)}"
            )
        if self.kind in _FORWARD_KINDS:
            if self.ih is not None or self.iw is not None:
                raise ServeError(
                    f"{self.kind} takes no ih/iw (they are implied by "
                    "the input shape)"
                )
            if self.mask is not None:
                raise ServeError(f"{self.kind} takes no mask")
            if self.with_mask and self.kind != "maxpool":
                raise ServeError("the Argmax mask only exists for MaxPool")
        else:
            if self.ih is None or self.iw is None:
                raise ServeError(
                    f"{self.kind} requires the input-image extents ih/iw"
                )
            if self.with_mask:
                raise ServeError(
                    "with_mask is a forward-only flag; backward requests "
                    "supply the mask itself"
                )
            if self.kind == "maxpool_backward" and self.mask is None:
                raise ServeError(
                    "maxpool_backward requires the Argmax mask the "
                    "forward pass saved"
                )
            if self.kind == "avgpool_backward" and self.mask is not None:
                raise ServeError("avgpool_backward takes no mask")
        if self.deadline_ms is not None and not (
            isinstance(self.deadline_ms, (int, float))
            and self.deadline_ms == self.deadline_ms  # not NaN
        ):
            raise ServeError("deadline_ms must be a number (or None)")
        if self.chaos_slow_ms < 0:
            raise ServeError("chaos_slow_ms must be >= 0")
        for name in (
            "chaos_crash_attempts",
            "chaos_stall_attempts",
            "chaos_slow_attempts",
            "chaos_drop_reply",
            "chaos_corrupt_output",
            "chaos_corrupt_payload",
        ):
            if not all(a >= 0 for a in getattr(self, name)):
                raise ServeError(f"{name} must be non-negative")


def geometry_key(request: PoolRequest) -> Hashable:
    """The coalescing key: everything the lowering/JIT work depends on.

    Two requests with equal keys exercise the same cached programs,
    summaries and compiled kernels inside a worker -- only the tensor
    *values* differ -- so routing them to the same worker turns the
    second request into pure cache hits.  Mirrors
    :func:`repro.sim.progcache.program_key` minus the chip config
    (one service serves one config) plus the request kind/mask flags
    the api layer folds into the impl ``describe()`` string.
    """
    return (
        request.kind,
        request.impl,
        request.with_mask,
        request.spec,
        request.x.shape,
        str(request.x.dtype),
        (request.ih, request.iw),
        request.execute,
        resolve_model(request.model).name,
        request.plan,
    )


@dataclass
class PoolResponse:
    """What the service hands back for one request.

    ``result`` is the worker's :class:`~repro.ops.base.PoolRunResult`,
    detached (trace payloads dropped) unless the request asked for
    traces -- byte-identical outputs/masks/cycles to calling
    :mod:`repro.ops.api` directly.  The envelope records where and how
    the request ran: the worker slot, how many dispatches it took
    (>1 means crash recovery or a hedge kicked in), whether geometry
    coalescing routed it to an already-warm worker, whether a hedged
    (speculative duplicate) dispatch was in play, which degradations
    load shedding applied (empty = none), and the service-side
    latency.

    With an active :class:`~repro.serve.integrity.IntegrityConfig` the
    envelope also carries the integrity metadata: ``fingerprint`` is
    the worker-computed CRC-32 digest of the result
    (:func:`repro.sim.fingerprint.fingerprint_result`),
    ``fingerprint_ok`` records that the service re-verified it on
    arrival (a response never reaches the caller with a failed
    verification -- the dispatch is retried instead), and ``audited``
    marks responses the deterministic sampler selected for
    dual-execution audit on a different worker.  All three stay at
    their ``None``/``False`` defaults when integrity checking is off,
    keeping the envelope byte-identical to the pre-integrity format.
    """

    request_id: int
    tenant: str
    worker: int
    attempts: int
    coalesced: bool
    result: "PoolRunResult"
    submitted_at: float
    completed_at: float
    hedged: bool = False
    degraded: tuple[str, ...] = ()
    fingerprint: int | None = None
    fingerprint_ok: bool | None = None
    audited: bool = False

    @property
    def latency(self) -> float:
        """Seconds from admission to completion (queue + compute)."""
        return self.completed_at - self.submitted_at

    @property
    def output(self) -> np.ndarray | None:
        return self.result.output

    @property
    def mask(self) -> np.ndarray | None:
        return self.result.mask

    @property
    def cycles(self) -> int:
        return self.result.cycles


@dataclass
class Coalescer:
    """Geometry-key -> worker-slot affinity map with hit accounting.

    Purely service-side state (worker processes never see it).  A key
    observed for the first time is *bound* to whichever worker the
    scheduler picked; subsequent routes of the same key return that
    worker -- a *coalescing hit*, meaning the request will be served
    by a warm program cache and (under ``execute="jit"``) a memoized
    compiled kernel.  When a worker dies its bindings are forgotten,
    so a respawned or different worker re-warms on the next request.
    """

    _affinity: dict[Hashable, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def route(self, key: Hashable) -> int | None:
        """The worker this key is bound to, or ``None`` if unseen."""
        return self._affinity.get(key)

    def bind(self, key: Hashable, worker: int, *, hit: bool) -> None:
        """Record the routing decision for ``key`` and count it."""
        self._affinity[key] = worker
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def forget_worker(self, worker: int) -> int:
        """Drop every binding to ``worker`` (it died); returns count."""
        stale = [k for k, w in self._affinity.items() if w == worker]
        for k in stale:
            del self._affinity[k]
        return len(stale)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._affinity)
