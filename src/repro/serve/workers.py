"""Worker processes: one simulated chip + program cache per process.

Each worker is a plain ``multiprocessing`` process running
:func:`worker_main`: it pulls request messages off its private inbox,
executes them through the public :mod:`repro.ops.api` entry points
(so served results are byte-identical to direct calls by
construction), and pushes slim, picklable results onto its private
outbox.  The reply queue is deliberately *per worker* (and a plain
``SimpleQueue``, so there is no feeder thread between the worker and
the pipe): the stall watchdog terminates hung workers with SIGTERM,
and a process killed mid-write dies holding its queue's write lock.
With one shared reply queue that single poisoned semaphore would wedge
every other worker's replies forever -- a fleet-wide outage from one
kill.  A private queue dies with its worker and is replaced on
respawn, exactly like the inbox.  Because every Python process has its
own module state, each
worker automatically owns a private :data:`repro.sim.PROGRAM_CACHE` --
the coalescer's whole job (:mod:`repro.serve.batching`) is to route
same-geometry requests back to the worker whose cache is already warm.

Crash semantics are deliberately blunt: a chaos-marked request (or an
explicit crash control message) terminates the process with
``os._exit``, exactly like a seg-faulting accelerator driver -- no
exception travels back, the parent only sees the process die.  The
service layer's recovery (:mod:`repro.serve.service`) mirrors the
chip-level resilient dispatcher in :mod:`repro.sim.faults`: bounded
retry on another worker, quarantine after repeated failures, respawn.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from dataclasses import dataclass, field, replace as _dc_replace
from typing import TYPE_CHECKING, Any

import numpy as np

from ..config import ASCEND910, ChipConfig
from ..errors import ReproError, ServeError
from ..sim.fingerprint import fingerprint_result
from .batching import PoolRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..ops.base import PoolRunResult

#: Exit code of a chaos-crashed worker (distinguishable from clean 0).
CRASH_EXIT_CODE = 17

#: Inbox message tags.
MSG_RUN = "run"
MSG_CRASH = "crash"
MSG_STATS = "stats"


def execute_request(
    request: PoolRequest, config: ChipConfig = ASCEND910
) -> "PoolRunResult":
    """Run one request through the public operator API.

    The single execution path shared by worker processes and the
    serve tests' byte-identity oracle: whatever this returns *is* what
    a direct :mod:`repro.ops.api` call returns, because it is one.
    """
    from ..ops import api

    common = dict(
        config=config,
        collect_trace=request.collect_trace,
        execute=request.execute,
        model=request.model,
        plan=request.plan,
    )
    if request.kind == "maxpool":
        return api.maxpool(
            request.x, request.spec, impl=request.impl,
            with_mask=request.with_mask, **common,
        )
    if request.kind == "avgpool":
        return api.avgpool(request.x, request.spec, impl=request.impl, **common)
    if request.kind == "maxpool_backward":
        return api.maxpool_backward(
            request.mask, request.x, request.spec, request.ih, request.iw,
            impl=request.impl, **common,
        )
    if request.kind == "avgpool_backward":
        return api.avgpool_backward(
            request.x, request.spec, request.ih, request.iw,
            impl=request.impl, **common,
        )
    raise ServeError(f"unknown request kind {request.kind!r}")


def _flip_one_bit(arr: np.ndarray, salt: bytes) -> np.ndarray:
    """A copy of ``arr`` with one deterministically-chosen bit flipped.

    The byte and bit positions derive from a CRC-32 of ``salt`` (the
    worker/attempt coordinates plus a stage tag), so a chaos run
    replays bit-identically under the same placement -- the same
    determinism contract as :class:`repro.sim.faults.BitFlip`.
    """
    out = np.ascontiguousarray(arr).copy()
    raw = out.view(np.uint8).reshape(-1)
    raw[zlib.crc32(salt) % raw.size] ^= np.uint8(
        1 << (zlib.crc32(salt + b"/bit") % 8)
    )
    return out


def corrupt_result(
    result: "PoolRunResult", worker_id: int, attempt: int, stage: str
) -> "PoolRunResult":
    """Chaos hook: a copy of ``result`` with one flipped bit.

    Flips the output tensor when present, else the mask; a cycles-only
    result (no arrays) is returned unchanged -- there is nothing to
    corrupt.  ``stage`` salts the position so output- and
    payload-stage corruptions of the same dispatch differ.
    """
    salt = b"corrupt/%s/%d/%d" % (stage.encode("ascii"), worker_id, attempt)
    if result.output is not None:
        return _dc_replace(result, output=_flip_one_bit(result.output, salt))
    if result.mask is not None:
        return _dc_replace(result, mask=_flip_one_bit(result.mask, salt))
    return result


def cache_snapshot() -> dict[str, int]:
    """This process's shared-program-cache counters (for observability)."""
    from ..sim import PROGRAM_CACHE

    s = PROGRAM_CACHE.stats
    return {
        "entries": len(PROGRAM_CACHE),
        "hits": s.hits,
        "misses": s.misses,
        "jit_hits": s.jit_hits,
        "jit_misses": s.jit_misses,
        "summary_fallbacks": s.summary_fallbacks,
    }


def worker_main(
    worker_id: int, inbox: Any, outbox: Any, config: ChipConfig
) -> None:
    """The worker process loop (module-level so ``spawn`` can pickle it).

    Replies carry ``(tag, req_id, worker_id, attempt, payload...)`` so
    the service can discard stale messages after a retry reassigned
    the request.  Library errors travel back by name+message (the
    exception classes all pickle, but name+message is version-proof
    and enough to re-raise a :class:`~repro.errors.ServeError`).
    """
    from ..sim import PROGRAM_CACHE

    # Under the fork start method the child inherits whatever the parent
    # process had cached; start from a clean slate so every worker's
    # cache holds exactly what *its* requests warmed (the counters
    # reported by cache_snapshot are meaningless otherwise).
    PROGRAM_CACHE.clear()
    while True:
        msg = inbox.get()
        if msg is None:
            return
        tag = msg[0]
        if tag == MSG_CRASH:
            os._exit(CRASH_EXIT_CODE)
        if tag == MSG_STATS:
            outbox.put((MSG_STATS, msg[1], worker_id, cache_snapshot()))
            continue
        _, req_id, attempt, request = msg
        if attempt in request.chaos_crash_attempts:
            os._exit(CRASH_EXIT_CODE)
        if attempt in request.chaos_stall_attempts:
            # Hang forever, alive: the process keeps existing (liveness
            # checks stay green) but never replies and never reads its
            # inbox again -- exactly the fault class only the service's
            # stall watchdog can see.  SIGTERM (the watchdog's remedy)
            # still terminates the wait.
            threading.Event().wait()
        if request.chaos_slow_ms > 0 and (
            not request.chaos_slow_attempts
            or attempt in request.chaos_slow_attempts
        ):
            time.sleep(request.chaos_slow_ms / 1e3)
        try:
            result = execute_request(request, config)
            if not request.collect_trace:
                result = result.detach()
            # Silent-corruption chaos hooks (see PoolRequest): a corrupt
            # *core* flips a bit before the fingerprint is taken (the
            # reply stays self-consistent; only audits/KAT probes can
            # see it), a corrupt *transport* flips one after (caught by
            # the service-side fingerprint re-verification).
            if worker_id in request.chaos_corrupt_output:
                result = corrupt_result(result, worker_id, attempt, "output")
            fp = fingerprint_result(result) if request.fingerprint else None
            if worker_id in request.chaos_corrupt_payload:
                result = corrupt_result(result, worker_id, attempt, "payload")
            if attempt in request.chaos_drop_reply:
                continue  # executed, but the reply vanishes
            outbox.put(("ok", req_id, worker_id, attempt, result, fp))
        except ReproError as exc:
            outbox.put(
                ("err", req_id, worker_id, attempt,
                 type(exc).__name__, str(exc))
            )
        except Exception as exc:  # pragma: no cover - defensive
            outbox.put(
                ("err", req_id, worker_id, attempt,
                 type(exc).__name__, str(exc))
            )


@dataclass
class WorkerHandle:
    """Service-side view of one worker slot.

    A *slot* is stable across respawns (slot 2 dying and being
    respawned yields a fresh process in slot 2 with a bumped
    ``generation``); ``failures`` accumulates across generations and
    drives quarantine, mirroring
    :attr:`repro.sim.faults.RetryPolicy.quarantine_after`.
    """

    slot: int
    process: Any
    inbox: Any
    outbox: Any
    generation: int = 0
    alive: bool = True
    quarantined: bool = False
    #: Set by the stall watchdog after it terminated a hung-but-alive
    #: body; cleared by the respawn (the fresh handle starts False).
    suspected_stalled: bool = False
    failures: int = 0
    inflight: int = 0
    served: int = 0

    @property
    def healthy(self) -> bool:
        return (
            self.alive and not self.quarantined
            and not self.suspected_stalled
        )

    def send(self, msg: Any) -> None:
        if not self.alive:
            raise ServeError(f"worker slot {self.slot} is not alive")
        self.inbox.put(msg)

    def retire_inbox(self) -> None:
        """Release the inbox of a dead (or shut-down) worker.

        ``cancel_join_thread`` first: the inbox pipe may still hold
        request payloads nobody will ever read, and without it the
        queue's feeder thread is *joined at interpreter exit* -- which
        blocks forever on the full, readerless pipe and hangs the
        whole process at shutdown.
        """
        try:
            self.inbox.cancel_join_thread()
            self.inbox.close()
        except (OSError, ValueError):  # already closed/torn down
            pass

    def retire_outbox(self) -> None:
        """Release the reply queue of a dead (or shut-down) worker.

        Safe only once nobody is selecting on its reader anymore (the
        collector thread has been joined, or the handle has been
        replaced and the collector re-snapshotted).  ``SimpleQueue``
        has no feeder thread, so this is just closing two pipe ends.
        """
        try:
            self.outbox.close()
        except (OSError, ValueError):  # already closed/torn down
            pass


def spawn_worker(
    ctx: Any,
    slot: int,
    config: ChipConfig,
    generation: int = 0,
) -> WorkerHandle:
    """Start one worker process and return its handle.

    Each (re)spawn gets a *fresh* inbox and a *fresh* reply queue: the
    old queues may hold messages for the dead generation -- or lock
    state poisoned by a process killed mid-write -- and fresh ones
    guarantee the new process starts from a clean mailbox either way.
    """
    inbox = ctx.Queue()
    outbox = ctx.SimpleQueue()
    process = ctx.Process(
        target=worker_main,
        args=(slot, inbox, outbox, config),
        daemon=True,
        name=f"repro-serve-worker-{slot}",
    )
    process.start()
    return WorkerHandle(
        slot=slot, process=process, inbox=inbox, outbox=outbox,
        generation=generation,
    )
