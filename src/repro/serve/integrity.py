"""End-to-end integrity checking for the serve fleet.

The resilience layer (PR 9) recovers from workers that *visibly* fail
-- crashes, stalls, blown deadlines.  This module catches the failure
mode that is invisible to all of that: a worker that stays healthy and
replies on time **with wrong bytes**.  Three mechanisms, layered from
cheapest to strongest:

1. **Fingerprinting** -- with an :class:`IntegrityConfig` active, every
   request is flagged ``fingerprint=True`` on admission; the worker
   digests its result (:func:`repro.sim.fingerprint.fingerprint_result`,
   a CRC-32 over output/mask/cycles) right after execution and ships
   the digest alongside the payload.  The service re-digests the
   unpickled payload on arrival: any corruption *between* the worker's
   compute and the service's memory (a flipped bit in the pickle
   stream, a bad queue buffer) fails verification and the dispatch is
   retried -- the caller never sees the corrupt bytes.

2. **Dual-execution audits** -- fingerprints cannot catch a corrupt
   *core*: if the worker computes wrong bytes, it faithfully
   fingerprints those wrong bytes.  So a deterministic sample of
   completed requests (``audit_rate``) is re-executed on a *different*
   worker and compared bit-exactly (by service-side fingerprint).  On
   mismatch a third tie-break execution on yet another worker decides
   which of the two slots is corrupt; the loser is quarantined through
   the existing retry/quarantine machinery and the incident recorded
   as a structured :class:`~repro.errors.IntegrityError`.

3. **Known-answer-test (KAT) probes** -- audits only sample live
   traffic; a corrupt core between user requests goes unnoticed.  On a
   configurable cadence (``kat_interval_ms``) the service dispatches a
   small fixed-geometry workload with a precomputed golden fingerprint
   to an idle worker, round-robin over the fleet.  A probe whose
   fingerprint diverges from golden convicts its worker directly (the
   golden answer *is* the tie-break).

Everything is deterministic: audit selection hashes the request id
with the config seed (no RNG state), KAT payloads are ``arange``-grown
constants, and golden fingerprints are computed once in-process
through :func:`repro.serve.workers.execute_request` -- the same code
path the workers run.

Defaults off: constructing a :class:`~repro.serve.service.PoolService`
without an ``integrity=`` config leaves requests unflagged, replies
fingerprint-free and responses byte-identical to the pre-integrity
service.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace as _dc_replace

import numpy as np

from ..config import ChipConfig
from ..errors import IntegrityError, ServeError
from ..ops.spec import PoolSpec
from ..sim.fingerprint import fingerprint_result
from .batching import PoolRequest

__all__ = [
    "IntegrityConfig",
    "IntegrityController",
    "AuditRecord",
    "audit_twin",
    "kat_request",
    "KAT_GEOMETRIES",
]

#: Tenant label carried by service-internal probes (audits, KATs);
#: never admitted through ``submit`` and excluded from user stats.
INTERNAL_TENANT = "__integrity__"

#: Small, fixed KAT geometries: (kind, kernel, stride, shape).  Chosen
#: to exercise both forward kinds and both impl-relevant extents while
#: costing well under a millisecond of worker time each.
KAT_GEOMETRIES = (
    ("maxpool", 2, 2, (1, 1, 8, 8, 16)),
    ("avgpool", 2, 2, (1, 1, 8, 8, 16)),
    ("maxpool", 3, 2, (1, 1, 9, 9, 16)),
)


@dataclass(frozen=True)
class IntegrityConfig:
    """Opt-in integrity checking for :class:`~repro.serve.service.
    PoolService`.  Frozen and validated at construction, mirroring
    :class:`~repro.serve.resilience.ResilienceConfig`; every mechanism
    defaults to its cheapest setting and the config as a whole is
    opt-in (no config == no integrity machinery at all).
    """

    #: Fingerprint every request/response pair and re-verify service-
    #: side.  On (the point of the config) unless explicitly disabled
    #: to measure audit/KAT mechanisms in isolation.
    fingerprint: bool = True
    #: Fraction of completed requests re-executed on a second worker
    #: (0.0 disables audits; 1.0 audits everything).  Needs >= 2
    #: workers; >= 3 for tie-breaks to be able to convict a slot.
    audit_rate: float = 0.0
    #: Milliseconds between known-answer probes (None disables them).
    kat_interval_ms: float | None = None
    #: Salts the deterministic audit sampler, so two services with the
    #: same traffic can audit disjoint samples.
    seed: int = 0
    #: Deadline for internal probes (audit legs, tie-breaks, KATs):
    #: a probe stuck behind a saturated fleet longer than this is
    #: abandoned rather than left to block drain forever.
    probe_timeout_ms: float = 5000.0
    #: Bound on the service's recorded :class:`IntegrityError` list.
    max_recorded_errors: int = 256
    #: Chaos drill hook: KAT probes behave as if these worker slots
    #: were corrupt cores (the probe's ``chaos_corrupt_output`` is set
    #: to this), letting tests prove a bad core is caught *between*
    #: user requests.  Harmless in production (default: never).
    kat_chaos_corrupt_output: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.audit_rate <= 1.0:
            raise ServeError(
                f"audit_rate must be within [0, 1], got {self.audit_rate}"
            )
        if self.kat_interval_ms is not None and self.kat_interval_ms <= 0:
            raise ServeError(
                "kat_interval_ms must be positive (or None to disable "
                f"probes), got {self.kat_interval_ms}"
            )
        if self.probe_timeout_ms <= 0:
            raise ServeError(
                f"probe_timeout_ms must be positive, got "
                f"{self.probe_timeout_ms}"
            )
        if self.max_recorded_errors < 1:
            raise ServeError(
                f"max_recorded_errors must be >= 1, got "
                f"{self.max_recorded_errors}"
            )
        if not all(s >= 0 for s in self.kat_chaos_corrupt_output):
            raise ServeError("kat_chaos_corrupt_output must be non-negative")

    @property
    def audit_enabled(self) -> bool:
        return self.audit_rate > 0.0

    @property
    def kat_enabled(self) -> bool:
        return self.kat_interval_ms is not None


def audit_twin(request: PoolRequest) -> PoolRequest:
    """The request an audit re-executes: same payload and plan, minus
    everything that would perturb the comparison.

    Attempt-keyed chaos (crash/stall/slow/drop) is stripped -- the
    audit should measure the *answer*, not replay the original's
    failure schedule -- but the worker-keyed corruption hooks are
    deliberately **kept**: a corrupt worker must corrupt the audit leg
    too, or chaos drills could never exercise the tie-break.  The
    user deadline is dropped (probes run under ``probe_timeout_ms``),
    traces are never collected, and the fingerprint flag is forced on
    (the comparison *is* the fingerprint).
    """
    return _dc_replace(
        request,
        tenant=INTERNAL_TENANT,
        deadline_ms=None,
        collect_trace=False,
        fingerprint=True,
        chaos_crash_attempts=(),
        chaos_stall_attempts=(),
        chaos_slow_ms=0.0,
        chaos_slow_attempts=(),
        chaos_drop_reply=(),
    )


def kat_request(
    index: int, chaos_corrupt_output: tuple[int, ...] = ()
) -> PoolRequest:
    """The ``index``-th known-answer probe (cycling the geometries).

    Payloads are ``arange``-derived constants -- no RNG, no process
    state -- so the probe for a given index is the same value object
    in every service and every session, which is what makes golden
    fingerprints precomputable.
    """
    kind, kernel, stride, shape = KAT_GEOMETRIES[index % len(KAT_GEOMETRIES)]
    n = int(np.prod(shape))
    x = (np.arange(n, dtype=np.float32) % 61 - 30.0).astype(
        np.float16
    ).reshape(shape)
    return PoolRequest(
        kind=kind,
        x=x,
        spec=PoolSpec.square(kernel=kernel, stride=stride),
        tenant=INTERNAL_TENANT,
        fingerprint=True,
        chaos_corrupt_output=chaos_corrupt_output,
    )


@dataclass
class AuditRecord:
    """Comparison state for one sampled response as it moves through
    audit (one extra execution) and, on mismatch, tie-break (two)."""

    #: Request id of the sampled user request (for error messages).
    origin_id: int
    #: The stripped re-execution request (see :func:`audit_twin`).
    request: PoolRequest
    #: Worker slots whose answers are being compared, in execution
    #: order: ``(original,)`` during the audit leg,
    #: ``(original, auditor)`` during the tie-break leg.
    slots: tuple[int, ...]
    #: Service-side fingerprints, parallel to ``slots``.
    fingerprints: tuple[int, ...]
    #: ``"audit"`` or ``"tiebreak"``.
    stage: str = "audit"


class IntegrityController:
    """The service's integrity brain: pure decision logic + caches.

    Owns no event-loop state -- :class:`~repro.serve.service.
    PoolService` drives it and keeps the counters in ``ServeStats`` --
    so every method here is synchronously testable without a fleet.
    """

    def __init__(self, config: IntegrityConfig, chip: ChipConfig) -> None:
        self.config = config
        self.chip = chip
        self._kat_index = 0
        self._goldens: dict[int, int] = {}
        self.errors: list[IntegrityError] = []

    # -- fingerprinting -------------------------------------------------
    def fingerprint(self, result) -> int:
        """Service-side re-digest of an unpickled worker result."""
        return fingerprint_result(result)

    # -- audit sampling -------------------------------------------------
    def should_audit(self, request_id: int) -> bool:
        """Deterministic sampler: hash the id with the seed against the
        rate threshold.  No RNG state, so the same id is audited (or
        not) on every replay of a storm."""
        if not self.config.audit_enabled:
            return False
        h = zlib.crc32(b"audit/%d/%d" % (self.config.seed, request_id))
        return h / 2**32 < self.config.audit_rate

    # -- known-answer probes --------------------------------------------
    def next_kat(self) -> tuple[int, PoolRequest]:
        """The next probe in rotation: ``(geometry index, request)``."""
        idx = self._kat_index % len(KAT_GEOMETRIES)
        self._kat_index += 1
        return idx, kat_request(idx, self.config.kat_chaos_corrupt_output)

    def golden(self, kat_index: int) -> int:
        """Golden fingerprint for geometry ``kat_index``, computed once
        in the service process through the workers' own execution path
        (chaos hooks do not apply in-process -- the golden is clean by
        construction)."""
        fp = self._goldens.get(kat_index)
        if fp is None:
            from .workers import execute_request

            clean = kat_request(kat_index)
            fp = fingerprint_result(
                execute_request(clean, self.chip).detach()
            )
            self._goldens[kat_index] = fp
        return fp

    # -- incident log ---------------------------------------------------
    def record(self, error: IntegrityError) -> None:
        """Append to the bounded incident log (oldest dropped first)."""
        self.errors.append(error)
        overflow = len(self.errors) - self.config.max_recorded_errors
        if overflow > 0:
            del self.errors[:overflow]
