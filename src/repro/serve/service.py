"""The asyncio multi-tenant front end over the worker-process fleet.

:class:`PoolService` is the "pooling-as-a-service" entry point: an
asyncio server multiplexing many concurrent pool/conv requests onto a
fleet of worker processes, each of which owns a private simulated chip
and program cache (:mod:`repro.serve.workers`).  The service layer
provides what the single-call API cannot:

* **Admission control** -- a bounded pending queue; submissions beyond
  it are rejected with :class:`~repro.errors.AdmissionError`
  (backpressure) instead of growing memory without bound.
* **Per-tenant quotas and fair scheduling** -- each tenant's pending
  share is capped (:class:`~repro.serve.tenancy.TenantQuota`), and
  queued work drains round-robin across tenants
  (:class:`~repro.serve.tenancy.FairQueue`).
* **Geometry-keyed coalescing** -- same-geometry requests are routed
  to the worker that already lowered/compiled that geometry
  (:class:`~repro.serve.batching.Coalescer`), so they are served by
  cached programs, ``Program.relocate`` clones and memoized JIT
  kernels instead of cold lowering.
* **Worker-failure recovery** -- a dead worker's in-flight requests
  are retried on healthy workers under the same
  :class:`~repro.sim.faults.RetryPolicy` vocabulary the chip-level
  resilient dispatcher uses (``max_attempts`` bounds attempts per
  request, ``quarantine_after`` failures quarantines the slot), and
  non-quarantined slots are respawned.
* **Service-level resilience** (:mod:`repro.serve.resilience`) --
  per-request **deadlines** enforced at admission, at dequeue and by a
  **stall watchdog** that also spots hung-but-alive workers
  (terminating them so the liveness machinery recovers their work),
  **hedged retries** for tail-latency outliers (first byte-identical
  reply wins, the loser is discarded, exactly-once by construction),
  per-slot **circuit breakers** feeding placement, and **load
  shedding** with graceful degradation under queue pressure.  All of
  it is opt-in: with no :class:`ResilienceConfig` and no per-request
  ``deadline_ms`` the service behaves exactly as before.
* **End-to-end integrity** (:mod:`repro.serve.integrity`) -- opt-in
  silent-data-corruption detection: worker-side result
  **fingerprints** re-verified on arrival (corrupt payloads are
  retried, never delivered), sampled **dual-execution audits** with
  tie-break conviction of corrupt slots, and periodic
  **known-answer probes** against golden fingerprints.  Convicted
  workers feed the same quarantine/respawn machinery crashes do, with
  incidents recorded as structured
  :class:`~repro.errors.IntegrityError` values.  Defaults off: with no
  :class:`IntegrityConfig`, requests, replies, responses and stats are
  byte-identical to the pre-integrity service.

Concurrency model: user coroutines ``await submit()``; a single
dispatcher task moves admitted requests to workers; one collector
*thread* selects over the per-worker reply queues and worker liveness,
handing completions back to the event loop via
``call_soon_threadsafe``; a watchdog task (started lazily, only when
resilience features or deadlines are in play) scans in-flight ages on
the event loop.  All service state is touched only on the event-loop
thread, on one injectable monotonic clock.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import threading
import time
from multiprocessing import connection as mp_connection
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Any, Hashable

import numpy as np

from ..config import ASCEND910, ChipConfig
from ..errors import (
    AdmissionError,
    CircuitOpenError,
    DeadlineError,
    HedgeError,
    IntegrityError,
    QuotaExceededError,
    ServeError,
    WorkerFailure,
)
from ..ops.spec import PoolSpec
from ..sim.faults import RetryPolicy
from .batching import Coalescer, PoolRequest, PoolResponse, geometry_key
from .integrity import (
    INTERNAL_TENANT,
    AuditRecord,
    IntegrityConfig,
    IntegrityController,
    audit_twin,
)
from .resilience import (
    DEFAULT_RETRY_AFTER_MS,
    DEFAULT_WATCHDOG_INTERVAL_MS,
    CircuitBreaker,
    Clock,
    LatencyTracker,
    ResilienceConfig,
    degrade_request,
)
from .tenancy import FairQueue, TenantQuota
from .workers import (
    CRASH_EXIT_CODE,
    MSG_CRASH,
    MSG_RUN,
    MSG_STATS,
    WorkerHandle,
    spawn_worker,
)


@dataclass
class ServeStats:
    """Service-lifetime counters (all touched on the event-loop thread)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_queue_full: int = 0
    rejected_quota: int = 0
    rejected_circuit: int = 0
    retries: int = 0
    worker_failures: int = 0
    respawns: int = 0
    forced_respawns: int = 0
    quarantined: tuple[int, ...] = ()
    deadline_misses: int = 0
    stalls_detected: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    breaker_opens: int = 0
    shed: int = 0
    degraded: int = 0
    #: Integrity counters (populated only with an ``IntegrityConfig``;
    #: ``integrity_enabled`` gates their export so a service without
    #: one keeps its stats dict -- and every export built from it --
    #: byte-identical to the pre-integrity format).
    integrity_enabled: bool = False
    audits_run: int = 0
    audit_mismatches: int = 0
    kat_probes: int = 0
    corrupt_workers_quarantined: int = 0
    fingerprint_failures: int = 0

    def to_dict(self) -> dict:
        d = {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_quota": self.rejected_quota,
            "rejected_circuit": self.rejected_circuit,
            "retries": self.retries,
            "worker_failures": self.worker_failures,
            "respawns": self.respawns,
            "forced_respawns": self.forced_respawns,
            "quarantined": list(self.quarantined),
            "deadline_misses": self.deadline_misses,
            "stalls_detected": self.stalls_detected,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "breaker_opens": self.breaker_opens,
            "shed": self.shed,
            "degraded": self.degraded,
        }
        if self.integrity_enabled:
            d.update({
                "audits_run": self.audits_run,
                "audit_mismatches": self.audit_mismatches,
                "kat_probes": self.kat_probes,
                "corrupt_workers_quarantined":
                    self.corrupt_workers_quarantined,
                "fingerprint_failures": self.fingerprint_failures,
            })
        return d


@dataclass
class _Pending:
    """One admitted request's mutable service-side state.

    ``outstanding`` maps attempt number -> worker slot for every
    dispatch whose reply is still awaited (two entries while a hedge
    is in flight); ``dispatches`` counts every dispatch ever made
    (what :attr:`PoolResponse.attempts` reports) while ``failures``
    counts only crashed/errored legs (what the retry budget bounds).
    """

    request: PoolRequest
    future: "asyncio.Future[PoolResponse]"
    key: Hashable
    submitted_at: float
    deadline: float | None = None  # absolute, on the service clock
    coalesced: bool = False
    degraded: tuple[str, ...] = ()
    next_attempt: int = 0
    dispatches: int = 0
    failures: int = 0
    hedged: bool = False
    outstanding: dict[int, int] = field(default_factory=dict)
    hedge_attempts: set[int] = field(default_factory=set)
    errors: list[str] = field(default_factory=list)
    #: Service-internal executions (integrity probes): ``""`` for user
    #: requests, else ``"audit"``/``"tiebreak"``/``"kat"``.  Internal
    #: pendings resolve their futures with ``None`` (never exceptions),
    #: are excluded from user-facing stats, and their placement honors
    #: ``exclude`` instead of coalescing affinity.
    internal: str = ""
    exclude: tuple[int, ...] = ()
    #: Probe context: the :class:`AuditRecord` for audit/tie-break
    #: legs, the KAT geometry index for known-answer probes.
    meta: Any = None


@dataclass
class _Dispatch:
    """One in-flight dispatch: where it went and when it left.

    Keyed by ``(req_id, attempt)`` in ``PoolService._dispatched``,
    this is the exactly-once ledger: *any* reply (winner, hedge loser,
    post-deadline straggler) pops its record and releases exactly one
    window slot on exactly the generation it was charged to, and the
    stall watchdog reads ``at`` to age in-flight work.
    """

    slot: int
    generation: int
    at: float


class PoolService:
    """Async multi-tenant pooling service over a simulated chip fleet.

    Usage::

        async with PoolService(workers=4) as svc:
            res = await svc.maxpool(x, PoolSpec.square(3, 2), impl="im2col")
            print(res.cycles, res.latency)

    ``workers`` sizes the process fleet; ``queue_limit`` bounds total
    pending requests (admission control); ``max_inflight_per_worker``
    is the dispatch window per worker -- admitted requests beyond it
    wait in the fair queue, which is what makes tenant fairness and
    coalescing routing effective.  ``retry`` reuses the chip-level
    :class:`~repro.sim.faults.RetryPolicy` vocabulary at the process
    level: ``max_attempts`` bounds a request's failed dispatches
    across worker crashes and ``quarantine_after`` failures
    quarantines a worker slot (cycle-backoff fields are chip-only and
    ignored here).  ``quotas`` maps tenant name to
    :class:`TenantQuota`; unlisted tenants get ``default_quota``.

    ``resilience`` opts into the service-level resilience machinery
    (stall watchdog, hedged retries, circuit breakers, load shedding
    -- see :class:`~repro.serve.resilience.ResilienceConfig`); left
    ``None``, only per-request ``deadline_ms`` enforcement is active,
    and only for requests that carry one.  ``integrity`` opts into
    silent-data-corruption detection
    (:class:`~repro.serve.integrity.IntegrityConfig`: response
    fingerprinting, sampled dual-execution audits, known-answer
    probes); audits need at least 2 workers (3+ for tie-breaks to
    convict a slot).  ``poll_interval`` is the
    collector thread's outbox poll period in seconds and
    ``shutdown_timeout`` bounds :meth:`close`'s collector/worker joins;
    ``clock`` is the monotonic clock (seconds) used for every
    service-side timestamp -- latencies, deadlines, in-flight ages,
    breaker timers -- so deterministic tests can inject a fake.

    Results are byte-identical to direct :mod:`repro.ops.api` calls:
    workers execute requests *through* that API, and only the trace
    payload is dropped from what crosses the process boundary
    (:meth:`~repro.ops.base.PoolRunResult.detach`).
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        config: ChipConfig = ASCEND910,
        queue_limit: int = 256,
        max_inflight_per_worker: int = 2,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota = TenantQuota(),
        retry: RetryPolicy | None = None,
        resilience: ResilienceConfig | None = None,
        integrity: IntegrityConfig | None = None,
        poll_interval: float = 0.02,
        shutdown_timeout: float = 5.0,
        clock: Clock = time.monotonic,
        mp_context: str | None = None,
    ) -> None:
        if workers < 1:
            raise ServeError("a service needs at least one worker")
        if queue_limit < 1:
            raise ServeError("queue_limit must be >= 1")
        if max_inflight_per_worker < 1:
            raise ServeError("max_inflight_per_worker must be >= 1")
        if poll_interval <= 0:
            raise ServeError("poll_interval must be positive")
        if shutdown_timeout <= 0:
            raise ServeError("shutdown_timeout must be positive")
        if (
            integrity is not None
            and integrity.audit_enabled
            and workers < 2
        ):
            raise ServeError(
                "dual-execution audits re-run requests on a *different* "
                f"worker; audit_rate={integrity.audit_rate} needs at "
                f"least 2 workers (got {workers}; 3+ lets tie-breaks "
                "convict a slot)"
            )
        self.num_workers = workers
        self.config = config
        self.queue_limit = queue_limit
        self.max_inflight_per_worker = max_inflight_per_worker
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self.retry = retry or RetryPolicy()
        self.resilience = resilience
        self.integrity = integrity
        self.poll_interval = poll_interval
        self.shutdown_timeout = shutdown_timeout
        self._clock: Clock = clock
        self._mp_method = mp_context
        self.stats = ServeStats(integrity_enabled=integrity is not None)
        self.coalescer = Coalescer()
        self.latency = LatencyTracker()
        self._integrity: IntegrityController | None = (
            IntegrityController(integrity, config)
            if integrity is not None else None
        )
        self._last_kat = 0.0
        self._kat_slot = 0

        self._breakers: dict[int, CircuitBreaker] | None = None
        if resilience is not None and resilience.breaker_enabled:
            self._breakers = {
                slot: CircuitBreaker(
                    resilience, clock=clock,
                    on_open=self._count_breaker_open,
                )
                for slot in range(workers)
            }

        self._handles: list[WorkerHandle] = []
        self._requests: dict[int, _Pending] = {}
        self._dispatched: dict[tuple[int, int], _Dispatch] = {}
        self._queue: FairQueue[int] = FairQueue()
        self._tenant_pending: dict[str, int] = {}
        self._ids = itertools.count()
        self._stats_waiters: dict[int, tuple[asyncio.Future, dict]] = {}
        self._stats_tokens = itertools.count()

        self._loop: asyncio.AbstractEventLoop | None = None
        self._ctx: Any = None
        self._dispatch_event: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._watchdog: asyncio.Task | None = None
        self._collector: threading.Thread | None = None
        self._collector_stop = threading.Event()
        self._started = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "PoolService":
        """Spawn the worker fleet and the dispatcher/collector."""
        if self._started:
            raise ServeError("service already started")
        self._loop = asyncio.get_running_loop()
        method = self._mp_method or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._ctx = multiprocessing.get_context(method)
        self._handles = [
            spawn_worker(self._ctx, slot, self.config)
            for slot in range(self.num_workers)
        ]
        self._dispatch_event = asyncio.Event()
        self._dispatcher = self._loop.create_task(self._dispatch_loop())
        self._collector_stop.clear()
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-serve-collector",
            daemon=True,
        )
        self._collector.start()
        self._started = True
        self._last_kat = self._clock()
        if self.resilience is not None or self.integrity is not None:
            self._ensure_watchdog()
        return self

    async def __aenter__(self) -> "PoolService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self, drain: bool = True) -> None:
        """Shut the service down.

        ``drain=True`` (default) first waits for every admitted
        request to complete or fail; ``drain=False`` fails queued and
        in-flight requests with :class:`~repro.errors.ServeError`
        promptly instead of waiting for them.  Worker/collector joins
        are bounded by ``shutdown_timeout``.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        if drain:
            while self._requests:
                futures = [
                    p.future for p in self._requests.values()
                    if not p.future.done()
                ]
                if not futures:
                    break
                await asyncio.gather(*futures, return_exceptions=True)
        else:
            for p in list(self._requests.values()):
                if not p.future.done():
                    p.future.set_exception(
                        ServeError("service closed before completion")
                    )
            self._requests.clear()
            self._tenant_pending.clear()
            self._dispatched.clear()
        self._closed = True
        for task in (self._dispatcher, self._watchdog):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._dispatcher = None
        self._watchdog = None
        self._collector_stop.set()
        if self._collector is not None:
            self._collector.join(timeout=self.shutdown_timeout)
        for h in self._handles:
            if h.alive and h.process.is_alive():
                try:
                    h.send(None)
                except Exception:
                    pass
        deadline = self._clock() + self.shutdown_timeout
        for h in self._handles:
            h.process.join(timeout=max(0.0, deadline - self._clock()))
            if h.process.is_alive():
                h.process.terminate()
                h.process.join(timeout=1.0)
            h.alive = False
            h.retire_inbox()
            h.retire_outbox()

    # -- submission -----------------------------------------------------

    def _quota(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _retry_after_hint(self) -> float:
        """A suggested wait (seconds) before resubmitting shed work.

        The configured floor, raised to the observed median service
        latency once the service has seen any completions -- a caller
        retrying sooner than a typical request takes would just be
        rejected again.
        """
        cfg = self.resilience
        base_ms = (
            cfg.retry_after_ms if cfg is not None else DEFAULT_RETRY_AFTER_MS
        )
        p50 = self.latency.quantile(0.5)
        if p50 is not None:
            base_ms = max(base_ms, p50)
        return base_ms / 1e3

    def _count_breaker_open(self) -> None:
        self.stats.breaker_opens += 1

    def _check_circuit(self) -> None:
        """Fast-fail when every healthy slot's breaker is open.

        Queueing behind a fleet that is known to be failing only turns
        the caller's wait into a deadline miss; a structured
        :class:`~repro.errors.CircuitOpenError` with the soonest
        half-open horizon lets it back off precisely instead.  With no
        healthy slot at all this defers to the quarantine/forced
        respawn machinery, which the breakers do not replace.
        """
        assert self._breakers is not None
        healthy = [h for h in self._handles if h.healthy]
        if not healthy:
            return
        if any(self._breakers[h.slot].available() for h in healthy):
            return
        self.stats.rejected_circuit += 1
        retry_after = min(
            self._breakers[h.slot].retry_after for h in healthy
        )
        raise CircuitOpenError(
            "every healthy worker's circuit breaker is open; retry in "
            f"{retry_after * 1e3:.0f} ms",
            retry_after=retry_after,
        )

    def _shed_for(self, tenant: str) -> bool:
        """Evict one queued lower-priority request to admit ``tenant``.

        Victims are drawn from the lowest-priority tenant *strictly
        below* the arriving tenant's priority (ties never shed each
        other, so the default flat priorities shed nothing), newest
        queued item first -- its caller has the least sunk latency.
        The evicted request fails with a structured
        :class:`~repro.errors.AdmissionError` carrying a retry-after
        hint.  Returns whether a slot was freed.
        """
        arriving = self._quota(tenant).priority
        while True:
            victims = [
                t for t in self._queue.tenants()
                if self._quota(t).priority < arriving
            ]
            if not victims:
                return False
            victim = min(victims, key=lambda t: self._quota(t).priority)
            req_id = self._queue.pop_tail(victim)
            if req_id is None:
                continue  # raced empty; recomputed victims drop it
            p = self._requests.get(req_id)
            if p is None or p.future.done():
                continue  # stale queue entry; keep looking
            self.stats.shed += 1
            self.stats.failed += 1
            self._finish(req_id, p)
            p.future.set_exception(AdmissionError(
                f"request shed under overload: tenant {victim!r} "
                f"(priority {self._quota(victim).priority}) yielded its "
                f"newest queued request to tenant {tenant!r} (priority "
                f"{arriving}); back off and resubmit",
                queue_depth=len(self._requests),
                limit=self.queue_limit,
                retry_after=self._retry_after_hint(),
            ))
            return True

    async def submit(self, request: PoolRequest) -> PoolResponse:
        """Admit ``request`` and await its response.

        Raises :class:`~repro.errors.AdmissionError` when the shared
        queue is full (or, with shedding enabled, fails a queued
        lower-priority request instead),
        :class:`~repro.errors.QuotaExceededError` when the tenant is
        over quota, :class:`~repro.errors.CircuitOpenError` when every
        healthy worker's breaker is open,
        :class:`~repro.errors.DeadlineError` when the request's
        ``deadline_ms`` is missed (including already-expired at
        admission), :class:`~repro.errors.HedgeError` when every leg
        of a hedged request errored, and
        :class:`~repro.errors.WorkerFailure` when the request's retry
        budget is exhausted by worker crashes.
        """
        if not self._started or self._closed:
            raise ServeError("service is not running (start() it first)")
        assert self._loop is not None and self._dispatch_event is not None
        cfg = self.resilience
        tenant = request.tenant
        if tenant == INTERNAL_TENANT:
            raise ServeError(
                f"tenant {INTERNAL_TENANT!r} is reserved for service-"
                "internal integrity probes"
            )
        now = self._clock()
        if request.deadline_ms is not None:
            if request.deadline_ms <= 0:
                self.stats.deadline_misses += 1
                raise DeadlineError(
                    f"deadline of {request.deadline_ms:g} ms was already "
                    "expired at admission",
                    deadline_ms=request.deadline_ms,
                    elapsed_ms=0.0,
                    stage="admission",
                )
            self._ensure_watchdog()
        degraded: tuple[str, ...] = ()
        if (
            cfg is not None
            and cfg.degrade_at is not None
            and len(self._requests) >= cfg.degrade_at * self.queue_limit
        ):
            request, degraded = degrade_request(request)
            if degraded:
                self.stats.degraded += 1
        if (
            self.integrity is not None
            and self.integrity.fingerprint
            and not request.fingerprint
        ):
            # Service-managed: ask the worker to digest its result so
            # the reply can be re-verified on arrival.  Excluded from
            # geometry_key, so coalescing/caching behavior is untouched.
            request = _dc_replace(request, fingerprint=True)
        if self._breakers is not None:
            self._check_circuit()
        if len(self._requests) >= self.queue_limit:
            shed = (
                cfg is not None
                and cfg.shed_low_priority
                and self._shed_for(tenant)
            )
            if not shed:
                self.stats.rejected_queue_full += 1
                raise AdmissionError(
                    f"service queue is full ({self.queue_limit} pending); "
                    "backpressure -- retry after in-flight work drains",
                    queue_depth=len(self._requests),
                    limit=self.queue_limit,
                    retry_after=self._retry_after_hint(),
                )
        pending = self._tenant_pending.get(tenant, 0)
        quota = self._quota(tenant)
        if pending >= quota.max_pending:
            self.stats.rejected_quota += 1
            raise QuotaExceededError(
                f"tenant {tenant!r} is at its quota "
                f"({quota.max_pending} pending requests)",
                tenant=tenant,
                pending=pending,
                limit=quota.max_pending,
                retry_after=self._retry_after_hint(),
            )
        req_id = next(self._ids)
        item = _Pending(
            request=request,
            future=self._loop.create_future(),
            key=geometry_key(request),
            submitted_at=now,
            deadline=(
                now + request.deadline_ms / 1e3
                if request.deadline_ms is not None else None
            ),
            degraded=degraded,
        )
        self._requests[req_id] = item
        self._tenant_pending[tenant] = pending + 1
        self._queue.push(tenant, req_id)
        self.stats.submitted += 1
        self._dispatch_event.set()
        return await item.future

    # Convenience wrappers mirroring repro.ops.api -----------------------

    async def maxpool(
        self, x: np.ndarray, spec: PoolSpec, *, impl: str = "im2col",
        with_mask: bool = False, tenant: str = "default", **kw,
    ) -> PoolResponse:
        return await self.submit(PoolRequest(
            kind="maxpool", x=x, spec=spec, impl=impl,
            with_mask=with_mask, tenant=tenant, **kw,
        ))

    async def avgpool(
        self, x: np.ndarray, spec: PoolSpec, *, impl: str = "im2col",
        tenant: str = "default", **kw,
    ) -> PoolResponse:
        return await self.submit(PoolRequest(
            kind="avgpool", x=x, spec=spec, impl=impl, tenant=tenant, **kw,
        ))

    async def maxpool_backward(
        self, mask: np.ndarray, grad: np.ndarray, spec: PoolSpec,
        ih: int, iw: int, *, impl: str = "col2im",
        tenant: str = "default", **kw,
    ) -> PoolResponse:
        return await self.submit(PoolRequest(
            kind="maxpool_backward", x=grad, spec=spec, impl=impl,
            mask=mask, ih=ih, iw=iw, tenant=tenant, **kw,
        ))

    async def avgpool_backward(
        self, grad: np.ndarray, spec: PoolSpec, ih: int, iw: int, *,
        impl: str = "col2im", tenant: str = "default", **kw,
    ) -> PoolResponse:
        return await self.submit(PoolRequest(
            kind="avgpool_backward", x=grad, spec=spec, impl=impl,
            ih=ih, iw=iw, tenant=tenant, **kw,
        ))

    # -- dispatch (event-loop thread) ------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._dispatch_event is not None
        while True:
            await self._dispatch_event.wait()
            self._dispatch_event.clear()
            self._pump()

    def _available(self, h: WorkerHandle) -> bool:
        """Whether placement may use ``h`` (health + breaker state)."""
        if not h.healthy:
            return False
        if self._breakers is None:
            return True
        return self._breakers[h.slot].available()

    def _pick_worker(self, key: Hashable) -> tuple[WorkerHandle, bool] | None:
        """The worker for ``key``: affinity first, else least loaded.

        An affinity (coalescing) hit ignores the per-worker dispatch
        window -- the whole point is to keep same-geometry work on the
        warm worker, and its inbox serialises it anyway.  New keys only
        go to available workers (healthy, breaker permitting) with
        window capacity; ``None`` means everything is saturated and
        dispatch should wait.
        """
        slot = self.coalescer.route(key)
        if slot is not None:
            h = self._handles[slot]
            if self._available(h):
                return h, True
        candidates = [
            h for h in self._handles
            if self._available(h)
            and h.inflight < self.max_inflight_per_worker
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda h: (h.inflight, h.slot)), False

    def _pick_probe_worker(
        self, exclude: tuple[int, ...]
    ) -> WorkerHandle | None:
        """Placement for integrity probes: least-loaded available
        worker outside ``exclude`` (the slots whose answers the probe
        is meant to check); no coalescing affinity -- an audit *must
        not* land back on the worker it audits."""
        candidates = [
            h for h in self._handles
            if h.slot not in exclude
            and self._available(h)
            and h.inflight < self.max_inflight_per_worker
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda h: (h.inflight, h.slot))

    def _dispatch_to(
        self, req_id: int, p: _Pending, handle: WorkerHandle
    ) -> None:
        """Send one attempt of ``req_id`` to ``handle`` and ledger it."""
        attempt = p.next_attempt
        p.next_attempt += 1
        p.dispatches += 1
        p.outstanding[attempt] = handle.slot
        self._dispatched[(req_id, attempt)] = _Dispatch(
            slot=handle.slot,
            generation=handle.generation,
            at=self._clock(),
        )
        handle.inflight += 1
        if self._breakers is not None:
            self._breakers[handle.slot].record_dispatch()
        try:
            handle.send((MSG_RUN, req_id, attempt, p.request))
        except ServeError:
            # Died between liveness check and send; the collector will
            # requeue it with everything else on that worker.
            pass

    def _pump(self) -> None:
        """Move queued requests onto workers until saturation.

        Integrity probes whose exclusion set cannot currently be
        honored are *deferred* (set aside and requeued at the end of
        the pass) rather than blocking the head of the queue: a
        tie-break that must avoid two busy slots should not wedge user
        traffic behind it.  Deferred probes retry on the next pump --
        the watchdog tick re-sets the dispatch event every interval, so
        they never starve silently; a probe that stays unplaceable is
        eventually abandoned by its ``probe_timeout_ms``.
        """
        deferred: list[tuple[str, int]] = []
        try:
            while len(self._queue):
                popped = self._queue.pop()
                if popped is None:
                    return
                tenant, req_id = popped
                p = self._requests.get(req_id)
                if p is None or p.future.done():
                    continue
                now = self._clock()
                if p.deadline is not None and now >= p.deadline:
                    self._fail_deadline(req_id, p, stage="queued", now=now)
                    continue
                if p.internal:
                    handle = self._pick_probe_worker(p.exclude)
                    if handle is None:
                        deferred.append((tenant, req_id))
                        continue
                    self._dispatch_to(req_id, p, handle)
                    continue
                picked = self._pick_worker(p.key)
                if picked is None:
                    self._queue.push_front(tenant, req_id)
                    return
                handle, hit = picked
                if p.dispatches == 0:
                    self.coalescer.bind(p.key, handle.slot, hit=hit)
                    p.coalesced = hit
                else:
                    self.coalescer.bind(p.key, handle.slot, hit=False)
                self._dispatch_to(req_id, p, handle)
        finally:
            for tenant, req_id in reversed(deferred):
                self._queue.push_front(tenant, req_id)

    # -- watchdog (event-loop thread) -------------------------------------

    def _ensure_watchdog(self) -> None:
        """Start the watchdog task if it is not already running.

        Called from :meth:`start` when a :class:`ResilienceConfig` is
        supplied, and lazily from :meth:`submit` the first time a
        request carries a ``deadline_ms`` -- so a service using
        neither never pays for a periodic wakeup.
        """
        if self._watchdog is not None or self._loop is None or self._closed:
            return
        interval_ms = (
            self.resilience.watchdog_interval_ms
            if self.resilience is not None
            else DEFAULT_WATCHDOG_INTERVAL_MS
        )
        self._watchdog = self._loop.create_task(
            self._watchdog_loop(interval_ms / 1e3)
        )

    async def _watchdog_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            self._watchdog_tick()

    def _hedge_threshold(self) -> float | None:
        """The in-flight age (ms) past which a request is hedged.

        The configured ``hedge_after_ms`` when set; otherwise the
        observed ``hedge_quantile`` latency once ``hedge_min_samples``
        completions have been seen (``None`` until then -- hedging off
        the first few samples would chase noise).
        """
        cfg = self.resilience
        if cfg is None or not cfg.hedge_enabled:
            return None
        if cfg.hedge_after_ms is not None:
            return cfg.hedge_after_ms
        if len(self.latency) < cfg.hedge_min_samples:
            return None
        return self.latency.quantile(cfg.hedge_quantile or 0.99)

    def _hedge(self, req_id: int, p: _Pending) -> None:
        """Speculatively re-dispatch ``req_id`` to a second worker.

        At most one hedge per request; the hedge leg must land on a
        *different* available worker with window capacity (no
        candidate simply means "try again next tick").  First reply
        wins; the exactly-once ledger discards the loser.
        """
        exclude = set(p.outstanding.values())
        candidates = [
            h for h in self._handles
            if h.slot not in exclude
            and self._available(h)
            and h.inflight < self.max_inflight_per_worker
        ]
        if not candidates:
            return
        handle = min(candidates, key=lambda h: (h.inflight, h.slot))
        p.hedged = True
        p.hedge_attempts.add(p.next_attempt)
        self.stats.hedges += 1
        self._dispatch_to(req_id, p, handle)

    def _declare_stalled(self, handle: WorkerHandle) -> None:
        """Terminate a live worker whose in-flight work aged out.

        The remedy is deliberately the *existing* death machinery:
        terminating the process makes the collector's liveness scan
        report it dead, which retries its in-flight requests,
        quarantines the slot if it keeps failing and respawns it --
        the stall just could not be *detected* by liveness alone.
        ``suspected_stalled`` keeps the slot out of placement (and out
        of repeat terminations) until the respawn replaces the handle.
        """
        self.stats.stalls_detected += 1
        handle.suspected_stalled = True
        try:
            handle.process.terminate()
        except Exception:  # pragma: no cover - already-dead race
            pass

    def _watchdog_tick(self) -> None:
        """One scan: deadlines, stalls, hedges (event-loop thread)."""
        if self._closed:
            return
        now = self._clock()
        cfg = self.resilience

        for req_id, p in list(self._requests.items()):
            if p.future.done():
                continue
            if p.deadline is not None and now >= p.deadline:
                stage = "in-flight" if p.outstanding else "queued"
                self._fail_deadline(req_id, p, stage=stage, now=now)

        if cfg is not None and cfg.stall_timeout_ms is not None:
            limit = cfg.stall_timeout_ms / 1e3
            for (req_id, attempt), d in list(self._dispatched.items()):
                if now - d.at < limit:
                    continue
                h = self._handles[d.slot]
                if (
                    h.alive
                    and h.generation == d.generation
                    and not h.suspected_stalled
                ):
                    self._declare_stalled(h)

        icfg = self.integrity
        if (
            icfg is not None
            and icfg.kat_enabled
            and now - self._last_kat >= icfg.kat_interval_ms / 1e3
        ):
            self._last_kat = now
            self._launch_kat()

        if cfg is not None and cfg.hedge_enabled:
            threshold = self._hedge_threshold()
            if threshold is not None:
                for req_id, p in list(self._requests.items()):
                    if p.future.done() or p.hedged or p.internal:
                        continue
                    if len(p.outstanding) != 1:
                        continue  # queued, or already multi-legged
                    (attempt, _slot), = p.outstanding.items()
                    d = self._dispatched.get((req_id, attempt))
                    if d is None:
                        continue
                    if (now - d.at) * 1e3 >= threshold:
                        self._hedge(req_id, p)

        if self._dispatch_event is not None:
            self._dispatch_event.set()

    # -- collector (background thread) -----------------------------------

    def _drain_ready(self, handles: list[WorkerHandle]) -> None:
        """Post every reply already sitting in the given reply queues."""
        readers = {h.outbox._reader: h for h in handles}
        try:
            ready = mp_connection.wait(
                list(readers), timeout=self.poll_interval
            )
        except OSError:  # a pipe torn down mid-wait (respawn race)
            return
        for r in ready:
            try:
                msg = readers[r].outbox.get()
            except (EOFError, OSError):
                continue
            self._post(self._on_message, msg)

    def _collect_loop(self) -> None:
        """Pull results off the reply queues and watch worker liveness.

        Reply queues are per worker; the collector re-snapshots the
        handle list every iteration so a respawn (which replaces the
        slot's handle, retiring inbox and reply queue with the dead
        body) is picked up on the next pass.  Replies are drained
        *before* the liveness scan so a result that reached the pipe
        just ahead of its worker's death still completes the request.
        """
        while not self._collector_stop.is_set():
            handles = list(self._handles)
            self._drain_ready(handles)
            for h in handles:
                if h.alive and not h.process.is_alive():
                    self._post(self._on_worker_death, h.slot, h.generation)
        # Final sweep so results racing shutdown still complete.
        for h in list(self._handles):
            try:
                while h.outbox._reader.poll():
                    self._post(self._on_message, h.outbox.get())
            except (EOFError, OSError, ValueError):
                continue

    def _post(self, fn, *args) -> None:
        assert self._loop is not None
        try:
            self._loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:  # loop already closed during shutdown
            pass

    # -- completion / recovery (event-loop thread) ------------------------

    def _finish(self, req_id: int, p: _Pending) -> None:
        del self._requests[req_id]
        tenant = p.request.tenant
        left = self._tenant_pending.get(tenant, 1) - 1
        if left > 0:
            self._tenant_pending[tenant] = left
        else:
            self._tenant_pending.pop(tenant, None)

    def _fail_deadline(
        self, req_id: int, p: _Pending, *, stage: str, now: float
    ) -> None:
        """Fail ``req_id`` with a structured deadline miss.

        Any still-outstanding dispatch keeps its ledger entry: its
        eventual reply (or its worker's death) releases the window
        slot, and until then the stall watchdog keeps aging it.

        Internal integrity probes carry a ``probe_timeout_ms`` deadline
        instead of a user one: an expired probe is quietly abandoned
        (no user-facing stats, future resolved with ``None``) -- a
        saturated fleet must not hold drain hostage to an audit.
        """
        if p.internal:
            self._resolve_probe(req_id, p)
            return
        self.stats.deadline_misses += 1
        self.stats.failed += 1
        elapsed_ms = (now - p.submitted_at) * 1e3
        assert p.request.deadline_ms is not None
        if not p.future.done():
            p.future.set_exception(DeadlineError(
                f"request {req_id} missed its "
                f"{p.request.deadline_ms:g} ms deadline "
                f"({stage}; {elapsed_ms:.1f} ms elapsed)",
                deadline_ms=p.request.deadline_ms,
                elapsed_ms=elapsed_ms,
                stage=stage,
            ))
        self._finish(req_id, p)

    # -- integrity (event-loop thread) ------------------------------------

    @property
    def integrity_errors(self) -> list[IntegrityError]:
        """Recorded integrity incidents (bounded; empty when off)."""
        return self._integrity.errors if self._integrity is not None else []

    @staticmethod
    def _consume_probe_result(fut: "asyncio.Future") -> None:
        # Internal futures are never awaited; retrieving the outcome in
        # a done-callback keeps asyncio from warning about it at GC.
        if not fut.cancelled():
            fut.exception()

    def _spawn_probe(
        self,
        request: PoolRequest,
        kind: str,
        meta: Any,
        exclude: tuple[int, ...] = (),
    ) -> None:
        """Admit a service-internal execution (audit leg, tie-break,
        KAT probe) under the reserved tenant, bounded by
        ``probe_timeout_ms`` instead of a user deadline."""
        if self._closed or self._loop is None or self.integrity is None:
            return
        req_id = next(self._ids)
        now = self._clock()
        p = _Pending(
            request=request,
            future=self._loop.create_future(),
            key=geometry_key(request),
            submitted_at=now,
            deadline=now + self.integrity.probe_timeout_ms / 1e3,
            internal=kind,
            exclude=tuple(exclude),
            meta=meta,
        )
        p.future.add_done_callback(self._consume_probe_result)
        self._requests[req_id] = p
        self._tenant_pending[INTERNAL_TENANT] = (
            self._tenant_pending.get(INTERNAL_TENANT, 0) + 1
        )
        self._queue.push(INTERNAL_TENANT, req_id)
        if self._dispatch_event is not None:
            self._dispatch_event.set()

    def _resolve_probe(self, req_id: int, p: _Pending) -> None:
        self._finish(req_id, p)
        if not p.future.done():
            p.future.set_result(None)

    def _launch_kat(self) -> None:
        """Dispatch the next known-answer probe to an idle worker.

        Probes rotate over the fleet (``_kat_slot``) and only target
        *idle* available workers -- a KAT must never add latency to a
        slot with user work in flight; a fully busy fleet simply skips
        this cadence tick (its work is being audited anyway).
        """
        assert self._integrity is not None
        n = len(self._handles)
        for off in range(n):
            h = self._handles[(self._kat_slot + off) % n]
            if self._available(h) and h.inflight == 0:
                self._kat_slot = (h.slot + 1) % n
                idx, req = self._integrity.next_kat()
                self._spawn_probe(
                    req, "kat", idx,
                    exclude=tuple(s for s in range(n) if s != h.slot),
                )
                return

    def _charge_corruption(self, slot: int) -> None:
        """One fingerprint-verification failure against ``slot``.

        Feeds the *existing* quarantine accounting: enough failures
        (``retry.quarantine_after``) quarantine the slot exactly like
        repeated crashes would, and the coalescer unbinds it so warm
        affinity stops routing new work there.
        """
        if not 0 <= slot < len(self._handles):  # pragma: no cover
            return
        h = self._handles[slot]
        h.failures += 1
        if h.failures >= self.retry.quarantine_after and not h.quarantined:
            h.quarantined = True
            if slot not in self.stats.quarantined:
                self.stats.quarantined = self.stats.quarantined + (slot,)
            self.stats.corrupt_workers_quarantined += 1
            self.coalescer.forget_worker(slot)

    def _convict(self, slot: int, error: IntegrityError) -> None:
        """Quarantine a worker an audit tie-break or KAT probe proved
        corrupt, and terminate its body.

        Termination is deliberate: the slot's in-flight user requests
        would otherwise complete with wrong bytes that *pass*
        fingerprint verification (a corrupt core faithfully digests
        its own wrong answer).  Killing the process routes them
        through the existing death machinery -- requeued on healthy
        workers -- while the quarantine flag keeps the slot out of
        placement and respawn.
        """
        assert self._integrity is not None
        self._integrity.record(error)
        if not 0 <= slot < len(self._handles):  # pragma: no cover
            return
        h = self._handles[slot]
        h.failures = max(h.failures, self.retry.quarantine_after)
        if not h.quarantined:
            h.quarantined = True
            if slot not in self.stats.quarantined:
                self.stats.quarantined = self.stats.quarantined + (slot,)
            self.stats.corrupt_workers_quarantined += 1
        self.coalescer.forget_worker(slot)
        if h.alive:
            try:
                h.process.terminate()
            except Exception:  # pragma: no cover - already-dead race
                pass

    def _start_audit(
        self, req_id: int, p: _Pending, worker_id: int, base_fp: int
    ) -> None:
        """Kick off the dual-execution audit of a completed request."""
        rec = AuditRecord(
            origin_id=req_id,
            request=audit_twin(p.request),
            slots=(worker_id,),
            fingerprints=(base_fp,),
        )
        self._spawn_probe(rec.request, "audit", rec, exclude=(worker_id,))

    def _on_probe_reply(
        self,
        req_id: int,
        p: _Pending,
        worker_id: int,
        fp: int | None,
        err: str | None,
        corrupt: bool,
    ) -> None:
        """A probe's worker reply arrived: compare and act.

        Probes ride the same retry vocabulary as user requests: an
        errored or corrupt leg is requeued (bounded by
        ``retry.max_attempts``) -- payload corruption of the *audit
        leg itself* must not masquerade as an audit verdict.
        """
        assert self._integrity is not None
        if err is not None or corrupt or fp is None:
            p.failures += 1
            if p.failures >= self.retry.max_attempts:
                self._resolve_probe(req_id, p)
            else:
                self._queue.push_front(INTERNAL_TENANT, req_id)
            return
        self._resolve_probe(req_id, p)
        if p.internal == "kat":
            self.stats.kat_probes += 1
            golden = self._integrity.golden(p.meta)
            if fp != golden:
                self._convict(worker_id, IntegrityError(
                    f"known-answer probe diverged on worker slot "
                    f"{worker_id}: the slot is computing wrong bytes",
                    slot=worker_id,
                    request=p.request,
                    divergence=(
                        f"probe fingerprint {fp:#010x} != golden "
                        f"{golden:#010x} (KAT geometry {p.meta})"
                    ),
                ))
        elif p.internal == "audit":
            rec: AuditRecord = p.meta
            self.stats.audits_run += 1
            if fp == rec.fingerprints[0]:
                return  # bit-exact across two workers: clean
            self.stats.audit_mismatches += 1
            self._spawn_probe(
                rec.request, "tiebreak",
                AuditRecord(
                    origin_id=rec.origin_id,
                    request=rec.request,
                    slots=rec.slots + (worker_id,),
                    fingerprints=rec.fingerprints + (fp,),
                    stage="tiebreak",
                ),
                exclude=rec.slots + (worker_id,),
            )
        elif p.internal == "tiebreak":
            rec = p.meta
            (slot_a, slot_b) = rec.slots
            (fp_a, fp_b) = rec.fingerprints
            divergence = (
                f"fingerprints: slot {slot_a}={fp_a:#010x}, slot "
                f"{slot_b}={fp_b:#010x}, tie-break slot "
                f"{worker_id}={fp:#010x}"
            )
            if fp == fp_a and fp != fp_b:
                bad = slot_b
            elif fp == fp_b and fp != fp_a:
                bad = slot_a
            else:
                bad = None
            if bad is not None:
                self._convict(bad, IntegrityError(
                    f"dual-execution audit of request {rec.origin_id} "
                    f"convicted worker slot {bad} (two independent "
                    "workers agree against it)",
                    slot=bad,
                    request=rec.request,
                    divergence=divergence,
                ))
            else:
                # Three distinct answers (or the tie-break agreed with
                # both, impossible for differing fps): no majority --
                # record the incident without convicting anyone.
                self._integrity.record(IntegrityError(
                    f"audit tie-break of request {rec.origin_id} "
                    "reached no majority; slots "
                    f"{slot_a}/{slot_b}/{worker_id} all disagree",
                    slot=None,
                    request=rec.request,
                    divergence=divergence,
                ))

    def _on_message(self, msg: tuple) -> None:
        tag = msg[0]
        if tag == MSG_STATS:
            _, token, worker_id, snapshot = msg
            waiter = self._stats_waiters.get(token)
            if waiter is not None:
                fut, acc = waiter
                acc[worker_id] = snapshot
                if len(acc) >= sum(1 for h in self._handles if h.alive):
                    if not fut.done():
                        fut.set_result(dict(acc))
                    del self._stats_waiters[token]
            return
        if tag == "ok":
            _, req_id, worker_id, attempt, result, wire_fp = msg
            err = None
        else:
            _, req_id, worker_id, attempt, etype, message = msg
            err = f"worker {worker_id} rejected request: {etype}: {message}"
            result = wire_fp = None

        # Service-side fingerprint re-verification: re-digest the
        # unpickled payload and compare against the digest the worker
        # took before the payload crossed the process boundary.  Done
        # before the ledger/breaker accounting so a corrupt reply feeds
        # the breaker as a *failure* -- and done even for stale replies
        # (the corruption indicts the worker regardless of whether its
        # request still exists).
        fp_actual: int | None = None
        corrupt = False
        if (
            err is None
            and self._integrity is not None
            and wire_fp is not None
        ):
            fp_actual = self._integrity.fingerprint(result)
            corrupt = fp_actual != wire_fp

        # Exactly-once ledger: whatever happens to the request below,
        # this reply releases exactly one window slot on exactly the
        # generation it was charged to, and feeds the slot's breaker.
        d = self._dispatched.pop((req_id, attempt), None)
        if d is not None:
            h = self._handles[d.slot]
            if h.alive and h.generation == d.generation:
                h.inflight = max(0, h.inflight - 1)
                h.served += 1
            if self._breakers is not None:
                br = self._breakers[d.slot]
                if err is None and not corrupt:
                    br.record_success()
                else:
                    br.record_failure()
        if corrupt:
            self.stats.fingerprint_failures += 1
            self._charge_corruption(worker_id)

        p = self._requests.get(req_id)
        if p is None or attempt not in p.outstanding:
            # Stale: the request already resolved (hedge loser, retry
            # superseded it, or it deadline-failed); the ledger above
            # already settled the worker-side accounting.
            if self._dispatch_event is not None:
                self._dispatch_event.set()
            return
        del p.outstanding[attempt]
        if p.future.done():  # pragma: no cover - defensive
            if self._dispatch_event is not None:
                self._dispatch_event.set()
            return
        if p.internal:
            self._on_probe_reply(req_id, p, worker_id, fp_actual, err,
                                 corrupt)
            if self._dispatch_event is not None:
                self._dispatch_event.set()
            return
        if err is None and corrupt:
            # The caller must never see the corrupt bytes: treat the
            # reply like a failed leg and retry the dispatch, bounded
            # by the same budget worker crashes are.
            p.failures += 1
            p.errors.append(
                f"worker {worker_id} reply failed fingerprint "
                f"verification (worker {wire_fp:#010x} != service "
                f"{fp_actual:#010x})"
            )
            if p.outstanding:
                # A hedge leg is still out; let its reply decide.
                if self._dispatch_event is not None:
                    self._dispatch_event.set()
                return
            if p.failures >= self.retry.max_attempts:
                self.stats.failed += 1
                self._finish(req_id, p)
                p.future.set_exception(IntegrityError(
                    f"request {req_id} ({p.request.kind}/"
                    f"{p.request.impl}) exhausted its retry budget of "
                    f"{self.retry.max_attempts} attempts; every reply "
                    "failed fingerprint verification (payload "
                    "corruption between worker and service)",
                    slot=worker_id,
                    request=p.request,
                    divergence=(
                        f"worker fingerprint {wire_fp:#010x} != "
                        f"service-side {fp_actual:#010x}"
                    ),
                ))
            else:
                self.stats.retries += 1
                self._queue.push_front(p.request.tenant, req_id)
            if self._dispatch_event is not None:
                self._dispatch_event.set()
            return
        if err is None:
            now = self._clock()
            self.stats.completed += 1
            if attempt in p.hedge_attempts:
                self.stats.hedge_wins += 1
            self.latency.observe((now - p.submitted_at) * 1e3)
            audited = (
                self._integrity is not None
                and self._integrity.should_audit(req_id)
            )
            self._finish(req_id, p)
            p.future.set_result(PoolResponse(
                request_id=req_id,
                tenant=p.request.tenant,
                worker=worker_id,
                attempts=p.dispatches,
                coalesced=p.coalesced,
                result=result,
                submitted_at=p.submitted_at,
                completed_at=now,
                hedged=p.hedged,
                degraded=p.degraded,
                fingerprint=wire_fp,
                fingerprint_ok=True if fp_actual is not None else None,
                audited=audited,
            ))
            if audited:
                base_fp = (
                    fp_actual if fp_actual is not None
                    else self._integrity.fingerprint(result)
                )
                self._start_audit(req_id, p, worker_id, base_fp)
        else:
            p.errors.append(err)
            if p.outstanding:
                # A hedge leg is still out; let its reply decide.
                if self._dispatch_event is not None:
                    self._dispatch_event.set()
                return
            self.stats.failed += 1
            self._finish(req_id, p)
            if len(p.errors) > 1:
                p.future.set_exception(HedgeError(
                    f"every leg of hedged request {req_id} failed: "
                    + "; ".join(p.errors)
                ))
            else:
                p.future.set_exception(ServeError(p.errors[0]))
        if self._dispatch_event is not None:
            self._dispatch_event.set()

    def _on_worker_death(self, slot: int, generation: int) -> None:
        handle = self._handles[slot]
        if not handle.alive or handle.generation != generation:
            return  # already handled (or a stale report for an old body)
        handle.alive = False
        handle.inflight = 0
        handle.failures += 1
        self.stats.worker_failures += 1
        exitcode = handle.process.exitcode
        handle.retire_inbox()  # nobody will read it; see retire_inbox
        self.coalescer.forget_worker(slot)
        if self._breakers is not None:
            self._breakers[slot].record_failure()

        # Retry or fail everything the dead body still owed a reply.
        affected = [
            key for key, d in self._dispatched.items()
            if d.slot == slot and d.generation == generation
        ]
        for key in affected:
            req_id, attempt = key
            del self._dispatched[key]
            p = self._requests.get(req_id)
            if p is None:
                continue  # already resolved (hedge win, deadline, ...)
            p.outstanding.pop(attempt, None)
            if p.future.done():  # pragma: no cover - defensive
                continue
            p.failures += 1
            if p.outstanding:
                # A hedge leg is still running elsewhere; it covers
                # the request, so the death neither requeues nor fails
                # it (no double execution, no double resolution).
                continue
            if p.failures >= self.retry.max_attempts:
                if p.internal:
                    self._resolve_probe(req_id, p)
                    continue
                self.stats.failed += 1
                p.future.set_exception(WorkerFailure(
                    f"request {req_id} ({p.request.kind}/"
                    f"{p.request.impl}) exhausted its retry budget of "
                    f"{self.retry.max_attempts} attempts; last worker "
                    f"slot {slot} died (exit code {exitcode})"
                ))
                self._finish(req_id, p)
            else:
                if not p.internal:
                    self.stats.retries += 1
                self._queue.push_front(p.request.tenant, req_id)

        # Quarantine-or-respawn, mirroring the chip-level dispatcher.
        if handle.failures >= self.retry.quarantine_after:
            handle.quarantined = True
            if slot not in self.stats.quarantined:
                self.stats.quarantined = self.stats.quarantined + (slot,)
        healthy = sum(1 for h in self._handles if h.healthy)
        if not handle.quarantined:
            self._respawn(slot)
        elif healthy == 0:
            # Everything is quarantined: respawn the least-failed slot
            # anyway -- degraded but still making progress, exactly like
            # the chip dispatcher's all-quarantined placement rule.
            best = min(self._handles, key=lambda h: (h.failures, h.slot))
            best.quarantined = False
            self.stats.forced_respawns += 1
            if not best.alive:
                self._respawn(best.slot)
        if self._dispatch_event is not None:
            self._dispatch_event.set()

    def _respawn(self, slot: int) -> None:
        old = self._handles[slot]
        self._handles[slot] = spawn_worker(
            self._ctx, slot, self.config,
            generation=old.generation + 1,
        )
        self._handles[slot].failures = old.failures
        self._handles[slot].quarantined = old.quarantined
        self.stats.respawns += 1

    # -- observability ---------------------------------------------------

    @property
    def workers(self) -> tuple[WorkerHandle, ...]:
        """Live view of the worker slots (read-only use)."""
        return tuple(self._handles)

    @property
    def breakers(self) -> dict[int, CircuitBreaker] | None:
        """Per-slot circuit breakers (``None`` unless enabled)."""
        return self._breakers

    def crash_worker(self, slot: int) -> None:
        """Chaos hook: order worker ``slot`` to die (``os._exit``).

        The process-level analogue of injecting a
        :class:`~repro.sim.faults.Crash`; recovery is observable in
        :attr:`stats` (worker_failures/retries/respawns/quarantined).
        """
        self._handles[slot].send((MSG_CRASH,))

    async def worker_cache_stats(
        self, timeout: float = 5.0
    ) -> dict[int, dict[str, int]]:
        """Each live worker's program-cache counters, keyed by slot.

        The worker-side evidence of coalescing: a worker repeatedly
        served the same geometry shows cache hits (and ``jit_hits``
        under ``execute="jit"``) instead of fresh lowering.
        """
        if not self._started or self._closed:
            raise ServeError("service is not running")
        assert self._loop is not None
        token = next(self._stats_tokens)
        fut: asyncio.Future = self._loop.create_future()
        self._stats_waiters[token] = (fut, {})
        for h in self._handles:
            if h.alive:
                h.send((MSG_STATS, token))
        try:
            return await asyncio.wait_for(fut, timeout)
        finally:
            self._stats_waiters.pop(token, None)


async def serve_burst(
    service: PoolService, requests: list[PoolRequest]
) -> list[PoolResponse]:
    """Submit ``requests`` concurrently and await all responses.

    Submissions that lose to admission control/quotas propagate their
    exceptions; this helper is the canonical way benches and tests
    drive a mixed-tenant burst through the service.
    """
    return list(await asyncio.gather(
        *(service.submit(r) for r in requests)
    ))
