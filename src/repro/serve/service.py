"""The asyncio multi-tenant front end over the worker-process fleet.

:class:`PoolService` is the "pooling-as-a-service" entry point: an
asyncio server multiplexing many concurrent pool/conv requests onto a
fleet of worker processes, each of which owns a private simulated chip
and program cache (:mod:`repro.serve.workers`).  The service layer
provides what the single-call API cannot:

* **Admission control** -- a bounded pending queue; submissions beyond
  it are rejected with :class:`~repro.errors.AdmissionError`
  (backpressure) instead of growing memory without bound.
* **Per-tenant quotas and fair scheduling** -- each tenant's pending
  share is capped (:class:`~repro.serve.tenancy.TenantQuota`), and
  queued work drains round-robin across tenants
  (:class:`~repro.serve.tenancy.FairQueue`).
* **Geometry-keyed coalescing** -- same-geometry requests are routed
  to the worker that already lowered/compiled that geometry
  (:class:`~repro.serve.batching.Coalescer`), so they are served by
  cached programs, ``Program.relocate`` clones and memoized JIT
  kernels instead of cold lowering.
* **Worker-failure recovery** -- a dead worker's in-flight requests
  are retried on healthy workers under the same
  :class:`~repro.sim.faults.RetryPolicy` vocabulary the chip-level
  resilient dispatcher uses (``max_attempts`` bounds attempts per
  request, ``quarantine_after`` failures quarantines the slot), and
  non-quarantined slots are respawned.

Concurrency model: user coroutines ``await submit()``; a single
dispatcher task moves admitted requests to workers; one collector
*thread* blocks on the shared result queue and worker liveness,
handing completions back to the event loop via
``call_soon_threadsafe``.  All service state is touched only on the
event-loop thread.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Hashable

import numpy as np

from ..config import ASCEND910, ChipConfig
from ..errors import (
    AdmissionError,
    QuotaExceededError,
    ServeError,
    WorkerFailure,
)
from ..ops.spec import PoolSpec
from ..sim.faults import RetryPolicy
from .batching import Coalescer, PoolRequest, PoolResponse, geometry_key
from .tenancy import FairQueue, TenantQuota
from .workers import (
    CRASH_EXIT_CODE,
    MSG_CRASH,
    MSG_RUN,
    MSG_STATS,
    WorkerHandle,
    spawn_worker,
)


@dataclass
class ServeStats:
    """Service-lifetime counters (all touched on the event-loop thread)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_queue_full: int = 0
    rejected_quota: int = 0
    retries: int = 0
    worker_failures: int = 0
    respawns: int = 0
    forced_respawns: int = 0
    quarantined: tuple[int, ...] = ()

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_quota": self.rejected_quota,
            "retries": self.retries,
            "worker_failures": self.worker_failures,
            "respawns": self.respawns,
            "forced_respawns": self.forced_respawns,
            "quarantined": list(self.quarantined),
        }


@dataclass
class _Pending:
    """One admitted request's mutable service-side state."""

    request: PoolRequest
    future: "asyncio.Future[PoolResponse]"
    key: Hashable
    submitted_at: float
    attempt: int = 0
    worker: int | None = None  # None = queued, else dispatched slot
    coalesced: bool = False


class PoolService:
    """Async multi-tenant pooling service over a simulated chip fleet.

    Usage::

        async with PoolService(workers=4) as svc:
            res = await svc.maxpool(x, PoolSpec.square(3, 2), impl="im2col")
            print(res.cycles, res.latency)

    ``workers`` sizes the process fleet; ``queue_limit`` bounds total
    pending requests (admission control); ``max_inflight_per_worker``
    is the dispatch window per worker -- admitted requests beyond it
    wait in the fair queue, which is what makes tenant fairness and
    coalescing routing effective.  ``retry`` reuses the chip-level
    :class:`~repro.sim.faults.RetryPolicy` vocabulary at the process
    level: ``max_attempts`` bounds a request's attempts across worker
    crashes and ``quarantine_after`` failures quarantines a worker
    slot (cycle-backoff fields are chip-only and ignored here).
    ``quotas`` maps tenant name to :class:`TenantQuota`; unlisted
    tenants get ``default_quota``.

    Results are byte-identical to direct :mod:`repro.ops.api` calls:
    workers execute requests *through* that API, and only the trace
    payload is dropped from what crosses the process boundary
    (:meth:`~repro.ops.base.PoolRunResult.detach`).
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        config: ChipConfig = ASCEND910,
        queue_limit: int = 256,
        max_inflight_per_worker: int = 2,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota = TenantQuota(),
        retry: RetryPolicy | None = None,
        mp_context: str | None = None,
    ) -> None:
        if workers < 1:
            raise ServeError("a service needs at least one worker")
        if queue_limit < 1:
            raise ServeError("queue_limit must be >= 1")
        if max_inflight_per_worker < 1:
            raise ServeError("max_inflight_per_worker must be >= 1")
        self.num_workers = workers
        self.config = config
        self.queue_limit = queue_limit
        self.max_inflight_per_worker = max_inflight_per_worker
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self.retry = retry or RetryPolicy()
        self._mp_method = mp_context
        self.stats = ServeStats()
        self.coalescer = Coalescer()

        self._handles: list[WorkerHandle] = []
        self._requests: dict[int, _Pending] = {}
        self._queue: FairQueue[int] = FairQueue()
        self._tenant_pending: dict[str, int] = {}
        self._ids = itertools.count()
        self._stats_waiters: dict[int, tuple[asyncio.Future, dict]] = {}
        self._stats_tokens = itertools.count()

        self._loop: asyncio.AbstractEventLoop | None = None
        self._ctx: Any = None
        self._outbox: Any = None
        self._dispatch_event: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._collector: threading.Thread | None = None
        self._collector_stop = threading.Event()
        self._started = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "PoolService":
        """Spawn the worker fleet and the dispatcher/collector."""
        if self._started:
            raise ServeError("service already started")
        self._loop = asyncio.get_running_loop()
        method = self._mp_method or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._ctx = multiprocessing.get_context(method)
        self._outbox = self._ctx.Queue()
        self._handles = [
            spawn_worker(self._ctx, slot, self._outbox, self.config)
            for slot in range(self.num_workers)
        ]
        self._dispatch_event = asyncio.Event()
        self._dispatcher = self._loop.create_task(self._dispatch_loop())
        self._collector_stop.clear()
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-serve-collector",
            daemon=True,
        )
        self._collector.start()
        self._started = True
        return self

    async def __aenter__(self) -> "PoolService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self, drain: bool = True) -> None:
        """Shut the service down.

        ``drain=True`` (default) first waits for every admitted
        request to complete or fail; ``drain=False`` fails queued and
        in-flight requests with :class:`~repro.errors.ServeError`.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        if drain:
            while self._requests:
                futures = [
                    p.future for p in self._requests.values()
                    if not p.future.done()
                ]
                if not futures:
                    break
                await asyncio.gather(*futures, return_exceptions=True)
        else:
            for p in list(self._requests.values()):
                if not p.future.done():
                    p.future.set_exception(
                        ServeError("service closed before completion")
                    )
            self._requests.clear()
            self._tenant_pending.clear()
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        self._collector_stop.set()
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        for h in self._handles:
            if h.alive and h.process.is_alive():
                try:
                    h.send(None)
                except Exception:
                    pass
        deadline = time.monotonic() + 5.0
        for h in self._handles:
            h.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if h.process.is_alive():
                h.process.terminate()
                h.process.join(timeout=1.0)
            h.alive = False
            h.retire_inbox()

    # -- submission -----------------------------------------------------

    def _quota(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    async def submit(self, request: PoolRequest) -> PoolResponse:
        """Admit ``request`` and await its response.

        Raises :class:`~repro.errors.AdmissionError` when the shared
        queue is full, :class:`~repro.errors.QuotaExceededError` when
        the tenant is over quota, and
        :class:`~repro.errors.WorkerFailure` when the request's retry
        budget is exhausted by worker crashes.
        """
        if not self._started or self._closed:
            raise ServeError("service is not running (start() it first)")
        assert self._loop is not None and self._dispatch_event is not None
        tenant = request.tenant
        if len(self._requests) >= self.queue_limit:
            self.stats.rejected_queue_full += 1
            raise AdmissionError(
                f"service queue is full ({self.queue_limit} pending); "
                "backpressure -- retry after in-flight work drains"
            )
        pending = self._tenant_pending.get(tenant, 0)
        quota = self._quota(tenant)
        if pending >= quota.max_pending:
            self.stats.rejected_quota += 1
            raise QuotaExceededError(
                f"tenant {tenant!r} is at its quota "
                f"({quota.max_pending} pending requests)"
            )
        req_id = next(self._ids)
        item = _Pending(
            request=request,
            future=self._loop.create_future(),
            key=geometry_key(request),
            submitted_at=time.monotonic(),
        )
        self._requests[req_id] = item
        self._tenant_pending[tenant] = pending + 1
        self._queue.push(tenant, req_id)
        self.stats.submitted += 1
        self._dispatch_event.set()
        return await item.future

    # Convenience wrappers mirroring repro.ops.api -----------------------

    async def maxpool(
        self, x: np.ndarray, spec: PoolSpec, *, impl: str = "im2col",
        with_mask: bool = False, tenant: str = "default", **kw,
    ) -> PoolResponse:
        return await self.submit(PoolRequest(
            kind="maxpool", x=x, spec=spec, impl=impl,
            with_mask=with_mask, tenant=tenant, **kw,
        ))

    async def avgpool(
        self, x: np.ndarray, spec: PoolSpec, *, impl: str = "im2col",
        tenant: str = "default", **kw,
    ) -> PoolResponse:
        return await self.submit(PoolRequest(
            kind="avgpool", x=x, spec=spec, impl=impl, tenant=tenant, **kw,
        ))

    async def maxpool_backward(
        self, mask: np.ndarray, grad: np.ndarray, spec: PoolSpec,
        ih: int, iw: int, *, impl: str = "col2im",
        tenant: str = "default", **kw,
    ) -> PoolResponse:
        return await self.submit(PoolRequest(
            kind="maxpool_backward", x=grad, spec=spec, impl=impl,
            mask=mask, ih=ih, iw=iw, tenant=tenant, **kw,
        ))

    async def avgpool_backward(
        self, grad: np.ndarray, spec: PoolSpec, ih: int, iw: int, *,
        impl: str = "col2im", tenant: str = "default", **kw,
    ) -> PoolResponse:
        return await self.submit(PoolRequest(
            kind="avgpool_backward", x=grad, spec=spec, impl=impl,
            ih=ih, iw=iw, tenant=tenant, **kw,
        ))

    # -- dispatch (event-loop thread) ------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._dispatch_event is not None
        while True:
            await self._dispatch_event.wait()
            self._dispatch_event.clear()
            self._pump()

    def _pick_worker(self, key: Hashable) -> tuple[WorkerHandle, bool] | None:
        """The worker for ``key``: affinity first, else least loaded.

        An affinity (coalescing) hit ignores the per-worker dispatch
        window -- the whole point is to keep same-geometry work on the
        warm worker, and its inbox serialises it anyway.  New keys only
        go to healthy workers with window capacity; ``None`` means
        everything is saturated and dispatch should wait.
        """
        slot = self.coalescer.route(key)
        if slot is not None:
            h = self._handles[slot]
            if h.healthy:
                return h, True
        candidates = [
            h for h in self._handles
            if h.healthy and h.inflight < self.max_inflight_per_worker
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda h: (h.inflight, h.slot)), False

    def _pump(self) -> None:
        """Move queued requests onto workers until saturation."""
        while len(self._queue):
            popped = self._queue.pop()
            if popped is None:
                return
            tenant, req_id = popped
            p = self._requests.get(req_id)
            if p is None or p.future.done():
                continue
            picked = self._pick_worker(p.key)
            if picked is None:
                self._queue.push_front(tenant, req_id)
                return
            handle, hit = picked
            if p.attempt == 0:
                self.coalescer.bind(p.key, handle.slot, hit=hit)
                p.coalesced = hit
            else:
                self.coalescer.bind(p.key, handle.slot, hit=False)
            p.worker = handle.slot
            handle.inflight += 1
            try:
                handle.send((MSG_RUN, req_id, p.attempt, p.request))
            except ServeError:
                # Died between liveness check and send; the collector
                # will requeue it with everything else on that worker.
                pass

    # -- collector (background thread) -----------------------------------

    def _collect_loop(self) -> None:
        """Pull results off the outbox and watch worker liveness."""
        assert self._outbox is not None
        while not self._collector_stop.is_set():
            try:
                msg = self._outbox.get(timeout=0.02)
            except queue_mod.Empty:
                msg = None
            except (EOFError, OSError):  # queue torn down under us
                return
            if msg is not None:
                self._post(self._on_message, msg)
            for h in self._handles:
                if h.alive and not h.process.is_alive():
                    self._post(self._on_worker_death, h.slot, h.generation)
        # Final sweep so results racing shutdown still complete.
        while True:
            try:
                msg = self._outbox.get_nowait()
            except Exception:
                break
            self._post(self._on_message, msg)

    def _post(self, fn, *args) -> None:
        assert self._loop is not None
        try:
            self._loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:  # loop already closed during shutdown
            pass

    # -- completion / recovery (event-loop thread) ------------------------

    def _finish(self, req_id: int, p: _Pending) -> None:
        del self._requests[req_id]
        tenant = p.request.tenant
        left = self._tenant_pending.get(tenant, 1) - 1
        if left > 0:
            self._tenant_pending[tenant] = left
        else:
            self._tenant_pending.pop(tenant, None)

    def _on_message(self, msg: tuple) -> None:
        tag = msg[0]
        if tag == MSG_STATS:
            _, token, worker_id, snapshot = msg
            waiter = self._stats_waiters.get(token)
            if waiter is not None:
                fut, acc = waiter
                acc[worker_id] = snapshot
                if len(acc) >= sum(1 for h in self._handles if h.alive):
                    if not fut.done():
                        fut.set_result(dict(acc))
                    del self._stats_waiters[token]
            return
        if tag == "ok":
            _, req_id, worker_id, attempt, result = msg
        else:
            _, req_id, worker_id, attempt, etype, message = msg
        p = self._requests.get(req_id)
        if p is None or p.worker != worker_id or p.attempt != attempt:
            return  # stale: the request was retried elsewhere meanwhile
        handle = self._handles[worker_id]
        handle.inflight = max(0, handle.inflight - 1)
        handle.served += 1
        self._finish(req_id, p)
        if p.future.done():
            return
        if tag == "ok":
            self.stats.completed += 1
            p.future.set_result(PoolResponse(
                request_id=req_id,
                tenant=p.request.tenant,
                worker=worker_id,
                attempts=p.attempt + 1,
                coalesced=p.coalesced,
                result=result,
                submitted_at=p.submitted_at,
                completed_at=time.monotonic(),
            ))
        else:
            self.stats.failed += 1
            p.future.set_exception(
                ServeError(f"worker {worker_id} rejected request: "
                           f"{etype}: {message}")
            )
        if self._dispatch_event is not None:
            self._dispatch_event.set()

    def _on_worker_death(self, slot: int, generation: int) -> None:
        handle = self._handles[slot]
        if not handle.alive or handle.generation != generation:
            return  # already handled (or a stale report for an old body)
        handle.alive = False
        handle.inflight = 0
        handle.failures += 1
        self.stats.worker_failures += 1
        exitcode = handle.process.exitcode
        handle.retire_inbox()  # nobody will read it; see retire_inbox
        self.coalescer.forget_worker(slot)

        # Retry or fail everything that was in flight on the dead body.
        for req_id, p in list(self._requests.items()):
            if p.worker != slot:
                continue
            p.worker = None
            p.attempt += 1
            if p.attempt >= self.retry.max_attempts:
                self.stats.failed += 1
                if not p.future.done():
                    p.future.set_exception(WorkerFailure(
                        f"request {req_id} ({p.request.kind}/"
                        f"{p.request.impl}) exhausted its retry budget of "
                        f"{self.retry.max_attempts} attempts; last worker "
                        f"slot {slot} died (exit code {exitcode})"
                    ))
                self._finish(req_id, p)
            else:
                self.stats.retries += 1
                self._queue.push_front(p.request.tenant, req_id)

        # Quarantine-or-respawn, mirroring the chip-level dispatcher.
        if handle.failures >= self.retry.quarantine_after:
            handle.quarantined = True
            if slot not in self.stats.quarantined:
                self.stats.quarantined = self.stats.quarantined + (slot,)
        healthy = sum(1 for h in self._handles if h.healthy)
        if not handle.quarantined:
            self._respawn(slot)
        elif healthy == 0:
            # Everything is quarantined: respawn the least-failed slot
            # anyway -- degraded but still making progress, exactly like
            # the chip dispatcher's all-quarantined placement rule.
            best = min(self._handles, key=lambda h: (h.failures, h.slot))
            best.quarantined = False
            self.stats.forced_respawns += 1
            if not best.alive:
                self._respawn(best.slot)
        if self._dispatch_event is not None:
            self._dispatch_event.set()

    def _respawn(self, slot: int) -> None:
        old = self._handles[slot]
        self._handles[slot] = spawn_worker(
            self._ctx, slot, self._outbox, self.config,
            generation=old.generation + 1,
        )
        self._handles[slot].failures = old.failures
        self._handles[slot].quarantined = old.quarantined
        self.stats.respawns += 1

    # -- observability ---------------------------------------------------

    @property
    def workers(self) -> tuple[WorkerHandle, ...]:
        """Live view of the worker slots (read-only use)."""
        return tuple(self._handles)

    def crash_worker(self, slot: int) -> None:
        """Chaos hook: order worker ``slot`` to die (``os._exit``).

        The process-level analogue of injecting a
        :class:`~repro.sim.faults.Crash`; recovery is observable in
        :attr:`stats` (worker_failures/retries/respawns/quarantined).
        """
        self._handles[slot].send((MSG_CRASH,))

    async def worker_cache_stats(
        self, timeout: float = 5.0
    ) -> dict[int, dict[str, int]]:
        """Each live worker's program-cache counters, keyed by slot.

        The worker-side evidence of coalescing: a worker repeatedly
        served the same geometry shows cache hits (and ``jit_hits``
        under ``execute="jit"``) instead of fresh lowering.
        """
        if not self._started or self._closed:
            raise ServeError("service is not running")
        assert self._loop is not None
        token = next(self._stats_tokens)
        fut: asyncio.Future = self._loop.create_future()
        self._stats_waiters[token] = (fut, {})
        for h in self._handles:
            if h.alive:
                h.send((MSG_STATS, token))
        try:
            return await asyncio.wait_for(fut, timeout)
        finally:
            self._stats_waiters.pop(token, None)


async def serve_burst(
    service: PoolService, requests: list[PoolRequest]
) -> list[PoolResponse]:
    """Submit ``requests`` concurrently and await all responses.

    Submissions that lose to admission control/quotas propagate their
    exceptions; this helper is the canonical way benches and tests
    drive a mixed-tenant burst through the service.
    """
    return list(await asyncio.gather(
        *(service.submit(r) for r in requests)
    ))
