"""Per-tenant quotas and fair scheduling.

A multi-tenant front end must not let one chatty tenant starve the
rest: admission control bounds the *total* queue (backpressure), the
per-tenant quota bounds any *single* tenant's share of it, and the
:class:`FairQueue` drains tenants round-robin so a tenant submitting
one request behind a tenant who submitted a thousand still gets
serviced on the next scheduling turn.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

from ..errors import ServeError

T = TypeVar("T")


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    ``max_pending`` caps the tenant's queued + in-flight requests; a
    submission beyond it is rejected with
    :class:`~repro.errors.QuotaExceededError` *before* consuming any
    shared queue capacity, so a tenant cannot buy backpressure for
    everyone else.

    ``priority`` orders tenants for overload shedding (higher wins):
    with :attr:`~repro.serve.ResilienceConfig.shed_low_priority`
    enabled, a full queue evicts queued work of the lowest-priority
    tenant *below* the arriving tenant's priority rather than reject
    the arrival.  Ties never shed each other, so the default (every
    tenant at 0) sheds nothing.
    """

    max_pending: int = 32
    priority: int = 0

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ServeError("max_pending must be >= 1")
        if not isinstance(self.priority, int):
            raise ServeError("priority must be an int")


class FairQueue(Generic[T]):
    """Round-robin-fair multi-tenant FIFO.

    Items are FIFO *within* a tenant; ``pop`` rotates *across* tenants
    that currently have queued items, so service order interleaves
    tenants regardless of arrival order.  ``push_front`` re-queues a
    retried item at its tenant's head (it keeps its FIFO position but
    not anyone else's turn).
    """

    def __init__(self) -> None:
        self._queues: dict[Hashable, deque[T]] = {}
        self._turns: deque[Hashable] = deque()

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def pending(self, tenant: Hashable) -> int:
        """Queued (not yet dispatched) items for ``tenant``."""
        q = self._queues.get(tenant)
        return len(q) if q else 0

    def _enqueue(self, tenant: Hashable, item: T, front: bool) -> None:
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
        had_items = bool(q)
        if front:
            q.appendleft(item)
        else:
            q.append(item)
        if not had_items:
            self._turns.append(tenant)

    def push(self, tenant: Hashable, item: T) -> None:
        self._enqueue(tenant, item, front=False)

    def push_front(self, tenant: Hashable, item: T) -> None:
        """Re-queue a retried item at its tenant's head."""
        self._enqueue(tenant, item, front=True)

    def pop(self) -> tuple[Hashable, T] | None:
        """The next ``(tenant, item)`` in fair order, or ``None``.

        The serviced tenant goes to the back of the turn order; a
        tenant whose queue drains leaves the rotation entirely.
        """
        while self._turns:
            tenant = self._turns.popleft()
            q = self._queues.get(tenant)
            if not q:
                continue  # drained since its turn was recorded
            item = q.popleft()
            if q:
                self._turns.append(tenant)
            return tenant, item
        return None

    def pop_tail(self, tenant: Hashable) -> T | None:
        """Remove and return ``tenant``'s *newest* queued item.

        The load shedder's eviction primitive: under overload the most
        recently queued low-priority work is dropped first (its caller
        waited least, so failing it costs the least sunk latency).
        Returns ``None`` when the tenant has nothing queued.  A tenant
        drained this way leaves the rotation lazily -- :meth:`pop`
        already skips empty queues.
        """
        q = self._queues.get(tenant)
        if not q:
            return None
        return q.pop()

    def tenants(self) -> tuple[Hashable, ...]:
        """Tenants with at least one queued item, in turn order."""
        return tuple(t for t in self._turns if self._queues.get(t))
