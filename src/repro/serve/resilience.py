"""Service-level resilience: deadlines, hedging, breakers, shedding.

PR 7's :class:`~repro.serve.PoolService` only survives failures that
announce themselves: a worker *process death* is detected by liveness
and retried.  This module supplies the vocabulary for the faults that
do not -- a worker that hangs mid-request (the process-level analogue
of the chip-level :class:`~repro.sim.faults.Stall`), a reply that is
silently dropped, tail latency that quietly eats a caller's budget,
and overload that would otherwise turn into unbounded queueing:

* :class:`ResilienceConfig` -- one frozen knob bundle.  Everything
  defaults to *off*: a service constructed without it (or with the
  defaults) behaves byte-for-byte like the pre-resilience service.
* :class:`LatencyTracker` -- a rolling window of completed-request
  latencies with quantile lookup; feeds the p99-derived hedge
  threshold and the retry-after hints on shed work.
* :class:`CircuitBreaker` -- a per-worker-slot closed / open /
  half-open breaker over a rolling failure window, feeding the
  service's placement decisions alongside the existing
  ``healthy``/quarantine states.
* :func:`degrade_request` -- graceful degradation under queue
  pressure: ``execute="jit"`` falls back to ``"numeric"`` (no cold
  kernel compilation) and ``plan="autotuned"`` to ``"default"`` (no
  table lookup) before any work is rejected outright.

The *enforcement* (watchdog scan, hedge dispatch, shed decisions)
lives in :mod:`repro.serve.service`, which owns the event-loop state;
everything here is deliberately loop-free and clock-injectable so the
policies unit-test deterministically.

One fault class stays invisible to all of the above: a worker that
replies on time with *wrong bytes*.  That is the province of
:mod:`repro.serve.integrity` (response fingerprints, dual-execution
audits, known-answer probes), which feeds its convictions back into
the same quarantine/respawn machinery these policies drive.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from ..errors import ServeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .batching import PoolRequest

#: Injectable monotonic clock (seconds).  The service threads one
#: clock through admission, the watchdog and every breaker so
#: deterministic tests can drive all of them from one fake.
Clock = Callable[[], float]

#: Watchdog scan period used when no :class:`ResilienceConfig` is
#: supplied but a request carries a ``deadline_ms`` anyway.
DEFAULT_WATCHDOG_INTERVAL_MS = 50.0

#: Retry-after hint (ms) used when the caller configured none.
DEFAULT_RETRY_AFTER_MS = 100.0

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the service-level resilience machinery.

    Every feature is opt-in; the defaults leave all of them off, so
    ``PoolService(resilience=ResilienceConfig())`` is behaviourally
    identical to ``PoolService()`` -- only per-request ``deadline_ms``
    enforcement (which needs no configuration) is always available.

    **Stall watchdog** -- ``stall_timeout_ms`` is the in-flight age at
    which a *live* worker is declared hung: the watchdog terminates the
    process and lets the existing liveness-driven retry / quarantine /
    respawn machinery recover its requests.  ``watchdog_interval_ms``
    is the scan period (also bounds how late a deadline miss can be
    declared).

    **Hedged retries** -- when an in-flight request's age exceeds the
    hedge threshold, it is speculatively re-dispatched to a second
    healthy worker; the first reply wins and the loser is discarded
    (exactly-once by construction).  The threshold is
    ``hedge_after_ms`` when set, else the observed
    ``hedge_quantile`` latency once ``hedge_min_samples`` completions
    have been seen.

    **Circuit breaker** -- enabled by ``breaker_failure_threshold``:
    a slot whose rolling failure rate (over the last
    ``breaker_window`` outcomes, once ``breaker_min_volume`` were
    seen) reaches the threshold opens for ``breaker_open_ms``, then
    half-opens and admits ``breaker_half_open_probes`` trial requests;
    a probe success closes it, a probe failure re-opens it.

    **Load shedding / degradation** -- at ``degrade_at`` (a fraction
    of ``queue_limit``) incoming requests are degraded via
    :func:`degrade_request`; with ``shed_low_priority`` set, a full
    queue evicts the newest queued request of the lowest-priority
    tenant below the arriving tenant's priority instead of rejecting
    the arrival.  Every shed/rejected response carries a structured
    retry-after hint (``retry_after_ms`` floor, scaled by observed
    latency).
    """

    # stall watchdog
    stall_timeout_ms: float | None = None
    watchdog_interval_ms: float = DEFAULT_WATCHDOG_INTERVAL_MS
    # hedged retries
    hedge_after_ms: float | None = None
    hedge_quantile: float | None = None
    hedge_min_samples: int = 20
    # circuit breaker
    breaker_failure_threshold: float | None = None
    breaker_window: int = 16
    breaker_min_volume: int = 4
    breaker_open_ms: float = 1000.0
    breaker_half_open_probes: int = 1
    # load shedding / graceful degradation
    degrade_at: float | None = None
    shed_low_priority: bool = False
    retry_after_ms: float = DEFAULT_RETRY_AFTER_MS

    def __post_init__(self) -> None:
        if self.stall_timeout_ms is not None and self.stall_timeout_ms <= 0:
            raise ServeError("stall_timeout_ms must be positive")
        if self.watchdog_interval_ms <= 0:
            raise ServeError("watchdog_interval_ms must be positive")
        if self.hedge_after_ms is not None and self.hedge_after_ms <= 0:
            raise ServeError("hedge_after_ms must be positive")
        if self.hedge_quantile is not None and not (
            0.0 < self.hedge_quantile <= 1.0
        ):
            raise ServeError("hedge_quantile must be in (0, 1]")
        if self.hedge_min_samples < 1:
            raise ServeError("hedge_min_samples must be >= 1")
        if self.breaker_failure_threshold is not None and not (
            0.0 < self.breaker_failure_threshold <= 1.0
        ):
            raise ServeError("breaker_failure_threshold must be in (0, 1]")
        if self.breaker_window < 1:
            raise ServeError("breaker_window must be >= 1")
        if self.breaker_min_volume < 1:
            raise ServeError("breaker_min_volume must be >= 1")
        if self.breaker_open_ms < 0:
            raise ServeError("breaker_open_ms must be >= 0")
        if self.breaker_half_open_probes < 1:
            raise ServeError("breaker_half_open_probes must be >= 1")
        if self.degrade_at is not None and not (
            0.0 <= self.degrade_at <= 1.0
        ):
            raise ServeError("degrade_at must be in [0, 1]")
        if self.retry_after_ms < 0:
            raise ServeError("retry_after_ms must be >= 0")

    @property
    def breaker_enabled(self) -> bool:
        """Whether per-worker circuit breakers are active."""
        return self.breaker_failure_threshold is not None

    @property
    def hedge_enabled(self) -> bool:
        """Whether hedged retries are active (fixed or p99-derived)."""
        return self.hedge_after_ms is not None or self.hedge_quantile is not None


class LatencyTracker:
    """Rolling window of completed-request latencies (milliseconds).

    Feeds two policies: the p99-derived hedge threshold and the
    retry-after hints attached to shed/rejected submissions.  The
    window is bounded, so one latency spike ages out instead of
    poisoning the quantile forever.
    """

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ServeError("latency window must be >= 1")
        self._samples: deque[float] = deque(maxlen=window)

    def observe(self, latency_ms: float) -> None:
        """Record one completed request's end-to-end latency."""
        self._samples.append(float(latency_ms))

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile of the window, or ``None`` when empty."""
        if not self._samples:
            return None
        if not 0.0 <= q <= 1.0:
            raise ServeError("quantile must be in [0, 1]")
        ordered = sorted(self._samples)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    def __len__(self) -> int:
        return len(self._samples)


class CircuitBreaker:
    """Per-worker-slot breaker: closed -> open -> half-open -> closed.

    Outcomes (success / failure, where failure covers error replies,
    worker deaths and declared stalls) feed a rolling window; when the
    failure rate over at least ``breaker_min_volume`` outcomes reaches
    ``breaker_failure_threshold`` the breaker *opens* and the slot is
    excluded from placement for ``breaker_open_ms``.  It then
    *half-opens*: up to ``breaker_half_open_probes`` trial dispatches
    are admitted; the first probe success closes the breaker (window
    reset), a probe failure re-opens it for another full period.

    The breaker is keyed by *slot*, not process: it survives respawns,
    exactly like the failure count that drives quarantine -- a slot
    whose fresh bodies keep failing stays open.
    """

    def __init__(
        self,
        config: ResilienceConfig,
        clock: Clock = time.monotonic,
        on_open: Callable[[], None] | None = None,
    ) -> None:
        if not config.breaker_enabled:
            raise ServeError(
                "CircuitBreaker needs breaker_failure_threshold set"
            )
        self.config = config
        self._clock = clock
        self._on_open = on_open
        self._outcomes: deque[bool] = deque(maxlen=config.breaker_window)
        self._state = BREAKER_CLOSED
        self._open_until = 0.0
        self._probes = 0
        self.opens = 0

    # -- state ----------------------------------------------------------

    def _maybe_half_open(self) -> None:
        if self._state == BREAKER_OPEN and self._clock() >= self._open_until:
            self._state = BREAKER_HALF_OPEN
            self._probes = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (time-aware)."""
        self._maybe_half_open()
        return self._state

    @property
    def failure_rate(self) -> float:
        """Failure fraction of the rolling window (0.0 when empty)."""
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    @property
    def retry_after(self) -> float:
        """Seconds until the breaker half-opens (0.0 unless open)."""
        self._maybe_half_open()
        if self._state != BREAKER_OPEN:
            return 0.0
        return max(0.0, self._open_until - self._clock())

    # -- transitions ----------------------------------------------------

    def trip(self) -> None:
        """Force the breaker open (ops hook; also the internal path)."""
        self._state = BREAKER_OPEN
        self._open_until = self._clock() + self.config.breaker_open_ms / 1e3
        self._outcomes.clear()
        self._probes = 0
        self.opens += 1
        if self._on_open is not None:
            self._on_open()

    def available(self) -> bool:
        """Whether placement may route a request to this slot now."""
        self._maybe_half_open()
        if self._state == BREAKER_CLOSED:
            return True
        if self._state == BREAKER_HALF_OPEN:
            return self._probes < self.config.breaker_half_open_probes
        return False

    def record_dispatch(self) -> None:
        """Account one dispatch (consumes a probe while half-open)."""
        self._maybe_half_open()
        if self._state == BREAKER_HALF_OPEN:
            self._probes += 1

    def record_success(self) -> None:
        """One successful reply from this slot."""
        self._maybe_half_open()
        if self._state == BREAKER_HALF_OPEN:
            # The trial body is healthy again: close and start fresh.
            self._state = BREAKER_CLOSED
            self._outcomes.clear()
            self._probes = 0
            return
        if self._state == BREAKER_CLOSED:
            self._outcomes.append(True)

    def record_failure(self) -> None:
        """One failure charged to this slot (error, death or stall)."""
        self._maybe_half_open()
        if self._state == BREAKER_HALF_OPEN:
            self.trip()
            return
        if self._state == BREAKER_OPEN:
            return  # stale in-flight outcome; the slot is already out
        self._outcomes.append(False)
        cfg = self.config
        if (
            len(self._outcomes) >= cfg.breaker_min_volume
            and self.failure_rate >= (cfg.breaker_failure_threshold or 1.0)
        ):
            self.trip()


def degrade_request(request: "PoolRequest") -> tuple["PoolRequest", tuple[str, ...]]:
    """Graceful degradation of one request under queue pressure.

    Swaps expensive service classes for cheaper ones that produce the
    same *answers* (both substitutions are members of bit-exact
    equivalence classes): ``execute="jit"`` -> ``"numeric"`` skips cold
    kernel compilation, ``plan="autotuned"`` -> ``"default"`` skips the
    table lookup.  Returns the (possibly new) request plus a tuple of
    human-readable notes naming what was traded; an empty tuple means
    the request was already in its cheapest class.
    """
    notes: list[str] = []
    kw: dict[str, str] = {}
    if request.execute == "jit":
        kw["execute"] = "numeric"
        notes.append("execute:jit->numeric")
    if request.plan == "autotuned":
        kw["plan"] = "default"
        notes.append("plan:autotuned->default")
    if not kw:
        return request, ()
    return replace(request, **kw), tuple(notes)
