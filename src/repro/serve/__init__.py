"""Pooling-as-a-service: an async multi-tenant front end for the chip fleet.

``repro.serve`` turns the single-call operator API (:mod:`repro.ops.api`)
into a service: an asyncio front end (:class:`PoolService`) multiplexes
many concurrent tenants onto a fleet of worker processes, each owning a
private simulated chip and program cache.  The service adds admission
control (bounded queue + backpressure), per-tenant quotas with fair
round-robin scheduling, geometry-keyed request coalescing (same-geometry
requests share one worker's warm cache/compiled kernels), and
crash-recovery that reuses the chip-level
:class:`~repro.sim.faults.RetryPolicy` semantics at the process level.
Opt-in service-level resilience (:class:`ResilienceConfig`) adds
per-request deadlines, a stall watchdog for hung-but-alive workers,
hedged retries, per-worker circuit breakers and priority-aware load
shedding with graceful degradation.  Opt-in end-to-end integrity
(:class:`IntegrityConfig`) adds silent-data-corruption detection:
CRC-32 response fingerprints re-verified service-side, sampled
dual-execution audits with tie-break conviction of corrupt workers,
and periodic known-answer probes against golden fingerprints.

Quickstart::

    import asyncio
    import numpy as np
    from repro.ops import PoolSpec
    from repro.serve import PoolService

    async def main():
        x = np.random.rand(1, 2, 16, 16, 16).astype(np.float16)
        async with PoolService(workers=2) as svc:
            res = await svc.maxpool(x, PoolSpec.square(3, 2))
            print(res.output.shape, res.cycles, res.latency)

    asyncio.run(main())
"""

from __future__ import annotations

from ..errors import (
    AdmissionError,
    CircuitOpenError,
    DeadlineError,
    HedgeError,
    IntegrityError,
    QuotaExceededError,
    ServeError,
    WorkerFailure,
)
from .batching import KINDS, Coalescer, PoolRequest, PoolResponse, geometry_key
from .integrity import (
    KAT_GEOMETRIES,
    AuditRecord,
    IntegrityConfig,
    IntegrityController,
    audit_twin,
    kat_request,
)
from .resilience import (
    CircuitBreaker,
    LatencyTracker,
    ResilienceConfig,
    degrade_request,
)
from .service import PoolService, ServeStats, serve_burst
from .tenancy import FairQueue, TenantQuota
from .workers import CRASH_EXIT_CODE, WorkerHandle, cache_snapshot, execute_request

__all__ = [
    "PoolService",
    "ServeStats",
    "serve_burst",
    "PoolRequest",
    "PoolResponse",
    "geometry_key",
    "Coalescer",
    "KINDS",
    "FairQueue",
    "TenantQuota",
    "WorkerHandle",
    "execute_request",
    "cache_snapshot",
    "CRASH_EXIT_CODE",
    "ResilienceConfig",
    "CircuitBreaker",
    "LatencyTracker",
    "degrade_request",
    "IntegrityConfig",
    "IntegrityController",
    "AuditRecord",
    "audit_twin",
    "kat_request",
    "KAT_GEOMETRIES",
    "IntegrityError",
    "ServeError",
    "AdmissionError",
    "QuotaExceededError",
    "WorkerFailure",
    "DeadlineError",
    "HedgeError",
    "CircuitOpenError",
]
