"""Reproduction of *Pooling Acceleration in the DaVinci Architecture
Using Im2col and Col2im Instructions* (IPDPSW 2021).

The package simulates a DaVinci (Ascend 910) AI Core -- scratch-pad
buffers, the Vector Unit's 128-bit mask and repeat semantics, the
Storage Conversion Unit's ``Im2Col``/``Col2Im`` instructions and the
Cube Unit -- and implements every pooling variant the paper evaluates
on top of it.  See README.md for a tour and DESIGN.md for the full
system inventory.

Quick start::

    import numpy as np
    from repro import PoolSpec, maxpool, maxpool_backward
    from repro.fractal import nhwc_to_nc1hwc0

    x = np.random.default_rng(0).standard_normal((1, 71, 71, 192))
    x5 = nhwc_to_nc1hwc0(x.astype(np.float16))
    spec = PoolSpec.square(kernel=3, stride=2)
    slow = maxpool(x5, spec, impl="standard")
    fast = maxpool(x5, spec, impl="im2col")
    print(slow.cycles / fast.cycles)   # the paper's Figure 7a speedup
"""

from .config import ASCEND910, ASCEND910_SINGLE_CORE, ChipConfig, CostModel
from .dtypes import FLOAT16, FLOAT32, INT8, UINT8, DType
from .errors import ReproError
from .ops import (
    PoolRunResult,
    PoolSpec,
    avgpool,
    avgpool_backward,
    maxpool,
    maxpool_backward,
)

__version__ = "1.0.0"

__all__ = [
    "ASCEND910",
    "ASCEND910_SINGLE_CORE",
    "ChipConfig",
    "CostModel",
    "DType",
    "FLOAT16",
    "FLOAT32",
    "INT8",
    "UINT8",
    "ReproError",
    "PoolSpec",
    "PoolRunResult",
    "maxpool",
    "maxpool_backward",
    "avgpool",
    "avgpool_backward",
    "__version__",
]
