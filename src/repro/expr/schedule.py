"""Schedules: the execution-strategy half of the DSL (Section IV-A).

"The main idea ... is to decouple the execution definition (the
algorithm) from the execution strategy (the algorithm's schedule)."
A :class:`Schedule` carries the strategy knobs our lowering honours;
the defaults reproduce AKG's automatic behaviour ("the inner loops of
computations are vectorized ... when possible, the vector instructions
are also issued with repeat factors").

Turning the knobs off quantifies each optimisation's contribution --
e.g. ``allow_repeat_fold=False`` shows what the repeat parameter buys
("removing loops and barriers around vector instructions, and taking
pressure off instruction fetching", Section V).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ScheduleError
from ..isa.instruction import HW_MAX_REPEAT


@dataclass(frozen=True)
class Schedule:
    """Lowering strategy for DSL stages.

    Attributes
    ----------
    allow_repeat_fold:
        Fold the innermost legal loop axis into the hardware repeat
        field.  Off = one instruction per loop iteration, the paper's
        "repetition is not used" regime.
    vectorize_c0_only:
        Stop the lane group at the innermost axis, even when wider
        contiguity exists -- AKG's *minimal* vectorization baseline.
        Off (default) = grow the group as far as contiguity allows.
    max_repeat:
        Cap on the repeat field (<= the hardware's 255); lowering
        chunks longer loops into multiple instructions.
    """

    allow_repeat_fold: bool = True
    vectorize_c0_only: bool = False
    max_repeat: int = HW_MAX_REPEAT

    def __post_init__(self) -> None:
        if not 1 <= self.max_repeat <= HW_MAX_REPEAT:
            raise ScheduleError(
                f"max_repeat {self.max_repeat} outside 1..{HW_MAX_REPEAT}"
            )


#: AKG's automatic strategy: full contiguity-driven vectorization plus
#: repeat folding.
DEFAULT_SCHEDULE = Schedule()

#: Everything off: the naive one-instruction-per-iteration lowering.
NAIVE_SCHEDULE = Schedule(allow_repeat_fold=False, vectorize_c0_only=True)
