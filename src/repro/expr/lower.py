"""Lowering: emit ISA instructions for a stage under its VectorPlan.

The emitted code is what AKG's CCE C would contain: scalar loops over
the outer axes, each iteration issuing one (or, after repeat chunking, a
few) vector instruction(s).  Scalar loop management is charged through
``Program.scalar_loop_trips``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..dtypes import DType
from ..errors import LoweringError
from ..isa.instruction import HW_MAX_REPEAT
from ..isa.mask import Mask
from ..isa.operand import MemRef, VectorOperand
from ..isa.program import Program
from ..isa.vector import VectorBinary, VectorDup, VectorScalar
from .axes import AffineExpr, Axis
from .nodes import (
    BINOP_TO_ISA,
    REDUCE_TO_ISA,
    SCALAROP_TO_ISA,
    BinOp,
    Fill,
    Load,
    Reduce,
    ScalarOp,
    body_loads,
)
from .schedule import DEFAULT_SCHEDULE, Schedule
from .stage import Stage, fill_stage
from .vectorize import VectorPlan, plan_stage, stage_max_repeat


@dataclass(frozen=True)
class LoweringResult:
    """What the lowering did -- inspected by tests and the benches."""

    plan: VectorPlan
    instructions: int


def lower_stage(
    stage: Stage,
    binding: dict[str, MemRef],
    program: Program,
    dtype: DType,
    max_repeat: int = HW_MAX_REPEAT,
    schedule: Schedule | None = None,
) -> LoweringResult:
    """Emit ``stage`` into ``program``.

    ``binding`` maps tensor names to buffer regions; every tensor the
    stage touches must be bound.  ``schedule`` selects the execution
    strategy (defaults to AKG's automatic one); ``max_repeat`` further
    caps the repeat field (the chip configuration's limit).  Returns
    the plan and the number of instructions emitted (the paper's
    "issue count").
    """
    if not 1 <= max_repeat <= HW_MAX_REPEAT:
        raise LoweringError(f"max_repeat {max_repeat} outside 1..{HW_MAX_REPEAT}")
    sched = schedule or DEFAULT_SCHEDULE
    max_repeat = min(max_repeat, sched.max_repeat)

    total = 0
    # A reduction first fills its output with the op's identity value.
    if isinstance(stage.body, Reduce):
        _, identity_kind = REDUCE_TO_ISA[stage.body.op]
        identity = 0.0 if identity_kind == "zero" else dtype.min_value
        init = fill_stage(
            stage.out, stage.axes, identity, name=f"{stage.name}.init"
        )
        total += _lower_one(init, binding, program, dtype, max_repeat, sched)

    total += _lower_one(stage, binding, program, dtype, max_repeat, sched)
    return LoweringResult(
        plan=plan_stage(
            stage, dtype,
            allow_fold=sched.allow_repeat_fold,
            c0_only=sched.vectorize_c0_only,
        ),
        instructions=total,
    )


def _bound_ref(binding: dict[str, MemRef], name: str) -> MemRef:
    try:
        return binding[name]
    except KeyError:
        raise LoweringError(f"tensor {name!r} is not bound to a buffer") from None


def _classify(stage: Stage):
    """(kind, isa_op, loads, imm) for the stage body."""
    body = stage.body
    if isinstance(body, Fill):
        return "fill", None, [], body.value
    if isinstance(body, Reduce):
        return "reduce", REDUCE_TO_ISA[body.op][0], [body.body], None
    if isinstance(body, BinOp):
        return "binop", BINOP_TO_ISA[body.op], [body.a, body.b], None
    if isinstance(body, ScalarOp):
        return "scalarop", SCALAROP_TO_ISA[body.op], [body.a], body.imm
    if isinstance(body, Load):
        if stage.accumulate:
            return "scatter", "vadd", [body], None
        return "copy", "vadds", [body], 0.0
    raise LoweringError(f"cannot lower body {type(body).__name__}")


def _lower_one(
    stage: Stage,
    binding: dict[str, MemRef],
    program: Program,
    dtype: DType,
    max_repeat: int,
    sched: Schedule = DEFAULT_SCHEDULE,
) -> int:
    plan = plan_stage(
        stage, dtype,
        allow_fold=sched.allow_repeat_fold,
        c0_only=sched.vectorize_c0_only,
    )
    kind, isa_op, loads, imm = _classify(stage)
    cap = stage_max_repeat(stage)
    if cap is not None:
        max_repeat = min(max_repeat, cap)

    out_ref = _bound_ref(binding, stage.out.name)
    out_aff = stage.out_flat_affine()
    load_refs = [_bound_ref(binding, ld.tensor.name) for ld in loads]
    load_affs = [ld.flat_affine() for ld in loads]

    lpb = dtype.lanes_per_block
    lpr = dtype.lanes_per_repeat
    lanes = plan.lanes_total

    # Per-operand repeat strides in 32-byte blocks.
    if plan.wide:
        out_rs = lpr // lpb
        load_rs = [lpr // lpb] * len(loads)
    elif plan.fold_axis is not None:
        f = plan.fold_axis
        out_rs = 0 if f in stage.raxes else lanes // lpb
        load_rs = [aff.coeff(f) // lpb for aff in load_affs]
    else:
        out_rs = lpr // lpb
        load_rs = [lpr // lpb] * len(loads)

    def operand(ref: MemRef, base: int, rep_stride: int, repeat: int, nlanes: int) -> VectorOperand:
        span = max(1, (repeat - 1) * rep_stride * lpb + nlanes)
        return VectorOperand(
            MemRef(ref.buffer, base, span, dtype),
            blk_stride=1,
            rep_stride=rep_stride,
        )

    def emit(bases: list[int], repeat: int, nlanes: int) -> None:
        mask = Mask.for_elements(nlanes, dtype)
        dst = operand(out_ref, bases[0], out_rs, repeat, nlanes)
        srcs = [
            operand(r, b, rs, repeat, nlanes)
            for r, b, rs in zip(load_refs, bases[1:], load_rs)
        ]
        if kind == "fill":
            program.emit(VectorDup(dst, imm, mask, repeat))
        elif kind in ("copy", "scalarop"):
            program.emit(VectorScalar(isa_op, dst, srcs[0], imm, mask, repeat))
        elif kind in ("reduce", "scatter"):
            # Accumulating ops read the destination as src0.
            program.emit(VectorBinary(isa_op, dst, dst, srcs[0], mask, repeat))
        elif kind == "binop":
            program.emit(VectorBinary(isa_op, dst, srcs[0], srcs[1], mask, repeat))
        else:  # pragma: no cover - _classify is exhaustive
            raise LoweringError(f"unhandled kind {kind}")

    emitted = 0
    outer_ranges = [range(ax.extent) for ax in plan.outer_axes]
    for point in product(*outer_ranges):
        values = dict(zip(plan.outer_axes, point))
        base0 = [out_ref.offset + out_aff.evaluate(values)]
        base0 += [
            r.offset + aff.evaluate(values)
            for r, aff in zip(load_refs, load_affs)
        ]
        if plan.wide:
            full, tail = divmod(lanes, lpr)
            done = 0
            while done < full:
                rep = min(max_repeat, full - done)
                emit([b + done * lpr for b in base0], rep, lpr)
                emitted += 1
                done += rep
            if tail:
                emit([b + full * lpr for b in base0], 1, tail)
                emitted += 1
        else:
            repeats = plan.fold_extent
            f = plan.fold_axis
            done = 0
            while done < repeats:
                rep = min(max_repeat, repeats - done)
                if f is None:
                    bases = base0
                else:
                    advance = [out_aff.coeff(f)] + [
                        aff.coeff(f) for aff in load_affs
                    ]
                    bases = [b + done * a for b, a in zip(base0, advance)]
                emit(bases, rep, lanes)
                emitted += 1
                done += rep

    if emitted > 1:
        # The instructions sit inside scalar loops in the lowered CCE C;
        # charge loop management per trip.
        program.scalar_loop_trips += emitted
    return emitted


def lower_stages(
    stages: list[Stage],
    binding: dict[str, MemRef],
    program: Program,
    dtype: DType,
    max_repeat: int = HW_MAX_REPEAT,
) -> list[LoweringResult]:
    """Lower a pipeline of stages in order."""
    return [
        lower_stage(s, binding, program, dtype, max_repeat) for s in stages
    ]
