"""Tensor declarations and loads.

A :class:`TensorDecl` is the DSL's ``placeholder``: a named tensor with
a shape and explicit *layout strides* in elements.  Strides default to
C-contiguous but can be padded -- the Im2col planes deposited by the
``Im2Col`` instruction have their patch dimension rounded up to whole
fractals, so the ``Kw`` stride exceeds ``Oh*Ow*C0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtypes import FLOAT16, DType
from ..errors import LoweringError
from .axes import AffineExpr, Axis


def contiguous_strides(shape: tuple[int, ...]) -> tuple[int, ...]:
    """C-order element strides for ``shape``."""
    strides = [1] * len(shape)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    return tuple(strides)


@dataclass(frozen=True)
class TensorDecl:
    """A placeholder tensor bound to a buffer region at lowering time."""

    name: str
    shape: tuple[int, ...]
    dtype: DType = FLOAT16
    strides: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.shape or any(s <= 0 for s in self.shape):
            raise LoweringError(
                f"tensor {self.name!r} has invalid shape {self.shape}"
            )
        if self.strides is not None and len(self.strides) != len(self.shape):
            raise LoweringError(
                f"tensor {self.name!r}: {len(self.strides)} strides for "
                f"{len(self.shape)} dims"
            )

    @property
    def layout_strides(self) -> tuple[int, ...]:
        return self.strides or contiguous_strides(self.shape)

    @property
    def size_elems(self) -> int:
        """Elements spanned by the layout (including stride padding)."""
        return 1 + sum(
            (dim - 1) * stride
            for dim, stride in zip(self.shape, self.layout_strides)
        )

    def __getitem__(self, idxs) -> "Load":
        if not isinstance(idxs, tuple):
            idxs = (idxs,)
        if len(idxs) != len(self.shape):
            raise LoweringError(
                f"tensor {self.name!r} is rank {len(self.shape)} but was "
                f"indexed with {len(idxs)} indices"
            )
        return Load(self, tuple(AffineExpr.wrap(i) for i in idxs))


@dataclass(frozen=True)
class Load:
    """``tensor[affine indices]`` -- the only memory-read expression."""

    tensor: TensorDecl
    idxs: tuple[AffineExpr, ...]

    def flat_affine(self) -> AffineExpr:
        """Flat element offset within the tensor as one affine expr."""
        flat = AffineExpr.constant(0)
        for idx, stride in zip(self.idxs, self.tensor.layout_strides):
            flat = flat + idx * stride
        return flat

    def axes(self) -> list[Axis]:
        seen: list[Axis] = []
        for idx in self.idxs:
            for ax in idx.axes():
                if ax not in seen:
                    seen.append(ax)
        return seen

    def check_in_bounds(self) -> None:
        """Static bounds check of every index against the tensor shape."""
        for d, (idx, dim) in enumerate(zip(self.idxs, self.tensor.shape)):
            if idx.min_value() < 0 or idx.max_value() >= dim:
                raise LoweringError(
                    f"load of {self.tensor.name!r} dim {d}: index range "
                    f"[{idx.min_value()}, {idx.max_value()}] escapes extent "
                    f"{dim}"
                )

    # Arithmetic sugar producing expression nodes (imported lazily to
    # avoid a module cycle).
    def _binop(self, op: str, other):
        from .nodes import BinOp

        return BinOp(op, self, other)

    def __mul__(self, other):
        return self._binop("mul", other)

    def __add__(self, other):
        return self._binop("add", other)

    def __sub__(self, other):
        return self._binop("sub", other)
