"""A stage: one ``compute`` statement over a loop nest.

A stage writes ``out[out_idx(axes)] (=|op=) body(axes, raxes)`` for all
values of ``axes`` (loop order outer -> inner, reduction axes innermost,
as TVM lowers reductions).  Most stages index the output identically to
its axes; the *scatter-accumulate* stage used by the pooling backward
merge step indexes the output through affine expressions
(``out[oh*Sh + kh, ow*Sw + kw, c0] += ...``), which is what the inlined
expansion of Section V-B turns into.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LoweringError
from .axes import AffineExpr, Axis
from .nodes import Body, Fill, Load, Reduce, body_loads
from .tensor import TensorDecl


@dataclass(frozen=True)
class Stage:
    """One lowered-unit computation.

    ``accumulate`` selects ``out op= body`` (the op comes from the body:
    a Reduce's op, or plain addition for scatter-accumulate bodies).
    """

    out: TensorDecl
    out_idx: tuple[AffineExpr, ...]
    axes: tuple[Axis, ...]
    body: Body
    accumulate: bool = False
    accumulate_op: str = "add"
    name: str = "stage"

    def __post_init__(self) -> None:
        # Accept raw Axis / int entries in out_idx for ergonomics.
        object.__setattr__(
            self,
            "out_idx",
            tuple(AffineExpr.wrap(i) for i in self.out_idx),
        )
        if len(self.out_idx) != len(self.out.shape):
            raise LoweringError(
                f"stage {self.name!r}: output rank "
                f"{len(self.out.shape)} but {len(self.out_idx)} indices"
            )
        # Every axis used anywhere must be a loop axis (or reduction axis).
        loop_axes = set(self.axes) | set(self.raxes)
        for idx in self.out_idx:
            for ax in idx.axes():
                if ax not in loop_axes:
                    raise LoweringError(
                        f"stage {self.name!r}: output uses axis "
                        f"{ax.name!r} which is not a loop axis"
                    )
        for ld in body_loads(self.body):
            for ax in ld.axes():
                if ax not in loop_axes:
                    raise LoweringError(
                        f"stage {self.name!r}: load of "
                        f"{ld.tensor.name!r} uses non-loop axis {ax.name!r}"
                    )
        # Reduction axes must not appear in the output index.
        for idx in self.out_idx:
            for ax in idx.axes():
                if ax in self.raxes:
                    raise LoweringError(
                        f"stage {self.name!r}: reduction axis "
                        f"{ax.name!r} appears in the output index"
                    )
        # Static bounds checks.
        for ld in body_loads(self.body):
            ld.check_in_bounds()
        for d, (idx, dim) in enumerate(zip(self.out_idx, self.out.shape)):
            if idx.min_value() < 0 or idx.max_value() >= dim:
                raise LoweringError(
                    f"stage {self.name!r}: output dim {d} index range "
                    f"[{idx.min_value()}, {idx.max_value()}] escapes "
                    f"extent {dim}"
                )

    @property
    def raxes(self) -> tuple[Axis, ...]:
        if isinstance(self.body, Reduce):
            return self.body.raxes
        return ()

    def out_flat_affine(self) -> AffineExpr:
        flat = AffineExpr.constant(0)
        for idx, stride in zip(self.out_idx, self.out.layout_strides):
            flat = flat + idx * stride
        return flat


def _identity_idx(axes: tuple[Axis, ...]) -> tuple[AffineExpr, ...]:
    return tuple(AffineExpr.from_axis(ax) for ax in axes)


def reduce_stage(
    out: TensorDecl,
    axes: tuple[Axis, ...] | list[Axis],
    body: Reduce,
    name: str = "reduce",
) -> Stage:
    """``out[axes] = reduce(body)`` -- Listing 1 / Listing 2 shape.

    The lowering emits the identity-value fill followed by the
    accumulating reduction loop.
    """
    axes = tuple(axes)
    return Stage(
        out=out,
        out_idx=_identity_idx(axes),
        axes=axes,
        body=body,
        accumulate=True,
        accumulate_op=body.op,
        name=name,
    )


def elementwise_stage(
    out: TensorDecl,
    axes: tuple[Axis, ...] | list[Axis],
    body: Body,
    name: str = "elementwise",
) -> Stage:
    """``out[axes] = body(axes)`` with identity output indexing."""
    axes = tuple(axes)
    if isinstance(body, Reduce):
        raise LoweringError("use reduce_stage for reductions")
    return Stage(
        out=out,
        out_idx=_identity_idx(axes),
        axes=axes,
        body=body,
        name=name,
    )


def scatter_accumulate_stage(
    out: TensorDecl,
    out_idx: tuple[AffineExpr, ...] | list[AffineExpr],
    axes: tuple[Axis, ...] | list[Axis],
    body: Load,
    name: str = "scatter",
) -> Stage:
    """``out[affine(axes)] += body(axes)`` -- the backward merge step.

    This is the computation the paper describes as "expanding
    mask-gradient ... then reduced with sum on dimensions Oh and Ow",
    after TVM's inlining collapses the expansion (Section V-B).
    """
    if not isinstance(body, Load):
        raise LoweringError("scatter-accumulate body must be a single load")
    return Stage(
        out=out,
        out_idx=tuple(AffineExpr.wrap(i) for i in out_idx),
        axes=tuple(axes),
        body=body,
        accumulate=True,
        accumulate_op="add",
        name=name,
    )


def fill_stage(
    out: TensorDecl,
    axes: tuple[Axis, ...] | list[Axis],
    value: float,
    name: str = "fill",
) -> Stage:
    """``out[axes] = value`` (vector_dup)."""
    axes = tuple(axes)
    return Stage(
        out=out,
        out_idx=_identity_idx(axes),
        axes=axes,
        body=Fill(value),
        name=name,
    )
